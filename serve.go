package facs

import (
	ifacs "facs/internal/facs"
	iserve "facs/internal/serve"
)

// AdmissionService is the streaming admission front end: a long-lived
// micro-batching service over any admission controller. Concurrent
// submitters stream requests; a single decision loop coalesces them
// into batches (bounded by MaxBatch/MaxDelay), decides them through
// DecideAll, and serializes ticks, releases and state updates with the
// decisions so stateful controllers keep their invariants. See
// internal/serve for the full contract.
type AdmissionService = iserve.Service

// ServeConfig parameterises an AdmissionService.
type ServeConfig = iserve.Config

// ServeResponse is the outcome of one streamed admission request,
// including its service-side latency and micro-batch size.
type ServeResponse = iserve.Response

// ServeStats is a snapshot of the service throughput, latency,
// accept-rate and batching counters.
type ServeStats = iserve.Stats

// Streaming service defaults.
const (
	DefaultServeMaxBatch = iserve.DefaultMaxBatch
	DefaultServeMaxDelay = iserve.DefaultMaxDelay
)

// ErrServiceClosed is returned by service submissions after Close.
var ErrServiceClosed = iserve.ErrClosed

// NewAdmissionService starts a streaming admission service over the
// configured controller.
func NewAdmissionService(cfg ServeConfig) (*AdmissionService, error) { return iserve.New(cfg) }

// SurfaceCacheInfo reports how a cached compile was satisfied: a clean
// miss (compiled and written), a hit (decoded in milliseconds, no
// compilation), or a stale entry (failed validation, recompiled and
// overwritten).
type SurfaceCacheInfo = ifacs.CacheInfo

// NewCompiledSystemCached is NewCompiledSystem behind a load-or-compile
// surface cache: dir holds versioned binary surface tables validated by
// a config+grid hash and a checksum, so a process restart skips the
// seconds-long surface compilation whenever a valid entry exists. An
// empty dir always compiles.
func NewCompiledSystemCached(gridSize int, dir string, opts ...SystemOption) (*CompiledSystem, SurfaceCacheInfo, error) {
	return ifacs.NewCompiledCached(gridSize, dir, opts...)
}

// CompileCount returns the number of FACS surface compilations this
// process has performed — the counter cached startups leave unchanged.
func CompileCount() int64 { return ifacs.CompileCount() }
