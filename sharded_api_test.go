package facs_test

import (
	"testing"

	"facs"
)

// Public-API smoke tests for the sharded admission engine; the
// exhaustive determinism suites live in internal/shard and
// internal/experiments.

func TestPublicShardedEngine(t *testing.T) {
	netw, err := facs.NewNetwork(facs.NetworkConfig{Rings: 1})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := facs.NewShardedEngine(facs.ShardedEngineConfig{
		Network: netw,
		Shards:  3,
		Commit:  true,
		NewController: func(v facs.ShardView) (facs.Controller, error) {
			if v.NumCells() == 0 {
				t.Errorf("shard %d owns no cells", v.Index())
			}
			return facs.CompleteSharing{}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if !eng.CellLocal() {
		t.Fatal("complete-sharing shards should be cell-local")
	}

	stations := netw.Stations()
	responses, err := eng.SubmitWave([]facs.AdmissionRequest{
		{Call: facs.Call{ID: 1, Class: facs.Voice, BU: 5}, Station: stations[0]},
		{Call: facs.Call{ID: 2, Class: facs.Video, BU: 10}, Station: stations[1]},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range responses {
		if r.Err != nil || !r.Committed {
			t.Fatalf("response %d: %+v", i, r)
		}
	}

	res := eng.HandoffCall(facs.ShardHandoff{CallID: 1, From: stations[0], To: stations[1], Now: 3})
	if res.Err != nil || res.Response.Err != nil || !res.Response.Committed {
		t.Fatalf("handoff: %+v", res)
	}
	if st := eng.Stats(); st.Handoffs != 1 || st.Total.Decided != 3 {
		t.Fatalf("stats: %+v", st)
	}

	// The single-shard view hands replay oracles the whole network.
	if v := facs.SingleShardView(netw); v.NumCells() != netw.NumCells() {
		t.Fatalf("single view owns %d cells, want %d", v.NumCells(), netw.NumCells())
	}
}

// TestPublicGhostExchange smokes the demand-exchange surface: SCC
// ledgers built per shard enable the tick-barrier exchange, the engine
// reports its activity, and the closed loop surfaces the per-shard
// ledger snapshots.
func TestPublicGhostExchange(t *testing.T) {
	var _ facs.DemandExchangingController = (*facs.SCCLedger)(nil)
	res, err := facs.RunSharded(facs.ShardedConfig{
		NewController: func(v facs.ShardView) (facs.Controller, error) {
			return facs.NewSCCLedger(facs.SCCConfig{
				Network:     v.Network(),
				Reservation: facs.SCCReservationFull,
			})
		},
		Shards:            4,
		Rings:             2,
		Requests:          200,
		Wave:              25,
		TickEveryWaves:    2,
		HandoffEveryWaves: 1 << 30,
		Seed:              9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CellLocal {
		t.Fatal("SCC shards must not report cell-local")
	}
	if res.Stats.Exchanges == 0 || res.Stats.GhostRows == 0 {
		t.Fatalf("exchange did not run: %+v", res.Stats)
	}
	if len(res.Ledgers) != res.Shards {
		t.Fatalf("got %d ledger snapshots for %d shards", len(res.Ledgers), res.Shards)
	}
	var total facs.SCCLedgerStats
	for _, st := range res.Ledgers {
		total = total.Add(st)
	}
	if total.Exports == 0 || total.GhostApplies == 0 {
		t.Fatalf("ledger counters missed the exchange: %+v", total)
	}
}

func TestPublicRunShardedSweep(t *testing.T) {
	cfg := facs.ShardedConfig{
		NewController: func(facs.ShardView) (facs.Controller, error) {
			return facs.NewGuardChannel(8)
		},
		Requests: 200,
		Wave:     32,
		Seed:     3,
	}
	results, err := facs.RunShardedSweep(cfg, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	for i := 1; i < len(results); i++ {
		if results[i].Requested != results[0].Requested ||
			results[i].Accepted != results[0].Accepted ||
			results[i].Handoffs != results[0].Handoffs {
			t.Fatalf("sweep entries diverge: %+v vs %+v", results[i], results[0])
		}
	}
	if !results[1].CellLocal || results[1].Shards != 4 {
		t.Fatalf("entry: %+v", results[1])
	}
}
