package facs_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// docFiles lists the curated documentation whose intra-repo links the
// docs gate keeps honest. PAPER.md/PAPERS.md/SNIPPETS.md are retrieval
// artifacts and exempt.
func docFiles(t *testing.T) []string {
	t.Helper()
	files := []string{"ROADMAP.md", "ARCHITECTURE.md", "CHANGES.md", "ISSUE.md", "cmd/README.md"}
	designs, err := filepath.Glob("internal/*/DESIGN.md")
	if err != nil {
		t.Fatal(err)
	}
	files = append(files, designs...)
	out := files[:0]
	for _, f := range files {
		if _, err := os.Stat(f); err == nil {
			out = append(out, f)
		}
	}
	return out
}

var mdLink = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// TestMarkdownLinks verifies that every relative markdown link in the
// curated docs points at a file or directory that actually exists, so
// refactors cannot silently strand the documentation.
func TestMarkdownLinks(t *testing.T) {
	checked := 0
	for _, file := range docFiles(t) {
		body, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(body), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (resolved %s): %v", file, m[1], resolved, err)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("link check scanned no links; doc list is broken")
	}
	t.Logf("checked %d intra-repo links", checked)
}
