// Package facs is a from-scratch Go reproduction of
//
//	L. Barolli, F. Xhafa, A. Durresi, A. Koyama,
//	"A Fuzzy-based Call Admission Control System for Wireless Cellular
//	Networks", 27th International Conference on Distributed Computing
//	Systems Workshops (ICDCSW'07), 2007.
//
// The package exposes the paper's Fuzzy Admission Control System (FACS):
// a two-stage Mamdani fuzzy controller that predicts how useful it is to
// grant a mobile user bandwidth (FLC1: speed, angle, distance -> correction
// value) and renders a soft admission decision (FLC2: correction value,
// request size, counter state -> accept/reject), together with the Shadow
// Cluster Concept (SCC) baseline it is evaluated against, the classical
// admission schemes surveyed in the paper's introduction, and the full
// simulation and experiment harness that regenerates every figure of the
// paper's evaluation section.
//
// # Quick start
//
//	ctrl := facs.MustSystem()
//	obs := facs.Observation{SpeedKmh: 60, AngleDeg: 0, DistanceKm: 2}
//	ev, err := ctrl.Evaluate(obs, 5 /* BU */, 12 /* occupied BU */, false)
//	if err != nil { ... }
//	if ev.Accepted { ... }
//
// # Reproduction
//
//	fig, err := facs.Figure10(facs.FigureConfig{})
//	fmt.Print(facs.Chart(fig.Series, facs.ChartOptions{Title: fig.Title}))
//
// The cmd/facs-repro binary regenerates every table and figure; DESIGN.md
// maps each paper artifact to the module that rebuilds it and
// EXPERIMENTS.md records paper-vs-measured results.
package facs
