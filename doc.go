// Package facs is a from-scratch Go reproduction of
//
//	L. Barolli, F. Xhafa, A. Durresi, A. Koyama,
//	"A Fuzzy-based Call Admission Control System for Wireless Cellular
//	Networks", 27th International Conference on Distributed Computing
//	Systems Workshops (ICDCSW'07), 2007.
//
// The package exposes the paper's Fuzzy Admission Control System (FACS):
// a two-stage Mamdani fuzzy controller that predicts how useful it is to
// grant a mobile user bandwidth (FLC1: speed, angle, distance -> correction
// value) and renders a soft admission decision (FLC2: correction value,
// request size, counter state -> accept/reject), together with the Shadow
// Cluster Concept (SCC) baseline it is evaluated against, the classical
// admission schemes surveyed in the paper's introduction, and the full
// simulation and experiment harness that regenerates every figure of the
// paper's evaluation section.
//
// # Quick start
//
//	ctrl := facs.MustSystem()
//	obs := facs.Observation{SpeedKmh: 60, AngleDeg: 0, DistanceKm: 2}
//	ev, err := ctrl.Evaluate(obs, 5 /* BU */, 12 /* occupied BU */, false)
//	if err != nil { ... }
//	if ev.Accepted { ... }
//
// # Compiled fast path
//
// For hot admission loops the two Mamdani inferences can be replaced by
// a compiled lookup table:
//
//	cc, err := facs.DefaultCompiledSystem() // compiled once, shared
//	ev, err := cc.Evaluate(obs, 5, 12, false)
//
// NewCompiledSystem samples both controllers over dense grids at
// construction time (seconds of one-off cost) and answers queries by
// trilinear interpolation, roughly 40-50x faster than the exact
// engines at the paper's operating points. The trade-off is explicit
// and guarded: the crisp Cv and A/R values carry a small interpolation
// tolerance (documented and enforced by the golden-equivalence test
// suite in internal/facs), while accept/reject outcomes and decision
// grades are always identical to the exact System — each surface
// carries per-cell error bounds, and any query whose interpolated A/R
// value lands within its bound of a decision boundary is re-run on the
// exact engines (a few percent of a uniformly random workload, less on
// realistic traffic). Use the exact System when the crisp values
// themselves must be reference-grade; use the compiled path when
// decision throughput matters.
//
// # Batch admission and the SCC demand ledger
//
// Controllers that can amortise work across many admission questions
// implement BatchController; DecideAll routes a request slice through
// the native batch path when one exists and degrades to sequential
// Decide calls otherwise, with identical outcomes either way:
//
//	decisions, err := facs.DecideAll(ctrl, reqs)
//
// The FACS System, the compiled fast path, the guard-channel and
// threshold baselines and the SCC ledger are all batch-capable, and
// RunBatchAdmission sweeps a whole request batch against a loaded
// network snapshot in one pass (facs-sim -batch).
//
// The Shadow Cluster Concept baseline likewise comes in two
// interchangeable forms: NewSCC builds the original recompute-on-query
// controller (the reference oracle), NewSCCLedger the incrementally
// maintained demand ledger — a dense [cell][interval] matrix of
// projected demand plus cached per-call footprints, updated in
// O(footprint) on admit/release/handoff, making each decision
// O(horizon x cluster-cells) independent of the number of active calls
// (three-plus orders of magnitude at 1,000 tracked calls; see
// BenchmarkSCCDecide). Decisions are byte-identical to the oracle's: a
// guard band re-derives any aggregate landing within 1e-6 BU of the
// survivability threshold from scratch, and the golden-equivalence
// suites in internal/scc and internal/experiments pin the contract.
// internal/scc/DESIGN.md records the invariants.
//
// # Streaming admission service
//
// For online serving, NewAdmissionService wraps any controller behind
// a concurrent micro-batching front end: submitters stream requests
// from any number of goroutines, the service coalesces them into
// batches (bounded by MaxBatch/MaxDelay), decides them through
// DecideAll, and serializes ticks, releases and state updates with the
// decisions so stateful controllers keep their invariants:
//
//	svc, err := facs.NewAdmissionService(facs.ServeConfig{Controller: ctrl, Commit: true})
//	resp := svc.Submit(req)          // one decision, with latency
//	responses, err := svc.SubmitAll(reqs) // a deterministic wave
//	stats := svc.Stats()             // throughput / latency / accept rate
//
// Micro-batching cannot change outcomes: without Commit a streamed run
// is byte-identical to DecideAll over the same requests, and waves
// chunk at deterministic batch boundaries only. RunStreaming is the
// closed-loop load generator over the service (facs-serve -loadgen),
// and the cmd/facs-serve binary serves newline-delimited JSON over
// stdin or TCP.
//
// # Sharded admission engine
//
// One decision loop is a ceiling on multi-cell throughput. The sharded
// engine partitions the network's cells across N decision loops with a
// deterministic router and a serialized cross-shard handoff protocol
// (release on the source shard, then admit with handoff priority on
// the target shard):
//
//	eng, err := facs.NewShardedEngine(facs.ShardedEngineConfig{
//		Network: netw, Shards: 8, Commit: true,
//		NewController: func(facs.ShardView) (facs.Controller, error) { return ctrl, nil },
//	})
//	responses, err := eng.SubmitWave(reqs) // chunked in global order, barriers between chunks
//	res := eng.HandoffCall(facs.ShardHandoff{CallID: 7, From: src, To: dst, Est: est, Now: now})
//
// For cell-local controllers (CellLocalController: FACS exact and
// compiled, the classical baselines) every outcome is byte-identical
// for every shard count — pinned against an inline sequential replay —
// while throughput scales with cores. RunSharded / RunShardedSweep
// drive the closed-loop sharded workload (facs-serve -loadgen -shards
// N), and facs-serve -shards N serves the engine over NDJSON including
// the handoff wire op. ARCHITECTURE.md's "The sharded engine" section
// records the router, the protocol and the determinism argument.
//
// # Surface persistence
//
// Compiling the default surfaces costs seconds, which a long-lived
// service should pay once, not on every restart:
//
//	cc, info, err := facs.NewCompiledSystemCached(0, cacheDir)
//
// persists compiled surfaces as versioned, checksummed binary blobs
// validated by a config+grid hash; a warm start decodes them in
// milliseconds (info reports hit/stale/miss, and CompileCount exposes
// the compilation counter). Stale or corrupt entries are recompiled
// and overwritten, never trusted.
//
// # Reproduction
//
//	fig, err := facs.Figure10(facs.FigureConfig{})
//	fmt.Print(facs.Chart(fig.Series, facs.ChartOptions{Title: fig.Title}))
//
// The cmd/facs-repro binary regenerates every table and figure;
// ARCHITECTURE.md maps the layers and oracle contracts, and
// cmd/README.md documents every binary's flags. Figure replications
// are independent simulations and run on a worker pool
// (FigureConfig.Workers, default one per CPU); results are identical
// for every worker count because each replication derives all of its
// randomness from its own seed. FigureConfig.Compiled switches the
// FACS curves to the compiled fast path without changing any curve.
package facs
