// Admission: run the paper's single-cell scenario end to end — Poisson
// call arrivals, GPS-observed user kinematics, fuzzy admission — and
// report acceptance per service class and occupancy statistics, for a
// walking population and a vehicular population.
package main

import (
	"fmt"
	"log"

	"facs"
)

func main() {
	system, err := facs.NewSystem()
	if err != nil {
		log.Fatal(err)
	}
	scenarios := []struct {
		name     string
		speedKmh float64
	}{
		{"walking users (4 km/h)", 4},
		{"vehicular users (60 km/h)", 60},
	}
	for _, sc := range scenarios {
		res, err := facs.RunSingleCell(facs.SingleCellConfig{
			Controller:  system,
			NumRequests: 100,
			SpeedKmh:    facs.Pin(sc.speedKmh),
			Seed:        2024,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s ===\n", sc.name)
		fmt.Printf("accepted %d of %d requests (%.1f%%)\n",
			res.Accepted, res.Requested, res.AcceptedPct())
		for _, class := range []facs.Class{facs.Text, facs.Voice, facs.Video} {
			fmt.Printf("  %-6s (%2d BU): %s\n",
				class, class.BandwidthUnits(), res.ByClass[class])
		}
		fmt.Printf("occupancy: mean %.1f BU, max %.0f of 40 BU\n",
			res.Occupancy.Mean(), res.Occupancy.Max())
		fmt.Printf("observed kinematics: mean |angle| %.0f deg, mean speed %.0f km/h\n\n",
			res.MeanObservedAngleDeg.Mean(), res.MeanObservedSpeedKmh.Mean())
	}
	fmt.Println("The vehicular population is admitted more often: stable headings")
	fmt.Println("mean the fuzzy prediction stage (FLC1) trusts its trajectory, which")
	fmt.Println("is exactly the paper's Fig. 7 observation.")
}
