// Mobility: drive a user along a straight road past the base station and
// watch the fuzzy prediction stage (FLC1) update its correction value as
// the geometry changes — approaching head-on, passing abeam, receding.
//
// The trajectory is computed analytically so that the example exercises
// only the public API.
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"facs"
)

func main() {
	system, err := facs.NewSystem()
	if err != nil {
		log.Fatal(err)
	}

	// A car drives east at 60 km/h along the line y = 2 km; the base
	// station sits at the origin. Positions in km.
	const (
		speedKmh = 60
		laneY    = 2.0
		startX   = -8.0
		endX     = 8.0
	)
	fmt.Println("car at 60 km/h driving east on a road 2 km north of the BS")
	fmt.Printf("%8s %10s %10s %8s %28s\n", "x [km]", "dist [km]", "angle [*]", "Cv", "")
	for x := startX; x <= endX+1e-9; x += 1.0 {
		dist := math.Hypot(x, laneY)
		// Heading is due east (0 deg in math convention); the bearing to
		// the BS from (x, laneY) is atan2(-laneY, -x).
		bearingToBS := math.Atan2(-laneY, -x) * 180 / math.Pi
		angle := math.Mod(0-bearingToBS+540, 360) - 180
		obs := facs.Observation{SpeedKmh: speedKmh, AngleDeg: angle, DistanceKm: dist}
		cv, err := system.Predict(obs)
		if err != nil {
			log.Fatal(err)
		}
		bar := strings.Repeat("#", int(cv*24+0.5))
		fmt.Printf("%8.1f %10.2f %10.0f %8.2f %-28s\n", x, dist, angle, cv, bar)
	}
	fmt.Println()
	fmt.Println("Cv peaks while the car is inbound (small |angle|), collapses after")
	fmt.Println("it passes abeam and recedes — the base station learns to stop")
	fmt.Println("granting bandwidth to users who are on their way out.")
}
