// Comparison: run the identical multi-cell workload through FACS and the
// Shadow Cluster Concept baseline and chart the acceptance curves — a
// compact version of the paper's Fig. 10.
package main

import (
	"fmt"
	"log"

	"facs"
)

func main() {
	cfg := facs.FigureConfig{
		LoadPoints: []int{10, 25, 40, 55, 70, 85, 100},
		Seeds:      []int64{1, 2, 3},
	}
	fig, err := facs.Figure10(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(facs.Table(fig.Series))
	fmt.Println()
	fmt.Print(facs.Chart(fig.Series, facs.ChartOptions{
		Title:  fig.Title,
		XLabel: fig.XLabel,
		YLabel: fig.YLabel,
		Height: 16,
	}))
	for _, note := range fig.Notes {
		fmt.Println("note:", note)
	}
	fmt.Println()
	fmt.Println("FACS admits more calls while bandwidth is plentiful and throttles")
	fmt.Println("earlier under congestion to protect the QoS of ongoing calls; SCC's")
	fmt.Println("aggressive shadow reservations cost admissions at light load but its")
	fmt.Println("acceptance degrades more slowly at heavy load.")
}
