// Quickstart: build the paper's Fuzzy Admission Control System and ask it
// to admit a handful of calls against a base station at various loads.
package main

import (
	"fmt"
	"log"

	"facs"
)

func main() {
	// The default system carries the paper's exact membership functions
	// (Figs. 5, 6) and rule bases (Tables 1, 2).
	system, err := facs.NewSystem()
	if err != nil {
		log.Fatal(err)
	}

	// Three users with different kinematics relative to the base station:
	// speed (km/h), angle between heading and the bearing to the BS
	// (0 = straight at it), and distance (km).
	users := []struct {
		name string
		obs  facs.Observation
	}{
		{"commuter driving at the BS", facs.Observation{SpeedKmh: 60, AngleDeg: 0, DistanceKm: 2}},
		{"pedestrian wandering", facs.Observation{SpeedKmh: 4, AngleDeg: 75, DistanceKm: 5}},
		{"car leaving the cell", facs.Observation{SpeedKmh: 80, AngleDeg: 170, DistanceKm: 8}},
	}

	fmt.Println("Request: voice call (5 BU) against a 40 BU base station")
	fmt.Println()
	for _, occupied := range []int{0, 20, 36} {
		fmt.Printf("--- station occupancy %d/40 BU ---\n", occupied)
		for _, u := range users {
			ev, err := system.Evaluate(u.obs, facs.Voice.BandwidthUnits(), occupied, false)
			if err != nil {
				log.Fatal(err)
			}
			verdict := "REJECT"
			if ev.Accepted {
				verdict = "ACCEPT"
			}
			fmt.Printf("%-28s Cv=%.2f  A/R=%+.2f  grade=%-21s -> %s\n",
				u.name, ev.Cv, ev.AR, ev.Grade, verdict)
		}
		fmt.Println()
	}
}
