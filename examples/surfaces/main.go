// Surfaces: render the complete decision surface of the two-stage system:
// for each (speed, angle) the prediction Cv, and for each (Cv-proxy,
// occupancy) the admission verdict for a voice call. This is the fastest
// way to see the paper's rule bases acting together.
package main

import (
	"fmt"
	"log"

	"facs"
)

func main() {
	system, err := facs.NewSystem()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("FLC1 prediction surface: Cv over speed x angle (distance = 5 km)")
	fmt.Printf("%12s", "speed\\angle")
	angles := []float64{0, 30, 60, 90, 120, 150, 180}
	for _, a := range angles {
		fmt.Printf(" %6.0f", a)
	}
	fmt.Println()
	for _, speed := range []float64{4, 10, 30, 60, 90, 120} {
		fmt.Printf("%12.0f", speed)
		for _, angle := range angles {
			cv, err := system.Predict(facs.Observation{
				SpeedKmh: speed, AngleDeg: angle, DistanceKm: 5,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %6.2f", cv)
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Println("admission verdicts for a voice call (5 BU) over user quality x occupancy")
	fmt.Println("legend: A=accept  .=reject")
	users := []struct {
		label string
		obs   facs.Observation
	}{
		{"inbound 60km/h 2km", facs.Observation{SpeedKmh: 60, AngleDeg: 0, DistanceKm: 2}},
		{"inbound 30km/h 5km", facs.Observation{SpeedKmh: 30, AngleDeg: 0, DistanceKm: 5}},
		{"sideways 30km/h", facs.Observation{SpeedKmh: 30, AngleDeg: 90, DistanceKm: 5}},
		{"walker wandering", facs.Observation{SpeedKmh: 4, AngleDeg: 60, DistanceKm: 5}},
		{"outbound 80km/h", facs.Observation{SpeedKmh: 80, AngleDeg: 170, DistanceKm: 8}},
	}
	fmt.Printf("%22s  occupancy 0..40 BU\n", "")
	for _, u := range users {
		fmt.Printf("%22s  ", u.label)
		for used := 0; used <= 40; used += 2 {
			ev, err := system.Evaluate(u.obs, facs.Voice.BandwidthUnits(), used, false)
			if err != nil {
				log.Fatal(err)
			}
			if ev.Accepted {
				fmt.Print("A")
			} else {
				fmt.Print(".")
			}
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("Better-predicted users keep being admitted deeper into congestion;")
	fmt.Println("everyone is admitted into an empty cell and no one into a full one.")
}
