package facs

import (
	icac "facs/internal/cac"
	ishard "facs/internal/shard"
)

// ShardedEngine is the horizontally sharded admission engine: the
// network's cells are partitioned across N shards by a deterministic
// router, each shard runs its own controller behind its own decision
// loop, waves chunk in global request order with cross-shard barriers,
// and handoffs travel a serialized two-phase protocol (release on the
// source shard, admit on the target shard). For cell-local controllers
// every outcome is byte-identical for every shard count; see
// internal/shard for the full contract.
type ShardedEngine = ishard.Engine

// ShardedEngineConfig parameterises a ShardedEngine.
type ShardedEngineConfig = ishard.Config

// ShardView is the slice of the network one shard owns, handed to the
// per-shard controller factory.
type ShardView = ishard.View

// ShardedStats aggregates per-shard service snapshots (summed
// counters, merged latency percentiles) with the engine's handoff
// counters.
type ShardedStats = ishard.Stats

// ShardHandoff describes one call transfer between cells;
// ShardHandoffResult is its outcome (the call survives only when the
// target committed).
type (
	ShardHandoff       = ishard.Handoff
	ShardHandoffResult = ishard.HandoffResult
)

// NewShardedEngine partitions the network and starts one decision loop
// per shard plus the handoff protocol worker.
func NewShardedEngine(cfg ShardedEngineConfig) (*ShardedEngine, error) { return ishard.New(cfg) }

// SingleShardView returns the view a 1-shard engine hands its
// controller factory: the whole network.
var SingleShardView = ishard.SingleView

// CellLocalController marks controllers whose decisions depend only on
// the request and its own station's state, making sharded outcomes
// shard-count-invariant. FACS (exact and compiled) and the classical
// baselines implement it; the SCC family deliberately does not — its
// ledgers implement DemandExchangingController instead.
type CellLocalController = icac.CellLocal

// DemandExchangingController marks controllers with cross-cell
// projected demand (the SCC ledger) whose per-shard instances exchange
// demand deltas at the engine's tick barriers, restoring the global
// demand visibility sharding would otherwise partition. When every
// shard controller is a distinct exchanger instance the engine runs
// the exchange automatically (ShardedEngineConfig.DisableExchange
// opts out); with tick-aligned waves, sharded SCC decisions are then
// byte-identical to a sequential single-ledger replay for every shard
// count.
type DemandExchangingController = icac.DemandExchanger

// DemandDelta is one controller's projected-demand change since its
// previous export — the ghost-exchange payload; DemandRow is one of its
// (cell, interval) entries.
type (
	DemandDelta = icac.DemandDelta
	DemandRow   = icac.DemandRow
)

// ShardPartition selects the deterministic initial station-to-shard
// assignment: round-robin (the balanced historical default) or
// contiguous blocks (spatially coherent bands, the layout that makes
// interest-scoped ghost fan-out sparse).
type ShardPartition = ishard.Partition

// Partition strategies for ShardedEngineConfig.Partition.
const (
	PartitionRoundRobin = ishard.PartitionRoundRobin
	PartitionBlocks     = ishard.PartitionBlocks
)

// ShardMigration is one planned ownership move emitted by the elastic
// rebalancing planner; ShardPlannerConfig bounds the planner (moves per
// epoch, imbalance tolerance).
type (
	ShardMigration     = ishard.Migration
	ShardPlannerConfig = ishard.PlannerConfig
)

// PlanShardRebalance is the deterministic greedy planner behind
// elastic sharding — a pure function of the per-cell load snapshot and
// ownership map, exposed for replay tooling and tests.
var PlanShardRebalance = ishard.PlanRebalance

// MigratableController marks controllers whose per-cell state can move
// between shard instances at rebalance epochs through MigrateOut /
// MigrateIn (the SCC ledger); MigratedCall is one carried call's
// state in flight between instances.
type (
	MigratableController = icac.CellMigrator
	MigratedCall         = icac.MigratedCall
)

// InterestScopedController marks demand exchangers that bound how far
// from a call's home cell their exported demand rows can land, letting
// the engine route ghost rows only to interested shards;
// ExchangeResettingController marks exchangers whose ghost state can be
// re-seeded after a rebalance epoch.
type (
	InterestScopedController    = icac.InterestScoped
	ExchangeResettingController = icac.ExchangeResetter
)
