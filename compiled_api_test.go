package facs_test

import (
	"testing"

	"facs"
)

// Public-API smoke tests for the compiled fast path; the exhaustive
// golden-equivalence suite lives in internal/facs.

func TestPublicCompiledSystem(t *testing.T) {
	exact := facs.MustSystem()
	cc, err := facs.DefaultCompiledSystem()
	if err != nil {
		t.Fatal(err)
	}
	for _, obs := range []facs.Observation{
		{SpeedKmh: 60, AngleDeg: 0, DistanceKm: 2},
		{SpeedKmh: 4, AngleDeg: 90, DistanceKm: 9},
		{SpeedKmh: 30, AngleDeg: -50, DistanceKm: 5.5},
	} {
		want, err := exact.Evaluate(obs, 5, 12, false)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cc.Evaluate(obs, 5, 12, false)
		if err != nil {
			t.Fatal(err)
		}
		if got.Accepted != want.Accepted || got.Grade != want.Grade {
			t.Fatalf("decision mismatch at %+v: exact (%v, %v), compiled (%v, %v)",
				obs, want.Grade, want.Accepted, got.Grade, got.Accepted)
		}
	}
	if cc.Name() != "facs-compiled" {
		t.Fatalf("Name = %q", cc.Name())
	}
}

func TestPublicCompiledSystemErrors(t *testing.T) {
	if _, err := facs.NewCompiledSystem(0, facs.WithAcceptThreshold(7)); err == nil {
		t.Fatal("invalid option should propagate")
	}
}

func TestPublicRunSeeds(t *testing.T) {
	cc, err := facs.DefaultCompiledSystem()
	if err != nil {
		t.Fatal(err)
	}
	results, err := facs.RunSingleCellSeeds(facs.SingleCellConfig{
		Controller:  cc,
		NumRequests: 15,
	}, []int64{1, 2, 3}, facs.DefaultWorkers())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	for _, r := range results {
		if r.Requested == 0 {
			t.Fatal("empty replication result")
		}
	}
}
