package facs_test

import (
	"fmt"
	"strings"
	"testing"

	"facs"
)

func TestPublicSystemRoundTrip(t *testing.T) {
	system, err := facs.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	if system.Name() != "facs" {
		t.Fatalf("Name = %q", system.Name())
	}
	obs := facs.Observation{SpeedKmh: 60, AngleDeg: 0, DistanceKm: 2}
	ev, err := system.Evaluate(obs, facs.Voice.BandwidthUnits(), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Accepted || ev.Grade != facs.GradeAccept {
		t.Fatalf("empty cell should yield a full accept, got %+v", ev)
	}
	ev, err = system.Evaluate(obs, facs.Voice.BandwidthUnits(), 40, false)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Accepted {
		t.Fatalf("full cell should reject, got %+v", ev)
	}
}

func TestPublicNetworkAndStation(t *testing.T) {
	net, err := facs.NewNetwork(facs.NetworkConfig{Rings: 1})
	if err != nil {
		t.Fatal(err)
	}
	if net.NumCells() != 7 {
		t.Fatalf("NumCells = %d", net.NumCells())
	}
	bs, err := net.StationAt(facs.Point{})
	if err != nil {
		t.Fatal(err)
	}
	if bs.Capacity() != facs.DefaultCapacityBU {
		t.Fatalf("Capacity = %d", bs.Capacity())
	}
	if err := bs.Admit(facs.Call{ID: 1, Class: facs.Video, BU: 10}); err != nil {
		t.Fatal(err)
	}
	if bs.RTC() != 10 || bs.NRTC() != 0 {
		t.Fatalf("counters RTC=%d NRTC=%d", bs.RTC(), bs.NRTC())
	}
}

func TestPublicBaselines(t *testing.T) {
	var controllers []facs.Controller
	controllers = append(controllers, facs.CompleteSharing{})
	g, err := facs.NewGuardChannel(8)
	if err != nil {
		t.Fatal(err)
	}
	controllers = append(controllers, g)
	p, err := facs.NewThresholdPolicy(map[facs.Class]int{facs.Video: 10})
	if err != nil {
		t.Fatal(err)
	}
	controllers = append(controllers, p)
	net, err := facs.NewNetwork(facs.NetworkConfig{Rings: 1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := facs.NewSCC(facs.SCCConfig{Network: net})
	if err != nil {
		t.Fatal(err)
	}
	controllers = append(controllers, s)
	controllers = append(controllers, facs.MustSystem())
	seen := map[string]bool{}
	for _, c := range controllers {
		if c.Name() == "" || seen[c.Name()] {
			t.Fatalf("controller name %q empty or duplicated", c.Name())
		}
		seen[c.Name()] = true
	}
}

func TestPublicExperimentRoundTrip(t *testing.T) {
	res, err := facs.RunSingleCell(facs.SingleCellConfig{
		Controller:  facs.MustSystem(),
		NumRequests: 20,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requested != 20 {
		t.Fatalf("Requested = %d", res.Requested)
	}
	mres, err := facs.RunMultiCell(facs.MultiCellConfig{
		NewController: facs.FACSFactory(),
		NumRequests:   20,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if mres.ControllerName != "facs" {
		t.Fatalf("ControllerName = %q", mres.ControllerName)
	}
}

func TestPublicChartAndCSV(t *testing.T) {
	s := facs.Series{Label: "demo"}
	s.Append(1, 2)
	s.Append(3, 4)
	if out := facs.Chart([]facs.Series{s}, facs.ChartOptions{Title: "t"}); !strings.Contains(out, "demo") {
		t.Fatal("chart missing legend")
	}
	if out := facs.CSV([]facs.Series{s}); !strings.HasPrefix(out, "x,demo") {
		t.Fatalf("csv = %q", out)
	}
	if out := facs.Table([]facs.Series{s}); !strings.Contains(out, "2.00") {
		t.Fatalf("table = %q", out)
	}
}

func TestDefaultTrafficMix(t *testing.T) {
	mix := facs.DefaultTrafficMix()
	if mix.Text != 0.6 || mix.Voice != 0.3 || mix.Video != 0.1 {
		t.Fatalf("mix = %+v", mix)
	}
}

// ExampleSystem_Evaluate demonstrates the two-stage fuzzy decision for a
// well-predicted user at increasing cell occupancy.
func ExampleSystem_Evaluate() {
	system := facs.MustSystem()
	obs := facs.Observation{SpeedKmh: 60, AngleDeg: 0, DistanceKm: 2}
	for _, occupied := range []int{0, 20, 40} {
		ev, err := system.Evaluate(obs, 5, occupied, false)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("occupied %2d BU -> accepted %v\n", occupied, ev.Accepted)
	}
	// Output:
	// occupied  0 BU -> accepted true
	// occupied 20 BU -> accepted true
	// occupied 40 BU -> accepted false
}

// ExampleSystem_Predict demonstrates the prediction stage on its own: the
// correction value collapses as the user turns away from the station.
func ExampleSystem_Predict() {
	system := facs.MustSystem()
	for _, angle := range []float64{0, 90, 180} {
		cv, err := system.Predict(facs.Observation{SpeedKmh: 60, AngleDeg: angle, DistanceKm: 5})
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("angle %3.0f -> Cv %.2f\n", angle, cv)
	}
	// Output:
	// angle   0 -> Cv 0.92
	// angle  90 -> Cv 0.11
	// angle 180 -> Cv 0.08
}
