package facs_test

// Benchmark harness: one benchmark per paper artifact (Tables 1-2,
// Figs. 7-10) plus the ablation benches listed in DESIGN.md and
// micro-benchmarks of the hot paths. Figure benches run a reduced-size
// replica of the experiment per iteration and report the measured
// acceptance percentage via b.ReportMetric, so `go test -bench .` both
// regenerates the artifact shapes and times them.

import (
	"testing"

	"facs"
	ifacs "facs/internal/facs"
	ifuzzy "facs/internal/fuzzy"
	igps "facs/internal/gps"
)

// BenchmarkTable1FRB1 measures compiling the prediction controller with
// the paper's Table 1 (42 rules); the table itself is verified by unit
// tests.
func BenchmarkTable1FRB1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ifacs.NewFLC1(ifacs.DefaultParams()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2FRB2 measures compiling the admission controller with
// the paper's Table 2 (27 rules).
func BenchmarkTable2FRB2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ifacs.NewFLC2(ifacs.DefaultParams()); err != nil {
			b.Fatal(err)
		}
	}
}

// benchFigure runs one reduced figure per iteration and reports the mean
// acceptance of the first and last series, so that shape regressions are
// visible in benchmark output.
func benchFigure(b *testing.B, build func(facs.FigureConfig) (facs.Figure, error)) {
	b.Helper()
	fc := facs.FigureConfig{LoadPoints: []int{60}, Seeds: []int64{1}}
	var fig facs.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = build(fc)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(fig.Series) > 0 {
		first := fig.Series[0]
		last := fig.Series[len(fig.Series)-1]
		b.ReportMetric(first.MeanY(), "first%")
		b.ReportMetric(last.MeanY(), "last%")
	}
}

// BenchmarkFigure7 regenerates a reduced paper Fig. 7 (speed series).
func BenchmarkFigure7(b *testing.B) { benchFigure(b, facs.Figure7) }

// BenchmarkFigure8 regenerates a reduced paper Fig. 8 (angle series).
func BenchmarkFigure8(b *testing.B) { benchFigure(b, facs.Figure8) }

// BenchmarkFigure9 regenerates a reduced paper Fig. 9 (distance series).
func BenchmarkFigure9(b *testing.B) { benchFigure(b, facs.Figure9) }

// BenchmarkFigure10 regenerates a reduced paper Fig. 10 (FACS vs SCC).
func BenchmarkFigure10(b *testing.B) { benchFigure(b, facs.Figure10) }

// BenchmarkAblationDefuzzifier (A1) times a full FACS evaluation under
// each defuzzifier, quantifying the real-time cost of the centroid method
// against the height fast path.
func BenchmarkAblationDefuzzifier(b *testing.B) {
	methods := []struct {
		name string
		mk   func() ifuzzy.Defuzzifier
	}{
		{"centroid", func() ifuzzy.Defuzzifier { return ifuzzy.Centroid{} }},
		{"weighted-average", func() ifuzzy.Defuzzifier { return ifuzzy.NewWeightedAverage() }},
		{"bisector", func() ifuzzy.Defuzzifier { return ifuzzy.Bisector{} }},
		{"mean-of-maxima", func() ifuzzy.Defuzzifier { return ifuzzy.MeanOfMaxima{} }},
	}
	obs := facs.Observation{SpeedKmh: 45, AngleDeg: 20, DistanceKm: 4}
	for _, m := range methods {
		m := m
		b.Run(m.name, func(b *testing.B) {
			system, err := facs.NewSystem(ifacs.WithDefuzzifier(m.mk))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := system.Evaluate(obs, 5, 20, false); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationThreshold (A2) times one single-cell run per accept
// threshold and reports the acceptance level it produces.
func BenchmarkAblationThreshold(b *testing.B) {
	for _, th := range []float64{0, 0.25, 0.5} {
		th := th
		b.Run(thresholdName(th), func(b *testing.B) {
			system, err := facs.NewSystem(facs.WithAcceptThreshold(th))
			if err != nil {
				b.Fatal(err)
			}
			var last facs.SingleCellResult
			for i := 0; i < b.N; i++ {
				last, err = facs.RunSingleCell(facs.SingleCellConfig{
					Controller:  system,
					NumRequests: 60,
					Seed:        1,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(last.AcceptedPct(), "accept%")
		})
	}
}

func thresholdName(th float64) string {
	switch {
	case th == 0:
		return "th=0.00"
	case th == 0.25:
		return "th=0.25"
	default:
		return "th=0.50"
	}
}

// BenchmarkAblationSCC (A3) times one multi-cell SCC run per horizon,
// showing how the projection depth scales.
func BenchmarkAblationSCC(b *testing.B) {
	for _, horizon := range []int{2, 6, 12} {
		horizon := horizon
		b.Run(horizonName(horizon), func(b *testing.B) {
			factory := func(net *facs.Network) (facs.Controller, error) {
				return facs.NewSCC(facs.SCCConfig{
					Network:                net,
					Horizon:                horizon,
					Reservation:            facs.SCCReservationFull,
					RequireClusterCoverage: true,
				})
			}
			var last facs.MultiCellResult
			var err error
			for i := 0; i < b.N; i++ {
				last, err = facs.RunMultiCell(facs.MultiCellConfig{
					NewController: factory,
					NumRequests:   60,
					Seed:          1,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(last.AcceptedPct(), "accept%")
		})
	}
}

func horizonName(h int) string {
	switch h {
	case 2:
		return "K=2"
	case 6:
		return "K=6"
	default:
		return "K=12"
	}
}

// BenchmarkAblationBaselines (A4) times one multi-cell run per classical
// scheme on the Fig. 10 workload.
func BenchmarkAblationBaselines(b *testing.B) {
	schemes := []struct {
		name    string
		factory func(*facs.Network) (facs.Controller, error)
	}{
		{"facs", facs.FACSFactory()},
		{"scc", facs.SCCFactory()},
		{"complete-sharing", func(*facs.Network) (facs.Controller, error) {
			return facs.CompleteSharing{}, nil
		}},
		{"guard-channel", func(*facs.Network) (facs.Controller, error) {
			return facs.NewGuardChannel(8)
		}},
	}
	for _, sc := range schemes {
		sc := sc
		b.Run(sc.name, func(b *testing.B) {
			var last facs.MultiCellResult
			var err error
			for i := 0; i < b.N; i++ {
				last, err = facs.RunMultiCell(facs.MultiCellConfig{
					NewController: sc.factory,
					NumRequests:   60,
					Seed:          1,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(last.AcceptedPct(), "accept%")
			b.ReportMetric(last.DropPct(), "drop%")
		})
	}
}

// BenchmarkAblationGPSNoise (A5) times one single-cell run per GPS noise
// level, reporting the acceptance it produces for walking users.
func BenchmarkAblationGPSNoise(b *testing.B) {
	for _, sc := range []struct {
		name  string
		noise float64
	}{
		{"no-noise", -1},
		{"sigma=5m", 5},
		{"sigma=30m", 30},
	} {
		sc := sc
		b.Run(sc.name, func(b *testing.B) {
			var last facs.SingleCellResult
			var err error
			for i := 0; i < b.N; i++ {
				last, err = facs.RunSingleCell(facs.SingleCellConfig{
					Controller:  facs.MustSystem(),
					NumRequests: 60,
					SpeedKmh:    facs.Pin(10),
					GPSNoiseM:   sc.noise,
					Seed:        1,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(last.AcceptedPct(), "accept%")
		})
	}
}

// --- micro benchmarks of the hot paths ---

// BenchmarkFLC1Evaluate times one prediction inference (42 rules,
// centroid defuzzification).
func BenchmarkFLC1Evaluate(b *testing.B) {
	eng, err := ifacs.NewFLC1(ifacs.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.EvaluateVec(45, 20, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFLC2Evaluate times one admission inference (27 rules).
func BenchmarkFLC2Evaluate(b *testing.B) {
	eng, err := ifacs.NewFLC2(ifacs.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.EvaluateVec(0.7, 5, 20); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFACSEvaluate times the full two-stage decision.
func BenchmarkFACSEvaluate(b *testing.B) {
	system := facs.MustSystem()
	obs := facs.Observation{SpeedKmh: 45, AngleDeg: 20, DistanceKm: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := system.Evaluate(obs, 5, 20, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSCCDecide times one shadow-cluster admission decision over a
// seven-cell network with 50 tracked calls.
func BenchmarkSCCDecide(b *testing.B) {
	net, err := facs.NewNetwork(facs.NetworkConfig{Rings: 1})
	if err != nil {
		b.Fatal(err)
	}
	ctrl, err := facs.NewSCC(facs.SCCConfig{Network: net})
	if err != nil {
		b.Fatal(err)
	}
	bs, err := net.StationAt(facs.Point{})
	if err != nil {
		b.Fatal(err)
	}
	est := igps.Estimate{SpeedKmh: 60, HeadingDeg: 30}
	for id := 0; id < 50; id++ {
		ctrl.OnAdmit(facs.AdmissionRequest{
			Call:    facs.Call{ID: id, Class: facs.Voice, BU: 5},
			Station: bs,
			Est:     est,
		})
	}
	req := facs.AdmissionRequest{
		Call:    facs.Call{ID: 999, Class: facs.Voice, BU: 5},
		Station: bs,
		Est:     est,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctrl.Decide(req); err != nil {
			b.Fatal(err)
		}
	}
}
