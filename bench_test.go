package facs_test

// Benchmark harness: one benchmark per paper artifact (Tables 1-2,
// Figs. 7-10) plus the ablation benches enumerated in
// internal/experiments/ablations.go and micro-benchmarks of the hot
// paths. Figure benches run a reduced-size
// replica of the experiment per iteration and report the measured
// acceptance percentage via b.ReportMetric, so `go test -bench .` both
// regenerates the artifact shapes and times them.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"testing"

	"facs"
	ifacs "facs/internal/facs"
	ifuzzy "facs/internal/fuzzy"
	igps "facs/internal/gps"
)

// BenchmarkTable1FRB1 measures compiling the prediction controller with
// the paper's Table 1 (42 rules); the table itself is verified by unit
// tests.
func BenchmarkTable1FRB1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ifacs.NewFLC1(ifacs.DefaultParams()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2FRB2 measures compiling the admission controller with
// the paper's Table 2 (27 rules).
func BenchmarkTable2FRB2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ifacs.NewFLC2(ifacs.DefaultParams()); err != nil {
			b.Fatal(err)
		}
	}
}

// benchFigure runs one reduced figure per iteration and reports the mean
// acceptance of the first and last series, so that shape regressions are
// visible in benchmark output.
func benchFigure(b *testing.B, build func(facs.FigureConfig) (facs.Figure, error)) {
	b.Helper()
	fc := facs.FigureConfig{LoadPoints: []int{60}, Seeds: []int64{1}}
	var fig facs.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = build(fc)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(fig.Series) > 0 {
		first := fig.Series[0]
		last := fig.Series[len(fig.Series)-1]
		b.ReportMetric(first.MeanY(), "first%")
		b.ReportMetric(last.MeanY(), "last%")
	}
}

// BenchmarkFigure7 regenerates a reduced paper Fig. 7 (speed series).
func BenchmarkFigure7(b *testing.B) { benchFigure(b, facs.Figure7) }

// BenchmarkFigure8 regenerates a reduced paper Fig. 8 (angle series).
func BenchmarkFigure8(b *testing.B) { benchFigure(b, facs.Figure8) }

// BenchmarkFigure9 regenerates a reduced paper Fig. 9 (distance series).
func BenchmarkFigure9(b *testing.B) { benchFigure(b, facs.Figure9) }

// BenchmarkFigure10 regenerates a reduced paper Fig. 10 (FACS vs SCC).
func BenchmarkFigure10(b *testing.B) { benchFigure(b, facs.Figure10) }

// BenchmarkAblationDefuzzifier (A1) times a full FACS evaluation under
// each defuzzifier, quantifying the real-time cost of the centroid method
// against the height fast path.
func BenchmarkAblationDefuzzifier(b *testing.B) {
	methods := []struct {
		name string
		mk   func() ifuzzy.Defuzzifier
	}{
		{"centroid", func() ifuzzy.Defuzzifier { return ifuzzy.Centroid{} }},
		{"weighted-average", func() ifuzzy.Defuzzifier { return ifuzzy.NewWeightedAverage() }},
		{"bisector", func() ifuzzy.Defuzzifier { return ifuzzy.Bisector{} }},
		{"mean-of-maxima", func() ifuzzy.Defuzzifier { return ifuzzy.MeanOfMaxima{} }},
	}
	obs := facs.Observation{SpeedKmh: 45, AngleDeg: 20, DistanceKm: 4}
	for _, m := range methods {
		m := m
		b.Run(m.name, func(b *testing.B) {
			system, err := facs.NewSystem(ifacs.WithDefuzzifier(m.mk))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := system.Evaluate(obs, 5, 20, false); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationThreshold (A2) times one single-cell run per accept
// threshold and reports the acceptance level it produces.
func BenchmarkAblationThreshold(b *testing.B) {
	for _, th := range []float64{0, 0.25, 0.5} {
		th := th
		b.Run(thresholdName(th), func(b *testing.B) {
			system, err := facs.NewSystem(facs.WithAcceptThreshold(th))
			if err != nil {
				b.Fatal(err)
			}
			var last facs.SingleCellResult
			for i := 0; i < b.N; i++ {
				last, err = facs.RunSingleCell(facs.SingleCellConfig{
					Controller:  system,
					NumRequests: 60,
					Seed:        1,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(last.AcceptedPct(), "accept%")
		})
	}
}

func thresholdName(th float64) string {
	switch {
	case th == 0:
		return "th=0.00"
	case th == 0.25:
		return "th=0.25"
	default:
		return "th=0.50"
	}
}

// BenchmarkAblationSCC (A3) times one multi-cell SCC run per horizon,
// showing how the projection depth scales.
func BenchmarkAblationSCC(b *testing.B) {
	for _, horizon := range []int{2, 6, 12} {
		horizon := horizon
		b.Run(horizonName(horizon), func(b *testing.B) {
			factory := func(net *facs.Network) (facs.Controller, error) {
				return facs.NewSCC(facs.SCCConfig{
					Network:                net,
					Horizon:                horizon,
					Reservation:            facs.SCCReservationFull,
					RequireClusterCoverage: true,
				})
			}
			var last facs.MultiCellResult
			var err error
			for i := 0; i < b.N; i++ {
				last, err = facs.RunMultiCell(facs.MultiCellConfig{
					NewController: factory,
					NumRequests:   60,
					Seed:          1,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(last.AcceptedPct(), "accept%")
		})
	}
}

func horizonName(h int) string {
	switch h {
	case 2:
		return "K=2"
	case 6:
		return "K=6"
	default:
		return "K=12"
	}
}

// BenchmarkAblationBaselines (A4) times one multi-cell run per classical
// scheme on the Fig. 10 workload.
func BenchmarkAblationBaselines(b *testing.B) {
	schemes := []struct {
		name    string
		factory func(*facs.Network) (facs.Controller, error)
	}{
		{"facs", facs.FACSFactory()},
		{"scc", facs.SCCFactory()},
		{"complete-sharing", func(*facs.Network) (facs.Controller, error) {
			return facs.CompleteSharing{}, nil
		}},
		{"guard-channel", func(*facs.Network) (facs.Controller, error) {
			return facs.NewGuardChannel(8)
		}},
	}
	for _, sc := range schemes {
		sc := sc
		b.Run(sc.name, func(b *testing.B) {
			var last facs.MultiCellResult
			var err error
			for i := 0; i < b.N; i++ {
				last, err = facs.RunMultiCell(facs.MultiCellConfig{
					NewController: sc.factory,
					NumRequests:   60,
					Seed:          1,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(last.AcceptedPct(), "accept%")
			b.ReportMetric(last.DropPct(), "drop%")
		})
	}
}

// BenchmarkAblationGPSNoise (A5) times one single-cell run per GPS noise
// level, reporting the acceptance it produces for walking users.
func BenchmarkAblationGPSNoise(b *testing.B) {
	for _, sc := range []struct {
		name  string
		noise float64
	}{
		{"no-noise", -1},
		{"sigma=5m", 5},
		{"sigma=30m", 30},
	} {
		sc := sc
		b.Run(sc.name, func(b *testing.B) {
			var last facs.SingleCellResult
			var err error
			for i := 0; i < b.N; i++ {
				last, err = facs.RunSingleCell(facs.SingleCellConfig{
					Controller:  facs.MustSystem(),
					NumRequests: 60,
					SpeedKmh:    facs.Pin(10),
					GPSNoiseM:   sc.noise,
					Seed:        1,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(last.AcceptedPct(), "accept%")
		})
	}
}

// --- micro benchmarks of the hot paths ---

// BenchmarkFLC1Evaluate times one prediction inference (42 rules,
// centroid defuzzification).
func BenchmarkFLC1Evaluate(b *testing.B) {
	eng, err := ifacs.NewFLC1(ifacs.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.EvaluateVec(45, 20, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFLC2Evaluate times one admission inference (27 rules).
func BenchmarkFLC2Evaluate(b *testing.B) {
	eng, err := ifacs.NewFLC2(ifacs.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.EvaluateVec(0.7, 5, 20); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFACSEvaluate times the full two-stage decision.
func BenchmarkFACSEvaluate(b *testing.B) {
	system := facs.MustSystem()
	obs := facs.Observation{SpeedKmh: 45, AngleDeg: 20, DistanceKm: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := system.Evaluate(obs, 5, 20, false); err != nil {
			b.Fatal(err)
		}
	}
}

// --- compiled fast-path benchmarks ---

// compiledBench returns the shared compiled default FACS, so the
// one-time surface compilation is not charged to per-op timings.
func compiledBench(b *testing.B) *facs.CompiledSystem {
	b.Helper()
	cc, err := facs.DefaultCompiledSystem()
	if err != nil {
		b.Fatal(err)
	}
	return cc
}

// BenchmarkCompiledFLC1Evaluate times one prediction lookup on the
// compiled surface (versus BenchmarkFLC1Evaluate's full inference).
func BenchmarkCompiledFLC1Evaluate(b *testing.B) {
	surf := compiledBench(b).FLC1Surface()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := surf.EvaluateVec(45, 20, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompiledFLC2Evaluate times one admission lookup on the
// compiled surface (versus BenchmarkFLC2Evaluate).
func BenchmarkCompiledFLC2Evaluate(b *testing.B) {
	surf := compiledBench(b).FLC2Surface()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := surf.EvaluateVec(0.7, 5, 20); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompiledFACSEvaluate times the full two-stage decision on
// the compiled fast path at the same operating point as
// BenchmarkFACSEvaluate. The acceptance bar for the fast path is a
// >= 5x throughput advantage over the exact engine; measured runs sit
// around 40-50x.
func BenchmarkCompiledFACSEvaluate(b *testing.B) {
	cc := compiledBench(b)
	obs := facs.Observation{SpeedKmh: 45, AngleDeg: 20, DistanceKm: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cc.Evaluate(obs, 5, 20, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompiledFACSEvaluateMixed sweeps a fixed pseudo-random
// workload across the whole input space, so the measured mean per-op
// cost includes the guard-band fallbacks to the exact engine; the
// fallback percentage is reported as a metric.
func BenchmarkCompiledFACSEvaluateMixed(b *testing.B) {
	cc := compiledBench(b)
	rng := rand.New(rand.NewSource(42))
	type query struct {
		obs  facs.Observation
		r, u int
	}
	queries := make([]query, 4096)
	for i := range queries {
		queries[i] = query{
			obs: facs.Observation{
				SpeedKmh:   rng.Float64() * 120,
				AngleDeg:   rng.Float64()*360 - 180,
				DistanceKm: rng.Float64() * 10,
			},
			r: []int{1, 5, 10}[rng.Intn(3)],
			u: rng.Intn(41),
		}
	}
	f0, e0 := cc.Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		if _, err := cc.Evaluate(q.obs, q.r, q.u, false); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	f1, e1 := cc.Stats()
	if total := (f1 - f0) + (e1 - e0); total > 0 {
		b.ReportMetric(100*float64(e1-e0)/float64(total), "fallback%")
	}
}

// BenchmarkCompiledSurfaceBuild times the one-off compilation of both
// decision surfaces (the cost the fast path amortises).
func BenchmarkCompiledSurfaceBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := facs.NewCompiledSystem(33); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompiledSingleCellWorkers runs the Fig. 7 single-cell
// scenario over 8 replication seeds on 1 worker versus one per CPU,
// with the compiled controller.
func BenchmarkCompiledSingleCellWorkers(b *testing.B) {
	cc := compiledBench(b)
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	for _, workers := range []int{1, facs.DefaultWorkers()} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := facs.RunSingleCellSeeds(facs.SingleCellConfig{
					Controller:  cc,
					NumRequests: 60,
				}, seeds, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// sccObserver is the shared OnAdmit surface of the recompute SCC and
// the demand ledger, so benches can load either implementation.
type sccObserver interface {
	facs.Controller
	OnAdmit(req facs.AdmissionRequest)
}

// sccScatter admits n tracked calls with deterministic pseudo-random
// positions and kinematics scattered across the network, so projected
// demand spreads over many (cell, interval) entries instead of
// saturating one cell.
func sccScatter(b *testing.B, net *facs.Network, ctrl sccObserver, n int) {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	classes := []facs.Class{facs.Text, facs.Voice, facs.Video}
	for id := 0; id < n; {
		pos := facs.Point{
			X: (2*rng.Float64() - 1) * 7000,
			Y: (2*rng.Float64() - 1) * 7000,
		}
		bs, err := net.StationAt(pos)
		if err != nil {
			continue
		}
		class := classes[id%len(classes)]
		ctrl.OnAdmit(facs.AdmissionRequest{
			Call:    facs.Call{ID: id, Class: class, BU: class.BandwidthUnits()},
			Station: bs,
			Est: igps.Estimate{
				Pos:        pos,
				HeadingDeg: rng.Float64()*360 - 180,
				SpeedKmh:   rng.Float64() * 120,
			},
		})
		id++
	}
}

// BenchmarkSCCDecide times one shadow-cluster admission decision at
// 100 / 1,000 / 10,000 tracked calls, on the recompute-on-query oracle
// and on the incremental demand ledger. The acceptance bar for the
// ledger refactor is a >= 10x throughput advantage at 1,000 active
// calls; the ledger's per-decision cost is flat in the number of
// tracked calls, so the measured gap widens linearly with load.
func BenchmarkSCCDecide(b *testing.B) {
	impls := []struct {
		name  string
		build func(net *facs.Network) (sccObserver, error)
	}{
		{"recompute", func(net *facs.Network) (sccObserver, error) {
			return facs.NewSCC(facs.SCCConfig{Network: net})
		}},
		{"ledger", func(net *facs.Network) (sccObserver, error) {
			return facs.NewSCCLedger(facs.SCCConfig{Network: net})
		}},
	}
	for _, active := range []int{100, 1000, 10000} {
		for _, impl := range impls {
			impl := impl
			b.Run(fmt.Sprintf("%s/active=%d", impl.name, active), func(b *testing.B) {
				net, err := facs.NewNetwork(facs.NetworkConfig{Rings: 2})
				if err != nil {
					b.Fatal(err)
				}
				ctrl, err := impl.build(net)
				if err != nil {
					b.Fatal(err)
				}
				sccScatter(b, net, ctrl, active)
				bs, err := net.StationAt(facs.Point{})
				if err != nil {
					b.Fatal(err)
				}
				req := facs.AdmissionRequest{
					Call:    facs.Call{ID: 999999, Class: facs.Voice, BU: 5},
					Station: bs,
					Est:     igps.Estimate{SpeedKmh: 60, HeadingDeg: 30},
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := ctrl.Decide(req); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// envInt reads an integer env override for bench scaling.
func envInt(name string, fallback int) int {
	if s := os.Getenv(name); s != "" {
		if v, err := strconv.Atoi(s); err == nil {
			return v
		}
	}
	return fallback
}

// metroBenchRun is one BenchmarkMetropolis sub-result as persisted to
// BENCH_metropolis.json.
type metroBenchRun struct {
	Name            string  `json:"name"`
	Controller      string  `json:"controller"`
	Mode            string  `json:"mode"`
	Shards          int     `json:"shards"`
	Requested       int     `json:"requested"`
	Accepted        int     `json:"accepted"`
	Handoffs        int     `json:"handoffs"`
	HandoffDropped  int     `json:"handoff_dropped"`
	CrossShard      int     `json:"cross_shard"`
	PeakConcurrent  int     `json:"peak_concurrent"`
	Decisions       int     `json:"decisions"`
	DecisionsPerSec float64 `json:"decisions_per_sec"`
	BytesPerCall    float64 `json:"bytes_per_call"`
	DecisionHash    string  `json:"decision_hash"`
	ElapsedSec      float64 `json:"elapsed_sec"`
}

// BenchmarkMetropolis drives the metropolis-scale diurnal scenario
// through the batch and sharded decision paths and reports sustained
// decision throughput plus live heap bytes per concurrent call at the
// population peak. Scale is env-overridable: FACS_METRO_RINGS (hex
// rings; 18 = 1027 cells) and FACS_METRO_TARGET (peak concurrent-call
// target) raise the defaults to city scale, and FACS_METRO_JSON=<path>
// persists the sub-results (this is how the committed
// BENCH_metropolis.json is produced):
//
//	FACS_METRO_RINGS=18 FACS_METRO_TARGET=550000 \
//	FACS_METRO_JSON=$PWD/BENCH_metropolis.json \
//	go test -run '^$' -bench BenchmarkMetropolis -benchtime 1x .
func BenchmarkMetropolis(b *testing.B) {
	rings := envInt("FACS_METRO_RINGS", 6)
	target := envInt("FACS_METRO_TARGET", 20000)
	shards := envInt("FACS_METRO_SHARDS", 4)
	guard := func(facs.ShardView) (facs.Controller, error) { return facs.NewGuardChannel(8) }
	cases := []struct {
		name    string
		factory func(facs.ShardView) (facs.Controller, error)
		mode    facs.MetropolisMode
		shards  int
	}{
		{"guard/batch", guard, facs.MetroBatch, 1},
		{"guard/sharded", guard, facs.MetroSharded, shards},
		{"facs-compiled/sharded", func(facs.ShardView) (facs.Controller, error) {
			return facs.DefaultCompiledSystem()
		}, facs.MetroSharded, shards},
	}
	var runs []metroBenchRun
	var cells, capacityBU, waves int
	for _, tc := range cases {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			var last facs.MetropolisResult
			for i := 0; i < b.N; i++ {
				res, err := facs.RunMetropolis(facs.MetropolisConfig{
					NewController: tc.factory,
					Mode:          tc.mode,
					Shards:        tc.shards,
					Rings:         rings,
					TargetCalls:   target,
					Seed:          1,
					MeasureMem:    true,
				})
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.DecisionsPerSec(), "decisions/s")
			b.ReportMetric(last.BytesPerCall, "bytes/call")
			b.ReportMetric(float64(last.PeakConcurrent), "peak-calls")
			cells, capacityBU, waves = last.Cells, last.CapacityBU, last.Waves
			runs = append(runs, metroBenchRun{
				Name:            tc.name,
				Controller:      last.ControllerName,
				Mode:            last.Mode.String(),
				Shards:          last.Shards,
				Requested:       last.Requested,
				Accepted:        last.Accepted,
				Handoffs:        last.Handoffs,
				HandoffDropped:  last.HandoffDropped,
				CrossShard:      last.CrossShard,
				PeakConcurrent:  last.PeakConcurrent,
				Decisions:       last.Decisions(),
				DecisionsPerSec: last.DecisionsPerSec(),
				BytesPerCall:    last.BytesPerCall,
				DecisionHash:    fmt.Sprintf("%#016x", last.DecisionHash),
				ElapsedSec:      last.Elapsed.Seconds(),
			})
		})
	}
	path := os.Getenv("FACS_METRO_JSON")
	if path == "" || len(runs) == 0 {
		return
	}
	doc := struct {
		Scenario    string          `json:"scenario"`
		Rings       int             `json:"rings"`
		Cells       int             `json:"cells"`
		CapacityBU  int             `json:"capacity_bu"`
		TargetCalls int             `json:"target_calls"`
		Waves       int             `json:"waves"`
		GOOS        string          `json:"goos"`
		GOARCH      string          `json:"goarch"`
		CPUs        int             `json:"cpus"`
		Runs        []metroBenchRun `json:"runs"`
	}{
		Scenario: "metropolis", Rings: rings, Cells: cells,
		CapacityBU: capacityBU, TargetCalls: target, Waves: waves,
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, CPUs: runtime.NumCPU(),
		Runs: runs,
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRebalance compares the static blocks partition against
// elastic hot-cell rebalancing (an epoch planned at every tick
// barrier) on the diurnal hotspot metropolis, at shard counts 1, 2, 4
// and 8. Decisions are byte-identical between the two variants for the
// cell-local guard controller — the benchmark isolates the cost (plan
// + migrate inside the tick barrier) and the reported migration
// volume. Scale with FACS_REBAL_RINGS / FACS_REBAL_TARGET.
func BenchmarkRebalance(b *testing.B) {
	rings := envInt("FACS_REBAL_RINGS", 4)
	target := envInt("FACS_REBAL_TARGET", 8000)
	guard := func(facs.ShardView) (facs.Controller, error) { return facs.NewGuardChannel(8) }
	for _, shards := range []int{1, 2, 4, 8} {
		for _, elastic := range []bool{false, true} {
			variant := "static"
			if elastic {
				variant = "elastic"
			}
			b.Run(fmt.Sprintf("shards-%d/%s", shards, variant), func(b *testing.B) {
				cfg := facs.MetropolisConfig{
					NewController: guard,
					Mode:          facs.MetroSharded,
					Shards:        shards,
					Rings:         rings,
					TargetCalls:   target,
					Seed:          1,
					Partition:     facs.PartitionBlocks,
				}
				if elastic {
					cfg.RebalanceEveryTicks = 1
					cfg.Rebalance = facs.ShardPlannerConfig{MaxMoves: 4, Tolerance: 0.01}
				}
				var last facs.MetropolisResult
				for i := 0; i < b.N; i++ {
					res, err := facs.RunMetropolis(cfg)
					if err != nil {
						b.Fatal(err)
					}
					last = res
				}
				b.ReportMetric(last.DecisionsPerSec(), "decisions/s")
				if elastic {
					b.ReportMetric(float64(last.Rebalances), "epochs")
					b.ReportMetric(float64(last.MigratedCalls), "calls-moved")
				}
			})
		}
	}
}

// BenchmarkBatchDecide times a full 512-request batch through the batch
// pipeline (cac.DecideAll) for each batch-capable controller, against
// the same requests decided one by one. One benchmark op is the whole
// batch; the per-request cost is ns/op divided by 512.
func BenchmarkBatchDecide(b *testing.B) {
	const batchSize = 512
	net, err := facs.NewNetwork(facs.NetworkConfig{Rings: 2})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	classes := []facs.Class{facs.Text, facs.Voice, facs.Video}
	reqs := make([]facs.AdmissionRequest, 0, batchSize)
	for len(reqs) < batchSize {
		pos := facs.Point{
			X: (2*rng.Float64() - 1) * 7000,
			Y: (2*rng.Float64() - 1) * 7000,
		}
		bs, err := net.StationAt(pos)
		if err != nil {
			continue
		}
		class := classes[len(reqs)%len(classes)]
		est := igps.Estimate{
			Pos:        pos,
			HeadingDeg: rng.Float64()*360 - 180,
			SpeedKmh:   rng.Float64() * 120,
		}
		reqs = append(reqs, facs.AdmissionRequest{
			Call:    facs.Call{ID: len(reqs) + 1, Class: class, BU: class.BandwidthUnits()},
			Station: bs,
			Obs:     igps.Observe(est, bs.Pos()),
			Est:     est,
		})
	}
	controllers := []struct {
		name  string
		build func() (facs.Controller, error)
	}{
		{"facs-compiled", func() (facs.Controller, error) { return facs.DefaultCompiledSystem() }},
		{"scc-ledger", func() (facs.Controller, error) {
			ctrl, err := facs.NewSCCLedger(facs.SCCConfig{Network: net})
			if err != nil {
				return nil, err
			}
			sccScatter(b, net, ctrl, 1000)
			return ctrl, nil
		}},
		{"guard-channel", func() (facs.Controller, error) { return facs.NewGuardChannel(8) }},
	}
	for _, tc := range controllers {
		tc := tc
		ctrl, err := tc.build()
		if err != nil {
			b.Fatal(err)
		}
		b.Run(tc.name+"/batch", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := facs.DecideAll(ctrl, reqs); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(tc.name+"/sequential", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for j := range reqs {
					if _, err := ctrl.Decide(reqs[j]); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
