package facs

import (
	iexp "facs/internal/experiments"
	imetrics "facs/internal/metrics"
	iplot "facs/internal/plot"
)

// Span is a closed interval for sampling per-user parameters; Pin returns
// a degenerate span (a constant).
type Span = iexp.Span

// Pin returns a span holding exactly v.
func Pin(v float64) Span { return iexp.Pin(v) }

// SingleCellConfig parameterises the paper's single-base-station scenario
// (Figs. 7-9); SingleCellResult aggregates one run.
type (
	SingleCellConfig = iexp.SingleCellConfig
	SingleCellResult = iexp.SingleCellResult
)

// RunSingleCell executes the single-cell scenario.
var RunSingleCell = iexp.RunSingleCell

// RunSingleCellSeeds runs the single-cell scenario once per seed on a
// worker pool (workers <= 0 selects DefaultWorkers), returning
// per-seed results in seed order; the output is identical for every
// worker count.
var RunSingleCellSeeds = iexp.RunSingleCellSeeds

// MultiCellConfig parameterises the Fig. 10 multi-cell handoff scenario;
// MultiCellResult aggregates one run.
type (
	MultiCellConfig = iexp.MultiCellConfig
	MultiCellResult = iexp.MultiCellResult
)

// RunMultiCell executes the multi-cell scenario.
var RunMultiCell = iexp.RunMultiCell

// RunMultiCellSeeds runs the multi-cell scenario once per seed on a
// worker pool, returning per-seed results in seed order; the output is
// identical for every worker count.
var RunMultiCellSeeds = iexp.RunMultiCellSeeds

// DefaultWorkers is the worker-pool size used when a configuration
// leaves Workers at zero: one per CPU.
var DefaultWorkers = iexp.DefaultWorkers

// HandoffPolicy selects how handoffs are admitted in the multi-cell
// scenario: HandoffPhysical admits whenever the target cell has room
// (the paper's implicit baseline), HandoffControlled routes the handoff
// through the admission controller (the paper's future work; pair with
// WithHandoffBias).
type HandoffPolicy = iexp.HandoffPolicy

// Handoff policies.
const (
	HandoffPhysical   = iexp.HandoffPhysical
	HandoffControlled = iexp.HandoffControlled
)

// Figure is one regenerated paper artifact; FigureConfig controls load
// points and replication seeds.
type (
	Figure       = iexp.Figure
	FigureConfig = iexp.FigureConfig
)

// Figure regenerators, one per result figure of the paper, plus the
// ablation studies enumerated in internal/experiments/ablations.go.
var (
	Figure7                 = iexp.Figure7
	Figure8                 = iexp.Figure8
	Figure9                 = iexp.Figure9
	Figure10                = iexp.Figure10
	AllFigures              = iexp.AllFigures
	AblationDefuzzifier     = iexp.AblationDefuzzifier
	AblationThreshold       = iexp.AblationThreshold
	AblationSCC             = iexp.AblationSCC
	AblationBaselines       = iexp.AblationBaselines
	AblationGPSNoise        = iexp.AblationGPSNoise
	AblationHandoffPriority = iexp.AblationHandoffPriority
	AblationQueueing        = iexp.AblationQueueing
	AllAblations            = iexp.AllAblations
)

// FACSFactory and SCCFactory build the Fig. 10 contestants for multi-cell
// runs. SCCFactory supplies the incremental demand-ledger SCC;
// SCCRecomputeFactory the original recompute-on-query oracle it is
// golden-tested against.
var (
	FACSFactory         = iexp.FACSFactory
	CompiledFACSFactory = iexp.CompiledFACSFactory
	SCCFactory          = iexp.SCCFactory
	SCCRecomputeFactory = iexp.SCCRecomputeFactory
)

// BatchAdmissionConfig parameterises the batch admission sweep: a
// network snapshot under load against which a batch of candidate
// requests is decided in one DecideAll pass; BatchAdmissionResult
// aggregates the outcomes.
type (
	BatchAdmissionConfig = iexp.BatchAdmissionConfig
	BatchAdmissionResult = iexp.BatchAdmissionResult
)

// RunBatchAdmission executes the batch admission sweep.
var RunBatchAdmission = iexp.RunBatchAdmission

// StreamingConfig parameterises the closed-loop streaming load
// generator: waves of synthetic requests streamed through an
// AdmissionService with per-wave call releases and controller ticks;
// StreamingResult aggregates the deterministic decision stream and the
// service statistics.
type (
	StreamingConfig = iexp.StreamingConfig
	StreamingResult = iexp.StreamingResult
	// ClassTally counts one traffic class's streamed outcomes; summary
	// printers must render per-class maps in sorted class order.
	ClassTally = iexp.ClassTally
)

// RunStreaming executes the closed-loop streaming scenario. Equal
// configurations produce byte-identical decision streams regardless of
// timing (see internal/serve's determinism contract).
var RunStreaming = iexp.RunStreaming

// ShardedConfig parameterises the closed-loop sharded load generator:
// waves of synthetic requests streamed through a ShardedEngine with
// per-wave releases, barrier ticks and cross-cell (often cross-shard)
// handoffs; ShardedResult aggregates the deterministic decision and
// handoff streams plus engine statistics.
type (
	ShardedConfig = iexp.ShardedConfig
	ShardedResult = iexp.ShardedResult
)

// RunSharded executes the closed-loop sharded scenario for one shard
// count; RunShardedSweep repeats the identical workload once per shard
// count (for cell-local controllers, every entry's decision and
// handoff streams are byte-identical — only wall-clock and the
// cross-shard split change).
var (
	RunSharded      = iexp.RunSharded
	RunShardedSweep = iexp.RunShardedSweep
)

// MetropolisConfig parameterises the metropolis-scale workload: a
// city-sized hex deployment (a thousand-plus cells by default) under
// one simulated day of diurnal traffic with rush-hour mobility steered
// toward hot-spot cells; MetropolisResult aggregates one run, including
// the DecisionHash byte-identity fingerprint and throughput/memory
// figures.
type (
	MetropolisConfig = iexp.MetropolisConfig
	MetropolisResult = iexp.MetropolisResult
)

// MetropolisMode selects the decision path carrying the metropolis
// workload: the classic one-at-a-time loop, inline batch waves, or a
// sharded engine. For cell-local controllers all paths produce
// byte-identical outcomes at matching chunk sizes.
type MetropolisMode = iexp.MetropolisMode

// Metropolis decision paths.
const (
	MetroSingle  = iexp.MetroSingle
	MetroBatch   = iexp.MetroBatch
	MetroSharded = iexp.MetroSharded
)

// RunMetropolis executes the metropolis-scale scenario. Outcomes are
// deterministic in the config: repeats produce identical DecisionHash
// values, and for cell-local controllers so do all shard counts and
// modes (at matching chunk sizes).
var RunMetropolis = iexp.RunMetropolis

// MetroSnapshotFile is the file name periodic metropolis snapshots
// take inside MetropolisConfig.SnapshotDir; pass its path as Restore
// to warm-start a later run. Restore-then-replay is byte-identical to
// an uninterrupted run (same DecisionHash).
const MetroSnapshotFile = iexp.MetroSnapshotFile

// Series is a labelled (x, y) curve, the unit of figure regeneration.
type Series = imetrics.Series

// ChartOptions controls ASCII chart rendering.
type ChartOptions = iplot.Options

// Chart renders series as an ASCII line chart with a legend.
var Chart = iplot.Chart

// Table renders series as an aligned text table.
var Table = iplot.Table

// CSV renders series as comma-separated values.
var CSV = iplot.CSV
