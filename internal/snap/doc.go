// Package snap is the durable-serving snapshot format: a versioned,
// checksummed binary envelope for controller and station state,
// extending the persistence style of fuzzy.EncodeSurface
// (magic/version/config-hash/checksum) from immutable compiled
// surfaces to live mutable state.
//
// # Envelope
//
// Every component snapshot is a self-describing blob:
//
//	magic "FSNP" | version u32 | kind | configHash u64
//	component payload
//	checksum u64 (FNV-64a of every preceding byte)
//
// The kind string names the component ("scc-ledger", "base-station",
// "shard-engine", ...) and the configHash fingerprints everything the
// payload's meaning depends on — network shape, capacities, horizon,
// shard count. Decoding validates checksum and magic first
// (ErrSnapshotCorrupt), then version, kind and config hash
// (ErrSnapshotStale). Every error the decode path can produce wraps
// one of those two sentinels, so a restore-or-cold-start caller needs
// exactly one errors.Is test per sentinel; FuzzDecodeSnapshot pins
// that contract (no panic, no foreign error) against arbitrary bytes.
//
// Composite components (the sharded engine, the metropolis driver)
// embed their children with Encoder.Blob: each nested blob is a
// complete envelope of its own, so a composite restore revalidates
// every level independently.
//
// # Consistency and determinism
//
// The format carries state; consistency comes from where captures run.
// Stateful controllers snapshot inside serve.Service.Do ops and the
// shard.Engine tick barrier, so a snapshot is a consistent cut of
// controllers, stations and epoch ownership with no wave in flight.
// Components restore their state verbatim — float64 bit patterns, RNG
// draw positions, dirty-row bookkeeping — so restore-then-replay is
// byte-identical to an uninterrupted run (the crash-recovery suite in
// internal/experiments pins DecisionHash equality across engines and
// shard counts).
//
// WriteFileAtomic writes snapshot files via a temp file, fsync and
// rename, so an on-disk snapshot is always either the complete old
// state or the complete new state — a crash mid-write never leaves a
// torn file behind.
package snap
