package snap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/fnv"
	"io"
	"math"
	"os"
	"path/filepath"
)

// FormatVersion is the snapshot envelope version written by NewEncoder.
// Bump it whenever any component's byte layout changes; a decoder only
// accepts blobs of exactly this version, so every consumer restarts
// cold after a format change instead of misreading old bytes.
const FormatVersion = 1

// snapMagic identifies a snapshot component blob.
var snapMagic = [4]byte{'F', 'S', 'N', 'P'}

// Snapshot sentinel errors. Callers that implement a restore-or-cold-
// start path treat both as "no usable snapshot": the blob is discarded
// and the component starts empty.
var (
	// ErrSnapshotStale reports that a blob was written for a different
	// configuration (config hash or kind mismatch) or an older format
	// version.
	ErrSnapshotStale = errors.New("snap: snapshot is stale")
	// ErrSnapshotCorrupt reports structural damage: bad magic,
	// truncated payload or checksum mismatch.
	ErrSnapshotCorrupt = errors.New("snap: snapshot is corrupt")
)

// Encoder writes one component snapshot in the versioned envelope
// format. Every write feeds an FNV-64a digest; Close appends the
// digest so DecodeBlob can detect truncation or bit rot independently
// of the semantic config hash.
//
// Layout (all integers little-endian):
//
//	magic "FSNP" | version u32 | kind | configHash u64
//	component payload (the component's own writes)
//	checksum u64 (FNV-64a of every preceding byte)
//
// Strings are a u32 length plus raw bytes; floats are IEEE-754 bits as
// u64. Nested component blobs are embedded length-prefixed with Blob,
// each a complete self-describing envelope of its own.
type Encoder struct {
	w   io.Writer // the raw destination (checksum goes here only)
	mw  io.Writer // destination + digest
	h   hash.Hash64
	err error
}

// NewEncoder starts a component envelope on w. kind names the
// component ("scc-ledger", "base-station", ...) and is validated on
// decode; configHash fingerprints everything the payload's meaning
// depends on, so a restore into a differently-configured component
// fails stale instead of misreading state.
func NewEncoder(w io.Writer, kind string, configHash uint64) *Encoder {
	h := fnv.New64a()
	e := &Encoder{w: w, mw: io.MultiWriter(w, h), h: h}
	e.write(snapMagic[:])
	e.U32(FormatVersion)
	e.Str(kind)
	e.U64(configHash)
	return e
}

func (e *Encoder) write(b []byte) {
	if e.err != nil {
		return
	}
	_, e.err = e.mw.Write(b)
}

// U8 writes one byte.
func (e *Encoder) U8(v byte) { e.write([]byte{v}) }

// Bool writes a bool as one byte (0 or 1).
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// U32 writes a little-endian uint32.
func (e *Encoder) U32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	e.write(b[:])
}

// U64 writes a little-endian uint64.
func (e *Encoder) U64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	e.write(b[:])
}

// I64 writes an int64 as its two's-complement uint64 bits.
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// Int writes an int as an int64.
func (e *Encoder) Int(v int) { e.I64(int64(v)) }

// F64 writes a float64 as its IEEE-754 bits, preserving the exact bit
// pattern (including negative zero and NaN payloads).
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// Str writes a u32 length plus the raw bytes.
func (e *Encoder) Str(s string) {
	e.U32(uint32(len(s)))
	if e.err == nil {
		_, e.err = io.WriteString(e.mw, s)
	}
}

// F64s writes a u32 count followed by the float64 bit patterns.
func (e *Encoder) F64s(vals []float64) {
	e.U32(uint32(len(vals)))
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	e.write(buf)
}

// Blob embeds a nested component blob, length-prefixed. The nested
// bytes are normally a complete envelope written by another Encoder
// into a bytes.Buffer, so composite snapshots stay self-describing at
// every level.
func (e *Encoder) Blob(b []byte) {
	e.U32(uint32(len(b)))
	e.write(b)
}

// Close finishes the envelope by appending the FNV-64a checksum of
// everything written so far, and reports the first error encountered.
func (e *Encoder) Close() error {
	if e.err != nil {
		return e.err
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], e.h.Sum64())
	_, e.err = e.w.Write(b[:])
	return e.err
}

// Decoder is a cursor over a checksum-validated component payload. The
// first structural problem latches an error wrapping
// ErrSnapshotCorrupt; subsequent reads return zero values, so
// components can decode a whole section and check Err once at natural
// points instead of after every read.
type Decoder struct {
	buf []byte
	err error
}

// NewDecoder reads one component blob from r and validates the
// envelope: checksum and magic guard against corruption
// (ErrSnapshotCorrupt), the format version, kind and the caller's
// expected configHash guard against staleness (ErrSnapshotStale). The
// returned Decoder is positioned at the start of the component
// payload; every error it can subsequently latch wraps one of the two
// sentinels.
func NewDecoder(r io.Reader, kind string, wantConfigHash uint64) (*Decoder, error) {
	blob, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
	}
	// magic + version + kind length + configHash + checksum.
	if len(blob) < len(snapMagic)+4+4+8+8 {
		return nil, fmt.Errorf("%w: %d-byte blob is too short", ErrSnapshotCorrupt, len(blob))
	}
	payload, sum := blob[:len(blob)-8], binary.LittleEndian.Uint64(blob[len(blob)-8:])
	h := fnv.New64a()
	h.Write(payload)
	if h.Sum64() != sum {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrSnapshotCorrupt)
	}
	d := &Decoder{buf: payload}
	var magic [4]byte
	d.bytes(magic[:])
	if d.err == nil && magic != snapMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrSnapshotCorrupt, magic[:])
	}
	if v := d.U32(); d.err == nil && v != FormatVersion {
		return nil, fmt.Errorf("%w: format version %d, want %d", ErrSnapshotStale, v, FormatVersion)
	}
	if got := d.Str(); d.err == nil && got != kind {
		return nil, fmt.Errorf("%w: component kind %q, want %q", ErrSnapshotStale, got, kind)
	}
	if got := d.U64(); d.err == nil && got != wantConfigHash {
		return nil, fmt.Errorf("%w: config hash %#x, want %#x", ErrSnapshotStale, got, wantConfigHash)
	}
	if d.err != nil {
		return nil, d.err
	}
	return d, nil
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > len(d.buf) {
		d.err = fmt.Errorf("%w: truncated payload: need %d bytes, have %d", ErrSnapshotCorrupt, n, len(d.buf))
		return nil
	}
	out := d.buf[:n]
	d.buf = d.buf[n:]
	return out
}

func (d *Decoder) bytes(dst []byte) {
	if b := d.take(len(dst)); b != nil {
		copy(dst, b)
	}
}

// U8 reads one byte.
func (d *Decoder) U8() byte {
	if b := d.take(1); b != nil {
		return b[0]
	}
	return 0
}

// Bool reads a byte written by Encoder.Bool; any value other than 0 or
// 1 latches a corruption error.
func (d *Decoder) Bool() bool {
	switch v := d.U8(); v {
	case 0:
		return false
	case 1:
		return true
	default:
		if d.err == nil {
			d.err = fmt.Errorf("%w: bad bool byte %d", ErrSnapshotCorrupt, v)
		}
		return false
	}
}

// U32 reads a little-endian uint32.
func (d *Decoder) U32() uint32 {
	if b := d.take(4); b != nil {
		return binary.LittleEndian.Uint32(b)
	}
	return 0
}

// U64 reads a little-endian uint64.
func (d *Decoder) U64() uint64 {
	if b := d.take(8); b != nil {
		return binary.LittleEndian.Uint64(b)
	}
	return 0
}

// I64 reads an int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// Int reads an int written by Encoder.Int.
func (d *Decoder) Int() int { return int(d.I64()) }

// F64 reads a float64, preserving the exact encoded bit pattern.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// Str reads a u32-length-prefixed string. The declared length is
// validated against the remaining payload before the bytes are taken,
// so a corrupt length cannot drive an oversized allocation.
func (d *Decoder) Str() string {
	n := int(d.U32())
	if d.err == nil && n > len(d.buf) {
		d.err = fmt.Errorf("%w: truncated string: %d bytes declared, %d left", ErrSnapshotCorrupt, n, len(d.buf))
		return ""
	}
	return string(d.take(n))
}

// F64s reads a float64 slice written by Encoder.F64s. The declared
// count is validated against the remaining payload before allocating.
func (d *Decoder) F64s() []float64 {
	n := int(d.U32())
	b := d.take(8 * n)
	if b == nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// Blob reads a nested component blob written by Encoder.Blob. The
// returned slice aliases the decoder's buffer; wrap it in a
// bytes.Reader to decode the nested envelope.
func (d *Decoder) Blob() []byte {
	n := int(d.U32())
	if d.err == nil && n > len(d.buf) {
		d.err = fmt.Errorf("%w: truncated blob: %d bytes declared, %d left", ErrSnapshotCorrupt, n, len(d.buf))
		return nil
	}
	return d.take(n)
}

// Len reports the unread payload bytes, letting components bound
// declared element counts (count × element size must fit in Len)
// before allocating.
func (d *Decoder) Len() int { return len(d.buf) }

// Err reports the first structural error latched so far (always
// wrapping ErrSnapshotCorrupt), or nil.
func (d *Decoder) Err() error { return d.err }

// Fail latches a component-level validation error wrapping
// ErrSnapshotCorrupt, so decoded-value range checks surface through
// the same sentinel as structural damage.
func (d *Decoder) Fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: "+format, append([]any{ErrSnapshotCorrupt}, args...)...)
	}
}

// Close finishes the payload: it reports any latched error, and
// otherwise requires the cursor to have consumed every payload byte
// (trailing garbage decodes as corruption, not silence).
func (d *Decoder) Close() error {
	if d.err != nil {
		return d.err
	}
	if len(d.buf) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrSnapshotCorrupt, len(d.buf))
	}
	return nil
}

// Hasher folds configuration values into an FNV-64a config hash, the
// semantic fingerprint carried by every envelope. Components feed
// every value their payload's meaning depends on (capacities, horizon,
// shard count, network shape, ...) so that a restore into a different
// configuration fails with ErrSnapshotStale.
type Hasher struct{ sum uint64 }

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// NewHasher returns a Hasher at the FNV-64a offset basis.
func NewHasher() *Hasher { return &Hasher{sum: fnvOffset64} }

func (h *Hasher) byte(b byte) {
	h.sum ^= uint64(b)
	h.sum *= fnvPrime64
}

// U64 folds a uint64 (little-endian byte order) and returns h.
func (h *Hasher) U64(v uint64) *Hasher {
	for i := 0; i < 8; i++ {
		h.byte(byte(v >> (8 * i)))
	}
	return h
}

// I64 folds an int64.
func (h *Hasher) I64(v int64) *Hasher { return h.U64(uint64(v)) }

// Int folds an int.
func (h *Hasher) Int(v int) *Hasher { return h.I64(int64(v)) }

// F64 folds a float64's IEEE-754 bits.
func (h *Hasher) F64(v float64) *Hasher { return h.U64(math.Float64bits(v)) }

// Bool folds a bool as one byte.
func (h *Hasher) Bool(v bool) *Hasher {
	if v {
		h.byte(1)
	} else {
		h.byte(0)
	}
	return h
}

// Str folds a string's length and bytes.
func (h *Hasher) Str(s string) *Hasher {
	h.U64(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h.byte(s[i])
	}
	return h
}

// Sum returns the folded hash.
func (h *Hasher) Sum() uint64 { return h.sum }

// WriteFileAtomic writes a snapshot file atomically: write writes the
// bytes to a temporary file in the destination directory, which is
// then fsynced and renamed over path. Readers (and a crash at any
// point) see either the complete previous snapshot or the complete new
// one, never a torn write. It returns the byte size of the written
// snapshot.
func WriteFileAtomic(path string, write func(io.Writer) error) (int64, error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return 0, err
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	cw := &countingWriter{w: tmp}
	if err := write(cw); err != nil {
		return 0, err
	}
	if err := tmp.Sync(); err != nil {
		return 0, err
	}
	name := tmp.Name()
	if err := tmp.Close(); err != nil {
		tmp = nil
		os.Remove(name)
		return 0, err
	}
	tmp = nil
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return 0, err
	}
	return cw.n, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
