package snap

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// encodeSample writes a representative blob exercising every encoder
// primitive.
func encodeSample(t *testing.T, kind string, configHash uint64) []byte {
	t.Helper()
	var buf bytes.Buffer
	e := NewEncoder(&buf, kind, configHash)
	e.U8(7)
	e.Bool(true)
	e.U32(1234)
	e.U64(1 << 40)
	e.I64(-5)
	e.Int(-42)
	e.F64(3.5)
	e.Str("hello")
	e.F64s([]float64{1, -0.0, 2.25})
	var inner bytes.Buffer
	ie := NewEncoder(&inner, "inner", 99)
	ie.U32(1)
	if err := ie.Close(); err != nil {
		t.Fatalf("inner Close: %v", err)
	}
	e.Blob(inner.Bytes())
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return buf.Bytes()
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	blob := encodeSample(t, "sample", 0xabc)
	d, err := NewDecoder(bytes.NewReader(blob), "sample", 0xabc)
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	if got := d.U8(); got != 7 {
		t.Errorf("U8 = %d, want 7", got)
	}
	if got := d.Bool(); !got {
		t.Errorf("Bool = false, want true")
	}
	if got := d.U32(); got != 1234 {
		t.Errorf("U32 = %d, want 1234", got)
	}
	if got := d.U64(); got != 1<<40 {
		t.Errorf("U64 = %d, want %d", got, uint64(1)<<40)
	}
	if got := d.I64(); got != -5 {
		t.Errorf("I64 = %d, want -5", got)
	}
	if got := d.Int(); got != -42 {
		t.Errorf("Int = %d, want -42", got)
	}
	if got := d.F64(); got != 3.5 {
		t.Errorf("F64 = %v, want 3.5", got)
	}
	if got := d.Str(); got != "hello" {
		t.Errorf("Str = %q, want hello", got)
	}
	fs := d.F64s()
	if len(fs) != 3 || fs[0] != 1 || fs[1] != 0 || fs[2] != 2.25 {
		t.Errorf("F64s = %v", fs)
	}
	inner := d.Blob()
	id, err := NewDecoder(bytes.NewReader(inner), "inner", 99)
	if err != nil {
		t.Fatalf("inner NewDecoder: %v", err)
	}
	if got := id.U32(); got != 1 {
		t.Errorf("inner U32 = %d, want 1", got)
	}
	if err := id.Close(); err != nil {
		t.Errorf("inner Close: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

func TestDecoderStaleOnMismatch(t *testing.T) {
	blob := encodeSample(t, "sample", 0xabc)
	if _, err := NewDecoder(bytes.NewReader(blob), "other", 0xabc); !errors.Is(err, ErrSnapshotStale) {
		t.Errorf("kind mismatch: err = %v, want ErrSnapshotStale", err)
	}
	if _, err := NewDecoder(bytes.NewReader(blob), "sample", 0xdef); !errors.Is(err, ErrSnapshotStale) {
		t.Errorf("config mismatch: err = %v, want ErrSnapshotStale", err)
	}
	// A bumped version byte is stale, not corrupt — but flipping it also
	// breaks the checksum, so patch the checksum too.
	mut := append([]byte(nil), blob...)
	mut[4]++ // version LSB
	mut = fixChecksum(mut)
	if _, err := NewDecoder(bytes.NewReader(mut), "sample", 0xabc); !errors.Is(err, ErrSnapshotStale) {
		t.Errorf("version mismatch: err = %v, want ErrSnapshotStale", err)
	}
}

// fixChecksum recomputes the trailing FNV-64a over the payload.
func fixChecksum(blob []byte) []byte {
	payload := blob[:len(blob)-8]
	h := NewHasher()
	for _, b := range payload {
		h.byte(b)
	}
	// NewHasher is the same FNV-64a fold the encoder's hash.Hash64 uses.
	var out [8]byte
	for i := range out {
		out[i] = byte(h.sum >> (8 * i))
	}
	return append(payload, out[:]...)
}

func TestDecoderCorruptOnDamage(t *testing.T) {
	blob := encodeSample(t, "sample", 0xabc)
	cases := map[string][]byte{
		"empty":      {},
		"short":      blob[:10],
		"truncated":  blob[:len(blob)-3],
		"no-sum":     blob[:len(blob)-8],
		"bit-flip":   flipBit(blob, len(blob)/2),
		"bad-magic":  fixChecksum(flipBit(blob, 0)),
		"trailing":   append(append([]byte(nil), blob...), 0xff),
		"first-byte": flipBit(blob, 5),
	}
	for name, mut := range cases {
		if _, err := NewDecoder(bytes.NewReader(mut), "sample", 0xabc); !errors.Is(err, ErrSnapshotCorrupt) {
			t.Errorf("%s: err = %v, want ErrSnapshotCorrupt", name, err)
		}
	}
}

func flipBit(blob []byte, i int) []byte {
	mut := append([]byte(nil), blob...)
	mut[i] ^= 0x40
	return mut
}

func TestDecoderLatchesTruncation(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf, "k", 1)
	e.U32(5) // payload: one u32
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(bytes.NewReader(buf.Bytes()), "k", 1)
	if err != nil {
		t.Fatal(err)
	}
	d.U32() // consumes the payload
	if v := d.U64(); v != 0 {
		t.Errorf("over-read U64 = %d, want 0", v)
	}
	if got := d.Str(); got != "" {
		t.Errorf("over-read Str = %q, want empty", got)
	}
	if err := d.Err(); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Errorf("Err = %v, want ErrSnapshotCorrupt", err)
	}
	if err := d.Close(); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Errorf("Close = %v, want ErrSnapshotCorrupt", err)
	}
}

func TestDecoderTrailingPayload(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf, "k", 1)
	e.U32(5)
	e.U32(6)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(bytes.NewReader(buf.Bytes()), "k", 1)
	if err != nil {
		t.Fatal(err)
	}
	d.U32() // leave one u32 unread
	if err := d.Close(); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Errorf("Close = %v, want ErrSnapshotCorrupt for unread payload", err)
	}
}

func TestDecoderFail(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf, "k", 1)
	e.Int(-1)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(bytes.NewReader(buf.Bytes()), "k", 1)
	if err != nil {
		t.Fatal(err)
	}
	if n := d.Int(); n < 0 {
		d.Fail("negative count %d", n)
	}
	if err := d.Close(); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Errorf("Close = %v, want ErrSnapshotCorrupt from Fail", err)
	}
}

func TestHasherDistinguishes(t *testing.T) {
	a := NewHasher().U64(1).Str("x").Bool(true).F64(2.5).Sum()
	b := NewHasher().U64(1).Str("x").Bool(false).F64(2.5).Sum()
	c := NewHasher().U64(1).Str("y").Bool(true).F64(2.5).Sum()
	if a == b || a == c || b == c {
		t.Errorf("hash collisions: %#x %#x %#x", a, b, c)
	}
	if again := NewHasher().U64(1).Str("x").Bool(true).F64(2.5).Sum(); again != a {
		t.Errorf("hash not deterministic: %#x vs %#x", again, a)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.snap")
	blob := encodeSample(t, "sample", 1)
	n, err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write(blob)
		return err
	})
	if err != nil {
		t.Fatalf("WriteFileAtomic: %v", err)
	}
	if n != int64(len(blob)) {
		t.Errorf("size = %d, want %d", n, len(blob))
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !bytes.Equal(got, blob) {
		t.Errorf("file content mismatch: %d vs %d bytes", len(got), len(blob))
	}
	// A failed write must leave the previous snapshot intact and no
	// temp files behind.
	if _, err := WriteFileAtomic(path, func(io.Writer) error {
		return errors.New("boom")
	}); err == nil {
		t.Fatalf("WriteFileAtomic did not propagate the write error")
	}
	got, err = os.ReadFile(path)
	if err != nil || !bytes.Equal(got, blob) {
		t.Errorf("failed write damaged the previous snapshot (err %v)", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("directory has %d entries, want only the snapshot", len(entries))
	}
}
