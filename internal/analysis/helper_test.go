package analysis

import (
	"go/types"
	"regexp"
	"strings"
	"testing"
)

// runTestdata loads testdata/<name>, runs the analyzers over it, and
// compares the diagnostics against `// want` comments in the fixture
// sources: each backtick-quoted regexp must match exactly one
// "<analyzer>: <message>" diagnostic reported on the comment's line,
// and every diagnostic must be claimed by a want. This is the
// analysistest idiom, self-contained (see the package doc for why
// golang.org/x/tools is unavailable here).
func runTestdata(t *testing.T, name string, analyzers ...*Analyzer) []Diagnostic {
	t.Helper()
	prog, err := LoadTestdata("testdata/" + name)
	if err != nil {
		t.Fatalf("loading testdata/%s: %v", name, err)
	}
	diags, err := Run(prog, analyzers)
	if err != nil {
		t.Fatalf("running analyzers over testdata/%s: %v", name, err)
	}

	type key struct {
		file string
		line int
	}
	quoted := regexp.MustCompile("`([^`]*)`")
	wants := map[key][]*regexp.Regexp{}
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					_, rest, ok := strings.Cut(c.Text, "// want ")
					if !ok {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					k := key{pos.Filename, pos.Line}
					ms := quoted.FindAllStringSubmatch(rest, -1)
					if len(ms) == 0 {
						t.Fatalf("%s:%d: want comment with no backtick-quoted pattern", pos.Filename, pos.Line)
					}
					for _, m := range ms {
						re, err := regexp.Compile(m[1])
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, m[1], err)
						}
						wants[k] = append(wants[k], re)
					}
				}
			}
		}
	}

	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		hit := -1
		for i, re := range wants[k] {
			if re.MatchString(d.Analyzer + ": " + d.Message) {
				hit = i
				break
			}
		}
		if hit < 0 {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		wants[k] = append(wants[k][:hit], wants[k][hit+1:]...)
	}
	for k, rs := range wants {
		for _, re := range rs {
			t.Errorf("%s:%d: no diagnostic matching %q", k.file, k.line, re)
		}
	}
	return diags
}

func TestMaprange(t *testing.T) { runTestdata(t, "maprange", Maprange) }

func TestRngtime(t *testing.T) { runTestdata(t, "rngtime", Rngtime) }

func TestHotpath(t *testing.T) { runTestdata(t, "hotpath", Hotpath) }

func TestSnapsym(t *testing.T) { runTestdata(t, "snapsym", Snapsym) }

// TestBareWaiversAreDiagnosed pins the suppression contract: a waiver
// without a justification still suppresses the underlying diagnostic,
// but is itself reported — so every silenced site in the tree documents
// why its contract does not apply. The expectations live here rather
// than in want comments because the diagnostic lands on the directive
// comment itself, where a same-line want comment cannot follow.
func TestBareWaiversAreDiagnosed(t *testing.T) {
	prog, err := LoadTestdata("testdata/bare")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(prog, All())
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (one per bare waiver):\n%v", len(diags), diags)
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "needs a justification") {
			t.Errorf("diagnostic does not name the missing justification: %s", d)
		}
	}
}

// TestLoadModulePackage exercises the real go-list-backed loader on an
// in-module package: sources parsed, types resolved, bodies indexed.
func TestLoadModulePackage(t *testing.T) {
	prog, err := Load("../..", "./internal/geo")
	if err != nil {
		t.Fatal(err)
	}
	pkg := prog.ByPath["facs/internal/geo"]
	if pkg == nil {
		t.Fatalf("facs/internal/geo not loaded; have %d packages", len(prog.Packages))
	}
	if len(pkg.Files) == 0 || pkg.Types == nil || pkg.Info == nil {
		t.Fatalf("package loaded without syntax or type info: %+v", pkg)
	}
	funcs := 0
	for _, obj := range pkg.Info.Defs {
		if _, ok := obj.(*types.Func); ok {
			funcs++
		}
	}
	if funcs == 0 {
		t.Fatal("no functions type-checked in facs/internal/geo")
	}
}
