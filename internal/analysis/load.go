package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one source-loaded, type-checked package.
type Package struct {
	Path  string
	Name  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	directives map[string]map[int][]Directive // filename -> line -> directives
}

// Program is a whole-module view: every package named by the load
// patterns plus their in-module dependencies, type-checked from source
// so analyzers can walk function bodies across package boundaries.
// Standard-library (and any other out-of-module) dependencies are
// imported from compiler export data and carry no syntax.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package // dependency order: callees before callers
	ByPath   map[string]*Package

	funcs map[*types.Func]*FuncBody
}

// FuncBody locates the declaration of a module function.
type FuncBody struct {
	Pkg  *Package
	Decl *ast.FuncDecl
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Export     string
	Standard   bool
	Module     *struct{ Path string }
	Incomplete bool
	Error      *struct{ Err string }
}

// Load builds a Program for the given `go list` patterns, resolved in
// dir (any directory inside the module). It shells out to
// `go list -export -deps`, which works offline: module sources are
// parsed and type-checked here, while every out-of-module dependency is
// imported from the export data the go tool just compiled into the
// build cache.
//
// Only GoFiles are loaded — _test.go files never participate, matching
// the analyzers' scope (the determinism and allocation contracts bind
// production code; tests exercise them at runtime).
func Load(dir string, patterns ...string) (*Program, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Name,Dir,GoFiles,Imports,ImportMap,Export,Standard,Module,Incomplete,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.Bytes())
	}

	var listed []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		listed = append(listed, &p)
	}

	mainModule, err := moduleName(dir)
	if err != nil {
		return nil, err
	}

	prog := &Program{Fset: token.NewFileSet(), ByPath: map[string]*Package{}}
	imp := newProgImporter(prog)
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
		}
		inModule := p.Module != nil && p.Module.Path == mainModule && !p.Standard
		if !inModule {
			if p.Export != "" {
				imp.exports[p.ImportPath] = p.Export
			}
			continue
		}
		// go list -deps emits dependencies before dependents, so every
		// in-module import of p is already type-checked.
		if err := prog.check(imp, p); err != nil {
			return nil, err
		}
	}
	return prog, nil
}

// LoadTestdata builds a Program from an analysistest-style tree:
// dir/src/<importpath>/*.go, each directory one package importable by
// its path relative to src. Imports between testdata packages resolve
// to each other; anything else resolves through `go list -export`
// (standard library, or the real module when a testdata package
// imports e.g. facs/internal/snap is *not* supported — stub it under
// src instead, so fixtures stay hermetic).
func LoadTestdata(dir string) (*Program, error) {
	src := filepath.Join(dir, "src")
	var pkgDirs []string
	err := filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		files, err := filepath.Glob(filepath.Join(path, "*.go"))
		if err != nil {
			return err
		}
		if len(files) > 0 {
			pkgDirs = append(pkgDirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(pkgDirs)

	prog := &Program{Fset: token.NewFileSet(), ByPath: map[string]*Package{}}
	imp := newProgImporter(prog)

	type tdPkg struct {
		p     *listedPackage
		after map[string]bool // testdata deps
	}
	var pkgs []*tdPkg
	external := map[string]bool{}
	for _, pd := range pkgDirs {
		rel, err := filepath.Rel(src, pd)
		if err != nil {
			return nil, err
		}
		importPath := filepath.ToSlash(rel)
		files, _ := filepath.Glob(filepath.Join(pd, "*.go"))
		sort.Strings(files)
		lp := &listedPackage{ImportPath: importPath, Dir: pd}
		for _, f := range files {
			lp.GoFiles = append(lp.GoFiles, filepath.Base(f))
		}
		pkgs = append(pkgs, &tdPkg{p: lp, after: map[string]bool{}})
	}
	isTestdata := func(path string) bool {
		for _, tp := range pkgs {
			if tp.p.ImportPath == path {
				return true
			}
		}
		return false
	}
	// Parse just the import clauses to order testdata packages and
	// collect external dependencies.
	for _, tp := range pkgs {
		for _, f := range tp.p.GoFiles {
			af, err := parser.ParseFile(token.NewFileSet(), filepath.Join(tp.p.Dir, f), nil, parser.ImportsOnly)
			if err != nil {
				return nil, err
			}
			for _, spec := range af.Imports {
				path := strings.Trim(spec.Path.Value, `"`)
				if isTestdata(path) {
					tp.after[path] = true
				} else {
					external[path] = true
				}
			}
		}
	}
	if len(external) > 0 {
		paths := make([]string, 0, len(external))
		for p := range external {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		if err := listExports(dir, paths, imp.exports); err != nil {
			return nil, err
		}
	}
	// Check in dependency order (testdata trees are tiny; a quadratic
	// ready-list is fine).
	done := map[string]bool{}
	for len(pkgs) > 0 {
		progress := false
		rest := pkgs[:0]
		for _, tp := range pkgs {
			ready := true
			for dep := range tp.after {
				if !done[dep] {
					ready = false
				}
			}
			if !ready {
				rest = append(rest, tp)
				continue
			}
			if err := prog.check(imp, tp.p); err != nil {
				return nil, err
			}
			done[tp.p.ImportPath] = true
			progress = true
		}
		if !progress {
			return nil, fmt.Errorf("import cycle among testdata packages in %s", dir)
		}
		pkgs = rest
	}
	return prog, nil
}

// check parses and type-checks one source package into prog.
func (prog *Program) check(imp *progImporter, p *listedPackage) error {
	var files []*ast.File
	for _, name := range p.GoFiles {
		af, err := parser.ParseFile(prog.Fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return err
		}
		files = append(files, af)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	imp.importMap = p.ImportMap
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(p.ImportPath, prog.Fset, files, info)
	if err != nil {
		return fmt.Errorf("type-checking %s: %w", p.ImportPath, err)
	}
	pkg := &Package{Path: p.ImportPath, Name: tpkg.Name(), Dir: p.Dir, Files: files, Types: tpkg, Info: info}
	prog.Packages = append(prog.Packages, pkg)
	prog.ByPath[p.ImportPath] = pkg
	return nil
}

// FuncDecl returns the declaration of fn if its source is loaded.
func (prog *Program) FuncDecl(fn *types.Func) *FuncBody {
	if prog.funcs == nil {
		prog.funcs = map[*types.Func]*FuncBody{}
		for _, pkg := range prog.Packages {
			for _, file := range pkg.Files {
				for _, decl := range file.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
						prog.funcs[fn] = &FuncBody{Pkg: pkg, Decl: fd}
					}
				}
			}
		}
	}
	return prog.funcs[fn]
}

// moduleName reports the main module path governing dir.
func moduleName(dir string) (string, error) {
	cmd := exec.Command("go", "list", "-m")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go list -m: %w", err)
	}
	return strings.TrimSpace(string(out)), nil
}

// listExports resolves import paths to export-data files via
// `go list -export -deps` and merges them into exports.
func listExports(dir string, paths []string, exports map[string]string) error {
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Export"}, paths...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("go list -export %s: %v\n%s", strings.Join(paths, " "), err, stderr.Bytes())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return err
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return nil
}

// progImporter resolves imports during type-checking: in-program
// packages by identity, everything else through the gc importer backed
// by the export files `go list -export` reported.
type progImporter struct {
	prog      *Program
	exports   map[string]string
	importMap map[string]string // the package currently being checked
	gc        types.Importer
}

func newProgImporter(prog *Program) *progImporter {
	pi := &progImporter{prog: prog, exports: map[string]string{}}
	pi.gc = importer.ForCompiler(prog.Fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := pi.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	return pi
}

func (pi *progImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := pi.importMap[path]; ok {
		path = mapped
	}
	if pkg, ok := pi.prog.ByPath[path]; ok {
		return pkg.Types, nil
	}
	return pi.gc.Import(path)
}
