package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive is one //facs: comment. The suite defines six:
//
//	//facs:hotpath              — marks a zero-alloc root (hotpath walks from it)
//	//facs:coldpath <why>       — excludes a function from the hotpath walk
//	//facs:alloc <why>          — waives one allocation site on the same line
//	//facs:orderless <why>      — waives one map iteration (order cannot escape)
//	//facs:wallclock <why>      — waives one time.Now site (never feeds decisions)
//	//facs:nosnap <why>         — waives one exported field from snapshot coverage
//
// Every waiver requires a non-empty justification; a bare waiver is
// itself a diagnostic and suppresses nothing. A directive applies to
// the line it is written on, or to the line directly below when it
// stands alone; function-level directives (hotpath, coldpath) live in
// the function's doc comment.
type Directive struct {
	Name string // "orderless", "hotpath", ...
	Arg  string // the justification text, may be empty
	Pos  token.Pos
}

const directivePrefix = "//facs:"

// parseDirective decodes one comment, or returns false.
func parseDirective(c *ast.Comment) (Directive, bool) {
	if !strings.HasPrefix(c.Text, directivePrefix) {
		return Directive{}, false
	}
	rest := strings.TrimPrefix(c.Text, directivePrefix)
	name, arg, _ := strings.Cut(rest, " ")
	return Directive{Name: name, Arg: strings.TrimSpace(arg), Pos: c.Pos()}, true
}

// directivesByLine indexes every //facs: comment of the package by file
// and line.
func (p *Package) directivesByLine(fset *token.FileSet) map[string]map[int][]Directive {
	if p.directives != nil {
		return p.directives
	}
	p.directives = map[string]map[int][]Directive{}
	for _, file := range p.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				d, ok := parseDirective(c)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := p.directives[pos.Filename]
				if byLine == nil {
					byLine = map[int][]Directive{}
					p.directives[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], d)
			}
		}
	}
	return p.directives
}

// directiveAt returns the named directive governing pos: on the same
// line, or alone on the line directly above.
func (pass *Pass) directiveAt(pkg *Package, pos token.Pos, name string) (Directive, bool) {
	position := pass.Prog.Fset.Position(pos)
	byLine := pkg.directivesByLine(pass.Prog.Fset)[position.Filename]
	for _, line := range []int{position.Line, position.Line - 1} {
		for _, d := range byLine[line] {
			if d.Name == name {
				return d, true
			}
		}
	}
	return Directive{}, false
}

// suppressed reports whether a diagnostic at pos is waived by the named
// directive. A waiver without a justification does not suppress — it
// is reported instead, so every suppression in the tree documents why
// the contract does not apply.
func (pass *Pass) suppressed(pkg *Package, pos token.Pos, name string) bool {
	d, ok := pass.directiveAt(pkg, pos, name)
	if !ok {
		return false
	}
	if d.Arg == "" {
		pass.Reportf(d.Pos, "//facs:%s needs a justification (\"//facs:%s <why>\")", name, name)
		return true // the site is acknowledged; the missing rationale is the diagnostic
	}
	return true
}

// funcDirective scans a function's doc comment for the named directive.
func funcDirective(decl *ast.FuncDecl, name string) (Directive, bool) {
	if decl.Doc == nil {
		return Directive{}, false
	}
	for _, c := range decl.Doc.List {
		if d, ok := parseDirective(c); ok && d.Name == name {
			return d, true
		}
	}
	return Directive{}, false
}

// isTestFile reports whether the file defining pos is a _test.go file.
// The contracts bind production code; tests exercise them at runtime
// and may freely range maps, stamp wall-clock times or allocate.
func (pass *Pass) isTestFile(pos token.Pos) bool {
	return strings.HasSuffix(pass.Prog.Fset.Position(pos).Filename, "_test.go")
}
