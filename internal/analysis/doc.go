// Package analysis implements facs-vet, the repo's static contract
// checkers. The suite encodes, as compile-time checks, the invariants
// the runtime gates can only catch after the fact: decision-trace
// determinism, the zero-alloc steady state, seeded-stream reproducibility
// and snapshot round-trip fidelity. ARCHITECTURE.md "Static contract
// enforcement" maps each analyzer onto the runtime gate it mirrors.
//
// # Analyzers
//
// maprange flags `for ... range` over a map in packages whose output
// feeds DecisionHash, NDJSON exports or ExportDemand. Go map iteration
// order is randomized per run, so any map range on those paths is a
// latent determinism bug: collect the keys, sort them, then iterate.
// Ranges whose order genuinely cannot be observed are waived with
// `//facs:orderless <why>`.
//
// rngtime flags ambient entropy: package-level math/rand state anywhere,
// rand.New outside internal/sim (all randomness must flow through named
// sim.NewStream streams), and time.Now in decision or simulation
// packages (simulated time comes from the scheduler; wall-clock reads
// that feed only operational metrics are waived with
// `//facs:wallclock <why>`).
//
// hotpath walks the call graph from every function annotated
// `//facs:hotpath` and flags allocation-prone constructs on the way:
// fmt.* calls, string concatenation, make/new, map/slice/composite
// literals, &composite, closure creation, append to anything but the
// slice being assigned, and interface boxing of non-pointer values. The
// walk resolves static calls only (interface and function-value calls
// are out of reach — the runtime allocation gate backstops those) and
// honours two escapes: `//facs:coldpath <why>` on a function declaration
// removes it from the walk, `//facs:alloc <why>` on a line waives one
// measured-warm or amortized allocation.
//
// snapsym pairs every SnapshotTo with its RestoreFrom and checks that
// the decoder mirrors the encoder's call sequence (loop bodies are
// collapsed, branches compared as path sets, error-path returns
// ignored), and that every exported field of the receiver is referenced
// by the snapshot method. Fields that are derived, config-hashed or
// deliberately transient are waived with `//facs:nosnap <why>`.
//
// # Directives
//
// Every waiver requires a justification after the directive word; a bare
// waiver still suppresses its diagnostic but is itself reported, so the
// suite can never be silenced without leaving a reason in the source.
// Line-scoped waivers (`orderless`, `wallclock`, `alloc`, `nosnap`)
// apply to their own line or to the line directly below; the
// function-scoped ones (`hotpath`, `coldpath`) live in the declaration's
// doc comment.
//
// # Loader
//
// The container this repo builds in has no module proxy access, so the
// framework is self-contained: load.go shells out to `go list` for
// package metadata, type-checks module packages from source in
// dependency order, and imports standard-library dependencies from the
// build cache's export data. LoadTestdata loads the analyzers' fixture
// trees under testdata/<analyzer>/src the same way.
//
// # Running
//
// `go run ./cmd/facs-vet ./...` runs the whole suite from the repo root
// and exits 1 on any diagnostic; see cmd/README.md for flags.
package analysis
