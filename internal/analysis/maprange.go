package analysis

import (
	"go/ast"
	"go/types"
)

// Maprange enforces the decision-determinism contract on iteration
// order: in every package whose output feeds the metropolis
// DecisionHash, the NDJSON wire, or the ghost-demand exchange
// (ExportDemand), ranging over a map is a replay-identity hazard — Go
// randomizes map order per run, so a lucky seed passes `go test` while
// production replays diverge. Every map range in scope must either be
// rewritten as sorted-key iteration or carry //facs:orderless with a
// justification for why the order provably cannot escape (keys
// collected then sorted, commutative reduction, ...).
var Maprange = &Analyzer{
	Name: "maprange",
	Doc:  "flags nondeterministic map iteration in packages that feed DecisionHash, NDJSON output or ExportDemand",
	Packages: []string{
		"facs",
		"facs/cmd/",
		"facs/internal/cac",
		"facs/internal/cell",
		"facs/internal/experiments",
		"facs/internal/facs",
		"facs/internal/scc",
		"facs/internal/serve",
		"facs/internal/shard",
	},
	Run: runMaprange,
}

func runMaprange(pass *Pass) error {
	pkg := pass.Pkg
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pkg.Info.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if pass.isTestFile(rng.For) || pass.suppressed(pkg, rng.For, "orderless") {
				return true
			}
			pass.Reportf(rng.For, "range over map %s is nondeterministic; iterate sorted keys or annotate //facs:orderless <why>", typeLabel(tv.Type))
			return true
		})
	}
	return nil
}

// typeLabel renders a type tersely for diagnostics.
func typeLabel(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
