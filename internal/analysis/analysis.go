package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Analyzer is one static contract checker. The framework mirrors the
// golang.org/x/tools/go/analysis shape (Name/Doc/Run over a typed
// package) but is self-contained: the container this repo builds in has
// no module proxy access, so the suite runs on the standard library's
// go/ast and go/types alone, driven by the loader in load.go.
type Analyzer struct {
	// Name is the analyzer's short name, used as the diagnostic prefix.
	Name string
	// Doc is a one-paragraph description of the contract enforced.
	Doc string
	// Packages scopes a per-package analyzer to import paths: an entry
	// matches exactly, or as a prefix when it ends in "/". Nil means
	// every loaded package.
	Packages []string
	// ProgramLevel marks analyzers that run once over the whole program
	// (pass.Pkg == nil) instead of once per package; hotpath walks a
	// cross-package call graph and needs the global view.
	ProgramLevel bool
	// Run reports the analyzer's diagnostics through pass.Report.
	Run func(pass *Pass) error
}

// InScope reports whether the analyzer applies to the package path.
func (a *Analyzer) InScope(path string) bool {
	if a.Packages == nil {
		return true
	}
	for _, p := range a.Packages {
		if strings.HasSuffix(p, "/") {
			if strings.HasPrefix(path, p) {
				return true
			}
		} else if path == p {
			return true
		}
	}
	return false
}

// Pass carries one analyzer invocation's inputs: the loaded program,
// the package under analysis (nil for program-level analyzers) and the
// diagnostic sink.
type Pass struct {
	Prog     *Program
	Pkg      *Package
	Analyzer *Analyzer

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Prog.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one reported contract violation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// All is the full facs-vet suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Maprange, Rngtime, Hotpath, Snapsym}
}

// Run applies the analyzers to every in-scope package of prog and
// returns the diagnostics sorted by position, deduplicated.
func Run(prog *Program, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	sink := func(d Diagnostic) { diags = append(diags, d) }
	for _, a := range analyzers {
		if a.ProgramLevel {
			pass := &Pass{Prog: prog, Analyzer: a, report: sink}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %w", a.Name, err)
			}
			continue
		}
		for _, pkg := range prog.Packages {
			if !a.InScope(pkg.Path) {
				continue
			}
			pass := &Pass{Prog: prog, Pkg: pkg, Analyzer: a, report: sink}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	out := diags[:0]
	for i, d := range diags {
		if i > 0 && d == diags[i-1] {
			continue
		}
		out = append(out, d)
	}
	return out, nil
}
