package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Snapsym enforces the snapshot round-trip contract at compile time:
// for every SnapshotTo/RestoreFrom pair (exported or not), the ordered
// sequence of snap.Encoder payload writes must mirror the sequence of
// snap.Decoder payload reads — the envelope has no field tags, so one
// missing or transposed read silently shears every subsequent field
// and the checksum cannot help (it validates bytes, not their
// interpretation). It also requires every exported non-func field of a
// snapshotting type to be referenced while capturing (directly or via
// helpers like the config-hash builders), or explicitly waived with
// //facs:nosnap <why> — new exported state that silently misses the
// snapshot would survive a crash as a zero value.
//
// The sequence check is control-flow aware but approximate in a
// direction chosen to avoid false positives: for each function it
// enumerates the call sequences of all branch paths that reach the
// function's end (early error returns are excluded), takes each loop
// body exactly once, collapses consecutive repeats of the same method
// (an unrolled write loop mirrors a rolled read loop), and compares
// the resulting path sets. Pairs whose branch structure exceeds the
// enumeration budget are skipped.
var Snapsym = &Analyzer{
	Name: "snapsym",
	Doc:  "checks snap.Encoder/Decoder call-sequence symmetry and exported-field coverage of SnapshotTo/RestoreFrom pairs",
	Run:  runSnapsym,
}

// snapPayloadMethods are the Encoder/Decoder methods that move payload
// bytes; bookkeeping calls (Close, Err, Len, Fail) are not sequenced.
var snapPayloadMethods = map[string]bool{
	"U8": true, "Bool": true, "U32": true, "U64": true, "I64": true,
	"Int": true, "F64": true, "Str": true, "F64s": true, "Blob": true,
}

const snapsymMaxPaths = 512

func runSnapsym(pass *Pass) error {
	pkg := pass.Pkg
	type pair struct{ snap, restore *ast.FuncDecl }
	pairs := map[*types.TypeName]*pair{}
	var order []*types.TypeName
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			kind := 0
			switch fd.Name.Name {
			case "SnapshotTo", "snapshotTo":
				kind = 1
			case "RestoreFrom", "restoreFrom":
				kind = 2
			default:
				continue
			}
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			named := receiverNamed(fn)
			if named == nil {
				continue
			}
			p := pairs[named.Obj()]
			if p == nil {
				p = &pair{}
				pairs[named.Obj()] = p
				order = append(order, named.Obj())
			}
			if kind == 1 {
				p.snap = fd
			} else {
				p.restore = fd
			}
		}
	}
	for _, tn := range order {
		p := pairs[tn]
		if p.snap == nil || p.restore == nil {
			continue
		}
		checkSnapSequences(pass, tn, p.snap, p.restore)
		checkSnapFieldCoverage(pass, tn, p.snap)
	}
	return nil
}

func receiverNamed(fn *types.Func) *types.Named {
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return nil
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// checkSnapSequences compares the write-path set of SnapshotTo with
// the read-path set of RestoreFrom.
func checkSnapSequences(pass *Pass, tn *types.TypeName, snapFD, restoreFD *ast.FuncDecl) {
	writes, wOK := snapPathSet(pass.Pkg, snapFD, "Encoder")
	reads, rOK := snapPathSet(pass.Pkg, restoreFD, "Decoder")
	if !wOK || !rOK {
		return // over the enumeration budget: cannot verify
	}
	if len(writes) == 0 && len(reads) == 0 {
		return
	}
	missing := diffPaths(writes, reads)
	extra := diffPaths(reads, writes)
	if len(missing) == 0 && len(extra) == 0 {
		return
	}
	var parts []string
	if len(missing) > 0 {
		parts = append(parts, "write path ["+missing[0]+"] has no matching read path")
	}
	if len(extra) > 0 {
		parts = append(parts, "read path ["+extra[0]+"] has no matching write path")
	}
	pass.Reportf(restoreFD.Name.Pos(), "%s.%s does not mirror %s: %s (sequences are loop-collapsed; branches compared as path sets)",
		tn.Name(), restoreFD.Name.Name, snapFD.Name.Name, strings.Join(parts, "; "))
}

func diffPaths(a, b []string) []string {
	in := map[string]bool{}
	for _, p := range b {
		in[p] = true
	}
	var out []string
	for _, p := range a {
		if !in[p] {
			out = append(out, p)
		}
	}
	return out
}

// snapPath is one branch path's call sequence while it is being built.
type snapPath struct {
	seq  []string
	term int // 0 flows on, 1 returned (kept), 2 returned (error path, dropped)
}

// snapPathSet enumerates the payload-call sequences of every kept
// branch path through fd, loop bodies taken once, consecutive repeats
// collapsed. ok is false when the function exceeds the path budget.
func snapPathSet(pkg *Package, fd *ast.FuncDecl, recvType string) (paths []string, ok bool) {
	w := &snapWalker{pkg: pkg, recvType: recvType}
	final := w.stmts(fd.Body.List, []snapPath{{}})
	if w.overflow {
		return nil, false
	}
	seen := map[string]bool{}
	for _, p := range final {
		if p.term == 2 {
			continue
		}
		key := strings.Join(collapseRuns(p.seq), " ")
		if !seen[key] {
			seen[key] = true
			paths = append(paths, key)
		}
	}
	sort.Strings(paths)
	return paths, true
}

func collapseRuns(seq []string) []string {
	var out []string
	for _, s := range seq {
		if len(out) == 0 || out[len(out)-1] != s {
			out = append(out, s)
		}
	}
	return out
}

type snapWalker struct {
	pkg      *Package
	recvType string // "Encoder" or "Decoder"
	overflow bool
}

// stmts threads every flowing path through the statement list.
func (w *snapWalker) stmts(list []ast.Stmt, in []snapPath) []snapPath {
	cur := in
	for _, stmt := range list {
		var next []snapPath
		for _, p := range cur {
			if p.term != 0 {
				next = append(next, p)
				continue
			}
			next = append(next, w.stmt(stmt, p)...)
		}
		cur = next
		if len(cur) > snapsymMaxPaths {
			w.overflow = true
			return cur[:0]
		}
	}
	return cur
}

// stmt extends one flowing path through a statement, branching as
// needed.
func (w *snapWalker) stmt(s ast.Stmt, p snapPath) []snapPath {
	extend := func(base snapPath, calls ...[]string) snapPath {
		seq := append([]string{}, base.seq...)
		for _, c := range calls {
			seq = append(seq, c...)
		}
		return snapPath{seq: seq, term: base.term}
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		return w.stmts(s.List, []snapPath{p})
	case *ast.IfStmt:
		if s.Init != nil {
			outs := w.stmt(s.Init, p)
			var all []snapPath
			for _, o := range outs {
				all = append(all, w.ifTail(s, o)...)
			}
			return all
		}
		return w.ifTail(s, p)
	case *ast.SwitchStmt:
		p = extend(p, w.callsIn(s.Init), w.callsInExpr(s.Tag))
		return w.caseBodies(s.Body, p)
	case *ast.TypeSwitchStmt:
		p = extend(p, w.callsIn(s.Init), w.callsIn(s.Assign))
		return w.caseBodies(s.Body, p)
	case *ast.ForStmt:
		p = extend(p, w.callsIn(s.Init), w.callsInExpr(s.Cond), w.callsIn(s.Post))
		return w.stmts(s.Body.List, []snapPath{p})
	case *ast.RangeStmt:
		p = extend(p, w.callsInExpr(s.X))
		return w.stmts(s.Body.List, []snapPath{p})
	case *ast.ReturnStmt:
		p = extend(p, nil)
		for _, r := range s.Results {
			p.seq = append(p.seq, w.callsInExpr(r)...)
		}
		if returnKept(w.pkg, s) {
			p.term = 1
		} else {
			p.term = 2
		}
		return []snapPath{p}
	case *ast.BranchStmt:
		// break/continue rejoin the flow after the (once-unrolled) loop;
		// treating them as no-ops keeps the common "break on latched
		// error" guard from truncating the compared sequence.
		return []snapPath{p}
	default:
		return []snapPath{extend(p, w.callsIn(s))}
	}
}

func (w *snapWalker) ifTail(s *ast.IfStmt, p snapPath) []snapPath {
	p.seq = append(append([]string{}, p.seq...), w.callsInExpr(s.Cond)...)
	thenPaths := w.stmts(s.Body.List, []snapPath{p})
	var elsePaths []snapPath
	if s.Else != nil {
		elsePaths = w.stmt(s.Else, p)
	} else {
		elsePaths = []snapPath{p}
	}
	return append(thenPaths, elsePaths...)
}

func (w *snapWalker) caseBodies(body *ast.BlockStmt, p snapPath) []snapPath {
	var out []snapPath
	hasDefault := false
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		branch := p
		branch.seq = append([]string{}, p.seq...)
		for _, e := range cc.List {
			branch.seq = append(branch.seq, w.callsInExpr(e)...)
		}
		out = append(out, w.stmts(cc.Body, []snapPath{branch})...)
	}
	if !hasDefault || len(out) == 0 {
		out = append(out, p)
	}
	return out
}

// callsIn collects tracked payload calls of a leaf statement in source
// order.
func (w *snapWalker) callsIn(n ast.Node) []string {
	if n == nil {
		return nil
	}
	var out []string
	ast.Inspect(n, func(x ast.Node) bool {
		if call, ok := x.(*ast.CallExpr); ok {
			if name, ok := w.payloadCall(call); ok {
				out = append(out, name)
			}
		}
		return true
	})
	return out
}

func (w *snapWalker) callsInExpr(e ast.Expr) []string {
	if e == nil {
		return nil
	}
	return w.callsIn(e)
}

// payloadCall reports whether call is a payload method on the tracked
// snap type.
func (w *snapWalker) payloadCall(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !snapPayloadMethods[sel.Sel.Name] {
		return "", false
	}
	tv, ok := w.pkg.Info.Types[sel.X]
	if !ok {
		return "", false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != w.recvType {
		return "", false
	}
	if pkg := named.Obj().Pkg(); pkg == nil || pkg.Name() != "snap" {
		return "", false
	}
	return sel.Sel.Name, true
}

// returnKept classifies a return statement: error-path returns are
// excluded from the compared path set. A return is kept when every
// result is nil, a bare return, or a Close/Err call on the snap
// Encoder/Decoder (the canonical success epilogues).
func returnKept(pkg *Package, s *ast.ReturnStmt) bool {
	if len(s.Results) == 0 {
		return true
	}
	for _, r := range s.Results {
		switch r := r.(type) {
		case *ast.Ident:
			if r.Name != "nil" {
				return false
			}
		case *ast.CallExpr:
			sel, ok := r.Fun.(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "Close" && sel.Sel.Name != "Err") {
				return false
			}
			tv, ok := pkg.Info.Types[sel.X]
			if !ok {
				return false
			}
			t := tv.Type
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok || (named.Obj().Name() != "Encoder" && named.Obj().Name() != "Decoder") {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// checkSnapFieldCoverage requires every exported, snapshotable field
// of the receiver type to be referenced while capturing.
func checkSnapFieldCoverage(pass *Pass, tn *types.TypeName, snapFD *ast.FuncDecl) {
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return
	}
	referenced := map[*types.Var]bool{}
	collectFieldRefs(pass, pass.Pkg, snapFD, referenced, map[*ast.FuncDecl]bool{}, 4)
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Exported() || referenced[f] {
			continue
		}
		switch f.Type().Underlying().(type) {
		case *types.Signature, *types.Chan:
			continue // not snapshotable state
		}
		if pass.suppressed(pass.Pkg, f.Pos(), "nosnap") {
			continue
		}
		pass.Reportf(f.Pos(), "exported field %s.%s is not referenced by %s; capture it (or fold it into the config hash) or annotate //facs:nosnap <why>",
			tn.Name(), f.Name(), snapFD.Name.Name)
	}
}

// collectFieldRefs gathers every struct field selected in fd's body
// and, transitively, in the bodies of statically-resolved callees
// (bounded depth) — config-hash helpers count as capturing. pkg must
// be the package fd is declared in; callees resolve through their own
// packages' type info.
func collectFieldRefs(pass *Pass, pkg *Package, fd *ast.FuncDecl, out map[*types.Var]bool, seen map[*ast.FuncDecl]bool, depth int) {
	if fd == nil || fd.Body == nil || seen[fd] || depth < 0 {
		return
	}
	seen[fd] = true
	recurse := func(fn *types.Func) {
		if callee := pass.Prog.FuncDecl(fn); callee != nil {
			collectFieldRefs(pass, callee.Pkg, callee.Decl, out, seen, depth-1)
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if sel, ok := pkg.Info.Selections[n]; ok {
				if v, ok := sel.Obj().(*types.Var); ok && v.IsField() {
					out[v] = true
				}
			}
			if fn, ok := pkg.Info.Uses[n.Sel].(*types.Func); ok {
				recurse(fn)
			}
		case *ast.Ident:
			if fn, ok := pkg.Info.Uses[n].(*types.Func); ok {
				recurse(fn)
			}
		}
		return true
	})
}
