package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Hotpath turns the runtime 0-allocs/wave gate
// (TestMetropolisSteadyStateAllocs) into a compile-time diagnostic.
// Functions annotated //facs:hotpath — the metropolis runWave chain,
// the DecideBatchInto implementations, serve.SubmitAllInto,
// shard.SubmitWaveTo, scc ExportDemand, the BaseStation admit/release
// path — are walked transitively through every statically-resolvable
// call with a body in the module, and each allocation-prone construct
// is reported at its line: fmt.* calls, string concatenation,
// make/new, map and slice literals (and &composite literals), closure
// creation, non-self append, and interface boxing of non-pointer
// values at call sites.
//
// Bounds, by construction: calls through interface values or function
// variables are not resolved (the five controller DecideBatchInto
// implementations are therefore each annotated directly rather than
// relying on the cac.DecideAllInto dispatch), and the walk stops at
// functions annotated //facs:coldpath <why> (error formatting and
// other branches the runtime gate never measures warm). Self-appends
// (x = append(x, ...), including through a reslice of x) are allowed:
// they amortize to zero at steady state once scratch is warm, which is
// exactly what the runtime gate measures. A site the gate has proven
// warm-only can be waived with //facs:alloc <why>.
var Hotpath = &Analyzer{
	Name:         "hotpath",
	Doc:          "flags allocation-prone constructs reachable from //facs:hotpath roots",
	ProgramLevel: true,
	Run:          runHotpath,
}

const (
	hotpathMaxDepth = 32
	hotpathMaxFuncs = 2048
)

type hotpathWalker struct {
	pass    *Pass
	visited map[*types.Func]bool
	queue   []hotpathItem
}

type hotpathItem struct {
	fn    *types.Func
	root  string
	depth int
}

func runHotpath(pass *Pass) error {
	w := &hotpathWalker{pass: pass, visited: map[*types.Func]bool{}}
	// Roots in deterministic (load, file, declaration) order.
	for _, pkg := range pass.Prog.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if _, ok := funcDirective(fd, "hotpath"); !ok {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				w.enqueue(fn, funcLabel(fn), 0)
			}
		}
	}
	for len(w.queue) > 0 {
		item := w.queue[0]
		w.queue = w.queue[1:]
		w.scan(item)
	}
	return nil
}

func funcLabel(fn *types.Func) string {
	sig := fn.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}

func (w *hotpathWalker) enqueue(fn *types.Func, root string, depth int) {
	if w.visited[fn] || depth > hotpathMaxDepth || len(w.visited) >= hotpathMaxFuncs {
		return
	}
	w.visited[fn] = true
	w.queue = append(w.queue, hotpathItem{fn: fn, root: root, depth: depth})
}

// scan reports allocation-prone constructs in one function body and
// enqueues its statically-resolved callees.
func (w *hotpathWalker) scan(item hotpathItem) {
	body := w.pass.Prog.FuncDecl(item.fn)
	if body == nil {
		return // out-of-module or bodyless: the walk's documented bound
	}
	if d, ok := funcDirective(body.Decl, "coldpath"); ok {
		if d.Arg == "" {
			w.pass.Reportf(d.Pos, "//facs:coldpath needs a justification (\"//facs:coldpath <why>\")")
		}
		return
	}
	pkg := body.Pkg
	info := pkg.Info
	flag := func(pos token.Pos, format string, args ...any) {
		if w.pass.suppressed(pkg, pos, "alloc") {
			return
		}
		msg := fmt.Sprintf(format, args...)
		w.pass.Reportf(pos, "%s (on the zero-alloc path of //facs:hotpath %s)", msg, item.root)
	}

	// ast.Inspect is pre-order, so an assignment is seen before the
	// append call on its right-hand side; record the pairing to
	// recognize the self-append idiom when the call is visited.
	assignOf := map[*ast.CallExpr]*ast.AssignStmt{}
	ast.Inspect(body.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			w.scanCall(item, pkg, n, assignOf[n], flag)
		case *ast.CompositeLit:
			switch info.Types[n].Type.Underlying().(type) {
			case *types.Map:
				flag(n.Pos(), "map literal allocates")
			case *types.Slice:
				flag(n.Pos(), "slice literal allocates")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					flag(n.Pos(), "&composite literal allocates")
				}
			}
		case *ast.FuncLit:
			flag(n.Pos(), "closure creation allocates")
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(info.Types[n.X].Type) {
				flag(n.Pos(), "string concatenation allocates")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(info.Types[n.Lhs[0]].Type) {
				flag(n.Pos(), "string += allocates")
			}
			if len(n.Rhs) == 1 {
				if call, ok := n.Rhs[0].(*ast.CallExpr); ok {
					assignOf[call] = n
				}
			}
		}
		return true
	})
}

func (w *hotpathWalker) scanCall(item hotpathItem, pkg *Package, call *ast.CallExpr, assign *ast.AssignStmt, flag func(token.Pos, string, ...any)) {
	info := pkg.Info

	// Conversions, including boxing into an interface type.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 && boxes(info.Types[call.Args[0]].Type) {
			flag(call.Pos(), "converting %s to %s boxes a non-pointer value", typeLabel(info.Types[call.Args[0]].Type), typeLabel(tv.Type))
		}
		return
	}

	var callee *types.Func
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		switch obj := info.Uses[fun].(type) {
		case *types.Builtin:
			w.scanBuiltin(obj.Name(), call, assign, flag)
			return
		case *types.Func:
			callee = obj
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			callee = fn
		}
	}
	if callee == nil {
		return // function value or unresolvable: documented bound
	}
	if callee.Pkg() != nil && callee.Pkg().Path() == "fmt" {
		flag(call.Pos(), "fmt.%s allocates", callee.Name())
		return
	}
	// Interface-typed parameters box concrete non-pointer arguments.
	sig, ok := callee.Type().(*types.Signature)
	if ok {
		params := sig.Params()
		for i, arg := range call.Args {
			var pt types.Type
			switch {
			case sig.Variadic() && i >= params.Len()-1:
				if call.Ellipsis.IsValid() {
					continue // passing a slice through, no per-element boxing
				}
				pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			case i < params.Len():
				pt = params.At(i).Type()
			}
			if pt != nil && types.IsInterface(pt) && boxes(info.Types[arg].Type) {
				flag(arg.Pos(), "passing %s as %s boxes a non-pointer value", typeLabel(info.Types[arg].Type), typeLabel(pt))
			}
		}
	}
	w.enqueue(callee, item.root, item.depth+1)
}

func (w *hotpathWalker) scanBuiltin(name string, call *ast.CallExpr, assign *ast.AssignStmt, flag func(token.Pos, string, ...any)) {
	switch name {
	case "make":
		flag(call.Pos(), "make allocates")
	case "new":
		flag(call.Pos(), "new allocates")
	case "append":
		if !selfAppend(call, assign) {
			flag(call.Pos(), "append to a fresh slice allocates; grow a reused buffer (x = append(x, ...)) instead")
		}
	}
}

// selfAppend recognizes the amortized-zero idiom x = append(x, ...),
// including appends through a reslice of x (x = append(x[:0], ...)):
// the enclosing statement must be a plain assignment whose single LHS
// is the same expression as append's first argument.
func selfAppend(call *ast.CallExpr, assign *ast.AssignStmt) bool {
	if len(call.Args) == 0 || assign == nil || len(assign.Lhs) != 1 || assign.Tok != token.ASSIGN {
		return false
	}
	dst := call.Args[0]
	for {
		if s, ok := dst.(*ast.SliceExpr); ok {
			dst = s.X
			continue
		}
		break
	}
	return types.ExprString(assign.Lhs[0]) == types.ExprString(dst)
}

// isString reports whether t's underlying type is string.
func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// boxes reports whether storing a value of type t in an interface
// allocates: every kind except pointer-shaped ones (pointers, maps,
// channels, funcs, unsafe pointers) and interfaces themselves. Untyped
// nil never boxes.
func boxes(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return false
	case *types.Basic:
		return u.Kind() != types.UntypedNil && u.Kind() != types.UnsafePointer
	}
	return true
}
