package analysis

import (
	"go/ast"
	"go/types"
)

// Rngtime enforces the replay contract on entropy and clocks: decision
// and simulation packages must draw randomness through the seeded,
// draw-counted streams of facs/internal/sim (NewRNG/NewCountedStream)
// and take time from the simulation clock, never the host. A
// package-level math/rand call uses the process-global source (shared,
// unseedable per run), a rand.New outside internal/sim creates an
// untracked stream whose draws a snapshot cannot fast-forward, and a
// time.Now in a decision path makes restore-then-replay diverge from
// the uninterrupted run. Wall-clock reads that provably never feed a
// decision (latency stamps, progress logs) carry //facs:wallclock with
// a justification.
var Rngtime = &Analyzer{
	Name: "rngtime",
	Doc:  "forbids global math/rand, rand.New outside internal/sim, and time.Now in decision/simulation packages",
	Packages: []string{
		"facs",
		"facs/internal/cac",
		"facs/internal/cell",
		"facs/internal/experiments",
		"facs/internal/facs",
		"facs/internal/fuzzy",
		"facs/internal/geo",
		"facs/internal/gps",
		"facs/internal/mobility",
		"facs/internal/scc",
		"facs/internal/serve",
		"facs/internal/shard",
		"facs/internal/sim",
		"facs/internal/traffic",
	},
	Run: runRngtime,
}

// simPackage is the one package allowed to construct math/rand sources:
// it wraps them in counted, snapshot-resumable streams.
const simPackage = "facs/internal/sim"

func runRngtime(pass *Pass) error {
	pkg := pass.Pkg
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if pass.isTestFile(call.Pos()) {
				return true
			}
			switch fn.Pkg().Path() {
			case "math/rand", "math/rand/v2":
				if fn.Type().(*types.Signature).Recv() != nil {
					return true // methods on an explicit *rand.Rand are fine
				}
				switch fn.Name() {
				case "New", "NewSource", "NewPCG", "NewChaCha8", "NewZipf":
					if pkg.Path == simPackage {
						return true
					}
					pass.Reportf(call.Pos(), "rand.%s outside %s creates an untracked stream; build it through sim.NewRNG or sim.NewCountedStream", fn.Name(), simPackage)
				default:
					pass.Reportf(call.Pos(), "package-level rand.%s draws from the process-global source; use a seeded *rand.Rand from %s", fn.Name(), simPackage)
				}
			case "time":
				switch fn.Name() {
				case "Now", "Since", "Until":
					if pass.suppressed(pkg, call.Pos(), "wallclock") {
						return true
					}
					pass.Reportf(call.Pos(), "time.%s reads the host clock in a decision/simulation package; take simulated time, or annotate //facs:wallclock <why> if it never feeds a decision", fn.Name())
				}
			}
			return true
		})
	}
	return nil
}
