// Package outofscope ranges a map outside the analyzer's package
// scope: its output feeds none of the deterministic surfaces, so no
// diagnostic is expected.
package outofscope

func Sum(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
