package cac

// Test files are exempt: the determinism contracts bind production
// code, while tests may freely range maps.
func sumForTest(m map[Class]int) int {
	total := 0
	for _, bu := range m {
		total += bu
	}
	return total
}
