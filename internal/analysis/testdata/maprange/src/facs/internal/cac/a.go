// Package cac is a maprange fixture standing in for the real
// facs/internal/cac (the import path, not the code, puts it in scope).
package cac

import "sort"

// Class mirrors the traffic class key type used by the real policies.
type Class int

// SumBU ranges a map with observable order: flagged.
func SumBU(m map[Class]int) int {
	total := 0
	for _, bu := range m { // want `maprange: range over map map\[cac.Class\]int is nondeterministic`
		total += bu
	}
	return total
}

// SumBUWaived carries a justified waiver: the reduction commutes.
func SumBUWaived(m map[Class]int) int {
	total := 0
	//facs:orderless commutative integer sum; order cannot escape
	for _, bu := range m {
		total += bu
	}
	return total
}

// Keys is the sanctioned collect-then-sort idiom, waived inline.
func Keys(m map[Class]int) []Class {
	keys := make([]Class, 0, len(m))
	for k := range m { //facs:orderless key collection; sorted before any order-sensitive use
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Ordered iterates a slice, not a map: clean.
func Ordered(classes []Class, m map[Class]int) int {
	total := 0
	for _, c := range classes {
		total += m[c]
	}
	return total
}
