// Command tool exercises the "facs/cmd/" prefix scope entry.
package main

func main() {
	counts := map[string]int{"a": 1, "b": 2}
	keys := ""
	for k := range counts { // want `maprange: range over map map\[string\]int is nondeterministic`
		keys += k
	}
	_ = keys
}
