// Package serve holds waivers with no justification: each suppresses
// its underlying diagnostic but is reported itself (asserted directly
// in TestBareWaiversAreDiagnosed — the diagnostic lands on the
// directive comment, where no want comment can follow on the line).
package serve

import "time"

func Bare(m map[int]int) (int, time.Time) {
	total := 0
	for _, v := range m { //facs:orderless
		total += v
	}
	now := time.Now() //facs:wallclock
	return total, now
}
