// Package snap is a hermetic stub of the real facs/internal/snap
// envelope codec — just enough method surface for the snapsym
// fixtures, so the testdata tree needs nothing from the module proper.
package snap

// Encoder mirrors the payload-write surface of the real encoder.
type Encoder struct{ n int }

func (e *Encoder) U8(v uint8)       { e.n++ }
func (e *Encoder) Bool(v bool)      { e.n++ }
func (e *Encoder) U32(v uint32)     { e.n++ }
func (e *Encoder) U64(v uint64)     { e.n++ }
func (e *Encoder) I64(v int64)      { e.n++ }
func (e *Encoder) Int(v int)        { e.n++ }
func (e *Encoder) F64(v float64)    { e.n++ }
func (e *Encoder) Str(v string)     { e.n++ }
func (e *Encoder) F64s(v []float64) { e.n++ }
func (e *Encoder) Blob(v []byte)    { e.n++ }
func (e *Encoder) Close() error     { return nil }

// Decoder mirrors the payload-read surface of the real decoder.
type Decoder struct{ n int }

func (d *Decoder) U8() uint8       { d.n++; return 0 }
func (d *Decoder) Bool() bool      { d.n++; return false }
func (d *Decoder) U32() uint32     { d.n++; return 0 }
func (d *Decoder) U64() uint64     { d.n++; return 0 }
func (d *Decoder) I64() int64      { d.n++; return 0 }
func (d *Decoder) Int() int        { d.n++; return 0 }
func (d *Decoder) F64() float64    { d.n++; return 0 }
func (d *Decoder) Str() string     { d.n++; return "" }
func (d *Decoder) F64s() []float64 { d.n++; return nil }
func (d *Decoder) Blob() []byte    { d.n++; return nil }
func (d *Decoder) Err() error      { return nil }
