// Package fix exercises the snapsym sequence and field-coverage
// checks against the stubbed snap codec.
package fix

import "facs/internal/snap"

// Good round-trips symmetrically: an unrolled header, a length-prefixed
// loop (taken once and run-collapsed on both sides), all exported
// fields captured.
type Good struct {
	Count int
	Items []float64
}

func (g *Good) SnapshotTo(e *snap.Encoder) error {
	e.Int(g.Count)
	e.U32(uint32(len(g.Items)))
	for _, v := range g.Items {
		e.F64(v)
	}
	return e.Close()
}

func (g *Good) RestoreFrom(d *snap.Decoder) error {
	g.Count = d.Int()
	n := d.U32()
	g.Items = g.Items[:0]
	for i := uint32(0); i < n; i++ {
		g.Items = append(g.Items, d.F64())
	}
	return d.Err()
}

// Sheared writes a U64 the reader consumes as U32: every later field
// would silently shift, which is exactly the defect class flagged.
type Sheared struct {
	Gen uint64
}

func (s *Sheared) SnapshotTo(e *snap.Encoder) error {
	e.U64(s.Gen)
	return e.Close()
}

func (s *Sheared) RestoreFrom(d *snap.Decoder) error { // want `snapsym: Sheared.RestoreFrom does not mirror SnapshotTo: write path \[U64\] has no matching read path`
	s.Gen = uint64(d.U32())
	return d.Err()
}

// Partial misses one exported field, waives another, and may ignore
// unexported scratch.
type Partial struct {
	Kept   int
	Lost   int // want `snapsym: exported field Partial.Lost is not referenced by SnapshotTo`
	Waived int //facs:nosnap derived cache; rebuilt on first use after restore
	hidden int
}

func (p *Partial) SnapshotTo(e *snap.Encoder) error {
	e.Int(p.Kept)
	e.Int(p.hidden)
	return e.Close()
}

func (p *Partial) RestoreFrom(d *snap.Decoder) error {
	p.Kept = d.Int()
	p.hidden = d.Int()
	return d.Err()
}

// ViaHelper captures one field through a hash helper (transitive
// reference coverage) and takes an early error return the sequence
// comparison must drop.
type ViaHelper struct {
	A int
	B int
}

func (v *ViaHelper) hash() int { return v.A ^ v.B }

func (v *ViaHelper) SnapshotTo(e *snap.Encoder) error {
	if v.B < 0 {
		return errNegative()
	}
	e.Int(v.hash())
	e.Int(v.B)
	return e.Close()
}

func (v *ViaHelper) RestoreFrom(d *snap.Decoder) error {
	_ = d.Int()
	v.B = d.Int()
	return d.Err()
}

func errNegative() error { return nil }
