// Package hot exercises the hotpath walk: a //facs:hotpath root, its
// transitive callees, the coldpath/alloc escape hatches and the
// self-append idiom.
package hot

import "fmt"

type sink interface{ accept() }

type box struct{ n int }

func (box) accept() {}

var global []int

// Root is the annotated zero-alloc root.
//
//facs:hotpath
func Root(xs []int, scratch []int) string {
	msg := fmt.Sprintf("%d", len(xs)) // want `hotpath: fmt.Sprintf allocates`
	msg = msg + "!"                   // want `hotpath: string concatenation allocates`
	buf := make([]int, len(xs))       // want `hotpath: make allocates`
	_ = buf
	pairs := map[int]int{} // want `hotpath: map literal allocates`
	_ = pairs
	lit := []int{1, 2} // want `hotpath: slice literal allocates`
	_ = lit
	ptr := &box{n: 1} // want `hotpath: &composite literal allocates`
	_ = ptr
	f := func() {} // want `hotpath: closure creation allocates`
	f()
	global = append(global, 1) // self-append: amortized to zero once warm
	fresh := append(xs, 1)     // want `hotpath: append to a fresh slice allocates`
	_ = fresh
	scratch = append(scratch[:0], 1) // self-append through a reslice: clean
	_ = scratch
	helper()
	cold()
	waived()
	take(box{}) // want `hotpath: passing hot.box as hot.sink boxes a non-pointer value`
	return msg
}

// helper is reached transitively from Root.
func helper() {
	_ = make([]byte, 8) // want `hotpath: make allocates`
}

// cold is excluded from the walk.
//
//facs:coldpath error formatting exercised only on rejected input
func cold() {
	_ = fmt.Errorf("boom")
}

// waived allocates at a site the runtime gate has measured warm-only.
func waived() {
	_ = make([]byte, 8) //facs:alloc scratch warmed during the first wave; steady state reuses it
}

func take(s sink) { s.accept() }

// Unrooted is not reachable from any //facs:hotpath root: clean.
func Unrooted() {
	_ = make([]byte, 8)
}
