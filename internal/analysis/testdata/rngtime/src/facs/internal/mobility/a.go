// Package mobility is an rngtime fixture standing in for the real
// facs/internal/mobility.
package mobility

import (
	"math/rand"
	"time"
)

// Jitter draws from the process-global source: flagged.
func Jitter() float64 {
	return rand.Float64() // want `rngtime: package-level rand.Float64 draws from the process-global source`
}

// NewWalker constructs an untracked stream outside internal/sim: both
// the constructor and its source constructor are flagged.
func NewWalker(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // want `rngtime: rand.New outside facs/internal/sim` `rngtime: rand.NewSource outside facs/internal/sim`
}

// Step draws through an explicitly threaded *rand.Rand: clean.
func Step(r *rand.Rand) float64 {
	return r.Float64()
}

// Stamp reads the host clock: flagged.
func Stamp() time.Time {
	return time.Now() // want `rngtime: time.Now reads the host clock`
}

// Progress is a justified wall-clock read: clean.
func Progress(start time.Time) time.Duration {
	return time.Since(start) //facs:wallclock progress reporting only; never feeds a decision
}
