// Package sim is the one package allowed to construct math/rand
// sources (it wraps them in counted, snapshot-resumable streams) — but
// even here, package-level draws stay forbidden.
package sim

import "math/rand"

// NewRNG constructs a tracked stream: the constructor exemption.
func NewRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Draw still uses the process-global source: flagged even in sim.
func Draw() float64 {
	return rand.Float64() // want `rngtime: package-level rand.Float64 draws from the process-global source`
}
