// Package plot renders experiment series as ASCII line charts, aligned
// tables and CSV, so that every figure of the paper can be regenerated
// on a terminal without external tooling.
//
// Entry points: Chart (with Options controlling size, ranges and
// title), Table and CSV, each taking the metrics.Series slices the
// experiment harness produces.
package plot
