package plot

import (
	"strconv"
	"strings"
	"testing"

	"facs/internal/metrics"
)

func sampleSeries() []metrics.Series {
	a := metrics.Series{Label: "FACS"}
	a.Append(10, 100)
	a.Append(50, 88)
	a.Append(100, 64)
	b := metrics.Series{Label: "SCC"}
	b.Append(10, 85)
	b.Append(50, 82)
	b.Append(100, 79)
	return []metrics.Series{a, b}
}

func TestChartRendersMarkersAndLegend(t *testing.T) {
	out := Chart(sampleSeries(), Options{Title: "Fig. 10", XLabel: "N", YLabel: "%"})
	if !strings.Contains(out, "Fig. 10") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatal("missing series markers")
	}
	if !strings.Contains(out, "FACS") || !strings.Contains(out, "SCC") {
		t.Fatal("missing legend entries")
	}
	if !strings.Contains(out, "x: N") || !strings.Contains(out, "y: %") {
		t.Fatal("missing axis labels")
	}
	// Axis bounds appear.
	if !strings.Contains(out, "100") || !strings.Contains(out, "10") {
		t.Fatal("missing x bounds")
	}
}

func TestChartEmpty(t *testing.T) {
	if out := Chart(nil, Options{}); !strings.Contains(out, "no data") {
		t.Fatalf("empty chart = %q", out)
	}
	if out := Chart([]metrics.Series{{Label: "empty"}}, Options{}); !strings.Contains(out, "no data") {
		t.Fatalf("chart of empty series = %q", out)
	}
}

func TestChartDegenerateRanges(t *testing.T) {
	s := metrics.Series{Label: "flat"}
	s.Append(5, 42)
	out := Chart([]metrics.Series{s}, Options{Width: 20, Height: 5})
	if !strings.Contains(out, "*") {
		t.Fatal("single point should still render")
	}
}

func TestChartFixedYRange(t *testing.T) {
	out := Chart(sampleSeries(), Options{YMin: 0, YMax: 200, Height: 10})
	if !strings.Contains(out, "200.0") {
		t.Fatal("fixed y max not used")
	}
}

func TestTable(t *testing.T) {
	out := Table(sampleSeries())
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want header + 3 rows", len(lines))
	}
	if !strings.Contains(lines[0], "FACS") || !strings.Contains(lines[0], "SCC") {
		t.Fatal("missing header labels")
	}
	if !strings.Contains(lines[1], "100.00") || !strings.Contains(lines[1], "85.00") {
		t.Fatalf("row 1 = %q", lines[1])
	}
	if Table(nil) != "(no data)\n" {
		t.Fatal("empty table sentinel")
	}
}

func TestTableMissingPoints(t *testing.T) {
	a := metrics.Series{Label: "a"}
	a.Append(1, 10)
	b := metrics.Series{Label: "b"}
	b.Append(2, 20)
	out := Table([]metrics.Series{a, b})
	if !strings.Contains(out, "-") {
		t.Fatal("missing points should render as '-'")
	}
}

func TestCSV(t *testing.T) {
	out := CSV(sampleSeries())
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "x,FACS,SCC" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 4 {
		t.Fatalf("csv has %d lines", len(lines))
	}
	fields := strings.Split(lines[1], ",")
	if len(fields) != 3 {
		t.Fatalf("row = %q", lines[1])
	}
	for _, f := range fields {
		if _, err := strconv.ParseFloat(f, 64); err != nil {
			t.Fatalf("field %q is not numeric", f)
		}
	}
	if CSV(nil) != "" {
		t.Fatal("empty CSV should be empty string")
	}
}

func TestCSVEscaping(t *testing.T) {
	s := metrics.Series{Label: `tau=0.85, "full"`}
	s.Append(1, 2)
	out := CSV([]metrics.Series{s})
	if !strings.Contains(out, `"tau=0.85, ""full"""`) {
		t.Fatalf("label not escaped: %q", out)
	}
}
