package plot

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"facs/internal/metrics"
)

// markers are assigned to series in order.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Options controls chart rendering.
type Options struct {
	// Width and Height are the plot area size in characters.
	// Defaults 72 and 20.
	Width  int
	Height int
	// YMin/YMax fix the y range; both zero auto-scales.
	YMin float64
	YMax float64
	// Title is printed above the chart.
	Title string
	// XLabel / YLabel annotate the axes.
	XLabel string
	YLabel string
}

func (o Options) withDefaults() Options {
	if o.Width <= 0 {
		o.Width = 72
	}
	if o.Height <= 0 {
		o.Height = 20
	}
	return o
}

// Chart renders the series as an ASCII chart with a legend.
func Chart(series []metrics.Series, opts Options) string {
	opts = opts.withDefaults()
	var b strings.Builder
	if opts.Title != "" {
		fmt.Fprintf(&b, "%s\n", opts.Title)
	}
	if len(series) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	xMin, xMax := math.Inf(1), math.Inf(-1)
	yMin, yMax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			xMin = math.Min(xMin, s.X[i])
			xMax = math.Max(xMax, s.X[i])
			yMin = math.Min(yMin, s.Y[i])
			yMax = math.Max(yMax, s.Y[i])
		}
	}
	if math.IsInf(xMin, 1) {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if opts.YMin != 0 || opts.YMax != 0 {
		yMin, yMax = opts.YMin, opts.YMax
	}
	if yMax == yMin {
		yMax = yMin + 1
	}
	if xMax == xMin {
		xMax = xMin + 1
	}
	grid := make([][]byte, opts.Height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", opts.Width))
	}
	for si, s := range series {
		marker := markers[si%len(markers)]
		for i := range s.X {
			col := int(math.Round((s.X[i] - xMin) / (xMax - xMin) * float64(opts.Width-1)))
			row := int(math.Round((s.Y[i] - yMin) / (yMax - yMin) * float64(opts.Height-1)))
			if col < 0 || col >= opts.Width || row < 0 || row >= opts.Height {
				continue
			}
			grid[opts.Height-1-row][col] = marker
		}
	}
	for i, line := range grid {
		yVal := yMax - (yMax-yMin)*float64(i)/float64(opts.Height-1)
		fmt.Fprintf(&b, "%8.1f |%s|\n", yVal, string(line))
	}
	fmt.Fprintf(&b, "%8s  %s\n", "", strings.Repeat("-", opts.Width))
	fmt.Fprintf(&b, "%8s  %-12.4g%s%12.4g\n", "", xMin,
		strings.Repeat(" ", max(0, opts.Width-24)), xMax)
	if opts.XLabel != "" || opts.YLabel != "" {
		fmt.Fprintf(&b, "%10sx: %s   y: %s\n", "", opts.XLabel, opts.YLabel)
	}
	for si, s := range series {
		fmt.Fprintf(&b, "%10s%c %s\n", "", markers[si%len(markers)], s.Label)
	}
	return b.String()
}

// Table renders the series as an aligned text table, one row per distinct
// x value, one column per series.
func Table(series []metrics.Series) string {
	if len(series) == 0 {
		return "(no data)\n"
	}
	xsSet := map[float64]bool{}
	for _, s := range series {
		for _, x := range s.X {
			xsSet[x] = true
		}
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	var b strings.Builder
	fmt.Fprintf(&b, "%10s", "x")
	for _, s := range series {
		fmt.Fprintf(&b, "  %14s", s.Label)
	}
	b.WriteByte('\n')
	for _, x := range xs {
		fmt.Fprintf(&b, "%10.4g", x)
		for _, s := range series {
			if y, ok := s.YAt(x); ok {
				fmt.Fprintf(&b, "  %14.2f", y)
			} else {
				fmt.Fprintf(&b, "  %14s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the series as comma-separated values with a header row.
// Missing points render as empty cells.
func CSV(series []metrics.Series) string {
	if len(series) == 0 {
		return ""
	}
	xsSet := map[float64]bool{}
	for _, s := range series {
		for _, x := range s.X {
			xsSet[x] = true
		}
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	var b strings.Builder
	b.WriteString("x")
	for _, s := range series {
		b.WriteByte(',')
		b.WriteString(csvEscape(s.Label))
	}
	b.WriteByte('\n')
	for _, x := range xs {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range series {
			b.WriteByte(',')
			if y, ok := s.YAt(x); ok {
				fmt.Fprintf(&b, "%g", y)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
