// Package prof wires the standard Go profilers behind three command
// line flags (-cpuprofile, -memprofile, -trace) so every binary in this
// repository exposes the same profiling surface. Start begins the
// requested captures; the returned stop function finishes them and must
// run exactly once, after the workload, before exit.
//
// The hooks exist for the performance loop the ROADMAP prescribes:
// profile the metropolis wave churn, fix the hot allocation, re-run the
// bench, commit the numbers.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Config names the output files; empty fields disable that capture.
type Config struct {
	// CPUProfile receives a pprof CPU profile covering Start..stop.
	CPUProfile string
	// MemProfile receives a pprof allocs profile snapshotted at stop
	// (after a final GC, so live-heap numbers are meaningful).
	MemProfile string
	// Trace receives a runtime execution trace covering Start..stop.
	Trace string
}

// Enabled reports whether any capture was requested.
func (c Config) Enabled() bool {
	return c.CPUProfile != "" || c.MemProfile != "" || c.Trace != ""
}

// Start begins the requested captures and returns the stop function.
// On error nothing is left running and no stop call is needed.
func Start(c Config) (stop func() error, err error) {
	var cpuFile, traceFile *os.File
	cleanup := func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if traceFile != nil {
			trace.Stop()
			traceFile.Close()
		}
	}
	if c.CPUProfile != "" {
		cpuFile, err = os.Create(c.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("prof: cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			cpuFile = nil
			cleanup()
			return nil, fmt.Errorf("prof: cpu profile: %w", err)
		}
	}
	if c.Trace != "" {
		traceFile, err = os.Create(c.Trace)
		if err != nil {
			cleanup()
			return nil, fmt.Errorf("prof: trace: %w", err)
		}
		if err := trace.Start(traceFile); err != nil {
			traceFile.Close()
			traceFile = nil
			cleanup()
			return nil, fmt.Errorf("prof: trace: %w", err)
		}
	}
	memPath := c.MemProfile
	return func() error {
		cleanup()
		if memPath == "" {
			return nil
		}
		f, err := os.Create(memPath)
		if err != nil {
			return fmt.Errorf("prof: mem profile: %w", err)
		}
		defer f.Close()
		runtime.GC() // settle live-heap accounting before the snapshot
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			return fmt.Errorf("prof: mem profile: %w", err)
		}
		return nil
	}, nil
}
