package prof

import (
	"os"
	"path/filepath"
	"testing"
)

func TestDisabledIsNoop(t *testing.T) {
	var c Config
	if c.Enabled() {
		t.Fatal("zero config should be disabled")
	}
	stop, err := Start(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestCapturesWriteFiles(t *testing.T) {
	dir := t.TempDir()
	c := Config{
		CPUProfile: filepath.Join(dir, "cpu.out"),
		MemProfile: filepath.Join(dir, "mem.out"),
		Trace:      filepath.Join(dir, "trace.out"),
	}
	if !c.Enabled() {
		t.Fatal("config should be enabled")
	}
	stop, err := Start(c)
	if err != nil {
		t.Fatal(err)
	}
	// Generate some work so the captures have content.
	sink := 0
	for i := 0; i < 1_000_000; i++ {
		sink += i % 7
	}
	_ = sink
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{c.CPUProfile, c.MemProfile, c.Trace} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", p)
		}
	}
}

func TestBadPathFailsCleanly(t *testing.T) {
	if _, err := Start(Config{CPUProfile: filepath.Join(t.TempDir(), "no", "such", "dir", "x")}); err == nil {
		t.Fatal("unwritable cpu profile path should error")
	}
	if _, err := Start(Config{Trace: filepath.Join(t.TempDir(), "no", "such", "dir", "x")}); err == nil {
		t.Fatal("unwritable trace path should error")
	}
}
