// Package gps simulates the paper's positioning substrate: "the user
// movement is obtained by GPS". A Receiver samples a mobility model at
// a fixed interval and adds Gaussian position noise; an Estimator
// converts the fix stream into the speed/heading estimates that the
// fuzzy prediction stage consumes; Observe derives the FLC1 input
// triple (Speed, Angle, Distance) relative to a base station.
//
// The Observation convention matches the paper: AngleDeg is the
// deviation of the user's heading from the bearing towards the base
// station, zero meaning "moving straight at it" and ±180 "directly
// away". Estimate carries the absolute kinematics (position, heading,
// speed) that mobility-predictive controllers such as SCC consume.
//
// Entry points: NewReceiver + NewEstimator for the noisy pipeline,
// ExactReceiverConfig for noise-free studies, Observe for the
// relative-triple projection.
package gps
