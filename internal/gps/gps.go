package gps

import (
	"fmt"
	"math"
	"math/rand"

	"facs/internal/geo"
	"facs/internal/mobility"
	"facs/internal/sim"
)

// Fix is one GPS position report.
type Fix struct {
	// Time is the simulation time of the fix in seconds.
	Time float64
	// Pos is the reported (noisy) position in metres.
	Pos geo.Point
}

// ReceiverConfig parameterises a simulated GPS receiver.
type ReceiverConfig struct {
	// SampleInterval is the gap between fixes in seconds. Default 1s.
	SampleInterval float64
	// NoiseSigmaM is the per-axis Gaussian position error in metres.
	// Zero selects the default of 5m, a typical consumer GPS figure;
	// any negative value disables noise entirely.
	NoiseSigmaM float64
}

func (c ReceiverConfig) withDefaults() ReceiverConfig {
	if c.SampleInterval == 0 {
		c.SampleInterval = 1
	}
	switch {
	case c.NoiseSigmaM == 0:
		c.NoiseSigmaM = 5
	case c.NoiseSigmaM < 0:
		c.NoiseSigmaM = 0
	}
	return c
}

// Validate checks the configuration.
func (c ReceiverConfig) Validate() error {
	if math.IsNaN(c.SampleInterval) || c.SampleInterval <= 0 {
		return fmt.Errorf("gps: sample interval must be > 0, got %v", c.SampleInterval)
	}
	if math.IsNaN(c.NoiseSigmaM) {
		return fmt.Errorf("gps: noise sigma must not be NaN")
	}
	return nil
}

// Receiver attaches a simulated GPS unit to a mobility model.
type Receiver struct {
	cfg   ReceiverConfig
	model mobility.Model
	rng   *rand.Rand
	now   float64
}

// NewReceiver constructs a receiver over the given mobility model.
func NewReceiver(model mobility.Model, cfg ReceiverConfig, rng *rand.Rand) (*Receiver, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if model == nil {
		return nil, fmt.Errorf("gps: mobility model must not be nil")
	}
	if rng == nil {
		return nil, fmt.Errorf("gps: rng must not be nil")
	}
	return &Receiver{cfg: cfg, model: model, rng: rng}, nil
}

// ExactReceiverConfig returns a config with the given sample interval and
// no position noise (for tests and noise ablations).
func ExactReceiverConfig(sampleInterval float64) ReceiverConfig {
	return ReceiverConfig{SampleInterval: sampleInterval, NoiseSigmaM: -1}
}

// Now returns the receiver clock in seconds.
func (r *Receiver) Now() float64 { return r.now }

// Model returns the underlying mobility model.
func (r *Receiver) Model() mobility.Model { return r.model }

// NextFix advances the mobility model by one sample interval and returns
// the resulting noisy fix.
func (r *Receiver) NextFix() Fix {
	st := r.model.Step(r.cfg.SampleInterval)
	r.now += r.cfg.SampleInterval
	pos := st.Pos
	if r.cfg.NoiseSigmaM > 0 {
		pos.X += sim.Normal(r.rng, 0, r.cfg.NoiseSigmaM)
		pos.Y += sim.Normal(r.rng, 0, r.cfg.NoiseSigmaM)
	}
	return Fix{Time: r.now, Pos: pos}
}

// Track produces the next n fixes.
func (r *Receiver) Track(n int) []Fix {
	if n <= 0 {
		return nil
	}
	out := make([]Fix, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, r.NextFix())
	}
	return out
}

// Estimate is a kinematic estimate derived from a fix stream.
type Estimate struct {
	// SpeedKmh is the estimated scalar speed in km/h.
	SpeedKmh float64
	// HeadingDeg is the estimated travel direction on (-180, 180].
	HeadingDeg float64
	// Pos is the most recent reported position.
	Pos geo.Point
	// Time is the time of the most recent fix.
	Time float64
}

// Estimator turns a stream of fixes into kinematic estimates using a
// sliding window: heading and speed are computed from the displacement
// between the oldest and newest fix in the window, which suppresses
// per-fix noise at the cost of a little lag — exactly the trade-off a
// real GPS-based predictor faces.
type Estimator struct {
	window int
	fixes  []Fix
}

// NewEstimator constructs an estimator with the given window size
// (minimum 2 fixes; default 4 when window <= 0).
func NewEstimator(window int) *Estimator {
	if window <= 0 {
		window = 4
	}
	if window < 2 {
		window = 2
	}
	return &Estimator{window: window}
}

// AddFix appends a fix to the window, discarding the oldest beyond the
// window size. Fixes must be added in time order; out-of-order fixes are
// ignored.
func (e *Estimator) AddFix(f Fix) {
	if n := len(e.fixes); n > 0 && f.Time <= e.fixes[n-1].Time {
		return
	}
	e.fixes = append(e.fixes, f)
	if len(e.fixes) > e.window {
		e.fixes = e.fixes[1:]
	}
}

// Ready reports whether enough fixes are buffered to estimate.
func (e *Estimator) Ready() bool { return len(e.fixes) >= 2 }

// Estimate returns the current kinematic estimate, or false when fewer
// than two fixes are buffered.
func (e *Estimator) Estimate() (Estimate, bool) {
	if !e.Ready() {
		return Estimate{}, false
	}
	oldest := e.fixes[0]
	newest := e.fixes[len(e.fixes)-1]
	dt := newest.Time - oldest.Time
	if dt <= 0 {
		return Estimate{}, false
	}
	disp := newest.Pos.Sub(oldest.Pos)
	return Estimate{
		SpeedKmh:   geo.MpsToKmh(disp.Length() / dt),
		HeadingDeg: disp.HeadingDeg(),
		Pos:        newest.Pos,
		Time:       newest.Time,
	}, true
}

// Reset clears the fix window.
func (e *Estimator) Reset() { e.fixes = e.fixes[:0] }

// Observation is the FLC1 input triple for one user relative to one base
// station.
type Observation struct {
	// SpeedKmh is the user speed estimate (paper input S, 0..120 km/h).
	SpeedKmh float64
	// AngleDeg is the deviation of the user's heading from the bearing
	// towards the base station (paper input A, -180..180 degrees).
	// Zero means moving straight at the BS; ±180 means directly away.
	AngleDeg float64
	// DistanceKm is the user-BS distance (paper input D, 0..10 km).
	DistanceKm float64
}

// Observe derives the FLC1 inputs from a kinematic estimate and the base
// station position.
func Observe(est Estimate, bs geo.Point) Observation {
	bearingToBS := geo.BearingDeg(est.Pos, bs)
	return Observation{
		SpeedKmh:   est.SpeedKmh,
		AngleDeg:   geo.AngleDiffDeg(est.HeadingDeg, bearingToBS),
		DistanceKm: geo.MToKm(est.Pos.DistanceTo(bs)),
	}
}
