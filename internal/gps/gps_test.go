package gps

import (
	"math"
	"testing"

	"facs/internal/geo"
	"facs/internal/mobility"
	"facs/internal/sim"
)

func constantModel(t *testing.T, speedKmh, headingDeg float64) mobility.Model {
	t.Helper()
	m, err := mobility.NewConstantVelocity(geo.Point{X: 0, Y: 0}, speedKmh, headingDeg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestReceiverConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		cfg     ReceiverConfig
		wantErr bool
	}{
		{"defaults", ReceiverConfig{}, false},
		{"explicit", ReceiverConfig{SampleInterval: 2, NoiseSigmaM: 10}, false},
		{"no noise", ExactReceiverConfig(1), false},
		{"bad interval", ReceiverConfig{SampleInterval: -1}, true},
		{"NaN interval", ReceiverConfig{SampleInterval: math.NaN()}, true},
		{"NaN sigma", ReceiverConfig{SampleInterval: 1, NoiseSigmaM: math.NaN()}, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.withDefaults().Validate()
			if gotErr := err != nil; gotErr != tc.wantErr {
				t.Fatalf("Validate = %v, want error %v", err, tc.wantErr)
			}
		})
	}
}

func TestNewReceiverErrors(t *testing.T) {
	m := constantModel(t, 10, 0)
	if _, err := NewReceiver(nil, ReceiverConfig{}, sim.NewRNG(1)); err == nil {
		t.Fatal("nil model should error")
	}
	if _, err := NewReceiver(m, ReceiverConfig{}, nil); err == nil {
		t.Fatal("nil rng should error")
	}
	if _, err := NewReceiver(m, ReceiverConfig{SampleInterval: -1}, sim.NewRNG(1)); err == nil {
		t.Fatal("invalid config should error")
	}
}

func TestReceiverExactTrack(t *testing.T) {
	// 36 km/h = 10 m/s east, no noise, 1s fixes.
	r, err := NewReceiver(constantModel(t, 36, 0), ExactReceiverConfig(1), sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	fixes := r.Track(5)
	if len(fixes) != 5 {
		t.Fatalf("Track(5) returned %d fixes", len(fixes))
	}
	for i, f := range fixes {
		wantT := float64(i + 1)
		if f.Time != wantT {
			t.Fatalf("fix %d time = %v, want %v", i, f.Time, wantT)
		}
		if !approx(f.Pos.X, 10*wantT, 1e-9) || !approx(f.Pos.Y, 0, 1e-9) {
			t.Fatalf("fix %d pos = %v, want (%v, 0)", i, f.Pos, 10*wantT)
		}
	}
	if r.Now() != 5 {
		t.Fatalf("Now = %v, want 5", r.Now())
	}
	if r.Model() == nil {
		t.Fatal("Model accessor returned nil")
	}
	if got := r.Track(0); got != nil {
		t.Fatal("Track(0) should return nil")
	}
}

func TestReceiverNoiseMagnitude(t *testing.T) {
	r, err := NewReceiver(constantModel(t, 0, 0), ReceiverConfig{SampleInterval: 1, NoiseSigmaM: 5}, sim.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	var sumSq float64
	const n = 20000
	for i := 0; i < n; i++ {
		f := r.NextFix()
		sumSq += f.Pos.X*f.Pos.X + f.Pos.Y*f.Pos.Y
	}
	// Per-axis variance should be ~25 m^2; total ~50.
	if got := sumSq / n; got < 45 || got > 55 {
		t.Fatalf("noise variance = %v, want ~50", got)
	}
}

func TestEstimatorWindowBehaviour(t *testing.T) {
	e := NewEstimator(3)
	if e.Ready() {
		t.Fatal("empty estimator should not be ready")
	}
	if _, ok := e.Estimate(); ok {
		t.Fatal("empty estimator should not estimate")
	}
	e.AddFix(Fix{Time: 1, Pos: geo.Point{X: 0, Y: 0}})
	if e.Ready() {
		t.Fatal("one fix is not enough")
	}
	e.AddFix(Fix{Time: 2, Pos: geo.Point{X: 10, Y: 0}})
	est, ok := e.Estimate()
	if !ok {
		t.Fatal("two fixes should estimate")
	}
	if !approx(est.SpeedKmh, 36, 1e-9) {
		t.Fatalf("speed = %v, want 36", est.SpeedKmh)
	}
	if !approx(est.HeadingDeg, 0, 1e-9) {
		t.Fatalf("heading = %v, want 0", est.HeadingDeg)
	}
	// Window slides: after 4 fixes only the last 3 matter.
	e.AddFix(Fix{Time: 3, Pos: geo.Point{X: 20, Y: 0}})
	e.AddFix(Fix{Time: 4, Pos: geo.Point{X: 20, Y: 20}})
	est, _ = e.Estimate()
	// Oldest in window is t=2 (10,0); newest t=4 (20,20): disp=(10,20)/2s.
	wantSpeed := geo.MpsToKmh(math.Hypot(10, 20) / 2)
	if !approx(est.SpeedKmh, wantSpeed, 1e-9) {
		t.Fatalf("windowed speed = %v, want %v", est.SpeedKmh, wantSpeed)
	}
	if est.Pos != (geo.Point{X: 20, Y: 20}) || est.Time != 4 {
		t.Fatalf("estimate carries wrong newest fix: %+v", est)
	}
}

func TestEstimatorIgnoresOutOfOrderFixes(t *testing.T) {
	e := NewEstimator(4)
	e.AddFix(Fix{Time: 5, Pos: geo.Point{X: 0, Y: 0}})
	e.AddFix(Fix{Time: 4, Pos: geo.Point{X: 100, Y: 0}}) // ignored
	e.AddFix(Fix{Time: 5, Pos: geo.Point{X: 100, Y: 0}}) // ignored (equal time)
	if e.Ready() {
		t.Fatal("out-of-order fixes must be dropped")
	}
	e.AddFix(Fix{Time: 6, Pos: geo.Point{X: 10, Y: 0}})
	est, ok := e.Estimate()
	if !ok || !approx(est.SpeedKmh, 36, 1e-9) {
		t.Fatalf("estimate = %+v, %v", est, ok)
	}
}

func TestEstimatorReset(t *testing.T) {
	e := NewEstimator(2)
	e.AddFix(Fix{Time: 1})
	e.AddFix(Fix{Time: 2})
	e.Reset()
	if e.Ready() {
		t.Fatal("Reset should clear the window")
	}
}

func TestNewEstimatorDefaults(t *testing.T) {
	if e := NewEstimator(0); e.window != 4 {
		t.Fatalf("default window = %d, want 4", e.window)
	}
	if e := NewEstimator(1); e.window != 2 {
		t.Fatalf("minimum window = %d, want 2", e.window)
	}
}

func TestObserveGeometry(t *testing.T) {
	bs := geo.Point{X: 0, Y: 0}
	tests := []struct {
		name     string
		est      Estimate
		wantA    float64
		wantDKm  float64
		wantSpdK float64
	}{
		{
			name:    "heading straight at BS",
			est:     Estimate{SpeedKmh: 30, HeadingDeg: 180, Pos: geo.Point{X: 5000, Y: 0}},
			wantA:   0,
			wantDKm: 5,
		},
		{
			name:    "heading directly away",
			est:     Estimate{SpeedKmh: 30, HeadingDeg: 0, Pos: geo.Point{X: 5000, Y: 0}},
			wantA:   180,
			wantDKm: 5,
		},
		{
			name:    "perpendicular left",
			est:     Estimate{SpeedKmh: 30, HeadingDeg: 90, Pos: geo.Point{X: 3000, Y: 0}},
			wantA:   -90,
			wantDKm: 3,
		},
		{
			name:    "perpendicular right",
			est:     Estimate{SpeedKmh: 30, HeadingDeg: -90, Pos: geo.Point{X: 3000, Y: 0}},
			wantA:   90,
			wantDKm: 3,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			obs := Observe(tc.est, bs)
			if !approx(math.Abs(obs.AngleDeg), math.Abs(tc.wantA), 1e-9) {
				t.Fatalf("angle = %v, want %v", obs.AngleDeg, tc.wantA)
			}
			if !approx(obs.DistanceKm, tc.wantDKm, 1e-9) {
				t.Fatalf("distance = %v, want %v", obs.DistanceKm, tc.wantDKm)
			}
			if obs.SpeedKmh != tc.est.SpeedKmh {
				t.Fatalf("speed = %v, want %v", obs.SpeedKmh, tc.est.SpeedKmh)
			}
		})
	}
}

func TestEndToEndEstimationAccuracy(t *testing.T) {
	// A vehicle at 60 km/h heading 45° observed through a noisy receiver:
	// windowed estimation should recover speed within 10% and heading
	// within 10 degrees.
	model := constantModel(t, 60, 45)
	r, err := NewReceiver(model, ReceiverConfig{SampleInterval: 1, NoiseSigmaM: 5}, sim.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	e := NewEstimator(5)
	var speedSum, headErrSum float64
	var count int
	for i := 0; i < 60; i++ {
		e.AddFix(r.NextFix())
		if est, ok := e.Estimate(); ok {
			speedSum += est.SpeedKmh
			headErrSum += geo.AbsAngleDiffDeg(est.HeadingDeg, 45)
			count++
		}
	}
	if count == 0 {
		t.Fatal("no estimates produced")
	}
	if got := speedSum / float64(count); math.Abs(got-60) > 6 {
		t.Fatalf("mean estimated speed = %v, want ~60", got)
	}
	if got := headErrSum / float64(count); got > 10 {
		t.Fatalf("mean heading error = %v°, want <= 10°", got)
	}
}

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
