package fuzzy

import (
	"bytes"
	"errors"
	"testing"
)

// fuzzConfigHash is the expected config hash the fuzz target decodes
// against; the valid seed blob is encoded with it.
const fuzzConfigHash uint64 = 0xfacc0de5

// fuzzSurfaceBlob encodes one small valid surface — the happy-path seed
// every mutation starts from.
func fuzzSurfaceBlob() []byte {
	x := MustVariable("x", 0, 10,
		Term{Name: "lo", MF: MustTriangular(0, 0, 6)},
		Term{Name: "hi", MF: MustTriangular(10, 6, 0)},
	)
	y := MustVariable("y", 0, 1,
		Term{Name: "off", MF: MustTriangular(0, 0, 1)},
		Term{Name: "on", MF: MustTriangular(1, 1, 0)},
	)
	z := MustVariable("z", 0, 1,
		Term{Name: "small", MF: MustTriangular(0, 0, 0.6)},
		Term{Name: "large", MF: MustTriangular(1, 0.6, 0)},
	)
	rules := []Rule{
		{If: []Clause{{Var: "x", Term: "lo"}, {Var: "y", Term: "off"}}, Then: Clause{Var: "z", Term: "small"}},
		{If: []Clause{{Var: "x", Term: "lo"}, {Var: "y", Term: "on"}}, Then: Clause{Var: "z", Term: "large"}},
		{If: []Clause{{Var: "x", Term: "hi"}, {Var: "y", Term: "off"}}, Then: Clause{Var: "z", Term: "large"}},
		{If: []Clause{{Var: "x", Term: "hi"}, {Var: "y", Term: "on"}}, Then: Clause{Var: "z", Term: "small"}},
	}
	e := MustEngine([]*Variable{x, y}, z, rules)
	s, err := NewSurface(e, WithSurfaceGrid(5, 3), WithSurfaceErrorMap(1))
	if err != nil {
		panic(err)
	}
	var buf bytes.Buffer
	if err := EncodeSurface(&buf, s, fuzzConfigHash); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzDecodeSurface pins the decoder's total robustness contract:
// whatever bytes arrive — truncated, bit-flipped, adversarially
// structured — DecodeSurface either returns a usable surface or one of
// the two sentinel errors (ErrSurfaceStale, ErrSurfaceCorrupt). It must
// never panic, never return an unclassified error, and never hand back
// a surface alongside an error. Seeds cover the valid blob plus the
// interesting manual corruptions (empty, truncations at every section
// boundary, flips in magic/version/hash/payload/checksum); the mutator
// grows the corpus from there. CI runs a bounded smoke
// (-fuzz=FuzzDecodeSurface -fuzztime=10s); the checked-in corpus under
// testdata/fuzz replays as part of the normal test suite.
func FuzzDecodeSurface(f *testing.F) {
	valid := fuzzSurfaceBlob()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("FSRF"))
	for _, n := range []int{1, 4, 8, 16, len(valid) / 2, len(valid) - 9, len(valid) - 1} {
		if n > 0 && n < len(valid) {
			f.Add(valid[:n])
		}
	}
	for _, i := range []int{0, 5, 13, 20, len(valid) / 2, len(valid) - 3} {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0x40
		f.Add(mut)
	}
	f.Add(append(append([]byte(nil), valid...), 0xff))

	f.Fuzz(func(t *testing.T, blob []byte) {
		s, err := DecodeSurface(bytes.NewReader(blob), fuzzConfigHash)
		if err != nil {
			if !errors.Is(err, ErrSurfaceStale) && !errors.Is(err, ErrSurfaceCorrupt) {
				t.Fatalf("unclassified decode error %v (want ErrSurfaceStale or ErrSurfaceCorrupt)", err)
			}
			if s != nil {
				t.Fatalf("non-nil surface returned alongside error %v", err)
			}
			return
		}
		if s == nil {
			t.Fatal("nil surface without error")
		}
		// A blob that decodes must yield a usable interpolant: probing a
		// grid corner exercises the rebuilt axes and value array.
		axes := s.Axes()
		in := make([]float64, len(axes))
		for i, a := range axes {
			in[i] = a.Min()
		}
		if _, evalErr := s.EvaluateVec(in...); evalErr != nil {
			t.Fatalf("decoded surface rejects its own corner: %v", evalErr)
		}
	})
}
