package fuzzy

import "fmt"

// TNorm selects how antecedent clause memberships are combined (fuzzy AND).
type TNorm int

// Supported t-norms.
const (
	// TNormMin is the Mamdani minimum t-norm (the paper's choice).
	TNormMin TNorm = iota + 1
	// TNormProduct is the algebraic product t-norm.
	TNormProduct
)

// String implements fmt.Stringer.
func (t TNorm) String() string {
	switch t {
	case TNormMin:
		return "min"
	case TNormProduct:
		return "product"
	default:
		return fmt.Sprintf("TNorm(%d)", int(t))
	}
}

// Apply combines two membership degrees.
func (t TNorm) Apply(a, b float64) float64 {
	switch t {
	case TNormProduct:
		return a * b
	default: // TNormMin
		if a < b {
			return a
		}
		return b
	}
}

// Implication selects how a rule's firing strength shapes its consequent
// fuzzy set during Mamdani inference.
type Implication int

// Supported implication operators.
const (
	// ImplicationClip truncates the consequent at the firing strength
	// (Mamdani min implication, the classical choice).
	ImplicationClip Implication = iota + 1
	// ImplicationScale multiplies the consequent by the firing strength
	// (Larsen product implication).
	ImplicationScale
)

// String implements fmt.Stringer.
func (im Implication) String() string {
	switch im {
	case ImplicationClip:
		return "clip"
	case ImplicationScale:
		return "scale"
	default:
		return fmt.Sprintf("Implication(%d)", int(im))
	}
}

// Apply shapes membership degree m by firing strength w.
func (im Implication) Apply(w, m float64) float64 {
	switch im {
	case ImplicationScale:
		return w * m
	default: // ImplicationClip
		if m < w {
			return m
		}
		return w
	}
}

// AggregatedOutput is the union (max-aggregation) of all shaped consequent
// sets for one evaluation. It is the function that the area-based
// defuzzifiers integrate.
type AggregatedOutput struct {
	out         *Variable
	strengths   []float64 // per output term, max across fired rules
	implication Implication
}

// Variable returns the output linguistic variable.
func (a *AggregatedOutput) Variable() *Variable { return a.out }

// Strength returns the aggregated firing strength of the i-th output term.
func (a *AggregatedOutput) Strength(i int) float64 { return a.strengths[i] }

// NumTerms returns the number of output terms.
func (a *AggregatedOutput) NumTerms() int { return len(a.strengths) }

// At evaluates the aggregated output membership at crisp point y.
func (a *AggregatedOutput) At(y float64) float64 {
	var best float64
	for i, w := range a.strengths {
		if w == 0 {
			continue
		}
		if m := a.implication.Apply(w, a.out.terms[i].MF.Membership(y)); m > best {
			best = m
		}
	}
	return best
}

// Empty reports whether no rule fired (all strengths are zero).
func (a *AggregatedOutput) Empty() bool {
	for _, w := range a.strengths {
		if w > 0 {
			return false
		}
	}
	return true
}
