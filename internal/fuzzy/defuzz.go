package fuzzy

import (
	"errors"
	"fmt"
)

// ErrNoRuleFired is returned when an evaluation activates no rule at all,
// leaving the aggregated output fuzzy set empty. Controllers built on a
// complete rule base over covering partitions never see this error.
var ErrNoRuleFired = errors.New("fuzzy: no rule fired")

// Defuzzifier converts the aggregated output fuzzy set of one evaluation
// into a crisp value.
type Defuzzifier interface {
	// Defuzzify reduces agg to a crisp value within the output universe.
	// resolution is the sample count used by integral methods (>= 2).
	Defuzzify(agg *AggregatedOutput, resolution int) (float64, error)
	// Name identifies the method, e.g. "centroid".
	Name() string
}

// Centroid is the centre-of-area defuzzifier: the integral-weighted mean of
// the aggregated output set, computed by sampling the universe. It is the
// most common Mamdani defuzzifier and the package default.
type Centroid struct{}

var _ Defuzzifier = Centroid{}

// Name implements Defuzzifier.
func (Centroid) Name() string { return "centroid" }

// Defuzzify implements Defuzzifier.
func (Centroid) Defuzzify(agg *AggregatedOutput, resolution int) (float64, error) {
	if agg.Empty() {
		return 0, ErrNoRuleFired
	}
	if resolution < 2 {
		resolution = 2
	}
	min, max := agg.Variable().Universe()
	step := (max - min) / float64(resolution-1)
	var num, den float64
	for i := 0; i < resolution; i++ {
		y := min + float64(i)*step
		m := agg.At(y)
		num += y * m
		den += m
	}
	if den == 0 {
		return 0, fmt.Errorf("fuzzy: centroid is undefined: aggregated area is zero at resolution %d", resolution)
	}
	return num / den, nil
}

// Bisector is the bisector-of-area defuzzifier: the point that splits the
// aggregated output area into two halves.
type Bisector struct{}

var _ Defuzzifier = Bisector{}

// Name implements Defuzzifier.
func (Bisector) Name() string { return "bisector" }

// Defuzzify implements Defuzzifier.
func (Bisector) Defuzzify(agg *AggregatedOutput, resolution int) (float64, error) {
	if agg.Empty() {
		return 0, ErrNoRuleFired
	}
	if resolution < 2 {
		resolution = 2
	}
	min, max := agg.Variable().Universe()
	step := (max - min) / float64(resolution-1)
	samples := make([]float64, resolution)
	var total float64
	for i := range samples {
		samples[i] = agg.At(min + float64(i)*step)
		total += samples[i]
	}
	if total == 0 {
		return 0, fmt.Errorf("fuzzy: bisector is undefined: aggregated area is zero at resolution %d", resolution)
	}
	var acc float64
	for i, m := range samples {
		acc += m
		if acc >= total/2 {
			return min + float64(i)*step, nil
		}
	}
	return max, nil
}

// MeanOfMaxima defuzzifies to the mean of the sample points at which the
// aggregated output attains its maximum membership.
type MeanOfMaxima struct{}

var _ Defuzzifier = MeanOfMaxima{}

// Name implements Defuzzifier.
func (MeanOfMaxima) Name() string { return "mean-of-maxima" }

// Defuzzify implements Defuzzifier.
func (MeanOfMaxima) Defuzzify(agg *AggregatedOutput, resolution int) (float64, error) {
	if agg.Empty() {
		return 0, ErrNoRuleFired
	}
	if resolution < 2 {
		resolution = 2
	}
	min, max := agg.Variable().Universe()
	step := (max - min) / float64(resolution-1)
	const eps = 1e-12
	var best, sum float64
	var count int
	for i := 0; i < resolution; i++ {
		y := min + float64(i)*step
		m := agg.At(y)
		switch {
		case m > best+eps:
			best, sum, count = m, y, 1
		case m >= best-eps && m > 0:
			sum += y
			count++
		}
	}
	if count == 0 {
		return 0, fmt.Errorf("fuzzy: mean-of-maxima is undefined: aggregated set is empty at resolution %d", resolution)
	}
	return sum / float64(count), nil
}

// WeightedAverage is the height (weighted-average) defuzzifier: the mean of
// the output term centroids weighted by each term's aggregated firing
// strength. It never integrates the aggregated set, making it the cheapest
// method; the paper motivates triangular/trapezoidal shapes with real-time
// operation, for which this is the natural fast path.
//
// Term centroids are precomputed lazily on first use and cached, so a
// WeightedAverage value must not be copied after first use. Obtain one per
// engine via NewWeightedAverage.
type WeightedAverage struct {
	centroids []float64
	forVar    *Variable
}

var _ Defuzzifier = (*WeightedAverage)(nil)

// NewWeightedAverage returns a height defuzzifier. The centroid cache binds
// to the first output variable it sees.
func NewWeightedAverage() *WeightedAverage { return &WeightedAverage{} }

// Name implements Defuzzifier.
func (*WeightedAverage) Name() string { return "weighted-average" }

// Defuzzify implements Defuzzifier.
func (w *WeightedAverage) Defuzzify(agg *AggregatedOutput, resolution int) (float64, error) {
	if agg.Empty() {
		return 0, ErrNoRuleFired
	}
	out := agg.Variable()
	if w.forVar != out {
		if resolution < 2 {
			resolution = 2
		}
		w.centroids = make([]float64, out.NumTerms())
		for i := range w.centroids {
			w.centroids[i] = out.termCentroidAt(i, resolution)
		}
		w.forVar = out
	}
	var num, den float64
	for i := 0; i < agg.NumTerms(); i++ {
		s := agg.Strength(i)
		if s == 0 {
			continue
		}
		num += s * w.centroids[i]
		den += s
	}
	if den == 0 {
		return 0, ErrNoRuleFired
	}
	return num / den, nil
}
