package fuzzy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGaussianShape(t *testing.T) {
	g := MustGaussian(10, 2)
	if got := g.Membership(10); got != 1 {
		t.Fatalf("peak = %v, want 1", got)
	}
	// At one sigma: exp(-1/2).
	want := math.Exp(-0.5)
	if got := g.Membership(12); !almostEqual(got, want, 1e-12) {
		t.Fatalf("mu(center+sigma) = %v, want %v", got, want)
	}
	if got := g.Membership(8); !almostEqual(got, want, 1e-12) {
		t.Fatalf("gaussian not symmetric: %v", got)
	}
	if got := g.Membership(math.NaN()); got != 0 {
		t.Fatalf("NaN input = %v, want 0", got)
	}
	lo, hi := g.Support()
	if g.Membership(lo) > 1e-5 || g.Membership(hi) > 1e-5 {
		t.Fatal("membership at support edges should be negligible")
	}
	if kLo, kHi := g.Kernel(); kLo != 10 || kHi != 10 {
		t.Fatal("kernel should be the centre")
	}
	if g.String() != "gauss(10; 2)" {
		t.Fatalf("String = %q", g.String())
	}
}

func TestGaussianValidation(t *testing.T) {
	cases := [][2]float64{{math.NaN(), 1}, {math.Inf(1), 1}, {0, 0}, {0, -1}, {0, math.NaN()}, {0, math.Inf(1)}}
	for _, c := range cases {
		if _, err := NewGaussian(c[0], c[1]); err == nil {
			t.Fatalf("NewGaussian(%v, %v) should fail", c[0], c[1])
		}
	}
	if _, err := NewGaussian(0, 1); err != nil {
		t.Fatal(err)
	}
}

func TestBellShape(t *testing.T) {
	b := MustBell(5, 2, 3)
	if got := b.Membership(5); got != 1 {
		t.Fatalf("peak = %v, want 1", got)
	}
	// At center ± width the bell is exactly 0.5 for any slope.
	if got := b.Membership(7); !almostEqual(got, 0.5, 1e-12) {
		t.Fatalf("mu(center+width) = %v, want 0.5", got)
	}
	if got := b.Membership(3); !almostEqual(got, 0.5, 1e-12) {
		t.Fatalf("bell not symmetric: %v", got)
	}
	if got := b.Membership(math.NaN()); got != 0 {
		t.Fatalf("NaN input = %v, want 0", got)
	}
	lo, hi := b.Support()
	if b.Membership(lo) > 2e-4 || b.Membership(hi) > 2e-4 {
		t.Fatalf("membership at support edges should be negligible: %v / %v",
			b.Membership(lo), b.Membership(hi))
	}
	if b.String() != "bell(5; 2, 3)" {
		t.Fatalf("String = %q", b.String())
	}
}

func TestBellValidation(t *testing.T) {
	cases := [][3]float64{
		{math.NaN(), 1, 1}, {0, 0, 1}, {0, -1, 1}, {0, 1, 0}, {0, 1, -2},
		{0, math.Inf(1), 1}, {0, 1, math.NaN()},
	}
	for _, c := range cases {
		if _, err := NewBell(c[0], c[1], c[2]); err == nil {
			t.Fatalf("NewBell(%v) should fail", c)
		}
	}
	if _, err := NewBell(0, 1, 1); err != nil {
		t.Fatal(err)
	}
}

// Property: smooth shapes stay within [0, 1] and are unimodal around
// their centre.
func TestSmoothShapesBoundsProperty(t *testing.T) {
	prop := func(cRaw, wRaw, x1, x2 float64) bool {
		c := clampFinite(cRaw, -1e6, 1e6)
		w := clampFinite(math.Abs(wRaw), 1e-3, 1e6)
		g := MustGaussian(c, w)
		b := MustBell(c, w, 2)
		for _, x := range []float64{x1, x2} {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			for _, mf := range []MembershipFunc{g, b} {
				m := mf.Membership(x)
				if m < 0 || m > 1 {
					return false
				}
			}
		}
		// Unimodal: closer to the centre means at least as much membership.
		a := clampFinite(math.Abs(x1), 0, 1e6)
		bb := clampFinite(math.Abs(x2), 0, 1e6)
		if a > bb {
			a, bb = bb, a
		}
		return g.Membership(c+a) >= g.Membership(c+bb)-1e-12 &&
			b.Membership(c+a) >= b.Membership(c+bb)-1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestSmoothEngineEndToEnd runs a complete controller built from smooth
// membership functions through the standard inference path.
func TestSmoothEngineEndToEnd(t *testing.T) {
	in := MustVariable("x", 0, 10,
		Term{Name: "low", MF: MustGaussian(0, 2.5)},
		Term{Name: "high", MF: MustGaussian(10, 2.5)},
	)
	out := MustVariable("y", 0, 1,
		Term{Name: "small", MF: MustBell(0, 0.3, 2)},
		Term{Name: "large", MF: MustBell(1, 0.3, 2)},
	)
	eng, err := NewEngine([]*Variable{in}, out, []Rule{
		MustParseRule("IF x is low THEN y is small"),
		MustParseRule("IF x is high THEN y is large"),
	})
	if err != nil {
		t.Fatal(err)
	}
	lo, err := eng.EvaluateVec(0)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := eng.EvaluateVec(10)
	if err != nil {
		t.Fatal(err)
	}
	if lo >= 0.5 || hi <= 0.5 {
		t.Fatalf("smooth controller endpoints: lo=%v hi=%v", lo, hi)
	}
	mid, err := eng.EvaluateVec(5)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(mid, 0.5, 0.05) {
		t.Fatalf("midpoint = %v, want ~0.5 by symmetry", mid)
	}
}
