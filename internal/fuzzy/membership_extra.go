package fuzzy

import (
	"fmt"
	"math"
)

// The paper restricts itself to triangular and trapezoidal shapes for
// real-time operation; Gaussian and generalized-bell functions are
// provided as library extensions for smoother controllers and for the
// defuzzifier/inference machinery to be exercised against non-piecewise
// shapes. Their support is unbounded, so variables using them rely on
// universe clamping.

// Gaussian is exp(-(x-Center)^2 / (2 Sigma^2)).
type Gaussian struct {
	Center float64
	Sigma  float64
}

var _ MembershipFunc = Gaussian{}

// NewGaussian validates and constructs a Gaussian membership function.
func NewGaussian(center, sigma float64) (Gaussian, error) {
	g := Gaussian{Center: center, Sigma: sigma}
	if err := g.validate(); err != nil {
		return Gaussian{}, err
	}
	return g, nil
}

// MustGaussian is like NewGaussian but panics on invalid parameters.
func MustGaussian(center, sigma float64) Gaussian {
	g, err := NewGaussian(center, sigma)
	if err != nil {
		panic(err)
	}
	return g
}

func (g Gaussian) validate() error {
	if math.IsNaN(g.Center) || math.IsInf(g.Center, 0) {
		return fmt.Errorf("fuzzy: gaussian center must be finite, got %v", g.Center)
	}
	if math.IsNaN(g.Sigma) || g.Sigma <= 0 || math.IsInf(g.Sigma, 0) {
		return fmt.Errorf("fuzzy: gaussian sigma must be finite and > 0, got %v", g.Sigma)
	}
	return nil
}

// Membership implements MembershipFunc.
func (g Gaussian) Membership(x float64) float64 {
	if math.IsNaN(x) {
		return 0
	}
	d := (x - g.Center) / g.Sigma
	return math.Exp(-d * d / 2)
}

// Support implements MembershipFunc. A Gaussian never reaches zero; the
// reported support is the ±5 sigma interval outside of which membership
// is below 4e-6 and negligible for inference purposes.
func (g Gaussian) Support() (lo, hi float64) {
	return g.Center - 5*g.Sigma, g.Center + 5*g.Sigma
}

// Kernel implements MembershipFunc.
func (g Gaussian) Kernel() (lo, hi float64) { return g.Center, g.Center }

// String returns a compact description, e.g. "gauss(0.5; 0.1)".
func (g Gaussian) String() string { return fmt.Sprintf("gauss(%g; %g)", g.Center, g.Sigma) }

// Bell is the generalized bell function 1 / (1 + |(x-Center)/Width|^(2 Slope)).
type Bell struct {
	Center float64
	Width  float64
	Slope  float64
}

var _ MembershipFunc = Bell{}

// NewBell validates and constructs a generalized-bell membership function.
func NewBell(center, width, slope float64) (Bell, error) {
	b := Bell{Center: center, Width: width, Slope: slope}
	if err := b.validate(); err != nil {
		return Bell{}, err
	}
	return b, nil
}

// MustBell is like NewBell but panics on invalid parameters.
func MustBell(center, width, slope float64) Bell {
	b, err := NewBell(center, width, slope)
	if err != nil {
		panic(err)
	}
	return b
}

func (b Bell) validate() error {
	if math.IsNaN(b.Center) || math.IsInf(b.Center, 0) {
		return fmt.Errorf("fuzzy: bell center must be finite, got %v", b.Center)
	}
	if math.IsNaN(b.Width) || b.Width <= 0 || math.IsInf(b.Width, 0) {
		return fmt.Errorf("fuzzy: bell width must be finite and > 0, got %v", b.Width)
	}
	if math.IsNaN(b.Slope) || b.Slope <= 0 || math.IsInf(b.Slope, 0) {
		return fmt.Errorf("fuzzy: bell slope must be finite and > 0, got %v", b.Slope)
	}
	return nil
}

// Membership implements MembershipFunc.
func (b Bell) Membership(x float64) float64 {
	if math.IsNaN(x) {
		return 0
	}
	d := math.Abs((x - b.Center) / b.Width)
	return 1 / (1 + math.Pow(d, 2*b.Slope))
}

// Support implements MembershipFunc. Like the Gaussian, the bell never
// reaches zero; the reported support is where membership falls below
// ~1e-4 for slope 1, scaled by the slope.
func (b Bell) Support() (lo, hi float64) {
	// |d|^(2 slope) = 1e4  =>  d = 1e4^(1/(2 slope))
	d := math.Pow(1e4, 1/(2*b.Slope)) * b.Width
	return b.Center - d, b.Center + d
}

// Kernel implements MembershipFunc.
func (b Bell) Kernel() (lo, hi float64) { return b.Center, b.Center }

// String returns a compact description, e.g. "bell(0.5; 0.2, 2)".
func (b Bell) String() string {
	return fmt.Sprintf("bell(%g; %g, %g)", b.Center, b.Width, b.Slope)
}
