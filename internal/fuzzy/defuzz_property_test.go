package fuzzy

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property/invariant suite for the four defuzzifiers: outputs stay
// inside the support hull of the fired terms, symmetric aggregates
// defuzzify to the centre of symmetry, and refining the sampling
// resolution converges monotonically (within one grid step of slack)
// to a limit.

// defuzzifierFactories builds a fresh instance per call because
// WeightedAverage caches per-variable centroids at the resolution it
// first sees; sharing one across resolutions would mask convergence.
var defuzzifierFactories = []struct {
	name string
	mk   func() Defuzzifier
}{
	{"centroid", func() Defuzzifier { return Centroid{} }},
	{"bisector", func() Defuzzifier { return Bisector{} }},
	{"mean-of-maxima", func() Defuzzifier { return MeanOfMaxima{} }},
	{"weighted-average", func() Defuzzifier { return NewWeightedAverage() }},
}

// supportHull returns the smallest interval containing the support of
// every fired term, intersected with the universe.
func supportHull(agg *AggregatedOutput) (float64, float64) {
	umin, umax := agg.Variable().Universe()
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < agg.NumTerms(); i++ {
		if agg.Strength(i) == 0 {
			continue
		}
		sLo, sHi := agg.Variable().TermAt(i).MF.Support()
		lo = math.Min(lo, math.Max(sLo, umin))
		hi = math.Max(hi, math.Min(sHi, umax))
	}
	return lo, hi
}

// TestDefuzzifiersWithinSupportProperty: the crisp answer never leaves
// the support hull of the terms that fired — a stricter bound than the
// universe, since unfired regions must not attract the output.
func TestDefuzzifiersWithinSupportProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		strengths := []float64{0, 0, 0}
		// Fire a random non-empty subset at random strengths.
		for i := range strengths {
			if rng.Intn(2) == 1 {
				strengths[i] = 0.05 + 0.95*rng.Float64()
			}
		}
		agg := symmetricAggQuick(strengths[0], strengths[1], strengths[2])
		if agg.Empty() {
			continue
		}
		lo, hi := supportHull(agg)
		const resolution = 1001
		step := 1.0 / (resolution - 1) // universe [0,1]
		for _, d := range defuzzifierFactories {
			got, err := d.mk().Defuzzify(agg, resolution)
			if err != nil {
				t.Fatalf("%s(%v): %v", d.name, strengths, err)
			}
			if got < lo-step || got > hi+step {
				t.Fatalf("%s(%v) = %v outside fired support hull [%v, %v]",
					d.name, strengths, got, lo, hi)
			}
		}
	}
}

// TestDefuzzifierSymmetryProperty: a symmetric aggregate over a
// symmetric partition defuzzifies to the centre of symmetry for every
// method (up to one sampling step for the grid-quantised bisector and
// mean-of-maxima).
func TestDefuzzifierSymmetryProperty(t *testing.T) {
	prop := func(outerRaw, midRaw float64) bool {
		outer := clampFinite(math.Abs(outerRaw), 0, 1)
		mid := clampFinite(math.Abs(midRaw), 0, 1)
		if outer == 0 && mid == 0 {
			return true
		}
		const resolution = 4001
		const tol = 2.0 / (resolution - 1)
		agg := symmetricAggQuick(outer, mid, outer)
		for _, d := range defuzzifierFactories {
			got, err := d.mk().Defuzzify(agg, resolution)
			if err != nil {
				return false
			}
			if math.Abs(got-0.5) > tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestDefuzzifierResolutionConvergence: doubling the sample resolution
// moves every method towards a limit, monotonically up to one grid
// step of slack, and the finest answer sits within one coarse step of
// a 65537-sample reference.
func TestDefuzzifierResolutionConvergence(t *testing.T) {
	aggs := map[string]*AggregatedOutput{
		"asymmetric":  symmetricAggQuick(0.8, 0.4, 0.1),
		"two-plateau": symmetricAggQuick(0.6, 0, 0.9),
		"single-term": symmetricAggQuick(0, 0.7, 0),
	}
	const refRes = 65537
	resolutions := []int{129, 257, 513, 1025, 2049, 4097}
	for aggName, agg := range aggs {
		for _, d := range defuzzifierFactories {
			ref, err := d.mk().Defuzzify(agg, refRes)
			if err != nil {
				t.Fatalf("%s/%s reference: %v", aggName, d.name, err)
			}
			prevErr := math.Inf(1)
			for _, res := range resolutions {
				got, err := d.mk().Defuzzify(agg, res)
				if err != nil {
					t.Fatalf("%s/%s at %d: %v", aggName, d.name, res, err)
				}
				e := math.Abs(got - ref)
				step := 1.0 / float64(res-1)
				if e > prevErr+step {
					t.Fatalf("%s/%s: error grew from %v to %v at resolution %d",
						aggName, d.name, prevErr, e, res)
				}
				prevErr = e
			}
			finalStep := 1.0 / float64(resolutions[0]-1)
			if prevErr > finalStep {
				t.Fatalf("%s/%s: finest error %v exceeds one coarse step %v",
					aggName, d.name, prevErr, finalStep)
			}
		}
	}
}

// TestDefuzzifierResolutionFloor: resolutions below 2 are clamped, not
// rejected, for every method.
func TestDefuzzifierResolutionFloor(t *testing.T) {
	agg := symmetricAggQuick(0.3, 0.6, 0.2)
	for _, d := range defuzzifierFactories {
		got, err := d.mk().Defuzzify(agg, 0)
		if err != nil {
			t.Fatalf("%s at resolution 0: %v", d.name, err)
		}
		if got < 0 || got > 1 {
			t.Fatalf("%s at resolution 0 = %v outside universe", d.name, got)
		}
	}
}
