package fuzzy

import (
	"strings"
	"testing"
)

func TestParseRule(t *testing.T) {
	tests := []struct {
		name    string
		text    string
		want    Rule
		wantErr string
	}{
		{
			name: "paper FRB1 style",
			text: "IF S is Sl AND A is B1 AND D is N THEN Cv is Cv3",
			want: Rule{
				If:     []Clause{{"S", "Sl"}, {"A", "B1"}, {"D", "N"}},
				Then:   Clause{"Cv", "Cv3"},
				Weight: 1,
			},
		},
		{
			name: "single antecedent",
			text: "IF x is hot THEN y is cold",
			want: Rule{If: []Clause{{"x", "hot"}}, Then: Clause{"y", "cold"}, Weight: 1},
		},
		{
			name: "weighted",
			text: "IF x is hot THEN y is cold [0.5]",
			want: Rule{If: []Clause{{"x", "hot"}}, Then: Clause{"y", "cold"}, Weight: 0.5},
		},
		{
			name: "case-insensitive keywords",
			text: "if x IS hot and z is wet then y is cold",
			want: Rule{If: []Clause{{"x", "hot"}, {"z", "wet"}}, Then: Clause{"y", "cold"}, Weight: 1},
		},
		{name: "empty", text: "   ", wantErr: "empty rule"},
		{name: "missing IF", text: "x is hot THEN y is cold", wantErr: `expected "IF"`},
		{name: "missing THEN", text: "IF x is hot y is cold", wantErr: "expected AND or THEN"},
		{name: "truncated", text: "IF x is", wantErr: "end of input"},
		{name: "truncated after THEN", text: "IF x is hot THEN", wantErr: "end of input"},
		{name: "keyword as name", text: "IF and is hot THEN y is cold", wantErr: "keyword"},
		{name: "trailing garbage", text: "IF x is hot THEN y is cold extra", wantErr: "trailing token"},
		{name: "bad weight", text: "IF x is hot THEN y is cold [abc]", wantErr: "malformed weight"},
		{name: "weight out of range", text: "IF x is hot THEN y is cold [1.5]", wantErr: "outside [0, 1]"},
		{name: "garbage after weight", text: "IF x is hot THEN y is cold [0.5] more", wantErr: "trailing token"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ParseRule(tc.text)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error = %v, want substring %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !rulesEqual(got, tc.want) {
				t.Fatalf("ParseRule(%q) = %+v, want %+v", tc.text, got, tc.want)
			}
		})
	}
}

func TestParseRuleRoundTrip(t *testing.T) {
	texts := []string{
		"IF S is Sl AND A is B1 AND D is N THEN Cv is Cv3",
		"IF Cv is B AND R is T AND Cs is S THEN AR is A",
		"IF x is hot THEN y is cold [0.25]",
	}
	for _, text := range texts {
		r1 := MustParseRule(text)
		r2, err := ParseRule(r1.String())
		if err != nil {
			t.Fatalf("reparsing %q: %v", r1.String(), err)
		}
		if !rulesEqual(r1, r2) {
			t.Fatalf("round trip mismatch: %+v vs %+v", r1, r2)
		}
	}
}

func TestParseRules(t *testing.T) {
	text := `
# FRB excerpt
IF S is Sl AND A is B1 AND D is N THEN Cv is Cv3
// another comment

IF S is Sl AND A is B1 AND D is F THEN Cv is Cv1
`
	rules, err := ParseRules(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("got %d rules, want 2", len(rules))
	}
	if rules[1].Then.Term != "Cv1" {
		t.Fatalf("second rule consequent = %q, want Cv1", rules[1].Then.Term)
	}
}

func TestParseRulesErrors(t *testing.T) {
	if _, err := ParseRules("# only comments\n"); err == nil {
		t.Fatal("expected error for empty rule set")
	}
	_, err := ParseRules("IF x is a THEN y is b\nbroken rule here")
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error = %v, want line number 2", err)
	}
}

func TestRuleValidate(t *testing.T) {
	tests := []struct {
		name    string
		rule    Rule
		wantErr bool
	}{
		{"ok", Rule{If: []Clause{{"a", "b"}}, Then: Clause{"c", "d"}, Weight: 1}, false},
		{"zero weight ok (means default)", Rule{If: []Clause{{"a", "b"}}, Then: Clause{"c", "d"}}, false},
		{"no antecedent", Rule{Then: Clause{"c", "d"}}, true},
		{"empty clause", Rule{If: []Clause{{"", "b"}}, Then: Clause{"c", "d"}}, true},
		{"empty consequent", Rule{If: []Clause{{"a", "b"}}, Then: Clause{"", ""}}, true},
		{"negative weight", Rule{If: []Clause{{"a", "b"}}, Then: Clause{"c", "d"}, Weight: -0.1}, true},
		{"weight above one", Rule{If: []Clause{{"a", "b"}}, Then: Clause{"c", "d"}, Weight: 1.1}, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.rule.Validate()
			if gotErr := err != nil; gotErr != tc.wantErr {
				t.Fatalf("Validate() = %v, want error %v", err, tc.wantErr)
			}
		})
	}
}

func TestMustParseRulePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParseRule should panic on malformed input")
		}
	}()
	MustParseRule("not a rule")
}

func rulesEqual(a, b Rule) bool {
	if len(a.If) != len(b.If) || a.Then != b.Then || a.Weight != b.Weight {
		return false
	}
	for i := range a.If {
		if a.If[i] != b.If[i] {
			return false
		}
	}
	return true
}
