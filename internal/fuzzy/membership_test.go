package fuzzy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTriangularMembership(t *testing.T) {
	tri := MustTriangular(30, 15, 30) // paper's M speed term layout
	tests := []struct {
		name string
		x    float64
		want float64
	}{
		{"apex", 30, 1},
		{"left foot", 15, 0},
		{"below left foot", 0, 0},
		{"right foot", 60, 0},
		{"beyond right foot", 120, 0},
		{"mid left slope", 22.5, 0.5},
		{"mid right slope", 45, 0.5},
		{"quarter left slope", 18.75, 0.25},
		{"NaN input", math.NaN(), 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tri.Membership(tc.x); !almostEqual(got, tc.want, 1e-12) {
				t.Fatalf("Membership(%v) = %v, want %v", tc.x, got, tc.want)
			}
		})
	}
}

func TestTriangularPaperFormula(t *testing.T) {
	// The implementation must agree with the paper's piecewise definition
	// f(x; x0, a0, a1) on a dense grid.
	tri := MustTriangular(0.5, 0.2, 0.3)
	paper := func(x, x0, a0, a1 float64) float64 {
		switch {
		case x0-a0 < x && x <= x0:
			return (x-x0)/a0 + 1
		case x0 < x && x <= x0+a1:
			return (x0-x)/a1 + 1
		default:
			return 0
		}
	}
	for x := -0.5; x <= 1.5; x += 0.001 {
		want := paper(x, 0.5, 0.2, 0.3)
		if got := tri.Membership(x); !almostEqual(got, want, 1e-9) {
			t.Fatalf("Membership(%v) = %v, want paper formula %v", x, got, want)
		}
	}
}

func TestTriangularZeroWidthEdges(t *testing.T) {
	tri := MustTriangular(10, 0, 5)
	if got := tri.Membership(10); got != 1 {
		t.Fatalf("apex membership = %v, want 1", got)
	}
	if got := tri.Membership(9.999); got != 0 {
		t.Fatalf("left of vertical edge = %v, want 0", got)
	}
	if got := tri.Membership(12.5); !almostEqual(got, 0.5, 1e-12) {
		t.Fatalf("right slope = %v, want 0.5", got)
	}
}

func TestTriangularValidation(t *testing.T) {
	tests := []struct {
		name             string
		center, lw, rw   float64
		wantErrSubstring bool
	}{
		{"valid", 1, 1, 1, false},
		{"zero widths valid", 1, 0, 0, false},
		{"negative left width", 1, -1, 1, true},
		{"negative right width", 1, 1, -1, true},
		{"NaN center", math.NaN(), 1, 1, true},
		{"infinite center", math.Inf(1), 1, 1, true},
		{"NaN width", 0, math.NaN(), 1, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewTriangular(tc.center, tc.lw, tc.rw)
			if gotErr := err != nil; gotErr != tc.wantErrSubstring {
				t.Fatalf("NewTriangular(%v,%v,%v) error = %v, want error %v", tc.center, tc.lw, tc.rw, err, tc.wantErrSubstring)
			}
		})
	}
}

func TestTrapezoidalMembership(t *testing.T) {
	trap := MustTrapezoidal(0, 15, 5, 15) // plateau [0,15], slopes 5 and 15
	tests := []struct {
		name string
		x    float64
		want float64
	}{
		{"plateau left edge", 0, 1},
		{"plateau right edge", 15, 1},
		{"plateau interior", 7.5, 1},
		{"left foot", -5, 0},
		{"right foot", 30, 0},
		{"mid left slope", -2.5, 0.5},
		{"mid right slope", 22.5, 0.5},
		{"far left", -100, 0},
		{"far right", 100, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := trap.Membership(tc.x); !almostEqual(got, tc.want, 1e-12) {
				t.Fatalf("Membership(%v) = %v, want %v", tc.x, got, tc.want)
			}
		})
	}
}

func TestTrapezoidalPaperFormula(t *testing.T) {
	trap := MustTrapezoidal(0.3, 0.6, 0.1, 0.2)
	paper := func(x, x0, x1, a0, a1 float64) float64 {
		switch {
		case x0-a0 < x && x <= x0:
			return (x-x0)/a0 + 1
		case x0 < x && x <= x1:
			return 1
		case x1 < x && x <= x1+a1:
			return (x1-x)/a1 + 1
		default:
			return 0
		}
	}
	for x := -0.5; x <= 1.5; x += 0.001 {
		want := paper(x, 0.3, 0.6, 0.1, 0.2)
		if got := trap.Membership(x); !almostEqual(got, want, 1e-9) {
			t.Fatalf("Membership(%v) = %v, want paper formula %v", x, got, want)
		}
	}
}

func TestShoulders(t *testing.T) {
	left := MustLeftShoulder(15, 15)
	right := MustRightShoulder(60, 30)
	for _, x := range []float64{-1e9, -180, 0, 15} {
		if got := left.Membership(x); got != 1 {
			t.Fatalf("left shoulder Membership(%v) = %v, want 1", x, got)
		}
	}
	if got := left.Membership(22.5); !almostEqual(got, 0.5, 1e-12) {
		t.Fatalf("left shoulder slope = %v, want 0.5", got)
	}
	if got := left.Membership(30); got != 0 {
		t.Fatalf("left shoulder foot = %v, want 0", got)
	}
	for _, x := range []float64{60, 120, 1e9} {
		if got := right.Membership(x); got != 1 {
			t.Fatalf("right shoulder Membership(%v) = %v, want 1", x, got)
		}
	}
	if got := right.Membership(45); !almostEqual(got, 0.5, 1e-12) {
		t.Fatalf("right shoulder slope = %v, want 0.5", got)
	}
	if got := right.Membership(30); got != 0 {
		t.Fatalf("right shoulder foot = %v, want 0", got)
	}
}

func TestTrapezoidalValidation(t *testing.T) {
	tests := []struct {
		name           string
		le, re, lw, rw float64
		wantErr        bool
	}{
		{"valid", 0, 1, 1, 1, false},
		{"point plateau", 1, 1, 1, 1, false},
		{"inverted plateau", 2, 1, 1, 1, true},
		{"negative width", 0, 1, -1, 1, true},
		{"NaN edge", math.NaN(), 1, 1, 1, true},
		{"+Inf left edge", math.Inf(1), math.Inf(1), 0, 0, true},
		{"left shoulder ok", math.Inf(-1), 1, 0, 1, false},
		{"right shoulder ok", 1, math.Inf(1), 1, 0, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewTrapezoidal(tc.le, tc.re, tc.lw, tc.rw)
			if gotErr := err != nil; gotErr != tc.wantErr {
				t.Fatalf("NewTrapezoidal(%v,%v,%v,%v) error = %v, want error %v", tc.le, tc.re, tc.lw, tc.rw, err, tc.wantErr)
			}
		})
	}
}

func TestSingleton(t *testing.T) {
	s := Singleton{Point: 0.5}
	if got := s.Membership(0.5); got != 1 {
		t.Fatalf("Membership at point = %v, want 1", got)
	}
	if got := s.Membership(0.5000001); got != 0 {
		t.Fatalf("Membership off point = %v, want 0", got)
	}
	if lo, hi := s.Support(); lo != 0.5 || hi != 0.5 {
		t.Fatalf("Support = [%v,%v], want [0.5,0.5]", lo, hi)
	}
}

// Property: all membership functions stay within [0, 1] for arbitrary
// finite inputs and arbitrary valid shapes.
func TestMembershipBoundsProperty(t *testing.T) {
	prop := func(center, lwRaw, rwRaw, x float64) bool {
		if math.IsNaN(center) || math.IsInf(center, 0) {
			return true // constructor rejects; nothing to check
		}
		lw, rw := math.Abs(lwRaw), math.Abs(rwRaw)
		if math.IsNaN(lw) || math.IsInf(lw, 0) || math.IsNaN(rw) || math.IsInf(rw, 0) {
			return true
		}
		tri, err := NewTriangular(center, lw, rw)
		if err != nil {
			return true
		}
		m := tri.Membership(x)
		return m >= 0 && m <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: triangular membership is non-decreasing left of the apex and
// non-increasing right of it.
func TestTriangularMonotoneProperty(t *testing.T) {
	prop := func(centerRaw, widthRaw, aRaw, bRaw float64) bool {
		center := clampFinite(centerRaw, -1e6, 1e6)
		width := clampFinite(math.Abs(widthRaw), 0.001, 1e6)
		tri, err := NewTriangular(center, width, width)
		if err != nil {
			return true
		}
		a := clampFinite(aRaw, center-2*width, center)
		b := clampFinite(bRaw, center-2*width, center)
		if a > b {
			a, b = b, a
		}
		// a <= b <= center: membership must be non-decreasing.
		return tri.Membership(a) <= tri.Membership(b)+1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: support and kernel are consistent — membership is 0 strictly
// outside the support and 1 on the kernel.
func TestSupportKernelConsistencyProperty(t *testing.T) {
	prop := func(le, plateau, lw, rw float64) bool {
		le = clampFinite(le, -1e6, 1e6)
		re := le + clampFinite(math.Abs(plateau), 0, 1e6)
		lwc := clampFinite(math.Abs(lw), 0, 1e6)
		rwc := clampFinite(math.Abs(rw), 0, 1e6)
		trap, err := NewTrapezoidal(le, re, lwc, rwc)
		if err != nil {
			return true
		}
		sLo, sHi := trap.Support()
		kLo, kHi := trap.Kernel()
		if trap.Membership(sLo-1) != 0 || trap.Membership(sHi+1) != 0 {
			return false
		}
		return trap.Membership(kLo) == 1 && trap.Membership(kHi) == 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMembershipStringers(t *testing.T) {
	tests := []struct {
		name string
		got  string
		want string
	}{
		{"triangular", MustTriangular(30, 15, 30).String(), "tri(30; 15, 30)"},
		{"trapezoidal", MustTrapezoidal(0, 15, 0, 15).String(), "trap(0, 15; 0, 15)"},
		{"singleton", Singleton{Point: 0.5}.String(), "singleton(0.5)"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if tc.got != tc.want {
				t.Fatalf("String() = %q, want %q", tc.got, tc.want)
			}
		})
	}
}

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func clampFinite(x, lo, hi float64) float64 {
	if math.IsNaN(x) {
		return lo
	}
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
