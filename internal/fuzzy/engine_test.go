package fuzzy

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// testController builds a simple two-input controller used across the
// engine tests: service quality and food quality drive a tip percentage.
func testController(t *testing.T, opts ...Option) *Engine {
	t.Helper()
	service := MustVariable("service", 0, 10,
		Term{Name: "poor", MF: MustTriangular(0, 0, 5)},
		Term{Name: "good", MF: MustTriangular(5, 5, 5)},
		Term{Name: "excellent", MF: MustTriangular(10, 5, 0)},
	)
	food := MustVariable("food", 0, 10,
		Term{Name: "rancid", MF: MustTrapezoidal(0, 2, 0, 4)},
		Term{Name: "delicious", MF: MustTrapezoidal(8, 10, 4, 0)},
	)
	tip := MustVariable("tip", 0, 30,
		Term{Name: "cheap", MF: MustTrapezoidal(0, 5, 0, 10)},
		Term{Name: "average", MF: MustTriangular(15, 10, 10)},
		Term{Name: "generous", MF: MustTrapezoidal(25, 30, 10, 0)},
	)
	rules, err := ParseRules(`
IF service is poor AND food is rancid THEN tip is cheap
IF service is good THEN tip is average
IF service is excellent AND food is delicious THEN tip is generous
IF service is poor THEN tip is cheap
IF service is excellent THEN tip is generous
`)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine([]*Variable{service, food}, tip, rules, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEngineEvaluateKnownPoints(t *testing.T) {
	e := testController(t)
	tests := []struct {
		name          string
		service, food float64
		wantLo        float64
		wantHi        float64
	}{
		{"worst case", 0, 0, 0, 8},
		{"mid case", 5, 5, 13, 17},
		{"best case", 10, 10, 22, 30},
		{"good service bad food", 5, 0, 13, 17},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, err := e.Evaluate(map[string]float64{"service": tc.service, "food": tc.food})
			if err != nil {
				t.Fatal(err)
			}
			if got < tc.wantLo || got > tc.wantHi {
				t.Fatalf("Evaluate(%v, %v) = %v, want in [%v, %v]", tc.service, tc.food, got, tc.wantLo, tc.wantHi)
			}
		})
	}
}

func TestEngineEvaluateMonotoneInService(t *testing.T) {
	e := testController(t)
	prev := math.Inf(-1)
	for s := 0.0; s <= 10; s += 0.25 {
		got, err := e.EvaluateVec(s, 5)
		if err != nil {
			t.Fatal(err)
		}
		if got < prev-1e-9 {
			t.Fatalf("tip decreased from %v to %v at service=%v", prev, got, s)
		}
		prev = got
	}
}

func TestEngineEvaluateErrors(t *testing.T) {
	e := testController(t)
	if _, err := e.Evaluate(map[string]float64{"service": 5}); err == nil {
		t.Fatal("missing input should error")
	}
	if _, err := e.Evaluate(map[string]float64{"service": 5, "food": 5, "bogus": 1}); err == nil {
		t.Fatal("unknown input should error")
	}
	if _, err := e.EvaluateVec(1); err == nil {
		t.Fatal("short input vector should error")
	}
	if _, err := e.Infer([]float64{1, 2, 3}); err == nil {
		t.Fatal("long input vector should error")
	}
}

func TestNewEngineValidation(t *testing.T) {
	in := MustVariable("x", 0, 1, Term{Name: "a", MF: MustTrapezoidal(0, 1, 0, 0)})
	out := MustVariable("y", 0, 1, Term{Name: "b", MF: MustTrapezoidal(0, 1, 0, 0)})
	okRule := []Rule{MustParseRule("IF x is a THEN y is b")}

	tests := []struct {
		name    string
		inputs  []*Variable
		output  *Variable
		rules   []Rule
		wantErr string
	}{
		{"ok", []*Variable{in}, out, okRule, ""},
		{"no inputs", nil, out, okRule, "at least one input"},
		{"nil output", []*Variable{in}, nil, okRule, "needs an output"},
		{"no rules", []*Variable{in}, out, nil, "at least one rule"},
		{"nil input", []*Variable{nil}, out, okRule, "is nil"},
		{"duplicate input", []*Variable{in, in}, out, okRule, "duplicate input"},
		{"output as input", []*Variable{in, out}, out, okRule, "also appears as an input"},
		{"unknown rule variable", []*Variable{in}, out, []Rule{MustParseRule("IF z is a THEN y is b")}, `unknown input variable "z"`},
		{"unknown rule term", []*Variable{in}, out, []Rule{MustParseRule("IF x is zz THEN y is b")}, `no term "zz"`},
		{"wrong consequent var", []*Variable{in}, out, []Rule{MustParseRule("IF x is a THEN z is b")}, "consequent references"},
		{"unknown output term", []*Variable{in}, out, []Rule{MustParseRule("IF x is a THEN y is zz")}, `no term "zz"`},
		{"duplicate clause variable", []*Variable{in}, out, []Rule{MustParseRule("IF x is a AND x is a THEN y is b")}, "referenced twice"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewEngine(tc.inputs, tc.output, tc.rules)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func TestNewEngineRejectsCoverageHole(t *testing.T) {
	in := MustVariable("x", 0, 10,
		Term{Name: "lo", MF: MustTriangular(0, 0, 2)},
		Term{Name: "hi", MF: MustTriangular(10, 2, 0)},
	)
	out := MustVariable("y", 0, 1, Term{Name: "b", MF: MustTrapezoidal(0, 1, 0, 0)})
	_, err := NewEngine([]*Variable{in}, out, []Rule{MustParseRule("IF x is lo THEN y is b")})
	if err == nil || !strings.Contains(err.Error(), "coverage hole") {
		t.Fatalf("error = %v, want coverage hole", err)
	}
}

func TestEngineAccessors(t *testing.T) {
	e := testController(t)
	if got := e.NumRules(); got != 5 {
		t.Fatalf("NumRules = %d, want 5", got)
	}
	if got := len(e.Inputs()); got != 2 {
		t.Fatalf("len(Inputs) = %d, want 2", got)
	}
	if e.Output().Name() != "tip" {
		t.Fatalf("Output().Name() = %q, want tip", e.Output().Name())
	}
	rules := e.Rules()
	rules[0].Then.Term = "mutated"
	if e.Rules()[0].Then.Term == "mutated" {
		t.Fatal("Rules() exposed internal state")
	}
}

func TestEngineZeroWeightRuleDefaultsToOne(t *testing.T) {
	in := MustVariable("x", 0, 1, Term{Name: "a", MF: MustTrapezoidal(0, 1, 0, 0)})
	out := MustVariable("y", 0, 1,
		Term{Name: "lo", MF: MustTriangular(0, 0, 1)},
		Term{Name: "hi", MF: MustTriangular(1, 1, 0)},
	)
	e, err := NewEngine([]*Variable{in}, out, []Rule{{If: []Clause{{"x", "a"}}, Then: Clause{"y", "hi"}}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.EvaluateVec(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got < 0.5 {
		t.Fatalf("EvaluateVec = %v, want strong pull towards hi (>= 0.5)", got)
	}
}

func TestEngineRuleWeightScalesStrength(t *testing.T) {
	in := MustVariable("x", 0, 1, Term{Name: "a", MF: MustTrapezoidal(0, 1, 0, 0)})
	out := MustVariable("y", 0, 1,
		Term{Name: "lo", MF: MustTriangular(0, 0, 1)},
		Term{Name: "hi", MF: MustTriangular(1, 1, 0)},
	)
	full, err := NewEngine([]*Variable{in}, out, []Rule{
		MustParseRule("IF x is a THEN y is hi"),
		MustParseRule("IF x is a THEN y is lo [0.2]"),
	})
	if err != nil {
		t.Fatal(err)
	}
	agg, err := full.Infer([]float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	if got := agg.Strength(1); got != 1 {
		t.Fatalf("hi strength = %v, want 1", got)
	}
	if got := agg.Strength(0); !almostEqual(got, 0.2, 1e-12) {
		t.Fatalf("lo strength = %v, want 0.2", got)
	}
}

func TestEngineTNormProduct(t *testing.T) {
	in1 := MustVariable("a", 0, 1, Term{Name: "t", MF: MustTrapezoidal(0, 1, 0, 0)})
	in2 := MustVariable("b", 0, 1,
		Term{Name: "half", MF: MustTriangular(0.5, 0.5, 0.5)},
		Term{Name: "rest", MF: MustTrapezoidal(0, 1, 0, 0)},
	)
	out := MustVariable("y", 0, 1,
		Term{Name: "lo", MF: MustTriangular(0, 0, 1)},
		Term{Name: "hi", MF: MustTriangular(1, 1, 0)},
	)
	rules := []Rule{MustParseRule("IF a is t AND b is half THEN y is hi")}
	eMin := MustEngine([]*Variable{in1, in2}, out, rules, WithTNorm(TNormMin))
	eProd := MustEngine([]*Variable{in1, in2}, out, rules, WithTNorm(TNormProduct))

	aggMin, err := eMin.Infer([]float64{1, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	aggProd, err := eProd.Infer([]float64{1, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	// µ(half at 0.25) = 0.5; min(1, 0.5) = 0.5 and 1*0.5 = 0.5 agree here.
	if !almostEqual(aggMin.Strength(1), 0.5, 1e-12) || !almostEqual(aggProd.Strength(1), 0.5, 1e-12) {
		t.Fatalf("strengths = %v, %v, want 0.5", aggMin.Strength(1), aggProd.Strength(1))
	}
}

func TestEngineExplain(t *testing.T) {
	e := testController(t)
	ex, err := e.Explain([]float64{9, 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Fired) == 0 {
		t.Fatal("no rules fired for a well-covered point")
	}
	for i := 1; i < len(ex.Fired); i++ {
		if ex.Fired[i].Strength > ex.Fired[i-1].Strength {
			t.Fatal("Fired not sorted by descending strength")
		}
	}
	if ex.OutputTerm != "generous" {
		t.Fatalf("OutputTerm = %q, want generous", ex.OutputTerm)
	}
	if ex.Output < 15 {
		t.Fatalf("Output = %v, want generous tip > 15", ex.Output)
	}
	if _, err := e.Explain([]float64{1}); err == nil {
		t.Fatal("short vector should error")
	}
}

func TestEngineConcurrentEvaluate(t *testing.T) {
	e := testController(t, WithDefuzzifier(NewWeightedAverage()))
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(seed float64) {
			for i := 0; i < 200; i++ {
				x := math.Mod(seed+float64(i)*0.37, 10)
				if _, err := e.EvaluateVec(x, 10-x); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(float64(g))
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// Property: for arbitrary in-universe inputs the defuzzified output always
// lies within the output universe.
func TestEngineOutputWithinUniverseProperty(t *testing.T) {
	e := testController(t)
	prop := func(sRaw, fRaw float64) bool {
		s := clampFinite(sRaw, 0, 10)
		f := clampFinite(fRaw, 0, 10)
		got, err := e.EvaluateVec(s, f)
		if err != nil {
			return false
		}
		return got >= 0 && got <= 30
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: inference is deterministic — the same inputs always produce the
// same output.
func TestEngineDeterministicProperty(t *testing.T) {
	e := testController(t)
	prop := func(sRaw, fRaw float64) bool {
		s := clampFinite(sRaw, 0, 10)
		f := clampFinite(fRaw, 0, 10)
		a, err1 := e.EvaluateVec(s, f)
		b, err2 := e.EvaluateVec(s, f)
		return err1 == nil && err2 == nil && a == b
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTNormStringer(t *testing.T) {
	if TNormMin.String() != "min" || TNormProduct.String() != "product" {
		t.Fatal("TNorm stringer mismatch")
	}
	if !strings.Contains(TNorm(99).String(), "99") {
		t.Fatal("unknown TNorm should include its value")
	}
	if ImplicationClip.String() != "clip" || ImplicationScale.String() != "scale" {
		t.Fatal("Implication stringer mismatch")
	}
	if !strings.Contains(Implication(42).String(), "42") {
		t.Fatal("unknown Implication should include its value")
	}
}

func TestErrNoRuleFiredSurfacing(t *testing.T) {
	// A rule base that only covers part of the input space can leave the
	// aggregated output empty; the engine must surface ErrNoRuleFired.
	in := MustVariable("x", 0, 10,
		Term{Name: "lo", MF: MustTriangular(0, 0, 6)},
		Term{Name: "hi", MF: MustTriangular(10, 6, 0)},
	)
	out := MustVariable("y", 0, 1,
		Term{Name: "a", MF: MustTriangular(0, 0, 1)},
		Term{Name: "b", MF: MustTriangular(1, 1, 0)},
	)
	e := MustEngine([]*Variable{in}, out, []Rule{MustParseRule("IF x is lo THEN y is a")})
	_, err := e.EvaluateVec(10) // only "hi" is active; no rule covers it
	if !errors.Is(err, ErrNoRuleFired) {
		t.Fatalf("err = %v, want ErrNoRuleFired", err)
	}
}
