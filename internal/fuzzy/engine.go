package fuzzy

import (
	"fmt"
	"sort"
)

// Engine is a compiled Mamdani fuzzy-logic controller: the fuzzifier,
// inference engine, rule base and defuzzifier of the paper's Fig. 2, bound
// to concrete linguistic variables.
//
// An Engine is immutable after construction and safe for concurrent use.
type Engine struct {
	inputs      []*Variable
	inputIdx    map[string]int
	output      *Variable
	rules       []compiledRule
	srcRules    []Rule
	tnorm       TNorm
	implication Implication
	defuzz      Defuzzifier
	resolution  int
	totalTerms  int
}

type clauseRef struct {
	varIdx  int
	termIdx int
}

type compiledRule struct {
	clauses []clauseRef
	outTerm int
	weight  float64
}

// Option configures an Engine at construction time.
type Option func(*Engine)

// WithTNorm selects the antecedent combination operator (default min).
func WithTNorm(t TNorm) Option { return func(e *Engine) { e.tnorm = t } }

// WithImplication selects the rule implication operator (default clip).
func WithImplication(im Implication) Option { return func(e *Engine) { e.implication = im } }

// WithDefuzzifier selects the defuzzification method (default Centroid).
func WithDefuzzifier(d Defuzzifier) Option { return func(e *Engine) { e.defuzz = d } }

// WithResolution sets the sample count used by integral defuzzifiers and
// coverage checks (default 201, minimum 2).
func WithResolution(n int) Option { return func(e *Engine) { e.resolution = n } }

// NewEngine compiles a controller from its input variables, output variable
// and rule base. Every rule clause must reference a declared variable and
// term; a rule may omit input variables (it then fires regardless of them)
// but must not reference the same variable twice. All variables must cover
// their universes without holes.
func NewEngine(inputs []*Variable, output *Variable, rules []Rule, opts ...Option) (*Engine, error) {
	if len(inputs) == 0 {
		return nil, fmt.Errorf("fuzzy: engine needs at least one input variable")
	}
	if output == nil {
		return nil, fmt.Errorf("fuzzy: engine needs an output variable")
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("fuzzy: engine needs at least one rule")
	}
	e := &Engine{
		inputs:      append([]*Variable(nil), inputs...),
		inputIdx:    make(map[string]int, len(inputs)),
		output:      output,
		srcRules:    append([]Rule(nil), rules...),
		tnorm:       TNormMin,
		implication: ImplicationClip,
		defuzz:      Centroid{},
		resolution:  201,
	}
	for i, v := range e.inputs {
		if v == nil {
			return nil, fmt.Errorf("fuzzy: input variable %d is nil", i)
		}
		if _, dup := e.inputIdx[v.Name()]; dup {
			return nil, fmt.Errorf("fuzzy: duplicate input variable %q", v.Name())
		}
		if v.Name() == output.Name() {
			return nil, fmt.Errorf("fuzzy: output variable %q also appears as an input", v.Name())
		}
		e.inputIdx[v.Name()] = i
		e.totalTerms += v.NumTerms()
	}
	for _, opt := range opts {
		opt(e)
	}
	if e.resolution < 2 {
		e.resolution = 2
	}
	for _, v := range e.inputs {
		if err := v.CheckCoverage(e.resolution); err != nil {
			return nil, err
		}
	}
	if err := output.CheckCoverage(e.resolution); err != nil {
		return nil, err
	}
	e.rules = make([]compiledRule, 0, len(rules))
	for i, r := range rules {
		cr, err := e.compileRule(r)
		if err != nil {
			return nil, fmt.Errorf("fuzzy: rule %d: %w", i, err)
		}
		e.rules = append(e.rules, cr)
	}
	// Prime cache-bearing defuzzifiers so that Evaluate stays read-only
	// and therefore safe for concurrent use.
	if wa, ok := e.defuzz.(*WeightedAverage); ok {
		agg := &AggregatedOutput{out: e.output, strengths: make([]float64, e.output.NumTerms()), implication: e.implication}
		agg.strengths[0] = 1
		if _, err := wa.Defuzzify(agg, e.resolution); err != nil {
			return nil, fmt.Errorf("fuzzy: priming weighted-average defuzzifier: %w", err)
		}
	}
	return e, nil
}

// MustEngine is like NewEngine but panics on error. It is intended for
// statically known controllers such as the paper's FLC1 and FLC2.
func MustEngine(inputs []*Variable, output *Variable, rules []Rule, opts ...Option) *Engine {
	e, err := NewEngine(inputs, output, rules, opts...)
	if err != nil {
		panic(err)
	}
	return e
}

func (e *Engine) compileRule(r Rule) (compiledRule, error) {
	if err := r.Validate(); err != nil {
		return compiledRule{}, err
	}
	cr := compiledRule{clauses: make([]clauseRef, 0, len(r.If)), weight: r.Weight}
	if cr.weight == 0 {
		cr.weight = 1
	}
	seen := make(map[int]bool, len(r.If))
	for _, c := range r.If {
		vi, ok := e.inputIdx[c.Var]
		if !ok {
			return compiledRule{}, fmt.Errorf("unknown input variable %q", c.Var)
		}
		if seen[vi] {
			return compiledRule{}, fmt.Errorf("variable %q referenced twice in one rule", c.Var)
		}
		seen[vi] = true
		ti, ok := e.inputs[vi].TermIndex(c.Term)
		if !ok {
			return compiledRule{}, fmt.Errorf("variable %q has no term %q", c.Var, c.Term)
		}
		cr.clauses = append(cr.clauses, clauseRef{varIdx: vi, termIdx: ti})
	}
	if r.Then.Var != e.output.Name() {
		return compiledRule{}, fmt.Errorf("consequent references %q, want output variable %q", r.Then.Var, e.output.Name())
	}
	ti, ok := e.output.TermIndex(r.Then.Term)
	if !ok {
		return compiledRule{}, fmt.Errorf("output variable %q has no term %q", e.output.Name(), r.Then.Term)
	}
	cr.outTerm = ti
	return cr, nil
}

// Inputs returns the input variables in declaration order.
func (e *Engine) Inputs() []*Variable { return append([]*Variable(nil), e.inputs...) }

// Output returns the output variable.
func (e *Engine) Output() *Variable { return e.output }

// Rules returns a copy of the source rule base.
func (e *Engine) Rules() []Rule { return append([]Rule(nil), e.srcRules...) }

// NumRules returns the size of the rule base.
func (e *Engine) NumRules() int { return len(e.rules) }

// Evaluate runs one inference for the named crisp inputs. Every input
// variable must be present in the map.
func (e *Engine) Evaluate(inputs map[string]float64) (float64, error) {
	vals := make([]float64, len(e.inputs))
	for name, x := range inputs {
		i, ok := e.inputIdx[name]
		if !ok {
			return 0, fmt.Errorf("fuzzy: engine has no input variable %q", name)
		}
		vals[i] = x
	}
	if len(inputs) != len(e.inputs) {
		for _, v := range e.inputs {
			if _, ok := inputs[v.Name()]; !ok {
				return 0, fmt.Errorf("fuzzy: missing value for input variable %q", v.Name())
			}
		}
	}
	return e.EvaluateVec(vals...)
}

// EvaluateVec runs one inference with crisp inputs given in input
// declaration order. It is the allocation-light fast path.
func (e *Engine) EvaluateVec(vals ...float64) (float64, error) {
	agg, err := e.Infer(vals)
	if err != nil {
		return 0, err
	}
	return e.defuzz.Defuzzify(agg, e.resolution)
}

// Infer runs fuzzification and rule aggregation, returning the aggregated
// output fuzzy set without defuzzifying it.
//
//facs:coldpath exact-inference fallback builds its aggregation state per call; steady-state waves run the compiled surfaces and reach here only when an interpolation bound misses the decision margin
func (e *Engine) Infer(vals []float64) (*AggregatedOutput, error) {
	if len(vals) != len(e.inputs) {
		return nil, fmt.Errorf("fuzzy: got %d input values, want %d", len(vals), len(e.inputs))
	}
	degrees := make([]float64, e.totalTerms)
	offsets := make([]int, len(e.inputs))
	off := 0
	for i, v := range e.inputs {
		offsets[i] = off
		v.FuzzifyInto(vals[i], degrees[off:off+v.NumTerms()])
		off += v.NumTerms()
	}
	agg := &AggregatedOutput{
		out:         e.output,
		strengths:   make([]float64, e.output.NumTerms()),
		implication: e.implication,
	}
	for _, r := range e.rules {
		w := r.weight
		for _, c := range r.clauses {
			w = e.tnorm.Apply(w, degrees[offsets[c.varIdx]+c.termIdx])
			if w == 0 {
				break
			}
		}
		if w > agg.strengths[r.outTerm] {
			agg.strengths[r.outTerm] = w
		}
	}
	return agg, nil
}

// RuleActivation reports the firing strength of one rule for one inference.
type RuleActivation struct {
	Index    int
	Rule     Rule
	Strength float64
}

// Explanation is a human-readable trace of one inference.
type Explanation struct {
	// Inputs holds the clamped crisp input values in declaration order.
	Inputs []float64
	// Fired lists rules with non-zero strength, strongest first.
	Fired []RuleActivation
	// Output is the defuzzified crisp result.
	Output float64
	// OutputTerm is the output term with the highest membership at Output.
	OutputTerm string
}

// Explain runs one inference and reports which rules fired and how strongly.
// It is intended for debugging, testing and interactive exploration rather
// than hot paths.
func (e *Engine) Explain(vals []float64) (*Explanation, error) {
	if len(vals) != len(e.inputs) {
		return nil, fmt.Errorf("fuzzy: got %d input values, want %d", len(vals), len(e.inputs))
	}
	clamped := make([]float64, len(vals))
	for i, v := range e.inputs {
		clamped[i] = v.Clamp(vals[i])
	}
	agg, err := e.Infer(vals)
	if err != nil {
		return nil, err
	}
	out, err := e.defuzz.Defuzzify(agg, e.resolution)
	if err != nil {
		return nil, err
	}
	ex := &Explanation{
		Inputs:     clamped,
		Output:     out,
		OutputTerm: e.output.HighestTerm(out),
	}
	degrees := make([]float64, e.totalTerms)
	offsets := make([]int, len(e.inputs))
	off := 0
	for i, v := range e.inputs {
		offsets[i] = off
		v.FuzzifyInto(vals[i], degrees[off:off+v.NumTerms()])
		off += v.NumTerms()
	}
	for i, r := range e.rules {
		w := r.weight
		for _, c := range r.clauses {
			w = e.tnorm.Apply(w, degrees[offsets[c.varIdx]+c.termIdx])
			if w == 0 {
				break
			}
		}
		if w > 0 {
			ex.Fired = append(ex.Fired, RuleActivation{Index: i, Rule: e.srcRules[i], Strength: w})
		}
	}
	sort.SliceStable(ex.Fired, func(a, b int) bool { return ex.Fired[a].Strength > ex.Fired[b].Strength })
	return ex, nil
}
