package fuzzy

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

// symmetricAgg builds an aggregated output over a symmetric three-term
// variable on [0, 1] with the given strengths.
func symmetricAgg(t *testing.T, strengths ...float64) *AggregatedOutput {
	t.Helper()
	out := MustVariable("y", 0, 1,
		Term{Name: "lo", MF: MustTriangular(0, 0, 0.5)},
		Term{Name: "mid", MF: MustTriangular(0.5, 0.5, 0.5)},
		Term{Name: "hi", MF: MustTriangular(1, 0.5, 0)},
	)
	if len(strengths) != out.NumTerms() {
		t.Fatalf("need %d strengths", out.NumTerms())
	}
	return &AggregatedOutput{out: out, strengths: strengths, implication: ImplicationClip}
}

func TestCentroidSymmetric(t *testing.T) {
	// Only the middle term fired at full strength: the centroid of a
	// symmetric triangle centred at 0.5 is 0.5.
	agg := symmetricAgg(t, 0, 1, 0)
	got, err := Centroid{}.Defuzzify(agg, 2001)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 0.5, 1e-3) {
		t.Fatalf("centroid = %v, want 0.5", got)
	}
}

func TestCentroidPullsTowardsStrongerTerm(t *testing.T) {
	weakHi, err := Centroid{}.Defuzzify(symmetricAgg(t, 1, 0, 0.2), 2001)
	if err != nil {
		t.Fatal(err)
	}
	strongHi, err := Centroid{}.Defuzzify(symmetricAgg(t, 1, 0, 0.9), 2001)
	if err != nil {
		t.Fatal(err)
	}
	if strongHi <= weakHi {
		t.Fatalf("stronger hi should pull centroid right: weak=%v strong=%v", weakHi, strongHi)
	}
}

func TestCentroidEmpty(t *testing.T) {
	_, err := Centroid{}.Defuzzify(symmetricAgg(t, 0, 0, 0), 101)
	if !errors.Is(err, ErrNoRuleFired) {
		t.Fatalf("err = %v, want ErrNoRuleFired", err)
	}
}

func TestBisectorSymmetric(t *testing.T) {
	agg := symmetricAgg(t, 0, 1, 0)
	got, err := Bisector{}.Defuzzify(agg, 2001)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 0.5, 5e-3) {
		t.Fatalf("bisector = %v, want ~0.5", got)
	}
}

func TestBisectorEmpty(t *testing.T) {
	_, err := Bisector{}.Defuzzify(symmetricAgg(t, 0, 0, 0), 101)
	if !errors.Is(err, ErrNoRuleFired) {
		t.Fatalf("err = %v, want ErrNoRuleFired", err)
	}
}

func TestMeanOfMaxima(t *testing.T) {
	// Clipped middle term at strength 1: maxima form the apex point 0.5.
	got, err := MeanOfMaxima{}.Defuzzify(symmetricAgg(t, 0, 1, 0), 2001)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 0.5, 5e-3) {
		t.Fatalf("MoM = %v, want ~0.5", got)
	}
	// Clipping at 0.5 turns the apex into a plateau [0.25, 0.75]; its mean
	// is still 0.5.
	got, err = MeanOfMaxima{}.Defuzzify(symmetricAgg(t, 0, 0.5, 0), 2001)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 0.5, 5e-3) {
		t.Fatalf("MoM with clipped plateau = %v, want ~0.5", got)
	}
}

func TestMeanOfMaximaEmpty(t *testing.T) {
	_, err := MeanOfMaxima{}.Defuzzify(symmetricAgg(t, 0, 0, 0), 101)
	if !errors.Is(err, ErrNoRuleFired) {
		t.Fatalf("err = %v, want ErrNoRuleFired", err)
	}
}

func TestWeightedAverage(t *testing.T) {
	wa := NewWeightedAverage()
	// lo centroid ~1/6, hi centroid ~5/6 over [0,1]; equal strengths give
	// the midpoint 0.5.
	got, err := wa.Defuzzify(symmetricAgg(t, 1, 0, 1), 20001)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 0.5, 1e-3) {
		t.Fatalf("WA = %v, want 0.5", got)
	}
	// Pure mid at any strength is exactly the mid centroid, 0.5.
	got, err = wa.Defuzzify(symmetricAgg(t, 0, 0.3, 0), 20001)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 0.5, 1e-3) {
		t.Fatalf("WA pure mid = %v, want 0.5", got)
	}
}

func TestWeightedAverageEmpty(t *testing.T) {
	_, err := NewWeightedAverage().Defuzzify(symmetricAgg(t, 0, 0, 0), 101)
	if !errors.Is(err, ErrNoRuleFired) {
		t.Fatalf("err = %v, want ErrNoRuleFired", err)
	}
}

func TestDefuzzifierNames(t *testing.T) {
	tests := []struct {
		d    Defuzzifier
		want string
	}{
		{Centroid{}, "centroid"},
		{Bisector{}, "bisector"},
		{MeanOfMaxima{}, "mean-of-maxima"},
		{NewWeightedAverage(), "weighted-average"},
	}
	for _, tc := range tests {
		if got := tc.d.Name(); got != tc.want {
			t.Errorf("Name() = %q, want %q", got, tc.want)
		}
	}
}

// Property: every defuzzifier returns a value within the output universe
// for arbitrary non-empty strength vectors.
func TestDefuzzifiersWithinUniverseProperty(t *testing.T) {
	defuzzers := []Defuzzifier{Centroid{}, Bisector{}, MeanOfMaxima{}, NewWeightedAverage()}
	prop := func(aRaw, bRaw, cRaw float64) bool {
		a := clampFinite(math.Abs(aRaw), 0, 1)
		b := clampFinite(math.Abs(bRaw), 0, 1)
		c := clampFinite(math.Abs(cRaw), 0, 1)
		if a+b+c == 0 {
			return true
		}
		for _, d := range defuzzers {
			agg := &AggregatedOutput{
				out: MustVariable("y", 0, 1,
					Term{Name: "lo", MF: MustTriangular(0, 0, 0.5)},
					Term{Name: "mid", MF: MustTriangular(0.5, 0.5, 0.5)},
					Term{Name: "hi", MF: MustTriangular(1, 0.5, 0)},
				),
				strengths:   []float64{a, b, c},
				implication: ImplicationClip,
			}
			got, err := d.Defuzzify(agg, 501)
			if err != nil || got < 0 || got > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: centroid and weighted-average agree on which side of the
// midpoint the answer falls when only one outer term dominates.
func TestDefuzzifierSideAgreementProperty(t *testing.T) {
	wa := NewWeightedAverage()
	prop := func(raw float64) bool {
		s := clampFinite(math.Abs(raw), 0.1, 1)
		aggLo := symmetricAggQuick(s, 0, 0)
		aggHi := symmetricAggQuick(0, 0, s)
		cLo, err1 := Centroid{}.Defuzzify(aggLo, 501)
		cHi, err2 := Centroid{}.Defuzzify(aggHi, 501)
		wLo, err3 := wa.Defuzzify(aggLo, 501)
		wHi, err4 := wa.Defuzzify(aggHi, 501)
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return false
		}
		return cLo < 0.5 && wLo < 0.5 && cHi > 0.5 && wHi > 0.5
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func symmetricAggQuick(a, b, c float64) *AggregatedOutput {
	return &AggregatedOutput{
		out: MustVariable("y", 0, 1,
			Term{Name: "lo", MF: MustTriangular(0, 0, 0.5)},
			Term{Name: "mid", MF: MustTriangular(0.5, 0.5, 0.5)},
			Term{Name: "hi", MF: MustTriangular(1, 0.5, 0)},
		),
		strengths:   []float64{a, b, c},
		implication: ImplicationClip,
	}
}

func TestImplicationScaleVersusClip(t *testing.T) {
	// Scale implication preserves shape; clip flattens. For a triangle
	// clipped/scaled at 0.5 the centroid is identical by symmetry, but the
	// aggregated membership at the apex differs.
	aggClip := symmetricAggQuick(0, 0.5, 0)
	aggScale := &AggregatedOutput{out: aggClip.out, strengths: aggClip.strengths, implication: ImplicationScale}
	if got := aggClip.At(0.5); !almostEqual(got, 0.5, 1e-12) {
		t.Fatalf("clip apex = %v, want 0.5", got)
	}
	if got := aggScale.At(0.5); !almostEqual(got, 0.5, 1e-12) {
		t.Fatalf("scale apex = %v, want 0.5", got)
	}
	// Half-way up the left slope (y = 0.375, µ_mid = 0.75): clip keeps
	// min(0.5, 0.75) = 0.5, scale gives 0.5*0.75 = 0.375.
	if got := aggClip.At(0.375); !almostEqual(got, 0.5, 1e-12) {
		t.Fatalf("clip slope = %v, want 0.5", got)
	}
	if got := aggScale.At(0.375); !almostEqual(got, 0.375, 1e-12) {
		t.Fatalf("scale slope = %v, want 0.375", got)
	}
}
