package fuzzy

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
)

// SurfaceFormatVersion is the on-disk format version written by
// EncodeSurface. Bump it whenever the byte layout below changes; a
// decoder only accepts blobs of exactly this version, so every consumer
// of a persisted surface recompiles after a format change instead of
// misreading old bytes.
const SurfaceFormatVersion = 1

// surfaceMagic identifies a persisted surface blob.
var surfaceMagic = [4]byte{'F', 'S', 'R', 'F'}

// Persistence sentinel errors. Callers that implement a load-or-compile
// cache treat both as a cache miss: the entry is discarded and the
// surface recompiled from the exact engine.
var (
	// ErrSurfaceStale reports that a blob was written for a different
	// configuration (config hash mismatch) or an older format version.
	ErrSurfaceStale = errors.New("fuzzy: persisted surface is stale")
	// ErrSurfaceCorrupt reports structural damage: bad magic, truncated
	// payload or checksum mismatch.
	ErrSurfaceCorrupt = errors.New("fuzzy: persisted surface is corrupt")
)

// maxEncodedAxisNodes bounds the per-axis node count accepted by the
// decoder, guarding the allocation against corrupt length fields.
const maxEncodedAxisNodes = 1 << 20

// maxEncodedTotalNodes bounds the node product across all axes (the
// value-table length). The checksum is not a secret, so a corrupt or
// crafted blob can carry a valid one; without this cap the per-axis
// products could overflow int and turn the downstream length checks
// into slice-bounds panics. 1<<24 nodes is a 128 MB table, far above
// any real surface (the default FACS tables are ~300k nodes).
const maxEncodedTotalNodes = 1 << 24

// EncodeSurface writes s to w in the versioned binary surface format.
//
// configHash is an opaque caller-supplied fingerprint of everything the
// surface's content depends on — engine parameters, grid sizes, pinned
// nodes, error-map settings — and is validated by DecodeSurface, so a
// cache can detect that a persisted surface no longer matches the
// configuration it would be used for. The blob additionally carries an
// FNV-64a checksum over the entire payload, so truncation or bit rot is
// detected independently of the semantic hash.
//
// Layout (all integers little-endian):
//
//	magic "FSRF" | version u32 | configHash u64 | name | nAxes u32
//	per axis: name | nNodes u32 | nodes []f64
//	values []f64 (length implied by the axis product)
//	hasErrMap u8 | errs []f64 (cell product, only when hasErrMap=1)
//	checksum u64 (FNV-64a of every preceding byte)
//
// Strings are a u32 length plus raw bytes. Strides are not stored; the
// decoder rebuilds them from the axis shape exactly as NewSurface does.
func EncodeSurface(w io.Writer, s *Surface, configHash uint64) error {
	if s == nil {
		return fmt.Errorf("fuzzy: cannot encode a nil surface")
	}
	h := fnv.New64a()
	mw := io.MultiWriter(w, h)

	if _, err := mw.Write(surfaceMagic[:]); err != nil {
		return err
	}
	if err := writeU32(mw, SurfaceFormatVersion); err != nil {
		return err
	}
	if err := writeU64(mw, configHash); err != nil {
		return err
	}
	if err := writeString(mw, s.name); err != nil {
		return err
	}
	if err := writeU32(mw, uint32(len(s.axes))); err != nil {
		return err
	}
	for _, ax := range s.axes {
		if err := writeString(mw, ax.Name); err != nil {
			return err
		}
		if err := writeU32(mw, uint32(len(ax.nodes))); err != nil {
			return err
		}
		if err := writeFloats(mw, ax.nodes); err != nil {
			return err
		}
	}
	if err := writeFloats(mw, s.values); err != nil {
		return err
	}
	hasErr := byte(0)
	if s.errs != nil {
		hasErr = 1
	}
	if _, err := mw.Write([]byte{hasErr}); err != nil {
		return err
	}
	if s.errs != nil {
		if err := writeFloats(mw, s.errs); err != nil {
			return err
		}
	}
	// The checksum is written to w only: it covers everything before it.
	return writeU64(w, h.Sum64())
}

// DecodeSurface reads a surface previously written by EncodeSurface and
// validates it: magic and checksum guard against corruption
// (ErrSurfaceCorrupt), the format version and the caller's expected
// configHash guard against staleness (ErrSurfaceStale). The rebuilt
// surface answers every query identically to the encoded one.
func DecodeSurface(r io.Reader, wantConfigHash uint64) (*Surface, error) {
	blob, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(blob) < len(surfaceMagic)+4+8+8 {
		return nil, fmt.Errorf("%w: %d-byte blob is too short", ErrSurfaceCorrupt, len(blob))
	}
	payload, sum := blob[:len(blob)-8], binary.LittleEndian.Uint64(blob[len(blob)-8:])
	h := fnv.New64a()
	h.Write(payload)
	if h.Sum64() != sum {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrSurfaceCorrupt)
	}
	d := &surfaceDecoder{buf: payload}
	var magic [4]byte
	d.bytes(magic[:])
	if magic != surfaceMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrSurfaceCorrupt, magic[:])
	}
	if v := d.u32(); v != SurfaceFormatVersion {
		return nil, fmt.Errorf("%w: format version %d, want %d", ErrSurfaceStale, v, SurfaceFormatVersion)
	}
	if got := d.u64(); got != wantConfigHash {
		return nil, fmt.Errorf("%w: config hash %#x, want %#x", ErrSurfaceStale, got, wantConfigHash)
	}
	s := &Surface{name: d.str()}
	nAxes := int(d.u32())
	if d.err == nil && (nAxes < 1 || nAxes > maxSurfaceDims) {
		return nil, fmt.Errorf("%w: %d axes", ErrSurfaceCorrupt, nAxes)
	}
	if d.err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSurfaceCorrupt, d.err)
	}
	s.axes = make([]SurfaceAxis, nAxes)
	s.strides = make([]int, nAxes)
	total, cells := 1, 1
	for i := range s.axes {
		name := d.str()
		n := int(d.u32())
		if d.err == nil && (n < 2 || n > maxEncodedAxisNodes) {
			return nil, fmt.Errorf("%w: axis %q has %d nodes", ErrSurfaceCorrupt, name, n)
		}
		if d.err != nil {
			return nil, fmt.Errorf("%w: %v", ErrSurfaceCorrupt, d.err)
		}
		nodes := d.floats(n)
		for j := 1; j < len(nodes); j++ {
			if !(nodes[j] > nodes[j-1]) {
				return nil, fmt.Errorf("%w: axis %q nodes are not strictly increasing", ErrSurfaceCorrupt, name)
			}
		}
		s.axes[i] = SurfaceAxis{Name: name, nodes: nodes}
		// Guard the products before multiplying: n >= 2 here, so the
		// divisions are safe and overflow is impossible.
		if total > maxEncodedTotalNodes/n || cells > maxEncodedTotalNodes/(n-1) {
			return nil, fmt.Errorf("%w: declared grid exceeds %d nodes", ErrSurfaceCorrupt, maxEncodedTotalNodes)
		}
		total *= n
		cells *= n - 1
	}
	// Row-major layout, identical to NewSurface.
	stride := 1
	for i := nAxes - 1; i >= 0; i-- {
		s.strides[i] = stride
		stride *= s.axes[i].N()
	}
	s.values = d.floats(total)
	hasErr := d.byte()
	if hasErr == 1 {
		s.cellStrides = make([]int, nAxes)
		stride = 1
		for i := nAxes - 1; i >= 0; i-- {
			s.cellStrides[i] = stride
			stride *= s.axes[i].N() - 1
		}
		s.errs = d.floats(cells)
	} else if d.err == nil && hasErr != 0 {
		return nil, fmt.Errorf("%w: bad error-map flag %d", ErrSurfaceCorrupt, hasErr)
	}
	if d.err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSurfaceCorrupt, d.err)
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrSurfaceCorrupt, len(d.buf))
	}
	return s, nil
}

// surfaceDecoder is a cursor over the checksum-validated payload. The
// first short read latches err; subsequent reads return zero values so
// callers can check d.err at natural points instead of after every read.
type surfaceDecoder struct {
	buf []byte
	err error
}

func (d *surfaceDecoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.buf) < n {
		d.err = fmt.Errorf("truncated payload: need %d bytes, have %d", n, len(d.buf))
		return nil
	}
	out := d.buf[:n]
	d.buf = d.buf[n:]
	return out
}

func (d *surfaceDecoder) bytes(dst []byte) {
	if b := d.take(len(dst)); b != nil {
		copy(dst, b)
	}
}

func (d *surfaceDecoder) byte() byte {
	if b := d.take(1); b != nil {
		return b[0]
	}
	return 0
}

func (d *surfaceDecoder) u32() uint32 {
	if b := d.take(4); b != nil {
		return binary.LittleEndian.Uint32(b)
	}
	return 0
}

func (d *surfaceDecoder) u64() uint64 {
	if b := d.take(8); b != nil {
		return binary.LittleEndian.Uint64(b)
	}
	return 0
}

func (d *surfaceDecoder) str() string {
	n := int(d.u32())
	if d.err == nil && n > len(d.buf) {
		d.err = fmt.Errorf("truncated string: %d bytes declared, %d left", n, len(d.buf))
		return ""
	}
	return string(d.take(n))
}

func (d *surfaceDecoder) floats(n int) []float64 {
	b := d.take(8 * n)
	if b == nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

func writeU32(w io.Writer, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func writeU64(w io.Writer, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func writeString(w io.Writer, s string) error {
	if err := writeU32(w, uint32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func writeFloats(w io.Writer, vals []float64) error {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	_, err := w.Write(buf)
	return err
}
