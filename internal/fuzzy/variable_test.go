package fuzzy

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func speedVariable(t *testing.T) *Variable {
	t.Helper()
	v, err := NewVariable("S", 0, 120,
		Term{Name: "Sl", MF: MustTrapezoidal(0, 15, 0, 15)},
		Term{Name: "M", MF: MustTriangular(30, 15, 30)},
		Term{Name: "Fa", MF: MustTrapezoidal(60, 120, 30, 0)},
	)
	if err != nil {
		t.Fatalf("NewVariable: %v", err)
	}
	return v
}

func TestNewVariableValidation(t *testing.T) {
	valid := Term{Name: "A", MF: MustTriangular(0, 1, 1)}
	tests := []struct {
		name    string
		varName string
		min     float64
		max     float64
		terms   []Term
		wantErr string
	}{
		{"ok", "x", 0, 1, []Term{valid}, ""},
		{"empty name", "  ", 0, 1, []Term{valid}, "name must not be empty"},
		{"empty universe", "x", 1, 1, []Term{valid}, "is empty"},
		{"inverted universe", "x", 2, 1, []Term{valid}, "is empty"},
		{"NaN bound", "x", math.NaN(), 1, []Term{valid}, "must be finite"},
		{"infinite bound", "x", 0, math.Inf(1), []Term{valid}, "must be finite"},
		{"no terms", "x", 0, 1, nil, "at least one term"},
		{"empty term name", "x", 0, 1, []Term{{Name: "", MF: valid.MF}}, "empty name"},
		{"nil MF", "x", 0, 1, []Term{{Name: "A"}}, "nil membership function"},
		{"duplicate term", "x", 0, 1, []Term{valid, valid}, "duplicate term"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewVariable(tc.varName, tc.min, tc.max, tc.terms...)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func TestVariableClamp(t *testing.T) {
	v := speedVariable(t)
	tests := []struct {
		in, want float64
	}{
		{-10, 0}, {0, 0}, {60, 60}, {120, 120}, {500, 120}, {math.NaN(), 0},
	}
	for _, tc := range tests {
		if got := v.Clamp(tc.in); got != tc.want {
			t.Errorf("Clamp(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestVariableFuzzify(t *testing.T) {
	v := speedVariable(t)
	tests := []struct {
		name string
		x    float64
		want []float64
	}{
		{"slow plateau", 4, []float64{1, 0, 0}},
		{"crossover Sl/M", 22.5, []float64{0.5, 0.5, 0}},
		{"pure middle", 30, []float64{0, 1, 0}},
		{"crossover M/Fa", 45, []float64{0, 0.5, 0.5}},
		{"fast plateau", 100, []float64{0, 0, 1}},
		{"clamped above", 500, []float64{0, 0, 1}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := v.Fuzzify(tc.x)
			if len(got) != len(tc.want) {
				t.Fatalf("Fuzzify(%v) len = %d, want %d", tc.x, len(got), len(tc.want))
			}
			for i := range got {
				if !almostEqual(got[i], tc.want[i], 1e-12) {
					t.Fatalf("Fuzzify(%v)[%d] = %v, want %v", tc.x, i, got[i], tc.want[i])
				}
			}
		})
	}
}

func TestVariableLookups(t *testing.T) {
	v := speedVariable(t)
	if v.Name() != "S" {
		t.Fatalf("Name = %q, want S", v.Name())
	}
	if min, max := v.Universe(); min != 0 || max != 120 {
		t.Fatalf("Universe = [%v,%v], want [0,120]", min, max)
	}
	if v.NumTerms() != 3 {
		t.Fatalf("NumTerms = %d, want 3", v.NumTerms())
	}
	if i, ok := v.TermIndex("M"); !ok || i != 1 {
		t.Fatalf("TermIndex(M) = %d,%v, want 1,true", i, ok)
	}
	if _, ok := v.TermIndex("nope"); ok {
		t.Fatal("TermIndex(nope) should be absent")
	}
	if term, ok := v.Term("Fa"); !ok || term.Name != "Fa" {
		t.Fatalf("Term(Fa) = %+v,%v", term, ok)
	}
	if _, err := v.Membership("nope", 0); err == nil {
		t.Fatal("Membership(nope) should error")
	}
	if m, err := v.Membership("M", 30); err != nil || m != 1 {
		t.Fatalf("Membership(M, 30) = %v, %v", m, err)
	}
	// Terms() must return a defensive copy.
	terms := v.Terms()
	terms[0].Name = "mutated"
	if v.TermAt(0).Name != "Sl" {
		t.Fatal("Terms() exposed internal state")
	}
}

func TestCheckCoverage(t *testing.T) {
	v := speedVariable(t)
	if err := v.CheckCoverage(1001); err != nil {
		t.Fatalf("paper speed partition should cover [0,120]: %v", err)
	}
	holey, err := NewVariable("h", 0, 10,
		Term{Name: "lo", MF: MustTriangular(0, 0, 2)},
		Term{Name: "hi", MF: MustTriangular(10, 2, 0)},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := holey.CheckCoverage(101); err == nil {
		t.Fatal("expected coverage hole between 2 and 8")
	}
}

func TestHighestTerm(t *testing.T) {
	v := speedVariable(t)
	tests := []struct {
		x    float64
		want string
	}{
		{0, "Sl"}, {10, "Sl"}, {30, "M"}, {100, "Fa"}, {1000, "Fa"},
		{22.5, "Sl"}, // tie breaks towards earliest declared
	}
	for _, tc := range tests {
		if got := v.HighestTerm(tc.x); got != tc.want {
			t.Errorf("HighestTerm(%v) = %q, want %q", tc.x, got, tc.want)
		}
	}
}

func TestTermCentroid(t *testing.T) {
	v := speedVariable(t)
	c, err := v.TermCentroid("M", 100001)
	if err != nil {
		t.Fatal(err)
	}
	// Centroid of triangle with feet 15, 60 and apex 30 is (15+30+60)/3 = 35.
	if !almostEqual(c, 35, 0.05) {
		t.Fatalf("TermCentroid(M) = %v, want ~35", c)
	}
	if _, err := v.TermCentroid("nope", 10); err == nil {
		t.Fatal("TermCentroid(nope) should error")
	}
}

func TestVariableString(t *testing.T) {
	v := speedVariable(t)
	if got, want := v.String(), "S[0,120]{Sl,M,Fa}"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

// Property: fuzzified degrees always lie in [0,1] and at least one term is
// positive everywhere in the universe (the partition covers it).
func TestFuzzifyBoundsProperty(t *testing.T) {
	v := speedVariable(t)
	prop := func(raw float64) bool {
		x := clampFinite(raw, -1e6, 1e6)
		degrees := v.Fuzzify(x)
		var any bool
		for _, d := range degrees {
			if d < 0 || d > 1 {
				return false
			}
			if d > 0 {
				any = true
			}
		}
		return any
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
