package fuzzy

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

// surfTestEngine builds a small two-input Mamdani controller used by
// the surface tests: x in [0, 10], y in [0, 1], output z in [0, 1].
func surfTestEngine(t *testing.T) *Engine {
	t.Helper()
	x := MustVariable("x", 0, 10,
		Term{Name: "lo", MF: MustTriangular(0, 0, 6)},
		Term{Name: "hi", MF: MustTriangular(10, 6, 0)},
	)
	y := MustVariable("y", 0, 1,
		Term{Name: "off", MF: MustTriangular(0, 0, 1)},
		Term{Name: "on", MF: MustTriangular(1, 1, 0)},
	)
	z := MustVariable("z", 0, 1,
		Term{Name: "small", MF: MustTriangular(0, 0, 0.6)},
		Term{Name: "large", MF: MustTriangular(1, 0.6, 0)},
	)
	rules := []Rule{
		{If: []Clause{{Var: "x", Term: "lo"}, {Var: "y", Term: "off"}}, Then: Clause{Var: "z", Term: "small"}},
		{If: []Clause{{Var: "x", Term: "lo"}, {Var: "y", Term: "on"}}, Then: Clause{Var: "z", Term: "large"}},
		{If: []Clause{{Var: "x", Term: "hi"}, {Var: "y", Term: "off"}}, Then: Clause{Var: "z", Term: "large"}},
		{If: []Clause{{Var: "x", Term: "hi"}, {Var: "y", Term: "on"}}, Then: Clause{Var: "z", Term: "small"}},
	}
	return MustEngine([]*Variable{x, y}, z, rules)
}

func TestSurfaceExactAtNodes(t *testing.T) {
	e := surfTestEngine(t)
	s, err := NewSurface(e, WithSurfaceGrid(9, 7))
	if err != nil {
		t.Fatal(err)
	}
	axes := s.Axes()
	for _, xv := range axes[0].Nodes() {
		for _, yv := range axes[1].Nodes() {
			want, err := e.EvaluateVec(xv, yv)
			if err != nil {
				t.Fatal(err)
			}
			got, err := s.EvaluateVec(xv, yv)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("surface(%v, %v) = %v, engine = %v", xv, yv, got, want)
			}
		}
	}
}

func TestSurfaceInterpolatesBetweenNodes(t *testing.T) {
	e := surfTestEngine(t)
	s, err := NewSurface(e, WithSurfaceGrid(65))
	if err != nil {
		t.Fatal(err)
	}
	var maxErr float64
	for i := 0; i <= 50; i++ {
		for j := 0; j <= 50; j++ {
			xv := 10 * (float64(i) + 0.37) / 51
			yv := (float64(j) + 0.61) / 51
			want, err := e.EvaluateVec(xv, yv)
			if err != nil {
				t.Fatal(err)
			}
			got, err := s.EvaluateVec(xv, yv)
			if err != nil {
				t.Fatal(err)
			}
			if d := math.Abs(got - want); d > maxErr {
				maxErr = d
			}
		}
	}
	if maxErr > 0.02 {
		t.Fatalf("off-node interpolation error %v exceeds 0.02", maxErr)
	}
}

func TestSurfaceClampsLikeEngine(t *testing.T) {
	e := surfTestEngine(t)
	s, err := NewSurface(e, WithSurfaceGrid(17))
	if err != nil {
		t.Fatal(err)
	}
	cases := [][2]float64{
		{-3, 0.5}, {42, 0.5}, {5, -1}, {5, 9}, {math.NaN(), 0.5}, {5, math.NaN()},
	}
	for _, c := range cases {
		want, err := e.EvaluateVec(c[0], c[1])
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.EvaluateVec(c[0], c[1])
		if err != nil {
			t.Fatal(err)
		}
		// Clamped inputs land on universe-edge nodes, where the surface
		// is exact.
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("surface(%v, %v) = %v, engine = %v", c[0], c[1], got, want)
		}
	}
}

func TestSurfaceWorkerInvariance(t *testing.T) {
	e := surfTestEngine(t)
	s1, err := NewSurface(e, WithSurfaceGrid(21), WithSurfaceWorkers(1), WithSurfaceErrorMap(2))
	if err != nil {
		t.Fatal(err)
	}
	s7, err := NewSurface(e, WithSurfaceGrid(21), WithSurfaceWorkers(7), WithSurfaceErrorMap(2))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s1.values, s7.values) {
		t.Fatal("value tables differ between 1 and 7 compile workers")
	}
	if !reflect.DeepEqual(s1.errs, s7.errs) {
		t.Fatal("error maps differ between 1 and 7 compile workers")
	}
}

func TestSurfacePinnedNodes(t *testing.T) {
	e := surfTestEngine(t)
	s, err := NewSurface(e, WithSurfaceGrid(5), WithSurfaceNodes("x", 3.3, 7.7, -4, 40))
	if err != nil {
		t.Fatal(err)
	}
	nodes := s.Axes()[0].Nodes()
	for _, pin := range []float64{3.3, 7.7} {
		found := false
		for _, n := range nodes {
			if n == pin {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("pinned node %v missing from axis nodes %v", pin, nodes)
		}
		want, err := e.EvaluateVec(pin, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		// y = 0.5 is a grid node of the 5-point uniform subdivision, so
		// the query sits on a full grid node and must be exact.
		got, err := s.EvaluateVec(pin, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("surface at pinned %v = %v, engine = %v", pin, got, want)
		}
	}
	// Out-of-universe pins are dropped.
	if nodes[0] != 0 || nodes[len(nodes)-1] != 10 {
		t.Fatalf("universe endpoints clobbered: %v", nodes)
	}
}

func TestSurfaceErrorMap(t *testing.T) {
	e := surfTestEngine(t)
	plain, err := NewSurface(e, WithSurfaceGrid(9))
	if err != nil {
		t.Fatal(err)
	}
	if plain.HasErrorMap() {
		t.Fatal("plain surface should not carry an error map")
	}
	_, bound, err := plain.EvaluateVecWithBound(4.2, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if bound != 0 {
		t.Fatalf("bound without error map = %v, want 0", bound)
	}

	mapped, err := NewSurface(e, WithSurfaceGrid(9), WithSurfaceErrorMap(1))
	if err != nil {
		t.Fatal(err)
	}
	if !mapped.HasErrorMap() {
		t.Fatal("error map missing")
	}
	// At every cell centre the bound must cover the actual error by
	// construction (safety 1 makes it exactly the sampled error).
	axes := mapped.Axes()
	xs, ys := axes[0].Nodes(), axes[1].Nodes()
	for i := 0; i+1 < len(xs); i++ {
		for j := 0; j+1 < len(ys); j++ {
			cx, cy := (xs[i]+xs[i+1])/2, (ys[j]+ys[j+1])/2
			want, err := e.EvaluateVec(cx, cy)
			if err != nil {
				t.Fatal(err)
			}
			got, bound, err := mapped.EvaluateVecWithBound(cx, cy)
			if err != nil {
				t.Fatal(err)
			}
			if diff := math.Abs(got - want); diff > bound+1e-12 {
				t.Fatalf("centre (%v, %v): error %v exceeds bound %v", cx, cy, diff, bound)
			}
		}
	}
}

func TestSurfaceAxisSlopeBound(t *testing.T) {
	e := surfTestEngine(t)
	s, err := NewSurface(e, WithSurfaceGrid(9))
	if err != nil {
		t.Fatal(err)
	}
	q := []float64{4.2, 0.3}
	for axis := 0; axis < 2; axis++ {
		got, err := s.AxisSlopeBound(axis, q...)
		if err != nil {
			t.Fatal(err)
		}
		// Brute-force the same bound from node evaluations over the cell
		// edges parallel to the axis.
		axes := s.Axes()
		var lo [2]int
		for i := range axes {
			nodes := axes[i].Nodes()
			j := 0
			for j+2 < len(nodes) && nodes[j+1] <= q[i] {
				j++
			}
			lo[i] = j
		}
		var want float64
		other := 1 - axis
		otherNodes := axes[other].Nodes()
		axisNodes := axes[axis].Nodes()
		width := axisNodes[lo[axis]+1] - axisNodes[lo[axis]]
		for _, ov := range []float64{otherNodes[lo[other]], otherNodes[lo[other]+1]} {
			var pLo, pHi [2]float64
			pLo[axis], pHi[axis] = axisNodes[lo[axis]], axisNodes[lo[axis]+1]
			pLo[other], pHi[other] = ov, ov
			vLo, err := s.EvaluateVec(pLo[0], pLo[1])
			if err != nil {
				t.Fatal(err)
			}
			vHi, err := s.EvaluateVec(pHi[0], pHi[1])
			if err != nil {
				t.Fatal(err)
			}
			if slope := math.Abs(vHi-vLo) / width; slope > want {
				want = slope
			}
		}
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("axis %d slope bound = %v, want %v", axis, got, want)
		}
	}
	if _, err := s.AxisSlopeBound(5, q...); err == nil {
		t.Fatal("out-of-range axis should error")
	}
	if _, err := s.AxisSlopeBound(0, 1); err == nil {
		t.Fatal("wrong arity should error")
	}
}

// TestSurfaceAxisRangeBounds: widening the interval must dominate the
// per-cell bounds of every cell it touches — this is what keeps a
// composed guard band sound when an upstream error can push the true
// input into a neighbouring cell.
func TestSurfaceAxisRangeBounds(t *testing.T) {
	e := surfTestEngine(t)
	s, err := NewSurface(e, WithSurfaceGrid(9), WithSurfaceErrorMap(2))
	if err != nil {
		t.Fatal(err)
	}
	q := []float64{4.2, 0.3}
	const spread = 2.5 // spans several x cells on a 9-node grid over [0, 10]
	slope, bound, err := s.AxisRangeBounds(0, []float64{q[0] - spread, q[0] + spread}, q...)
	if err != nil {
		t.Fatal(err)
	}
	// Every cell inside the interval is dominated.
	for _, x := range []float64{q[0] - spread, q[0] - 1, q[0], q[0] + 1, q[0] + spread} {
		cellSlope, err := s.AxisSlopeBound(0, x, q[1])
		if err != nil {
			t.Fatal(err)
		}
		if cellSlope > slope+1e-12 {
			t.Fatalf("range slope %v below cell slope %v at x=%v", slope, cellSlope, x)
		}
		_, cellBound, err := s.EvaluateVecWithBound(x, q[1])
		if err != nil {
			t.Fatal(err)
		}
		if cellBound > bound+1e-12 {
			t.Fatalf("range error bound %v below cell bound %v at x=%v", bound, cellBound, x)
		}
	}
	// Degenerate interval reduces to the single-cell bound.
	only, _, err := s.AxisRangeBounds(0, nil, q...)
	if err != nil {
		t.Fatal(err)
	}
	single, err := s.AxisSlopeBound(0, q...)
	if err != nil {
		t.Fatal(err)
	}
	if only != single {
		t.Fatalf("degenerate range slope %v != single-cell slope %v", only, single)
	}
	if _, _, err := s.AxisRangeBounds(3, nil, q...); err == nil {
		t.Fatal("out-of-range axis should error")
	}
}

func TestSurfaceEvaluateMap(t *testing.T) {
	e := surfTestEngine(t)
	s, err := NewSurface(e, WithSurfaceGrid(17))
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.EvaluateVec(3.7, 0.42)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Evaluate(map[string]float64{"x": 3.7, "y": 0.42})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("Evaluate map = %v, EvaluateVec = %v", got, want)
	}
	if _, err := s.Evaluate(map[string]float64{"x": 1}); err == nil {
		t.Fatal("missing input should error")
	}
	if _, err := s.Evaluate(map[string]float64{"x": 1, "y": 2, "zz": 3}); err == nil {
		t.Fatal("unknown input should error")
	}
	if _, err := s.EvaluateVec(1); err == nil {
		t.Fatal("wrong arity should error")
	}
	if _, _, err := s.EvaluateVecWithBound(1); err == nil {
		t.Fatal("wrong arity should error")
	}
}

func TestSurfaceConstructionErrors(t *testing.T) {
	e := surfTestEngine(t)
	if _, err := NewSurface(nil); err == nil {
		t.Fatal("nil engine should error")
	}
	if _, err := NewSurface(e, WithSurfaceGrid(9, 9, 9)); err == nil {
		t.Fatal("grid arity mismatch should error")
	}
	if _, err := NewSurface(e, WithSurfaceGrid(1)); err == nil {
		t.Fatal("grid size < 2 should error")
	}
	if _, err := NewSurface(e, WithSurfaceNodes("nope", 1)); err == nil {
		t.Fatal("unknown pinned axis should error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustSurface should panic on error")
		}
	}()
	MustSurface(e, WithSurfaceGrid(1))
}

func TestSurfaceAccessors(t *testing.T) {
	e := surfTestEngine(t)
	s, err := NewSurface(e, WithSurfaceGrid(9, 5))
	if err != nil {
		t.Fatal(err)
	}
	if s.OutputName() != "z" {
		t.Fatalf("OutputName = %q", s.OutputName())
	}
	axes := s.Axes()
	if len(axes) != 2 || axes[0].Name != "x" || axes[1].Name != "y" {
		t.Fatalf("Axes = %+v", axes)
	}
	if axes[0].Min() != 0 || axes[0].Max() != 10 {
		t.Fatalf("axis 0 universe [%v, %v]", axes[0].Min(), axes[0].Max())
	}
	if got := axes[0].N() * axes[1].N(); got != s.NumNodes() {
		t.Fatalf("NumNodes = %d, axes product = %d", s.NumNodes(), got)
	}
	if !strings.HasPrefix(s.String(), "z[") {
		t.Fatalf("String = %q", s.String())
	}
	// Axes returns copies: mutating them must not corrupt the surface.
	axes[0].nodes[0] = 99
	if s.axes[0].nodes[0] != 0 {
		t.Fatal("Axes leaked internal node storage")
	}
}

func TestSurfaceTooManyInputs(t *testing.T) {
	vars := make([]*Variable, maxSurfaceDims+1)
	for i := range vars {
		vars[i] = MustVariable(strings.Repeat("v", i+1), 0, 1,
			Term{Name: "all", MF: MustTrapezoidal(math.Inf(-1), math.Inf(1), 0, 0)},
		)
	}
	out := MustVariable("out", 0, 1,
		Term{Name: "mid", MF: MustTrapezoidal(0, 1, 0, 0)},
	)
	e := MustEngine(vars, out, []Rule{
		{If: []Clause{{Var: "v", Term: "all"}}, Then: Clause{Var: "out", Term: "mid"}},
	})
	if _, err := NewSurface(e); err == nil {
		t.Fatal("more than maxSurfaceDims inputs should error")
	}
}
