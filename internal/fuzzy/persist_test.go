package fuzzy

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"reflect"
	"testing"
)

// encodeRoundTrip encodes s and decodes it back, failing the test on
// either error.
func encodeRoundTrip(t *testing.T, s *Surface, hash uint64) *Surface {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeSurface(&buf, s, hash); err != nil {
		t.Fatal(err)
	}
	out, err := DecodeSurface(&buf, hash)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSurfacePersistRoundTrip(t *testing.T) {
	e := surfTestEngine(t)
	s, err := NewSurface(e, WithSurfaceGrid(9, 7), WithSurfaceErrorMap(2))
	if err != nil {
		t.Fatal(err)
	}
	got := encodeRoundTrip(t, s, 0xfeedc0de)

	if got.String() != s.String() {
		t.Fatalf("decoded surface is %s, want %s", got, s)
	}
	if !got.HasErrorMap() {
		t.Fatal("decoded surface lost its error map")
	}
	if !reflect.DeepEqual(got.Axes(), s.Axes()) {
		t.Fatal("decoded axes differ")
	}
	// The decoded surface must answer identically everywhere: on the
	// grid nodes (the golden lattice) and at off-node query points,
	// including the per-cell error bounds.
	axes := s.Axes()
	for _, xv := range axes[0].Nodes() {
		for _, yv := range axes[1].Nodes() {
			want, _, err := s.EvaluateVecWithBound(xv, yv)
			if err != nil {
				t.Fatal(err)
			}
			have, _, err := got.EvaluateVecWithBound(xv, yv)
			if err != nil {
				t.Fatal(err)
			}
			if have != want {
				t.Fatalf("decoded surface(%v, %v) = %v, want %v", xv, yv, have, want)
			}
		}
	}
	for i := 0; i < 200; i++ {
		xv := 10 * (float64(i) + 0.31) / 201
		yv := (float64(i%17) + 0.77) / 18
		wantV, wantB, err := s.EvaluateVecWithBound(xv, yv)
		if err != nil {
			t.Fatal(err)
		}
		haveV, haveB, err := got.EvaluateVecWithBound(xv, yv)
		if err != nil {
			t.Fatal(err)
		}
		if haveV != wantV || haveB != wantB {
			t.Fatalf("decoded surface(%v, %v) = (%v, %v), want (%v, %v)", xv, yv, haveV, haveB, wantV, wantB)
		}
	}
}

func TestSurfacePersistWithoutErrorMap(t *testing.T) {
	e := surfTestEngine(t)
	s, err := NewSurface(e, WithSurfaceGrid(5))
	if err != nil {
		t.Fatal(err)
	}
	got := encodeRoundTrip(t, s, 7)
	if got.HasErrorMap() {
		t.Fatal("decoded surface invented an error map")
	}
	v1, err := s.EvaluateVec(3.3, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := got.EvaluateVec(3.3, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Fatalf("decoded surface answers %v, want %v", v2, v1)
	}
}

func TestSurfacePersistStaleHash(t *testing.T) {
	e := surfTestEngine(t)
	s, err := NewSurface(e, WithSurfaceGrid(5))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeSurface(&buf, s, 111); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeSurface(bytes.NewReader(buf.Bytes()), 222); !errors.Is(err, ErrSurfaceStale) {
		t.Fatalf("decode with wrong config hash: got %v, want ErrSurfaceStale", err)
	}
}

func TestSurfacePersistRejectsCorruption(t *testing.T) {
	e := surfTestEngine(t)
	s, err := NewSurface(e, WithSurfaceGrid(5), WithSurfaceErrorMap(1))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeSurface(&buf, s, 42); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()

	t.Run("truncated", func(t *testing.T) {
		if _, err := DecodeSurface(bytes.NewReader(blob[:len(blob)/2]), 42); !errors.Is(err, ErrSurfaceCorrupt) {
			t.Fatalf("got %v, want ErrSurfaceCorrupt", err)
		}
	})
	t.Run("bitflip", func(t *testing.T) {
		bad := append([]byte(nil), blob...)
		bad[len(bad)/2] ^= 0x40
		if _, err := DecodeSurface(bytes.NewReader(bad), 42); !errors.Is(err, ErrSurfaceCorrupt) {
			t.Fatalf("got %v, want ErrSurfaceCorrupt", err)
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), blob...)
		bad[0] = 'X'
		// Re-fix the checksum so only the magic is wrong.
		fixChecksum(bad)
		if _, err := DecodeSurface(bytes.NewReader(bad), 42); !errors.Is(err, ErrSurfaceCorrupt) {
			t.Fatalf("got %v, want ErrSurfaceCorrupt", err)
		}
	})
	t.Run("future version", func(t *testing.T) {
		bad := append([]byte(nil), blob...)
		binary.LittleEndian.PutUint32(bad[4:], SurfaceFormatVersion+1)
		fixChecksum(bad)
		if _, err := DecodeSurface(bytes.NewReader(bad), 42); !errors.Is(err, ErrSurfaceStale) {
			t.Fatalf("got %v, want ErrSurfaceStale", err)
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		// Valid payload, valid checksum position, but extra bytes spliced
		// in before the checksum would fail the checksum; instead append
		// beyond it so the payload grows and the checksum shifts.
		bad := append(append([]byte(nil), blob...), 0, 0, 0, 0)
		if _, err := DecodeSurface(bytes.NewReader(bad), 42); !errors.Is(err, ErrSurfaceCorrupt) {
			t.Fatalf("got %v, want ErrSurfaceCorrupt", err)
		}
	})
}

// fixChecksum recomputes the trailing FNV-64a checksum of a mutated
// blob so tests can target the semantic validation behind it.
func fixChecksum(blob []byte) {
	payload := blob[:len(blob)-8]
	var h uint64 = 14695981039346656037
	for _, b := range payload {
		h ^= uint64(b)
		h *= 1099511628211
	}
	binary.LittleEndian.PutUint64(blob[len(blob)-8:], h)
}

func TestSurfacePersistRejectsOverflowingGrid(t *testing.T) {
	// A crafted blob can carry a valid checksum (it is not a secret),
	// so declared axis sizes whose product overflows must be rejected
	// as corrupt, not trusted into a slice-bounds panic: 6 axes of 256
	// nodes declare 2^48 table entries.
	var buf bytes.Buffer
	buf.Write([]byte{'F', 'S', 'R', 'F'})
	var u32 [4]byte
	var u64 [8]byte
	putU32 := func(v uint32) { binary.LittleEndian.PutUint32(u32[:], v); buf.Write(u32[:]) }
	putU64 := func(v uint64) { binary.LittleEndian.PutUint64(u64[:], v); buf.Write(u64[:]) }
	putU32(SurfaceFormatVersion)
	putU64(9) // config hash
	putU32(1) // name "z"
	buf.WriteByte('z')
	putU32(6) // axes
	for ax := 0; ax < 6; ax++ {
		putU32(1) // axis name
		buf.WriteByte(byte('a' + ax))
		putU32(256)
		for i := 0; i < 256; i++ {
			putU64(math.Float64bits(float64(i)))
		}
	}
	blob := append(buf.Bytes(), 0, 0, 0, 0, 0, 0, 0, 0)
	fixChecksum(blob)
	if _, err := DecodeSurface(bytes.NewReader(blob), 9); !errors.Is(err, ErrSurfaceCorrupt) {
		t.Fatalf("overflowing grid should be corrupt, got %v", err)
	}
}

func TestSurfacePersistNaNValues(t *testing.T) {
	// Float payloads must survive byte-exactly, including non-finite
	// values an exotic engine could produce.
	s := &Surface{
		name:    "w",
		axes:    []SurfaceAxis{{Name: "x", nodes: []float64{0, 1}}},
		strides: []int{1},
		values:  []float64{math.Inf(1), math.NaN()},
	}
	var buf bytes.Buffer
	if err := EncodeSurface(&buf, s, 1); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSurface(&buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(got.values[0], 1) || !math.IsNaN(got.values[1]) {
		t.Fatalf("non-finite values not preserved: %v", got.values)
	}
}
