package fuzzy

import (
	"fmt"
	"math"
)

// MembershipFunc maps a crisp value to a membership degree.
//
// Implementations must be pure functions: Membership must always return a
// value in [0, 1] and must be safe for concurrent use.
type MembershipFunc interface {
	// Membership returns the degree to which x belongs to the fuzzy set.
	Membership(x float64) float64
	// Support returns the closed interval outside of which membership is
	// zero. Shoulder functions may return ±Inf bounds.
	Support() (lo, hi float64)
	// Kernel returns the interval on which membership is exactly one.
	// For a triangular function it is the degenerate interval
	// [center, center].
	Kernel() (lo, hi float64)
}

// Triangular is the paper's f(x; x0, a0, a1) membership function: a triangle
// with apex at Center, rising over LeftWidth and falling over RightWidth.
//
// A zero width denotes a vertical edge: membership drops to zero
// immediately on that side of the apex.
type Triangular struct {
	Center     float64
	LeftWidth  float64
	RightWidth float64
}

var _ MembershipFunc = Triangular{}

// NewTriangular validates and constructs a Triangular membership function.
func NewTriangular(center, leftWidth, rightWidth float64) (Triangular, error) {
	t := Triangular{Center: center, LeftWidth: leftWidth, RightWidth: rightWidth}
	if err := t.validate(); err != nil {
		return Triangular{}, err
	}
	return t, nil
}

// MustTriangular is like NewTriangular but panics on invalid parameters.
// It is intended for statically known shapes such as the paper's tables.
func MustTriangular(center, leftWidth, rightWidth float64) Triangular {
	t, err := NewTriangular(center, leftWidth, rightWidth)
	if err != nil {
		panic(err)
	}
	return t
}

func (t Triangular) validate() error {
	switch {
	case math.IsNaN(t.Center) || math.IsInf(t.Center, 0):
		return fmt.Errorf("fuzzy: triangular center must be finite, got %v", t.Center)
	case math.IsNaN(t.LeftWidth) || t.LeftWidth < 0:
		return fmt.Errorf("fuzzy: triangular left width must be >= 0, got %v", t.LeftWidth)
	case math.IsNaN(t.RightWidth) || t.RightWidth < 0:
		return fmt.Errorf("fuzzy: triangular right width must be >= 0, got %v", t.RightWidth)
	}
	return nil
}

// Membership implements MembershipFunc.
func (t Triangular) Membership(x float64) float64 {
	switch {
	case math.IsNaN(x):
		return 0
	case x == t.Center:
		return 1
	case x < t.Center:
		if t.LeftWidth == 0 {
			return 0
		}
		return clamp01((x-t.Center)/t.LeftWidth + 1)
	default: // x > t.Center
		if t.RightWidth == 0 {
			return 0
		}
		return clamp01((t.Center-x)/t.RightWidth + 1)
	}
}

// Support implements MembershipFunc.
func (t Triangular) Support() (lo, hi float64) {
	return t.Center - t.LeftWidth, t.Center + t.RightWidth
}

// Kernel implements MembershipFunc.
func (t Triangular) Kernel() (lo, hi float64) { return t.Center, t.Center }

// String returns a compact description, e.g. "tri(30; 15, 30)".
func (t Triangular) String() string {
	return fmt.Sprintf("tri(%g; %g, %g)", t.Center, t.LeftWidth, t.RightWidth)
}

// Trapezoidal is the paper's g(x; x0, x1, a0, a1) membership function: a
// plateau of membership one on [LeftEdge, RightEdge], rising over LeftWidth
// before the plateau and falling over RightWidth after it.
//
// LeftEdge may be -Inf and RightEdge may be +Inf to express shoulder
// functions that stay at one beyond the end of the universe. A zero width
// denotes a vertical edge.
type Trapezoidal struct {
	LeftEdge   float64
	RightEdge  float64
	LeftWidth  float64
	RightWidth float64
}

var _ MembershipFunc = Trapezoidal{}

// NewTrapezoidal validates and constructs a Trapezoidal membership function.
func NewTrapezoidal(leftEdge, rightEdge, leftWidth, rightWidth float64) (Trapezoidal, error) {
	g := Trapezoidal{
		LeftEdge:   leftEdge,
		RightEdge:  rightEdge,
		LeftWidth:  leftWidth,
		RightWidth: rightWidth,
	}
	if err := g.validate(); err != nil {
		return Trapezoidal{}, err
	}
	return g, nil
}

// MustTrapezoidal is like NewTrapezoidal but panics on invalid parameters.
func MustTrapezoidal(leftEdge, rightEdge, leftWidth, rightWidth float64) Trapezoidal {
	g, err := NewTrapezoidal(leftEdge, rightEdge, leftWidth, rightWidth)
	if err != nil {
		panic(err)
	}
	return g
}

func (g Trapezoidal) validate() error {
	switch {
	case math.IsNaN(g.LeftEdge) || math.IsNaN(g.RightEdge):
		return fmt.Errorf("fuzzy: trapezoidal edges must not be NaN")
	case g.LeftEdge > g.RightEdge:
		return fmt.Errorf("fuzzy: trapezoidal left edge %v exceeds right edge %v", g.LeftEdge, g.RightEdge)
	case math.IsNaN(g.LeftWidth) || g.LeftWidth < 0:
		return fmt.Errorf("fuzzy: trapezoidal left width must be >= 0, got %v", g.LeftWidth)
	case math.IsNaN(g.RightWidth) || g.RightWidth < 0:
		return fmt.Errorf("fuzzy: trapezoidal right width must be >= 0, got %v", g.RightWidth)
	case math.IsInf(g.LeftEdge, 1) || math.IsInf(g.RightEdge, -1):
		return fmt.Errorf("fuzzy: trapezoidal plateau [%v, %v] is empty", g.LeftEdge, g.RightEdge)
	}
	return nil
}

// Membership implements MembershipFunc.
func (g Trapezoidal) Membership(x float64) float64 {
	switch {
	case math.IsNaN(x):
		return 0
	case x >= g.LeftEdge && x <= g.RightEdge:
		return 1
	case x < g.LeftEdge:
		if g.LeftWidth == 0 || math.IsInf(g.LeftEdge, -1) {
			return 0
		}
		return clamp01((x-g.LeftEdge)/g.LeftWidth + 1)
	default: // x > g.RightEdge
		if g.RightWidth == 0 || math.IsInf(g.RightEdge, 1) {
			return 0
		}
		return clamp01((g.RightEdge-x)/g.RightWidth + 1)
	}
}

// Support implements MembershipFunc.
func (g Trapezoidal) Support() (lo, hi float64) {
	return g.LeftEdge - g.LeftWidth, g.RightEdge + g.RightWidth
}

// Kernel implements MembershipFunc.
func (g Trapezoidal) Kernel() (lo, hi float64) { return g.LeftEdge, g.RightEdge }

// String returns a compact description, e.g. "trap(0, 15; 0, 15)".
func (g Trapezoidal) String() string {
	return fmt.Sprintf("trap(%g, %g; %g, %g)", g.LeftEdge, g.RightEdge, g.LeftWidth, g.RightWidth)
}

// NewLeftShoulder builds a trapezoid whose membership is one for every
// x <= edge and falls to zero over width.
func NewLeftShoulder(edge, width float64) (Trapezoidal, error) {
	return NewTrapezoidal(math.Inf(-1), edge, 0, width)
}

// MustLeftShoulder is like NewLeftShoulder but panics on invalid parameters.
func MustLeftShoulder(edge, width float64) Trapezoidal {
	g, err := NewLeftShoulder(edge, width)
	if err != nil {
		panic(err)
	}
	return g
}

// NewRightShoulder builds a trapezoid whose membership is one for every
// x >= edge and falls to zero over width on the left.
func NewRightShoulder(edge, width float64) (Trapezoidal, error) {
	return NewTrapezoidal(edge, math.Inf(1), width, 0)
}

// MustRightShoulder is like NewRightShoulder but panics on invalid parameters.
func MustRightShoulder(edge, width float64) Trapezoidal {
	g, err := NewRightShoulder(edge, width)
	if err != nil {
		panic(err)
	}
	return g
}

// Singleton is a degenerate fuzzy set whose membership is one at exactly
// Point and zero elsewhere. It is mainly useful in tests and for
// Sugeno-style crisp consequents.
type Singleton struct {
	Point float64
}

var _ MembershipFunc = Singleton{}

// Membership implements MembershipFunc.
func (s Singleton) Membership(x float64) float64 {
	if x == s.Point {
		return 1
	}
	return 0
}

// Support implements MembershipFunc.
func (s Singleton) Support() (lo, hi float64) { return s.Point, s.Point }

// Kernel implements MembershipFunc.
func (s Singleton) Kernel() (lo, hi float64) { return s.Point, s.Point }

// String returns a compact description, e.g. "singleton(0.5)".
func (s Singleton) String() string { return fmt.Sprintf("singleton(%g)", s.Point) }

func clamp01(v float64) float64 {
	switch {
	case v < 0:
		return 0
	case v > 1:
		return 1
	default:
		return v
	}
}
