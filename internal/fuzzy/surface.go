package fuzzy

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// maxSurfaceDims bounds the input dimensionality of a compiled surface.
// The corner loop of the multilinear interpolator enumerates 2^d grid
// points, so the bound keeps both the table size and the per-call cost
// honest; the paper's controllers have three inputs each.
const maxSurfaceDims = 8

// DefaultSurfaceGridSize is the per-axis uniform sample count used when
// a grid size is not specified. The uniform nodes are augmented with
// every membership-function corner of the axis variable (see
// NewSurface), which restores quadratic interpolation convergence
// across the kinks of piecewise-linear controllers; at 65 uniform nodes
// per axis the paper's surfaces stay within ~1e-3 of the exact engines
// (the golden-equivalence tests in internal/facs pin the realised
// bounds) while a three-input table stays under 3 MB.
const DefaultSurfaceGridSize = 65

// SurfaceAxis is one input dimension of a compiled surface: the
// variable name plus the sorted, strictly increasing grid nodes along
// its universe.
type SurfaceAxis struct {
	Name  string
	nodes []float64
}

// Min returns the first grid node (the universe lower bound).
func (a SurfaceAxis) Min() float64 { return a.nodes[0] }

// Max returns the last grid node (the universe upper bound).
func (a SurfaceAxis) Max() float64 { return a.nodes[len(a.nodes)-1] }

// N returns the node count.
func (a SurfaceAxis) N() int { return len(a.nodes) }

// Nodes returns a copy of the grid nodes.
func (a SurfaceAxis) Nodes() []float64 { return append([]float64(nil), a.nodes...) }

// locate maps x to its lower grid node index and the fractional
// position inside the cell, clamping to the universe exactly like
// Variable.Clamp (NaN clamps low).
func (a SurfaceAxis) locate(x float64) (int, float64) {
	if !(x > a.nodes[0]) { // also catches NaN
		return 0, 0
	}
	last := len(a.nodes) - 1
	if x >= a.nodes[last] {
		return last - 1, 1
	}
	// Binary search for the cell: nodes[j] <= x < nodes[j+1].
	lo, hi := 0, last
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if a.nodes[mid] <= x {
			lo = mid
		} else {
			hi = mid
		}
	}
	f := (x - a.nodes[lo]) / (a.nodes[lo+1] - a.nodes[lo])
	if f < 0 {
		f = 0
	} else if f > 1 {
		f = 1
	}
	return lo, f
}

// Surface is a compiled lookup-table approximation of an Engine: the
// engine's defuzzified output sampled over a dense grid of its input
// universes at construction time, answered at query time by
// multilinear (for three inputs, trilinear) interpolation.
//
// Grid nodes along each axis are the union of a uniform subdivision and
// the corner points (support and kernel endpoints) of every membership
// function on that axis, so the kinks of piecewise-linear controllers
// fall on cell boundaries instead of inside cells. At the grid nodes a
// Surface reproduces the engine exactly; between nodes it interpolates,
// and the golden-equivalence test suite in internal/facs pins the
// realised error bounds for the paper's controllers.
//
// A Surface is immutable after construction and safe for concurrent
// use. Unlike Engine.Evaluate, Surface evaluation never fails for
// finite inputs (out-of-universe inputs are clamped exactly as the
// engine clamps them).
type Surface struct {
	axes        []SurfaceAxis
	strides     []int
	values      []float64
	cellStrides []int
	errs        []float64 // per-cell local error bound; nil without error map
	name        string
}

// surfaceCompiler configures NewSurface.
type surfaceCompiler struct {
	grid    []int
	extra   map[string][]float64
	workers int
	errMap  bool
	safety  float64
}

// SurfaceOption configures surface compilation.
type SurfaceOption func(*surfaceCompiler)

// WithSurfaceGrid sets the per-axis uniform node counts that seed the
// grid before membership corners are merged in. Provide either one
// count per engine input or a single count applied to every axis; each
// count must be at least 2. The default is DefaultSurfaceGridSize on
// every axis.
func WithSurfaceGrid(sizes ...int) SurfaceOption {
	return func(c *surfaceCompiler) { c.grid = append([]int(nil), sizes...) }
}

// WithSurfaceNodes merges explicit grid nodes into the named axis, on
// top of the uniform subdivision and the membership corners. Queries
// that hit a grid node exactly reproduce the engine with zero error,
// so callers whose inputs are known to be discrete (e.g. integral
// bandwidth units) can pin those values and confine interpolation to
// the genuinely continuous axes. Nodes outside the axis universe are
// ignored.
func WithSurfaceNodes(axis string, nodes ...float64) SurfaceOption {
	return func(c *surfaceCompiler) {
		if c.extra == nil {
			c.extra = make(map[string][]float64)
		}
		c.extra[axis] = append(c.extra[axis], nodes...)
	}
}

// WithSurfaceWorkers sets the number of goroutines used to sample the
// engine during compilation (default runtime.NumCPU()). The compiled
// table is identical for every worker count: workers fill disjoint
// slabs of the grid.
func WithSurfaceWorkers(n int) SurfaceOption {
	return func(c *surfaceCompiler) { c.workers = n }
}

// WithSurfaceErrorMap additionally samples the engine at the centre of
// every grid cell and stores |interpolated - exact| * safety as a local
// interpolation error bound, retrievable through EvaluateVecWithBound.
// The cell centre is where multilinear interpolation error peaks for
// smooth integrands and for the diagonal creases the min t-norm
// introduces; safety (values below 1 are raised to 1) covers
// asymmetric creases the single sample can under-read, and the map is
// then dilated so every cell also carries the worst bound of its
// neighbours — a query near a cell boundary (or an upstream error that
// pushes the true input into the next cell) stays covered. The error
// map roughly doubles compilation cost and adds one float per cell.
func WithSurfaceErrorMap(safety float64) SurfaceOption {
	return func(c *surfaceCompiler) {
		c.errMap = true
		if safety < 1 {
			safety = 1
		}
		c.safety = safety
	}
}

// axisNodes builds the grid nodes for one input variable: a uniform
// n-point subdivision of the universe merged with every term's support
// and kernel endpoints plus any caller-pinned nodes, deduplicated.
func axisNodes(v *Variable, n int, extra []float64) []float64 {
	min, max := v.Universe()
	nodes := make([]float64, 0, n+4*v.NumTerms()+len(extra))
	step := (max - min) / float64(n-1)
	for i := 0; i < n; i++ {
		nodes = append(nodes, min+float64(i)*step)
	}
	nodes[n-1] = max // guard against accumulated rounding
	for _, t := range v.Terms() {
		sLo, sHi := t.MF.Support()
		kLo, kHi := t.MF.Kernel()
		for _, x := range [4]float64{sLo, sHi, kLo, kHi} {
			if x > min && x < max {
				nodes = append(nodes, x)
			}
		}
	}
	for _, x := range extra {
		if x > min && x < max {
			nodes = append(nodes, x)
		}
	}
	sort.Float64s(nodes)
	// Deduplicate nodes closer than a universe-relative epsilon; keep
	// the earlier node so universe endpoints always survive.
	eps := (max - min) * 1e-9
	out := nodes[:1]
	for _, x := range nodes[1:] {
		if x-out[len(out)-1] > eps {
			out = append(out, x)
		}
	}
	return out
}

// NewSurface compiles a lookup-table surface from an engine by
// evaluating it at every node of a dense input grid. Compilation cost
// is the product of the per-axis node counts times one exact
// inference; it is sharded across workers. The engine is only read,
// never retained.
func NewSurface(e *Engine, opts ...SurfaceOption) (*Surface, error) {
	if e == nil {
		return nil, fmt.Errorf("fuzzy: surface needs an engine")
	}
	inputs := e.Inputs()
	if len(inputs) > maxSurfaceDims {
		return nil, fmt.Errorf("fuzzy: surface supports at most %d inputs, engine has %d", maxSurfaceDims, len(inputs))
	}
	c := surfaceCompiler{workers: runtime.NumCPU()}
	for _, opt := range opts {
		opt(&c)
	}
	switch len(c.grid) {
	case 0:
		c.grid = make([]int, len(inputs))
		for i := range c.grid {
			c.grid[i] = DefaultSurfaceGridSize
		}
	case 1:
		n := c.grid[0]
		c.grid = make([]int, len(inputs))
		for i := range c.grid {
			c.grid[i] = n
		}
	case len(inputs):
		// one count per axis
	default:
		return nil, fmt.Errorf("fuzzy: got %d grid sizes for %d inputs", len(c.grid), len(inputs))
	}
	if c.workers < 1 {
		c.workers = 1
	}
	for name := range c.extra {
		known := false
		for _, v := range inputs {
			if v.Name() == name {
				known = true
				break
			}
		}
		if !known {
			return nil, fmt.Errorf("fuzzy: surface nodes pinned for unknown axis %q", name)
		}
	}
	s := &Surface{
		axes:    make([]SurfaceAxis, len(inputs)),
		strides: make([]int, len(inputs)),
		name:    e.Output().Name(),
	}
	total := 1
	for i, v := range inputs {
		if c.grid[i] < 2 {
			return nil, fmt.Errorf("fuzzy: grid size for axis %q must be >= 2, got %d", v.Name(), c.grid[i])
		}
		s.axes[i] = SurfaceAxis{Name: v.Name(), nodes: axisNodes(v, c.grid[i], c.extra[v.Name()])}
		total *= s.axes[i].N()
	}
	// Row-major layout: the last axis varies fastest.
	stride := 1
	for i := len(s.axes) - 1; i >= 0; i-- {
		s.strides[i] = stride
		stride *= s.axes[i].N()
	}
	s.values = make([]float64, total)
	if err := s.compile(e, c.workers); err != nil {
		return nil, err
	}
	if c.errMap {
		if err := s.compileErrorMap(e, c.workers, c.safety); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// MustSurface is like NewSurface but panics on error. It is intended
// for statically known controllers such as the paper's FLC1 and FLC2.
func MustSurface(e *Engine, opts ...SurfaceOption) *Surface {
	s, err := NewSurface(e, opts...)
	if err != nil {
		panic(err)
	}
	return s
}

// compile fills the value table by sampling the engine, sharding
// complete slabs of the first axis across workers. Every worker writes
// disjoint regions, so the result is independent of scheduling.
func (s *Surface) compile(e *Engine, workers int) error {
	outer := s.axes[0].N()
	if workers > outer {
		workers = outer
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		errSlab  = -1
		failed   atomic.Bool
	)
	slab := s.strides[0]
	next := make(chan int)
	go func() {
		for i := 0; i < outer; i++ {
			next <- i
		}
		close(next)
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			vals := make([]float64, len(s.axes))
			idx := make([]int, len(s.axes))
			for i := range next {
				if failed.Load() {
					continue // drain the channel so the feeder can finish
				}
				vals[0] = s.axes[0].nodes[i]
				for k := 1; k < len(idx); k++ {
					idx[k] = 0
					vals[k] = s.axes[k].nodes[0]
				}
				base := i * slab
				for off := 0; off < slab; off++ {
					y, err := e.EvaluateVec(vals...)
					if err != nil {
						mu.Lock()
						// Prefer the error from the lowest slab so
						// concurrent failures report stably.
						if firstErr == nil || i < errSlab {
							firstErr = fmt.Errorf("fuzzy: compiling surface at %v: %w", append([]float64(nil), vals...), err)
							errSlab = i
						}
						mu.Unlock()
						failed.Store(true)
						break
					}
					s.values[base+off] = y
					// Advance the odometer over axes 1..d-1.
					for k := len(idx) - 1; k >= 1; k-- {
						idx[k]++
						if idx[k] < s.axes[k].N() {
							vals[k] = s.axes[k].nodes[idx[k]]
							break
						}
						idx[k] = 0
						vals[k] = s.axes[k].nodes[0]
					}
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// compileErrorMap fills the per-cell error table by probing the engine
// at every cell centre. Workers shard slabs of the first axis exactly
// like compile, so the map is scheduling-independent too.
func (s *Surface) compileErrorMap(e *Engine, workers int, safety float64) error {
	d := len(s.axes)
	s.cellStrides = make([]int, d)
	stride := 1
	for i := d - 1; i >= 0; i-- {
		s.cellStrides[i] = stride
		stride *= s.axes[i].N() - 1
	}
	s.errs = make([]float64, stride)
	outerCells := s.axes[0].N() - 1
	if workers > outerCells {
		workers = outerCells
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		errSlab  = -1
		failed   atomic.Bool
	)
	slab := s.cellStrides[0]
	next := make(chan int)
	go func() {
		for i := 0; i < outerCells; i++ {
			next <- i
		}
		close(next)
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			idx := make([]int, d)
			center := make([]float64, d)
			for i := range next {
				if failed.Load() {
					continue // drain the channel so the feeder can finish
				}
				idx[0] = i
				for k := 1; k < d; k++ {
					idx[k] = 0
				}
				for off := 0; off < slab; off++ {
					for k := 0; k < d; k++ {
						nodes := s.axes[k].nodes
						center[k] = (nodes[idx[k]] + nodes[idx[k]+1]) / 2
					}
					exact, err := e.EvaluateVec(center...)
					if err != nil {
						mu.Lock()
						if firstErr == nil || i < errSlab {
							firstErr = fmt.Errorf("fuzzy: probing surface error at %v: %w", append([]float64(nil), center...), err)
							errSlab = i
						}
						mu.Unlock()
						failed.Store(true)
						break
					}
					approx, _ := s.EvaluateVec(center...)
					diff := exact - approx
					if diff < 0 {
						diff = -diff
					}
					s.errs[i*slab+off] = diff * safety
					for k := d - 1; k >= 1; k-- {
						idx[k]++
						if idx[k] < s.axes[k].N()-1 {
							break
						}
						idx[k] = 0
					}
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	s.dilateErrorMap()
	return nil
}

// dilateErrorMap replaces every cell's bound with the maximum over its
// 3^d cell neighbourhood, via d separable one-dimensional max passes.
// Probing only cell centres can under-read a crease that clips a cell
// corner; the crease then necessarily crosses a neighbouring cell
// whose centre probe reads it, so widening each bound to the
// neighbourhood maximum restores coverage near cell boundaries.
func (s *Surface) dilateErrorMap() {
	d := len(s.axes)
	tmp := make([]float64, len(s.errs))
	for axis := 0; axis < d; axis++ {
		stride := s.cellStrides[axis]
		n := s.axes[axis].N() - 1
		copy(tmp, s.errs)
		for i := range s.errs {
			j := (i / stride) % n
			best := tmp[i]
			if j > 0 && tmp[i-stride] > best {
				best = tmp[i-stride]
			}
			if j+1 < n && tmp[i+stride] > best {
				best = tmp[i+stride]
			}
			s.errs[i] = best
		}
	}
}

// HasErrorMap reports whether the surface carries per-cell error
// bounds.
func (s *Surface) HasErrorMap() bool { return s.errs != nil }

// Axes returns the grid axes in input declaration order.
func (s *Surface) Axes() []SurfaceAxis {
	out := make([]SurfaceAxis, len(s.axes))
	for i, ax := range s.axes {
		out[i] = SurfaceAxis{Name: ax.Name, nodes: ax.Nodes()}
	}
	return out
}

// NumNodes returns the total number of grid nodes in the table.
func (s *Surface) NumNodes() int { return len(s.values) }

// OutputName returns the name of the engine output the surface encodes.
func (s *Surface) OutputName() string { return s.name }

// EvaluateVec answers one query by multilinear interpolation, with
// crisp inputs given in input declaration order. It is the hot path:
// no allocation, no failure for finite inputs, cost O(d log n + 2^d).
func (s *Surface) EvaluateVec(vals ...float64) (float64, error) {
	if len(vals) != len(s.axes) {
		return 0, fmt.Errorf("fuzzy: got %d input values, want %d", len(vals), len(s.axes))
	}
	var frac [maxSurfaceDims]float64
	base := 0
	for i := range s.axes {
		j, f := s.axes[i].locate(vals[i])
		frac[i] = f
		base += j * s.strides[i]
	}
	d := len(s.axes)
	var out float64
	for corner := 0; corner < 1<<d; corner++ {
		w := 1.0
		off := 0
		for i := 0; i < d; i++ {
			if corner&(1<<i) != 0 {
				w *= frac[i]
				off += s.strides[i]
			} else {
				w *= 1 - frac[i]
			}
		}
		if w != 0 {
			out += w * s.values[base+off]
		}
	}
	return out, nil
}

// EvaluateVecWithBound is EvaluateVec plus the local interpolation
// error bound of the grid cell the query falls in. Without an error
// map (WithSurfaceErrorMap) the bound is reported as 0. Callers that
// must never act on an uncertain value — e.g. an admission decision
// near its accept threshold — compare the bound against their decision
// margin and fall back to the exact engine when it does not clear.
func (s *Surface) EvaluateVecWithBound(vals ...float64) (value, bound float64, err error) {
	if len(vals) != len(s.axes) {
		return 0, 0, fmt.Errorf("fuzzy: got %d input values, want %d", len(vals), len(s.axes)) //facs:alloc reject/error path; formats nothing on the steady-state wave
	}
	var frac [maxSurfaceDims]float64
	base, cell := 0, 0
	for i := range s.axes {
		j, f := s.axes[i].locate(vals[i])
		frac[i] = f
		base += j * s.strides[i]
		if s.errs != nil {
			cell += j * s.cellStrides[i]
		}
	}
	d := len(s.axes)
	var out float64
	for corner := 0; corner < 1<<d; corner++ {
		w := 1.0
		off := 0
		for i := 0; i < d; i++ {
			if corner&(1<<i) != 0 {
				w *= frac[i]
				off += s.strides[i]
			} else {
				w *= 1 - frac[i]
			}
		}
		if w != 0 {
			out += w * s.values[base+off]
		}
	}
	if s.errs != nil {
		bound = s.errs[cell]
	}
	return out, bound, nil
}

// AxisSlopeBound returns the largest absolute slope of the surface
// along the given axis across the edges of the grid cell the query
// falls in. It bounds how strongly a perturbation of that input can
// move the interpolated output inside the cell, which lets callers
// propagate an upstream error bound through a surface composition.
func (s *Surface) AxisSlopeBound(axis int, vals ...float64) (float64, error) {
	slope, _, err := s.AxisRangeBounds(axis, nil, vals...)
	return slope, err
}

// AxisRangeBounds bounds the surface over every grid cell that the
// interval spanned by the axis coordinate of vals and the points in
// extra intersects, holding the other coordinates fixed: it returns
// the largest absolute slope along the axis across those cells' edges
// and the largest per-cell interpolation error bound among them (zero
// without an error map).
//
// Callers composing surfaces use it to propagate an upstream error
// bound soundly: when the true input may lie anywhere in
// [x-bound, x+bound], the slope and error of every cell that interval
// touches matter, not just the cell the interpolated value fell in.
func (s *Surface) AxisRangeBounds(axis int, extra []float64, vals ...float64) (slope, errBound float64, err error) {
	if len(vals) != len(s.axes) {
		return 0, 0, fmt.Errorf("fuzzy: got %d input values, want %d", len(vals), len(s.axes)) //facs:alloc reject/error path; formats nothing on the steady-state wave
	}
	if axis < 0 || axis >= len(s.axes) {
		return 0, 0, fmt.Errorf("fuzzy: axis %d out of range (surface has %d)", axis, len(s.axes)) //facs:alloc reject/error path; formats nothing on the steady-state wave
	}
	base := 0
	cell := 0
	var lo [maxSurfaceDims]int
	for i := range s.axes {
		j, _ := s.axes[i].locate(vals[i])
		lo[i] = j
		base += j * s.strides[i]
		if s.errs != nil {
			cell += j * s.cellStrides[i]
		}
	}
	jLo, jHi := lo[axis], lo[axis]
	for _, x := range extra {
		j, _ := s.axes[axis].locate(x)
		if j < jLo {
			jLo = j
		}
		if j > jHi {
			jHi = j
		}
	}
	d := len(s.axes)
	ax := s.axes[axis]
	for j := jLo; j <= jHi; j++ {
		shift := (j - lo[axis]) * s.strides[axis]
		width := ax.nodes[j+1] - ax.nodes[j]
		// Enumerate the 2^(d-1) cell edges parallel to the axis.
		for corner := 0; corner < 1<<d; corner++ {
			if corner&(1<<axis) != 0 {
				continue
			}
			off := shift
			for i := 0; i < d; i++ {
				if corner&(1<<i) != 0 {
					off += s.strides[i]
				}
			}
			delta := s.values[base+off+s.strides[axis]] - s.values[base+off]
			if delta < 0 {
				delta = -delta
			}
			if sl := delta / width; sl > slope {
				slope = sl
			}
		}
		if s.errs != nil {
			if e := s.errs[cell+(j-lo[axis])*s.cellStrides[axis]]; e > errBound {
				errBound = e
			}
		}
	}
	return slope, errBound, nil
}

// Evaluate answers one query for named crisp inputs, mirroring
// Engine.Evaluate. Every axis must be present in the map.
func (s *Surface) Evaluate(inputs map[string]float64) (float64, error) {
	vals := make([]float64, len(s.axes))
	for i, ax := range s.axes {
		x, ok := inputs[ax.Name]
		if !ok {
			return 0, fmt.Errorf("fuzzy: missing value for input variable %q", ax.Name)
		}
		vals[i] = x
	}
	if len(inputs) != len(s.axes) {
		for name := range inputs {
			found := false
			for _, ax := range s.axes {
				if ax.Name == name {
					found = true
					break
				}
			}
			if !found {
				return 0, fmt.Errorf("fuzzy: surface has no input variable %q", name)
			}
		}
	}
	return s.EvaluateVec(vals...)
}

// String returns a compact description such as "Cv[67x71x67]".
func (s *Surface) String() string {
	dims := make([]string, len(s.axes))
	for i, ax := range s.axes {
		dims[i] = fmt.Sprint(ax.N())
	}
	return fmt.Sprintf("%s[%s]", s.name, strings.Join(dims, "x"))
}
