// Package fuzzy implements a self-contained Mamdani fuzzy-inference
// engine: membership functions, linguistic variables, a rule base with
// a textual rule parser, min/product inference, and several
// defuzzifiers.
//
// The engine is the substrate for the paper's two fuzzy logic
// controllers (FLC1 and FLC2). It is deliberately generic: nothing in
// this package knows about call admission control. The
// membership-function forms are exactly the triangular f(x; x0, a0, a1)
// and trapezoidal g(x; x0, x1, a0, a1) functions of the paper (Fig. 3).
//
// # Compiled surfaces
//
// Surface is the lookup-table fast path: an engine sampled over a
// breakpoint-aligned grid at construction time and answered by
// multilinear interpolation — exact at grid nodes, bounded-error
// between them, with optional per-cell error bounds
// (WithSurfaceErrorMap) that let callers guard decisions near
// thresholds. A Surface is immutable and safe for concurrent use.
// EncodeSurface/DecodeSurface persist a compiled surface as a
// versioned, checksummed binary blob validated against a caller
// config hash (SurfaceFormatVersion, ErrSurfaceStale,
// ErrSurfaceCorrupt), so processes can load surfaces in milliseconds
// instead of recompiling for seconds.
//
// # Entry points
//
// NewVariable/NewTriangular/NewTrapezoidal build the vocabulary;
// NewEngine (with WithTNorm, WithImplication, WithDefuzzifier,
// WithResolution) assembles a controller; Engine.Evaluate/EvaluateVec
// run one inference; NewSurface compiles the lookup table.
package fuzzy
