package fuzzy

import (
	"fmt"
	"math"
	"strings"
)

// Term is a named fuzzy set over a variable's universe, e.g. "Slow" on a
// speed variable.
type Term struct {
	Name string
	MF   MembershipFunc
}

// Variable is a linguistic variable: a named crisp universe [Min, Max]
// partitioned by a set of named terms.
//
// Crisp inputs are clamped to the universe before fuzzification, which is
// how shoulder terms whose plateau touches the universe edge behave as
// "everything at or beyond this edge".
type Variable struct {
	name  string
	min   float64
	max   float64
	terms []Term
	index map[string]int
}

// NewVariable constructs a linguistic variable. The name must be non-empty,
// min < max must hold, at least one term is required, and term names must
// be unique and non-empty.
func NewVariable(name string, min, max float64, terms ...Term) (*Variable, error) {
	switch {
	case strings.TrimSpace(name) == "":
		return nil, fmt.Errorf("fuzzy: variable name must not be empty")
	case math.IsNaN(min) || math.IsNaN(max) || math.IsInf(min, 0) || math.IsInf(max, 0):
		return nil, fmt.Errorf("fuzzy: variable %q universe bounds must be finite, got [%v, %v]", name, min, max)
	case min >= max:
		return nil, fmt.Errorf("fuzzy: variable %q universe [%v, %v] is empty", name, min, max)
	case len(terms) == 0:
		return nil, fmt.Errorf("fuzzy: variable %q needs at least one term", name)
	}
	index := make(map[string]int, len(terms))
	for i, t := range terms {
		if strings.TrimSpace(t.Name) == "" {
			return nil, fmt.Errorf("fuzzy: variable %q term %d has an empty name", name, i)
		}
		if t.MF == nil {
			return nil, fmt.Errorf("fuzzy: variable %q term %q has a nil membership function", name, t.Name)
		}
		if _, dup := index[t.Name]; dup {
			return nil, fmt.Errorf("fuzzy: variable %q has duplicate term %q", name, t.Name)
		}
		index[t.Name] = i
	}
	v := &Variable{
		name:  name,
		min:   min,
		max:   max,
		terms: append([]Term(nil), terms...),
		index: index,
	}
	return v, nil
}

// MustVariable is like NewVariable but panics on invalid parameters. It is
// intended for statically known variables such as the paper's controllers.
func MustVariable(name string, min, max float64, terms ...Term) *Variable {
	v, err := NewVariable(name, min, max, terms...)
	if err != nil {
		panic(err)
	}
	return v
}

// Name returns the variable name.
func (v *Variable) Name() string { return v.name }

// Universe returns the crisp domain [min, max] of the variable.
func (v *Variable) Universe() (min, max float64) { return v.min, v.max }

// Terms returns a copy of the variable's terms in declaration order.
func (v *Variable) Terms() []Term { return append([]Term(nil), v.terms...) }

// NumTerms returns the number of terms.
func (v *Variable) NumTerms() int { return len(v.terms) }

// TermAt returns the i-th term in declaration order.
func (v *Variable) TermAt(i int) Term { return v.terms[i] }

// TermIndex returns the position of the named term, or false if absent.
func (v *Variable) TermIndex(name string) (int, bool) {
	i, ok := v.index[name]
	return i, ok
}

// Term returns the named term, or false if absent.
func (v *Variable) Term(name string) (Term, bool) {
	i, ok := v.index[name]
	if !ok {
		return Term{}, false
	}
	return v.terms[i], true
}

// Clamp restricts x to the variable's universe. NaN clamps to the lower
// bound so that downstream code never observes NaN.
func (v *Variable) Clamp(x float64) float64 {
	switch {
	case math.IsNaN(x), x < v.min:
		return v.min
	case x > v.max:
		return v.max
	default:
		return x
	}
}

// Fuzzify returns the membership degree of x (after clamping) in each term,
// in declaration order.
func (v *Variable) Fuzzify(x float64) []float64 {
	out := make([]float64, len(v.terms))
	v.FuzzifyInto(x, out)
	return out
}

// FuzzifyInto is an allocation-free Fuzzify writing into dst, which must
// have length NumTerms.
func (v *Variable) FuzzifyInto(x float64, dst []float64) {
	x = v.Clamp(x)
	for i, t := range v.terms {
		dst[i] = t.MF.Membership(x)
	}
}

// Membership returns the degree of x in the named term.
func (v *Variable) Membership(term string, x float64) (float64, error) {
	i, ok := v.index[term]
	if !ok {
		return 0, fmt.Errorf("fuzzy: variable %q has no term %q", v.name, term)
	}
	return v.terms[i].MF.Membership(v.Clamp(x)), nil
}

// CheckCoverage verifies that every point of the universe (sampled at the
// given resolution, at least 2) has non-zero membership in at least one
// term. A partition with coverage holes silently produces zero firing
// strengths, so controllers should validate their variables at build time.
func (v *Variable) CheckCoverage(resolution int) error {
	if resolution < 2 {
		resolution = 2
	}
	step := (v.max - v.min) / float64(resolution-1)
	for i := 0; i < resolution; i++ {
		x := v.min + float64(i)*step
		covered := false
		for _, t := range v.terms {
			if t.MF.Membership(x) > 0 {
				covered = true
				break
			}
		}
		if !covered {
			return fmt.Errorf("fuzzy: variable %q has a coverage hole at %v", v.name, x)
		}
	}
	return nil
}

// HighestTerm returns the name of the term with the greatest membership at
// x, breaking ties towards the earliest declared term.
func (v *Variable) HighestTerm(x float64) string {
	best, bestDeg := "", math.Inf(-1)
	x = v.Clamp(x)
	for _, t := range v.terms {
		if d := t.MF.Membership(x); d > bestDeg {
			best, bestDeg = t.Name, d
		}
	}
	return best
}

// TermCentroid returns the centroid of the named term's membership function
// restricted to the variable's universe, computed by numeric integration at
// the given resolution (at least 2 samples). It is used by the
// weighted-average defuzzifier.
func (v *Variable) TermCentroid(term string, resolution int) (float64, error) {
	i, ok := v.index[term]
	if !ok {
		return 0, fmt.Errorf("fuzzy: variable %q has no term %q", v.name, term)
	}
	return v.termCentroidAt(i, resolution), nil
}

func (v *Variable) termCentroidAt(i, resolution int) float64 {
	if resolution < 2 {
		resolution = 2
	}
	mf := v.terms[i].MF
	step := (v.max - v.min) / float64(resolution-1)
	var num, den float64
	for k := 0; k < resolution; k++ {
		x := v.min + float64(k)*step
		m := mf.Membership(x)
		num += x * m
		den += m
	}
	if den == 0 {
		// Degenerate term (e.g. a singleton falling between samples):
		// fall back to the kernel midpoint clamped to the universe.
		lo, hi := mf.Kernel()
		return v.Clamp((lo + hi) / 2)
	}
	return num / den
}

// String returns a compact description such as "S[0,120]{Sl,M,Fa}".
func (v *Variable) String() string {
	names := make([]string, len(v.terms))
	for i, t := range v.terms {
		names[i] = t.Name
	}
	return fmt.Sprintf("%s[%g,%g]{%s}", v.name, v.min, v.max, strings.Join(names, ","))
}
