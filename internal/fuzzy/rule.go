package fuzzy

import (
	"fmt"
	"strings"
)

// Clause names one (variable, term) pair, e.g. {"S", "Sl"} for "S is Sl".
type Clause struct {
	Var  string
	Term string
}

// String renders the clause as "Var is Term".
func (c Clause) String() string { return c.Var + " is " + c.Term }

// Rule is a single fuzzy IF/THEN rule. All antecedent clauses are combined
// with AND (the engine's t-norm). Weight scales the firing strength; zero
// weight is replaced by one at compile time so that the zero value of the
// field means "unweighted".
type Rule struct {
	If     []Clause
	Then   Clause
	Weight float64
}

// String renders the rule in the textual form accepted by ParseRule.
func (r Rule) String() string {
	parts := make([]string, len(r.If))
	for i, c := range r.If {
		parts[i] = c.String()
	}
	s := "IF " + strings.Join(parts, " AND ") + " THEN " + r.Then.String()
	if r.Weight != 0 && r.Weight != 1 {
		s += fmt.Sprintf(" [%g]", r.Weight)
	}
	return s
}

// Validate performs structural checks that do not require the variables.
func (r Rule) Validate() error {
	if len(r.If) == 0 {
		return fmt.Errorf("fuzzy: rule %q has no antecedent", r.String())
	}
	for _, c := range r.If {
		if c.Var == "" || c.Term == "" {
			return fmt.Errorf("fuzzy: rule %q has an empty antecedent clause", r.String())
		}
	}
	if r.Then.Var == "" || r.Then.Term == "" {
		return fmt.Errorf("fuzzy: rule %q has an empty consequent", r.String())
	}
	if r.Weight < 0 || r.Weight > 1 {
		return fmt.Errorf("fuzzy: rule %q weight %g outside [0, 1]", r.String(), r.Weight)
	}
	return nil
}

// ParseRule parses a single textual rule of the form
//
//	IF S is Sl AND A is B1 AND D is N THEN Cv is Cv3 [0.8]
//
// The trailing bracketed weight is optional (default 1). Keywords IF, AND,
// THEN and "is" are case-insensitive; variable and term names are
// case-sensitive.
func ParseRule(text string) (Rule, error) {
	fields := strings.Fields(text)
	if len(fields) == 0 {
		return Rule{}, fmt.Errorf("fuzzy: empty rule text")
	}
	p := parser{fields: fields, text: text}
	return p.parse()
}

// MustParseRule is like ParseRule but panics on malformed input. It is
// intended for statically known rule tables.
func MustParseRule(text string) Rule {
	r, err := ParseRule(text)
	if err != nil {
		panic(err)
	}
	return r
}

// ParseRules parses a newline-separated list of rules. Blank lines and
// lines starting with '#' or "//" are ignored. The 1-based line number is
// included in error messages.
func ParseRules(text string) ([]Rule, error) {
	var rules []Rule
	for lineNo, line := range strings.Split(text, "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") || strings.HasPrefix(trimmed, "//") {
			continue
		}
		r, err := ParseRule(trimmed)
		if err != nil {
			return nil, fmt.Errorf("fuzzy: line %d: %w", lineNo+1, err)
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("fuzzy: no rules found")
	}
	return rules, nil
}

type parser struct {
	fields []string
	text   string
	pos    int
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("fuzzy: parsing %q: %s", p.text, fmt.Sprintf(format, args...))
}

func (p *parser) peek() (string, bool) {
	if p.pos >= len(p.fields) {
		return "", false
	}
	return p.fields[p.pos], true
}

func (p *parser) next() (string, bool) {
	tok, ok := p.peek()
	if ok {
		p.pos++
	}
	return tok, ok
}

func (p *parser) expectKeyword(kw string) error {
	tok, ok := p.next()
	if !ok {
		return p.errf("expected %q, got end of input", kw)
	}
	if !strings.EqualFold(tok, kw) {
		return p.errf("expected %q, got %q", kw, tok)
	}
	return nil
}

// clause parses "<var> is <term>".
func (p *parser) clause() (Clause, error) {
	v, ok := p.next()
	if !ok {
		return Clause{}, p.errf("expected a variable name, got end of input")
	}
	if isKeyword(v) {
		return Clause{}, p.errf("expected a variable name, got keyword %q", v)
	}
	if err := p.expectKeyword("is"); err != nil {
		return Clause{}, err
	}
	t, ok := p.next()
	if !ok {
		return Clause{}, p.errf("expected a term name, got end of input")
	}
	if isKeyword(t) {
		return Clause{}, p.errf("expected a term name, got keyword %q", t)
	}
	return Clause{Var: v, Term: t}, nil
}

func (p *parser) parse() (Rule, error) {
	if err := p.expectKeyword("IF"); err != nil {
		return Rule{}, err
	}
	var rule Rule
	for {
		c, err := p.clause()
		if err != nil {
			return Rule{}, err
		}
		rule.If = append(rule.If, c)
		tok, ok := p.peek()
		if !ok {
			return Rule{}, p.errf("expected AND or THEN, got end of input")
		}
		if strings.EqualFold(tok, "AND") {
			p.pos++
			continue
		}
		if strings.EqualFold(tok, "THEN") {
			p.pos++
			break
		}
		return Rule{}, p.errf("expected AND or THEN, got %q", tok)
	}
	then, err := p.clause()
	if err != nil {
		return Rule{}, err
	}
	rule.Then = then
	rule.Weight = 1
	if tok, ok := p.peek(); ok {
		if !strings.HasPrefix(tok, "[") || !strings.HasSuffix(tok, "]") {
			return Rule{}, p.errf("unexpected trailing token %q", tok)
		}
		var w float64
		if _, err := fmt.Sscanf(tok, "[%g]", &w); err != nil {
			return Rule{}, p.errf("malformed weight %q", tok)
		}
		if w < 0 || w > 1 {
			return Rule{}, p.errf("weight %g outside [0, 1]", w)
		}
		rule.Weight = w
		p.pos++
		if extra, ok := p.peek(); ok {
			return Rule{}, p.errf("unexpected trailing token %q", extra)
		}
	}
	return rule, nil
}

func isKeyword(tok string) bool {
	switch strings.ToUpper(tok) {
	case "IF", "AND", "THEN", "IS":
		return true
	}
	return false
}
