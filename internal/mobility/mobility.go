package mobility

import (
	"fmt"
	"math"
	"math/rand"

	"facs/internal/geo"
	"facs/internal/sim"
)

// State is the kinematic state of one mobile terminal.
type State struct {
	// Pos is the position in metres.
	Pos geo.Point
	// SpeedKmh is the scalar speed in km/h.
	SpeedKmh float64
	// HeadingDeg is the travel direction in degrees on (-180, 180].
	HeadingDeg float64
}

// Velocity returns the velocity vector in metres/second.
func (s State) Velocity() geo.Vector {
	return geo.UnitFromHeading(s.HeadingDeg).Scale(geo.KmhToMps(s.SpeedKmh))
}

// Model advances the kinematic state of a single terminal. Implementations
// are stateful and not safe for concurrent use; each terminal owns one.
type Model interface {
	// State returns the current kinematic state.
	State() State
	// Step advances the model by dt seconds and returns the new state.
	// Non-positive dt leaves the state unchanged.
	Step(dt float64) State
}

// Rect is an axis-aligned rectangular region in metres.
type Rect struct {
	MinX, MinY float64
	MaxX, MaxY float64
}

// NewRect validates and constructs a region.
func NewRect(minX, minY, maxX, maxY float64) (Rect, error) {
	if math.IsNaN(minX) || math.IsNaN(minY) || math.IsNaN(maxX) || math.IsNaN(maxY) {
		return Rect{}, fmt.Errorf("mobility: rect bounds must not be NaN")
	}
	if minX >= maxX || minY >= maxY {
		return Rect{}, fmt.Errorf("mobility: rect [%v,%v]x[%v,%v] is empty", minX, maxX, minY, maxY)
	}
	return Rect{MinX: minX, MinY: minY, MaxX: maxX, MaxY: maxY}, nil
}

// Contains reports whether p lies inside the region (inclusive).
func (r Rect) Contains(p geo.Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// Clamp restricts p to the region.
func (r Rect) Clamp(p geo.Point) geo.Point {
	return geo.Point{
		X: math.Min(math.Max(p.X, r.MinX), r.MaxX),
		Y: math.Min(math.Max(p.Y, r.MinY), r.MaxY),
	}
}

// RandomPoint draws a uniform point inside the region.
func (r Rect) RandomPoint(rng *rand.Rand) geo.Point {
	return geo.Point{
		X: sim.Uniform(rng, r.MinX, r.MaxX),
		Y: sim.Uniform(rng, r.MinY, r.MaxY),
	}
}

// ConstantVelocity moves in a straight line at fixed speed and heading.
type ConstantVelocity struct {
	state State
}

var _ Model = (*ConstantVelocity)(nil)

// NewConstantVelocity constructs a straight-line mover.
func NewConstantVelocity(start geo.Point, speedKmh, headingDeg float64) (*ConstantVelocity, error) {
	if math.IsNaN(speedKmh) || speedKmh < 0 {
		return nil, fmt.Errorf("mobility: speed must be >= 0 km/h, got %v", speedKmh)
	}
	return &ConstantVelocity{state: State{
		Pos:        start,
		SpeedKmh:   speedKmh,
		HeadingDeg: geo.NormalizeDeg(headingDeg),
	}}, nil
}

// State implements Model.
func (m *ConstantVelocity) State() State { return m.state }

// Step implements Model.
func (m *ConstantVelocity) Step(dt float64) State {
	if dt > 0 {
		m.state.Pos = geo.Move(m.state.Pos, m.state.HeadingDeg, geo.KmhToMps(m.state.SpeedKmh)*dt)
	}
	return m.state
}

// TurningConfig parameterises the speed-dependent turning walk.
type TurningConfig struct {
	// TurnSigmaDeg is the per-sqrt-second standard deviation of heading
	// change for a (hypothetically) stationary user. Default 40°.
	TurnSigmaDeg float64
	// RefSpeedKmh controls how quickly turning calms down with speed: the
	// effective sigma is TurnSigmaDeg / (1 + speed/RefSpeedKmh).
	// Default 15 km/h, so a 60 km/h vehicle turns 5x less than a walker.
	RefSpeedKmh float64
	// Region, when non-zero, bounds the walk; the walker reflects off the
	// region border.
	Region Rect
}

func (c TurningConfig) withDefaults() TurningConfig {
	if c.TurnSigmaDeg == 0 {
		c.TurnSigmaDeg = 40
	}
	if c.RefSpeedKmh == 0 {
		c.RefSpeedKmh = 15
	}
	return c
}

// Validate checks the configuration.
func (c TurningConfig) Validate() error {
	if math.IsNaN(c.TurnSigmaDeg) || c.TurnSigmaDeg < 0 {
		return fmt.Errorf("mobility: turn sigma must be >= 0, got %v", c.TurnSigmaDeg)
	}
	if math.IsNaN(c.RefSpeedKmh) || c.RefSpeedKmh <= 0 {
		return fmt.Errorf("mobility: reference speed must be > 0, got %v", c.RefSpeedKmh)
	}
	return nil
}

// TurningWalk is a bounded-heading random walk: each step perturbs the
// heading by a zero-mean Gaussian whose deviation shrinks as speed grows.
// This reproduces the paper's observation that "when the user speed is
// slow (walking users) the prediction of the user direction becomes
// difficult, because the users can change their direction".
type TurningWalk struct {
	cfg     TurningConfig
	rng     *rand.Rand
	state   State
	bounded bool
}

var _ Model = (*TurningWalk)(nil)

// NewTurningWalk constructs a turning walk starting from the given state.
func NewTurningWalk(start State, cfg TurningConfig, rng *rand.Rand) (*TurningWalk, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("mobility: rng must not be nil")
	}
	if math.IsNaN(start.SpeedKmh) || start.SpeedKmh < 0 {
		return nil, fmt.Errorf("mobility: speed must be >= 0 km/h, got %v", start.SpeedKmh)
	}
	start.HeadingDeg = geo.NormalizeDeg(start.HeadingDeg)
	bounded := cfg.Region != Rect{}
	if bounded && !cfg.Region.Contains(start.Pos) {
		return nil, fmt.Errorf("mobility: start %v outside region %+v", start.Pos, cfg.Region)
	}
	return &TurningWalk{cfg: cfg, rng: rng, state: start, bounded: bounded}, nil
}

// State implements Model.
func (m *TurningWalk) State() State { return m.state }

// EffectiveTurnSigma returns the heading deviation (degrees per sqrt
// second) at the walker's current speed.
func (m *TurningWalk) EffectiveTurnSigma() float64 {
	return m.cfg.TurnSigmaDeg / (1 + m.state.SpeedKmh/m.cfg.RefSpeedKmh)
}

// Step implements Model.
func (m *TurningWalk) Step(dt float64) State {
	if dt <= 0 {
		return m.state
	}
	sigma := m.EffectiveTurnSigma() * math.Sqrt(dt)
	m.state.HeadingDeg = geo.NormalizeDeg(m.state.HeadingDeg + sim.Normal(m.rng, 0, sigma))
	next := geo.Move(m.state.Pos, m.state.HeadingDeg, geo.KmhToMps(m.state.SpeedKmh)*dt)
	if m.bounded && !m.cfg.Region.Contains(next) {
		// Reflect: turn back towards the region centre and clamp.
		centre := geo.Point{
			X: (m.cfg.Region.MinX + m.cfg.Region.MaxX) / 2,
			Y: (m.cfg.Region.MinY + m.cfg.Region.MaxY) / 2,
		}
		m.state.HeadingDeg = geo.BearingDeg(next, centre)
		next = m.cfg.Region.Clamp(next)
	}
	m.state.Pos = next
	return m.state
}

// WaypointConfig parameterises the random waypoint model.
type WaypointConfig struct {
	// Region bounds the waypoints. Required.
	Region Rect
	// SpeedMinKmh and SpeedMaxKmh bound the per-leg speed draw.
	SpeedMinKmh float64
	SpeedMaxKmh float64
	// PauseMeanSec is the mean pause at each waypoint (exponential);
	// zero disables pausing.
	PauseMeanSec float64
}

// Validate checks the configuration.
func (c WaypointConfig) Validate() error {
	if c.Region == (Rect{}) {
		return fmt.Errorf("mobility: waypoint model requires a region")
	}
	if math.IsNaN(c.SpeedMinKmh) || c.SpeedMinKmh <= 0 {
		return fmt.Errorf("mobility: min speed must be > 0, got %v", c.SpeedMinKmh)
	}
	if math.IsNaN(c.SpeedMaxKmh) || c.SpeedMaxKmh < c.SpeedMinKmh {
		return fmt.Errorf("mobility: max speed %v below min speed %v", c.SpeedMaxKmh, c.SpeedMinKmh)
	}
	if math.IsNaN(c.PauseMeanSec) || c.PauseMeanSec < 0 {
		return fmt.Errorf("mobility: pause mean must be >= 0, got %v", c.PauseMeanSec)
	}
	return nil
}

// RandomWaypoint is the classic random-waypoint model: pick a uniform
// destination in the region, travel to it in a straight line at a uniform
// random speed, optionally pause, repeat.
type RandomWaypoint struct {
	cfg       WaypointConfig
	rng       *rand.Rand
	state     State
	target    geo.Point
	pauseLeft float64
}

var _ Model = (*RandomWaypoint)(nil)

// NewRandomWaypoint constructs a random-waypoint mover starting at start
// (clamped into the region).
func NewRandomWaypoint(start geo.Point, cfg WaypointConfig, rng *rand.Rand) (*RandomWaypoint, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("mobility: rng must not be nil")
	}
	m := &RandomWaypoint{cfg: cfg, rng: rng}
	m.state.Pos = cfg.Region.Clamp(start)
	m.pickLeg()
	return m, nil
}

func (m *RandomWaypoint) pickLeg() {
	m.target = m.cfg.Region.RandomPoint(m.rng)
	m.state.SpeedKmh = sim.Uniform(m.rng, m.cfg.SpeedMinKmh, m.cfg.SpeedMaxKmh)
	m.state.HeadingDeg = geo.BearingDeg(m.state.Pos, m.target)
}

// State implements Model.
func (m *RandomWaypoint) State() State { return m.state }

// Target returns the current waypoint.
func (m *RandomWaypoint) Target() geo.Point { return m.target }

// Step implements Model.
func (m *RandomWaypoint) Step(dt float64) State {
	for dt > 0 {
		if m.pauseLeft > 0 {
			used := math.Min(dt, m.pauseLeft)
			m.pauseLeft -= used
			dt -= used
			continue
		}
		speedMps := geo.KmhToMps(m.state.SpeedKmh)
		remaining := m.state.Pos.DistanceTo(m.target)
		if speedMps <= 0 {
			break
		}
		timeToTarget := remaining / speedMps
		if timeToTarget > dt {
			m.state.Pos = geo.Move(m.state.Pos, m.state.HeadingDeg, speedMps*dt)
			return m.state
		}
		m.state.Pos = m.target
		dt -= timeToTarget
		if m.cfg.PauseMeanSec > 0 {
			m.pauseLeft = sim.Exponential(m.rng, m.cfg.PauseMeanSec)
		}
		m.pickLeg()
	}
	return m.state
}

// Trace samples a model every dt seconds for n steps, returning n+1 states
// including the initial one. It is the bridge to the GPS substrate.
func Trace(m Model, dt float64, n int) []State {
	if n < 0 || dt <= 0 || math.IsNaN(dt) {
		return []State{m.State()}
	}
	out := make([]State, 0, n+1)
	out = append(out, m.State())
	for i := 0; i < n; i++ {
		out = append(out, m.Step(dt))
	}
	return out
}
