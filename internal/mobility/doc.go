// Package mobility provides the user-movement models that drive the
// simulation: constant velocity, a speed-dependent turning walk (the
// mechanism behind the paper's Fig. 7 — walking users change direction
// easily, fast users do not), and random waypoint. Models are stateful,
// per-terminal objects advanced in discrete time steps; all randomness
// comes from the caller-supplied RNG stream, so runs are deterministic
// per seed.
//
// Entry points: the Model interface and its constructors
// (NewConstantVelocity, NewTurningWalk, NewRandomWaypoint).
package mobility
