package mobility

import (
	"math"
	"testing"

	"facs/internal/geo"
	"facs/internal/sim"
)

func TestNewRect(t *testing.T) {
	if _, err := NewRect(0, 0, 10, 10); err != nil {
		t.Fatalf("valid rect: %v", err)
	}
	for _, tc := range [][4]float64{
		{10, 0, 0, 10},
		{0, 10, 10, 0},
		{0, 0, 0, 10},
		{math.NaN(), 0, 10, 10},
	} {
		if _, err := NewRect(tc[0], tc[1], tc[2], tc[3]); err == nil {
			t.Fatalf("rect %v should be invalid", tc)
		}
	}
}

func TestRectContainsClampRandom(t *testing.T) {
	r, err := NewRect(-10, -20, 10, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Contains(geo.Point{X: 0, Y: 0}) || !r.Contains(geo.Point{X: 10, Y: 20}) {
		t.Fatal("Contains failed for interior/border points")
	}
	if r.Contains(geo.Point{X: 11, Y: 0}) || r.Contains(geo.Point{X: 0, Y: -21}) {
		t.Fatal("Contains accepted exterior points")
	}
	if got := r.Clamp(geo.Point{X: 100, Y: -100}); got != (geo.Point{X: 10, Y: -20}) {
		t.Fatalf("Clamp = %v", got)
	}
	rng := sim.NewRNG(1)
	for i := 0; i < 1000; i++ {
		if p := r.RandomPoint(rng); !r.Contains(p) {
			t.Fatalf("RandomPoint outside region: %v", p)
		}
	}
}

func TestConstantVelocity(t *testing.T) {
	m, err := NewConstantVelocity(geo.Point{X: 0, Y: 0}, 36, 90) // 36 km/h = 10 m/s heading north
	if err != nil {
		t.Fatal(err)
	}
	st := m.Step(10)
	if !approx(st.Pos.X, 0, 1e-9) || !approx(st.Pos.Y, 100, 1e-9) {
		t.Fatalf("after 10s at 10 m/s north: %v", st.Pos)
	}
	if st.SpeedKmh != 36 || st.HeadingDeg != 90 {
		t.Fatalf("state changed: %+v", st)
	}
	// Zero and negative dt are no-ops.
	if got := m.Step(0); got.Pos != st.Pos {
		t.Fatal("Step(0) moved")
	}
	if got := m.Step(-5); got.Pos != st.Pos {
		t.Fatal("Step(-5) moved")
	}
	if _, err := NewConstantVelocity(geo.Point{}, -1, 0); err == nil {
		t.Fatal("negative speed should error")
	}
}

func TestConstantVelocityNormalizesHeading(t *testing.T) {
	m, err := NewConstantVelocity(geo.Point{}, 10, 540)
	if err != nil {
		t.Fatal(err)
	}
	if m.State().HeadingDeg != 180 {
		t.Fatalf("heading = %v, want 180", m.State().HeadingDeg)
	}
}

func TestTurningWalkValidation(t *testing.T) {
	rng := sim.NewRNG(1)
	ok := State{Pos: geo.Point{X: 0, Y: 0}, SpeedKmh: 4, HeadingDeg: 0}
	if _, err := NewTurningWalk(ok, TurningConfig{}, rng); err != nil {
		t.Fatalf("defaults should be valid: %v", err)
	}
	if _, err := NewTurningWalk(ok, TurningConfig{}, nil); err == nil {
		t.Fatal("nil rng should error")
	}
	if _, err := NewTurningWalk(State{SpeedKmh: -1}, TurningConfig{}, rng); err == nil {
		t.Fatal("negative speed should error")
	}
	if _, err := NewTurningWalk(ok, TurningConfig{TurnSigmaDeg: -1}, rng); err == nil {
		t.Fatal("negative sigma should error")
	}
	if _, err := NewTurningWalk(ok, TurningConfig{RefSpeedKmh: -5}, rng); err == nil {
		t.Fatal("negative ref speed should error")
	}
	region, _ := NewRect(100, 100, 200, 200)
	if _, err := NewTurningWalk(ok, TurningConfig{Region: region}, rng); err == nil {
		t.Fatal("start outside region should error")
	}
}

func TestTurningWalkSpeedDependence(t *testing.T) {
	rng := sim.NewRNG(2)
	slow, err := NewTurningWalk(State{SpeedKmh: 4}, TurningConfig{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := NewTurningWalk(State{SpeedKmh: 60}, TurningConfig{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if slow.EffectiveTurnSigma() <= fast.EffectiveTurnSigma() {
		t.Fatalf("walking users must turn more: slow=%v fast=%v",
			slow.EffectiveTurnSigma(), fast.EffectiveTurnSigma())
	}
	// Empirically: the mean per-step heading change is larger for walkers.
	meanAbsTurn := func(speed float64, seed int64) float64 {
		m, err := NewTurningWalk(State{SpeedKmh: speed}, TurningConfig{}, sim.NewRNG(seed))
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		const n = 2000
		prev := m.State().HeadingDeg
		for i := 0; i < n; i++ {
			h := m.Step(1).HeadingDeg
			sum += geo.AbsAngleDiffDeg(h, prev)
			prev = h
		}
		return sum / n
	}
	if meanAbsTurn(4, 3) <= 2*meanAbsTurn(60, 3) {
		t.Fatal("walkers should turn much more per step than vehicles")
	}
}

func TestTurningWalkStaysInRegion(t *testing.T) {
	region, _ := NewRect(-500, -500, 500, 500)
	m, err := NewTurningWalk(
		State{Pos: geo.Point{X: 0, Y: 0}, SpeedKmh: 120, HeadingDeg: 0},
		TurningConfig{Region: region},
		sim.NewRNG(4),
	)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		if st := m.Step(1); !region.Contains(st.Pos) {
			t.Fatalf("escaped region at step %d: %v", i, st.Pos)
		}
	}
}

func TestTurningWalkZeroDt(t *testing.T) {
	m, err := NewTurningWalk(State{SpeedKmh: 10}, TurningConfig{}, sim.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	before := m.State()
	if got := m.Step(0); got != before {
		t.Fatal("Step(0) should not change state")
	}
}

func TestWaypointConfigValidate(t *testing.T) {
	region, _ := NewRect(0, 0, 1000, 1000)
	ok := WaypointConfig{Region: region, SpeedMinKmh: 4, SpeedMaxKmh: 60}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid config: %v", err)
	}
	bad := []WaypointConfig{
		{SpeedMinKmh: 4, SpeedMaxKmh: 60},                                   // no region
		{Region: region, SpeedMinKmh: 0, SpeedMaxKmh: 60},                   // zero min speed
		{Region: region, SpeedMinKmh: 60, SpeedMaxKmh: 4},                   // inverted speeds
		{Region: region, SpeedMinKmh: 4, SpeedMaxKmh: 60, PauseMeanSec: -1}, // negative pause
		{Region: region, SpeedMinKmh: math.NaN(), SpeedMaxKmh: 60},          // NaN speed
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("config %d should be invalid", i)
		}
	}
}

func TestRandomWaypointReachesTargets(t *testing.T) {
	region, _ := NewRect(0, 0, 1000, 1000)
	m, err := NewRandomWaypoint(geo.Point{X: 500, Y: 500},
		WaypointConfig{Region: region, SpeedMinKmh: 10, SpeedMaxKmh: 30}, sim.NewRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	first := m.Target()
	changed := false
	for i := 0; i < 10000; i++ {
		st := m.Step(5)
		if !region.Contains(st.Pos) {
			t.Fatalf("left region: %v", st.Pos)
		}
		if m.Target() != first {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("never reached the first waypoint")
	}
}

func TestRandomWaypointHeadingTracksTarget(t *testing.T) {
	region, _ := NewRect(0, 0, 1000, 1000)
	m, err := NewRandomWaypoint(geo.Point{X: 0, Y: 0},
		WaypointConfig{Region: region, SpeedMinKmh: 5, SpeedMaxKmh: 5}, sim.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	st := m.State()
	want := geo.BearingDeg(st.Pos, m.Target())
	if !approx(st.HeadingDeg, want, 1e-9) {
		t.Fatalf("heading = %v, want bearing to target %v", st.HeadingDeg, want)
	}
}

func TestRandomWaypointErrors(t *testing.T) {
	region, _ := NewRect(0, 0, 10, 10)
	cfg := WaypointConfig{Region: region, SpeedMinKmh: 1, SpeedMaxKmh: 2}
	if _, err := NewRandomWaypoint(geo.Point{}, cfg, nil); err == nil {
		t.Fatal("nil rng should error")
	}
	if _, err := NewRandomWaypoint(geo.Point{}, WaypointConfig{}, sim.NewRNG(1)); err == nil {
		t.Fatal("invalid config should error")
	}
}

func TestTrace(t *testing.T) {
	m, err := NewConstantVelocity(geo.Point{X: 0, Y: 0}, 36, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr := Trace(m, 1, 10)
	if len(tr) != 11 {
		t.Fatalf("Trace len = %d, want 11", len(tr))
	}
	if tr[0].Pos != (geo.Point{X: 0, Y: 0}) {
		t.Fatal("trace must start at the initial state")
	}
	for i := 1; i < len(tr); i++ {
		want := float64(i) * 10 // 10 m/s
		if !approx(tr[i].Pos.X, want, 1e-9) {
			t.Fatalf("trace[%d].X = %v, want %v", i, tr[i].Pos.X, want)
		}
	}
	if got := Trace(m, 0, 5); len(got) != 1 {
		t.Fatal("non-positive dt should return only the current state")
	}
	if got := Trace(m, 1, -1); len(got) != 1 {
		t.Fatal("negative n should return only the current state")
	}
}

func TestStateVelocity(t *testing.T) {
	st := State{SpeedKmh: 36, HeadingDeg: 90}
	v := st.Velocity()
	if !approx(v.DX, 0, 1e-9) || !approx(v.DY, 10, 1e-9) {
		t.Fatalf("Velocity = %v, want (0, 10)", v)
	}
}

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
