package geo

import (
	"fmt"
	"math"
)

// Point is a position in the plane, in metres.
type Point struct {
	X float64
	Y float64
}

// Add returns p translated by v.
func (p Point) Add(v Vector) Point { return Point{p.X + v.DX, p.Y + v.DY} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Vector { return Vector{p.X - q.X, p.Y - q.Y} }

// DistanceTo returns the Euclidean distance from p to q in metres.
func (p Point) DistanceTo(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.1f, %.1f)", p.X, p.Y) }

// Vector is a displacement in the plane, in metres.
type Vector struct {
	DX float64
	DY float64
}

// Add returns the component-wise sum of v and w.
func (v Vector) Add(w Vector) Vector { return Vector{v.DX + w.DX, v.DY + w.DY} }

// Scale returns v scaled by k.
func (v Vector) Scale(k float64) Vector { return Vector{v.DX * k, v.DY * k} }

// Length returns the Euclidean norm of v in metres.
func (v Vector) Length() float64 { return math.Hypot(v.DX, v.DY) }

// Dot returns the dot product of v and w.
func (v Vector) Dot(w Vector) float64 { return v.DX*w.DX + v.DY*w.DY }

// HeadingDeg returns the direction of v in degrees, measured
// counter-clockwise from the +X axis and normalised to (-180, 180].
// The zero vector has heading 0.
func (v Vector) HeadingDeg() float64 {
	if v.DX == 0 && v.DY == 0 {
		return 0
	}
	return NormalizeDeg(math.Atan2(v.DY, v.DX) * 180 / math.Pi)
}

// UnitFromHeading returns the unit vector pointing along headingDeg.
func UnitFromHeading(headingDeg float64) Vector {
	rad := headingDeg * math.Pi / 180
	return Vector{math.Cos(rad), math.Sin(rad)}
}

// Move returns p displaced by dist metres along headingDeg.
func Move(p Point, headingDeg, dist float64) Point {
	return p.Add(UnitFromHeading(headingDeg).Scale(dist))
}

// BearingDeg returns the heading of the straight line from "from" to "to"
// in degrees on (-180, 180]. Coincident points yield 0.
func BearingDeg(from, to Point) float64 {
	return to.Sub(from).HeadingDeg()
}
