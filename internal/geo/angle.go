package geo

import "math"

// NormalizeDeg wraps an angle in degrees to the half-open interval
// (-180, 180]. NaN is passed through unchanged.
func NormalizeDeg(a float64) float64 {
	if math.IsNaN(a) || math.IsInf(a, 0) {
		return a
	}
	a = math.Mod(a, 360)
	switch {
	case a > 180:
		return a - 360
	case a <= -180:
		return a + 360
	default:
		return a
	}
}

// AngleDiffDeg returns the signed smallest rotation from angle b to angle a
// in degrees, normalised to (-180, 180]. A positive result means a lies
// counter-clockwise of b.
func AngleDiffDeg(a, b float64) float64 {
	return NormalizeDeg(a - b)
}

// AbsAngleDiffDeg returns the magnitude of the smallest rotation between
// two angles, in [0, 180].
func AbsAngleDiffDeg(a, b float64) float64 {
	return math.Abs(AngleDiffDeg(a, b))
}

// DegToRad converts degrees to radians.
func DegToRad(d float64) float64 { return d * math.Pi / 180 }

// RadToDeg converts radians to degrees.
func RadToDeg(r float64) float64 { return r * 180 / math.Pi }

// KmhToMps converts a speed in km/h to m/s.
func KmhToMps(kmh float64) float64 { return kmh / 3.6 }

// MpsToKmh converts a speed in m/s to km/h.
func MpsToKmh(mps float64) float64 { return mps * 3.6 }

// KmToM converts kilometres to metres.
func KmToM(km float64) float64 { return km * 1000 }

// MToKm converts metres to kilometres.
func MToKm(m float64) float64 { return m / 1000 }
