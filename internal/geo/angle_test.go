package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalizeDeg(t *testing.T) {
	tests := []struct {
		in, want float64
	}{
		{0, 0},
		{180, 180},
		{-180, 180},
		{181, -179},
		{-181, 179},
		{360, 0},
		{540, 180},
		{-540, 180},
		{720, 0},
		{45, 45},
		{-45, -45},
		{1e6, NormalizeDeg(math.Mod(1e6, 360))},
	}
	for _, tc := range tests {
		if got := NormalizeDeg(tc.in); !approx(got, tc.want, 1e-9) {
			t.Errorf("NormalizeDeg(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
	if got := NormalizeDeg(math.NaN()); !math.IsNaN(got) {
		t.Errorf("NormalizeDeg(NaN) = %v, want NaN", got)
	}
}

func TestAngleDiffDeg(t *testing.T) {
	tests := []struct {
		a, b, want float64
	}{
		{10, 350, 20},
		{350, 10, -20},
		{90, -90, 180},
		{0, 0, 0},
		{-170, 170, 20},
	}
	for _, tc := range tests {
		if got := AngleDiffDeg(tc.a, tc.b); !approx(got, tc.want, 1e-9) {
			t.Errorf("AngleDiffDeg(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestAbsAngleDiffDeg(t *testing.T) {
	if got := AbsAngleDiffDeg(350, 10); got != 20 {
		t.Fatalf("AbsAngleDiffDeg = %v, want 20", got)
	}
	if got := AbsAngleDiffDeg(10, 350); got != 20 {
		t.Fatalf("AbsAngleDiffDeg = %v, want 20", got)
	}
}

func TestUnitConversions(t *testing.T) {
	tests := []struct {
		name      string
		got, want float64
	}{
		{"KmhToMps(36)", KmhToMps(36), 10},
		{"MpsToKmh(10)", MpsToKmh(10), 36},
		{"KmToM(1.5)", KmToM(1.5), 1500},
		{"MToKm(250)", MToKm(250), 0.25},
		{"DegToRad(180)", DegToRad(180), math.Pi},
		{"RadToDeg(pi/2)", RadToDeg(math.Pi / 2), 90},
	}
	for _, tc := range tests {
		if !approx(tc.got, tc.want, 1e-12) {
			t.Errorf("%s = %v, want %v", tc.name, tc.got, tc.want)
		}
	}
}

// Property: NormalizeDeg output is always in (-180, 180] and is idempotent.
func TestNormalizeDegProperty(t *testing.T) {
	prop := func(a float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) {
			return true
		}
		n := NormalizeDeg(a)
		if n <= -180 || n > 180 {
			return false
		}
		return NormalizeDeg(n) == n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Property: speed conversions invert each other.
func TestSpeedConversionRoundTripProperty(t *testing.T) {
	prop := func(v float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		v = math.Mod(v, 1e9)
		return approx(MpsToKmh(KmhToMps(v)), v, math.Abs(v)*1e-12+1e-12)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
