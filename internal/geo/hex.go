package geo

import (
	"fmt"
	"math"
)

// Hex is an axial coordinate on a pointy-top hexagonal grid. The implicit
// third cube coordinate is S() = -Q-R. Cellular layouts use one hex per
// radio cell.
type Hex struct {
	Q int
	R int
}

// S returns the derived third cube coordinate.
func (h Hex) S() int { return -h.Q - h.R }

// Add returns the component-wise sum of two hexes.
func (h Hex) Add(o Hex) Hex { return Hex{h.Q + o.Q, h.R + o.R} }

// Sub returns the component-wise difference of two hexes.
func (h Hex) Sub(o Hex) Hex { return Hex{h.Q - o.Q, h.R - o.R} }

// Scale multiplies both coordinates by k.
func (h Hex) Scale(k int) Hex { return Hex{h.Q * k, h.R * k} }

// String implements fmt.Stringer.
func (h Hex) String() string { return fmt.Sprintf("hex(%d,%d)", h.Q, h.R) }

// hexDirections lists the six axial neighbour offsets in counter-clockwise
// order starting from "east".
var hexDirections = [6]Hex{
	{1, 0}, {1, -1}, {0, -1}, {-1, 0}, {-1, 1}, {0, 1},
}

// Direction returns the i-th (mod 6) neighbour offset.
func Direction(i int) Hex {
	i %= 6
	if i < 0 {
		i += 6
	}
	return hexDirections[i]
}

// Neighbors returns the six adjacent hexes in counter-clockwise order.
func (h Hex) Neighbors() [6]Hex {
	var out [6]Hex
	for i, d := range hexDirections {
		out[i] = h.Add(d)
	}
	return out
}

// DistanceTo returns the hex-grid distance (minimum number of steps)
// between two hexes.
func (h Hex) DistanceTo(o Hex) int {
	d := h.Sub(o)
	return (abs(d.Q) + abs(d.R) + abs(d.S())) / 2
}

// Ring returns the hexes at exactly radius steps from h, counter-clockwise.
// Radius 0 returns just h; negative radii return nil.
func (h Hex) Ring(radius int) []Hex {
	if radius < 0 {
		return nil
	}
	if radius == 0 {
		return []Hex{h}
	}
	out := make([]Hex, 0, 6*radius)
	cur := h.Add(Direction(4).Scale(radius))
	for side := 0; side < 6; side++ {
		for step := 0; step < radius; step++ {
			out = append(out, cur)
			cur = cur.Add(Direction(side))
		}
	}
	return out
}

// Spiral returns all hexes within radius steps of h: h itself followed by
// rings of increasing radius. It contains 1+3·r·(r+1) hexes.
func (h Hex) Spiral(radius int) []Hex {
	if radius < 0 {
		return nil
	}
	out := make([]Hex, 0, 1+3*radius*(radius+1))
	for r := 0; r <= radius; r++ {
		out = append(out, h.Ring(r)...)
	}
	return out
}

// Layout converts between hex coordinates and plane positions for a
// pointy-top grid. CellRadius is the centre-to-corner distance of one hex
// in metres; Origin is the plane position of hex (0,0).
type Layout struct {
	CellRadius float64
	Origin     Point
}

// NewLayout validates and constructs a layout.
func NewLayout(cellRadius float64, origin Point) (Layout, error) {
	if math.IsNaN(cellRadius) || cellRadius <= 0 {
		return Layout{}, fmt.Errorf("geo: cell radius must be positive, got %v", cellRadius)
	}
	return Layout{CellRadius: cellRadius, Origin: origin}, nil
}

// Center returns the plane position of the centre of hex h.
func (l Layout) Center(h Hex) Point {
	x := l.CellRadius * math.Sqrt(3) * (float64(h.Q) + float64(h.R)/2)
	y := l.CellRadius * 1.5 * float64(h.R)
	return Point{l.Origin.X + x, l.Origin.Y + y}
}

// HexAt returns the hex containing plane position p, using cube rounding.
func (l Layout) HexAt(p Point) Hex {
	x := (p.X - l.Origin.X) / l.CellRadius
	y := (p.Y - l.Origin.Y) / l.CellRadius
	q := math.Sqrt(3)/3*x - y/3
	r := 2.0 / 3 * y
	return cubeRound(q, r)
}

// cubeRound converts fractional axial coordinates to the nearest hex.
func cubeRound(qf, rf float64) Hex {
	sf := -qf - rf
	q := math.Round(qf)
	r := math.Round(rf)
	s := math.Round(sf)
	dq := math.Abs(q - qf)
	dr := math.Abs(r - rf)
	ds := math.Abs(s - sf)
	switch {
	case dq > dr && dq > ds:
		q = -r - s
	case dr > ds:
		r = -q - s
	}
	return Hex{int(q), int(r)}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
