package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHexBasics(t *testing.T) {
	h := Hex{2, -1}
	if h.S() != -1 {
		t.Fatalf("S = %d, want -1", h.S())
	}
	if got := h.Add(Hex{1, 1}); got != (Hex{3, 0}) {
		t.Fatalf("Add = %v", got)
	}
	if got := h.Sub(Hex{2, -1}); got != (Hex{0, 0}) {
		t.Fatalf("Sub = %v", got)
	}
	if got := h.Scale(3); got != (Hex{6, -3}) {
		t.Fatalf("Scale = %v", got)
	}
	if got := h.String(); got != "hex(2,-1)" {
		t.Fatalf("String = %q", got)
	}
}

func TestHexNeighbors(t *testing.T) {
	origin := Hex{0, 0}
	n := origin.Neighbors()
	if len(n) != 6 {
		t.Fatalf("want 6 neighbours")
	}
	seen := map[Hex]bool{}
	for _, h := range n {
		if origin.DistanceTo(h) != 1 {
			t.Fatalf("neighbour %v at distance %d, want 1", h, origin.DistanceTo(h))
		}
		if seen[h] {
			t.Fatalf("duplicate neighbour %v", h)
		}
		seen[h] = true
	}
}

func TestDirectionWrapsModulo(t *testing.T) {
	if Direction(6) != Direction(0) {
		t.Fatal("Direction(6) should equal Direction(0)")
	}
	if Direction(-1) != Direction(5) {
		t.Fatal("Direction(-1) should equal Direction(5)")
	}
}

func TestHexDistance(t *testing.T) {
	tests := []struct {
		a, b Hex
		want int
	}{
		{Hex{0, 0}, Hex{0, 0}, 0},
		{Hex{0, 0}, Hex{1, 0}, 1},
		{Hex{0, 0}, Hex{2, -1}, 2},
		{Hex{0, 0}, Hex{-3, 3}, 3},
		{Hex{1, 1}, Hex{-1, -1}, 4},
	}
	for _, tc := range tests {
		if got := tc.a.DistanceTo(tc.b); got != tc.want {
			t.Errorf("DistanceTo(%v, %v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
		if got := tc.b.DistanceTo(tc.a); got != tc.want {
			t.Errorf("distance not symmetric for %v,%v", tc.a, tc.b)
		}
	}
}

func TestRingAndSpiral(t *testing.T) {
	origin := Hex{0, 0}
	if got := origin.Ring(0); len(got) != 1 || got[0] != origin {
		t.Fatalf("Ring(0) = %v", got)
	}
	if got := origin.Ring(-1); got != nil {
		t.Fatalf("Ring(-1) = %v, want nil", got)
	}
	for radius := 1; radius <= 4; radius++ {
		ring := origin.Ring(radius)
		if len(ring) != 6*radius {
			t.Fatalf("Ring(%d) has %d hexes, want %d", radius, len(ring), 6*radius)
		}
		for _, h := range ring {
			if origin.DistanceTo(h) != radius {
				t.Fatalf("Ring(%d) contains %v at distance %d", radius, h, origin.DistanceTo(h))
			}
		}
	}
	for radius := 0; radius <= 4; radius++ {
		spiral := origin.Spiral(radius)
		want := 1 + 3*radius*(radius+1)
		if len(spiral) != want {
			t.Fatalf("Spiral(%d) has %d hexes, want %d", radius, len(spiral), want)
		}
		seen := map[Hex]bool{}
		for _, h := range spiral {
			if seen[h] {
				t.Fatalf("Spiral(%d) duplicates %v", radius, h)
			}
			seen[h] = true
		}
	}
	if got := origin.Spiral(-2); got != nil {
		t.Fatalf("Spiral(-2) = %v, want nil", got)
	}
}

func TestNewLayoutValidation(t *testing.T) {
	if _, err := NewLayout(0, Point{}); err == nil {
		t.Fatal("zero radius should error")
	}
	if _, err := NewLayout(-5, Point{}); err == nil {
		t.Fatal("negative radius should error")
	}
	if _, err := NewLayout(math.NaN(), Point{}); err == nil {
		t.Fatal("NaN radius should error")
	}
	if _, err := NewLayout(1000, Point{}); err != nil {
		t.Fatalf("valid layout: %v", err)
	}
}

func TestLayoutRoundTrip(t *testing.T) {
	layout, err := NewLayout(1000, Point{500, -250})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range (Hex{0, 0}).Spiral(5) {
		if got := layout.HexAt(layout.Center(h)); got != h {
			t.Fatalf("HexAt(Center(%v)) = %v", h, got)
		}
	}
}

func TestLayoutCenterSpacing(t *testing.T) {
	layout, _ := NewLayout(1000, Point{})
	c0 := layout.Center(Hex{0, 0})
	for _, n := range (Hex{0, 0}).Neighbors() {
		d := c0.DistanceTo(layout.Center(n))
		// Adjacent pointy-top hex centres are sqrt(3)*radius apart.
		if !approx(d, math.Sqrt(3)*1000, 1e-6) {
			t.Fatalf("neighbour spacing = %v, want %v", d, math.Sqrt(3)*1000)
		}
	}
}

// Property: every plane point maps to a hex whose centre is within one
// cell radius (pointy-top worst case is the corner distance = radius).
func TestHexAtNearestProperty(t *testing.T) {
	layout, _ := NewLayout(500, Point{})
	prop := func(xRaw, yRaw float64) bool {
		if anyNaNInf(xRaw, yRaw) {
			return true
		}
		p := Point{math.Mod(xRaw, 50000), math.Mod(yRaw, 50000)}
		h := layout.HexAt(p)
		return layout.Center(h).DistanceTo(p) <= 500*1.0000001
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// Property: hex distance is a metric on the grid.
func TestHexDistanceMetricProperty(t *testing.T) {
	prop := func(aq, ar, bq, br, cq, cr int8) bool {
		a := Hex{int(aq), int(ar)}
		b := Hex{int(bq), int(br)}
		c := Hex{int(cq), int(cr)}
		if a.DistanceTo(b) != b.DistanceTo(a) {
			return false
		}
		if a.DistanceTo(a) != 0 {
			return false
		}
		return a.DistanceTo(c) <= a.DistanceTo(b)+b.DistanceTo(c)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}
