package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p := Point{3, 4}
	q := Point{0, 0}
	if got := p.DistanceTo(q); got != 5 {
		t.Fatalf("DistanceTo = %v, want 5", got)
	}
	if got := q.DistanceTo(p); got != 5 {
		t.Fatalf("distance not symmetric: %v", got)
	}
	v := p.Sub(q)
	if v != (Vector{3, 4}) {
		t.Fatalf("Sub = %v", v)
	}
	if got := q.Add(v); got != p {
		t.Fatalf("Add(Sub) = %v, want %v", got, p)
	}
	if got := v.Length(); got != 5 {
		t.Fatalf("Length = %v, want 5", got)
	}
	if got := v.Scale(2); got != (Vector{6, 8}) {
		t.Fatalf("Scale = %v", got)
	}
	if got := v.Add(Vector{-3, -4}); got != (Vector{0, 0}) {
		t.Fatalf("Vector.Add = %v", got)
	}
	if got := v.Dot(Vector{1, 0}); got != 3 {
		t.Fatalf("Dot = %v, want 3", got)
	}
}

func TestHeadingDeg(t *testing.T) {
	tests := []struct {
		v    Vector
		want float64
	}{
		{Vector{1, 0}, 0},
		{Vector{0, 1}, 90},
		{Vector{-1, 0}, 180},
		{Vector{0, -1}, -90},
		{Vector{1, 1}, 45},
		{Vector{-1, -1}, -135},
		{Vector{0, 0}, 0},
	}
	for _, tc := range tests {
		if got := tc.v.HeadingDeg(); !approx(got, tc.want, 1e-9) {
			t.Errorf("HeadingDeg(%v) = %v, want %v", tc.v, got, tc.want)
		}
	}
}

func TestMoveAndBearing(t *testing.T) {
	origin := Point{10, 20}
	tests := []struct {
		heading float64
		dist    float64
		want    Point
	}{
		{0, 5, Point{15, 20}},
		{90, 5, Point{10, 25}},
		{180, 5, Point{5, 20}},
		{-90, 5, Point{10, 15}},
	}
	for _, tc := range tests {
		got := Move(origin, tc.heading, tc.dist)
		if !approx(got.X, tc.want.X, 1e-9) || !approx(got.Y, tc.want.Y, 1e-9) {
			t.Errorf("Move(%v, %v) = %v, want %v", tc.heading, tc.dist, got, tc.want)
		}
		if b := BearingDeg(origin, got); !approx(NormalizeDeg(b-tc.heading), 0, 1e-9) {
			t.Errorf("BearingDeg back = %v, want %v", b, tc.heading)
		}
	}
}

// Property: moving d along h then d along h+180 returns to the start.
func TestMoveRoundTripProperty(t *testing.T) {
	prop := func(x, y, hRaw, dRaw float64) bool {
		if anyNaNInf(x, y, hRaw, dRaw) {
			return true
		}
		h := NormalizeDeg(hRaw)
		d := math.Mod(math.Abs(dRaw), 1e6)
		p := Point{math.Mod(x, 1e6), math.Mod(y, 1e6)}
		q := Move(Move(p, h, d), h+180, d)
		return p.DistanceTo(q) < 1e-6*(1+d)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: distance satisfies the triangle inequality and symmetry.
func TestDistanceMetricProperty(t *testing.T) {
	prop := func(ax, ay, bx, by, cx, cy float64) bool {
		if anyNaNInf(ax, ay, bx, by, cx, cy) {
			return true
		}
		a := Point{math.Mod(ax, 1e6), math.Mod(ay, 1e6)}
		b := Point{math.Mod(bx, 1e6), math.Mod(by, 1e6)}
		c := Point{math.Mod(cx, 1e6), math.Mod(cy, 1e6)}
		if !approx(a.DistanceTo(b), b.DistanceTo(a), 1e-9) {
			return false
		}
		return a.DistanceTo(c) <= a.DistanceTo(b)+b.DistanceTo(c)+1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPointString(t *testing.T) {
	if got := (Point{1.25, -3}).String(); got != "(1.2, -3.0)" {
		t.Fatalf("String = %q", got)
	}
}

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func anyNaNInf(vals ...float64) bool {
	for _, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}
