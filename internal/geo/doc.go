// Package geo provides the planar geometry substrate for the cellular
// simulation: points and vectors in metres, heading/bearing arithmetic
// in degrees, and an axial-coordinate hexagonal grid used for cell
// layout.
//
// Angles follow one convention package-wide: degrees, normalised by
// NormalizeDeg with differences taken by AngleDiffDeg. Hex coordinates
// are axial (Q, R) with a Layout mapping them to plane positions;
// Hex.Ring, Hex.Spiral and Hex.Neighbors enumerate the topology the
// network builder and SCC's shadow clusters traverse.
//
// Entry points: Point/Vector arithmetic with Move and BearingDeg, Hex
// (Neighbors, Ring, DistanceTo) and Layout (Center, HexAt), plus the
// unit conversions (KmhToMps, MToKm, ...).
package geo
