package cell

import (
	"errors"
	"fmt"
	"sort"

	"facs/internal/geo"
)

// ErrOutsideCoverage reports a position outside every cell of the network.
var ErrOutsideCoverage = errors.New("cell: position outside network coverage")

// NetworkConfig parameterises a hexagonal cellular deployment.
type NetworkConfig struct {
	// Rings is the number of hex rings around the centre cell; 0 yields a
	// single-cell network.
	Rings int
	// CellRadiusM is the centre-to-corner cell radius in metres.
	// Default 2000 m.
	CellRadiusM float64
	// CapacityBU is the per-station bandwidth. Default DefaultCapacityBU.
	CapacityBU int
}

func (c NetworkConfig) withDefaults() NetworkConfig {
	if c.CellRadiusM == 0 {
		c.CellRadiusM = 2000
	}
	if c.CapacityBU == 0 {
		c.CapacityBU = DefaultCapacityBU
	}
	return c
}

// Validate checks the configuration.
func (c NetworkConfig) Validate() error {
	if c.Rings < 0 {
		return fmt.Errorf("cell: rings must be >= 0, got %d", c.Rings)
	}
	if c.CellRadiusM <= 0 {
		return fmt.Errorf("cell: cell radius must be > 0, got %v", c.CellRadiusM)
	}
	if c.CapacityBU <= 0 {
		return fmt.Errorf("cell: capacity must be > 0, got %d", c.CapacityBU)
	}
	return nil
}

// Network is a hexagonal deployment of base stations sharing a layout.
type Network struct {
	layout   geo.Layout
	stations map[geo.Hex]*BaseStation
	order    []geo.Hex // deterministic iteration order
}

// NewNetwork builds a network of 1+3·r·(r+1) cells arranged in r rings
// around hex (0,0), whose centre sits at the plane origin.
func NewNetwork(cfg NetworkConfig) (*Network, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	layout, err := geo.NewLayout(cfg.CellRadiusM, geo.Point{})
	if err != nil {
		return nil, err
	}
	n := &Network{
		layout:   layout,
		stations: make(map[geo.Hex]*BaseStation),
	}
	for _, h := range (geo.Hex{}).Spiral(cfg.Rings) {
		bs, err := NewBaseStation(h, layout.Center(h), cfg.CapacityBU)
		if err != nil {
			return nil, err
		}
		n.stations[h] = bs
		n.order = append(n.order, h)
	}
	sort.Slice(n.order, func(i, j int) bool {
		if n.order[i].Q != n.order[j].Q {
			return n.order[i].Q < n.order[j].Q
		}
		return n.order[i].R < n.order[j].R
	})
	return n, nil
}

// Layout returns the hex/plane conversion used by the network.
func (n *Network) Layout() geo.Layout { return n.layout }

// NumCells returns the number of base stations.
func (n *Network) NumCells() int { return len(n.stations) }

// At returns the station at hex h, or false if the hex is outside the
// deployment.
func (n *Network) At(h geo.Hex) (*BaseStation, bool) {
	bs, ok := n.stations[h]
	return bs, ok
}

// StationAt returns the station whose cell contains plane position p.
func (n *Network) StationAt(p geo.Point) (*BaseStation, error) {
	h := n.layout.HexAt(p)
	bs, ok := n.stations[h]
	if !ok {
		return nil, fmt.Errorf("cell: %v maps to %v: %w", p, h, ErrOutsideCoverage) //facs:alloc reject/error path; formats nothing on the steady-state wave
	}
	return bs, nil
}

// Neighbors returns the existing neighbouring stations of hex h in
// deterministic (direction) order.
func (n *Network) Neighbors(h geo.Hex) []*BaseStation {
	out := make([]*BaseStation, 0, 6)
	for _, nh := range h.Neighbors() {
		if bs, ok := n.stations[nh]; ok {
			out = append(out, bs)
		}
	}
	return out
}

// Stations returns all stations in deterministic (Q, R) order.
func (n *Network) Stations() []*BaseStation {
	out := make([]*BaseStation, 0, len(n.order))
	for _, h := range n.order {
		out = append(out, n.stations[h])
	}
	return out
}

// TotalUsed returns the sum of occupied BU across all stations. It
// walks the deterministic (Q, R) order rather than the station map so
// measurement sweeps touch stations in a reproducible sequence.
func (n *Network) TotalUsed() int {
	var sum int
	for _, h := range n.order {
		sum += n.stations[h].Used()
	}
	return sum
}

// TotalCapacity returns the sum of capacities across all stations.
func (n *Network) TotalCapacity() int {
	var sum int
	for _, h := range n.order {
		sum += n.stations[h].Capacity()
	}
	return sum
}

// Handoff atomically moves a carried call from one station to another.
// On any failure the call remains where it was and an error is returned;
// in particular ErrInsufficientBandwidth signals a handoff drop candidate.
func (n *Network) Handoff(callID int, from, to geo.Hex, now float64) error {
	src, ok := n.stations[from]
	if !ok {
		return fmt.Errorf("cell: handoff source %v: %w", from, ErrOutsideCoverage)
	}
	dst, ok := n.stations[to]
	if !ok {
		return fmt.Errorf("cell: handoff target %v: %w", to, ErrOutsideCoverage)
	}
	c, ok := src.Call(callID)
	if !ok {
		return fmt.Errorf("cell: handoff of call %d from %v: %w", callID, from, ErrUnknownCall)
	}
	if !dst.Fits(c.BU) {
		return fmt.Errorf("cell: handoff of call %d (%d BU) into %v with %d BU free: %w",
			callID, c.BU, to, dst.Free(), ErrInsufficientBandwidth)
	}
	if _, err := src.Release(callID); err != nil {
		return err
	}
	c.AdmittedAt = now
	c.Handoff = true
	if err := dst.Admit(c); err != nil {
		// Should be impossible after the Fits check; restore the source
		// ledger to keep the network consistent.
		_ = src.Admit(c)
		return err
	}
	return nil
}
