// Package cell models the radio resource substrate: base stations with
// a fixed bandwidth-unit capacity and an allocation ledger split into
// the paper's Real-Time and Non-Real-Time counters (RTC/NRTC), plus a
// hexagonal multi-cell network with neighbour topology and handoffs.
//
// # Role and invariants
//
// The paper's evaluation uses a base station with 40 bandwidth units
// (BU); text, voice and video calls consume 1, 5 and 10 BU. The
// allocation ledger maintains Used() == RTC() + NRTC() <= Capacity() at
// all times: Admit rejects (leaving the ledger unchanged) on overflow
// or duplicate call IDs, Release credits exactly what was debited. A
// BaseStation is not safe for concurrent use — the simulation kernel
// is single-threaded by design, and the streaming service serializes
// all mutation in one goroutine (internal/serve).
//
// Calls live in a struct-of-arrays pool (a slot arena with a dense
// iteration list and a free-list stack), so steady-state admit/release
// cycles are allocation-free and per-class occupancy (ClassBU) is an
// O(1) counter — the memory model metropolis-scale populations rest on
// (see pool_test.go for the map-ledger equivalence and allocation
// gates).
//
// # Entry points
//
// NewBaseStation builds a standalone station; NewNetwork builds the
// hexagonal deployment (Rings, CellRadiusM, CapacityBU) with
// StationAt/Neighbors lookup and Handoff moving a carried call between
// cells.
package cell
