package cell

import (
	"io"

	"facs/internal/snap"
	"facs/internal/traffic"
)

// snapshotHash fingerprints the station's identity: its hex address
// and capacity. A snapshot restores only onto the same cell of an
// identically-provisioned network.
func (b *BaseStation) snapshotHash() uint64 {
	return snap.NewHasher().
		Str("base-station").
		Int(b.hex.Q).
		Int(b.hex.R).
		Int(b.capacity).
		Sum()
}

// SnapshotTo implements cac.Snapshotter: it writes the station's
// admitted calls (ID-sorted, with their exact admission timestamps and
// handoff flags) as one snapshot blob. Occupancy counters are not
// stored — RestoreFrom re-derives them by re-admitting every call, so
// they can never disagree with the call set.
func (b *BaseStation) SnapshotTo(w io.Writer) error {
	e := snap.NewEncoder(w, "base-station", b.snapshotHash())
	calls := b.Calls()
	e.U32(uint32(len(calls)))
	for _, c := range calls {
		e.Int(c.ID)
		e.Int(int(c.Class))
		e.Int(c.BU)
		e.F64(c.AdmittedAt)
		e.Bool(c.Handoff)
	}
	return e.Close()
}

// RestoreFrom implements cac.Snapshotter: it replaces the station's
// call set with the snapshot's. The blob is fully decoded and
// validated (ascending IDs, valid classes, total bandwidth within
// capacity) before any state changes, so a corrupt snapshot leaves the
// station untouched.
func (b *BaseStation) RestoreFrom(r io.Reader) error {
	d, err := snap.NewDecoder(r, "base-station", b.snapshotHash())
	if err != nil {
		return err
	}
	n := int(d.U32())
	// Each call costs at least 8+8+8+8+1 payload bytes; bounding the
	// count by the remaining bytes keeps a corrupt length from driving
	// the allocation.
	if d.Err() == nil && n*33 > d.Len() {
		d.Fail("%d calls declared, %d payload bytes left", n, d.Len())
	}
	if err := d.Err(); err != nil {
		return err
	}
	calls := make([]Call, n)
	total := 0
	for i := range calls {
		calls[i] = Call{
			ID:         d.Int(),
			Class:      traffic.Class(d.Int()),
			BU:         d.Int(),
			AdmittedAt: d.F64(),
			Handoff:    d.Bool(),
		}
		c := &calls[i]
		if d.Err() != nil {
			break
		}
		if !c.Class.Valid() {
			d.Fail("call %d has invalid class %d", c.ID, int(c.Class))
		}
		if c.BU <= 0 {
			d.Fail("call %d has non-positive bandwidth %d", c.ID, c.BU)
		}
		if i > 0 && c.ID <= calls[i-1].ID {
			d.Fail("call IDs not strictly ascending at %d", c.ID)
		}
		total += c.BU
	}
	if d.Err() == nil && total > b.capacity {
		d.Fail("snapshot carries %d BU, capacity is %d", total, b.capacity)
	}
	if err := d.Close(); err != nil {
		return err
	}
	b.DetachCalls(nil)
	// Validation above guarantees every Admit succeeds: IDs are unique,
	// classes valid, and the total fits.
	for i := range calls {
		if err := b.Admit(calls[i]); err != nil {
			return err
		}
	}
	return nil
}
