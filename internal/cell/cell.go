package cell

import (
	"errors"
	"fmt"
	"sort"

	"facs/internal/geo"
	"facs/internal/traffic"
)

// DefaultCapacityBU is the paper's base-station bandwidth: 40 BU.
const DefaultCapacityBU = 40

// Sentinel errors returned by the allocation ledger.
var (
	// ErrInsufficientBandwidth reports that a call does not fit into the
	// station's free bandwidth.
	ErrInsufficientBandwidth = errors.New("cell: insufficient bandwidth")
	// ErrUnknownCall reports a release/lookup of a call the station does
	// not carry.
	ErrUnknownCall = errors.New("cell: unknown call")
	// ErrDuplicateCall reports an admit of a call ID already carried.
	ErrDuplicateCall = errors.New("cell: duplicate call")
)

// Call is one admitted connection occupying bandwidth at a base station.
type Call struct {
	// ID is unique across the simulation.
	ID int
	// Class is the service class (text/voice/video).
	Class traffic.Class
	// BU is the occupied bandwidth.
	BU int
	// AdmittedAt is the simulation time of admission at this station.
	AdmittedAt float64
	// Handoff records whether the call arrived via handoff rather than as
	// a new call.
	Handoff bool
}

// callPool is the station's struct-of-arrays call ledger: call records
// live in a slot-indexed slice, freed slots are recycled through a
// free-list stack, and the live slots are tracked in a dense array with
// swap-removal — so admit and release are O(1) and, once the pool has
// grown to its working-set size, allocation-free. Only the small ID →
// slot index map remains (Go map buckets are retained across
// delete/insert at steady size, so it does not allocate per call
// either); the call records themselves never churn through map buckets.
type callPool struct {
	// slots holds the call records; a freed slot's record is zeroed.
	slots []Call
	// dense lists the live slots (unordered: releases swap-remove).
	dense []int32
	// pos maps slot → index in dense, -1 for free slots.
	pos []int32
	// free is the stack of recyclable slots.
	free []int32
	// index maps call ID → slot.
	index map[int]int32
}

// put inserts a call into a recycled or fresh slot. The caller has
// already checked the ID is new.
func (p *callPool) put(c Call) {
	var slot int32
	if n := len(p.free); n > 0 {
		slot = p.free[n-1]
		p.free = p.free[:n-1]
		p.slots[slot] = c
	} else {
		slot = int32(len(p.slots))
		p.slots = append(p.slots, c)
		p.pos = append(p.pos, -1)
	}
	p.pos[slot] = int32(len(p.dense))
	p.dense = append(p.dense, slot)
	p.index[c.ID] = slot
}

// take removes and returns the call with the given ID.
func (p *callPool) take(id int) (Call, bool) {
	slot, ok := p.index[id]
	if !ok {
		return Call{}, false
	}
	delete(p.index, id)
	c := p.slots[slot]
	// Swap-remove from the dense live list.
	di := p.pos[slot]
	last := p.dense[len(p.dense)-1]
	p.dense[di] = last
	p.pos[last] = di
	p.dense = p.dense[:len(p.dense)-1]
	p.pos[slot] = -1
	p.slots[slot] = Call{}
	p.free = append(p.free, slot)
	return c, true
}

// get looks up a live call by ID.
func (p *callPool) get(id int) (Call, bool) {
	slot, ok := p.index[id]
	if !ok {
		return Call{}, false
	}
	return p.slots[slot], true
}

// reserve materializes storage for up to n concurrent calls: fresh
// slots are pushed onto the free stack (lowest first, matching the
// order lazy growth would have assigned them), every backing array gets
// capacity n, and the ID index is rebuilt with room for n entries.
// After reserve(n), put and take never allocate while the live
// population stays at or below n. Slot numbering is unobservable
// outside the pool, so reserving changes no behaviour — only when the
// memory is paid for.
func (p *callPool) reserve(n int) {
	if n <= len(p.slots) {
		return
	}
	old := len(p.slots)
	slots := make([]Call, n)
	copy(slots, p.slots)
	p.slots = slots
	pos := make([]int32, n)
	copy(pos, p.pos)
	for i := old; i < n; i++ {
		pos[i] = -1
	}
	p.pos = pos
	free := make([]int32, len(p.free), n)
	copy(free, p.free)
	p.free = free
	for slot := n - 1; slot >= old; slot-- {
		p.free = append(p.free, int32(slot))
	}
	dense := make([]int32, len(p.dense), n)
	copy(dense, p.dense)
	p.dense = dense
	index := make(map[int]int32, n)
	for id, slot := range p.index { //facs:orderless map-to-map rehash; the rebuilt index is order-free
		index[id] = slot
	}
	p.index = index
}

// BaseStation is one cell's radio resource manager. It is not safe for
// concurrent use; the simulation kernel is single-threaded by design.
type BaseStation struct {
	hex      geo.Hex
	pos      geo.Point
	capacity int
	pool     callPool
	usedRT   int
	usedNRT  int
	// classBU tracks occupied BU per service class (indexed by
	// traffic.Class), so per-class admission policies need no ledger scan.
	classBU [4]int
}

// NewBaseStation constructs a station at the given hex/position with the
// given capacity in BU.
func NewBaseStation(hex geo.Hex, pos geo.Point, capacityBU int) (*BaseStation, error) {
	if capacityBU <= 0 {
		return nil, fmt.Errorf("cell: capacity must be > 0 BU, got %d", capacityBU)
	}
	return &BaseStation{
		hex:      hex,
		pos:      pos,
		capacity: capacityBU,
		pool:     callPool{index: make(map[int]int32)},
	}, nil
}

// Hex returns the station's grid coordinate.
func (b *BaseStation) Hex() geo.Hex { return b.hex }

// Pos returns the station's plane position in metres.
func (b *BaseStation) Pos() geo.Point { return b.pos }

// Capacity returns the total bandwidth in BU.
func (b *BaseStation) Capacity() int { return b.capacity }

// Reserve presizes the station's call-pool storage for up to n
// concurrent calls, so admit/release churn below that population
// performs no allocation. Every call occupies at least 1 BU, so
// Reserve(Capacity()) is the hard bound: after it the pool never
// allocates again. Reserving is purely a memory-layout decision —
// admission behaviour and outcomes are unchanged. n values not above
// the already-materialized pool size are no-ops.
func (b *BaseStation) Reserve(n int) { b.pool.reserve(n) }

// Used returns the occupied bandwidth in BU (RTC + NRTC).
func (b *BaseStation) Used() int { return b.usedRT + b.usedNRT }

// Free returns the available bandwidth in BU.
func (b *BaseStation) Free() int { return b.capacity - b.Used() }

// RTC returns the paper's Real Time Counter: BU held by voice and video.
func (b *BaseStation) RTC() int { return b.usedRT }

// NRTC returns the paper's Non Real Time Counter: BU held by text.
func (b *BaseStation) NRTC() int { return b.usedNRT }

// ClassBU returns the BU currently held by calls of the given class.
// Unknown classes hold nothing.
func (b *BaseStation) ClassBU(class traffic.Class) int {
	if !class.Valid() {
		return 0
	}
	return b.classBU[class]
}

// Occupancy returns Used/Capacity in [0, 1].
func (b *BaseStation) Occupancy() float64 {
	return float64(b.Used()) / float64(b.capacity)
}

// NumCalls returns the number of carried calls.
func (b *BaseStation) NumCalls() int { return len(b.pool.dense) }

// Fits reports whether a call of the given size would be admissible
// right now. It agrees with Admit on degenerate sizes: a call must
// occupy strictly positive bandwidth, so Fits(0) is false exactly as
// Admit rejects BU <= 0.
func (b *BaseStation) Fits(bu int) bool { return bu > 0 && bu <= b.Free() }

// Admit adds a call to the ledger, debiting the class counter. The call
// must fit and its ID must be new, otherwise the ledger is unchanged and
// an error wrapping ErrInsufficientBandwidth / ErrDuplicateCall is
// returned.
//
//facs:hotpath
func (b *BaseStation) Admit(c Call) error {
	if c.BU <= 0 {
		return fmt.Errorf("cell: call %d has non-positive bandwidth %d", c.ID, c.BU) //facs:alloc reject/error path; formats nothing on the steady-state wave
	}
	if !c.Class.Valid() {
		return fmt.Errorf("cell: call %d has invalid class %v", c.ID, c.Class) //facs:alloc reject/error path; formats nothing on the steady-state wave
	}
	if _, dup := b.pool.index[c.ID]; dup {
		return fmt.Errorf("cell: admitting call %d at %v: %w", c.ID, b.hex, ErrDuplicateCall) //facs:alloc reject/error path; formats nothing on the steady-state wave
	}
	if c.BU > b.Free() {
		return fmt.Errorf("cell: admitting call %d (%d BU) at %v with %d BU free: %w", //facs:alloc reject/error path; formats nothing on the steady-state wave
			c.ID, c.BU, b.hex, b.Free(), ErrInsufficientBandwidth)
	}
	b.pool.put(c)
	if c.Class.RealTime() {
		b.usedRT += c.BU
	} else {
		b.usedNRT += c.BU
	}
	b.classBU[c.Class] += c.BU
	return nil
}

// Release removes a call from the ledger, crediting its bandwidth back.
//
//facs:hotpath
func (b *BaseStation) Release(id int) (Call, error) {
	c, ok := b.pool.take(id)
	if !ok {
		return Call{}, fmt.Errorf("cell: releasing call %d at %v: %w", id, b.hex, ErrUnknownCall) //facs:alloc reject/error path; formats nothing on the steady-state wave
	}
	if c.Class.RealTime() {
		b.usedRT -= c.BU
	} else {
		b.usedNRT -= c.BU
	}
	b.classBU[c.Class] -= c.BU
	return c, nil
}

// DetachCalls removes every carried call from the ledger in ascending
// call-ID order, appending the records to dst and returning it. After
// DetachCalls the station carries nothing: counters are zero and the
// pool slots are free. Together with AttachCalls it is the
// cell-migration seam of the sharded engine: the old owner shard
// detaches the station's slots inside its decision loop, the new owner
// re-attaches them inside its own, making the ownership handover an
// explicit pair of writes that conservation checks (and the race
// detector) can observe. The pair is behaviour-preserving: records are
// moved verbatim, and every externally observable order (Calls) is
// ID-sorted anyway.
func (b *BaseStation) DetachCalls(dst []Call) []Call {
	start := len(dst)
	for _, slot := range b.pool.dense {
		dst = append(dst, b.pool.slots[slot])
	}
	moved := dst[start:]
	sort.Slice(moved, func(i, j int) bool { return moved[i].ID < moved[j].ID })
	for _, c := range moved {
		b.pool.take(c.ID)
	}
	b.usedRT, b.usedNRT = 0, 0
	b.classBU = [4]int{}
	return dst
}

// AttachCalls re-admits previously detached call records verbatim,
// preserving AdmittedAt and Handoff. It fails (leaving any calls
// admitted so far in place) if a record does not fit or duplicates a
// carried ID — impossible when the input is a DetachCalls result from
// the same station with no interleaved traffic, which is the migration
// protocol's contract.
func (b *BaseStation) AttachCalls(calls []Call) error {
	for _, c := range calls {
		if err := b.Admit(c); err != nil {
			return fmt.Errorf("cell: attaching migrated call %d at %v: %w", c.ID, b.hex, err)
		}
	}
	return nil
}

// Call looks up a carried call by ID.
func (b *BaseStation) Call(id int) (Call, bool) {
	return b.pool.get(id)
}

// Calls returns the carried calls sorted by ID (a defensive copy). The
// pool's dense order is history-dependent, so the sort keeps every
// observer deterministic.
func (b *BaseStation) Calls() []Call {
	out := make([]Call, 0, len(b.pool.dense))
	for _, slot := range b.pool.dense {
		out = append(out, b.pool.slots[slot])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// String implements fmt.Stringer.
func (b *BaseStation) String() string {
	return fmt.Sprintf("BS%v used=%d/%d (RTC=%d NRTC=%d)", b.hex, b.Used(), b.capacity, b.usedRT, b.usedNRT)
}
