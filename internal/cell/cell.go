package cell

import (
	"errors"
	"fmt"
	"sort"

	"facs/internal/geo"
	"facs/internal/traffic"
)

// DefaultCapacityBU is the paper's base-station bandwidth: 40 BU.
const DefaultCapacityBU = 40

// Sentinel errors returned by the allocation ledger.
var (
	// ErrInsufficientBandwidth reports that a call does not fit into the
	// station's free bandwidth.
	ErrInsufficientBandwidth = errors.New("cell: insufficient bandwidth")
	// ErrUnknownCall reports a release/lookup of a call the station does
	// not carry.
	ErrUnknownCall = errors.New("cell: unknown call")
	// ErrDuplicateCall reports an admit of a call ID already carried.
	ErrDuplicateCall = errors.New("cell: duplicate call")
)

// Call is one admitted connection occupying bandwidth at a base station.
type Call struct {
	// ID is unique across the simulation.
	ID int
	// Class is the service class (text/voice/video).
	Class traffic.Class
	// BU is the occupied bandwidth.
	BU int
	// AdmittedAt is the simulation time of admission at this station.
	AdmittedAt float64
	// Handoff records whether the call arrived via handoff rather than as
	// a new call.
	Handoff bool
}

// BaseStation is one cell's radio resource manager. It is not safe for
// concurrent use; the simulation kernel is single-threaded by design.
type BaseStation struct {
	hex      geo.Hex
	pos      geo.Point
	capacity int
	calls    map[int]Call
	usedRT   int
	usedNRT  int
}

// NewBaseStation constructs a station at the given hex/position with the
// given capacity in BU.
func NewBaseStation(hex geo.Hex, pos geo.Point, capacityBU int) (*BaseStation, error) {
	if capacityBU <= 0 {
		return nil, fmt.Errorf("cell: capacity must be > 0 BU, got %d", capacityBU)
	}
	return &BaseStation{
		hex:      hex,
		pos:      pos,
		capacity: capacityBU,
		calls:    make(map[int]Call),
	}, nil
}

// Hex returns the station's grid coordinate.
func (b *BaseStation) Hex() geo.Hex { return b.hex }

// Pos returns the station's plane position in metres.
func (b *BaseStation) Pos() geo.Point { return b.pos }

// Capacity returns the total bandwidth in BU.
func (b *BaseStation) Capacity() int { return b.capacity }

// Used returns the occupied bandwidth in BU (RTC + NRTC).
func (b *BaseStation) Used() int { return b.usedRT + b.usedNRT }

// Free returns the available bandwidth in BU.
func (b *BaseStation) Free() int { return b.capacity - b.Used() }

// RTC returns the paper's Real Time Counter: BU held by voice and video.
func (b *BaseStation) RTC() int { return b.usedRT }

// NRTC returns the paper's Non Real Time Counter: BU held by text.
func (b *BaseStation) NRTC() int { return b.usedNRT }

// Occupancy returns Used/Capacity in [0, 1].
func (b *BaseStation) Occupancy() float64 {
	return float64(b.Used()) / float64(b.capacity)
}

// NumCalls returns the number of carried calls.
func (b *BaseStation) NumCalls() int { return len(b.calls) }

// Fits reports whether a call of the given size would fit right now.
func (b *BaseStation) Fits(bu int) bool { return bu >= 0 && bu <= b.Free() }

// Admit adds a call to the ledger, debiting the class counter. The call
// must fit and its ID must be new, otherwise the ledger is unchanged and
// an error wrapping ErrInsufficientBandwidth / ErrDuplicateCall is
// returned.
func (b *BaseStation) Admit(c Call) error {
	if c.BU <= 0 {
		return fmt.Errorf("cell: call %d has non-positive bandwidth %d", c.ID, c.BU)
	}
	if !c.Class.Valid() {
		return fmt.Errorf("cell: call %d has invalid class %v", c.ID, c.Class)
	}
	if _, dup := b.calls[c.ID]; dup {
		return fmt.Errorf("cell: admitting call %d at %v: %w", c.ID, b.hex, ErrDuplicateCall)
	}
	if c.BU > b.Free() {
		return fmt.Errorf("cell: admitting call %d (%d BU) at %v with %d BU free: %w",
			c.ID, c.BU, b.hex, b.Free(), ErrInsufficientBandwidth)
	}
	b.calls[c.ID] = c
	if c.Class.RealTime() {
		b.usedRT += c.BU
	} else {
		b.usedNRT += c.BU
	}
	return nil
}

// Release removes a call from the ledger, crediting its bandwidth back.
func (b *BaseStation) Release(id int) (Call, error) {
	c, ok := b.calls[id]
	if !ok {
		return Call{}, fmt.Errorf("cell: releasing call %d at %v: %w", id, b.hex, ErrUnknownCall)
	}
	delete(b.calls, id)
	if c.Class.RealTime() {
		b.usedRT -= c.BU
	} else {
		b.usedNRT -= c.BU
	}
	return c, nil
}

// Call looks up a carried call by ID.
func (b *BaseStation) Call(id int) (Call, bool) {
	c, ok := b.calls[id]
	return c, ok
}

// Calls returns the carried calls sorted by ID (a defensive copy).
func (b *BaseStation) Calls() []Call {
	out := make([]Call, 0, len(b.calls))
	for _, c := range b.calls {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// String implements fmt.Stringer.
func (b *BaseStation) String() string {
	return fmt.Sprintf("BS%v used=%d/%d (RTC=%d NRTC=%d)", b.hex, b.Used(), b.capacity, b.usedRT, b.usedNRT)
}
