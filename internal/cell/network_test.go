package cell

import (
	"errors"
	"testing"

	"facs/internal/geo"
	"facs/internal/traffic"
)

func newNet(t *testing.T, rings int) *Network {
	t.Helper()
	n, err := NewNetwork(NetworkConfig{Rings: rings})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNetworkConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		cfg     NetworkConfig
		wantErr bool
	}{
		{"defaults", NetworkConfig{}, false},
		{"explicit", NetworkConfig{Rings: 2, CellRadiusM: 1000, CapacityBU: 40}, false},
		{"negative rings", NetworkConfig{Rings: -1}, true},
		{"negative radius", NetworkConfig{CellRadiusM: -1}, true},
		{"negative capacity", NetworkConfig{CapacityBU: -1}, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewNetwork(tc.cfg)
			if gotErr := err != nil; gotErr != tc.wantErr {
				t.Fatalf("NewNetwork = %v, want error %v", err, tc.wantErr)
			}
		})
	}
}

func TestNetworkTopology(t *testing.T) {
	n := newNet(t, 2)
	if got, want := n.NumCells(), 1+3*2*3; got != want {
		t.Fatalf("NumCells = %d, want %d", got, want)
	}
	centre, ok := n.At(geo.Hex{Q: 0, R: 0})
	if !ok {
		t.Fatal("centre cell missing")
	}
	if centre.Capacity() != DefaultCapacityBU {
		t.Fatalf("capacity = %d, want %d", centre.Capacity(), DefaultCapacityBU)
	}
	if got := len(n.Neighbors(geo.Hex{Q: 0, R: 0})); got != 6 {
		t.Fatalf("centre neighbours = %d, want 6", got)
	}
	// A corner cell of the outer ring has fewer in-network neighbours.
	if got := len(n.Neighbors(geo.Hex{Q: 2, R: 0})); got != 3 {
		t.Fatalf("corner neighbours = %d, want 3", got)
	}
	if _, ok := n.At(geo.Hex{Q: 5, R: 5}); ok {
		t.Fatal("hex outside deployment should be absent")
	}
}

func TestNetworkStationsDeterministicOrder(t *testing.T) {
	a := newNet(t, 2)
	b := newNet(t, 2)
	sa, sb := a.Stations(), b.Stations()
	if len(sa) != len(sb) {
		t.Fatal("station counts differ")
	}
	for i := range sa {
		if sa[i].Hex() != sb[i].Hex() {
			t.Fatalf("station order differs at %d: %v vs %v", i, sa[i].Hex(), sb[i].Hex())
		}
	}
	for i := 1; i < len(sa); i++ {
		prev, cur := sa[i-1].Hex(), sa[i].Hex()
		if prev.Q > cur.Q || (prev.Q == cur.Q && prev.R >= cur.R) {
			t.Fatalf("stations not in (Q,R) order at %d: %v then %v", i, prev, cur)
		}
	}
}

func TestStationAt(t *testing.T) {
	n := newNet(t, 1)
	centre, err := n.StationAt(geo.Point{X: 0, Y: 0})
	if err != nil {
		t.Fatal(err)
	}
	if centre.Hex() != (geo.Hex{Q: 0, R: 0}) {
		t.Fatalf("StationAt(origin) = %v", centre.Hex())
	}
	// The centre of every deployed cell maps back to that cell.
	for _, bs := range n.Stations() {
		got, err := n.StationAt(bs.Pos())
		if err != nil {
			t.Fatal(err)
		}
		if got.Hex() != bs.Hex() {
			t.Fatalf("StationAt(%v) = %v, want %v", bs.Pos(), got.Hex(), bs.Hex())
		}
	}
	// Far outside the deployment.
	if _, err := n.StationAt(geo.Point{X: 1e9, Y: 1e9}); !errors.Is(err, ErrOutsideCoverage) {
		t.Fatalf("err = %v, want ErrOutsideCoverage", err)
	}
}

func TestNetworkCapacityAggregates(t *testing.T) {
	n := newNet(t, 1)
	if got, want := n.TotalCapacity(), 7*DefaultCapacityBU; got != want {
		t.Fatalf("TotalCapacity = %d, want %d", got, want)
	}
	if n.TotalUsed() != 0 {
		t.Fatal("fresh network should be empty")
	}
	centre, _ := n.At(geo.Hex{Q: 0, R: 0})
	if err := centre.Admit(Call{ID: 1, Class: traffic.Video, BU: 10}); err != nil {
		t.Fatal(err)
	}
	if n.TotalUsed() != 10 {
		t.Fatalf("TotalUsed = %d, want 10", n.TotalUsed())
	}
}

func TestHandoffMovesCall(t *testing.T) {
	n := newNet(t, 1)
	src, _ := n.At(geo.Hex{Q: 0, R: 0})
	dstHex := geo.Hex{Q: 1, R: 0}
	dst, _ := n.At(dstHex)
	if err := src.Admit(Call{ID: 1, Class: traffic.Voice, BU: 5, AdmittedAt: 1}); err != nil {
		t.Fatal(err)
	}
	if err := n.Handoff(1, src.Hex(), dstHex, 42); err != nil {
		t.Fatal(err)
	}
	if src.NumCalls() != 0 || dst.NumCalls() != 1 {
		t.Fatal("call did not move")
	}
	moved, _ := dst.Call(1)
	if !moved.Handoff || moved.AdmittedAt != 42 {
		t.Fatalf("handoff metadata wrong: %+v", moved)
	}
	if src.Used() != 0 || dst.Used() != 5 {
		t.Fatalf("bandwidth not transferred: src=%d dst=%d", src.Used(), dst.Used())
	}
}

func TestHandoffFailures(t *testing.T) {
	n := newNet(t, 1)
	src, _ := n.At(geo.Hex{Q: 0, R: 0})
	dstHex := geo.Hex{Q: 1, R: 0}
	dst, _ := n.At(dstHex)
	if err := src.Admit(Call{ID: 1, Class: traffic.Video, BU: 10}); err != nil {
		t.Fatal(err)
	}
	// Unknown call.
	if err := n.Handoff(99, src.Hex(), dstHex, 0); !errors.Is(err, ErrUnknownCall) {
		t.Fatalf("err = %v, want ErrUnknownCall", err)
	}
	// Unknown cells.
	if err := n.Handoff(1, geo.Hex{Q: 9, R: 9}, dstHex, 0); !errors.Is(err, ErrOutsideCoverage) {
		t.Fatalf("err = %v, want ErrOutsideCoverage", err)
	}
	if err := n.Handoff(1, src.Hex(), geo.Hex{Q: 9, R: 9}, 0); !errors.Is(err, ErrOutsideCoverage) {
		t.Fatalf("err = %v, want ErrOutsideCoverage", err)
	}
	// Target full: fill dst to the brim.
	for i := 0; i < 4; i++ {
		if err := dst.Admit(Call{ID: 100 + i, Class: traffic.Video, BU: 10}); err != nil {
			t.Fatal(err)
		}
	}
	err := n.Handoff(1, src.Hex(), dstHex, 0)
	if !errors.Is(err, ErrInsufficientBandwidth) {
		t.Fatalf("err = %v, want ErrInsufficientBandwidth", err)
	}
	// The failed handoff must leave the call at the source.
	if _, ok := src.Call(1); !ok {
		t.Fatal("failed handoff lost the call")
	}
	if src.Used() != 10 {
		t.Fatalf("source ledger corrupted: %d", src.Used())
	}
}

func TestNetworkLayoutAccessor(t *testing.T) {
	n := newNet(t, 0)
	if n.Layout().CellRadius != 2000 {
		t.Fatalf("layout radius = %v, want default 2000", n.Layout().CellRadius)
	}
	if n.NumCells() != 1 {
		t.Fatalf("0 rings should yield a single cell, got %d", n.NumCells())
	}
}
