package cell

import (
	"errors"
	"strings"
	"testing"

	"facs/internal/geo"
	"facs/internal/traffic"
)

func newBS(t *testing.T, capacity int) *BaseStation {
	t.Helper()
	bs, err := NewBaseStation(geo.Hex{Q: 0, R: 0}, geo.Point{}, capacity)
	if err != nil {
		t.Fatal(err)
	}
	return bs
}

func TestNewBaseStationValidation(t *testing.T) {
	if _, err := NewBaseStation(geo.Hex{}, geo.Point{}, 0); err == nil {
		t.Fatal("zero capacity should error")
	}
	if _, err := NewBaseStation(geo.Hex{}, geo.Point{}, -5); err == nil {
		t.Fatal("negative capacity should error")
	}
	bs := newBS(t, DefaultCapacityBU)
	if bs.Capacity() != 40 {
		t.Fatalf("Capacity = %d, want 40", bs.Capacity())
	}
	if bs.Used() != 0 || bs.Free() != 40 || bs.Occupancy() != 0 {
		t.Fatal("fresh station should be empty")
	}
}

func TestAdmitReleaseLedger(t *testing.T) {
	bs := newBS(t, 40)
	calls := []Call{
		{ID: 1, Class: traffic.Video, BU: 10, AdmittedAt: 1},
		{ID: 2, Class: traffic.Voice, BU: 5, AdmittedAt: 2},
		{ID: 3, Class: traffic.Text, BU: 1, AdmittedAt: 3},
	}
	for _, c := range calls {
		if err := bs.Admit(c); err != nil {
			t.Fatal(err)
		}
	}
	if bs.Used() != 16 || bs.Free() != 24 {
		t.Fatalf("Used/Free = %d/%d, want 16/24", bs.Used(), bs.Free())
	}
	if bs.RTC() != 15 {
		t.Fatalf("RTC = %d, want 15 (video 10 + voice 5)", bs.RTC())
	}
	if bs.NRTC() != 1 {
		t.Fatalf("NRTC = %d, want 1 (text)", bs.NRTC())
	}
	if bs.NumCalls() != 3 {
		t.Fatalf("NumCalls = %d, want 3", bs.NumCalls())
	}
	if got := bs.Occupancy(); got != 0.4 {
		t.Fatalf("Occupancy = %v, want 0.4", got)
	}

	released, err := bs.Release(2)
	if err != nil {
		t.Fatal(err)
	}
	if released.Class != traffic.Voice || released.BU != 5 {
		t.Fatalf("released wrong call: %+v", released)
	}
	if bs.RTC() != 10 || bs.Used() != 11 {
		t.Fatalf("after release RTC=%d Used=%d, want 10/11", bs.RTC(), bs.Used())
	}
}

func TestAdmitErrors(t *testing.T) {
	bs := newBS(t, 10)
	if err := bs.Admit(Call{ID: 1, Class: traffic.Video, BU: 10}); err != nil {
		t.Fatal(err)
	}
	err := bs.Admit(Call{ID: 2, Class: traffic.Text, BU: 1})
	if !errors.Is(err, ErrInsufficientBandwidth) {
		t.Fatalf("err = %v, want ErrInsufficientBandwidth", err)
	}
	err = bs.Admit(Call{ID: 1, Class: traffic.Text, BU: 1})
	if !errors.Is(err, ErrDuplicateCall) {
		t.Fatalf("err = %v, want ErrDuplicateCall", err)
	}
	if err := bs.Admit(Call{ID: 3, Class: traffic.Text, BU: 0}); err == nil {
		t.Fatal("zero BU should error")
	}
	if err := bs.Admit(Call{ID: 4, Class: traffic.Class(42), BU: 1}); err == nil {
		t.Fatal("invalid class should error")
	}
	// Failed admits must not corrupt the ledger.
	if bs.Used() != 10 || bs.NumCalls() != 1 {
		t.Fatalf("ledger corrupted: used=%d calls=%d", bs.Used(), bs.NumCalls())
	}
}

func TestReleaseUnknown(t *testing.T) {
	bs := newBS(t, 10)
	if _, err := bs.Release(99); !errors.Is(err, ErrUnknownCall) {
		t.Fatalf("err = %v, want ErrUnknownCall", err)
	}
}

func TestFits(t *testing.T) {
	bs := newBS(t, 10)
	if !bs.Fits(10) || !bs.Fits(1) {
		t.Fatal("empty station should fit up to capacity")
	}
	if bs.Fits(11) || bs.Fits(-1) {
		t.Fatal("Fits accepted invalid sizes")
	}
}

func TestFitsAgreesWithAdmitOnDegenerateBU(t *testing.T) {
	// Regression: Fits(0) used to return true while Admit rejected BU <= 0,
	// so pre-checked admissions of degenerate requests still failed.
	bs := newBS(t, 10)
	for _, bu := range []int{0, -1, -10} {
		if bs.Fits(bu) {
			t.Fatalf("Fits(%d) = true, but Admit rejects BU <= 0", bu)
		}
		if err := bs.Admit(Call{ID: 100 + bu, Class: traffic.Text, BU: bu}); err == nil {
			t.Fatalf("Admit accepted BU %d", bu)
		}
	}
}

func TestCallLookupAndCopy(t *testing.T) {
	bs := newBS(t, 40)
	if err := bs.Admit(Call{ID: 7, Class: traffic.Voice, BU: 5}); err != nil {
		t.Fatal(err)
	}
	if err := bs.Admit(Call{ID: 3, Class: traffic.Text, BU: 1}); err != nil {
		t.Fatal(err)
	}
	c, ok := bs.Call(7)
	if !ok || c.Class != traffic.Voice {
		t.Fatalf("Call(7) = %+v,%v", c, ok)
	}
	if _, ok := bs.Call(8); ok {
		t.Fatal("Call(8) should be absent")
	}
	list := bs.Calls()
	if len(list) != 2 || list[0].ID != 3 || list[1].ID != 7 {
		t.Fatalf("Calls() = %+v, want sorted by ID", list)
	}
}

func TestBaseStationString(t *testing.T) {
	bs := newBS(t, 40)
	if err := bs.Admit(Call{ID: 1, Class: traffic.Voice, BU: 5}); err != nil {
		t.Fatal(err)
	}
	s := bs.String()
	if !strings.Contains(s, "5/40") || !strings.Contains(s, "RTC=5") {
		t.Fatalf("String = %q", s)
	}
}

func TestLedgerConservationUnderChurn(t *testing.T) {
	// Admit/release churn must always keep Used == sum of carried calls
	// and RTC/NRTC consistent with the class split.
	bs := newBS(t, 40)
	next := 0
	for round := 0; round < 200; round++ {
		class := traffic.Classes()[round%3]
		c := Call{ID: next, Class: class, BU: class.BandwidthUnits()}
		next++
		if err := bs.Admit(c); err != nil {
			// Full: drop the oldest call and retry once.
			calls := bs.Calls()
			if len(calls) == 0 {
				t.Fatal("admit failed on empty station")
			}
			if _, err := bs.Release(calls[0].ID); err != nil {
				t.Fatal(err)
			}
			if err := bs.Admit(c); err != nil {
				continue // still may not fit (e.g. video into 9 free)
			}
		}
		var wantRT, wantNRT int
		for _, c := range bs.Calls() {
			if c.Class.RealTime() {
				wantRT += c.BU
			} else {
				wantNRT += c.BU
			}
		}
		if bs.RTC() != wantRT || bs.NRTC() != wantNRT {
			t.Fatalf("round %d: counters RTC=%d NRTC=%d, want %d/%d",
				round, bs.RTC(), bs.NRTC(), wantRT, wantNRT)
		}
		if bs.Used() > bs.Capacity() {
			t.Fatalf("round %d: overcommitted %d/%d", round, bs.Used(), bs.Capacity())
		}
	}
}

// TestReserve pins the presizing contract: reserving mid-churn keeps
// every live call intact, and a reserved pool performs zero allocations
// while the population stays at or below the reserved bound.
func TestReserve(t *testing.T) {
	bs := newBS(t, 40)
	for id := 1; id <= 5; id++ {
		if err := bs.Admit(Call{ID: id, Class: traffic.Voice, BU: 2}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := bs.Release(3); err != nil {
		t.Fatal(err)
	}
	bs.Reserve(bs.Capacity())
	bs.Reserve(1) // no-op: below the materialized size
	if bs.NumCalls() != 4 || bs.Used() != 8 {
		t.Fatalf("reserve disturbed the ledger: %d calls, %d BU", bs.NumCalls(), bs.Used())
	}
	for _, id := range []int{1, 2, 4, 5} {
		if _, ok := bs.Call(id); !ok {
			t.Fatalf("call %d lost across Reserve", id)
		}
	}
	// Churn admissions and releases across the reserved pool: allocation-free.
	next := 100
	avg := testing.AllocsPerRun(50, func() {
		for i := 0; i < 10; i++ {
			if err := bs.Admit(Call{ID: next, Class: traffic.Text, BU: 1}); err != nil {
				t.Fatal(err)
			}
			next++
		}
		for i := next - 10; i < next; i++ {
			if _, err := bs.Release(i); err != nil {
				t.Fatal(err)
			}
		}
	})
	if avg != 0 {
		t.Fatalf("reserved pool allocates: %.2f allocs per churn round", avg)
	}
}
