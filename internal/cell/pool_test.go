package cell

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"facs/internal/geo"
	"facs/internal/traffic"
)

// refLedger is the pre-pool map-based BaseStation ledger, kept here as
// the behavioural oracle for the struct-of-arrays pool.
type refLedger struct {
	capacity int
	calls    map[int]Call
	usedRT   int
	usedNRT  int
}

func newRefLedger(capacity int) *refLedger {
	return &refLedger{capacity: capacity, calls: make(map[int]Call)}
}

func (r *refLedger) free() int { return r.capacity - r.usedRT - r.usedNRT }

func (r *refLedger) admit(c Call) error {
	if c.BU <= 0 || !c.Class.Valid() {
		return errors.New("invalid")
	}
	if _, dup := r.calls[c.ID]; dup {
		return ErrDuplicateCall
	}
	if c.BU > r.free() {
		return ErrInsufficientBandwidth
	}
	r.calls[c.ID] = c
	if c.Class.RealTime() {
		r.usedRT += c.BU
	} else {
		r.usedNRT += c.BU
	}
	return nil
}

func (r *refLedger) release(id int) (Call, error) {
	c, ok := r.calls[id]
	if !ok {
		return Call{}, ErrUnknownCall
	}
	delete(r.calls, id)
	if c.Class.RealTime() {
		r.usedRT -= c.BU
	} else {
		r.usedNRT -= c.BU
	}
	return c, nil
}

func (r *refLedger) sorted() []Call {
	out := make([]Call, 0, len(r.calls))
	for _, c := range r.calls {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (r *refLedger) classBU(class traffic.Class) int {
	var sum int
	for _, c := range r.calls {
		if c.Class == class {
			sum += c.BU
		}
	}
	return sum
}

// sameOutcome reports whether two ledger errors agree: both nil, or both
// classifiable as the same sentinel / both "invalid argument".
func sameOutcome(poolErr, refErr error) bool {
	if (poolErr == nil) != (refErr == nil) {
		return false
	}
	if poolErr == nil {
		return true
	}
	for _, sentinel := range []error{ErrDuplicateCall, ErrInsufficientBandwidth, ErrUnknownCall} {
		if errors.Is(refErr, sentinel) {
			return errors.Is(poolErr, sentinel)
		}
	}
	// Reference rejected the arguments outright; the pool must too, with
	// a non-sentinel validation error.
	return !errors.Is(poolErr, ErrDuplicateCall) &&
		!errors.Is(poolErr, ErrInsufficientBandwidth) &&
		!errors.Is(poolErr, ErrUnknownCall)
}

// TestPoolMatchesMapLedger drives the struct-of-arrays BaseStation and
// the old map-based ledger through the same randomized admit/release
// stream (including duplicate IDs, unknown releases, overcommit attempts
// and degenerate BU) and checks they agree on every outcome and on all
// observable state after every operation.
func TestPoolMatchesMapLedger(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	bs := newBS(t, 60)
	ref := newRefLedger(60)
	classes := []traffic.Class{traffic.Text, traffic.Voice, traffic.Video, traffic.Class(9)}

	live := make([]int, 0, 64)
	nextID := 0
	for op := 0; op < 20000; op++ {
		switch {
		case rng.Intn(100) < 55: // admit
			var c Call
			switch r := rng.Intn(100); {
			case r < 5 && len(live) > 0: // duplicate ID
				id := live[rng.Intn(len(live))]
				c = Call{ID: id, Class: traffic.Voice, BU: 5}
			case r < 10: // degenerate BU
				c = Call{ID: nextID, Class: traffic.Text, BU: rng.Intn(3) - 2}
				nextID++
			case r < 13: // invalid class
				c = Call{ID: nextID, Class: classes[3], BU: 1}
				nextID++
			default:
				class := classes[rng.Intn(3)]
				c = Call{ID: nextID, Class: class, BU: class.BandwidthUnits(),
					AdmittedAt: float64(op), Handoff: rng.Intn(2) == 0}
				nextID++
			}
			errPool := bs.Admit(c)
			errRef := ref.admit(c)
			if !sameOutcome(errPool, errRef) {
				t.Fatalf("op %d: Admit(%+v) pool=%v ref=%v", op, c, errPool, errRef)
			}
			if errPool == nil {
				live = append(live, c.ID)
			}
		default: // release (sometimes unknown)
			var id int
			if len(live) == 0 || rng.Intn(100) < 10 {
				id = 1_000_000 + rng.Intn(100)
			} else {
				i := rng.Intn(len(live))
				id = live[i]
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			}
			cPool, errPool := bs.Release(id)
			cRef, errRef := ref.release(id)
			if !sameOutcome(errPool, errRef) {
				t.Fatalf("op %d: Release(%d) pool=%v ref=%v", op, id, errPool, errRef)
			}
			if errPool == nil && cPool != cRef {
				t.Fatalf("op %d: Release(%d) returned %+v, ref %+v", op, id, cPool, cRef)
			}
		}

		if bs.Used() != ref.usedRT+ref.usedNRT || bs.RTC() != ref.usedRT || bs.NRTC() != ref.usedNRT {
			t.Fatalf("op %d: counters diverged: pool used/RTC/NRTC=%d/%d/%d ref=%d/%d/%d",
				op, bs.Used(), bs.RTC(), bs.NRTC(), ref.usedRT+ref.usedNRT, ref.usedRT, ref.usedNRT)
		}
		if bs.NumCalls() != len(ref.calls) {
			t.Fatalf("op %d: NumCalls=%d ref=%d", op, bs.NumCalls(), len(ref.calls))
		}
	}

	// Deep-compare final observable state.
	got, want := bs.Calls(), ref.sorted()
	if len(got) != len(want) {
		t.Fatalf("Calls(): %d calls, ref %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Calls()[%d] = %+v, ref %+v", i, got[i], want[i])
		}
		if c, ok := bs.Call(got[i].ID); !ok || c != got[i] {
			t.Fatalf("Call(%d) = %+v,%v", got[i].ID, c, ok)
		}
	}
	for _, class := range traffic.Classes() {
		if bs.ClassBU(class) != ref.classBU(class) {
			t.Fatalf("ClassBU(%v) = %d, ref %d", class, bs.ClassBU(class), ref.classBU(class))
		}
	}
}

// TestPoolHandoffEquivalence checks Network.Handoff keeps the pool-based
// ledgers consistent under randomized moves, including drops.
func TestPoolHandoffEquivalence(t *testing.T) {
	net, err := NewNetwork(NetworkConfig{Rings: 2, CapacityBU: 30})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	stations := net.Stations()
	type loc struct {
		hex geo.Hex
		bu  int
	}
	where := make(map[int]loc)
	nextID := 0
	for op := 0; op < 5000; op++ {
		switch {
		case rng.Intn(100) < 40 || len(where) == 0: // admit somewhere
			bs := stations[rng.Intn(len(stations))]
			class := traffic.Classes()[rng.Intn(3)]
			c := Call{ID: nextID, Class: class, BU: class.BandwidthUnits()}
			nextID++
			if err := bs.Admit(c); err == nil {
				where[c.ID] = loc{hex: bs.Hex(), bu: c.BU}
			}
		default: // hand off a random live call to a random neighbour
			var id int
			for id = range where { // any element; order does not matter here
				break
			}
			l := where[id]
			neigh := l.hex.Neighbors()
			to := neigh[rng.Intn(len(neigh))]
			err := net.Handoff(id, l.hex, to, float64(op))
			dst, inside := net.At(to)
			if !inside {
				if err == nil {
					t.Fatalf("op %d: handoff into missing cell %v succeeded", op, to)
				}
				continue
			}
			if err != nil {
				// Drop candidate: call must still be at the source.
				if c, ok := netStation(t, net, l.hex).Call(id); !ok || c.BU != l.bu {
					t.Fatalf("op %d: failed handoff lost call %d", op, id)
				}
				continue
			}
			if _, ok := netStation(t, net, l.hex).Call(id); ok {
				t.Fatalf("op %d: call %d still at source after handoff", op, id)
			}
			c, ok := dst.Call(id)
			if !ok || c.BU != l.bu || !c.Handoff {
				t.Fatalf("op %d: call %d at target = %+v,%v", op, id, c, ok)
			}
			where[id] = loc{hex: to, bu: l.bu}
		}
	}
	// Conservation: per-station Used matches the sum of tracked calls.
	usedByHex := make(map[geo.Hex]int)
	for _, l := range where {
		usedByHex[l.hex] += l.bu
	}
	for _, bs := range net.Stations() {
		if bs.Used() != usedByHex[bs.Hex()] {
			t.Fatalf("station %v used=%d, tracked %d", bs.Hex(), bs.Used(), usedByHex[bs.Hex()])
		}
	}
	if net.TotalUsed() != sumValues(usedByHex) {
		t.Fatalf("TotalUsed=%d, tracked %d", net.TotalUsed(), sumValues(usedByHex))
	}
}

func netStation(t *testing.T, n *Network, h geo.Hex) *BaseStation {
	t.Helper()
	bs, ok := n.At(h)
	if !ok {
		t.Fatalf("no station at %v", h)
	}
	return bs
}

func sumValues(m map[geo.Hex]int) int {
	var s int
	for _, v := range m {
		s += v
	}
	return s
}

// TestPoolSlotReuse pins the free-list mechanics: released slots are
// recycled before the backing array grows.
func TestPoolSlotReuse(t *testing.T) {
	bs := newBS(t, 1000)
	for i := 0; i < 50; i++ {
		if err := bs.Admit(Call{ID: i, Class: traffic.Text, BU: 1}); err != nil {
			t.Fatal(err)
		}
	}
	baseSlots := len(bs.pool.slots)
	for round := 0; round < 100; round++ {
		id := 1000 + round
		if _, err := bs.Release(round % 50); err != nil && round < 50 {
			t.Fatal(err)
		}
		if round < 50 {
			if err := bs.Admit(Call{ID: id, Class: traffic.Voice, BU: 5}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if len(bs.pool.slots) != baseSlots {
		t.Fatalf("slot array grew from %d to %d despite free-list reuse", baseSlots, len(bs.pool.slots))
	}
	// dense/pos invariants hold after churn.
	for di, slot := range bs.pool.dense {
		if bs.pool.pos[slot] != int32(di) {
			t.Fatalf("dense[%d]=%d but pos[%d]=%d", di, slot, slot, bs.pool.pos[slot])
		}
	}
	freeCount := 0
	for slot, p := range bs.pool.pos {
		if p == -1 {
			freeCount++
			if bs.pool.slots[slot] != (Call{}) {
				t.Fatalf("free slot %d not zeroed: %+v", slot, bs.pool.slots[slot])
			}
		}
	}
	if freeCount != len(bs.pool.free) {
		t.Fatalf("pos reports %d free slots, free list has %d", freeCount, len(bs.pool.free))
	}
}

// TestAdmitReleaseSteadyStateZeroAllocs is the allocation-regression
// gate for the memory overhaul: once the pool has reached its
// working-set size, admit/release churn must not allocate.
func TestAdmitReleaseSteadyStateZeroAllocs(t *testing.T) {
	bs := newBS(t, 100000)
	// Warm the pool and the ID index to working-set size.
	const workingSet = 4096
	for i := 0; i < workingSet; i++ {
		if err := bs.Admit(Call{ID: i, Class: traffic.Voice, BU: 5}); err != nil {
			t.Fatal(err)
		}
	}
	id := workingSet
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := bs.Release(id - workingSet); err != nil {
			t.Fatal(err)
		}
		if err := bs.Admit(Call{ID: id, Class: traffic.Voice, BU: 5}); err != nil {
			t.Fatal(err)
		}
		id++
	})
	if allocs != 0 {
		t.Fatalf("steady-state admit/release allocates %.1f allocs/op, want 0", allocs)
	}
}
