package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the parallel execution layer of the reproduction
// harness. A figure regeneration is a grid of completely independent
// simulation runs — one per (load point, replication seed) pair — and
// every run derives all of its randomness from its own seed through
// named sim.NewStream streams. Sharding the runs across a worker pool
// therefore cannot change any run's result: the only requirement for
// worker-count-invariant output is that results are merged in job
// order, which runShards guarantees by writing each job's result into
// its own slot. The determinism tests in parallel_test.go pin this
// property at 1, 4 and NumCPU workers.

// DefaultWorkers returns the worker count used when a configuration
// leaves Workers at zero: one per CPU.
func DefaultWorkers() int { return runtime.NumCPU() }

// runShards executes jobs 0..n-1 on min(workers, n) goroutines pulling
// from a shared atomic counter. It returns the error of the
// lowest-indexed failing job (so failures are reported identically for
// every worker count); remaining jobs still run to completion.
func runShards(n, workers int, run func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		var firstErr error
		for i := 0; i < n; i++ {
			if err := run(i); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		errIdx   int
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := run(i); err != nil {
					mu.Lock()
					if firstErr == nil || i < errIdx {
						firstErr = err
						errIdx = i
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// RunSingleCellSeeds runs the single-cell scenario once per seed,
// sharded across the worker pool (workers <= 0 selects DefaultWorkers),
// and returns the per-seed results in seed order. The output is
// byte-identical for every worker count because each replication's
// randomness derives only from its own seed. The controller in cfg is
// shared across replications and must be safe for concurrent use (the
// FACS System, CompiledController and every baseline are).
func RunSingleCellSeeds(cfg SingleCellConfig, seeds []int64, workers int) ([]SingleCellResult, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("experiments: need at least one seed")
	}
	out := make([]SingleCellResult, len(seeds))
	err := runShards(len(seeds), workers, func(i int) error {
		c := cfg
		c.Seed = seeds[i]
		res, err := RunSingleCell(c)
		if err != nil {
			return fmt.Errorf("experiments: seed %d: %w", seeds[i], err)
		}
		out[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RunMultiCellSeeds runs the multi-cell scenario once per seed, sharded
// across the worker pool, returning per-seed results in seed order
// (byte-identical for every worker count). cfg.NewController is invoked
// once per replication, so stateful controllers such as SCC get a
// fresh instance each run.
func RunMultiCellSeeds(cfg MultiCellConfig, seeds []int64, workers int) ([]MultiCellResult, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("experiments: need at least one seed")
	}
	out := make([]MultiCellResult, len(seeds))
	err := runShards(len(seeds), workers, func(i int) error {
		c := cfg
		c.Seed = seeds[i]
		res, err := RunMultiCell(c)
		if err != nil {
			return fmt.Errorf("experiments: seed %d: %w", seeds[i], err)
		}
		out[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// replicate runs fn for every (load point, seed) pair of the figure
// configuration on the worker pool and returns the results as
// out[pointIdx][seedIdx]. Merging is by index, so the grid is
// identical for every worker count.
func replicate[T any](fc FigureConfig, fn func(n int, seed int64) (T, error)) ([][]T, error) {
	points, seeds := fc.LoadPoints, fc.Seeds
	out := make([][]T, len(points))
	for i := range out {
		out[i] = make([]T, len(seeds))
	}
	err := runShards(len(points)*len(seeds), fc.Workers, func(i int) error {
		pi, si := i/len(seeds), i%len(seeds)
		res, err := fn(points[pi], seeds[si])
		if err != nil {
			return fmt.Errorf("experiments: N=%d seed=%d: %w", points[pi], seeds[si], err)
		}
		out[pi][si] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
