package experiments

import (
	"fmt"

	"facs/internal/cac"
	"facs/internal/cell"
	"facs/internal/facs"
	"facs/internal/metrics"
	"facs/internal/scc"
)

// Figure is one regenerated paper artifact: a set of labelled series over
// the "number of requesting connections" axis, plus free-form notes
// (secondary metrics such as handoff drop rates).
type Figure struct {
	// ID is the artifact key, e.g. "fig7".
	ID string
	// Title restates the paper caption.
	Title string
	// XLabel / YLabel name the axes.
	XLabel string
	YLabel string
	// Series holds one curve per parameter value (or per controller).
	Series []metrics.Series
	// Notes records secondary observations (drop rates, utilization).
	Notes []string
}

// FigureConfig controls a figure regeneration run.
type FigureConfig struct {
	// LoadPoints lists the x-axis values. Default 10, 20, ..., 100.
	LoadPoints []int
	// Seeds lists the replication seeds; reported curves are the means
	// across seeds. Default {1, 2, 3, 4, 5}.
	Seeds []int64
	// Workers is the size of the worker pool the independent
	// (load point, seed) replications are sharded across. Zero selects
	// DefaultWorkers (one per CPU); results are identical for every
	// worker count.
	Workers int
	// Compiled switches the FACS controller under test to the
	// lookup-table fast path (facs.CompiledController). Admission
	// decisions and grades are guaranteed to match the exact engine,
	// so curves are unchanged; only the runtime drops. Ablations that
	// probe non-default engine configurations ignore the flag.
	Compiled bool
}

func (c FigureConfig) withDefaults() FigureConfig {
	if len(c.LoadPoints) == 0 {
		c.LoadPoints = []int{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	}
	if len(c.Seeds) == 0 {
		c.Seeds = []int64{1, 2, 3, 4, 5}
	}
	if c.Workers <= 0 {
		c.Workers = DefaultWorkers()
	}
	return c
}

// facsController returns the FACS instance the figure curves run:
// the shared compiled fast path when fc.Compiled is set, otherwise a
// fresh exact System. Both are safe for concurrent use across
// replications.
func (c FigureConfig) facsController() (cac.Controller, error) {
	if c.Compiled {
		return facs.DefaultCompiled()
	}
	return facs.New()
}

// Validate checks the configuration.
func (c FigureConfig) Validate() error {
	for _, n := range c.LoadPoints {
		if n <= 0 {
			return fmt.Errorf("experiments: load point %d must be > 0", n)
		}
	}
	return nil
}

// singleCellCurve runs the single-cell scenario across the load points
// on the worker pool, averaging acceptance over the seeds. The base
// controller is built once and shared by every replication; mutate may
// override it per configuration.
func singleCellCurve(fc FigureConfig, label string, mutate func(*SingleCellConfig)) (metrics.Series, error) {
	ctrl, err := fc.facsController()
	if err != nil {
		return metrics.Series{}, err
	}
	grid, err := replicate(fc, func(n int, seed int64) (SingleCellResult, error) {
		cfg := SingleCellConfig{
			Controller:  ctrl,
			NumRequests: n,
			Seed:        seed,
		}
		mutate(&cfg)
		return RunSingleCell(cfg)
	})
	if err != nil {
		return metrics.Series{}, fmt.Errorf("experiments: %s: %w", label, err)
	}
	series := metrics.Series{Label: label}
	for pi, n := range fc.LoadPoints {
		var acc float64
		for _, res := range grid[pi] {
			acc += res.AcceptedPct()
		}
		series.Append(float64(n), acc/float64(len(fc.Seeds)))
	}
	return series, nil
}

// multiCellCurve runs the multi-cell scenario for every (load point,
// seed) pair on the worker pool, returning the full result grid in
// deterministic order for the caller to aggregate.
func multiCellCurve(fc FigureConfig, base MultiCellConfig) ([][]MultiCellResult, error) {
	return replicate(fc, func(n int, seed int64) (MultiCellResult, error) {
		cfg := base
		cfg.NumRequests = n
		cfg.Seed = seed
		return RunMultiCell(cfg)
	})
}

// Figure7 regenerates paper Fig. 7: percentage of accepted calls versus
// number of requesting connections for user speeds 4, 10, 30 and 60 km/h.
func Figure7(fc FigureConfig) (Figure, error) {
	fc = fc.withDefaults()
	if err := fc.Validate(); err != nil {
		return Figure{}, err
	}
	fig := Figure{
		ID:     "fig7",
		Title:  "Fig. 7: accepted calls vs requesting connections, by user speed",
		XLabel: "number of requesting connections",
		YLabel: "percentage of accepted calls",
	}
	for _, speed := range []float64{4, 10, 30, 60} {
		speed := speed
		s, err := singleCellCurve(fc, fmt.Sprintf("%gkm/h", speed), func(cfg *SingleCellConfig) {
			cfg.SpeedKmh = Pin(speed)
		})
		if err != nil {
			return Figure{}, err
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Figure8 regenerates paper Fig. 8: percentage of accepted calls versus
// number of requesting connections for user angles 0..90 degrees
// (deviation from heading straight at the base station), at 30 km/h.
func Figure8(fc FigureConfig) (Figure, error) {
	fc = fc.withDefaults()
	if err := fc.Validate(); err != nil {
		return Figure{}, err
	}
	fig := Figure{
		ID:     "fig8",
		Title:  "Fig. 8: accepted calls vs requesting connections, by user angle",
		XLabel: "number of requesting connections",
		YLabel: "percentage of accepted calls",
	}
	for _, angle := range []float64{0, 30, 50, 60, 90} {
		angle := angle
		s, err := singleCellCurve(fc, fmt.Sprintf("angle=%g", angle), func(cfg *SingleCellConfig) {
			cfg.AngleOffsetDeg = Pin(angle)
		})
		if err != nil {
			return Figure{}, err
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Figure9 regenerates paper Fig. 9: percentage of accepted calls versus
// number of requesting connections for user-BS distances 1, 3, 7 and
// 10 km, at 30 km/h.
func Figure9(fc FigureConfig) (Figure, error) {
	fc = fc.withDefaults()
	if err := fc.Validate(); err != nil {
		return Figure{}, err
	}
	fig := Figure{
		ID:     "fig9",
		Title:  "Fig. 9: accepted calls vs requesting connections, by distance",
		XLabel: "number of requesting connections",
		YLabel: "percentage of accepted calls",
	}
	for _, dist := range []float64{1, 3, 7, 10} {
		dist := dist
		s, err := singleCellCurve(fc, fmt.Sprintf("%gkm", dist), func(cfg *SingleCellConfig) {
			cfg.DistanceKm = Pin(dist)
		})
		if err != nil {
			return Figure{}, err
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// FACSFactory builds the default FACS controller for a multi-cell run.
func FACSFactory() func(*cell.Network) (cac.Controller, error) {
	return func(*cell.Network) (cac.Controller, error) { return facs.New() }
}

// CompiledFACSFactory supplies the shared lookup-table FACS fast path
// for multi-cell runs. The controller is stateless and concurrency
// safe, so one compiled instance serves every cell and replication.
func CompiledFACSFactory() func(*cell.Network) (cac.Controller, error) {
	return func(*cell.Network) (cac.Controller, error) { return facs.DefaultCompiled() }
}

// sccFig10Config is the Fig. 10 SCC parameterisation: full-bandwidth
// reservation over the shadow cluster plus the cluster-coverage (path
// survivability) requirement, per internal/scc/DESIGN.md.
func sccFig10Config(net *cell.Network) scc.Config {
	return scc.Config{
		Network:                net,
		Reservation:            scc.ReservationFull,
		RequireClusterCoverage: true,
	}
}

// SCCFactory builds the Fig. 10 SCC baseline on the incrementally
// maintained demand ledger (scc.Ledger): decisions are byte-identical
// to the recompute Controller's, at O(horizon x cluster-cells) per
// decision instead of O(active x horizon x stations).
func SCCFactory() func(*cell.Network) (cac.Controller, error) {
	return func(net *cell.Network) (cac.Controller, error) {
		return scc.NewLedger(sccFig10Config(net))
	}
}

// SCCRecomputeFactory builds the same baseline on the original
// recompute-on-query Controller — the reference oracle the
// golden-equivalence suite holds the ledger against.
func SCCRecomputeFactory() func(*cell.Network) (cac.Controller, error) {
	return func(net *cell.Network) (cac.Controller, error) {
		return scc.New(sccFig10Config(net))
	}
}

// Figure10 regenerates paper Fig. 10: FACS versus SCC on the multi-cell
// scenario. Secondary QoS metrics (handoff drops, utilization) are
// reported in the figure notes.
func Figure10(fc FigureConfig) (Figure, error) {
	fc = fc.withDefaults()
	if err := fc.Validate(); err != nil {
		return Figure{}, err
	}
	fig := Figure{
		ID:     "fig10",
		Title:  "Fig. 10: FACS vs SCC, accepted calls vs requesting connections",
		XLabel: "number of requesting connections",
		YLabel: "percentage of accepted calls",
	}
	type scheme struct {
		label   string
		factory func(*cell.Network) (cac.Controller, error)
	}
	facsFactory := FACSFactory()
	if fc.Compiled {
		facsFactory = CompiledFACSFactory()
	}
	schemes := []scheme{
		{"FACS", facsFactory},
		{"SCC", SCCFactory()},
	}
	for _, sc := range schemes {
		grid, err := multiCellCurve(fc, MultiCellConfig{NewController: sc.factory})
		if err != nil {
			return Figure{}, fmt.Errorf("experiments: %s: %w", sc.label, err)
		}
		series := metrics.Series{Label: sc.label}
		var dropSum, utilSum float64
		var runs int
		for pi, n := range fc.LoadPoints {
			var acc float64
			for _, res := range grid[pi] {
				acc += res.AcceptedPct()
				dropSum += res.DropPct()
				utilSum += res.Utilization.Mean()
				runs++
			}
			series.Append(float64(n), acc/float64(len(fc.Seeds)))
		}
		fig.Series = append(fig.Series, series)
		fig.Notes = append(fig.Notes, fmt.Sprintf(
			"%s: mean handoff drop %.2f%%, mean utilization %.1f%% across all runs",
			sc.label, dropSum/float64(runs), 100*utilSum/float64(runs)))
	}
	return fig, nil
}

// AllFigures regenerates every result figure of the paper in order.
func AllFigures(fc FigureConfig) ([]Figure, error) {
	builders := []func(FigureConfig) (Figure, error){Figure7, Figure8, Figure9, Figure10}
	out := make([]Figure, 0, len(builders))
	for _, build := range builders {
		fig, err := build(fc)
		if err != nil {
			return nil, err
		}
		out = append(out, fig)
	}
	return out, nil
}
