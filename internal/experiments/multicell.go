package experiments

import (
	"errors"
	"fmt"
	"math/rand"

	"facs/internal/cac"
	"facs/internal/cell"
	"facs/internal/geo"
	"facs/internal/gps"
	"facs/internal/metrics"
	"facs/internal/mobility"
	"facs/internal/sim"
	"facs/internal/traffic"
)

// MultiCellConfig parameterises the Fig. 10 comparison scenario: a
// hexagonal multi-cell network with mobile users, handoffs, and one
// admission controller deciding new-call admission. Running the identical
// workload (same seed) through two controllers yields the paper's
// FACS-vs-SCC comparison.
type MultiCellConfig struct {
	// NewController builds the controller under test for a freshly
	// built network. Required.
	NewController func(net *cell.Network) (cac.Controller, error)
	// Rings is the network size (default 1: seven cells).
	Rings int
	// CellRadiusM is the hex cell radius (default 1500 m).
	CellRadiusM float64
	// CapacityBU is the per-station bandwidth (default 40).
	CapacityBU int
	// NumRequests is the paper's x-axis.
	NumRequests int
	// WindowSec is the arrival window. The default of 150 s is chosen
	// so that 100 requesting connections saturate the seven-cell
	// network, giving the figure its full dynamic range.
	WindowSec float64
	// MeanHoldingSec is the exponential mean call duration (default 120).
	MeanHoldingSec float64
	// Mix is the class mix (default 60/30/10).
	Mix traffic.Mix
	// SpeedKmh samples user speeds (default Span{10, 80}: a mixed
	// pedestrian-to-vehicular population).
	SpeedKmh Span
	// TurnSigmaDeg / RefSpeedKmh parameterise user turning (defaults
	// 12 / 15).
	TurnSigmaDeg float64
	RefSpeedKmh  float64
	// GPSNoiseM is the per-axis GPS error (default 5 m; negative
	// disables).
	GPSNoiseM float64
	// ObserveSteps is the GPS warm-up before admission (default 10).
	ObserveSteps int
	// MoveIntervalSec is how often active calls update their position
	// and check for handoffs (default 5 s).
	MoveIntervalSec float64
	// TickIntervalSec is how often controllers with time-driven state
	// (cac.Ticker, e.g. the incremental SCC ledger) receive OnTick while
	// arrivals remain or calls are active. Default 10 s (the SCC
	// projection quantum); controllers that are not Tickers get none.
	TickIntervalSec float64
	// HandoffPolicy selects how handoffs are admitted at the target
	// cell. Default HandoffPhysical.
	HandoffPolicy HandoffPolicy
	// Seed drives all randomness.
	Seed int64
}

// HandoffPolicy selects the handoff admission rule.
type HandoffPolicy int

// Handoff policies.
const (
	// HandoffPhysical admits a handoff whenever the target cell has
	// room: the paper's implicit baseline (it leaves call priority to
	// future work).
	HandoffPhysical HandoffPolicy = iota + 1
	// HandoffControlled asks the admission controller with the Handoff
	// flag set, so that priority-aware controllers (e.g. FACS with
	// WithHandoffBias, or the guard-channel scheme) can privilege or
	// throttle handoffs. This implements the paper's stated future work.
	HandoffControlled
)

// String implements fmt.Stringer.
func (h HandoffPolicy) String() string {
	switch h {
	case HandoffPhysical:
		return "physical"
	case HandoffControlled:
		return "controlled"
	default:
		return fmt.Sprintf("HandoffPolicy(%d)", int(h))
	}
}

func (c MultiCellConfig) withDefaults() MultiCellConfig {
	if c.Rings == 0 {
		c.Rings = 1
	}
	if c.CellRadiusM == 0 {
		c.CellRadiusM = 1500
	}
	if c.CapacityBU == 0 {
		c.CapacityBU = cell.DefaultCapacityBU
	}
	if c.WindowSec == 0 {
		c.WindowSec = 150
	}
	if c.MeanHoldingSec == 0 {
		c.MeanHoldingSec = 120
	}
	if (c.Mix == traffic.Mix{}) {
		c.Mix = traffic.DefaultMix()
	}
	if (c.SpeedKmh == Span{}) {
		c.SpeedKmh = Span{Min: 10, Max: 80}
	}
	if c.TurnSigmaDeg == 0 {
		c.TurnSigmaDeg = 12
	}
	if c.RefSpeedKmh == 0 {
		c.RefSpeedKmh = 15
	}
	if c.GPSNoiseM == 0 {
		c.GPSNoiseM = 5
	}
	if c.ObserveSteps == 0 {
		c.ObserveSteps = 10
	}
	if c.MoveIntervalSec == 0 {
		c.MoveIntervalSec = 5
	}
	if c.TickIntervalSec == 0 {
		c.TickIntervalSec = 10
	}
	if c.HandoffPolicy == 0 {
		c.HandoffPolicy = HandoffPhysical
	}
	return c
}

// Validate checks the configuration.
func (c MultiCellConfig) Validate() error {
	if c.NewController == nil {
		return fmt.Errorf("experiments: multi-cell config needs a controller factory")
	}
	if c.NumRequests <= 0 {
		return fmt.Errorf("experiments: NumRequests must be > 0, got %d", c.NumRequests)
	}
	if !(c.WindowSec > 0) || !(c.MeanHoldingSec > 0) || !(c.MoveIntervalSec > 0) || !(c.TickIntervalSec > 0) {
		return fmt.Errorf("experiments: time parameters must be > 0")
	}
	if c.ObserveSteps < 2 {
		return fmt.Errorf("experiments: ObserveSteps must be >= 2, got %d", c.ObserveSteps)
	}
	if err := c.SpeedKmh.Validate(); err != nil {
		return err
	}
	if c.HandoffPolicy != HandoffPhysical && c.HandoffPolicy != HandoffControlled {
		return fmt.Errorf("experiments: unknown handoff policy %v", c.HandoffPolicy)
	}
	return c.Mix.Validate()
}

// MultiCellResult aggregates one multi-cell run.
type MultiCellResult struct {
	// ControllerName identifies the scheme under test.
	ControllerName string
	// Requested/Accepted count new-call admission outcomes.
	Requested int
	Accepted  int
	// HandoffAttempts/HandoffDrops count inter-cell moves of active
	// calls; a drop is a forced termination because the target cell had
	// no room.
	HandoffAttempts int
	HandoffDrops    int
	// Completed counts calls that ended normally (including leaving
	// coverage).
	Completed int
	// Utilization summarises network occupancy (fraction of total BU)
	// sampled at every arrival.
	Utilization metrics.Summary
}

// AcceptedPct returns 100 * accepted / requested.
func (r MultiCellResult) AcceptedPct() float64 {
	if r.Requested == 0 {
		return 0
	}
	return 100 * float64(r.Accepted) / float64(r.Requested)
}

// DropPct returns 100 * drops / handoff attempts.
func (r MultiCellResult) DropPct() float64 {
	if r.HandoffAttempts == 0 {
		return 0
	}
	return 100 * float64(r.HandoffDrops) / float64(r.HandoffAttempts)
}

// activeCall is the runtime state of one admitted call in the multi-cell
// simulation. Records live in a callArena and are recycled when the call
// ends, so long runs do not leave one heap object per historical call.
type activeCall struct {
	id       int
	bu       int
	class    traffic.Class
	walk     *mobility.TurningWalk
	hex      geo.Hex
	endEv    *sim.Event
	moveEv   *sim.Event
	dropped  bool
	nextFree *activeCall
}

// arenaChunkLen is the records-per-chunk granularity of callArena.
const arenaChunkLen = 256

// callArena hands out pointer-stable activeCall records from fixed-size
// chunks with a free list, so the steady-state call population recycles
// a bounded set of records instead of allocating one per call. Records
// are backed by chunks that are only ever appended to within their fixed
// capacity, so handed-out pointers never move.
type callArena struct {
	chunks [][]activeCall
	free   *activeCall
}

// alloc returns a zeroed record.
func (a *callArena) alloc() *activeCall {
	if c := a.free; c != nil {
		a.free = c.nextFree
		*c = activeCall{}
		return c
	}
	if n := len(a.chunks); n == 0 || len(a.chunks[n-1]) == arenaChunkLen {
		a.chunks = append(a.chunks, make([]activeCall, 0, arenaChunkLen))
	}
	last := len(a.chunks) - 1
	a.chunks[last] = append(a.chunks[last], activeCall{})
	return &a.chunks[last][len(a.chunks[last])-1]
}

// release recycles a record. The caller must guarantee no scheduled
// event still references it: every handler closure capturing the record
// has either fired or been cancelled.
func (a *callArena) release(c *activeCall) {
	*c = activeCall{nextFree: a.free}
	a.free = c
}

// RunMultiCell executes the multi-cell scenario.
func RunMultiCell(cfg MultiCellConfig) (MultiCellResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return MultiCellResult{}, err
	}
	net, err := cell.NewNetwork(cell.NetworkConfig{
		Rings:       cfg.Rings,
		CellRadiusM: cfg.CellRadiusM,
		CapacityBU:  cfg.CapacityBU,
	})
	if err != nil {
		return MultiCellResult{}, err
	}
	controller, err := cfg.NewController(net)
	if err != nil {
		return MultiCellResult{}, err
	}
	observer, _ := controller.(cac.Observer)
	updater, _ := controller.(cac.StateUpdater)
	ticker, _ := controller.(cac.Ticker)

	gen, err := traffic.NewGenerator(traffic.GeneratorConfig{
		Mix:              cfg.Mix,
		MeanInterarrival: cfg.WindowSec / float64(cfg.NumRequests),
		MeanHolding:      cfg.MeanHoldingSec,
	}, sim.NewStream(cfg.Seed, "traffic"))
	if err != nil {
		return MultiCellResult{}, err
	}
	userRNG := sim.NewStream(cfg.Seed, "users")
	gpsRNG := sim.NewStream(cfg.Seed, "gps")

	result := MultiCellResult{ControllerName: controller.Name()}
	run := &multiCellRun{
		cfg:      cfg,
		net:      net,
		ctrl:     controller,
		observer: observer,
		updater:  updater,
		ticker:   ticker,
		userRNG:  userRNG,
		gpsRNG:   gpsRNG,
		result:   &result,
	}

	sched := sim.NewScheduler()
	for _, req := range gen.Take(cfg.NumRequests) {
		req := req
		run.pendingArrivals++
		if _, err := sched.At(req.ArrivalTime, func(s *sim.Scheduler) {
			run.arrive(s, req)
		}); err != nil {
			return MultiCellResult{}, err
		}
	}
	if ticker != nil {
		if _, err := sched.After(cfg.TickIntervalSec, run.tick); err != nil {
			return MultiCellResult{}, err
		}
	}
	sched.Run(0)
	if run.err != nil {
		return MultiCellResult{}, run.err
	}
	return result, nil
}

type multiCellRun struct {
	cfg      MultiCellConfig
	net      *cell.Network
	ctrl     cac.Controller
	observer cac.Observer
	updater  cac.StateUpdater
	ticker   cac.Ticker
	userRNG  *rand.Rand
	gpsRNG   *rand.Rand
	result   *MultiCellResult
	err      error
	// pendingArrivals and liveCalls gate the tick chain: ticks re-arm
	// only while the run still has work, so the scheduler drains.
	pendingArrivals int
	liveCalls       int
	// reqScratch routes every admission question through the batch
	// pipeline (cac.DecideAll) without a per-decision allocation.
	reqScratch [1]cac.Request
	// arena recycles activeCall records across the call population.
	arena callArena
}

// decide renders one admission decision through the batch pipeline, so
// controllers with a native DecideBatch are exercised uniformly by the
// event-driven runner (single-request batches here, real batches in the
// RunBatchAdmission sweep).
func (r *multiCellRun) decide(req cac.Request) (cac.Decision, error) {
	return cac.DecideOne(r.ctrl, &r.reqScratch, req)
}

// tick delivers the periodic time advance to the controller and re-arms
// itself while the run still has pending arrivals or active calls.
func (r *multiCellRun) tick(s *sim.Scheduler) {
	if r.err != nil {
		return
	}
	r.ticker.OnTick(s.Now())
	if r.pendingArrivals == 0 && r.liveCalls == 0 {
		return
	}
	if _, err := s.After(r.cfg.TickIntervalSec, r.tick); err != nil {
		r.err = err
	}
}

// spawn places a new user uniformly inside network coverage with a random
// heading and a sampled speed, returning its mobility model.
func (r *multiCellRun) spawn() (*mobility.TurningWalk, error) {
	// Bounding box of the deployment with half-cell margin.
	radius := r.cfg.CellRadiusM * (1.8*float64(r.cfg.Rings) + 1)
	var pos geo.Point
	for tries := 0; ; tries++ {
		pos = geo.Point{
			X: sim.Uniform(r.userRNG, -radius, radius),
			Y: sim.Uniform(r.userRNG, -radius, radius),
		}
		if _, err := r.net.StationAt(pos); err == nil {
			break
		}
		if tries > 1000 {
			return nil, fmt.Errorf("experiments: could not place a user inside coverage")
		}
	}
	return mobility.NewTurningWalk(mobility.State{
		Pos:        pos,
		SpeedKmh:   r.cfg.SpeedKmh.Sample(r.userRNG),
		HeadingDeg: sim.Uniform(r.userRNG, -180, 180),
	}, mobility.TurningConfig{
		TurnSigmaDeg: r.cfg.TurnSigmaDeg,
		RefSpeedKmh:  r.cfg.RefSpeedKmh,
	}, r.userRNG)
}

// arrive handles one new connection request.
func (r *multiCellRun) arrive(s *sim.Scheduler, req traffic.Request) {
	r.pendingArrivals--
	if r.err != nil {
		return
	}
	walk, err := r.spawn()
	if err != nil {
		r.err = err
		return
	}
	receiver, err := gps.NewReceiver(walk, gps.ReceiverConfig{
		SampleInterval: 1,
		NoiseSigmaM:    r.cfg.GPSNoiseM,
	}, r.gpsRNG)
	if err != nil {
		r.err = err
		return
	}
	estimator := gps.NewEstimator(5)
	for _, fix := range receiver.Track(r.cfg.ObserveSteps) {
		estimator.AddFix(fix)
	}
	est, ok := estimator.Estimate()
	if !ok {
		r.err = fmt.Errorf("experiments: estimator not ready")
		return
	}
	// The warm-up may have carried the user outside coverage; skip such
	// arrivals without counting them (the user is not in the network).
	bs, err := r.net.StationAt(walk.State().Pos)
	if err != nil {
		return
	}
	r.result.Utilization.Add(float64(r.net.TotalUsed()) / float64(r.net.TotalCapacity()))
	cacReq := cac.Request{
		Call: cell.Call{
			ID:         req.ID,
			Class:      req.Class,
			BU:         req.BU,
			AdmittedAt: s.Now(),
		},
		Station: bs,
		Obs:     gps.Observe(est, bs.Pos()),
		Est:     est,
		Now:     s.Now(),
	}
	decision, err := r.decide(cacReq)
	if err != nil {
		r.err = err
		return
	}
	r.result.Requested++
	if !decision.Accepted() {
		return
	}
	if err := bs.Admit(cacReq.Call); err != nil {
		r.err = fmt.Errorf("experiments: controller accepted an unfittable call: %w", err)
		return
	}
	r.result.Accepted++
	r.liveCalls++
	if r.observer != nil {
		r.observer.OnAdmit(cacReq)
	}
	call := r.arena.alloc()
	call.id = req.ID
	call.bu = req.BU
	call.class = req.Class
	call.walk = walk
	call.hex = bs.Hex()
	call.endEv, err = s.After(req.HoldingTime, func(s *sim.Scheduler) { r.complete(s, call) })
	if err != nil {
		r.err = err
		return
	}
	call.moveEv, err = s.After(r.cfg.MoveIntervalSec, func(s *sim.Scheduler) { r.move(s, call) })
	if err != nil {
		r.err = err
	}
}

// complete ends a call normally.
func (r *multiCellRun) complete(s *sim.Scheduler, call *activeCall) {
	if r.err != nil || call.dropped {
		return
	}
	if call.moveEv != nil {
		call.moveEv.Cancel()
	}
	bs, ok := r.net.At(call.hex)
	if !ok {
		r.err = fmt.Errorf("experiments: call %d completed in unknown cell %v", call.id, call.hex)
		return
	}
	if _, err := bs.Release(call.id); err != nil {
		r.err = err
		return
	}
	r.result.Completed++
	r.liveCalls--
	if r.observer != nil {
		r.observer.OnRelease(call.id, bs, s.Now())
	}
	// Both events are now fired or cancelled, so the record can recycle.
	r.arena.release(call)
}

// dropCall force-terminates a call whose handoff was denied.
func (r *multiCellRun) dropCall(s *sim.Scheduler, call *activeCall) {
	r.result.HandoffDrops++
	call.dropped = true
	if call.endEv != nil {
		call.endEv.Cancel()
	}
	src, ok := r.net.At(call.hex)
	if !ok {
		r.err = fmt.Errorf("experiments: dropping call %d from unknown cell %v", call.id, call.hex)
		return
	}
	if _, err := src.Release(call.id); err != nil {
		r.err = err
		return
	}
	r.liveCalls--
	if r.observer != nil {
		r.observer.OnRelease(call.id, src, s.Now())
	}
	// endEv is cancelled and moveEv is the currently-firing event: no
	// pending handler references the record any more.
	r.arena.release(call)
}

// move advances an active call's user and performs handoffs.
func (r *multiCellRun) move(s *sim.Scheduler, call *activeCall) {
	if r.err != nil || call.dropped {
		return
	}
	st := call.walk.Step(r.cfg.MoveIntervalSec)
	newBS, err := r.net.StationAt(st.Pos)
	if err != nil {
		// The user left coverage: terminate the call normally (the
		// paper's single-operator world has no roaming).
		if errors.Is(err, cell.ErrOutsideCoverage) {
			if call.endEv != nil {
				call.endEv.Cancel()
			}
			call.endEv = nil
			r.complete(s, call)
			return
		}
		r.err = err
		return
	}
	if newBS.Hex() != call.hex {
		r.result.HandoffAttempts++
		if r.cfg.HandoffPolicy == HandoffControlled {
			est := gps.Estimate{
				SpeedKmh:   st.SpeedKmh,
				HeadingDeg: st.HeadingDeg,
				Pos:        st.Pos,
				Time:       s.Now(),
			}
			hoReq := cac.Request{
				Call:    cell.Call{ID: call.id, Class: call.class, BU: call.bu, AdmittedAt: s.Now()},
				Station: newBS,
				Obs:     gps.Observe(est, newBS.Pos()),
				Est:     est,
				Handoff: true,
				Now:     s.Now(),
			}
			decision, err := r.decide(hoReq)
			if err != nil {
				r.err = err
				return
			}
			if !decision.Accepted() {
				r.dropCall(s, call)
				return
			}
		}
		if err := r.net.Handoff(call.id, call.hex, newBS.Hex(), s.Now()); err != nil {
			if errors.Is(err, cell.ErrInsufficientBandwidth) {
				r.dropCall(s, call)
				return
			}
			r.err = err
			return
		}
		call.hex = newBS.Hex()
		if r.updater != nil {
			r.updater.OnStateUpdate(call.id, gps.Estimate{
				SpeedKmh:   st.SpeedKmh,
				HeadingDeg: st.HeadingDeg,
				Pos:        st.Pos,
				Time:       s.Now(),
			}, newBS)
		}
	}
	var schedErr error
	call.moveEv, schedErr = s.After(r.cfg.MoveIntervalSec, func(s *sim.Scheduler) { r.move(s, call) })
	if schedErr != nil {
		r.err = schedErr
	}
}
