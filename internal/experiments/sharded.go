package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"facs/internal/cac"
	"facs/internal/cell"
	"facs/internal/geo"
	"facs/internal/gps"
	"facs/internal/scc"
	"facs/internal/shard"
	"facs/internal/sim"
	"facs/internal/traffic"
)

// ShardedConfig parameterises the closed-loop sharded load generator:
// a multi-cell network partitioned across a shard.Engine, fed with
// waves of synthetic admission requests, where committed calls occupy
// their stations for a configurable number of waves, periodically hand
// off to neighbouring cells (crossing shards whenever the router says
// so), and time-driven controllers receive barrier ticks.
//
// Determinism follows the engine's contract: every request, release,
// tick and handoff is derived from Seed in a fixed order, waves travel
// shard.Engine.SubmitWave (chunked at MaxBatch boundaries in global
// order, never by timing), and handoffs are serialized through the
// engine's FIFO protocol queue — so for cell-local controllers two
// runs with equal configs produce byte-identical decision and handoff
// streams for EVERY shard count (the sharded determinism suite pins
// shard counts 1/2/4/8 against an inline sequential replay).
type ShardedConfig struct {
	// NewController builds the controller for one shard. Required.
	NewController func(v shard.View) (cac.Controller, error)
	// Shards is the engine's decision-loop count (default 1; capped at
	// the cell count).
	Shards int
	// Rings is the network size (default 2: nineteen cells).
	Rings int
	// CellRadiusM is the hex cell radius (default 1500 m).
	CellRadiusM float64
	// CapacityBU is the per-station bandwidth (default 40).
	CapacityBU int
	// Requests is the total number of streamed requests. Required.
	Requests int
	// Wave is the closed-loop window: requests submitted per wave
	// (default 64).
	Wave int
	// MaxBatch is the engine chunk size (default Wave).
	MaxBatch int
	// MaxDelay is the per-shard batching delay (default the serve
	// package default; it cannot change outcomes, only latency).
	MaxDelay time.Duration
	// HoldWaves is how many waves a committed call occupies its station
	// before release (default 4).
	HoldWaves int
	// HandoffEveryWaves runs a handoff round every so many waves
	// (default 2).
	HandoffEveryWaves int
	// HandoffFraction is the probability that an active call joins a
	// handoff round, moving to a uniformly drawn neighbouring cell
	// (default 0.25).
	HandoffFraction float64
	// TickEveryWaves delivers a barrier OnTick to every shard every so
	// many waves (default 8).
	TickEveryWaves int
	// WaveIntervalSec advances simulation time per wave (default 1 s).
	WaveIntervalSec float64
	// Mix is the class mix (default 60/30/10).
	Mix traffic.Mix
	// SpeedKmh samples user speeds (default Span{10, 80}).
	SpeedKmh Span
	// Seed drives all randomness.
	Seed int64
	// DisableExchange turns off the engine's tick-barrier ghost-demand
	// exchange for demand-exchanging controllers (see
	// shard.Config.DisableExchange) — the pre-exchange partitioned-
	// visibility model, used by the divergence measurements.
	DisableExchange bool
	// Partition selects the initial station-to-shard layout (see
	// shard.Config.Partition; default round-robin).
	Partition shard.Partition
	// RebalanceEveryTicks enables elastic rebalancing every so many
	// tick barriers (see shard.Config.RebalanceEveryTicks; default 0 =
	// static partition).
	RebalanceEveryTicks int
	// Rebalance bounds the planner when rebalancing is enabled.
	Rebalance shard.PlannerConfig
	// DisableInterestScope keeps the all-to-all ghost fan-out (see
	// shard.Config.DisableInterestScope).
	DisableInterestScope bool
}

func (c ShardedConfig) withDefaults() ShardedConfig {
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.Rings == 0 {
		c.Rings = 2
	}
	if c.CellRadiusM == 0 {
		c.CellRadiusM = 1500
	}
	if c.CapacityBU == 0 {
		c.CapacityBU = cell.DefaultCapacityBU
	}
	if c.Wave == 0 {
		c.Wave = 64
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = c.Wave
	}
	if c.HoldWaves == 0 {
		c.HoldWaves = 4
	}
	if c.HandoffEveryWaves == 0 {
		c.HandoffEveryWaves = 2
	}
	if c.HandoffFraction == 0 {
		c.HandoffFraction = 0.25
	}
	if c.TickEveryWaves == 0 {
		c.TickEveryWaves = 8
	}
	if c.WaveIntervalSec == 0 {
		c.WaveIntervalSec = 1
	}
	if (c.Mix == traffic.Mix{}) {
		c.Mix = traffic.DefaultMix()
	}
	if (c.SpeedKmh == Span{}) {
		c.SpeedKmh = Span{Min: 10, Max: 80}
	}
	return c
}

// Validate checks the configuration.
func (c ShardedConfig) Validate() error {
	if c.NewController == nil {
		return fmt.Errorf("experiments: sharded config needs a controller factory")
	}
	if c.Shards < 1 {
		return fmt.Errorf("experiments: Shards must be >= 1, got %d", c.Shards)
	}
	if c.Requests <= 0 {
		return fmt.Errorf("experiments: Requests must be > 0, got %d", c.Requests)
	}
	if c.Wave < 1 {
		return fmt.Errorf("experiments: Wave must be >= 1, got %d", c.Wave)
	}
	if c.HoldWaves < 1 {
		return fmt.Errorf("experiments: HoldWaves must be >= 1, got %d", c.HoldWaves)
	}
	if c.HandoffEveryWaves < 1 {
		return fmt.Errorf("experiments: HandoffEveryWaves must be >= 1, got %d", c.HandoffEveryWaves)
	}
	if c.HandoffFraction < 0 || c.HandoffFraction > 1 {
		return fmt.Errorf("experiments: HandoffFraction must be in [0, 1], got %v", c.HandoffFraction)
	}
	if c.TickEveryWaves < 1 {
		return fmt.Errorf("experiments: TickEveryWaves must be >= 1, got %d", c.TickEveryWaves)
	}
	if err := c.SpeedKmh.Validate(); err != nil {
		return err
	}
	return c.Mix.Validate()
}

// ShardedResult aggregates one closed-loop sharded run.
type ShardedResult struct {
	// ControllerName identifies the scheme under test (shard 0's
	// instance).
	ControllerName string
	// Shards is the realised decision-loop count; CellLocal reports
	// that outcomes are provably shard-count-invariant.
	Shards    int
	CellLocal bool
	// Requested / Accepted / Committed count streamed decisions;
	// Released counts closed-loop retirements.
	Requested, Accepted, Committed, Released int
	// Waves is the number of submitted waves.
	Waves int
	// Handoffs counts attempted transfers; CrossShard the subset that
	// crossed shards; HandoffDropped the transfers whose target did not
	// commit (the call is lost).
	Handoffs, CrossShard, HandoffDropped int
	// Decisions holds per-request outcomes in stream order;
	// HandoffDecisions the target-side outcomes in handoff order.
	Decisions        []cac.Decision
	HandoffDecisions []cac.Decision
	// ByClass tallies requested/accepted decisions per traffic class.
	// Summary printers must render it in sorted class order.
	ByClass map[traffic.Class]ClassTally
	// Stats is the engine-side counter snapshot after drain.
	Stats shard.Stats
	// Ledgers holds one scc.LedgerStats per shard when the controllers
	// are SCC demand ledgers (snapshotted through the engine's Do
	// barrier before shutdown, in shard order); nil otherwise. It is the
	// served-run observability surface for the guard-band fallback,
	// rebuild and ghost-exchange counters.
	Ledgers []scc.LedgerStats
}

// LedgerTotal aggregates the per-shard ledger snapshots; the zero value
// when the run's controllers were not SCC ledgers.
func (r ShardedResult) LedgerTotal() scc.LedgerStats {
	var total scc.LedgerStats
	for _, st := range r.Ledgers {
		total = total.Add(st)
	}
	return total
}

// AcceptedPct returns 100 * accepted / requested.
func (r ShardedResult) AcceptedPct() float64 {
	if r.Requested == 0 {
		return 0
	}
	return 100 * float64(r.Accepted) / float64(r.Requested)
}

// shardedCall tracks one committed call until release or handoff loss.
type shardedCall struct {
	releaseWave int
	id          int
	station     *cell.BaseStation
	est         gps.Estimate
}

// sampleHandoffEstimate draws the post-handoff kinematics: a position
// inside the target cell with fresh heading and speed.
func sampleHandoffEstimate(rng *rand.Rand, target *cell.BaseStation, cfg ShardedConfig) gps.Estimate {
	return gps.Estimate{
		Pos: geo.Point{
			X: target.Pos().X + sim.Uniform(rng, -cfg.CellRadiusM/2, cfg.CellRadiusM/2),
			Y: target.Pos().Y + sim.Uniform(rng, -cfg.CellRadiusM/2, cfg.CellRadiusM/2),
		},
		HeadingDeg: sim.Uniform(rng, -180, 180),
		SpeedKmh:   cfg.SpeedKmh.Sample(rng),
	}
}

// RunSharded drives a shard.Engine with the closed-loop workload
// described by cfg and returns the deterministic decision and handoff
// streams plus engine statistics. The engine owns station state
// (Commit mode); releases, barrier ticks and the serialized handoff
// protocol all flow through it, so per-station call lifecycles are
// exactly what a single sequential controller would see.
func RunSharded(cfg ShardedConfig) (ShardedResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return ShardedResult{}, err
	}
	net, err := cell.NewNetwork(cell.NetworkConfig{
		Rings:       cfg.Rings,
		CellRadiusM: cfg.CellRadiusM,
		CapacityBU:  cfg.CapacityBU,
	})
	if err != nil {
		return ShardedResult{}, err
	}
	engine, err := shard.New(shard.Config{
		Network:              net,
		Shards:               cfg.Shards,
		NewController:        cfg.NewController,
		MaxBatch:             cfg.MaxBatch,
		MaxDelay:             cfg.MaxDelay,
		Commit:               true,
		DisableExchange:      cfg.DisableExchange,
		Partition:            cfg.Partition,
		RebalanceEveryTicks:  cfg.RebalanceEveryTicks,
		Rebalance:            cfg.Rebalance,
		DisableInterestScope: cfg.DisableInterestScope,
	})
	if err != nil {
		return ShardedResult{}, err
	}
	defer engine.Close()

	sampleCfg := BatchAdmissionConfig{
		Rings:       cfg.Rings,
		CellRadiusM: cfg.CellRadiusM,
		CapacityBU:  cfg.CapacityBU,
		Mix:         cfg.Mix,
		SpeedKmh:    cfg.SpeedKmh,
	}
	rng := sim.NewStream(cfg.Seed, "sharded")

	result := ShardedResult{
		Shards:    engine.Shards(),
		CellLocal: engine.CellLocal(),
		Decisions: make([]cac.Decision, 0, cfg.Requests),
		ByClass:   map[traffic.Class]ClassTally{},
	}
	if err := engine.Do(0, func(ctrl cac.Controller) { result.ControllerName = ctrl.Name() }); err != nil {
		return ShardedResult{}, err
	}

	var active []shardedCall
	now := 0.0
	reqs := make([]cac.Request, 0, cfg.Wave)
	for wave := 0; result.Requested < cfg.Requests; wave++ {
		// Retire calls due this wave, strictly before handoffs and new
		// admissions.
		keep := active[:0]
		for _, c := range active {
			if c.releaseWave <= wave {
				if err := engine.Release(c.id, c.station, now); err != nil {
					return ShardedResult{}, err
				}
				result.Released++
			} else {
				keep = append(keep, c)
			}
		}
		active = keep
		if wave > 0 && wave%cfg.TickEveryWaves == 0 {
			if err := engine.Tick(now); err != nil {
				return ShardedResult{}, err
			}
		}

		// Handoff round: a seeded subset of the surviving calls moves to
		// a neighbouring cell through the serialized two-phase protocol.
		if wave > 0 && wave%cfg.HandoffEveryWaves == 0 {
			keep = active[:0]
			for i := range active {
				c := active[i]
				if rng.Float64() >= cfg.HandoffFraction {
					keep = append(keep, c)
					continue
				}
				neighbors := net.Neighbors(c.station.Hex())
				if len(neighbors) == 0 {
					keep = append(keep, c)
					continue
				}
				target := neighbors[rng.Intn(len(neighbors))]
				est := sampleHandoffEstimate(rng, target, cfg)
				res := engine.HandoffCall(shard.Handoff{
					CallID: c.id, From: c.station, To: target, Est: est, Now: now,
				})
				if res.Err != nil {
					return ShardedResult{}, res.Err
				}
				result.Handoffs++
				if res.CrossShard {
					result.CrossShard++
				}
				result.HandoffDecisions = append(result.HandoffDecisions, res.Response.Decision)
				if res.Dropped() {
					result.HandoffDropped++
					continue // the call is lost; the source released it
				}
				c.station = target
				c.est = est
				keep = append(keep, c)
			}
			active = keep
		}

		k := cfg.Wave
		if remaining := cfg.Requests - result.Requested; k > remaining {
			k = remaining
		}
		reqs = reqs[:0]
		for i := 0; i < k; i++ {
			req, err := sampleBatchRequest(rng, net, sampleCfg, result.Requested+i+1)
			if err != nil {
				return ShardedResult{}, err
			}
			req.Now = now
			reqs = append(reqs, req)
		}
		responses, err := engine.SubmitWave(reqs)
		if err != nil {
			return ShardedResult{}, err
		}
		for i, resp := range responses {
			if resp.Err != nil && !resp.Decision.Accepted() {
				return ShardedResult{}, resp.Err
			}
			result.Decisions = append(result.Decisions, resp.Decision)
			tallyClass(result.ByClass, reqs[i].Call.Class, resp.Decision.Accepted())
			if resp.Decision.Accepted() {
				result.Accepted++
			}
			if resp.Committed {
				result.Committed++
				active = append(active, shardedCall{
					releaseWave: wave + cfg.HoldWaves,
					id:          reqs[i].Call.ID,
					station:     reqs[i].Station,
					est:         reqs[i].Est,
				})
			}
		}
		result.Requested += k
		result.Waves++
		now += cfg.WaveIntervalSec
	}
	// Snapshot per-shard ledger counters through the Do barrier while
	// the decision loops are still live (Close would make them
	// unreachable).
	for s := 0; s < engine.Shards(); s++ {
		if err := engine.Do(s, func(ctrl cac.Controller) {
			if l, ok := ctrl.(*scc.Ledger); ok {
				result.Ledgers = append(result.Ledgers, l.Snapshot())
			}
		}); err != nil {
			return ShardedResult{}, err
		}
	}
	if err := engine.Close(); err != nil {
		return ShardedResult{}, err
	}
	result.Stats = engine.Stats()
	return result, nil
}

// RunShardedSweep runs the identical closed-loop workload once per
// shard count, returning results in input order — the scaling sweep
// behind `facs-serve -loadgen -shards`. For cell-local controllers the
// decision and handoff streams of every entry are byte-identical; only
// the wall-clock and the cross-shard handoff split change.
func RunShardedSweep(cfg ShardedConfig, shardCounts []int) ([]ShardedResult, error) {
	if len(shardCounts) == 0 {
		return nil, fmt.Errorf("experiments: sweep needs at least one shard count")
	}
	out := make([]ShardedResult, 0, len(shardCounts))
	for _, n := range shardCounts {
		run := cfg
		run.Shards = n
		res, err := RunSharded(run)
		if err != nil {
			return nil, fmt.Errorf("experiments: sweep at %d shards: %w", n, err)
		}
		out = append(out, res)
	}
	return out, nil
}
