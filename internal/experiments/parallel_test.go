package experiments

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"facs/internal/facs"
)

// workerCounts are the pool sizes the determinism tests compare: the
// sequential baseline, a fixed small pool, and one per CPU (which on a
// single-core machine coincides with 1 — the fixed pool still
// exercises true concurrency there).
func workerCounts() []int {
	return []int{1, 4, runtime.NumCPU()}
}

// TestRunShardsCoversAllJobs: every job index runs exactly once for
// every worker count.
func TestRunShardsCoversAllJobs(t *testing.T) {
	for _, w := range []int{0, 1, 3, 16, 100} {
		const n = 57
		var counts [n]atomic.Int32
		if err := runShards(n, w, func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", w, i, got)
			}
		}
	}
	if err := runShards(0, 4, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
}

// TestRunShardsLowestError: the reported error is the lowest-indexed
// failing job for every worker count.
func TestRunShardsLowestError(t *testing.T) {
	for _, w := range workerCounts() {
		err := runShards(40, w, func(i int) error {
			if i%7 == 3 { // fails at 3, 10, 17, ...
				return fmt.Errorf("job %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "job 3" {
			t.Fatalf("workers=%d: err = %v, want job 3", w, err)
		}
	}
}

// TestSingleCellSeedsDeterministic: identical per-seed results — full
// structs, including summaries and per-class ratios — at 1, 4 and
// NumCPU workers.
func TestSingleCellSeedsDeterministic(t *testing.T) {
	cfg := SingleCellConfig{
		Controller:  facs.Must(),
		NumRequests: 40,
	}
	seeds := []int64{1, 2, 3, 4, 5, 6}
	var want []SingleCellResult
	for _, w := range workerCounts() {
		got, err := RunSingleCellSeeds(cfg, seeds, w)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: results differ from workers=1", w)
		}
	}
}

// TestMultiCellSeedsDeterministic: same property for the multi-cell
// scenario, whose runs build their own stateful controllers.
func TestMultiCellSeedsDeterministic(t *testing.T) {
	cfg := MultiCellConfig{
		NewController: FACSFactory(),
		NumRequests:   30,
	}
	seeds := []int64{1, 2, 3, 4}
	var want []MultiCellResult
	for _, w := range workerCounts() {
		got, err := RunMultiCellSeeds(cfg, seeds, w)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: results differ from workers=1", w)
		}
	}
}

// TestFigureWorkersInvariant: a full figure regeneration is identical
// for every worker count.
func TestFigureWorkersInvariant(t *testing.T) {
	base := FigureConfig{LoadPoints: []int{20, 50}, Seeds: []int64{1, 2}}
	var want Figure
	for i, w := range workerCounts() {
		fc := base
		fc.Workers = w
		fig, err := Figure7(fc)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = fig
			continue
		}
		if !reflect.DeepEqual(fig, want) {
			t.Fatalf("workers=%d: figure differs from workers=1", w)
		}
	}
}

// TestSeedsRequired: both seed runners reject empty seed lists.
func TestSeedsRequired(t *testing.T) {
	if _, err := RunSingleCellSeeds(SingleCellConfig{Controller: facs.Must(), NumRequests: 5}, nil, 1); err == nil {
		t.Fatal("empty seeds should error")
	}
	if _, err := RunMultiCellSeeds(MultiCellConfig{NewController: FACSFactory(), NumRequests: 5}, nil, 1); err == nil {
		t.Fatal("empty seeds should error")
	}
}

// TestSeedsErrorDeterministic: an invalid configuration surfaces the
// lowest-seed error regardless of worker count.
func TestSeedsErrorDeterministic(t *testing.T) {
	cfg := SingleCellConfig{Controller: facs.Must(), NumRequests: 10, ObserveSteps: 1}
	for _, w := range workerCounts() {
		_, err := RunSingleCellSeeds(cfg, []int64{7, 8, 9}, w)
		if err == nil {
			t.Fatalf("workers=%d: invalid config should error", w)
		}
		if want := "seed 7"; !strings.Contains(err.Error(), want) {
			t.Fatalf("workers=%d: err = %v, want mention of %q", w, err, want)
		}
	}
}

// TestCompiledFigureMatchesExact is the system-level golden test: the
// lookup-table fast path produces byte-identical figure curves,
// because every admission decision and grade matches the exact
// engine and the simulation consumes nothing else from the controller.
func TestCompiledFigureMatchesExact(t *testing.T) {
	fc := FigureConfig{LoadPoints: []int{30, 60}, Seeds: []int64{1, 2}}
	exact, err := Figure7(fc)
	if err != nil {
		t.Fatal(err)
	}
	fc.Compiled = true
	compiled, err := Figure7(fc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(exact, compiled) {
		t.Fatalf("compiled Figure 7 differs from exact:\nexact:    %+v\ncompiled: %+v",
			exact.Series, compiled.Series)
	}
}

// TestCompiledQueueingMatchesExact: the queueing extension consumes
// decision grades (NRNA detection), so it is the sharpest consumer of
// grade equivalence.
func TestCompiledQueueingMatchesExact(t *testing.T) {
	exactCtrl := facs.Must()
	compiledCtrl, err := facs.DefaultCompiled()
	if err != nil {
		t.Fatal(err)
	}
	base := SingleCellConfig{
		NumRequests:       60,
		QueueTextRequests: true,
		Seed:              3,
	}
	exactCfg := base
	exactCfg.Controller = exactCtrl
	exactRes, err := RunSingleCell(exactCfg)
	if err != nil {
		t.Fatal(err)
	}
	compiledCfg := base
	compiledCfg.Controller = compiledCtrl
	compiledRes, err := RunSingleCell(compiledCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(exactRes, compiledRes) {
		t.Fatalf("queueing run differs:\nexact:    %+v\ncompiled: %+v", exactRes, compiledRes)
	}
}
