package experiments

import (
	"testing"

	"facs/internal/cac"
	"facs/internal/cell"
)

func TestRunMultiCellValidation(t *testing.T) {
	base := MultiCellConfig{NewController: FACSFactory(), NumRequests: 10}
	tests := []struct {
		name   string
		mutate func(*MultiCellConfig)
	}{
		{"no factory", func(c *MultiCellConfig) { c.NewController = nil }},
		{"zero requests", func(c *MultiCellConfig) { c.NumRequests = 0 }},
		{"negative window", func(c *MultiCellConfig) { c.WindowSec = -1 }},
		{"one observe step", func(c *MultiCellConfig) { c.ObserveSteps = 1 }},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mutate(&cfg)
			if _, err := RunMultiCell(cfg); err == nil {
				t.Fatal("expected a validation error")
			}
		})
	}
}

func TestRunMultiCellFactoryErrorPropagates(t *testing.T) {
	cfg := MultiCellConfig{
		NewController: func(*cell.Network) (cac.Controller, error) {
			return nil, errTest
		},
		NumRequests: 5,
	}
	if _, err := RunMultiCell(cfg); err == nil {
		t.Fatal("factory error should propagate")
	}
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "test error" }

func TestRunMultiCellBasicAccounting(t *testing.T) {
	res, err := RunMultiCell(MultiCellConfig{
		NewController: FACSFactory(),
		NumRequests:   60,
		Seed:          9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ControllerName != "facs" {
		t.Fatalf("ControllerName = %q", res.ControllerName)
	}
	// A few arrivals may drift out of coverage during GPS warm-up, so
	// Requested <= NumRequests.
	if res.Requested <= 0 || res.Requested > 60 {
		t.Fatalf("Requested = %d", res.Requested)
	}
	if res.Accepted > res.Requested {
		t.Fatal("Accepted > Requested")
	}
	if res.HandoffDrops > res.HandoffAttempts {
		t.Fatal("drops exceed attempts")
	}
	// Every accepted call either completed or was dropped.
	if res.Completed+res.HandoffDrops != res.Accepted {
		t.Fatalf("call conservation violated: accepted=%d completed=%d dropped=%d",
			res.Accepted, res.Completed, res.HandoffDrops)
	}
	if res.DropPct() < 0 || res.DropPct() > 100 {
		t.Fatalf("DropPct = %v", res.DropPct())
	}
}

func TestRunMultiCellDeterminism(t *testing.T) {
	run := func() MultiCellResult {
		res, err := RunMultiCell(MultiCellConfig{
			NewController: SCCFactory(),
			NumRequests:   40,
			Seed:          13,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Accepted != b.Accepted || a.HandoffAttempts != b.HandoffAttempts || a.Completed != b.Completed {
		t.Fatalf("identical runs differ: %+v vs %+v", a, b)
	}
}

func TestRunMultiCellHandoffsHappen(t *testing.T) {
	res, err := RunMultiCell(MultiCellConfig{
		NewController: FACSFactory(),
		NumRequests:   80,
		SpeedKmh:      Pin(100),
		Seed:          3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.HandoffAttempts == 0 {
		t.Fatal("fast users over small cells must produce handoffs")
	}
}

// TestMultiCellFig10Shape asserts the paper's Fig. 10 headline: FACS
// accepts more than SCC at light load and less at heavy load.
func TestMultiCellFig10Shape(t *testing.T) {
	mean := func(factory func(*cell.Network) (cac.Controller, error), n int) float64 {
		var acc float64
		const seeds = 3
		for seed := int64(1); seed <= seeds; seed++ {
			res, err := RunMultiCell(MultiCellConfig{
				NewController: factory,
				NumRequests:   n,
				Seed:          seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			acc += res.AcceptedPct()
		}
		return acc / seeds
	}
	facsLow, sccLow := mean(FACSFactory(), 20), mean(SCCFactory(), 20)
	if facsLow <= sccLow {
		t.Fatalf("light load: FACS %.1f%% should exceed SCC %.1f%%", facsLow, sccLow)
	}
	facsHigh, sccHigh := mean(FACSFactory(), 100), mean(SCCFactory(), 100)
	if facsHigh >= sccHigh {
		t.Fatalf("heavy load: SCC %.1f%% should exceed FACS %.1f%%", sccHigh, facsHigh)
	}
}

func TestFigureConfigDefaults(t *testing.T) {
	fc := FigureConfig{}.withDefaults()
	if len(fc.LoadPoints) != 10 || fc.LoadPoints[0] != 10 || fc.LoadPoints[9] != 100 {
		t.Fatalf("default load points = %v", fc.LoadPoints)
	}
	if len(fc.Seeds) != 5 {
		t.Fatalf("default seeds = %v", fc.Seeds)
	}
	if err := (FigureConfig{LoadPoints: []int{-1}}).Validate(); err == nil {
		t.Fatal("negative load point should be invalid")
	}
}

func TestFigure7Structure(t *testing.T) {
	fig, err := Figure7(FigureConfig{LoadPoints: []int{15, 60}, Seeds: []int64{1}})
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "fig7" {
		t.Fatalf("ID = %q", fig.ID)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("Fig. 7 needs 4 speed series, got %d", len(fig.Series))
	}
	wantLabels := []string{"4km/h", "10km/h", "30km/h", "60km/h"}
	for i, s := range fig.Series {
		if s.Label != wantLabels[i] {
			t.Fatalf("series %d label = %q, want %q", i, s.Label, wantLabels[i])
		}
		if s.Len() != 2 {
			t.Fatalf("series %q has %d points, want 2", s.Label, s.Len())
		}
		for _, y := range s.Y {
			if y < 0 || y > 100 {
				t.Fatalf("acceptance %v out of range", y)
			}
		}
	}
}

func TestFigure8And9Structure(t *testing.T) {
	fc := FigureConfig{LoadPoints: []int{40}, Seeds: []int64{1}}
	fig8, err := Figure8(fc)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig8.Series) != 5 {
		t.Fatalf("Fig. 8 needs 5 angle series, got %d", len(fig8.Series))
	}
	fig9, err := Figure9(fc)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig9.Series) != 4 {
		t.Fatalf("Fig. 9 needs 4 distance series, got %d", len(fig9.Series))
	}
}

func TestFigure10Structure(t *testing.T) {
	fig, err := Figure10(FigureConfig{LoadPoints: []int{20}, Seeds: []int64{1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("Fig. 10 needs FACS and SCC series, got %d", len(fig.Series))
	}
	if fig.Series[0].Label != "FACS" || fig.Series[1].Label != "SCC" {
		t.Fatalf("labels = %q, %q", fig.Series[0].Label, fig.Series[1].Label)
	}
	if len(fig.Notes) != 2 {
		t.Fatalf("Fig. 10 should carry one note per scheme, got %d", len(fig.Notes))
	}
}
