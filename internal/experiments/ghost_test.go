package experiments

import (
	"testing"

	"facs/internal/cac"
	"facs/internal/scc"
	"facs/internal/shard"
)

// ghostLedgerFactory builds a fresh SCC demand ledger per shard in the
// given reservation mode. The ledgers are demand exchangers, so the
// engine runs the ghost exchange at every tick barrier.
func ghostLedgerFactory(mode scc.ReservationMode) func(shard.View) (cac.Controller, error) {
	return func(v shard.View) (cac.Controller, error) {
		return scc.NewLedger(scc.Config{Network: v.Network(), Reservation: mode})
	}
}

// tickAlignedConfig is the golden workload: every wave fits one
// MaxBatch chunk and is followed by a barrier tick (whose exchange
// republishes every shard's demand), and handoffs — which would inject
// cross-shard mutations between barriers — never fire. Under it, every
// admission any shard performs is visible to every other shard before
// the next decision is rendered, exactly like the single sequential
// ledger.
func tickAlignedConfig(mode scc.ReservationMode) ShardedConfig {
	return ShardedConfig{
		NewController:     ghostLedgerFactory(mode),
		Rings:             2, // 19 cells
		Requests:          600,
		Wave:              40, // == MaxBatch default: one chunk per wave
		HoldWaves:         3,
		TickEveryWaves:    1,       // barrier tick + ghost exchange after every wave
		HandoffEveryWaves: 1 << 30, // no handoff rounds
		Seed:              47,
	}
}

// TestShardedSCCGhostExchangeByteIdentity is the tentpole acceptance
// suite: with tick-aligned waves the ghost-demand exchange restores the
// Shadow Cluster baseline's GLOBAL demand visibility, so sharded SCC
// decisions are byte-identical at shard counts 1/2/4/8 to the
// sequential single-ledger replay. ReservationFull aggregates are sums
// of whole bandwidth units, making the identity exact by construction;
// the weighted mode is pinned at the same seeds (summation-order noise
// is orders of magnitude below the ledger's guard band).
func TestShardedSCCGhostExchangeByteIdentity(t *testing.T) {
	for _, mode := range []scc.ReservationMode{scc.ReservationFull, scc.ReservationWeighted} {
		t.Run(mode.String(), func(t *testing.T) {
			cfg := tickAlignedConfig(mode)
			oracle := replaySharded(t, cfg)
			if oracle.Accepted == 0 || oracle.Accepted == oracle.Requested || oracle.Released == 0 {
				// Without both accepts and demand-driven rejects the
				// identity would hold vacuously.
				t.Fatalf("degenerate workload: %+v", oracle)
			}

			results, err := RunShardedSweep(cfg, []int{1, 2, 4, 8})
			if err != nil {
				t.Fatal(err)
			}
			for _, res := range results {
				label := mode.String() + "/shards-" + string(rune('0'+res.Shards))
				assertShardedEqual(t, res, oracle, label)
				if res.CellLocal {
					t.Fatalf("%s: SCC shards must not report cell-local", label)
				}
				if res.Stats.Exchanges == 0 {
					t.Fatalf("%s: no ghost exchanges ran", label)
				}
				if res.Shards > 1 && res.Stats.GhostRows == 0 {
					t.Fatalf("%s: exchange fanned out no demand rows", label)
				}
				if res.Shards == 1 && res.Stats.GhostRows != 0 {
					t.Fatalf("%s: a 1-shard engine has no siblings to fan rows to", label)
				}
				total := res.LedgerTotal()
				if total.Exports == 0 || (res.Shards > 1 && total.GhostApplies == 0) {
					t.Fatalf("%s: ledger snapshots missed the exchange: %+v", label, total)
				}
			}
		})
	}
}

// divergence counts position-wise mismatches and reports the index of
// the first one (-1 when the streams agree).
func divergence(got, want []cac.Decision) (count, first int) {
	first = -1
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			if first < 0 {
				first = i
			}
			count++
		}
	}
	return count, first
}

// TestShardedSCCFreeRunningDivergenceBounded quantifies the model gap
// that remains when waves free-run between barriers (ticks every 4
// waves): shards only learn of each other's admissions at the next
// exchange, so decisions may diverge from the sequential replay — but
// ONLY from intra-epoch admissions. Concretely: the first wave after a
// barrier decides against fully synchronized demand, so the FIRST
// divergent decision must sit in an intra-epoch wave; and switching the
// exchange off (the pre-exchange partitioned-visibility model) must
// diverge at least as much, never less.
func TestShardedSCCFreeRunningDivergenceBounded(t *testing.T) {
	cfg := tickAlignedConfig(scc.ReservationFull)
	cfg.TickEveryWaves = 4
	cfg.Shards = 4
	oracle := replaySharded(t, cfg)

	withExchange, err := RunSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	noExchange := cfg
	noExchange.DisableExchange = true
	without, err := RunSharded(noExchange)
	if err != nil {
		t.Fatal(err)
	}
	if without.Stats.Exchanges != 0 {
		t.Fatalf("disabled run exchanged: %+v", without.Stats)
	}

	divWith, firstWith := divergence(withExchange.Decisions, oracle.Decisions)
	divWithout, _ := divergence(without.Decisions, oracle.Decisions)
	t.Logf("free-running divergence vs sequential replay: %d/%d with exchange (first at %d), %d/%d without",
		divWith, len(oracle.Decisions), firstWith, divWithout, len(oracle.Decisions))

	if divWithout == 0 {
		t.Fatal("partitioned visibility never diverged: the workload cannot distinguish the models")
	}
	if divWith > divWithout {
		t.Fatalf("exchange increased divergence: %d with vs %d without", divWith, divWithout)
	}
	if firstWith >= 0 {
		// Requests stream in fixed-size waves, so an index maps straight
		// to its wave. A wave w with w%TickEveryWaves == 0 was decided
		// right after a barrier exchange against fully synchronized
		// demand: state there is identical to the sequential replay's
		// until an earlier divergence exists, so the FIRST divergence
		// cannot sit in such a wave.
		wave := firstWith / cfg.Wave
		if wave%cfg.TickEveryWaves == 0 {
			t.Fatalf("first divergence at request %d falls in tick-aligned wave %d", firstWith, wave)
		}
	}
	// The exchange must close most of the gap on this workload; the
	// residual is bounded well below the partitioned model's divergence.
	if divWith*2 > divWithout {
		t.Fatalf("exchange left %d of %d divergences — more than half the partitioned model's", divWith, divWithout)
	}
}
