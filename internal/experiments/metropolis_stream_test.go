package experiments

import (
	"testing"
)

// TestMetropolisStreamingIdentity pins the tentpole contract: the
// streaming arrival generator (the default) and the materialized path
// produce byte-identical DecisionHash values — across all three modes
// and shard counts 1/2/4 — because engines chunk waves at MaxBatch
// boundaries regardless of how the wave is delivered.
func TestMetropolisStreamingIdentity(t *testing.T) {
	variants := []struct {
		name   string
		mutate func(*MetropolisConfig)
	}{
		{"single", func(c *MetropolisConfig) { c.Mode = MetroSingle }},
		{"batch", func(c *MetropolisConfig) { c.Mode = MetroBatch }},
		{"sharded-1", func(c *MetropolisConfig) { c.Mode = MetroSharded; c.Shards = 1 }},
		{"sharded-2", func(c *MetropolisConfig) { c.Mode = MetroSharded; c.Shards = 2 }},
		{"sharded-4", func(c *MetropolisConfig) { c.Mode = MetroSharded; c.Shards = 4 }},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			stream := metroTestConfig(shardGuardFactory)
			v.mutate(&stream)
			materialized := stream
			materialized.Materialize = true
			a, err := RunMetropolis(stream)
			if err != nil {
				t.Fatal(err)
			}
			b, err := RunMetropolis(materialized)
			if err != nil {
				t.Fatal(err)
			}
			sameMetroOutcome(t, v.name, a, b)
			if a.Requested == 0 || a.Committed == 0 {
				t.Fatalf("degenerate run: %+v", a)
			}
		})
	}
}

// TestMetropolisStreamingIdentitySCC extends the pin to the
// non-cell-local SCC ledger at a fixed shard count: per shard count the
// decision stream must not depend on how arrivals are delivered.
func TestMetropolisStreamingIdentitySCC(t *testing.T) {
	for _, shards := range []int{1, 2} {
		stream := metroTestConfig(shardLedgerFactory)
		stream.Mode = MetroSharded
		stream.Shards = shards
		materialized := stream
		materialized.Materialize = true
		a, err := RunMetropolis(stream)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunMetropolis(materialized)
		if err != nil {
			t.Fatal(err)
		}
		sameMetroOutcome(t, "scc-sharded", a, b)
	}
}

// TestMetropolisSteadyStateAllocs is the allocation gate on the
// streaming wave loop: once the run has warmed through a full diurnal
// day (population high-water reached, every scratch buffer at final
// size), additional waves on the inline paths must allocate nothing —
// zero allocations per decision, not merely few. Station pools are
// reserved to their capacity bound up front, so the only allocator the
// loop otherwise retains (per-station population high-water growth,
// bounded by CapacityBU) is paid before measurement.
func TestMetropolisSteadyStateAllocs(t *testing.T) {
	for _, mode := range []MetropolisMode{MetroSingle, MetroBatch} {
		t.Run(mode.String(), func(t *testing.T) {
			cfg := metroTestConfig(shardGuardFactory)
			cfg.Mode = mode
			cfg.Waves = 3 * cfg.WavesPerDay
			r, err := newMetroRun(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer r.engine.close()
			for _, bs := range r.workload.stations {
				bs.Reserve(bs.Capacity())
			}
			// Warm-up: one full day, reaching the ledger and scratch
			// high-water marks.
			warm := cfg.WavesPerDay
			for r.wave < warm {
				if err := r.runWave(); err != nil {
					t.Fatal(err)
				}
			}
			const measured = 12
			decisionsBefore := r.result.Requested + r.result.Handoffs
			avg := testing.AllocsPerRun(measured, func() {
				if err := r.runWave(); err != nil {
					t.Fatal(err)
				}
			})
			decisions := r.result.Requested + r.result.Handoffs - decisionsBefore
			if decisions == 0 {
				t.Fatal("steady-state waves rendered no decisions")
			}
			if avg != 0 {
				t.Errorf("steady-state wave allocates: %.2f allocs/wave over %d decisions (want 0)",
					avg, decisions)
			}
		})
	}
}
