package experiments

import (
	"testing"

	"facs/internal/cac"
	"facs/internal/cell"
	"facs/internal/scc"
	"facs/internal/shard"
)

// metroTestConfig is a small-but-busy scenario: 37 cells, a few thousand
// decisions, handoffs and ticks exercised, finished in well under a
// second per run.
func metroTestConfig(factory func(shard.View) (cac.Controller, error)) MetropolisConfig {
	return MetropolisConfig{
		NewController: factory,
		Rings:         3,
		TargetCalls:   600,
		Waves:         24,
		WavesPerDay:   24,
		MaxBatch:      32,
		Seed:          1,
	}
}

// sameMetroOutcome compares everything that must be byte-identical
// across repeats, modes and shard counts (wall-clock and shard split
// excluded).
func sameMetroOutcome(t *testing.T, label string, a, b MetropolisResult) {
	t.Helper()
	if a.DecisionHash != b.DecisionHash {
		t.Errorf("%s: DecisionHash %#x != %#x", label, a.DecisionHash, b.DecisionHash)
	}
	type counters struct {
		requested, accepted, committed, released int
		handoffs, handoffDropped, peak, final    int
		waves, cells                             int
	}
	ca := counters{a.Requested, a.Accepted, a.Committed, a.Released,
		a.Handoffs, a.HandoffDropped, a.PeakConcurrent, a.FinalActive, a.Waves, a.Cells}
	cb := counters{b.Requested, b.Accepted, b.Committed, b.Released,
		b.Handoffs, b.HandoffDropped, b.PeakConcurrent, b.FinalActive, b.Waves, b.Cells}
	if ca != cb {
		t.Errorf("%s: counters diverged:\n  a=%+v\n  b=%+v", label, ca, cb)
	}
}

func TestMetropolisRepeatable(t *testing.T) {
	cfg := metroTestConfig(shardGuardFactory)
	a, err := RunMetropolis(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMetropolis(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sameMetroOutcome(t, "repeat", a, b)
	if a.Requested == 0 || a.Committed == 0 || a.Handoffs == 0 || a.Released == 0 {
		t.Fatalf("degenerate run: %+v", a)
	}
}

// TestMetropolisModeIdentity pins the cross-path contract for
// cell-local controllers: batch == sharded at every shard count for
// equal MaxBatch, and single == batch(MaxBatch 1) == sharded(MaxBatch 1).
func TestMetropolisModeIdentity(t *testing.T) {
	base := metroTestConfig(shardGuardFactory)

	batch, err := RunMetropolis(base)
	if err != nil {
		t.Fatal(err)
	}
	if batch.Mode != MetroBatch {
		t.Fatalf("default mode = %v, want batch", batch.Mode)
	}
	for _, shards := range []int{1, 2, 4} {
		cfg := base
		cfg.Mode = MetroSharded
		cfg.Shards = shards
		res, err := RunMetropolis(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Shards != shards {
			t.Fatalf("Shards = %d, want %d", res.Shards, shards)
		}
		sameMetroOutcome(t, res.Mode.String(), batch, res)
	}

	single := base
	single.Mode = MetroSingle
	singleRes, err := RunMetropolis(single)
	if err != nil {
		t.Fatal(err)
	}
	batch1 := base
	batch1.MaxBatch = 1
	batch1Res, err := RunMetropolis(batch1)
	if err != nil {
		t.Fatal(err)
	}
	sameMetroOutcome(t, "single-vs-batch1", singleRes, batch1Res)
	sharded1 := base
	sharded1.Mode = MetroSharded
	sharded1.MaxBatch = 1
	sharded1.Shards = 2
	sharded1Res, err := RunMetropolis(sharded1)
	if err != nil {
		t.Fatal(err)
	}
	sameMetroOutcome(t, "single-vs-sharded1", singleRes, sharded1Res)
}

// TestMetropolisFACSModeIdentity runs the compiled fuzzy controller
// through the same cross-path pin (it is cell-local too).
func TestMetropolisFACSModeIdentity(t *testing.T) {
	base := metroTestConfig(shardFACSFactory)
	base.TargetCalls = 300
	batch, err := RunMetropolis(base)
	if err != nil {
		t.Fatal(err)
	}
	if batch.Accepted == 0 || batch.Accepted == batch.Requested {
		t.Fatalf("FACS run not exercising admission: %d/%d", batch.Accepted, batch.Requested)
	}
	cfg := base
	cfg.Mode = MetroSharded
	cfg.Shards = 4
	res, err := RunMetropolis(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sameMetroOutcome(t, "facs-sharded", batch, res)
}

// TestMetropolisSCCReproducible covers the non-cell-local regime on the
// metropolis workload: per-shard SCC demand ledgers are deterministic
// run-to-run at every shard count. Outcomes legitimately differ BETWEEN
// shard counts (ghost demand is exchanged only at tick barriers, so
// mid-tick decisions see only local demand) — the byte-identity
// guarantee across shard counts is the cell-local controllers'
// contract, pinned by TestMetropolisModeIdentity.
func TestMetropolisSCCReproducible(t *testing.T) {
	factory := func(v shard.View) (cac.Controller, error) {
		return scc.NewLedger(scc.Config{Network: v.Network(), Reservation: scc.ReservationFull})
	}
	base := metroTestConfig(factory)
	base.Mode = MetroSharded
	for _, shards := range []int{1, 2, 4} {
		cfg := base
		cfg.Shards = shards
		first, err := RunMetropolis(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if first.Requested == 0 || first.Accepted == 0 || first.Handoffs == 0 {
			t.Fatalf("degenerate SCC run at %d shards: %+v", shards, first)
		}
		again, err := RunMetropolis(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sameMetroOutcome(t, first.Mode.String(), first, again)
	}
}

// TestMetropolisGolden freezes the guard-channel scenario's decision
// digest: any change to workload generation, chunking, commit order or
// the hash itself shows up as a different constant.
func TestMetropolisGolden(t *testing.T) {
	res, err := RunMetropolis(metroTestConfig(shardGuardFactory))
	if err != nil {
		t.Fatal(err)
	}
	const wantHash uint64 = 0x46af924cb8e9eacc
	if res.DecisionHash != wantHash {
		t.Errorf("DecisionHash = %#x, want %#x (golden)", res.DecisionHash, wantHash)
	}
}

// TestMetropolisPopulationTracksTarget checks the diurnal generator
// actually builds a population of the configured scale in an
// uncongested network.
func TestMetropolisPopulationTracksTarget(t *testing.T) {
	cfg := metroTestConfig(func(shard.View) (cac.Controller, error) {
		return cac.CompleteSharing{}, nil
	})
	cfg.TargetCalls = 2000
	cfg.CapacityBU = 100000 // no blocking: population is pure workload shape
	cfg.StartHour = 5       // climbs into the morning rush within the run
	res, err := RunMetropolis(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakConcurrent < cfg.TargetCalls/2 {
		t.Fatalf("PeakConcurrent = %d, want >= %d (TargetCalls %d)",
			res.PeakConcurrent, cfg.TargetCalls/2, cfg.TargetCalls)
	}
	if res.PeakConcurrent > 2*cfg.TargetCalls {
		t.Fatalf("PeakConcurrent = %d overshoots TargetCalls %d", res.PeakConcurrent, cfg.TargetCalls)
	}
	if res.AcceptedPct() != 100 {
		t.Fatalf("uncongested run blocked calls: %v%%", res.AcceptedPct())
	}
}

// TestMetropolisHotspotSkew verifies rush-hour arrivals concentrate on
// hotspot-adjacent cells.
func TestMetropolisHotspotSkew(t *testing.T) {
	cfg := metroTestConfig(shardGuardFactory)
	net, err := newMetroNet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := newMetroWorkload(cfg.withDefaults(), net)
	// At 08:30 (rush) the hotspot-weighted mass must exceed the uniform
	// share; at 03:00 it must be nearly uniform.
	w.ensureCellCum(findWaveAtHour(t, w, 8.5))
	rushTotal := w.cellCum[len(w.cellCum)-1]
	if rushTotal <= float64(len(w.cellCum))*1.05 {
		t.Fatalf("rush-hour weights %.1f not skewed above uniform %d", rushTotal, len(w.cellCum))
	}
	w.ensureCellCum(findWaveAtHour(t, w, 3))
	nightTotal := w.cellCum[len(w.cellCum)-1]
	if nightTotal >= float64(len(w.cellCum))*1.05 {
		t.Fatalf("night weights %.1f should be near-uniform %d", nightTotal, len(w.cellCum))
	}
}

func findWaveAtHour(t *testing.T, w *metroWorkload, hour float64) int {
	t.Helper()
	best, bestDiff := 0, 1e9
	for wave := 0; wave < w.cfg.Waves; wave++ {
		d := w.hourOf(wave) - hour
		if d < 0 {
			d = -d
		}
		if d < bestDiff {
			best, bestDiff = wave, d
		}
	}
	return best
}

func newMetroNet(cfg MetropolisConfig) (*cell.Network, error) {
	c := cfg.withDefaults()
	return cell.NewNetwork(cell.NetworkConfig{
		Rings:       c.Rings,
		CellRadiusM: c.CellRadiusM,
		CapacityBU:  c.CapacityBU,
	})
}

func TestMetropolisValidation(t *testing.T) {
	if _, err := RunMetropolis(MetropolisConfig{}); err == nil {
		t.Fatal("missing factory should error")
	}
	bad := metroTestConfig(shardGuardFactory)
	bad.Mode = MetropolisMode(99)
	if _, err := RunMetropolis(bad); err == nil {
		t.Fatal("unknown mode should error")
	}
	bad = metroTestConfig(shardGuardFactory)
	bad.HoldWavesMax = 1
	bad.HoldWavesMin = 3
	if _, err := RunMetropolis(bad); err == nil {
		t.Fatal("inverted hold bounds should error")
	}
	bad = metroTestConfig(shardGuardFactory)
	bad.HandoffFraction = 1.5
	if _, err := RunMetropolis(bad); err == nil {
		t.Fatal("out-of-range handoff fraction should error")
	}
}
