package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"facs/internal/snap"
)

// runInterrupted simulates a crash at the half-way wave: it runs cfg to
// Waves/2, cuts a snapshot, abandons the run, then warm-starts a fresh
// run from the snapshot and replays the remaining waves.
func runInterrupted(t *testing.T, cfg MetropolisConfig) MetropolisResult {
	t.Helper()
	r1, err := newMetroRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	half := r1.cfg.Waves / 2
	for r1.wave < half {
		if err := r1.runWave(); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := r1.snapshotTo(&buf); err != nil {
		t.Fatalf("snapshotTo: %v", err)
	}
	if err := r1.engine.close(); err != nil {
		t.Fatal(err)
	}

	r2, err := newMetroRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.restoreFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("restoreFrom: %v", err)
	}
	if r2.wave != half {
		t.Fatalf("restored wave cursor %d, want %d", r2.wave, half)
	}
	for r2.wave < r2.cfg.Waves {
		if err := r2.runWave(); err != nil {
			t.Fatal(err)
		}
	}
	res, err := r2.finish()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestMetropolisCrashRecovery pins the restore-then-replay determinism
// contract end to end: interrupting a metropolis day at the half-way
// snapshot and replaying the remainder reproduces the uninterrupted
// run's DecisionHash and every outcome counter — for the stateless
// guard baseline across all three decision paths and shard counts
// 1/2/4, for the compiled FACS controller, and for the stateful SCC
// demand ledger (whose per-shard demand matrices restore verbatim).
func TestMetropolisCrashRecovery(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*MetropolisConfig)
	}{
		{"guard/single", func(c *MetropolisConfig) { c.Mode = MetroSingle }},
		{"guard/batch", func(c *MetropolisConfig) { c.Mode = MetroBatch }},
		{"guard/sharded=1", func(c *MetropolisConfig) { c.Mode = MetroSharded; c.Shards = 1 }},
		{"guard/sharded=2", func(c *MetropolisConfig) { c.Mode = MetroSharded; c.Shards = 2 }},
		{"guard/sharded=4", func(c *MetropolisConfig) { c.Mode = MetroSharded; c.Shards = 4 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := metroTestConfig(shardGuardFactory)
			tc.mutate(&cfg)
			full, err := RunMetropolis(cfg)
			if err != nil {
				t.Fatal(err)
			}
			sameMetroOutcome(t, tc.name, full, runInterrupted(t, cfg))
		})
	}
	t.Run("facs/batch", func(t *testing.T) {
		cfg := metroTestConfig(shardFACSFactory)
		cfg.TargetCalls = 300
		full, err := RunMetropolis(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sameMetroOutcome(t, "facs/batch", full, runInterrupted(t, cfg))
	})
	for _, shards := range []int{1, 2} {
		t.Run(fmt.Sprintf("scc/sharded=%d", shards), func(t *testing.T) {
			cfg := metroTestConfig(shardLedgerFactory)
			cfg.Mode = MetroSharded
			cfg.Shards = shards
			full, err := RunMetropolis(cfg)
			if err != nil {
				t.Fatal(err)
			}
			sameMetroOutcome(t, "scc", full, runInterrupted(t, cfg))
		})
	}
}

// TestMetropolisSnapshotFiles pins the durable wiring through
// RunMetropolis itself: periodic snapshots land atomically in
// SnapshotDir on the tick cadence, and Restore warm-starts from the
// file. The last periodic snapshot falls on the final wave, so the
// restored run finishes immediately with the uninterrupted outcome.
func TestMetropolisSnapshotFiles(t *testing.T) {
	dir := t.TempDir()
	cfg := metroTestConfig(shardGuardFactory)
	cfg.SnapshotDir = dir
	cfg.SnapshotEveryTicks = 1

	full, err := RunMetropolis(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 24 waves, a tick barrier every 4: snapshots at waves 4..24.
	if full.Snapshots != 6 {
		t.Fatalf("Snapshots = %d, want 6", full.Snapshots)
	}
	path := filepath.Join(dir, MetroSnapshotFile)
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("snapshot file missing: %v", err)
	}
	if names, err := filepath.Glob(filepath.Join(dir, "*")); err != nil || len(names) != 1 {
		t.Fatalf("snapshot dir holds %v, want only the snapshot (atomic rename leaves no temp files)", names)
	}

	restored := cfg
	restored.SnapshotDir = ""
	restored.SnapshotEveryTicks = 0
	restored.Restore = path
	res, err := RunMetropolis(restored)
	if err != nil {
		t.Fatal(err)
	}
	sameMetroOutcome(t, "restore-from-file", full, res)
	if res.Elapsed < 0 {
		t.Fatal("negative elapsed")
	}
}

// TestMetropolisStopChannel pins graceful early exit: a fired Stop
// channel ends the run before the next wave, writes a final snapshot,
// and a restored run completes the day with the uninterrupted outcome.
func TestMetropolisStopChannel(t *testing.T) {
	dir := t.TempDir()
	stop := make(chan struct{})
	close(stop)

	cfg := metroTestConfig(shardGuardFactory)
	cfg.SnapshotDir = dir
	cfg.Stop = stop
	res, err := RunMetropolis(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Fatal("run did not report Stopped")
	}
	if res.Waves != 0 {
		t.Fatalf("stopped run completed %d waves, want 0", res.Waves)
	}
	if res.Snapshots != 1 {
		t.Fatalf("Snapshots = %d, want 1 (the final on-stop snapshot)", res.Snapshots)
	}

	uninterrupted := metroTestConfig(shardGuardFactory)
	full, err := RunMetropolis(uninterrupted)
	if err != nil {
		t.Fatal(err)
	}
	resumed := uninterrupted
	resumed.Restore = filepath.Join(dir, MetroSnapshotFile)
	got, err := RunMetropolis(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stopped {
		t.Fatal("resumed run reports Stopped")
	}
	sameMetroOutcome(t, "resume-after-stop", full, got)
}

// TestMetropolisSnapshotStaleAndCorrupt pins the guard rails at the
// driver level: a snapshot refuses a run whose workload-shaping
// configuration differs, and damage surfaces a snapshot sentinel.
func TestMetropolisSnapshotStaleAndCorrupt(t *testing.T) {
	cfg := metroTestConfig(shardGuardFactory)
	r, err := newMetroRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for r.wave < 6 {
		if err := r.runWave(); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := r.snapshotTo(&buf); err != nil {
		t.Fatal(err)
	}
	if err := r.engine.close(); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()

	otherSeed := cfg
	otherSeed.Seed = 2
	r2, err := newMetroRun(otherSeed)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.engine.close()
	if err := r2.restoreFrom(bytes.NewReader(blob)); !errors.Is(err, snap.ErrSnapshotStale) {
		t.Errorf("seed mismatch: err = %v, want ErrSnapshotStale", err)
	}

	r3, err := newMetroRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r3.engine.close()
	for _, i := range []int{10, len(blob) / 2, len(blob) - 3} {
		mut := append([]byte(nil), blob...)
		mut[i] ^= 0x40
		if err := r3.restoreFrom(bytes.NewReader(mut)); err == nil ||
			(!errors.Is(err, snap.ErrSnapshotCorrupt) && !errors.Is(err, snap.ErrSnapshotStale)) {
			t.Errorf("flip at %d: err = %v, want snapshot sentinel", i, err)
		}
	}
	if err := r3.restoreFrom(bytes.NewReader(blob[:len(blob)-7])); !errors.Is(err, snap.ErrSnapshotCorrupt) {
		t.Errorf("truncation: err = %v, want ErrSnapshotCorrupt", err)
	}
	// The good blob still restores after the failed attempts.
	if err := r3.restoreFrom(bytes.NewReader(blob)); err != nil {
		t.Fatalf("restore of good blob: %v", err)
	}
}
