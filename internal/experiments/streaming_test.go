package experiments

import (
	"reflect"
	"testing"
	"time"

	"facs/internal/cac"
	"facs/internal/cell"
	"facs/internal/scc"
	"facs/internal/sim"
)

// streamGuardFactory builds a stateless-but-station-sensitive baseline.
func streamGuardFactory(*cell.Network) (cac.Controller, error) {
	return cac.NewGuardChannel(8)
}

// streamLedgerFactory builds the stateful SCC demand ledger, covering
// Observer/Ticker/StateUpdater serialization through the service.
func streamLedgerFactory(net *cell.Network) (cac.Controller, error) {
	return scc.NewLedger(scc.Config{
		Network:                net,
		Reservation:            scc.ReservationFull,
		RequireClusterCoverage: true,
	})
}

// replayStreaming is the sequential oracle: the same closed loop, wave
// chunking and commit semantics as RunStreaming, executed inline
// without the service. Byte-identical output proves the streamed run
// is exactly the deterministic computation it claims to be.
func replayStreaming(t *testing.T, cfg StreamingConfig) StreamingResult {
	t.Helper()
	cfg = cfg.withDefaults()
	net, err := cell.NewNetwork(cell.NetworkConfig{
		Rings:       cfg.Rings,
		CellRadiusM: cfg.CellRadiusM,
		CapacityBU:  cfg.CapacityBU,
	})
	if err != nil {
		t.Fatal(err)
	}
	controller, err := cfg.NewController(net)
	if err != nil {
		t.Fatal(err)
	}
	observer, _ := controller.(cac.Observer)
	ticker, _ := controller.(cac.Ticker)
	sampleCfg := BatchAdmissionConfig{
		Rings:       cfg.Rings,
		CellRadiusM: cfg.CellRadiusM,
		CapacityBU:  cfg.CapacityBU,
		Mix:         cfg.Mix,
		SpeedKmh:    cfg.SpeedKmh,
	}
	rng := sim.NewStream(cfg.Seed, "streaming")
	result := StreamingResult{ControllerName: controller.Name()}
	var active []streamedCall
	now := 0.0
	for wave := 0; result.Requested < cfg.Requests; wave++ {
		keep := active[:0]
		for _, c := range active {
			if c.releaseWave <= wave {
				if _, err := c.station.Release(c.id); err != nil {
					t.Fatal(err)
				}
				if observer != nil {
					observer.OnRelease(c.id, c.station, now)
				}
				result.Released++
			} else {
				keep = append(keep, c)
			}
		}
		active = keep
		if wave > 0 && wave%cfg.TickEveryWaves == 0 && ticker != nil {
			ticker.OnTick(now)
		}
		k := cfg.Wave
		if remaining := cfg.Requests - result.Requested; k > remaining {
			k = remaining
		}
		reqs := make([]cac.Request, k)
		for i := 0; i < k; i++ {
			req, err := sampleBatchRequest(rng, net, sampleCfg, result.Requested+i+1)
			if err != nil {
				t.Fatal(err)
			}
			req.Now = now
			reqs[i] = req
		}
		// Deterministic MaxBatch chunking with commits in between,
		// mirroring serve's wave semantics.
		for lo := 0; lo < k; lo += cfg.MaxBatch {
			hi := lo + cfg.MaxBatch
			if hi > k {
				hi = k
			}
			chunk := reqs[lo:hi]
			decisions, err := cac.DecideAll(controller, chunk)
			if err != nil {
				t.Fatal(err)
			}
			for i, d := range decisions {
				result.Decisions = append(result.Decisions, d)
				if !d.Accepted() {
					continue
				}
				result.Accepted++
				call := chunk[i].Call
				call.AdmittedAt = chunk[i].Now
				call.Handoff = chunk[i].Handoff
				if err := chunk[i].Station.Admit(call); err != nil {
					continue // accepted but not committed
				}
				result.Committed++
				if observer != nil {
					observer.OnAdmit(chunk[i])
				}
				active = append(active, streamedCall{
					releaseWave: wave + cfg.HoldWaves,
					id:          chunk[i].Call.ID,
					station:     chunk[i].Station,
				})
			}
		}
		result.Requested += k
		result.Waves++
		now += cfg.WaveIntervalSec
	}
	return result
}

func assertStreamEqual(t *testing.T, got, want StreamingResult, label string) {
	t.Helper()
	if got.Requested != want.Requested || got.Accepted != want.Accepted ||
		got.Committed != want.Committed || got.Released != want.Released ||
		got.Waves != want.Waves {
		t.Fatalf("%s: aggregate mismatch: got {req %d acc %d com %d rel %d waves %d}, want {req %d acc %d com %d rel %d waves %d}",
			label, got.Requested, got.Accepted, got.Committed, got.Released, got.Waves,
			want.Requested, want.Accepted, want.Committed, want.Released, want.Waves)
	}
	if !reflect.DeepEqual(got.Decisions, want.Decisions) {
		for i := range want.Decisions {
			if got.Decisions[i] != want.Decisions[i] {
				t.Fatalf("%s: decision %d is %v, want %v", label, i, got.Decisions[i], want.Decisions[i])
			}
		}
		t.Fatalf("%s: decision streams differ in length: %d vs %d", label, len(got.Decisions), len(want.Decisions))
	}
}

func TestRunStreamingDeterministic(t *testing.T) {
	for _, tc := range []struct {
		name    string
		factory func(*cell.Network) (cac.Controller, error)
	}{
		{"guard", streamGuardFactory},
		{"scc-ledger", streamLedgerFactory},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := StreamingConfig{
				NewController: tc.factory,
				Requests:      600,
				Wave:          48,
				MaxBatch:      16,
				HoldWaves:     3,
				Seed:          11,
			}
			first, err := RunStreaming(cfg)
			if err != nil {
				t.Fatal(err)
			}
			again, err := RunStreaming(cfg)
			if err != nil {
				t.Fatal(err)
			}
			assertStreamEqual(t, again, first, "rerun")

			// Timing knobs must not leak into outcomes.
			fast := cfg
			fast.MaxDelay = -1
			slow := cfg
			slow.MaxDelay = 2 * time.Millisecond
			forFast, err := RunStreaming(fast)
			if err != nil {
				t.Fatal(err)
			}
			forSlow, err := RunStreaming(slow)
			if err != nil {
				t.Fatal(err)
			}
			assertStreamEqual(t, forFast, first, "greedy MaxDelay")
			assertStreamEqual(t, forSlow, first, "slow MaxDelay")

			// And the stream equals the sequential inline replay.
			oracle := replayStreaming(t, cfg)
			assertStreamEqual(t, first, oracle, "oracle replay")

			if first.Requested != 600 || len(first.Decisions) != 600 {
				t.Fatalf("unexpected volume: %+v", first)
			}
			if first.Accepted == 0 || first.Released == 0 {
				t.Fatalf("degenerate run (no accepts or releases): %+v", first)
			}
			if first.Stats.Decided != 600 {
				t.Fatalf("service stats incomplete: %+v", first.Stats)
			}
			// Only time-driven controllers receive (and count) ticks.
			if tc.name == "scc-ledger" && first.Stats.Ticks == 0 {
				t.Fatalf("ledger run should have ticked: %+v", first.Stats)
			}
		})
	}
}

func TestRunStreamingValidates(t *testing.T) {
	if _, err := RunStreaming(StreamingConfig{Requests: 10}); err == nil {
		t.Fatal("missing factory should fail")
	}
	if _, err := RunStreaming(StreamingConfig{NewController: streamGuardFactory}); err == nil {
		t.Fatal("missing request count should fail")
	}
	if _, err := RunStreaming(StreamingConfig{NewController: streamGuardFactory, Requests: 10, Wave: -1}); err == nil {
		t.Fatal("negative wave should fail")
	}
}
