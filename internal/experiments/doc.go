// Package experiments contains the reproduction and load harness: one
// driver per figure of the paper's evaluation section (Figs. 7-10), the
// ablation studies enumerated in ablations.go, the one-shot batch
// admission sweep (RunBatchAdmission), the closed-loop streaming load
// generator (RunStreaming) over the internal/serve service, the
// closed-loop sharded load generator (RunSharded / RunShardedSweep)
// over the internal/shard engine, and the metropolis-scale diurnal
// workload (RunMetropolis) — a city-sized hex deployment with
// rush-hour hotspot mobility, runnable through the single, batch and
// sharded decision paths.
//
// # Determinism
//
// Every experiment is deterministic for a given configuration: each
// replication derives all of its randomness from its own seed via
// sim.NewStream, so figure results are byte-identical for every worker
// count (RunSingleCellSeeds/RunMultiCellSeeds shard replications over a
// worker pool), RunStreaming produces byte-identical decision streams
// regardless of service timing because waves chunk only at MaxBatch
// boundaries, and RunSharded produces byte-identical decision and
// handoff streams for every shard count when the controller is
// cell-local (cac.CellLocal), and RunMetropolis folds every decision
// into one FNV-1a digest that is identical across repeats, decision
// paths and shard counts for cell-local controllers. The determinism
// suites in parallel_test.go, dispatch_test.go, streaming_test.go,
// sharded_test.go and metropolis_test.go pin these contracts.
//
// # Entry points
//
// Figure7..Figure10 and AllFigures regenerate the paper artifacts under
// a FigureConfig (load points, seeds, workers, compiled fast path);
// AllAblations runs the sensitivity studies; RunSingleCell/RunMultiCell
// execute one scenario; RunBatchAdmission sweeps a request batch
// against a loaded network snapshot; RunStreaming drives the streaming
// admission service with waves, held calls and controller ticks;
// RunSharded drives the sharded engine with the same closed loop plus
// neighbour handoffs (RunShardedSweep repeats it per shard count);
// RunMetropolis runs the city-scale diurnal day. The controller
// factories (FACSFactory, CompiledFACSFactory, SCCFactory,
// SCCRecomputeFactory) build the multi-cell contestants.
package experiments
