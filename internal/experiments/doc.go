// Package experiments contains the reproduction and load harness: one
// driver per figure of the paper's evaluation section (Figs. 7-10), the
// ablation studies enumerated in ablations.go, the one-shot batch
// admission sweep (RunBatchAdmission) and the closed-loop streaming
// load generator (RunStreaming) over the internal/serve service.
//
// # Determinism
//
// Every experiment is deterministic for a given configuration: each
// replication derives all of its randomness from its own seed via
// sim.NewStream, so figure results are byte-identical for every worker
// count (RunSingleCellSeeds/RunMultiCellSeeds shard replications over a
// worker pool), and RunStreaming produces byte-identical decision
// streams regardless of service timing because waves chunk only at
// MaxBatch boundaries. The determinism suites in parallel_test.go,
// dispatch_test.go and streaming_test.go pin these contracts.
//
// # Entry points
//
// Figure7..Figure10 and AllFigures regenerate the paper artifacts under
// a FigureConfig (load points, seeds, workers, compiled fast path);
// AllAblations runs the sensitivity studies; RunSingleCell/RunMultiCell
// execute one scenario; RunBatchAdmission sweeps a request batch
// against a loaded network snapshot; RunStreaming drives the streaming
// admission service with waves, held calls and controller ticks. The
// controller factories (FACSFactory, CompiledFACSFactory, SCCFactory,
// SCCRecomputeFactory) build the multi-cell contestants.
package experiments
