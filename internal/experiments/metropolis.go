package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"time"

	"facs/internal/cac"
	"facs/internal/cell"
	"facs/internal/geo"
	"facs/internal/gps"
	"facs/internal/serve"
	"facs/internal/shard"
	"facs/internal/sim"
	"facs/internal/traffic"
)

// MetropolisMode selects which decision path carries the metropolis
// workload. All three paths consume the identical request stream; for
// cell-local controllers MetroBatch and MetroSharded (at any shard
// count) produce byte-identical outcomes at equal MaxBatch, and
// MetroSingle matches them at MaxBatch 1.
type MetropolisMode int

// Decision paths.
const (
	// MetroSingle decides one request at a time (the classic event-loop
	// path: decide, commit, next).
	MetroSingle MetropolisMode = iota + 1
	// MetroBatch decides MaxBatch-sized chunks against chunk-start
	// snapshots and commits per request in order — serve.Service's wave
	// semantics, inline.
	MetroBatch
	// MetroSharded routes waves through a shard.Engine with Commit mode
	// and the serialized handoff protocol.
	MetroSharded
)

// String implements fmt.Stringer.
func (m MetropolisMode) String() string {
	switch m {
	case MetroSingle:
		return "single"
	case MetroBatch:
		return "batch"
	case MetroSharded:
		return "sharded"
	default:
		return fmt.Sprintf("MetropolisMode(%d)", int(m))
	}
}

// MetropolisConfig parameterises the metropolis-scale workload: a
// city-sized hex deployment under one simulated day of diurnal traffic,
// with rush-hour mobility steered toward hot-spot cells.
type MetropolisConfig struct {
	// NewController builds the admission controller for one shard view;
	// inline modes receive shard.SingleView. Required.
	NewController func(v shard.View) (cac.Controller, error)
	// Mode selects the decision path (default MetroBatch).
	Mode MetropolisMode
	// Shards is the engine's decision-loop count for MetroSharded
	// (default 1).
	Shards int
	// Partition selects the initial station-to-shard layout for
	// MetroSharded (see shard.Config.Partition; default round-robin).
	Partition shard.Partition
	// RebalanceEveryTicks enables elastic rebalancing every so many
	// tick barriers for MetroSharded (see
	// shard.Config.RebalanceEveryTicks; default 0 = static partition).
	RebalanceEveryTicks int
	// Rebalance bounds the planner when rebalancing is enabled.
	Rebalance shard.PlannerConfig
	// DisableInterestScope keeps the all-to-all ghost fan-out for
	// MetroSharded (see shard.Config.DisableInterestScope).
	DisableInterestScope bool
	// Rings is the network size (default 18: 1027 cells).
	Rings int
	// CellRadiusM is the hex cell radius (default 500 m: urban
	// micro-cells).
	CellRadiusM float64
	// CapacityBU is the per-station bandwidth. The default derives a
	// capacity from TargetCalls so the deployment runs loaded but not
	// jammed: ceil(2.6 x TargetCalls x meanBU / cells), floored at the
	// paper's 40 BU.
	CapacityBU int
	// TargetCalls scales the workload: the diurnal peak of the intended
	// concurrent call population (default 20000).
	TargetCalls int
	// Waves is the number of decision waves to run (default WavesPerDay:
	// one full day).
	Waves int
	// WavesPerDay sets the wave cadence against the diurnal clock
	// (default 96: 15-minute waves).
	WavesPerDay int
	// StartHour is the local time of wave 0 in hours (default 5: the
	// run climbs into the morning rush).
	StartHour float64
	// Hotspots is the number of hot-spot cells attracting rush-hour
	// traffic (default 3).
	Hotspots int
	// HotspotSigmaCells is the Gaussian reach of a hotspot in hex rings
	// (default 3).
	HotspotSigmaCells float64
	// RushBias scales both the arrival skew toward hotspot cells and the
	// handoff steering during rush hours (default 2).
	RushBias float64
	// Mix is the class mix (default 60/30/10).
	Mix traffic.Mix
	// SpeedKmh samples user speeds (default Span{10, 80}).
	SpeedKmh Span
	// HoldWavesMin/HoldWavesMax bound the uniform call-duration draw in
	// waves (defaults 2 and 8).
	HoldWavesMin int
	HoldWavesMax int
	// HandoffEveryWaves runs a handoff round every so many waves
	// (default 2).
	HandoffEveryWaves int
	// HandoffFraction is the per-round probability that an active call
	// attempts a handoff (default 0.08).
	HandoffFraction float64
	// TickEveryWaves delivers a barrier OnTick every so many waves
	// (default 4).
	TickEveryWaves int
	// WaveIntervalSec advances simulation time per wave (default one
	// diurnal-clock wave: 86400 / WavesPerDay).
	WaveIntervalSec float64
	// MaxBatch is the decision chunk size for MetroBatch and
	// MetroSharded (default 256). MetroSingle always decides chunks of
	// one.
	MaxBatch int
	// Seed drives all randomness.
	Seed int64
	// MeasureMem reports heap bytes per concurrent call, measured with a
	// forced GC at the predicted population peak (default off: the GC
	// pass costs wall-clock, never outcomes).
	MeasureMem bool
	// Materialize restores the pre-streaming arrival path: each wave's
	// full request slice is generated up front and handed to the engine
	// in one call. The default (false) streams arrivals in
	// MaxBatch-sized chunks from persistent scratch, so a wave's memory
	// footprint is O(MaxBatch) instead of O(arrivals). The two paths
	// are byte-identical: engines chunk waves at MaxBatch boundaries
	// anyway, so feeding pre-chunked waves produces the same decision
	// stream and DecisionHash. Materialize exists for exactly that
	// identity check (and for A/B measurement).
	Materialize bool
	// SnapshotDir, when non-empty, enables durable snapshots: the run
	// writes metropolis.snap into this directory (atomically, via a
	// temp-file rename) every SnapshotEveryTicks tick barriers and once
	// more when Stop fires. Snapshot writes happen between waves, never
	// inside the wave loop's hot path.
	SnapshotDir string
	// SnapshotEveryTicks is the snapshot cadence in tick barriers
	// (default 0: only the final on-stop snapshot is written).
	SnapshotEveryTicks int
	// Restore, when non-empty, warm-starts the run from a snapshot file
	// written by a previous run with an identical configuration. The
	// restored run continues exactly where the snapshot was cut:
	// replaying the remaining waves reproduces the uninterrupted run's
	// DecisionHash byte for byte.
	Restore string
	// Stop, when non-nil, requests a graceful early exit: the run
	// finishes the wave in flight, writes a final snapshot (if
	// SnapshotDir is set) and returns with Stopped set.
	Stop <-chan struct{}
}

func (c MetropolisConfig) withDefaults() MetropolisConfig {
	if c.Mode == 0 {
		c.Mode = MetroBatch
	}
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.Rings == 0 {
		c.Rings = 18
	}
	if c.CellRadiusM == 0 {
		c.CellRadiusM = 500
	}
	if c.TargetCalls == 0 {
		c.TargetCalls = 20000
	}
	if c.WavesPerDay == 0 {
		c.WavesPerDay = 96
	}
	if c.Waves == 0 {
		c.Waves = c.WavesPerDay
	}
	if c.StartHour == 0 {
		c.StartHour = 5
	}
	if c.Hotspots == 0 {
		c.Hotspots = 3
	}
	if c.HotspotSigmaCells == 0 {
		c.HotspotSigmaCells = 3
	}
	if c.RushBias == 0 {
		c.RushBias = 2
	}
	if (c.Mix == traffic.Mix{}) {
		c.Mix = traffic.DefaultMix()
	}
	if (c.SpeedKmh == Span{}) {
		c.SpeedKmh = Span{Min: 10, Max: 80}
	}
	if c.HoldWavesMin == 0 {
		c.HoldWavesMin = 2
	}
	if c.HoldWavesMax == 0 {
		c.HoldWavesMax = 8
	}
	if c.HandoffEveryWaves == 0 {
		c.HandoffEveryWaves = 2
	}
	if c.HandoffFraction == 0 {
		c.HandoffFraction = 0.08
	}
	if c.TickEveryWaves == 0 {
		c.TickEveryWaves = 4
	}
	if c.WaveIntervalSec == 0 {
		c.WaveIntervalSec = 86400 / float64(c.WavesPerDay)
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 256
	}
	if c.CapacityBU == 0 {
		mean := c.Mix.MeanBU()
		cells := 1 + 3*c.Rings*(c.Rings+1)
		c.CapacityBU = int(math.Ceil(2.6 * float64(c.TargetCalls) * mean / float64(cells)))
		if c.CapacityBU < cell.DefaultCapacityBU {
			c.CapacityBU = cell.DefaultCapacityBU
		}
	}
	return c
}

// Validate checks the configuration.
func (c MetropolisConfig) Validate() error {
	if c.NewController == nil {
		return fmt.Errorf("experiments: metropolis config needs a controller factory")
	}
	if c.Mode != MetroSingle && c.Mode != MetroBatch && c.Mode != MetroSharded {
		return fmt.Errorf("experiments: unknown metropolis mode %v", c.Mode)
	}
	if c.Shards < 1 {
		return fmt.Errorf("experiments: Shards must be >= 1, got %d", c.Shards)
	}
	if c.Rings < 1 {
		return fmt.Errorf("experiments: Rings must be >= 1, got %d", c.Rings)
	}
	if c.TargetCalls < 1 {
		return fmt.Errorf("experiments: TargetCalls must be >= 1, got %d", c.TargetCalls)
	}
	if c.Waves < 1 || c.WavesPerDay < 1 {
		return fmt.Errorf("experiments: Waves and WavesPerDay must be >= 1")
	}
	if c.Hotspots < 0 {
		return fmt.Errorf("experiments: Hotspots must be >= 0, got %d", c.Hotspots)
	}
	if c.HotspotSigmaCells <= 0 {
		return fmt.Errorf("experiments: HotspotSigmaCells must be > 0, got %v", c.HotspotSigmaCells)
	}
	if c.HoldWavesMin < 1 || c.HoldWavesMax < c.HoldWavesMin {
		return fmt.Errorf("experiments: need 1 <= HoldWavesMin <= HoldWavesMax, got %d/%d",
			c.HoldWavesMin, c.HoldWavesMax)
	}
	if c.HandoffEveryWaves < 1 || c.TickEveryWaves < 1 {
		return fmt.Errorf("experiments: HandoffEveryWaves and TickEveryWaves must be >= 1")
	}
	if c.HandoffFraction < 0 || c.HandoffFraction > 1 {
		return fmt.Errorf("experiments: HandoffFraction must be in [0, 1], got %v", c.HandoffFraction)
	}
	if c.MaxBatch < 1 {
		return fmt.Errorf("experiments: MaxBatch must be >= 1, got %d", c.MaxBatch)
	}
	if c.SnapshotEveryTicks < 0 {
		return fmt.Errorf("experiments: SnapshotEveryTicks must be >= 0, got %d", c.SnapshotEveryTicks)
	}
	if c.SnapshotEveryTicks > 0 && c.SnapshotDir == "" {
		return fmt.Errorf("experiments: SnapshotEveryTicks needs a SnapshotDir")
	}
	if err := c.SpeedKmh.Validate(); err != nil {
		return err
	}
	return c.Mix.Validate()
}

// MetropolisResult aggregates one metropolis run.
type MetropolisResult struct {
	// ControllerName identifies the scheme under test.
	ControllerName string
	// Mode is the decision path; Shards the realised loop count
	// (1 for inline modes); Cells the deployment size; CapacityBU the
	// realised per-station bandwidth.
	Mode       MetropolisMode
	Shards     int
	Cells      int
	CapacityBU int
	// Waves is the number of waves run.
	Waves int
	// Requested / Accepted / Committed count new-call admission
	// outcomes; Released the closed-loop retirements.
	Requested, Accepted, Committed, Released int
	// Handoffs / HandoffDropped / CrossShard count the handoff protocol
	// (CrossShard stays 0 for inline modes).
	Handoffs, HandoffDropped, CrossShard int
	// PeakConcurrent is the largest live-call population observed at a
	// wave boundary; FinalActive the population when the run ended.
	PeakConcurrent, FinalActive int
	// DecisionHash is an FNV-1a digest of every decision and commit
	// outcome in stream order — the byte-identity fingerprint across
	// repeats, modes and shard counts.
	DecisionHash uint64
	// Epoch is the final ownership version; Rebalances / Migrations /
	// MigratedCalls count elastic-rebalance activity (all zero for
	// inline modes and static partitions).
	Epoch                                 uint64
	Rebalances, Migrations, MigratedCalls int64
	// GhostRows counts exchange rows actually fanned to sibling shards;
	// GhostRowsAllToAll what an unscoped fan-out would have applied;
	// InterestScoped whether the exchange was scoped.
	GhostRows, GhostRowsAllToAll int64
	InterestScoped               bool
	// BytesPerCall is live heap bytes per concurrent call measured at
	// the predicted population peak (0 unless MeasureMem).
	BytesPerCall float64
	// Snapshots counts durable snapshot files written; Stopped reports
	// whether the run exited early on the Stop channel.
	Snapshots int
	Stopped   bool
	// Elapsed is the wall-clock of the wave loop (excludes network and
	// controller construction).
	Elapsed time.Duration
}

// Decisions returns the total number of admission decisions rendered
// (new calls plus handoff admissions).
func (r MetropolisResult) Decisions() int { return r.Requested + r.Handoffs }

// DecisionsPerSec returns the sustained decision throughput of the wave
// loop.
func (r MetropolisResult) DecisionsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Decisions()) / r.Elapsed.Seconds()
}

// AcceptedPct returns 100 * accepted / requested.
func (r MetropolisResult) AcceptedPct() float64 {
	if r.Requested == 0 {
		return 0
	}
	return 100 * float64(r.Accepted) / float64(r.Requested)
}

// DropPct returns 100 * dropped / handoffs.
func (r MetropolisResult) DropPct() float64 {
	if r.Handoffs == 0 {
		return 0
	}
	return 100 * float64(r.HandoffDropped) / float64(r.Handoffs)
}

// metroOutcome is one admission outcome as hashed into DecisionHash.
type metroOutcome struct {
	accepted  bool
	committed bool
}

// metroEngine abstracts the three decision paths behind the wave loop.
type metroEngine interface {
	controllerName() (string, error)
	submitWave(reqs []cac.Request, out []metroOutcome) error
	release(id int, station *cell.BaseStation, now float64) error
	// handoff runs the two-phase transfer protocol and reports the
	// target-side outcome plus whether the transfer crossed shards.
	handoff(id int, class traffic.Class, bu int, from, to *cell.BaseStation, est gps.Estimate, now float64) (metroOutcome, bool, error)
	tick(now float64) error
	close() error
}

// inlineMetroEngine realises serve.Service's Commit-mode wave semantics
// sequentially: chunk at MaxBatch in request order, decide each chunk
// against its start snapshot, commit per request in order. With
// maxBatch 1 it is the single-loop path.
type inlineMetroEngine struct {
	ctrl     cac.Controller
	observer cac.Observer
	ticker   cac.Ticker
	maxBatch int
	scratch  [1]cac.Request
	// dec is the persistent decision buffer DecideAllInto fills: one
	// slot per chunk position, reused across chunks and waves.
	dec []cac.Decision
}

func newInlineMetroEngine(ctrl cac.Controller, maxBatch int) *inlineMetroEngine {
	e := &inlineMetroEngine{ctrl: ctrl, maxBatch: maxBatch, dec: make([]cac.Decision, maxBatch)}
	e.observer, _ = ctrl.(cac.Observer)
	e.ticker, _ = ctrl.(cac.Ticker)
	return e
}

func (e *inlineMetroEngine) controllerName() (string, error) { return e.ctrl.Name(), nil }

// commit applies one accepted decision exactly as serve.Service.finish:
// allocate on the station with the request's time and handoff flag, and
// notify observer controllers. A failed admit (bandwidth claimed by
// earlier accepts in the same chunk) leaves the request uncommitted.
func (e *inlineMetroEngine) commit(req cac.Request) bool {
	call := req.Call
	call.AdmittedAt = req.Now
	call.Handoff = req.Handoff
	if err := req.Station.Admit(call); err != nil {
		return false
	}
	if e.observer != nil {
		e.observer.OnAdmit(req)
	}
	return true
}

func (e *inlineMetroEngine) submitWave(reqs []cac.Request, out []metroOutcome) error {
	for lo := 0; lo < len(reqs); lo += e.maxBatch {
		hi := lo + e.maxBatch
		if hi > len(reqs) {
			hi = len(reqs)
		}
		chunk := reqs[lo:hi]
		if err := cac.DecideAllInto(e.ctrl, chunk, e.dec[:len(chunk)]); err != nil {
			return err
		}
		for i := range chunk {
			d := e.dec[i]
			out[lo+i] = metroOutcome{accepted: d.Accepted()}
			if d.Accepted() {
				out[lo+i].committed = e.commit(chunk[i])
			}
		}
	}
	return nil
}

func (e *inlineMetroEngine) release(id int, station *cell.BaseStation, now float64) error {
	// Mirror serve.Service.Release: a failed station release is counted
	// by the service, not fatal; observers hear the release either way.
	_, _ = station.Release(id)
	if e.observer != nil {
		e.observer.OnRelease(id, station, now)
	}
	return nil
}

func (e *inlineMetroEngine) handoff(id int, class traffic.Class, bu int, from, to *cell.BaseStation, est gps.Estimate, now float64) (metroOutcome, bool, error) {
	// Phase 1: release at the source (shard.Engine's protocol order).
	if _, err := from.Release(id); err != nil {
		return metroOutcome{}, false, err
	}
	if e.observer != nil {
		e.observer.OnRelease(id, from, now)
	}
	// Phase 2: target-side admission with handoff priority, a
	// single-request chunk exactly like the engine's SubmitAll. The
	// request and decision ride the engine's persistent scratch so the
	// two-phase protocol stays allocation-free.
	e.scratch[0] = cac.Request{
		Call:    cell.Call{ID: id, Class: class, BU: bu},
		Station: to,
		Obs:     gps.Observe(est, to.Pos()),
		Est:     est,
		Handoff: true,
		Now:     now,
	}
	err := cac.DecideAllInto(e.ctrl, e.scratch[:], e.dec[:1])
	req := e.scratch[0]
	e.scratch[0] = cac.Request{}
	if err != nil {
		return metroOutcome{}, false, err
	}
	d := e.dec[0]
	outcome := metroOutcome{accepted: d.Accepted()}
	if d.Accepted() {
		outcome.committed = e.commit(req)
	}
	return outcome, false, nil
}

func (e *inlineMetroEngine) tick(now float64) error {
	if e.ticker != nil {
		e.ticker.OnTick(now)
	}
	return nil
}

func (e *inlineMetroEngine) close() error { return nil }

// shardMetroEngine adapts shard.Engine to the wave loop. resp is the
// persistent response-scatter buffer SubmitWaveTo fills, grown once to
// the largest wave seen and reused thereafter.
type shardMetroEngine struct {
	engine *shard.Engine
	resp   []serve.Response
}

func (e *shardMetroEngine) controllerName() (string, error) {
	var name string
	err := e.engine.Do(0, func(ctrl cac.Controller) { name = ctrl.Name() })
	return name, err
}

func (e *shardMetroEngine) submitWave(reqs []cac.Request, out []metroOutcome) error {
	if cap(e.resp) < len(reqs) {
		e.resp = make([]serve.Response, len(reqs))
	}
	resps := e.resp[:len(reqs)]
	if err := e.engine.SubmitWaveTo(reqs, resps); err != nil {
		return err
	}
	for i, resp := range resps {
		if resp.Err != nil && !resp.Decision.Accepted() {
			return resp.Err
		}
		out[i] = metroOutcome{accepted: resp.Decision.Accepted(), committed: resp.Committed}
	}
	return nil
}

func (e *shardMetroEngine) release(id int, station *cell.BaseStation, now float64) error {
	return e.engine.Release(id, station, now)
}

func (e *shardMetroEngine) handoff(id int, class traffic.Class, bu int, from, to *cell.BaseStation, est gps.Estimate, now float64) (metroOutcome, bool, error) {
	res := e.engine.HandoffCall(shard.Handoff{CallID: id, From: from, To: to, Est: est, Now: now})
	if res.Err != nil {
		return metroOutcome{}, res.CrossShard, res.Err
	}
	return metroOutcome{
		accepted:  res.Response.Decision.Accepted(),
		committed: res.Response.Committed,
	}, res.CrossShard, nil
}

func (e *shardMetroEngine) tick(now float64) error { return e.engine.Tick(now) }

func (e *shardMetroEngine) close() error { return e.engine.Close() }

// fnv1a is an incremental FNV-1a 64-bit digest.
type fnv1a uint64

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func (h *fnv1a) writeByte(b byte) { *h = (*h ^ fnv1a(b)) * fnvPrime64 }

func (h *fnv1a) writeOutcome(kind byte, id int, o metroOutcome) {
	h.writeByte(kind)
	u := uint32(id)
	h.writeByte(byte(u))
	h.writeByte(byte(u >> 8))
	h.writeByte(byte(u >> 16))
	h.writeByte(byte(u >> 24))
	var bits byte
	if o.accepted {
		bits |= 1
	}
	if o.committed {
		bits |= 2
	}
	h.writeByte(bits)
}

// metroLedger is the run's struct-of-arrays active-call table. Waves
// compact it in place (stable order), so iteration order is the
// admission order — deterministic across modes and shard counts.
type metroLedger struct {
	id      []int32
	class   []traffic.Class
	bu      []int8
	station []int32 // index into the network's (Q, R) station order
	release []int32 // wave at which the call retires
}

func (l *metroLedger) push(id int, class traffic.Class, bu int, station int, release int) {
	l.id = append(l.id, int32(id))
	l.class = append(l.class, class)
	l.bu = append(l.bu, int8(bu))
	l.station = append(l.station, int32(station))
	l.release = append(l.release, int32(release))
}

func (l *metroLedger) set(dst, src int) {
	l.id[dst] = l.id[src]
	l.class[dst] = l.class[src]
	l.bu[dst] = l.bu[src]
	l.station[dst] = l.station[src]
	l.release[dst] = l.release[src]
}

func (l *metroLedger) truncate(n int) {
	l.id = l.id[:n]
	l.class = l.class[:n]
	l.bu = l.bu[:n]
	l.station = l.station[:n]
	l.release = l.release[:n]
}

func (l *metroLedger) len() int { return len(l.id) }

// metroWorkload precomputes the deterministic scenario shape: the
// diurnal arrival schedule, the hotspot proximity field, and the
// per-wave cell-choice distributions.
type metroWorkload struct {
	cfg      MetropolisConfig
	stations []*cell.BaseStation
	// stationIdx inverts the (Q, R) station order for handoff targets.
	stationIdx map[geo.Hex]int
	// prox is each cell's summed Gaussian proximity to the hotspots in
	// [0, Hotspots].
	prox []float64
	// arrivals is the scheduled arrival count per wave.
	arrivals []int
	// cellCum is the per-wave cumulative cell-choice distribution,
	// rebuilt from the rush profile only when the profile actually
	// moves (scratch buffer; see ensureCellCum).
	cellCum []float64
	// cellCumSkew is the hotspot skew cellCum was last built for;
	// cellCumOK reports whether cellCum holds any build at all.
	cellCumSkew float64
	cellCumOK   bool
	// mix is the cumulative class distribution.
	mixCum [3]float64
	// inradiusM bounds the position jitter inside a chosen cell.
	inradiusM float64
}

// gauss is the unnormalized Gaussian bump exp(-(x-mu)^2 / (2 sigma^2)),
// shared by the day-profile shapes below (a package function rather than
// a per-call closure: the profiles sit on the wave hot path).
func gauss(x, mu, sigma float64) float64 {
	d := x - mu
	return math.Exp(-d * d / (2 * sigma * sigma))
}

// diurnal is the double-hump day profile in [~0.15, 1]: morning and
// evening rush peaks with a midday shoulder and a deep night valley.
func diurnal(hour float64) float64 {
	peak := math.Max(gauss(hour, 8.5, 2.2), gauss(hour, 18, 2.5))
	peak = math.Max(peak, 0.55*gauss(hour, 13, 3.5))
	return 0.15 + 0.85*peak
}

// rushFactor is the rush-hour intensity in [0, 1] driving hotspot skew.
func rushFactor(hour float64) float64 {
	return math.Max(gauss(hour, 8.5, 1.5), gauss(hour, 18, 1.5))
}

// rushDirection steers handoffs: positive (toward hotspots) through the
// morning, negative (homeward) through the evening.
func rushDirection(hour float64) float64 {
	if hour < 13 {
		return rushFactor(hour)
	}
	return -rushFactor(hour)
}

func newMetroWorkload(cfg MetropolisConfig, net *cell.Network) *metroWorkload {
	w := &metroWorkload{
		cfg:        cfg,
		stations:   net.Stations(),
		stationIdx: make(map[geo.Hex]int, net.NumCells()),
		inradiusM:  cfg.CellRadiusM * math.Sqrt(3) / 2,
	}
	for i, bs := range w.stations {
		w.stationIdx[bs.Hex()] = i
	}
	// Hotspots: evenly spaced picks from the spiral order, skipping the
	// exact centre so the downtown cluster sits off-origin.
	hotspots := make([]geo.Hex, 0, cfg.Hotspots)
	for k := 1; k <= cfg.Hotspots; k++ {
		hotspots = append(hotspots, w.stations[(k*len(w.stations))/(cfg.Hotspots+1)].Hex())
	}
	w.prox = make([]float64, len(w.stations))
	sigma2 := 2 * cfg.HotspotSigmaCells * cfg.HotspotSigmaCells
	for i, bs := range w.stations {
		for _, h := range hotspots {
			d := float64(bs.Hex().DistanceTo(h))
			w.prox[i] += math.Exp(-d * d / sigma2)
		}
	}
	// Arrival schedule: the population integrates arrivals over the mean
	// hold, so arrivals-per-wave = diurnal x TargetCalls / meanHold puts
	// the concurrent population at the diurnal curve times TargetCalls.
	meanHold := float64(cfg.HoldWavesMin+cfg.HoldWavesMax) / 2
	w.arrivals = make([]int, cfg.Waves)
	for wave := range w.arrivals {
		w.arrivals[wave] = int(diurnal(w.hourOf(wave)) * float64(cfg.TargetCalls) / meanHold)
	}
	w.cellCum = make([]float64, len(w.stations))
	total := cfg.Mix.Text + cfg.Mix.Voice + cfg.Mix.Video
	w.mixCum[0] = cfg.Mix.Text / total
	w.mixCum[1] = w.mixCum[0] + cfg.Mix.Voice/total
	w.mixCum[2] = 1
	return w
}

func (w *metroWorkload) hourOf(wave int) float64 {
	return math.Mod(w.cfg.StartHour+24*float64(wave)/float64(w.cfg.WavesPerDay), 24)
}

// peakWave returns the wave with the largest scheduled population (the
// arrival sum over one mean hold), where MeasureMem snapshots the heap.
func (w *metroWorkload) peakWave() int {
	meanHold := (w.cfg.HoldWavesMin + w.cfg.HoldWavesMax) / 2
	if meanHold < 1 {
		meanHold = 1
	}
	best, bestSum, sum := 0, 0, 0
	for wave := range w.arrivals {
		sum += w.arrivals[wave]
		if wave >= meanHold {
			sum -= w.arrivals[wave-meanHold]
		}
		if sum > bestSum {
			best, bestSum = wave, sum
		}
	}
	return best
}

// ensureCellCum makes the cumulative cell-choice weights current for a
// wave: uniform base plus rush-scaled hotspot proximity. The weights
// depend on the wave only through the hotspot skew, so the rebuild is
// skipped whenever the skew repeats — every wave of a multi-day run
// after the first day (the diurnal clock wraps), and every wave when
// hotspots are disabled.
func (w *metroWorkload) ensureCellCum(wave int) {
	skew := w.cfg.RushBias * rushFactor(w.hourOf(wave))
	if w.cellCumOK && skew == w.cellCumSkew {
		return
	}
	cum := 0.0
	for i := range w.cellCum {
		cum += 1 + skew*w.prox[i]
		w.cellCum[i] = cum
	}
	w.cellCumSkew = skew
	w.cellCumOK = true
}

// sampleCell draws a station index from the wave's distribution.
func (w *metroWorkload) sampleCell(rng *rand.Rand) int {
	x := rng.Float64() * w.cellCum[len(w.cellCum)-1]
	lo, hi := 0, len(w.cellCum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if w.cellCum[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// sampleClass draws a service class from the mix (allocation-free).
func (w *metroWorkload) sampleClass(rng *rand.Rand) traffic.Class {
	x := rng.Float64()
	switch {
	case x < w.mixCum[0]:
		return traffic.Text
	case x < w.mixCum[1]:
		return traffic.Voice
	default:
		return traffic.Video
	}
}

// sampleEstimate draws a user's kinematic state inside station si's cell.
func (w *metroWorkload) sampleEstimate(rng *rand.Rand, si int, now float64) gps.Estimate {
	r := 0.9 * w.inradiusM * math.Sqrt(rng.Float64())
	theta := 2 * math.Pi * rng.Float64()
	c := w.stations[si].Pos()
	return gps.Estimate{
		Pos:        geo.Point{X: c.X + r*math.Cos(theta), Y: c.Y + r*math.Sin(theta)},
		HeadingDeg: sim.Uniform(rng, -180, 180),
		SpeedKmh:   w.cfg.SpeedKmh.Sample(rng),
		Time:       now,
	}
}

// sampleHandoffTarget draws the neighbouring cell a moving call enters,
// steered along the hotspot gradient during rush hours: toward hotspots
// through the morning commute, away through the evening.
func (w *metroWorkload) sampleHandoffTarget(rng *rand.Rand, si int, wave int) (int, bool) {
	steer := w.cfg.RushBias * rushDirection(w.hourOf(wave))
	var weights [6]float64
	var targets [6]int
	n, total := 0, 0.0
	cur := w.prox[si]
	for _, nh := range w.stations[si].Hex().Neighbors() {
		ti, ok := w.stationIdx[nh]
		if !ok {
			continue
		}
		wt := math.Exp(steer * (w.prox[ti] - cur))
		weights[n] = wt
		targets[n] = ti
		n++
		total += wt
	}
	if n == 0 {
		return 0, false
	}
	x := rng.Float64() * total
	for i := 0; i < n; i++ {
		x -= weights[i]
		if x < 0 {
			return targets[i], true
		}
	}
	return targets[n-1], true
}

// RunMetropolis executes the metropolis-scale scenario: one simulated
// day (by default) of diurnal traffic over a city-sized hex deployment,
// with rush-hour mobility steered toward hot-spot cells, driven through
// the selected decision path. Outcomes are deterministic in the config:
// repeats produce identical DecisionHash values. For cell-local
// controllers the hash is additionally identical across every shard
// count and across batch/sharded modes at equal MaxBatch (MetroSingle
// matches at MaxBatch 1); non-cell-local controllers such as the SCC
// demand ledger are reproducible per shard count but legitimately
// diverge between shard counts.
func RunMetropolis(cfg MetropolisConfig) (MetropolisResult, error) {
	r, err := newMetroRun(cfg)
	if err != nil {
		return MetropolisResult{}, err
	}
	defer r.engine.close()
	if r.cfg.Restore != "" {
		if err := r.restoreFromFile(r.cfg.Restore); err != nil {
			return MetropolisResult{}, err
		}
	}
	start := time.Now() //facs:wallclock wall-time Elapsed metric only; never feeds a decision
	for r.wave < r.cfg.Waves {
		select {
		case <-r.cfg.Stop:
			r.result.Stopped = true
		default:
		}
		if r.result.Stopped {
			break
		}
		if err := r.runWave(); err != nil {
			return MetropolisResult{}, err
		}
		// Durable snapshots ride the tick cadence and run strictly
		// between waves, outside the allocation-gated hot path.
		if r.cfg.SnapshotDir != "" && r.cfg.SnapshotEveryTicks > 0 &&
			r.wave%(r.cfg.TickEveryWaves*r.cfg.SnapshotEveryTicks) == 0 {
			if err := r.writeSnapshot(); err != nil {
				return MetropolisResult{}, err
			}
		}
	}
	if r.result.Stopped && r.cfg.SnapshotDir != "" {
		if err := r.writeSnapshot(); err != nil {
			return MetropolisResult{}, err
		}
	}
	r.result.Elapsed = time.Since(start) //facs:wallclock wall-time Elapsed metric only
	return r.finish()
}

// metroRun is the wave loop's live state, split out of RunMetropolis so
// tests can step individual waves (warm the scratch buffers through the
// population ramp, then gate steady-state allocations per wave).
type metroRun struct {
	cfg        MetropolisConfig
	engine     metroEngine
	workload   *metroWorkload
	callRNG    *rand.Rand
	handoffRNG *rand.Rand
	// callSrc/handoffSrc count the RNG streams' draws so a snapshot can
	// record each stream as a single replayable position (see
	// sim.CountedSource); the counting costs one increment per draw and
	// allocates nothing.
	callSrc    *sim.CountedSource
	handoffSrc *sim.CountedSource
	result     MetropolisResult
	hash       fnv1a
	ledger     metroLedger
	// Wave scratch, reused across waves: the streaming path sizes it at
	// one MaxBatch chunk; the materialized path grows it once to the
	// largest scheduled wave.
	reqs  []cac.Request
	outs  []metroOutcome
	holds []int
	cells []int

	nextID   int
	wave     int
	baseHeap uint64
	peakWave int
}

func newMetroRun(cfg MetropolisConfig) (*metroRun, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	net, err := cell.NewNetwork(cell.NetworkConfig{
		Rings:       cfg.Rings,
		CellRadiusM: cfg.CellRadiusM,
		CapacityBU:  cfg.CapacityBU,
	})
	if err != nil {
		return nil, err
	}

	var engine metroEngine
	switch cfg.Mode {
	case MetroSharded:
		eng, err := shard.New(shard.Config{
			Network:              net,
			Shards:               cfg.Shards,
			NewController:        cfg.NewController,
			MaxBatch:             cfg.MaxBatch,
			Commit:               true,
			Partition:            cfg.Partition,
			RebalanceEveryTicks:  cfg.RebalanceEveryTicks,
			Rebalance:            cfg.Rebalance,
			DisableInterestScope: cfg.DisableInterestScope,
		})
		if err != nil {
			return nil, err
		}
		engine = &shardMetroEngine{engine: eng}
	default:
		ctrl, err := cfg.NewController(shard.SingleView(net))
		if err != nil {
			return nil, err
		}
		maxBatch := cfg.MaxBatch
		if cfg.Mode == MetroSingle {
			maxBatch = 1
		}
		engine = newInlineMetroEngine(ctrl, maxBatch)
	}

	callRNG, callSrc := sim.NewCountedStream(cfg.Seed, "metro-calls")
	handoffRNG, handoffSrc := sim.NewCountedStream(cfg.Seed, "metro-handoff")
	r := &metroRun{
		cfg:        cfg,
		engine:     engine,
		workload:   newMetroWorkload(cfg, net),
		callRNG:    callRNG,
		handoffRNG: handoffRNG,
		callSrc:    callSrc,
		handoffSrc: handoffSrc,
		hash:       fnv1a(fnvOffset64),
		nextID:     1,
		peakWave:   -1,
	}
	r.result = MetropolisResult{
		Mode:       cfg.Mode,
		Cells:      net.NumCells(),
		CapacityBU: cfg.CapacityBU,
		Shards:     1,
	}
	if cfg.Mode == MetroSharded {
		r.result.Shards = engine.(*shardMetroEngine).engine.Shards()
	}
	if r.result.ControllerName, err = engine.controllerName(); err != nil {
		_ = engine.close()
		return nil, err
	}

	// Size the wave scratch once: a streaming run never holds more than
	// one MaxBatch chunk; a materialized run holds the largest wave.
	scratch := cfg.MaxBatch
	if cfg.Materialize {
		for _, n := range r.workload.arrivals {
			if n > scratch {
				scratch = n
			}
		}
	}
	r.reqs = make([]cac.Request, 0, scratch)
	r.outs = make([]metroOutcome, scratch)
	r.holds = make([]int, 0, scratch)
	r.cells = make([]int, 0, scratch)

	if cfg.MeasureMem {
		r.peakWave = r.workload.peakWave()
		var ms runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms)
		r.baseHeap = ms.HeapAlloc
	}
	return r, nil
}

// runWave advances the scenario by one wave: releases, the tick
// barrier, the handoff round, then the wave's arrivals.
//
//facs:hotpath
func (r *metroRun) runWave() error {
	cfg, workload, engine := r.cfg, r.workload, r.engine
	wave := r.wave
	now := float64(wave) * cfg.WaveIntervalSec

	// Retire calls due this wave, strictly before handoffs and new
	// admissions; stable in-place compaction keeps admission order.
	keep := 0
	for i := 0; i < r.ledger.len(); i++ {
		if r.ledger.release[i] <= int32(wave) {
			if err := engine.release(int(r.ledger.id[i]), workload.stations[r.ledger.station[i]], now); err != nil {
				return err
			}
			r.result.Released++
			continue
		}
		if keep != i {
			r.ledger.set(keep, i)
		}
		keep++
	}
	r.ledger.truncate(keep)

	if wave > 0 && wave%cfg.TickEveryWaves == 0 {
		if err := engine.tick(now); err != nil {
			return err
		}
	}

	// Handoff round: a seeded subset of the survivors moves along the
	// rush-hour gradient through the two-phase protocol.
	if wave > 0 && wave%cfg.HandoffEveryWaves == 0 {
		keep = 0
		for i := 0; i < r.ledger.len(); i++ {
			if r.handoffRNG.Float64() >= cfg.HandoffFraction {
				if keep != i {
					r.ledger.set(keep, i)
				}
				keep++
				continue
			}
			si := int(r.ledger.station[i])
			ti, ok := workload.sampleHandoffTarget(r.handoffRNG, si, wave)
			if !ok {
				if keep != i {
					r.ledger.set(keep, i)
				}
				keep++
				continue
			}
			est := workload.sampleEstimate(r.handoffRNG, ti, now)
			outcome, crossShard, err := engine.handoff(
				int(r.ledger.id[i]), r.ledger.class[i], int(r.ledger.bu[i]),
				workload.stations[si], workload.stations[ti], est, now)
			if err != nil {
				return err
			}
			r.result.Handoffs++
			if crossShard {
				r.result.CrossShard++
			}
			r.hash.writeOutcome('H', int(r.ledger.id[i]), outcome)
			if !outcome.committed {
				r.result.HandoffDropped++
				continue // the call is lost; the source released it
			}
			r.ledger.station[i] = int32(ti)
			if keep != i {
				r.ledger.set(keep, i)
			}
			keep++
		}
		r.ledger.truncate(keep)
	}

	// Arrivals: the wave's scheduled draw from the diurnal curve,
	// streamed through the engine seam one MaxBatch chunk at a time
	// (Materialize hands the whole wave over in one call instead).
	// Engines re-chunk waves at MaxBatch boundaries, so the chunk
	// cadence changes no decision and no hash — only the footprint.
	n := workload.arrivals[wave]
	workload.ensureCellCum(wave)
	step := n
	if !cfg.Materialize && cfg.MaxBatch < n {
		step = cfg.MaxBatch
	}
	for lo := 0; lo < n; lo += step {
		m := step
		if lo+m > n {
			m = n - lo
		}
		reqs, holds, cells := r.reqs[:0], r.holds[:0], r.cells[:0]
		for i := 0; i < m; i++ {
			si := workload.sampleCell(r.callRNG)
			class := workload.sampleClass(r.callRNG)
			est := workload.sampleEstimate(r.callRNG, si, now)
			bs := workload.stations[si]
			reqs = append(reqs, cac.Request{
				Call:    cell.Call{ID: r.nextID, Class: class, BU: class.BandwidthUnits()},
				Station: bs,
				Obs:     gps.Observe(est, bs.Pos()),
				Est:     est,
				Now:     now,
			})
			holds = append(holds, cfg.HoldWavesMin+r.callRNG.Intn(cfg.HoldWavesMax-cfg.HoldWavesMin+1))
			cells = append(cells, si)
			r.nextID++
		}
		if err := engine.submitWave(reqs, r.outs[:m]); err != nil {
			return err
		}
		for i := range reqs {
			o := r.outs[i]
			r.hash.writeOutcome('A', reqs[i].Call.ID, o)
			r.result.Requested++
			if o.accepted {
				r.result.Accepted++
			}
			if o.committed {
				r.result.Committed++
				r.ledger.push(reqs[i].Call.ID, reqs[i].Call.Class, reqs[i].Call.BU,
					cells[i], wave+holds[i])
			}
		}
	}
	r.result.Waves++
	if r.ledger.len() > r.result.PeakConcurrent {
		r.result.PeakConcurrent = r.ledger.len()
	}
	if wave == r.peakWave && r.ledger.len() > 0 {
		var ms runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > r.baseHeap {
			r.result.BytesPerCall = float64(ms.HeapAlloc-r.baseHeap) / float64(r.ledger.len())
		}
	}
	r.wave++
	return nil
}

// finish closes the engine and returns the accumulated result.
func (r *metroRun) finish() (MetropolisResult, error) {
	r.result.FinalActive = r.ledger.len()
	r.result.DecisionHash = uint64(r.hash)
	if sme, ok := r.engine.(*shardMetroEngine); ok {
		st := sme.engine.Stats()
		r.result.Epoch = st.Epoch
		r.result.Rebalances = st.Rebalances
		r.result.Migrations = st.Migrations
		r.result.MigratedCalls = st.MigratedCalls
		r.result.GhostRows = st.GhostRows
		r.result.GhostRowsAllToAll = st.GhostRowsAllToAll
		r.result.InterestScoped = st.InterestScoped
	}
	if err := r.engine.close(); err != nil {
		return MetropolisResult{}, err
	}
	return r.result, nil
}
