package experiments

import (
	"testing"

	"facs/internal/cac"
	"facs/internal/cell"
	"facs/internal/facs"
	"facs/internal/gps"
	"facs/internal/scc"
)

// sequentialOnly hides a controller's native batch path (and its
// Ticker), forcing cac.DecideAll onto the sequential adapter while
// keeping Observer/StateUpdater semantics intact.
type sequentialOnly struct {
	inner cac.Controller
}

func (s sequentialOnly) Name() string                                 { return s.inner.Name() }
func (s sequentialOnly) Decide(req cac.Request) (cac.Decision, error) { return s.inner.Decide(req) }

func (s sequentialOnly) OnAdmit(req cac.Request) {
	if obs, ok := s.inner.(cac.Observer); ok {
		obs.OnAdmit(req)
	}
}

func (s sequentialOnly) OnRelease(callID int, bs *cell.BaseStation, now float64) {
	if obs, ok := s.inner.(cac.Observer); ok {
		obs.OnRelease(callID, bs, now)
	}
}

func (s sequentialOnly) OnStateUpdate(callID int, est gps.Estimate, bs *cell.BaseStation) {
	if up, ok := s.inner.(cac.StateUpdater); ok {
		up.OnStateUpdate(callID, est, bs)
	}
}

// TestBatchAdmissionMatchesSequential runs the identical sweep (same
// seed, same snapshot) through each controller's native batch path and
// through the sequential adapter, and asserts decision-for-decision
// equality — the BatchController contract, end to end through the
// driver.
func TestBatchAdmissionMatchesSequential(t *testing.T) {
	factories := map[string]func(net *cell.Network) (cac.Controller, error){
		"scc-ledger": SCCFactory(),
		"facs":       FACSFactory(),
		"guard": func(*cell.Network) (cac.Controller, error) {
			return cac.NewGuardChannel(8)
		},
	}
	for name, factory := range factories {
		factory := factory
		t.Run(name, func(t *testing.T) {
			cfg := BatchAdmissionConfig{
				NewController: factory,
				ActiveCalls:   60,
				Requests:      200,
				Seed:          3,
			}
			native, err := RunBatchAdmission(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.NewController = func(net *cell.Network) (cac.Controller, error) {
				inner, err := factory(net)
				if err != nil {
					return nil, err
				}
				return sequentialOnly{inner: inner}, nil
			}
			sequential, err := RunBatchAdmission(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if native.PreAdmitted != sequential.PreAdmitted {
				t.Fatalf("snapshots diverged: %d vs %d pre-admitted", native.PreAdmitted, sequential.PreAdmitted)
			}
			if native.Requested != sequential.Requested || native.Requested != 200 {
				t.Fatalf("requested %d native, %d sequential, want 200", native.Requested, sequential.Requested)
			}
			for i := range native.Decisions {
				if native.Decisions[i] != sequential.Decisions[i] {
					t.Fatalf("request %d: native %v, sequential %v", i, native.Decisions[i], sequential.Decisions[i])
				}
			}
			if native.Accepted != sequential.Accepted {
				t.Fatalf("accepted %d native, %d sequential", native.Accepted, sequential.Accepted)
			}
			if native.Accepted == 0 || native.Accepted == native.Requested {
				t.Fatalf("degenerate sweep: %d/%d accepted", native.Accepted, native.Requested)
			}
		})
	}
}

// TestBatchAdmissionLoadsSnapshot asserts the pre-admission pass
// populates both the stations and a tracking controller.
func TestBatchAdmissionLoadsSnapshot(t *testing.T) {
	var captured *scc.Ledger
	res, err := RunBatchAdmission(BatchAdmissionConfig{
		NewController: func(net *cell.Network) (cac.Controller, error) {
			l, err := scc.NewLedger(scc.Config{Network: net})
			captured = l
			return l, err
		},
		ActiveCalls: 30,
		Requests:    50,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PreAdmitted == 0 {
		t.Fatal("no snapshot calls loaded")
	}
	if captured.ActiveCalls() != res.PreAdmitted {
		t.Fatalf("ledger tracks %d calls, snapshot loaded %d", captured.ActiveCalls(), res.PreAdmitted)
	}
	if res.ControllerName != "scc-ledger" {
		t.Fatalf("ControllerName = %q", res.ControllerName)
	}
	if got := res.AcceptedPct(); got < 0 || got > 100 {
		t.Fatalf("AcceptedPct = %v", got)
	}
}

// TestBatchAdmissionValidation covers the config error paths.
func TestBatchAdmissionValidation(t *testing.T) {
	if _, err := RunBatchAdmission(BatchAdmissionConfig{Requests: 10}); err == nil {
		t.Fatal("missing factory should error")
	}
	if _, err := RunBatchAdmission(BatchAdmissionConfig{NewController: FACSFactory()}); err == nil {
		t.Fatal("zero requests should error")
	}
	if _, err := RunBatchAdmission(BatchAdmissionConfig{
		NewController: FACSFactory(), Requests: 1, ActiveCalls: -1,
	}); err == nil {
		t.Fatal("negative active calls should error")
	}
}

// TestCompiledBatchAdmission sweeps the shared compiled FACS through
// the batch driver, exercising its station-occupancy caching across a
// multi-station request stream.
func TestCompiledBatchAdmission(t *testing.T) {
	res, err := RunBatchAdmission(BatchAdmissionConfig{
		NewController: CompiledFACSFactory(),
		ActiveCalls:   40,
		Requests:      150,
		Seed:          5,
	})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := RunBatchAdmission(BatchAdmissionConfig{
		NewController: func(*cell.Network) (cac.Controller, error) { return facs.New() },
		ActiveCalls:   40,
		Requests:      150,
		Seed:          5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Decisions {
		if res.Decisions[i] != exact.Decisions[i] {
			t.Fatalf("request %d: compiled %v, exact %v", i, res.Decisions[i], exact.Decisions[i])
		}
	}
}
