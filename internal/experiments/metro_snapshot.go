package experiments

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"facs/internal/cac"
	"facs/internal/snap"
	"facs/internal/traffic"
)

// MetroSnapshotFile is the file name RunMetropolis writes into
// MetropolisConfig.SnapshotDir.
const MetroSnapshotFile = "metropolis.snap"

// snapshotConfigHash fingerprints every configuration field that shapes
// the workload or the decision stream. A snapshot restores only into a
// run whose hash matches, except Waves: the remaining-wave budget is
// the one knob a resumed run may legitimately change (resume-and-extend
// is the crash-recovery pattern itself).
func (r *metroRun) snapshotConfigHash() uint64 {
	cfg := r.cfg
	return snap.NewHasher().
		Str("metro-run").
		Int(int(cfg.Mode)).
		Int(cfg.Shards).
		Int(int(cfg.Partition)).
		Int(cfg.RebalanceEveryTicks).
		Int(cfg.Rebalance.MaxMoves).
		F64(cfg.Rebalance.Tolerance).
		Bool(cfg.DisableInterestScope).
		Int(cfg.Rings).
		F64(cfg.CellRadiusM).
		Int(cfg.CapacityBU).
		Int(cfg.TargetCalls).
		Int(cfg.WavesPerDay).
		F64(cfg.StartHour).
		Int(cfg.Hotspots).
		F64(cfg.HotspotSigmaCells).
		F64(cfg.RushBias).
		F64(cfg.Mix.Text).
		F64(cfg.Mix.Voice).
		F64(cfg.Mix.Video).
		F64(cfg.SpeedKmh.Min).
		F64(cfg.SpeedKmh.Max).
		Int(cfg.HoldWavesMin).
		Int(cfg.HoldWavesMax).
		Int(cfg.HandoffEveryWaves).
		F64(cfg.HandoffFraction).
		Int(cfg.TickEveryWaves).
		F64(cfg.WaveIntervalSec).
		Int(cfg.MaxBatch).
		I64(cfg.Seed).
		Sum()
}

// snapshotTo captures the run's complete replay state at a wave
// boundary: the wave cursor, the active-call ledger, the decision
// digest, both RNG streams' positions (as draw counts — see
// sim.CountedSource) and the engine's state. Restoring the blob into a
// fresh identically-configured run and replaying the remaining waves
// reproduces the uninterrupted run's outcomes byte for byte.
func (r *metroRun) snapshotTo(w io.Writer) error {
	e := snap.NewEncoder(w, "metro-run", r.snapshotConfigHash())

	e.Int(r.wave)
	e.Int(r.nextID)
	e.Int(r.result.Requested)
	e.Int(r.result.Accepted)
	e.Int(r.result.Committed)
	e.Int(r.result.Released)
	e.Int(r.result.Handoffs)
	e.Int(r.result.HandoffDropped)
	e.Int(r.result.CrossShard)
	e.Int(r.result.PeakConcurrent)
	e.Int(r.result.Waves)
	e.Int(r.result.Snapshots)
	e.U64(uint64(r.hash))

	e.U32(uint32(r.ledger.len()))
	for i := 0; i < r.ledger.len(); i++ {
		e.Int(int(r.ledger.id[i]))
		e.Int(int(r.ledger.class[i]))
		e.Int(int(r.ledger.bu[i]))
		e.Int(int(r.ledger.station[i]))
		e.Int(int(r.ledger.release[i]))
	}

	e.U64(r.callSrc.Draws())
	e.U64(r.handoffSrc.Draws())

	switch eng := r.engine.(type) {
	case *shardMetroEngine:
		e.Bool(true)
		var buf bytes.Buffer
		if err := eng.engine.SnapshotTo(&buf); err != nil {
			return err
		}
		e.Blob(buf.Bytes())
	case *inlineMetroEngine:
		e.Bool(false)
		var buf bytes.Buffer
		e.U32(uint32(len(r.workload.stations)))
		for _, bs := range r.workload.stations {
			buf.Reset()
			if err := bs.SnapshotTo(&buf); err != nil {
				return err
			}
			e.Blob(buf.Bytes())
		}
		sn, ok := eng.ctrl.(cac.Snapshotter)
		e.Bool(ok)
		if ok {
			buf.Reset()
			if err := sn.SnapshotTo(&buf); err != nil {
				return err
			}
			e.Blob(buf.Bytes())
		}
	default:
		return fmt.Errorf("experiments: engine %T cannot snapshot", r.engine)
	}
	return e.Close()
}

// restoreFrom installs a snapshot written by snapshotTo into a freshly
// constructed run (wave 0, untouched RNG streams). The envelope is
// fully decoded and validated before any state changes; the RNG streams
// fast-forward to their recorded positions, so every subsequent draw
// matches the draw the captured run would have made.
func (r *metroRun) restoreFrom(rd io.Reader) error {
	d, err := snap.NewDecoder(rd, "metro-run", r.snapshotConfigHash())
	if err != nil {
		return err
	}

	wave := d.Int()
	nextID := d.Int()
	counters := [10]int{}
	for i := range counters {
		counters[i] = d.Int()
	}
	digest := d.U64()
	if d.Err() == nil {
		if wave < 0 {
			d.Fail("negative wave cursor %d", wave)
		}
		if nextID < 1 {
			d.Fail("next call ID %d, want >= 1", nextID)
		}
		for i, c := range counters {
			if c < 0 {
				d.Fail("negative result counter %d at %d", c, i)
			}
		}
	}

	nCalls := int(d.U32())
	// One ledger entry costs 5 x 8 payload bytes.
	if d.Err() == nil && nCalls*40 > d.Len() {
		d.Fail("%d active calls declared, %d payload bytes left", nCalls, d.Len())
	}
	if err := d.Err(); err != nil {
		return err
	}
	var led metroLedger
	for i := 0; i < nCalls; i++ {
		id := d.Int()
		class := traffic.Class(d.Int())
		bu := d.Int()
		station := d.Int()
		release := d.Int()
		if d.Err() != nil {
			break
		}
		if !class.Valid() {
			d.Fail("call %d has invalid class %d", id, int(class))
		}
		if bu <= 0 || bu > 127 {
			d.Fail("call %d has bandwidth %d outside (0, 127]", id, bu)
		}
		if station < 0 || station >= len(r.workload.stations) {
			d.Fail("call %d at station %d of %d", id, station, len(r.workload.stations))
		}
		if release < 0 {
			d.Fail("call %d has negative release wave %d", id, release)
		}
		led.push(id, class, bu, station, release)
	}

	callDraws := d.U64()
	handoffDraws := d.U64()

	sharded := d.Bool()
	var engineBlob []byte
	var stationBlobs [][]byte
	var ctrlBlob []byte
	hasCtrl := false
	if sharded {
		engineBlob = d.Blob()
		if _, ok := r.engine.(*shardMetroEngine); d.Err() == nil && !ok {
			return snap.ErrSnapshotStale
		}
	} else {
		nStations := int(d.U32())
		if d.Err() == nil && nStations != len(r.workload.stations) {
			d.Fail("snapshot carries %d stations, want %d", nStations, len(r.workload.stations))
		}
		if err := d.Err(); err != nil {
			return err
		}
		stationBlobs = make([][]byte, nStations)
		for i := range stationBlobs {
			stationBlobs[i] = d.Blob()
		}
		hasCtrl = d.Bool()
		if hasCtrl {
			ctrlBlob = d.Blob()
		}
		if _, ok := r.engine.(*inlineMetroEngine); d.Err() == nil && !ok {
			return snap.ErrSnapshotStale
		}
	}
	if err := d.Close(); err != nil {
		return err
	}

	// Envelope validated: restore the engine first (its nested envelope
	// still validates itself), then install the driver state.
	switch eng := r.engine.(type) {
	case *shardMetroEngine:
		if err := eng.engine.RestoreFrom(bytes.NewReader(engineBlob)); err != nil {
			return err
		}
	case *inlineMetroEngine:
		for i, bs := range r.workload.stations {
			if err := bs.RestoreFrom(bytes.NewReader(stationBlobs[i])); err != nil {
				return err
			}
		}
		sn, ok := eng.ctrl.(cac.Snapshotter)
		if ok != hasCtrl {
			return snap.ErrSnapshotStale
		}
		if hasCtrl {
			if err := sn.RestoreFrom(bytes.NewReader(ctrlBlob)); err != nil {
				return err
			}
		}
	}

	r.wave = wave
	r.nextID = nextID
	r.result.Requested = counters[0]
	r.result.Accepted = counters[1]
	r.result.Committed = counters[2]
	r.result.Released = counters[3]
	r.result.Handoffs = counters[4]
	r.result.HandoffDropped = counters[5]
	r.result.CrossShard = counters[6]
	r.result.PeakConcurrent = counters[7]
	r.result.Waves = counters[8]
	r.result.Snapshots = counters[9]
	r.hash = fnv1a(digest)
	r.ledger = led
	if r.callSrc.Draws() > callDraws || r.handoffSrc.Draws() > handoffDraws {
		return fmt.Errorf("experiments: restore into a run whose RNG streams already advanced past the snapshot")
	}
	r.callSrc.Skip(callDraws - r.callSrc.Draws())
	r.handoffSrc.Skip(handoffDraws - r.handoffSrc.Draws())
	return nil
}

// writeSnapshot atomically writes the run's snapshot file into
// SnapshotDir and counts it. It runs strictly between waves, so its
// allocations never touch the wave loop's zero-allocation budget.
func (r *metroRun) writeSnapshot() error {
	path := filepath.Join(r.cfg.SnapshotDir, MetroSnapshotFile)
	if _, err := snap.WriteFileAtomic(path, r.snapshotTo); err != nil {
		return fmt.Errorf("experiments: writing snapshot: %w", err)
	}
	r.result.Snapshots++
	return nil
}

// restoreFromFile warm-starts the run from a snapshot file.
func (r *metroRun) restoreFromFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("experiments: opening snapshot: %w", err)
	}
	defer f.Close()
	if err := r.restoreFrom(f); err != nil {
		return fmt.Errorf("experiments: restoring %s: %w", path, err)
	}
	return nil
}
