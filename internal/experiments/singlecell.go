package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"facs/internal/cac"
	"facs/internal/cell"
	ifacs "facs/internal/facs"
	"facs/internal/geo"
	"facs/internal/gps"
	"facs/internal/metrics"
	"facs/internal/mobility"
	"facs/internal/sim"
	"facs/internal/traffic"
)

// Span is a closed interval used to sample per-user parameters uniformly.
// Min == Max pins the parameter to a constant.
type Span struct {
	Min float64
	Max float64
}

// Pin returns a degenerate span holding exactly v.
func Pin(v float64) Span { return Span{Min: v, Max: v} }

// Sample draws from the span.
func (s Span) Sample(rng interface{ Float64() float64 }) float64 {
	if s.Min == s.Max {
		return s.Min
	}
	lo, hi := s.Min, s.Max
	if lo > hi {
		lo, hi = hi, lo
	}
	return lo + rng.Float64()*(hi-lo)
}

// Validate checks the span for NaNs.
func (s Span) Validate() error {
	if math.IsNaN(s.Min) || math.IsNaN(s.Max) {
		return fmt.Errorf("experiments: span bounds must not be NaN")
	}
	return nil
}

// SingleCellConfig parameterises the paper's single-base-station scenario
// used by Figs. 7, 8 and 9: one 40 BU cell, N requesting connections
// arriving as a Poisson stream over a window, each belonging to a distinct
// user whose kinematics are sampled from the configured spans and observed
// through the GPS substrate.
type SingleCellConfig struct {
	// Controller renders the admission decisions. Required.
	Controller cac.Controller
	// NumRequests is the paper's x-axis: the number of requesting
	// connections.
	NumRequests int
	// WindowSec is the arrival window; the Poisson arrival rate is
	// NumRequests/WindowSec. Default 2000 s.
	WindowSec float64
	// MeanHoldingSec is the exponential mean call duration. Default 120 s.
	MeanHoldingSec float64
	// Mix is the class mix. Default 60/30/10 text/voice/video.
	Mix traffic.Mix
	// SpeedKmh samples each user's speed. Default Pin(30).
	SpeedKmh Span
	// AngleOffsetDeg samples the user's heading relative to the bearing
	// towards the base station: 0 means heading straight at it.
	// Default Pin(0).
	AngleOffsetDeg Span
	// DistanceKm samples the user's distance from the base station.
	// Default Span{0.5, 9.5}.
	DistanceKm Span
	// ObserveSteps is the number of 1 Hz GPS fixes collected (while the
	// user moves under the turning-walk model) before the admission
	// decision. Default 10.
	ObserveSteps int
	// GPSNoiseM is the per-axis GPS error. Default 5 m; negative
	// disables noise.
	GPSNoiseM float64
	// TurnSigmaDeg / RefSpeedKmh parameterise the speed-dependent
	// turning walk (see mobility.TurningConfig). Defaults 12 / 15.
	TurnSigmaDeg float64
	RefSpeedKmh  float64
	// CapacityBU is the station bandwidth. Default 40.
	CapacityBU int
	// QueueTextRequests enables the queueing extension motivated by the
	// paper's introduction ("data traffic is queue-able and a certain
	// amount of delay can be acceptable"): a text request whose soft
	// decision grade is exactly NRNA (not reject, not accept) is held in
	// a FIFO queue and retried whenever bandwidth is released, up to
	// MaxQueueWaitSec. Requires a controller that exposes decision
	// grades (FACS); other controllers silently ignore the option.
	QueueTextRequests bool
	// MaxQueueWaitSec bounds the queueing delay. Default 30 s.
	MaxQueueWaitSec float64
	// Seed drives all randomness.
	Seed int64
}

func (c SingleCellConfig) withDefaults() SingleCellConfig {
	if c.WindowSec == 0 {
		c.WindowSec = 2000
	}
	if c.MeanHoldingSec == 0 {
		c.MeanHoldingSec = 120
	}
	if (c.Mix == traffic.Mix{}) {
		c.Mix = traffic.DefaultMix()
	}
	if (c.SpeedKmh == Span{}) {
		c.SpeedKmh = Pin(30)
	}
	if (c.DistanceKm == Span{}) {
		c.DistanceKm = Span{Min: 0.5, Max: 9.5}
	}
	if c.ObserveSteps == 0 {
		c.ObserveSteps = 10
	}
	if c.GPSNoiseM == 0 {
		c.GPSNoiseM = 5
	}
	if c.TurnSigmaDeg == 0 {
		c.TurnSigmaDeg = 12
	}
	if c.RefSpeedKmh == 0 {
		c.RefSpeedKmh = 15
	}
	if c.CapacityBU == 0 {
		c.CapacityBU = cell.DefaultCapacityBU
	}
	if c.MaxQueueWaitSec == 0 {
		c.MaxQueueWaitSec = 30
	}
	return c
}

// Validate checks the configuration.
func (c SingleCellConfig) Validate() error {
	if c.Controller == nil {
		return fmt.Errorf("experiments: single-cell config needs a controller")
	}
	if c.NumRequests <= 0 {
		return fmt.Errorf("experiments: NumRequests must be > 0, got %d", c.NumRequests)
	}
	if !(c.WindowSec > 0) {
		return fmt.Errorf("experiments: WindowSec must be > 0, got %v", c.WindowSec)
	}
	if !(c.MeanHoldingSec > 0) {
		return fmt.Errorf("experiments: MeanHoldingSec must be > 0, got %v", c.MeanHoldingSec)
	}
	for _, s := range []Span{c.SpeedKmh, c.AngleOffsetDeg, c.DistanceKm} {
		if err := s.Validate(); err != nil {
			return err
		}
	}
	if c.ObserveSteps < 2 {
		return fmt.Errorf("experiments: ObserveSteps must be >= 2, got %d", c.ObserveSteps)
	}
	if c.CapacityBU <= 0 {
		return fmt.Errorf("experiments: CapacityBU must be > 0, got %d", c.CapacityBU)
	}
	if !(c.MaxQueueWaitSec > 0) {
		return fmt.Errorf("experiments: MaxQueueWaitSec must be > 0, got %v", c.MaxQueueWaitSec)
	}
	return c.Mix.Validate()
}

// SingleCellResult aggregates one single-cell run.
type SingleCellResult struct {
	// Requested and Accepted count connection requests.
	Requested int
	Accepted  int
	// ByClass splits the acceptance ratio per service class.
	ByClass map[traffic.Class]*metrics.Ratio
	// Occupancy summarises the station occupancy (in BU) sampled at
	// every arrival.
	Occupancy metrics.Summary
	// MeanCv summarises the FLC1-visible prediction inputs actually
	// measured (only meaningful for controllers that use them).
	MeanObservedAngleDeg metrics.Summary
	MeanObservedSpeedKmh metrics.Summary
	// Queueing-extension outcomes (zero unless QueueTextRequests).
	// Queued counts text requests held in the NRNA queue; QueuedAccepted
	// counts those eventually admitted; QueueWait summarises the waiting
	// time of admitted queued requests in seconds.
	Queued         int
	QueuedAccepted int
	QueueWait      metrics.Summary
}

// AcceptedPct returns the paper's y-axis: 100 * accepted / requested.
func (r SingleCellResult) AcceptedPct() float64 {
	if r.Requested == 0 {
		return 0
	}
	return 100 * float64(r.Accepted) / float64(r.Requested)
}

// RunSingleCell executes the single-cell scenario and returns aggregate
// acceptance statistics.
func RunSingleCell(cfg SingleCellConfig) (SingleCellResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return SingleCellResult{}, err
	}
	bs, err := cell.NewBaseStation(geo.Hex{}, geo.Point{}, cfg.CapacityBU)
	if err != nil {
		return SingleCellResult{}, err
	}
	gen, err := traffic.NewGenerator(traffic.GeneratorConfig{
		Mix:              cfg.Mix,
		MeanInterarrival: cfg.WindowSec / float64(cfg.NumRequests),
		MeanHolding:      cfg.MeanHoldingSec,
	}, sim.NewStream(cfg.Seed, "traffic"))
	if err != nil {
		return SingleCellResult{}, err
	}
	run := &singleCellRun{
		cfg:     cfg,
		bs:      bs,
		userRNG: sim.NewStream(cfg.Seed, "users"),
		gpsRNG:  sim.NewStream(cfg.Seed, "gps"),
		result: SingleCellResult{
			ByClass: map[traffic.Class]*metrics.Ratio{
				traffic.Text:  {},
				traffic.Voice: {},
				traffic.Video: {},
			},
		},
	}
	run.observer, _ = cfg.Controller.(cac.Observer)
	if cfg.QueueTextRequests {
		run.grader, _ = cfg.Controller.(grader)
	}
	sched := sim.NewScheduler()
	for _, req := range gen.Take(cfg.NumRequests) {
		req := req
		if _, err := sched.At(req.ArrivalTime, func(s *sim.Scheduler) {
			run.arrive(s, req)
		}); err != nil {
			return SingleCellResult{}, err
		}
	}
	sched.Run(0)
	// Requests still queued at the end of the run were never admitted.
	for _, q := range run.queue {
		run.result.ByClass[q.class].Observe(false)
	}
	if run.err != nil {
		return SingleCellResult{}, run.err
	}
	return run.result, nil
}

// grader is the optional controller capability the queueing extension
// needs: access to the soft decision grade (FACS exposes it through
// Evaluate).
type grader interface {
	Evaluate(obs gps.Observation, requestBU, usedBU int, handoff bool) (ifacs.Evaluation, error)
}

// queuedRequest is one text request waiting in the NRNA queue.
type queuedRequest struct {
	id         int
	class      traffic.Class
	bu         int
	obs        gps.Observation
	est        gps.Estimate
	holding    float64
	enqueuedAt float64
	deadline   float64
}

type singleCellRun struct {
	cfg      SingleCellConfig
	bs       *cell.BaseStation
	userRNG  *rand.Rand
	gpsRNG   *rand.Rand
	observer cac.Observer
	grader   grader
	queue    []queuedRequest
	result   SingleCellResult
	err      error
	// reqScratch routes arrival decisions through the batch pipeline
	// (cac.DecideAll) without a per-decision allocation; drainQueue
	// builds real multi-request batches.
	reqScratch [1]cac.Request
}

// decide renders one admission decision through the batch pipeline.
func (r *singleCellRun) decide(req cac.Request) (cac.Decision, error) {
	return cac.DecideOne(r.cfg.Controller, &r.reqScratch, req)
}

// arrive handles one connection request.
func (r *singleCellRun) arrive(s *sim.Scheduler, req traffic.Request) {
	if r.err != nil {
		return
	}
	obs, est, err := observeUser(r.cfg, r.userRNG, r.gpsRNG)
	if err != nil {
		r.err = err
		return
	}
	r.result.Occupancy.Add(float64(r.bs.Used()))
	r.result.MeanObservedAngleDeg.Add(math.Abs(obs.AngleDeg))
	r.result.MeanObservedSpeedKmh.Add(obs.SpeedKmh)
	cacReq := cac.Request{
		Call: cell.Call{
			ID:         req.ID,
			Class:      req.Class,
			BU:         req.BU,
			AdmittedAt: s.Now(),
		},
		Station: r.bs,
		Obs:     obs,
		Est:     est,
		Now:     s.Now(),
	}
	decision, err := r.decide(cacReq)
	if err != nil {
		r.err = err
		return
	}
	r.result.Requested++
	if decision.Accepted() {
		r.result.ByClass[req.Class].Observe(true)
		r.admit(s, cacReq, req.HoldingTime)
		return
	}
	// Queueing extension: hold NRNA text requests instead of rejecting.
	if r.grader != nil && req.Class == traffic.Text {
		ev, err := r.grader.Evaluate(obs, req.BU, r.bs.Used(), false)
		if err != nil {
			r.err = err
			return
		}
		if ev.Grade == ifacs.GradeNRNA {
			r.queue = append(r.queue, queuedRequest{
				id:         req.ID,
				class:      req.Class,
				bu:         req.BU,
				obs:        obs,
				est:        est,
				holding:    req.HoldingTime,
				enqueuedAt: s.Now(),
				deadline:   s.Now() + r.cfg.MaxQueueWaitSec,
			})
			r.result.Queued++
			return // outcome decided later
		}
	}
	r.result.ByClass[req.Class].Observe(false)
}

// admit allocates the call and schedules its release.
func (r *singleCellRun) admit(s *sim.Scheduler, cacReq cac.Request, holding float64) {
	if err := r.bs.Admit(cacReq.Call); err != nil {
		r.err = fmt.Errorf("experiments: controller accepted an unfittable call: %w", err)
		return
	}
	r.result.Accepted++
	if r.observer != nil {
		r.observer.OnAdmit(cacReq)
	}
	callID := cacReq.Call.ID
	if _, err := s.After(holding, func(s *sim.Scheduler) {
		if _, err := r.bs.Release(callID); err != nil {
			r.err = err
			return
		}
		if r.observer != nil {
			r.observer.OnRelease(callID, r.bs, s.Now())
		}
		r.drainQueue(s)
	}); err != nil {
		r.err = err
	}
}

// drainQueue retries queued text requests after bandwidth was released.
// The still-live queue is decided in one pass through the batch
// pipeline: station state only changes on an accept, so every batched
// decision up to and including the first accept coincides with the
// sequential trace and batch-capable controllers amortise that whole
// prefix. In the common all-reject drain the single batch is the
// entire cost; after the first accept (which changes the state and
// invalidates the remaining batched answers) the tail is decided
// sequentially, exactly like the pre-batch loop, keeping the total
// decision count linear in the queue length.
func (r *singleCellRun) drainQueue(s *sim.Scheduler) {
	if r.err != nil || len(r.queue) == 0 {
		return
	}
	live := make([]queuedRequest, 0, len(r.queue))
	for _, q := range r.queue {
		if s.Now() > q.deadline {
			r.result.ByClass[q.class].Observe(false)
			continue
		}
		live = append(live, q)
	}
	batch := make([]cac.Request, len(live))
	for i, q := range live {
		batch[i] = cac.Request{
			Call: cell.Call{
				ID:         q.id,
				Class:      q.class,
				BU:         q.bu,
				AdmittedAt: s.Now(),
			},
			Station: r.bs,
			Obs:     q.obs,
			Est:     q.est,
			Now:     s.Now(),
		}
	}
	decisions, err := cac.DecideAll(r.cfg.Controller, batch)
	if err != nil {
		r.err = err
		r.queue = live
		return
	}
	var remaining []queuedRequest
	accepts := 0
	for i, q := range live {
		if r.err != nil {
			remaining = append(remaining, q)
			continue
		}
		decision := decisions[i]
		if accepts > 0 {
			// Station state changed since the batch was decided; the
			// remaining answers are stale, so re-decide one by one.
			decision, err = r.decide(batch[i])
			if err != nil {
				r.err = err
				remaining = append(remaining, q)
				continue
			}
		}
		if !decision.Accepted() {
			remaining = append(remaining, q)
			continue
		}
		accepts++
		r.result.ByClass[q.class].Observe(true)
		r.result.QueuedAccepted++
		r.result.QueueWait.Add(s.Now() - q.enqueuedAt)
		r.admit(s, batch[i], q.holding)
	}
	r.queue = remaining
}

// observeUser samples one user's kinematics, runs the turning-walk /
// GPS pipeline for the configured observation window, and returns the
// admission-time observation relative to the base station at the origin.
func observeUser(cfg SingleCellConfig, userRNG, gpsRNG *rand.Rand) (gps.Observation, gps.Estimate, error) {
	distanceM := geo.KmToM(cfg.DistanceKm.Sample(userRNG))
	bearingFromBS := sim.Uniform(userRNG, -180, 180)
	pos := geo.Move(geo.Point{}, bearingFromBS, distanceM)
	headingToBS := geo.BearingDeg(pos, geo.Point{})
	heading := geo.NormalizeDeg(headingToBS + cfg.AngleOffsetDeg.Sample(userRNG))
	speed := cfg.SpeedKmh.Sample(userRNG)

	walk, err := mobility.NewTurningWalk(
		mobility.State{Pos: pos, SpeedKmh: speed, HeadingDeg: heading},
		mobility.TurningConfig{TurnSigmaDeg: cfg.TurnSigmaDeg, RefSpeedKmh: cfg.RefSpeedKmh},
		userRNG,
	)
	if err != nil {
		return gps.Observation{}, gps.Estimate{}, err
	}
	receiver, err := gps.NewReceiver(walk, gps.ReceiverConfig{
		SampleInterval: 1,
		NoiseSigmaM:    cfg.GPSNoiseM,
	}, gpsRNG)
	if err != nil {
		return gps.Observation{}, gps.Estimate{}, err
	}
	estimator := gps.NewEstimator(5)
	for _, fix := range receiver.Track(cfg.ObserveSteps) {
		estimator.AddFix(fix)
	}
	est, ok := estimator.Estimate()
	if !ok {
		return gps.Observation{}, gps.Estimate{}, fmt.Errorf("experiments: estimator not ready after %d fixes", cfg.ObserveSteps)
	}
	return gps.Observe(est, geo.Point{}), est, nil
}
