package experiments

import (
	"fmt"

	"facs/internal/cac"
	"facs/internal/cell"
	"facs/internal/facs"
	"facs/internal/fuzzy"
	"facs/internal/metrics"
	"facs/internal/scc"
	"facs/internal/traffic"
)

// AblationDefuzzifier (A1) compares the defuzzification method on the
// single-cell scenario: centroid (paper default), weighted average
// (real-time fast path), bisector and mean-of-maxima.
func AblationDefuzzifier(fc FigureConfig) (Figure, error) {
	fc = fc.withDefaults()
	if err := fc.Validate(); err != nil {
		return Figure{}, err
	}
	fig := Figure{
		ID:     "ablation-defuzzifier",
		Title:  "A1: defuzzifier choice vs acceptance (single cell, 30 km/h)",
		XLabel: "number of requesting connections",
		YLabel: "percentage of accepted calls",
	}
	methods := []struct {
		label string
		mk    func() fuzzy.Defuzzifier
	}{
		{"centroid", func() fuzzy.Defuzzifier { return fuzzy.Centroid{} }},
		{"weighted-average", func() fuzzy.Defuzzifier { return fuzzy.NewWeightedAverage() }},
		{"bisector", func() fuzzy.Defuzzifier { return fuzzy.Bisector{} }},
		{"mean-of-maxima", func() fuzzy.Defuzzifier { return fuzzy.MeanOfMaxima{} }},
	}
	for _, m := range methods {
		m := m
		ctrl, err := facs.New(facs.WithDefuzzifier(m.mk))
		if err != nil {
			return Figure{}, err
		}
		s, err := singleCellCurve(fc, m.label, func(cfg *SingleCellConfig) {
			cfg.Controller = ctrl
		})
		if err != nil {
			return Figure{}, err
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// AblationThreshold (A2) sweeps the crisp accept threshold on the A/R
// axis: the decision boundary between the paper's soft grades.
func AblationThreshold(fc FigureConfig) (Figure, error) {
	fc = fc.withDefaults()
	if err := fc.Validate(); err != nil {
		return Figure{}, err
	}
	fig := Figure{
		ID:     "ablation-threshold",
		Title:  "A2: accept-threshold sweep (single cell, 30 km/h)",
		XLabel: "number of requesting connections",
		YLabel: "percentage of accepted calls",
	}
	for _, th := range []float64{-0.25, 0, 0.25, 0.5} {
		ctrl, err := facs.New(facs.WithAcceptThreshold(th))
		if err != nil {
			return Figure{}, err
		}
		s, err := singleCellCurve(fc, fmt.Sprintf("threshold=%+.2f", th), func(cfg *SingleCellConfig) {
			cfg.Controller = ctrl
		})
		if err != nil {
			return Figure{}, err
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// AblationSCC (A3) sweeps the SCC survivability threshold and horizon on
// the multi-cell scenario.
func AblationSCC(fc FigureConfig) (Figure, error) {
	fc = fc.withDefaults()
	if err := fc.Validate(); err != nil {
		return Figure{}, err
	}
	fig := Figure{
		ID:     "ablation-scc",
		Title:  "A3: SCC survivability threshold and horizon sweep (multi cell)",
		XLabel: "number of requesting connections",
		YLabel: "percentage of accepted calls",
	}
	variants := []struct {
		label     string
		threshold float64
		horizon   int
	}{
		{"tau=0.70,K=6", 0.70, 6},
		{"tau=0.85,K=6", 0.85, 6},
		{"tau=1.00,K=6", 1.00, 6},
		{"tau=0.85,K=2", 0.85, 2},
		{"tau=0.85,K=12", 0.85, 12},
	}
	for _, v := range variants {
		v := v
		factory := func(net *cell.Network) (cac.Controller, error) {
			return scc.New(scc.Config{
				Network:                net,
				Threshold:              v.threshold,
				Horizon:                v.horizon,
				Reservation:            scc.ReservationFull,
				RequireClusterCoverage: true,
			})
		}
		grid, err := multiCellCurve(fc, MultiCellConfig{NewController: factory})
		if err != nil {
			return Figure{}, err
		}
		series := metrics.Series{Label: v.label}
		for pi, n := range fc.LoadPoints {
			var acc float64
			for _, res := range grid[pi] {
				acc += res.AcceptedPct()
			}
			series.Append(float64(n), acc/float64(len(fc.Seeds)))
		}
		fig.Series = append(fig.Series, series)
	}
	return fig, nil
}

// AblationBaselines (A4) runs the classical CAC schemes of the paper's
// introduction on the Fig. 10 workload alongside FACS and SCC.
func AblationBaselines(fc FigureConfig) (Figure, error) {
	fc = fc.withDefaults()
	if err := fc.Validate(); err != nil {
		return Figure{}, err
	}
	fig := Figure{
		ID:     "ablation-baselines",
		Title:  "A4: classical baselines on the Fig. 10 workload",
		XLabel: "number of requesting connections",
		YLabel: "percentage of accepted calls",
	}
	schemes := []struct {
		label   string
		factory func(*cell.Network) (cac.Controller, error)
	}{
		{"FACS", FACSFactory()},
		{"SCC", SCCFactory()},
		{"complete-sharing", func(*cell.Network) (cac.Controller, error) {
			return cac.CompleteSharing{}, nil
		}},
		{"guard-channel(8)", func(*cell.Network) (cac.Controller, error) {
			return cac.NewGuardChannel(8)
		}},
		{"threshold(video<=10)", func(*cell.Network) (cac.Controller, error) {
			return cac.NewThresholdPolicy(map[traffic.Class]int{traffic.Video: 10})
		}},
	}
	for _, sc := range schemes {
		sc := sc
		grid, err := multiCellCurve(fc, MultiCellConfig{NewController: sc.factory})
		if err != nil {
			return Figure{}, err
		}
		series := metrics.Series{Label: sc.label}
		var dropSum float64
		var runs int
		for pi, n := range fc.LoadPoints {
			var acc float64
			for _, res := range grid[pi] {
				acc += res.AcceptedPct()
				dropSum += res.DropPct()
				runs++
			}
			series.Append(float64(n), acc/float64(len(fc.Seeds)))
		}
		fig.Series = append(fig.Series, series)
		fig.Notes = append(fig.Notes,
			fmt.Sprintf("%s: mean handoff drop %.2f%%", sc.label, dropSum/float64(runs)))
	}
	return fig, nil
}

// AblationGPSNoise (A5) measures the sensitivity of the fuzzy prediction
// stage to GPS error, on the walking-speed series where estimation is
// hardest.
func AblationGPSNoise(fc FigureConfig) (Figure, error) {
	fc = fc.withDefaults()
	if err := fc.Validate(); err != nil {
		return Figure{}, err
	}
	fig := Figure{
		ID:     "ablation-gps-noise",
		Title:  "A5: GPS noise sensitivity (single cell, 10 km/h users)",
		XLabel: "number of requesting connections",
		YLabel: "percentage of accepted calls",
	}
	for _, noise := range []float64{-1, 2, 5, 15, 30} {
		noise := noise
		label := fmt.Sprintf("sigma=%gm", noise)
		if noise < 0 {
			label = "no noise"
		}
		s, err := singleCellCurve(fc, label, func(cfg *SingleCellConfig) {
			cfg.SpeedKmh = Pin(10)
			cfg.GPSNoiseM = noise
		})
		if err != nil {
			return Figure{}, err
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// AllAblations runs every ablation study in order.
func AllAblations(fc FigureConfig) ([]Figure, error) {
	builders := []func(FigureConfig) (Figure, error){
		AblationDefuzzifier,
		AblationThreshold,
		AblationSCC,
		AblationBaselines,
		AblationGPSNoise,
		AblationHandoffPriority,
		AblationQueueing,
	}
	out := make([]Figure, 0, len(builders))
	for _, build := range builders {
		fig, err := build(fc)
		if err != nil {
			return nil, err
		}
		out = append(out, fig)
	}
	return out, nil
}

// AblationHandoffPriority (A6) implements the paper's stated future work:
// "we did not consider the priority of the ongoing calls and requesting
// connections". Handoffs are routed through the admission controller
// (HandoffControlled) and FACS is given an increasing handoff bias; the
// guard-channel baseline provides the classical reference point. The
// interesting output is the trade-off between new-call acceptance and the
// handoff drop rate, reported in the figure notes.
func AblationHandoffPriority(fc FigureConfig) (Figure, error) {
	fc = fc.withDefaults()
	if err := fc.Validate(); err != nil {
		return Figure{}, err
	}
	fig := Figure{
		ID:     "ablation-handoff-priority",
		Title:  "A6: handoff priority (future work) - acceptance and drops",
		XLabel: "number of requesting connections",
		YLabel: "percentage of accepted calls",
	}
	schemes := []struct {
		label   string
		factory func(*cell.Network) (cac.Controller, error)
	}{
		{"facs bias=0", func(*cell.Network) (cac.Controller, error) {
			return facs.New(facs.WithHandoffBias(0))
		}},
		{"facs bias=0.5", func(*cell.Network) (cac.Controller, error) {
			return facs.New(facs.WithHandoffBias(0.5))
		}},
		{"facs bias=1", func(*cell.Network) (cac.Controller, error) {
			return facs.New(facs.WithHandoffBias(1))
		}},
		{"guard-channel(8)", func(*cell.Network) (cac.Controller, error) {
			return cac.NewGuardChannel(8)
		}},
	}
	for _, sc := range schemes {
		sc := sc
		grid, err := multiCellCurve(fc, MultiCellConfig{
			NewController: sc.factory,
			WindowSec:     80, // heavier than Fig. 10 so drops occur
			HandoffPolicy: HandoffControlled,
		})
		if err != nil {
			return Figure{}, err
		}
		series := metrics.Series{Label: sc.label}
		var dropSum float64
		var runs int
		for pi, n := range fc.LoadPoints {
			var acc float64
			for _, res := range grid[pi] {
				acc += res.AcceptedPct()
				dropSum += res.DropPct()
				runs++
			}
			series.Append(float64(n), acc/float64(len(fc.Seeds)))
		}
		fig.Series = append(fig.Series, series)
		fig.Notes = append(fig.Notes,
			fmt.Sprintf("%s: mean handoff drop %.2f%%", sc.label, dropSum/float64(runs)))
	}
	return fig, nil
}

// AblationQueueing (A7) exercises the queueing extension motivated by the
// paper's introduction ("data traffic is queue-able and a certain amount
// of delay can be acceptable"): text requests graded NRNA wait for
// released bandwidth instead of being rejected outright.
func AblationQueueing(fc FigureConfig) (Figure, error) {
	fc = fc.withDefaults()
	if err := fc.Validate(); err != nil {
		return Figure{}, err
	}
	fig := Figure{
		ID:     "ablation-queueing",
		Title:  "A7: NRNA text queueing (single cell, 30 km/h)",
		XLabel: "number of requesting connections",
		YLabel: "percentage of accepted calls",
	}
	variants := []struct {
		label   string
		queue   bool
		waitSec float64
	}{
		{"no queue", false, 0},
		{"queue 15s", true, 15},
		{"queue 60s", true, 60},
	}
	ctrl, err := fc.facsController()
	if err != nil {
		return Figure{}, err
	}
	for _, v := range variants {
		v := v
		grid, err := replicate(fc, func(n int, seed int64) (SingleCellResult, error) {
			cfg := SingleCellConfig{
				Controller:        ctrl,
				NumRequests:       n,
				QueueTextRequests: v.queue,
				MaxQueueWaitSec:   v.waitSec,
				Seed:              seed,
			}
			if !v.queue {
				cfg.MaxQueueWaitSec = 0 // use the default; ignored
			}
			return RunSingleCell(cfg)
		})
		if err != nil {
			return Figure{}, err
		}
		series := metrics.Series{Label: v.label}
		var queued, queuedAccepted int
		var waitSum float64
		var waitRuns int
		for pi, n := range fc.LoadPoints {
			var acc float64
			for _, res := range grid[pi] {
				acc += res.AcceptedPct()
				queued += res.Queued
				queuedAccepted += res.QueuedAccepted
				if res.QueueWait.Count() > 0 {
					waitSum += res.QueueWait.Mean()
					waitRuns++
				}
			}
			series.Append(float64(n), acc/float64(len(fc.Seeds)))
		}
		fig.Series = append(fig.Series, series)
		note := fmt.Sprintf("%s: %d queued, %d admitted after waiting", v.label, queued, queuedAccepted)
		if waitRuns > 0 {
			note += fmt.Sprintf(", mean wait %.1fs", waitSum/float64(waitRuns))
		}
		fig.Notes = append(fig.Notes, note)
	}
	return fig, nil
}
