package experiments

import (
	"testing"

	"facs/internal/cac"
	"facs/internal/scc"
	"facs/internal/shard"
)

// elasticConfig is the sharded determinism workload with elastic
// rebalancing switched on: blocks partition (so the diurnal drift of
// the random workload actually skews shard loads), an epoch planned at
// every barrier tick, ticks every other wave.
func elasticConfig(factory func(shard.View) (cac.Controller, error)) ShardedConfig {
	return ShardedConfig{
		NewController:       factory,
		Rings:               2, // 19 cells
		Requests:            600,
		Wave:                48,
		MaxBatch:            16,
		HoldWaves:           3,
		HandoffEveryWaves:   2,
		TickEveryWaves:      2,
		Seed:                29,
		Partition:           shard.PartitionBlocks,
		RebalanceEveryTicks: 1,
		Rebalance:           shard.PlannerConfig{MaxMoves: 4, Tolerance: 0.01},
	}
}

// TestShardedRebalanceByteIdentity is the elastic-sharding acceptance
// suite: with rebalancing planned at every tick barrier, cell-local
// controllers must still produce decision and handoff streams
// byte-identical at shard counts 1/2/4/8 to the inline sequential
// replay — ownership moves, outcomes don't. The multi-shard runs must
// actually apply epochs (otherwise the identity is vacuous).
func TestShardedRebalanceByteIdentity(t *testing.T) {
	for _, tc := range []struct {
		name    string
		factory func(shard.View) (cac.Controller, error)
	}{
		{"guard", shardGuardFactory},
		{"facs", shardFACSFactory},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := elasticConfig(tc.factory)
			oracle := replaySharded(t, cfg)
			if oracle.Handoffs == 0 || oracle.Released == 0 || oracle.Accepted == 0 {
				t.Fatalf("degenerate workload: %+v", oracle)
			}
			results, err := RunShardedSweep(cfg, []int{1, 2, 4, 8})
			if err != nil {
				t.Fatal(err)
			}
			sawEpoch := false
			for _, res := range results {
				label := tc.name + "/shards-" + string(rune('0'+res.Shards))
				assertShardedEqual(t, res, oracle, label)
				if res.Shards == 1 {
					if res.Stats.Rebalances != 0 {
						t.Fatalf("%s: single shard has nothing to rebalance: %+v", label, res.Stats)
					}
					continue
				}
				if res.Stats.Rebalances > 0 {
					sawEpoch = true
					if res.Stats.Migrations == 0 || res.Stats.MigratedCalls == 0 {
						t.Fatalf("%s: epochs applied but nothing migrated: %+v", label, res.Stats)
					}
				}
			}
			if !sawEpoch {
				t.Fatal("no multi-shard run ever applied a rebalance epoch — identity held vacuously")
			}
		})
	}
}

// TestShardedSCCRebalanceByteIdentity extends the ghost-exchange
// golden workload with an epoch planned at every barrier: rebalancing
// an SCC shard migrates its ledger tracks and resets the exchange, so
// the post-epoch absolute re-export must restore the exact global
// demand view — tick-aligned decisions stay byte-identical at shard
// counts 1/2/4/8 to the single sequential ledger, epochs and all.
func TestShardedSCCRebalanceByteIdentity(t *testing.T) {
	cfg := tickAlignedConfig(scc.ReservationFull)
	cfg.Partition = shard.PartitionBlocks
	cfg.RebalanceEveryTicks = 1
	cfg.Rebalance = shard.PlannerConfig{MaxMoves: 4, Tolerance: 0.01}
	oracle := replaySharded(t, cfg)
	if oracle.Accepted == 0 || oracle.Accepted == oracle.Requested {
		t.Fatalf("degenerate workload: %+v", oracle)
	}
	results, err := RunShardedSweep(cfg, []int{1, 2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	sawEpoch := false
	for _, res := range results {
		label := "scc-rebalance/shards-" + string(rune('0'+res.Shards))
		assertShardedEqual(t, res, oracle, label)
		if res.Shards > 1 && res.Stats.Rebalances > 0 {
			sawEpoch = true
			if total := res.LedgerTotal(); total.MigratedOut == 0 || total.MigratedOut != total.MigratedIn {
				t.Fatalf("%s: ledger tracks unbalanced across migration: out=%d in=%d",
					label, total.MigratedOut, total.MigratedIn)
			}
		}
	}
	if !sawEpoch {
		t.Fatal("no multi-shard run ever applied a rebalance epoch — identity held vacuously")
	}
}

// TestMetropolisRebalanceIdentity pins the metropolis DecisionHash for
// cell-local controllers under elastic sharding: the diurnal hotspot
// workload rebalances hot cells between shards, yet every shard count
// reproduces the static batch baseline bit for bit.
func TestMetropolisRebalanceIdentity(t *testing.T) {
	base := metroTestConfig(shardGuardFactory)
	baseline, err := RunMetropolis(base)
	if err != nil {
		t.Fatal(err)
	}
	sawEpoch := false
	for _, shards := range []int{1, 2, 4, 8} {
		cfg := base
		cfg.Mode = MetroSharded
		cfg.Shards = shards
		cfg.Partition = shard.PartitionBlocks
		cfg.RebalanceEveryTicks = 1
		cfg.Rebalance = shard.PlannerConfig{MaxMoves: 4, Tolerance: 0.01}
		res, err := RunMetropolis(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sameMetroOutcome(t, "rebalance/shards-"+string(rune('0'+shards)), baseline, res)
		if shards > 1 && res.Rebalances > 0 {
			sawEpoch = true
			if res.Epoch != uint64(res.Rebalances) || res.MigratedCalls < 0 {
				t.Fatalf("shards-%d: inconsistent epoch accounting: %+v", shards, res)
			}
		}
	}
	if !sawEpoch {
		t.Fatal("no multi-shard metropolis run ever applied a rebalance epoch")
	}
}

// TestMetropolisInterestScopedReduction is the fan-out acceptance on
// the hotspot metropolis: ledgers declaring a bounded interest radius
// (slow traffic, wide cells) must fan strictly fewer ghost rows than
// the all-to-all baseline on a blocks partition, with the savings
// reported in the result — while a DisableInterestScope run of the
// same scenario fans the full baseline.
func TestMetropolisInterestScopedReduction(t *testing.T) {
	cfg := metroTestConfig(func(v shard.View) (cac.Controller, error) {
		return scc.NewLedger(scc.Config{
			Network:     v.Network(),
			Reservation: scc.ReservationFull,
			MaxSpeedKmh: 30,
		})
	})
	cfg.Mode = MetroSharded
	cfg.Shards = 4
	cfg.Partition = shard.PartitionBlocks
	cfg.CellRadiusM = 2000
	cfg.SpeedKmh = Span{Min: 5, Max: 30}
	cfg.RebalanceEveryTicks = 2

	scoped, err := RunMetropolis(cfg)
	if err != nil {
		t.Fatal(err)
	}
	unscopedCfg := cfg
	unscopedCfg.DisableInterestScope = true
	unscoped, err := RunMetropolis(unscopedCfg)
	if err != nil {
		t.Fatal(err)
	}

	if !scoped.InterestScoped || unscoped.InterestScoped {
		t.Fatalf("scoping flags wrong: scoped=%v unscoped=%v", scoped.InterestScoped, unscoped.InterestScoped)
	}
	if scoped.GhostRows == 0 {
		t.Fatalf("scoped exchange fanned nothing: %+v", scoped)
	}
	if scoped.GhostRows >= scoped.GhostRowsAllToAll {
		t.Fatalf("scoping saved nothing: %d fanned vs %d all-to-all", scoped.GhostRows, scoped.GhostRowsAllToAll)
	}
	if unscoped.GhostRows != unscoped.GhostRowsAllToAll {
		t.Fatalf("unscoped run should fan the full baseline: %d vs %d", unscoped.GhostRows, unscoped.GhostRowsAllToAll)
	}
	// The scoped run stays deterministic: a rerun reproduces outcomes
	// and fan-out counters exactly.
	again, err := RunMetropolis(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sameMetroOutcome(t, "scoped-rerun", scoped, again)
	if again.GhostRows != scoped.GhostRows || again.GhostRowsAllToAll != scoped.GhostRowsAllToAll {
		t.Fatalf("fan-out not reproducible: %d/%d then %d/%d",
			scoped.GhostRows, scoped.GhostRowsAllToAll, again.GhostRows, again.GhostRowsAllToAll)
	}
	t.Logf("hotspot metropolis ghost rows: %d scoped vs %d all-to-all (%.0f%% saved)",
		scoped.GhostRows, scoped.GhostRowsAllToAll,
		100*(1-float64(scoped.GhostRows)/float64(scoped.GhostRowsAllToAll)))
}
