package experiments

import (
	"strings"
	"testing"

	"facs/internal/cac"
	"facs/internal/cell"
	"facs/internal/facs"
)

// tinyFC keeps ablation runs fast: one light and one heavy load point,
// one seed.
func tinyFC() FigureConfig {
	return FigureConfig{LoadPoints: []int{20, 80}, Seeds: []int64{1}}
}

func TestAblationDefuzzifierStructure(t *testing.T) {
	fig, err := AblationDefuzzifier(tinyFC())
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "ablation-defuzzifier" {
		t.Fatalf("ID = %q", fig.ID)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("want 4 defuzzifier series, got %d", len(fig.Series))
	}
	labels := map[string]bool{}
	for _, s := range fig.Series {
		labels[s.Label] = true
		if s.Len() != 2 {
			t.Fatalf("series %q has %d points", s.Label, s.Len())
		}
	}
	for _, want := range []string{"centroid", "weighted-average", "bisector", "mean-of-maxima"} {
		if !labels[want] {
			t.Fatalf("missing series %q", want)
		}
	}
	// All methods must agree within a broad band: they defuzzify the
	// same rule activations.
	for _, s := range fig.Series {
		base := fig.Series[0]
		for i := range s.Y {
			if diff := s.Y[i] - base.Y[i]; diff > 25 || diff < -25 {
				t.Fatalf("defuzzifier %q diverges from centroid by %v points", s.Label, diff)
			}
		}
	}
}

func TestAblationThresholdMonotone(t *testing.T) {
	fig, err := AblationThreshold(tinyFC())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("want 4 threshold series, got %d", len(fig.Series))
	}
	// A stricter threshold never accepts more calls on the same workload.
	for i := 1; i < len(fig.Series); i++ {
		looser, stricter := fig.Series[i-1], fig.Series[i]
		for j := range stricter.Y {
			if stricter.Y[j] > looser.Y[j]+1e-9 {
				t.Fatalf("threshold %q accepts more than %q at point %d (%v > %v)",
					stricter.Label, looser.Label, j, stricter.Y[j], looser.Y[j])
			}
		}
	}
}

func TestAblationSCCStructure(t *testing.T) {
	fig, err := AblationSCC(FigureConfig{LoadPoints: []int{40}, Seeds: []int64{1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 5 {
		t.Fatalf("want 5 SCC variants, got %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		if !strings.Contains(s.Label, "tau=") {
			t.Fatalf("label %q missing tau", s.Label)
		}
	}
	// tau=1.00 reserves least, tau=0.70 most: acceptance ordered.
	y070, _ := fig.Series[0].YAt(40)
	y100, _ := fig.Series[2].YAt(40)
	if y070 > y100+1e-9 {
		t.Fatalf("tau=0.70 (%v) should not accept more than tau=1.00 (%v)", y070, y100)
	}
}

func TestAblationBaselinesStructure(t *testing.T) {
	fig, err := AblationBaselines(FigureConfig{LoadPoints: []int{60}, Seeds: []int64{1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 5 {
		t.Fatalf("want 5 schemes, got %d", len(fig.Series))
	}
	if len(fig.Notes) != 5 {
		t.Fatalf("want one note per scheme, got %d", len(fig.Notes))
	}
	byLabel := map[string]float64{}
	for _, s := range fig.Series {
		y, ok := s.YAt(60)
		if !ok {
			t.Fatalf("series %q missing point", s.Label)
		}
		byLabel[s.Label] = y
	}
	// Complete sharing is the upper bound on acceptance.
	cs := byLabel["complete-sharing"]
	for label, y := range byLabel {
		if y > cs+1e-9 {
			t.Fatalf("%s accepts more (%v) than complete sharing (%v)", label, y, cs)
		}
	}
	// FACS trades admissions for QoS under load, so it must sit at or
	// below the complete-sharing ceiling (strictly below at N=60 in
	// every calibrated run so far).
	if byLabel["FACS"] >= cs {
		t.Fatal("FACS should accept fewer calls than complete sharing at N=60")
	}
}

func TestAblationGPSNoiseStructure(t *testing.T) {
	fig, err := AblationGPSNoise(FigureConfig{LoadPoints: []int{80}, Seeds: []int64{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 5 {
		t.Fatalf("want 5 noise levels, got %d", len(fig.Series))
	}
	if fig.Series[0].Label != "no noise" {
		t.Fatalf("first series = %q, want no noise", fig.Series[0].Label)
	}
	// Heavy noise must not help walking users.
	clean, _ := fig.Series[0].YAt(80)
	noisy, _ := fig.Series[len(fig.Series)-1].YAt(80)
	if noisy > clean+5 {
		t.Fatalf("sigma=30m acceptance (%v) should not exceed noise-free (%v)", noisy, clean)
	}
}

func TestAllFiguresAndAblations(t *testing.T) {
	fc := FigureConfig{LoadPoints: []int{30}, Seeds: []int64{1}}
	figs, err := AllFigures(fc)
	if err != nil {
		t.Fatal(err)
	}
	wantIDs := []string{"fig7", "fig8", "fig9", "fig10"}
	if len(figs) != len(wantIDs) {
		t.Fatalf("AllFigures returned %d figures", len(figs))
	}
	for i, fig := range figs {
		if fig.ID != wantIDs[i] {
			t.Fatalf("figure %d = %q, want %q", i, fig.ID, wantIDs[i])
		}
	}
	abls, err := AllAblations(fc)
	if err != nil {
		t.Fatal(err)
	}
	if len(abls) != 7 {
		t.Fatalf("AllAblations returned %d, want 7 (A1..A7)", len(abls))
	}
	seen := map[string]bool{}
	for _, fig := range abls {
		if seen[fig.ID] {
			t.Fatalf("duplicate ablation ID %q", fig.ID)
		}
		seen[fig.ID] = true
	}
}

func TestAblationHandoffPriorityTradeoff(t *testing.T) {
	fig, err := AblationHandoffPriority(FigureConfig{LoadPoints: []int{100}, Seeds: []int64{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "ablation-handoff-priority" {
		t.Fatalf("ID = %q", fig.ID)
	}
	if len(fig.Series) != 4 || len(fig.Notes) != 4 {
		t.Fatalf("want 4 series and 4 notes, got %d/%d", len(fig.Series), len(fig.Notes))
	}
	// The headline of the future-work experiment: adding handoff bias
	// must not raise new-call acceptance (prioritised handoffs occupy
	// bandwidth new calls would have used).
	unbiased, _ := fig.Series[0].YAt(100)
	biased, _ := fig.Series[2].YAt(100)
	if biased > unbiased+1 {
		t.Fatalf("bias=1 acceptance (%v) should not exceed bias=0 (%v)", biased, unbiased)
	}
}

func TestHandoffPolicyStringAndValidation(t *testing.T) {
	if HandoffPhysical.String() != "physical" || HandoffControlled.String() != "controlled" {
		t.Fatal("stringer mismatch")
	}
	if !strings.Contains(HandoffPolicy(7).String(), "7") {
		t.Fatal("unknown policy should include value")
	}
	_, err := RunMultiCell(MultiCellConfig{
		NewController: FACSFactory(),
		NumRequests:   5,
		HandoffPolicy: HandoffPolicy(42),
	})
	if err == nil {
		t.Fatal("unknown handoff policy should be rejected")
	}
}

func TestControlledHandoffsReduceDropsWithBias(t *testing.T) {
	run := func(bias float64) MultiCellResult {
		res, err := RunMultiCell(MultiCellConfig{
			NewController: func(*cell.Network) (cac.Controller, error) {
				return facs.New(facs.WithHandoffBias(bias))
			},
			NumRequests:   100,
			WindowSec:     80,
			HandoffPolicy: HandoffControlled,
			Seed:          1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	unbiased := run(0)
	biased := run(1)
	if unbiased.HandoffDrops == 0 {
		t.Skip("workload produced no drops; nothing to compare")
	}
	if biased.DropPct() >= unbiased.DropPct() {
		t.Fatalf("handoff bias should reduce drops: %.2f%% vs %.2f%%",
			biased.DropPct(), unbiased.DropPct())
	}
}
