package experiments

import (
	"math"
	"testing"

	"facs/internal/cac"
	"facs/internal/facs"
	"facs/internal/sim"
	"facs/internal/traffic"
)

func TestSpan(t *testing.T) {
	rng := sim.NewRNG(1)
	pinned := Pin(7)
	for i := 0; i < 10; i++ {
		if got := pinned.Sample(rng); got != 7 {
			t.Fatalf("pinned sample = %v", got)
		}
	}
	span := Span{Min: 2, Max: 5}
	for i := 0; i < 1000; i++ {
		x := span.Sample(rng)
		if x < 2 || x >= 5 {
			t.Fatalf("sample out of range: %v", x)
		}
	}
	inverted := Span{Min: 5, Max: 2}
	for i := 0; i < 100; i++ {
		x := inverted.Sample(rng)
		if x < 2 || x >= 5 {
			t.Fatalf("inverted sample out of range: %v", x)
		}
	}
	if err := (Span{Min: math.NaN()}).Validate(); err == nil {
		t.Fatal("NaN span should be invalid")
	}
	if err := Pin(3).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleCellValidation(t *testing.T) {
	base := SingleCellConfig{Controller: facs.Must(), NumRequests: 10}
	tests := []struct {
		name   string
		mutate func(*SingleCellConfig)
	}{
		{"no controller", func(c *SingleCellConfig) { c.Controller = nil }},
		{"zero requests", func(c *SingleCellConfig) { c.NumRequests = 0 }},
		{"negative window", func(c *SingleCellConfig) { c.WindowSec = -1 }},
		{"negative holding", func(c *SingleCellConfig) { c.MeanHoldingSec = -1 }},
		{"NaN span", func(c *SingleCellConfig) { c.SpeedKmh = Span{Min: math.NaN()} }},
		{"one observe step", func(c *SingleCellConfig) { c.ObserveSteps = 1 }},
		{"negative capacity", func(c *SingleCellConfig) { c.CapacityBU = -1 }},
		{"bad mix", func(c *SingleCellConfig) { c.Mix = traffic.Mix{Text: -1} }},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mutate(&cfg)
			if _, err := RunSingleCell(cfg); err == nil {
				t.Fatal("expected a validation error")
			}
		})
	}
}

func TestRunSingleCellBasicAccounting(t *testing.T) {
	res, err := RunSingleCell(SingleCellConfig{
		Controller:  facs.Must(),
		NumRequests: 50,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requested != 50 {
		t.Fatalf("Requested = %d, want 50", res.Requested)
	}
	if res.Accepted < 0 || res.Accepted > res.Requested {
		t.Fatalf("Accepted = %d out of range", res.Accepted)
	}
	if got := res.AcceptedPct(); got < 0 || got > 100 {
		t.Fatalf("AcceptedPct = %v", got)
	}
	var classTotal uint64
	for _, r := range res.ByClass {
		classTotal += r.Total()
	}
	if classTotal != 50 {
		t.Fatalf("per-class totals sum to %d, want 50", classTotal)
	}
	if res.Occupancy.Count() != 50 {
		t.Fatalf("occupancy samples = %d, want 50", res.Occupancy.Count())
	}
	if res.Occupancy.Max() > 40 {
		t.Fatalf("occupancy exceeded capacity: %v", res.Occupancy.Max())
	}
}

func TestRunSingleCellDeterminism(t *testing.T) {
	run := func() SingleCellResult {
		res, err := RunSingleCell(SingleCellConfig{
			Controller:  facs.Must(),
			NumRequests: 40,
			Seed:        11,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Accepted != b.Accepted || a.Requested != b.Requested {
		t.Fatalf("runs differ: %d/%d vs %d/%d", a.Accepted, a.Requested, b.Accepted, b.Requested)
	}
	if a.Occupancy.Mean() != b.Occupancy.Mean() {
		t.Fatal("occupancy traces differ between identical runs")
	}
}

func TestRunSingleCellSeedsDiffer(t *testing.T) {
	run := func(seed int64) float64 {
		res, err := RunSingleCell(SingleCellConfig{
			Controller:  facs.Must(),
			NumRequests: 60,
			Seed:        seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Occupancy.Mean()
	}
	if run(1) == run(2) {
		t.Fatal("different seeds should give different traces")
	}
}

func TestRunSingleCellLightLoadAcceptsNearlyAll(t *testing.T) {
	res, err := RunSingleCell(SingleCellConfig{
		Controller:  facs.Must(),
		NumRequests: 5,
		SpeedKmh:    Pin(60),
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AcceptedPct() < 80 {
		t.Fatalf("light load acceptance = %v%%, want >= 80%%", res.AcceptedPct())
	}
}

// TestSingleCellSpeedOrdering asserts the paper's Fig. 7 headline: at high
// load, faster users are accepted more often than walking users.
func TestSingleCellSpeedOrdering(t *testing.T) {
	mean := func(speed float64) float64 {
		var acc float64
		for seed := int64(1); seed <= 3; seed++ {
			res, err := RunSingleCell(SingleCellConfig{
				Controller:  facs.Must(),
				NumRequests: 100,
				SpeedKmh:    Pin(speed),
				Seed:        seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			acc += res.AcceptedPct()
		}
		return acc / 3
	}
	slow, fast := mean(4), mean(60)
	if fast < slow+10 {
		t.Fatalf("Fig. 7 shape violated: 60 km/h %.1f%% vs 4 km/h %.1f%%", fast, slow)
	}
}

// TestSingleCellAngleOrdering asserts the paper's Fig. 8 headline: users
// heading straight at the BS are accepted more often than users heading
// sideways.
func TestSingleCellAngleOrdering(t *testing.T) {
	mean := func(angle float64) float64 {
		var acc float64
		for seed := int64(1); seed <= 3; seed++ {
			res, err := RunSingleCell(SingleCellConfig{
				Controller:     facs.Must(),
				NumRequests:    100,
				AngleOffsetDeg: Pin(angle),
				Seed:           seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			acc += res.AcceptedPct()
		}
		return acc / 3
	}
	straight, sideways := mean(0), mean(90)
	if straight < sideways+5 {
		t.Fatalf("Fig. 8 shape violated: angle 0 %.1f%% vs angle 90 %.1f%%", straight, sideways)
	}
}

// TestSingleCellDistanceOrdering asserts the paper's Fig. 9 headline:
// nearer users are accepted at least as often as distant users, with a
// smaller gap than speed or angle produce.
func TestSingleCellDistanceOrdering(t *testing.T) {
	mean := func(dist float64) float64 {
		var acc float64
		for seed := int64(1); seed <= 3; seed++ {
			res, err := RunSingleCell(SingleCellConfig{
				Controller:  facs.Must(),
				NumRequests: 100,
				DistanceKm:  Pin(dist),
				Seed:        seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			acc += res.AcceptedPct()
		}
		return acc / 3
	}
	near, far := mean(1), mean(10)
	if near < far {
		t.Fatalf("Fig. 9 shape violated: 1 km %.1f%% vs 10 km %.1f%%", near, far)
	}
}

// TestSingleCellControllerComparison: complete sharing accepts at least as
// much as FACS on the same workload (FACS trades admissions for QoS).
func TestSingleCellControllerComparison(t *testing.T) {
	run := func(ctrl cac.Controller) float64 {
		res, err := RunSingleCell(SingleCellConfig{
			Controller:  ctrl,
			NumRequests: 100,
			Seed:        5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.AcceptedPct()
	}
	cs := run(cac.CompleteSharing{})
	fa := run(facs.Must())
	if cs < fa {
		t.Fatalf("complete sharing (%.1f%%) should accept at least as much as FACS (%.1f%%)", cs, fa)
	}
}

func TestQueueTextRequestsRaisesTextAcceptance(t *testing.T) {
	base := SingleCellConfig{
		Controller:  facs.Must(),
		NumRequests: 100,
		Seed:        4,
	}
	plain, err := RunSingleCell(base)
	if err != nil {
		t.Fatal(err)
	}
	queuedCfg := base
	queuedCfg.QueueTextRequests = true
	queuedCfg.MaxQueueWaitSec = 60
	queued, err := RunSingleCell(queuedCfg)
	if err != nil {
		t.Fatal(err)
	}
	if queued.Queued == 0 {
		t.Fatal("heavy load should queue some NRNA text requests")
	}
	if queued.QueuedAccepted == 0 {
		t.Fatal("some queued requests should eventually be admitted")
	}
	if queued.Accepted <= plain.Accepted {
		t.Fatalf("queueing should raise acceptance: %d vs %d", queued.Accepted, plain.Accepted)
	}
	// Waits are bounded by the configured patience.
	if queued.QueueWait.Max() > 60 {
		t.Fatalf("queue wait %.1fs exceeds the 60s bound", queued.QueueWait.Max())
	}
	// Accounting stays consistent: every request gets exactly one
	// per-class outcome.
	var classTotal uint64
	for _, r := range queued.ByClass {
		classTotal += r.Total()
	}
	if classTotal != uint64(queued.Requested) {
		t.Fatalf("per-class outcomes %d != requested %d", classTotal, queued.Requested)
	}
}

func TestQueueTextRequestsIgnoredForGradelessControllers(t *testing.T) {
	res, err := RunSingleCell(SingleCellConfig{
		Controller:        cac.CompleteSharing{},
		NumRequests:       60,
		QueueTextRequests: true,
		Seed:              1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Queued != 0 {
		t.Fatal("complete sharing exposes no grades; nothing should queue")
	}
}

func TestQueueConfigValidation(t *testing.T) {
	_, err := RunSingleCell(SingleCellConfig{
		Controller:      facs.Must(),
		NumRequests:     10,
		MaxQueueWaitSec: -5,
	})
	if err == nil {
		t.Fatal("negative queue wait should be rejected")
	}
}

func TestQueueDeterminism(t *testing.T) {
	run := func() SingleCellResult {
		res, err := RunSingleCell(SingleCellConfig{
			Controller:        facs.Must(),
			NumRequests:       80,
			QueueTextRequests: true,
			Seed:              9,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Accepted != b.Accepted || a.Queued != b.Queued || a.QueuedAccepted != b.QueuedAccepted {
		t.Fatal("queueing runs are not deterministic")
	}
}
