package experiments

import (
	"testing"

	"facs/internal/cac"
	"facs/internal/cell"
	"facs/internal/gps"
)

// dispatchSpy records every controller callback the multi-cell runner
// dispatches: decisions, admissions, releases, kinematic updates and
// ticks. It admits whenever the call fits, so the run exercises
// handoffs and completions.
type dispatchSpy struct {
	decides   int
	admits    []int
	releases  []int
	updates   []int
	tickTimes []float64
}

func (s *dispatchSpy) Name() string { return "dispatch-spy" }

func (s *dispatchSpy) Decide(req cac.Request) (cac.Decision, error) {
	s.decides++
	return cac.CompleteSharing{}.Decide(req)
}

func (s *dispatchSpy) OnAdmit(req cac.Request) { s.admits = append(s.admits, req.Call.ID) }
func (s *dispatchSpy) OnRelease(id int, _ *cell.BaseStation, _ float64) {
	s.releases = append(s.releases, id)
}

func (s *dispatchSpy) OnStateUpdate(id int, est gps.Estimate, bs *cell.BaseStation) {
	s.updates = append(s.updates, id)
}

func (s *dispatchSpy) OnTick(now float64) { s.tickTimes = append(s.tickTimes, now) }

// TestMultiCellDispatch pins the runner's controller-callback contract:
// handoffs refresh kinematics through cac.StateUpdater, completions and
// drops release through cac.Observer, and cac.Ticker receives periodic
// ticks that stop once the run drains.
func TestMultiCellDispatch(t *testing.T) {
	spy := &dispatchSpy{}
	res, err := RunMultiCell(MultiCellConfig{
		NewController: func(*cell.Network) (cac.Controller, error) {
			return spy, nil
		},
		NumRequests:     60,
		TickIntervalSec: 7,
		Seed:            1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.HandoffAttempts == 0 {
		t.Fatal("scenario produced no handoffs; the dispatch test needs mobility")
	}
	if len(spy.admits) != res.Accepted {
		t.Fatalf("OnAdmit for %d calls, accepted %d", len(spy.admits), res.Accepted)
	}
	// Every admitted call leaves exactly once: completion, coverage
	// exit, or handoff drop — all must release the controller's state.
	if len(spy.releases) != res.Accepted {
		t.Fatalf("OnRelease for %d calls, want %d (completed %d + dropped %d)",
			len(spy.releases), res.Accepted, res.Completed, res.HandoffDrops)
	}
	// Successful handoffs refresh kinematics; drops do not.
	wantUpdates := res.HandoffAttempts - res.HandoffDrops
	if len(spy.updates) != wantUpdates {
		t.Fatalf("OnStateUpdate %d times, want %d successful handoffs", len(spy.updates), wantUpdates)
	}
	if len(spy.tickTimes) == 0 {
		t.Fatal("Ticker controller received no ticks")
	}
	for i, at := range spy.tickTimes {
		want := 7 * float64(i+1)
		if at != want {
			t.Fatalf("tick %d fired at %v, want %v", i, at, want)
		}
	}
	if spy.decides == 0 {
		t.Fatal("no decisions dispatched")
	}
}

// TestMultiCellTickerOptional asserts non-Ticker controllers run
// exactly as before (no tick events scheduled).
func TestMultiCellTickerOptional(t *testing.T) {
	res, err := RunMultiCell(MultiCellConfig{
		NewController: func(*cell.Network) (cac.Controller, error) {
			return cac.CompleteSharing{}, nil
		},
		NumRequests: 20,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requested == 0 {
		t.Fatal("run did nothing")
	}
}

// TestMultiCellLedgerMatchesRecompute is the golden-equivalence suite
// at the scenario level: the paper's Fig. 10 multi-cell workload run
// against the incremental ledger and against the recompute oracle must
// produce byte-identical results — every counter and the utilization
// summary — for every seed and load point.
func TestMultiCellLedgerMatchesRecompute(t *testing.T) {
	loads := []int{40, 100}
	seeds := []int64{1, 2, 3}
	for _, n := range loads {
		for _, seed := range seeds {
			ledger, err := RunMultiCell(MultiCellConfig{
				NewController: SCCFactory(),
				NumRequests:   n,
				Seed:          seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			oracle, err := RunMultiCell(MultiCellConfig{
				NewController: SCCRecomputeFactory(),
				NumRequests:   n,
				Seed:          seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			// Identical up to the controller name.
			ledger.ControllerName = oracle.ControllerName
			if ledger != oracle {
				t.Fatalf("n=%d seed=%d: ledger %+v, oracle %+v", n, seed, ledger, oracle)
			}
		}
	}
}

// TestMultiCellLedgerMatchesRecomputeControlled repeats the equivalence
// with controller-routed handoffs, so the ledger also decides handoff
// admissions and sees kinematic updates mid-flight.
func TestMultiCellLedgerMatchesRecomputeControlled(t *testing.T) {
	for _, seed := range []int64{1, 5} {
		ledger, err := RunMultiCell(MultiCellConfig{
			NewController: SCCFactory(),
			NumRequests:   60,
			HandoffPolicy: HandoffControlled,
			Seed:          seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		oracle, err := RunMultiCell(MultiCellConfig{
			NewController: SCCRecomputeFactory(),
			NumRequests:   60,
			HandoffPolicy: HandoffControlled,
			Seed:          seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		ledger.ControllerName = oracle.ControllerName
		if ledger != oracle {
			t.Fatalf("seed=%d: ledger %+v, oracle %+v", seed, ledger, oracle)
		}
	}
}
