package experiments

import (
	"fmt"
	"time"

	"facs/internal/cac"
	"facs/internal/cell"
	"facs/internal/scc"
	"facs/internal/serve"
	"facs/internal/sim"
	"facs/internal/traffic"
)

// StreamingConfig parameterises the closed-loop streaming load
// generator: a long-lived serve.Service fed with waves of synthetic
// admission requests, where accepted calls occupy their stations for a
// configurable number of waves before being released and time-driven
// controllers receive periodic ticks — the online counterpart of the
// one-shot RunBatchAdmission sweep.
//
// Determinism follows the seeded-RNG pattern of the figure harness:
// every request is derived from Seed, waves are submitted through
// serve.SubmitAll (chunked only at MaxBatch boundaries, never by
// timing), and releases/ticks are scheduled by wave index, so two runs
// with equal configs produce byte-identical decision streams.
type StreamingConfig struct {
	// NewController builds the controller under test. Required.
	NewController func(net *cell.Network) (cac.Controller, error)
	// Rings is the network size (default 1: seven cells).
	Rings int
	// CellRadiusM is the hex cell radius (default 1500 m).
	CellRadiusM float64
	// CapacityBU is the per-station bandwidth (default 40).
	CapacityBU int
	// Requests is the total number of streamed requests. Required.
	Requests int
	// Wave is the closed-loop window: requests submitted per wave
	// (default 64).
	Wave int
	// MaxBatch caps the service micro-batch (default Wave).
	MaxBatch int
	// MaxDelay is the service batching delay (default the serve
	// package default; it cannot change outcomes, only latency).
	MaxDelay time.Duration
	// HoldWaves is how many waves a committed call occupies its station
	// before release (default 4).
	HoldWaves int
	// TickEveryWaves delivers an OnTick to time-driven controllers
	// every so many waves (default 8).
	TickEveryWaves int
	// WaveIntervalSec advances simulation time per wave (default 1 s).
	WaveIntervalSec float64
	// Mix is the class mix (default 60/30/10).
	Mix traffic.Mix
	// SpeedKmh samples user speeds (default Span{10, 80}).
	SpeedKmh Span
	// Seed drives all randomness.
	Seed int64
}

func (c StreamingConfig) withDefaults() StreamingConfig {
	if c.Rings == 0 {
		c.Rings = 1
	}
	if c.CellRadiusM == 0 {
		c.CellRadiusM = 1500
	}
	if c.CapacityBU == 0 {
		c.CapacityBU = cell.DefaultCapacityBU
	}
	if c.Wave == 0 {
		c.Wave = 64
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = c.Wave
	}
	if c.HoldWaves == 0 {
		c.HoldWaves = 4
	}
	if c.TickEveryWaves == 0 {
		c.TickEveryWaves = 8
	}
	if c.WaveIntervalSec == 0 {
		c.WaveIntervalSec = 1
	}
	if (c.Mix == traffic.Mix{}) {
		c.Mix = traffic.DefaultMix()
	}
	if (c.SpeedKmh == Span{}) {
		c.SpeedKmh = Span{Min: 10, Max: 80}
	}
	return c
}

// Validate checks the configuration.
func (c StreamingConfig) Validate() error {
	if c.NewController == nil {
		return fmt.Errorf("experiments: streaming config needs a controller factory")
	}
	if c.Requests <= 0 {
		return fmt.Errorf("experiments: Requests must be > 0, got %d", c.Requests)
	}
	if c.Wave < 1 {
		return fmt.Errorf("experiments: Wave must be >= 1, got %d", c.Wave)
	}
	if c.HoldWaves < 1 {
		return fmt.Errorf("experiments: HoldWaves must be >= 1, got %d", c.HoldWaves)
	}
	if c.TickEveryWaves < 1 {
		return fmt.Errorf("experiments: TickEveryWaves must be >= 1, got %d", c.TickEveryWaves)
	}
	if err := c.SpeedKmh.Validate(); err != nil {
		return err
	}
	return c.Mix.Validate()
}

// StreamingResult aggregates one closed-loop streaming run.
type StreamingResult struct {
	// ControllerName identifies the scheme under test.
	ControllerName string
	// Requested / Accepted / Committed count streamed decisions;
	// Committed is the subset of accepts actually allocated (an accept
	// can fail to commit when its own micro-batch exhausted the
	// station).
	Requested, Accepted, Committed int
	// Released counts calls retired by the closed loop.
	Released int
	// Waves is the number of submitted waves.
	Waves int
	// Decisions holds the per-request outcomes in stream order.
	Decisions []cac.Decision
	// ByClass tallies requested/accepted decisions per traffic class.
	// Summary printers must render it in sorted class order.
	ByClass map[traffic.Class]ClassTally
	// Stats is the service-side counter snapshot after drain.
	Stats serve.Stats
	// Ledger holds the controller's counter snapshot when it is an SCC
	// demand ledger (taken through the service's Do barrier before
	// shutdown); nil otherwise.
	Ledger *scc.LedgerStats
}

// ClassTally counts one traffic class's streamed outcomes.
type ClassTally struct {
	// Requested / Accepted count this class's decisions.
	Requested, Accepted int
}

// tallyClass accumulates one decision into a per-class map.
func tallyClass(m map[traffic.Class]ClassTally, c traffic.Class, accepted bool) {
	t := m[c]
	t.Requested++
	if accepted {
		t.Accepted++
	}
	m[c] = t
}

// AcceptedPct returns 100 * accepted / requested.
func (r StreamingResult) AcceptedPct() float64 {
	if r.Requested == 0 {
		return 0
	}
	return 100 * float64(r.Accepted) / float64(r.Requested)
}

// streamedCall tracks one committed call until its scheduled release.
type streamedCall struct {
	releaseWave int
	id          int
	station     *cell.BaseStation
}

// RunStreaming drives a serve.Service with the closed-loop workload
// described by cfg and returns the deterministic decision stream plus
// service statistics. The service owns station state (Commit mode):
// accepted calls are allocated on admission, held for HoldWaves waves
// and released through the same serialized op queue as the decisions,
// so stateful controllers see a consistent call lifecycle.
func RunStreaming(cfg StreamingConfig) (StreamingResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return StreamingResult{}, err
	}
	net, err := cell.NewNetwork(cell.NetworkConfig{
		Rings:       cfg.Rings,
		CellRadiusM: cfg.CellRadiusM,
		CapacityBU:  cfg.CapacityBU,
	})
	if err != nil {
		return StreamingResult{}, err
	}
	controller, err := cfg.NewController(net)
	if err != nil {
		return StreamingResult{}, err
	}
	svc, err := serve.New(serve.Config{
		Controller: controller,
		MaxBatch:   cfg.MaxBatch,
		MaxDelay:   cfg.MaxDelay,
		Commit:     true,
	})
	if err != nil {
		return StreamingResult{}, err
	}
	defer svc.Close()

	// Request sampling shares the batch sweep's generator, so the two
	// harnesses stress controllers with the same spatial workload.
	sampleCfg := BatchAdmissionConfig{
		Rings:       cfg.Rings,
		CellRadiusM: cfg.CellRadiusM,
		CapacityBU:  cfg.CapacityBU,
		Mix:         cfg.Mix,
		SpeedKmh:    cfg.SpeedKmh,
	}
	rng := sim.NewStream(cfg.Seed, "streaming")

	result := StreamingResult{
		ControllerName: controller.Name(),
		Decisions:      make([]cac.Decision, 0, cfg.Requests),
		ByClass:        map[traffic.Class]ClassTally{},
	}
	var active []streamedCall
	now := 0.0
	reqs := make([]cac.Request, 0, cfg.Wave)
	for wave := 0; result.Requested < cfg.Requests; wave++ {
		// Retire calls due this wave, strictly before new admissions.
		keep := active[:0]
		for _, c := range active {
			if c.releaseWave <= wave {
				if err := svc.Release(c.id, c.station, now); err != nil {
					return StreamingResult{}, err
				}
				result.Released++
			} else {
				keep = append(keep, c)
			}
		}
		active = keep
		if wave > 0 && wave%cfg.TickEveryWaves == 0 {
			if err := svc.Tick(now); err != nil {
				return StreamingResult{}, err
			}
		}

		k := cfg.Wave
		if remaining := cfg.Requests - result.Requested; k > remaining {
			k = remaining
		}
		reqs = reqs[:0]
		for i := 0; i < k; i++ {
			req, err := sampleBatchRequest(rng, net, sampleCfg, result.Requested+i+1)
			if err != nil {
				return StreamingResult{}, err
			}
			req.Now = now
			reqs = append(reqs, req)
		}
		responses, err := svc.SubmitAll(reqs)
		if err != nil {
			return StreamingResult{}, err
		}
		for i, resp := range responses {
			// A rejected response with an error is a controller failure;
			// an accepted one with an error merely failed to commit
			// (its own micro-batch exhausted the station), which the
			// closed loop treats as a non-admission.
			if resp.Err != nil && !resp.Decision.Accepted() {
				return StreamingResult{}, resp.Err
			}
			result.Decisions = append(result.Decisions, resp.Decision)
			tallyClass(result.ByClass, reqs[i].Call.Class, resp.Decision.Accepted())
			if resp.Decision.Accepted() {
				result.Accepted++
			}
			if resp.Committed {
				result.Committed++
				active = append(active, streamedCall{
					releaseWave: wave + cfg.HoldWaves,
					id:          reqs[i].Call.ID,
					station:     reqs[i].Station,
				})
			}
		}
		result.Requested += k
		result.Waves++
		now += cfg.WaveIntervalSec
	}
	// Snapshot ledger counters through the Do barrier while the loop is
	// still live (Close would make the controller unreachable).
	if err := svc.Do(func(ctrl cac.Controller) {
		if l, ok := ctrl.(*scc.Ledger); ok {
			st := l.Snapshot()
			result.Ledger = &st
		}
	}); err != nil {
		return StreamingResult{}, err
	}
	if err := svc.Close(); err != nil {
		return StreamingResult{}, err
	}
	result.Stats = svc.Stats()
	return result, nil
}
