package experiments

import (
	"fmt"
	"math/rand"

	"facs/internal/cac"
	"facs/internal/cell"
	"facs/internal/geo"
	"facs/internal/gps"
	"facs/internal/sim"
	"facs/internal/traffic"
)

// BatchAdmissionConfig parameterises the batch admission sweep: a
// snapshot of a multi-cell network under load, against which a large
// batch of candidate requests is decided in a single pass through the
// batch pipeline (cac.DecideAll). It is the offline counterpart of the
// event-driven scenarios — capacity planning, controller throughput
// measurement and the ROADMAP's "evaluate many requests per call
// against one station" workload.
type BatchAdmissionConfig struct {
	// NewController builds the controller under test. Required.
	NewController func(net *cell.Network) (cac.Controller, error)
	// Rings is the network size (default 1: seven cells).
	Rings int
	// CellRadiusM is the hex cell radius (default 1500 m).
	CellRadiusM float64
	// CapacityBU is the per-station bandwidth (default 40).
	CapacityBU int
	// ActiveCalls is the number of calls pre-admitted (and tracked by
	// Observer controllers) before the sweep, loading the snapshot.
	// Calls that no longer fit their sampled cell are skipped; the
	// realised count is reported in the result.
	ActiveCalls int
	// Requests is the batch size. Required.
	Requests int
	// Mix is the class mix (default 60/30/10).
	Mix traffic.Mix
	// SpeedKmh samples user speeds (default Span{10, 80}).
	SpeedKmh Span
	// Seed drives all randomness.
	Seed int64
}

func (c BatchAdmissionConfig) withDefaults() BatchAdmissionConfig {
	if c.Rings == 0 {
		c.Rings = 1
	}
	if c.CellRadiusM == 0 {
		c.CellRadiusM = 1500
	}
	if c.CapacityBU == 0 {
		c.CapacityBU = cell.DefaultCapacityBU
	}
	if (c.Mix == traffic.Mix{}) {
		c.Mix = traffic.DefaultMix()
	}
	if (c.SpeedKmh == Span{}) {
		c.SpeedKmh = Span{Min: 10, Max: 80}
	}
	return c
}

// Validate checks the configuration.
func (c BatchAdmissionConfig) Validate() error {
	if c.NewController == nil {
		return fmt.Errorf("experiments: batch admission config needs a controller factory")
	}
	if c.Requests <= 0 {
		return fmt.Errorf("experiments: Requests must be > 0, got %d", c.Requests)
	}
	if c.ActiveCalls < 0 {
		return fmt.Errorf("experiments: ActiveCalls must be >= 0, got %d", c.ActiveCalls)
	}
	if err := c.SpeedKmh.Validate(); err != nil {
		return err
	}
	return c.Mix.Validate()
}

// BatchAdmissionResult aggregates one sweep.
type BatchAdmissionResult struct {
	// ControllerName identifies the scheme under test.
	ControllerName string
	// PreAdmitted is the number of snapshot calls actually loaded.
	PreAdmitted int
	// Requested/Accepted count the batch decisions.
	Requested int
	Accepted  int
	// Decisions holds the per-request outcomes in request order.
	Decisions []cac.Decision
}

// AcceptedPct returns 100 * accepted / requested.
func (r BatchAdmissionResult) AcceptedPct() float64 {
	if r.Requested == 0 {
		return 0
	}
	return 100 * float64(r.Accepted) / float64(r.Requested)
}

// sampleBatchRequest draws one synthetic admission request: a covered
// position with random heading and sampled speed, the station owning
// that position, and a class drawn from the mix.
func sampleBatchRequest(rng *rand.Rand, net *cell.Network, cfg BatchAdmissionConfig, id int) (cac.Request, error) {
	radius := cfg.CellRadiusM * (1.8*float64(cfg.Rings) + 1)
	var pos geo.Point
	var bs *cell.BaseStation
	for tries := 0; ; tries++ {
		pos = geo.Point{
			X: sim.Uniform(rng, -radius, radius),
			Y: sim.Uniform(rng, -radius, radius),
		}
		var err error
		if bs, err = net.StationAt(pos); err == nil {
			break
		}
		if tries > 1000 {
			return cac.Request{}, fmt.Errorf("experiments: could not place a user inside coverage")
		}
	}
	class := cfg.Mix.Sample(rng)
	est := gps.Estimate{
		Pos:        pos,
		HeadingDeg: sim.Uniform(rng, -180, 180),
		SpeedKmh:   cfg.SpeedKmh.Sample(rng),
	}
	return cac.Request{
		Call:    cell.Call{ID: id, Class: class, BU: class.BandwidthUnits()},
		Station: bs,
		Obs:     gps.Observe(est, bs.Pos()),
		Est:     est,
	}, nil
}

// RunBatchAdmission loads the snapshot and decides the whole batch in
// one cac.DecideAll pass. Decisions are identical to calling Decide per
// request (the BatchController contract); only the cost differs.
func RunBatchAdmission(cfg BatchAdmissionConfig) (BatchAdmissionResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return BatchAdmissionResult{}, err
	}
	net, err := cell.NewNetwork(cell.NetworkConfig{
		Rings:       cfg.Rings,
		CellRadiusM: cfg.CellRadiusM,
		CapacityBU:  cfg.CapacityBU,
	})
	if err != nil {
		return BatchAdmissionResult{}, err
	}
	controller, err := cfg.NewController(net)
	if err != nil {
		return BatchAdmissionResult{}, err
	}
	observer, _ := controller.(cac.Observer)
	rng := sim.NewStream(cfg.Seed, "batch")

	result := BatchAdmissionResult{ControllerName: controller.Name()}
	for i := 0; i < cfg.ActiveCalls; i++ {
		req, err := sampleBatchRequest(rng, net, cfg, i+1)
		if err != nil {
			return BatchAdmissionResult{}, err
		}
		if !req.Station.Fits(req.Call.BU) {
			continue
		}
		if err := req.Station.Admit(req.Call); err != nil {
			return BatchAdmissionResult{}, err
		}
		if observer != nil {
			observer.OnAdmit(req)
		}
		result.PreAdmitted++
	}
	reqs := make([]cac.Request, cfg.Requests)
	for i := range reqs {
		if reqs[i], err = sampleBatchRequest(rng, net, cfg, 1_000_000+i); err != nil {
			return BatchAdmissionResult{}, err
		}
	}
	decisions, err := cac.DecideAll(controller, reqs)
	if err != nil {
		return BatchAdmissionResult{}, err
	}
	result.Decisions = decisions
	result.Requested = len(decisions)
	for _, d := range decisions {
		if d.Accepted() {
			result.Accepted++
		}
	}
	return result, nil
}
