package experiments

import (
	"reflect"
	"testing"
	"time"

	"facs/internal/cac"
	"facs/internal/cell"
	"facs/internal/facs"
	"facs/internal/gps"
	"facs/internal/scc"
	"facs/internal/shard"
	"facs/internal/sim"
)

// observeAt mirrors the engine's handoff request construction.
func observeAt(est gps.Estimate, bs *cell.BaseStation) gps.Observation {
	return gps.Observe(est, bs.Pos())
}

// shardGuardFactory hands every shard the same stateless guard-channel
// baseline (cell-local: outcomes must be shard-count-invariant).
func shardGuardFactory(shard.View) (cac.Controller, error) {
	return cac.NewGuardChannel(8)
}

// shardFACSFactory shares one immutable exact FACS across all shards.
var sharedFACSSystem = facs.Must()

func shardFACSFactory(shard.View) (cac.Controller, error) {
	return sharedFACSSystem, nil
}

// shardLedgerFactory builds a fresh SCC demand ledger per shard — NOT
// cell-local: determinism holds per fixed shard count only.
func shardLedgerFactory(v shard.View) (cac.Controller, error) {
	return scc.NewLedger(scc.Config{
		Network:     v.Network(),
		Reservation: scc.ReservationFull,
	})
}

// replaySharded is the sequential oracle: the identical closed loop —
// same seeded draws, same MaxBatch chunking, same two-phase handoff
// protocol — executed inline against the single controller a 1-shard
// engine would build, without any service or goroutine. Byte-identical
// output proves the sharded engine computes exactly this.
func replaySharded(t *testing.T, cfg ShardedConfig) ShardedResult {
	t.Helper()
	cfg = cfg.withDefaults()
	net, err := cell.NewNetwork(cell.NetworkConfig{
		Rings:       cfg.Rings,
		CellRadiusM: cfg.CellRadiusM,
		CapacityBU:  cfg.CapacityBU,
	})
	if err != nil {
		t.Fatal(err)
	}
	controller, err := cfg.NewController(shard.SingleView(net))
	if err != nil {
		t.Fatal(err)
	}
	observer, _ := controller.(cac.Observer)
	ticker, _ := controller.(cac.Ticker)
	sampleCfg := BatchAdmissionConfig{
		Rings:       cfg.Rings,
		CellRadiusM: cfg.CellRadiusM,
		CapacityBU:  cfg.CapacityBU,
		Mix:         cfg.Mix,
		SpeedKmh:    cfg.SpeedKmh,
	}
	rng := sim.NewStream(cfg.Seed, "sharded")
	result := ShardedResult{ControllerName: controller.Name(), Shards: 1}

	// commit mirrors serve's finish: allocate and notify on success.
	commit := func(req cac.Request) bool {
		call := req.Call
		call.AdmittedAt = req.Now
		call.Handoff = req.Handoff
		if err := req.Station.Admit(call); err != nil {
			return false
		}
		if observer != nil {
			observer.OnAdmit(req)
		}
		return true
	}

	var active []shardedCall
	now := 0.0
	for wave := 0; result.Requested < cfg.Requests; wave++ {
		keep := active[:0]
		for _, c := range active {
			if c.releaseWave <= wave {
				if _, err := c.station.Release(c.id); err != nil {
					t.Fatal(err)
				}
				if observer != nil {
					observer.OnRelease(c.id, c.station, now)
				}
				result.Released++
			} else {
				keep = append(keep, c)
			}
		}
		active = keep
		if wave > 0 && wave%cfg.TickEveryWaves == 0 && ticker != nil {
			ticker.OnTick(now)
		}

		if wave > 0 && wave%cfg.HandoffEveryWaves == 0 {
			keep = active[:0]
			for i := range active {
				c := active[i]
				if rng.Float64() >= cfg.HandoffFraction {
					keep = append(keep, c)
					continue
				}
				neighbors := net.Neighbors(c.station.Hex())
				if len(neighbors) == 0 {
					keep = append(keep, c)
					continue
				}
				target := neighbors[rng.Intn(len(neighbors))]
				est := sampleHandoffEstimate(rng, target, cfg)
				// Two-phase protocol, inline: source release, then
				// target admission as its own single-request chunk.
				call, err := c.station.Release(c.id)
				if err != nil {
					t.Fatal(err)
				}
				if observer != nil {
					observer.OnRelease(c.id, c.station, now)
				}
				req := cac.Request{
					Call:    cell.Call{ID: call.ID, Class: call.Class, BU: call.BU},
					Station: target,
					Obs:     observeAt(est, target),
					Est:     est,
					Handoff: true,
					Now:     now,
				}
				decisions, err := cac.DecideAll(controller, []cac.Request{req})
				if err != nil {
					t.Fatal(err)
				}
				result.Handoffs++
				result.HandoffDecisions = append(result.HandoffDecisions, decisions[0])
				if !decisions[0].Accepted() || !commit(req) {
					result.HandoffDropped++
					continue
				}
				c.station = target
				c.est = est
				keep = append(keep, c)
			}
			active = keep
		}

		k := cfg.Wave
		if remaining := cfg.Requests - result.Requested; k > remaining {
			k = remaining
		}
		reqs := make([]cac.Request, k)
		for i := 0; i < k; i++ {
			req, err := sampleBatchRequest(rng, net, sampleCfg, result.Requested+i+1)
			if err != nil {
				t.Fatal(err)
			}
			req.Now = now
			reqs[i] = req
		}
		for lo := 0; lo < k; lo += cfg.MaxBatch {
			hi := lo + cfg.MaxBatch
			if hi > k {
				hi = k
			}
			chunk := reqs[lo:hi]
			decisions, err := cac.DecideAll(controller, chunk)
			if err != nil {
				t.Fatal(err)
			}
			for i, d := range decisions {
				result.Decisions = append(result.Decisions, d)
				if !d.Accepted() {
					continue
				}
				result.Accepted++
				if !commit(chunk[i]) {
					continue
				}
				result.Committed++
				active = append(active, shardedCall{
					releaseWave: wave + cfg.HoldWaves,
					id:          chunk[i].Call.ID,
					station:     chunk[i].Station,
					est:         chunk[i].Est,
				})
			}
		}
		result.Requested += k
		result.Waves++
		now += cfg.WaveIntervalSec
	}
	return result
}

func assertShardedEqual(t *testing.T, got, want ShardedResult, label string) {
	t.Helper()
	if got.Requested != want.Requested || got.Accepted != want.Accepted ||
		got.Committed != want.Committed || got.Released != want.Released ||
		got.Waves != want.Waves || got.Handoffs != want.Handoffs ||
		got.HandoffDropped != want.HandoffDropped {
		t.Fatalf("%s: aggregate mismatch:\n got {req %d acc %d com %d rel %d waves %d ho %d drop %d}\nwant {req %d acc %d com %d rel %d waves %d ho %d drop %d}",
			label,
			got.Requested, got.Accepted, got.Committed, got.Released, got.Waves, got.Handoffs, got.HandoffDropped,
			want.Requested, want.Accepted, want.Committed, want.Released, want.Waves, want.Handoffs, want.HandoffDropped)
	}
	if !reflect.DeepEqual(got.Decisions, want.Decisions) {
		for i := range want.Decisions {
			if i < len(got.Decisions) && got.Decisions[i] != want.Decisions[i] {
				t.Fatalf("%s: decision %d is %v, want %v", label, i, got.Decisions[i], want.Decisions[i])
			}
		}
		t.Fatalf("%s: decision streams differ in length: %d vs %d", label, len(got.Decisions), len(want.Decisions))
	}
	if !reflect.DeepEqual(got.HandoffDecisions, want.HandoffDecisions) {
		t.Fatalf("%s: handoff streams differ:\n got %v\nwant %v", label, got.HandoffDecisions, want.HandoffDecisions)
	}
}

// TestShardedDeterminism is the acceptance suite for the sharded
// engine: a randomized multi-cell closed-loop workload — admissions,
// holds, releases, barrier ticks and neighbour handoffs interleaved —
// must produce byte-identical decision and handoff streams for shard
// counts 1, 2, 4 and 8, equal to the inline sequential replay, for
// cell-local controllers. It stays fast enough for the race-detector
// job in short mode.
func TestShardedDeterminism(t *testing.T) {
	for _, tc := range []struct {
		name    string
		factory func(shard.View) (cac.Controller, error)
	}{
		{"guard", shardGuardFactory},
		{"facs", shardFACSFactory},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := ShardedConfig{
				NewController:     tc.factory,
				Rings:             2, // 19 cells
				Requests:          600,
				Wave:              48,
				MaxBatch:          16,
				HoldWaves:         3,
				HandoffEveryWaves: 2,
				TickEveryWaves:    4,
				Seed:              29,
			}
			oracle := replaySharded(t, cfg)
			if oracle.Handoffs == 0 || oracle.Released == 0 || oracle.Accepted == 0 {
				t.Fatalf("degenerate workload: %+v", oracle)
			}

			results, err := RunShardedSweep(cfg, []int{1, 2, 4, 8})
			if err != nil {
				t.Fatal(err)
			}
			for _, res := range results {
				label := tc.name + "/shards-" + string(rune('0'+res.Shards))
				assertShardedEqual(t, res, oracle, label)
				if !res.CellLocal {
					t.Fatalf("%s: engine should report cell-local", label)
				}
				if res.Stats.Total.Decided != int64(res.Requested)+int64(res.Handoffs) {
					t.Fatalf("%s: engine decided %d, want %d requests + %d handoffs",
						label, res.Stats.Total.Decided, res.Requested, res.Handoffs)
				}
				if res.Shards > 1 && res.CrossShard == 0 {
					t.Fatalf("%s: no cross-shard handoffs in a %d-shard run (%d handoffs)",
						label, res.Shards, res.Handoffs)
				}
				if res.Shards == 1 && res.CrossShard != 0 {
					t.Fatalf("%s: 1-shard run reports cross-shard handoffs", label)
				}
			}

			// Timing knobs must not leak into outcomes.
			slow := cfg
			slow.Shards = 4
			slow.MaxDelay = 2 * time.Millisecond
			slowRes, err := RunSharded(slow)
			if err != nil {
				t.Fatal(err)
			}
			assertShardedEqual(t, slowRes, oracle, tc.name+"/slow-delay")
		})
	}
}

// TestShardedSCCFixedCountReproducible covers the non-cell-local
// regime: per-shard SCC ledgers are deterministic run-to-run for a
// fixed shard count (and race-free under -race), even though outcomes
// legitimately differ between shard counts.
func TestShardedSCCFixedCountReproducible(t *testing.T) {
	cfg := ShardedConfig{
		NewController:     shardLedgerFactory,
		Rings:             2,
		Requests:          400,
		Wave:              40,
		MaxBatch:          16,
		HoldWaves:         3,
		HandoffEveryWaves: 2,
		TickEveryWaves:    4,
		Shards:            4,
		Seed:              31,
	}
	first, err := RunSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.CellLocal {
		t.Fatal("SCC shards must not report cell-local")
	}
	if first.Handoffs == 0 || first.Accepted == 0 {
		t.Fatalf("degenerate workload: %+v", first)
	}
	again, err := RunSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertShardedEqual(t, again, first, "scc rerun")
}

func TestRunShardedValidates(t *testing.T) {
	if _, err := RunSharded(ShardedConfig{Requests: 10}); err == nil {
		t.Fatal("missing factory should fail")
	}
	if _, err := RunSharded(ShardedConfig{NewController: shardGuardFactory}); err == nil {
		t.Fatal("missing request count should fail")
	}
	if _, err := RunSharded(ShardedConfig{NewController: shardGuardFactory, Requests: 10, HandoffFraction: 1.5}); err == nil {
		t.Fatal("out-of-range handoff fraction should fail")
	}
	if _, err := RunShardedSweep(ShardedConfig{NewController: shardGuardFactory, Requests: 10}, nil); err == nil {
		t.Fatal("empty sweep should fail")
	}
}
