package experiments

import (
	"testing"

	"facs/internal/cac"
	"facs/internal/cell"
	"facs/internal/facs"
	"facs/internal/sim"
)

// TestSingleCellInvariantsAcrossRandomConfigs fuzzes the single-cell
// scenario over randomized workloads and controllers, asserting the
// system-wide invariants that must hold for any admission policy:
// occupancy never exceeds capacity, accounting is conserved, and
// acceptance percentages stay in [0, 100].
func TestSingleCellInvariantsAcrossRandomConfigs(t *testing.T) {
	rng := sim.NewRNG(20240610)
	controllers := []cac.Controller{
		facs.Must(),
		facs.Must(facs.WithAcceptThreshold(-0.5)),
		facs.Must(facs.WithAcceptThreshold(0.6)),
		cac.CompleteSharing{},
	}
	guard, err := cac.NewGuardChannel(6)
	if err != nil {
		t.Fatal(err)
	}
	controllers = append(controllers, guard)

	for trial := 0; trial < 25; trial++ {
		ctrl := controllers[rng.Intn(len(controllers))]
		cfg := SingleCellConfig{
			Controller:        ctrl,
			NumRequests:       10 + rng.Intn(90),
			WindowSec:         200 + rng.Float64()*1800,
			MeanHoldingSec:    30 + rng.Float64()*240,
			SpeedKmh:          Span{Min: 1 + rng.Float64()*30, Max: 40 + rng.Float64()*80},
			AngleOffsetDeg:    Span{Min: -rng.Float64() * 180, Max: rng.Float64() * 180},
			DistanceKm:        Span{Min: 0.2 + rng.Float64()*2, Max: 4 + rng.Float64()*5},
			GPSNoiseM:         []float64{-1, 2, 5, 20}[rng.Intn(4)],
			CapacityBU:        []int{20, 40, 80}[rng.Intn(3)],
			QueueTextRequests: rng.Intn(2) == 0,
			Seed:              int64(trial),
		}
		res, err := RunSingleCell(cfg)
		if err != nil {
			t.Fatalf("trial %d (%s): %v", trial, ctrl.Name(), err)
		}
		if res.Requested != cfg.NumRequests {
			t.Fatalf("trial %d: requested %d != configured %d", trial, res.Requested, cfg.NumRequests)
		}
		if res.Accepted < 0 || res.Accepted > res.Requested {
			t.Fatalf("trial %d: accepted %d out of range", trial, res.Accepted)
		}
		if pct := res.AcceptedPct(); pct < 0 || pct > 100 {
			t.Fatalf("trial %d: acceptance %v%%", trial, pct)
		}
		if res.Occupancy.Max() > float64(cfg.CapacityBU) {
			t.Fatalf("trial %d: occupancy %v exceeded capacity %d", trial, res.Occupancy.Max(), cfg.CapacityBU)
		}
		var classTotal uint64
		var classHits uint64
		for _, r := range res.ByClass {
			classTotal += r.Total()
			classHits += r.Hits()
		}
		if classTotal != uint64(res.Requested) {
			t.Fatalf("trial %d: class outcomes %d != requested %d", trial, classTotal, res.Requested)
		}
		if classHits != uint64(res.Accepted) {
			t.Fatalf("trial %d: class hits %d != accepted %d", trial, classHits, res.Accepted)
		}
		if res.QueuedAccepted > res.Queued {
			t.Fatalf("trial %d: queued accounting broken: %d > %d", trial, res.QueuedAccepted, res.Queued)
		}
	}
}

// TestMultiCellInvariantsAcrossRandomConfigs fuzzes the multi-cell
// scenario: call conservation (accepted = completed + dropped), handoff
// accounting, and per-station ledger integrity at the end of every run.
func TestMultiCellInvariantsAcrossRandomConfigs(t *testing.T) {
	rng := sim.NewRNG(996)
	factories := []func(*cell.Network) (cac.Controller, error){
		FACSFactory(),
		SCCFactory(),
		func(*cell.Network) (cac.Controller, error) { return cac.CompleteSharing{}, nil },
	}
	for trial := 0; trial < 12; trial++ {
		policy := HandoffPhysical
		if rng.Intn(2) == 0 {
			policy = HandoffControlled
		}
		cfg := MultiCellConfig{
			NewController:  factories[rng.Intn(len(factories))],
			Rings:          1 + rng.Intn(2),
			NumRequests:    20 + rng.Intn(80),
			WindowSec:      80 + rng.Float64()*200,
			MeanHoldingSec: 40 + rng.Float64()*160,
			SpeedKmh:       Span{Min: 5, Max: 30 + rng.Float64()*90},
			HandoffPolicy:  policy,
			Seed:           int64(trial * 7),
		}
		res, err := RunMultiCell(cfg)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Completed+res.HandoffDrops != res.Accepted {
			t.Fatalf("trial %d: conservation broken: accepted=%d completed=%d dropped=%d",
				trial, res.Accepted, res.Completed, res.HandoffDrops)
		}
		if res.HandoffDrops > res.HandoffAttempts {
			t.Fatalf("trial %d: drops %d > attempts %d", trial, res.HandoffDrops, res.HandoffAttempts)
		}
		if res.Requested > cfg.NumRequests {
			t.Fatalf("trial %d: requested %d > generated %d", trial, res.Requested, cfg.NumRequests)
		}
		if u := res.Utilization.Max(); u > 1 {
			t.Fatalf("trial %d: utilization %v > 1", trial, u)
		}
	}
}
