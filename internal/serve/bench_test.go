package serve

import (
	"sync"
	"testing"

	"facs/internal/cac"
	"facs/internal/cell"
	"facs/internal/facs"
)

// benchSetup builds the shared fixture: a one-ring network, the exact
// FACS (stateless, so iterations never drift), and a request pool.
func benchSetup(b *testing.B) (*cell.Network, cac.Controller, []cac.Request) {
	b.Helper()
	net, err := cell.NewNetwork(cell.NetworkConfig{Rings: 1})
	if err != nil {
		b.Fatal(err)
	}
	return net, facs.Must(), genRequests(b, net, 42, 4096)
}

// BenchmarkStreamingServe compares the micro-batched service against
// the raw batch pipeline it wraps. The acceptance bar from the
// streaming-service issue: at batch >= 64, the service stays within 2x
// of raw DecideBatch throughput (the wave path is within a few percent;
// the per-request Submit path additionally pays one channel round trip
// per request).
func BenchmarkStreamingServe(b *testing.B) {
	const batch = 64

	b.Run("raw-batch64", func(b *testing.B) {
		_, ctrl, reqs := benchSetup(b)
		b.ResetTimer()
		for done := 0; done < b.N; done += batch {
			off := done % (len(reqs) - batch)
			if _, err := cac.DecideAll(ctrl, reqs[off:off+batch]); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("service-wave64", func(b *testing.B) {
		_, ctrl, reqs := benchSetup(b)
		s, err := New(Config{Controller: ctrl, MaxBatch: batch})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		b.ResetTimer()
		for done := 0; done < b.N; done += batch {
			off := done % (len(reqs) - batch)
			if _, err := s.SubmitAll(reqs[off : off+batch]); err != nil {
				b.Fatal(err)
			}
		}
	})

	// One blocked submitter per batch slot: the closed-loop window must
	// be at least MaxBatch wide for full batches to form; fewer clients
	// leave the batcher waiting out MaxDelay on every round.
	b.Run("service-submit-64clients", func(b *testing.B) {
		_, ctrl, reqs := benchSetup(b)
		s, err := New(Config{Controller: ctrl, MaxBatch: batch})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		const clients = batch
		b.ResetTimer()
		var wg sync.WaitGroup
		for w := 0; w < clients; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < b.N; i += clients {
					if resp := s.Submit(reqs[i%len(reqs)]); resp.Err != nil {
						b.Error(resp.Err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
	})
}
