package serve

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"facs/internal/cac"
	"facs/internal/cell"
	"facs/internal/facs"
	"facs/internal/geo"
	"facs/internal/gps"
	"facs/internal/sim"
	"facs/internal/traffic"
)

// testNetwork builds a fresh one-ring network with some deterministic
// pre-admitted load.
func testNetwork(t *testing.T, seed int64) *cell.Network {
	t.Helper()
	net, err := cell.NewNetwork(cell.NetworkConfig{Rings: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewStream(seed, "serve-preload")
	stations := net.Stations()
	id := 900000
	for _, bs := range stations {
		for bs.Used() < bs.Capacity()/2 {
			class := traffic.DefaultMix().Sample(rng)
			id++
			if err := bs.Admit(cell.Call{ID: id, Class: class, BU: class.BandwidthUnits()}); err != nil {
				break
			}
		}
	}
	return net
}

// genRequests samples n deterministic admission requests against net.
// Requests are pure functions of (seed, i) except for the station
// pointer, so two equal networks yield structurally identical streams.
func genRequests(t testing.TB, net *cell.Network, seed int64, n int) []cac.Request {
	t.Helper()
	rng := sim.NewStream(seed, "serve-reqs")
	stations := net.Stations()
	out := make([]cac.Request, n)
	for i := range out {
		bs := stations[rng.Intn(len(stations))]
		class := traffic.DefaultMix().Sample(rng)
		est := gps.Estimate{
			Pos: geo.Point{
				X: bs.Pos().X + sim.Uniform(rng, -1000, 1000),
				Y: bs.Pos().Y + sim.Uniform(rng, -1000, 1000),
			},
			HeadingDeg: sim.Uniform(rng, -180, 180),
			SpeedKmh:   sim.Uniform(rng, 0, 110),
		}
		out[i] = cac.Request{
			Call:    cell.Call{ID: i + 1, Class: class, BU: class.BandwidthUnits()},
			Station: bs,
			Obs:     gps.Observe(est, bs.Pos()),
			Est:     est,
			Handoff: i%7 == 0,
			Now:     float64(i),
		}
	}
	return out
}

// TestStreamedMatchesDecideAll is the determinism acceptance test: with
// Commit off, decisions streamed through the service — concurrently,
// with arbitrary timing-dependent micro-batch boundaries — must be
// byte-identical to the same requests run through cac.DecideAll
// sequentially.
func TestStreamedMatchesDecideAll(t *testing.T) {
	net := testNetwork(t, 3)
	ctrl := facs.Must()
	reqs := genRequests(t, net, 17, 400)

	want, err := cac.DecideAll(ctrl, reqs)
	if err != nil {
		t.Fatal(err)
	}

	for _, cfg := range []Config{
		{Controller: ctrl, MaxBatch: 1},
		{Controller: ctrl, MaxBatch: 16, MaxDelay: 50 * time.Microsecond},
		{Controller: ctrl, MaxBatch: 64, MaxDelay: 2 * time.Millisecond},
		{Controller: ctrl, MaxBatch: 256, MaxDelay: -1}, // greedy
	} {
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]cac.Decision, len(reqs))
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(reqs); i += 8 {
					resp := s.Submit(reqs[i])
					if resp.Err != nil {
						t.Errorf("request %d failed: %v", i, resp.Err)
						return
					}
					got[i] = resp.Decision
				}
			}(w)
		}
		wg.Wait()
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("MaxBatch=%d: request %d streamed as %v, DecideAll says %v",
					cfg.MaxBatch, i, got[i], want[i])
			}
		}
		st := s.Stats()
		if st.Decided != int64(len(reqs)) || st.Submitted != st.Decided {
			t.Fatalf("MaxBatch=%d: stats lost requests: %+v", cfg.MaxBatch, st)
		}
		if st.MaxBatch > cfg.MaxBatch && cfg.MaxBatch > 0 {
			t.Fatalf("MaxBatch=%d: realised batch %d exceeds cap", cfg.MaxBatch, st.MaxBatch)
		}
	}
}

// replayWave is the sequential oracle for Commit-mode wave semantics:
// chunk at maxBatch, decide each chunk via DecideAll, then commit the
// accepted calls exactly as the service does.
func replayWave(t *testing.T, ctrl cac.Controller, reqs []cac.Request, maxBatch int) []Response {
	t.Helper()
	obs, _ := ctrl.(cac.Observer)
	out := make([]Response, len(reqs))
	for lo := 0; lo < len(reqs); lo += maxBatch {
		hi := lo + maxBatch
		if hi > len(reqs) {
			hi = len(reqs)
		}
		chunk := reqs[lo:hi]
		decisions, err := cac.DecideAll(ctrl, chunk)
		if err != nil {
			t.Fatal(err)
		}
		for i, d := range decisions {
			out[lo+i] = Response{Decision: d}
			if !d.Accepted() {
				continue
			}
			call := chunk[i].Call
			call.AdmittedAt = chunk[i].Now
			call.Handoff = chunk[i].Handoff
			if err := chunk[i].Station.Admit(call); err != nil {
				out[lo+i].Err = err
				continue
			}
			out[lo+i].Committed = true
			if obs != nil {
				obs.OnAdmit(chunk[i])
			}
		}
	}
	return out
}

// TestCommitWavesMatchSequentialReplay pins Commit-mode determinism:
// waves chunk at MaxBatch boundaries only, so the streamed closed loop
// equals a sequential replay with the same chunking, and two identical
// runs agree exactly.
func TestCommitWavesMatchSequentialReplay(t *testing.T) {
	const maxBatch = 32
	run := func() ([]Response, *cell.Network) {
		net := testNetwork(t, 5)
		s, err := New(Config{Controller: cac.CompleteSharing{}, MaxBatch: maxBatch, Commit: true})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		var all []Response
		reqs := genRequests(t, net, 23, 300)
		for lo := 0; lo < len(reqs); lo += 100 { // three waves
			resp, err := s.SubmitAll(reqs[lo : lo+100])
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, resp...)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		return all, net
	}

	got1, net1 := run()
	got2, _ := run()

	// Oracle on a third identical network.
	net3 := testNetwork(t, 5)
	reqs := genRequests(t, net3, 23, 300)
	var want []Response
	for lo := 0; lo < len(reqs); lo += 100 {
		want = append(want, replayWave(t, cac.CompleteSharing{}, reqs[lo:lo+100], maxBatch)...)
	}

	for i := range want {
		if got1[i].Decision != want[i].Decision || got1[i].Committed != want[i].Committed {
			t.Fatalf("request %d: streamed (%v, committed=%v), oracle (%v, committed=%v)",
				i, got1[i].Decision, got1[i].Committed, want[i].Decision, want[i].Committed)
		}
		if got1[i].Decision != got2[i].Decision || got1[i].Committed != got2[i].Committed {
			t.Fatalf("request %d: two identical runs disagree", i)
		}
	}
	// The service's committed state must match the oracle's network.
	for i, bs := range net1.Stations() {
		if bs.Used() != net3.Stations()[i].Used() {
			t.Fatalf("station %d: streamed occupancy %d, oracle %d", i, bs.Used(), net3.Stations()[i].Used())
		}
	}
}

// scriptController records, in loop-goroutine order, every controller
// interaction; Decide accepts even IDs.
type scriptController struct {
	events []string
}

func (c *scriptController) Name() string { return "script" }

func (c *scriptController) Decide(req cac.Request) (cac.Decision, error) {
	c.events = append(c.events, fmt.Sprintf("decide:%d", req.Call.ID))
	if req.Call.ID%2 == 0 {
		return cac.Accept, nil
	}
	return cac.Reject, nil
}

func (c *scriptController) OnAdmit(req cac.Request) {
	c.events = append(c.events, fmt.Sprintf("admit:%d", req.Call.ID))
}

func (c *scriptController) OnRelease(callID int, _ *cell.BaseStation, _ float64) {
	c.events = append(c.events, fmt.Sprintf("release:%d", callID))
}

func (c *scriptController) OnTick(now float64) {
	c.events = append(c.events, fmt.Sprintf("tick:%g", now))
}

func (c *scriptController) OnStateUpdate(callID int, _ gps.Estimate, _ *cell.BaseStation) {
	c.events = append(c.events, fmt.Sprintf("update:%d", callID))
}

// TestOpsSerializedWithDecisions pins the ordering contract: ticks,
// releases and state updates enqueued between requests execute after
// every earlier request and before every later one.
func TestOpsSerializedWithDecisions(t *testing.T) {
	bs, err := cell.NewBaseStation(geo.Hex{}, geo.Point{}, 40)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := &scriptController{}
	s, err2 := New(Config{Controller: ctrl, MaxBatch: 8, Commit: true})
	if err2 != nil {
		t.Fatal(err2)
	}

	mkReq := func(id int) cac.Request {
		return cac.Request{
			Call:    cell.Call{ID: id, Class: traffic.Voice, BU: 5},
			Station: bs,
			Obs:     gps.Observation{SpeedKmh: 10, AngleDeg: 0, DistanceKm: 1},
		}
	}

	// Sequential submission from one goroutine fixes the queue order.
	if r := s.Submit(mkReq(1)); r.Err != nil {
		t.Fatal(r.Err)
	}
	if r := s.Submit(mkReq(2)); r.Err != nil {
		t.Fatal(r.Err)
	}
	if err := s.Tick(100); err != nil {
		t.Fatal(err)
	}
	if r := s.Submit(mkReq(4)); r.Err != nil {
		t.Fatal(r.Err)
	}
	if err := s.UpdateState(4, gps.Estimate{}, bs); err != nil {
		t.Fatal(err)
	}
	if err := s.Release(4, bs, 101); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	want := []string{
		"decide:1", "decide:2", "admit:2",
		"tick:100",
		"decide:4", "admit:4",
		"update:4",
		"release:4",
	}
	if len(ctrl.events) != len(want) {
		t.Fatalf("events = %v, want %v", ctrl.events, want)
	}
	for i := range want {
		if ctrl.events[i] != want[i] {
			t.Fatalf("event %d = %q, want %q (full: %v)", i, ctrl.events[i], want[i], ctrl.events)
		}
	}
	if bs.NumCalls() != 1 { // call 2 admitted, call 4 admitted then released
		t.Fatalf("station carries %d calls, want 1", bs.NumCalls())
	}
	st := s.Stats()
	if st.Ticks != 1 || st.Ops != 3 || st.Committed != 2 {
		t.Fatalf("stats = %+v, want 1 tick, 3 ops, 2 committed", st)
	}
}

// TestMicroBatchCoalesces verifies that queued singles are decided in
// one batch once the loop is free, and that the cap is respected.
func TestMicroBatchCoalesces(t *testing.T) {
	net := testNetwork(t, 2)
	bs := net.Stations()[0]
	ctrl := &scriptController{}
	s, err := New(Config{Controller: ctrl, MaxBatch: 8, Queue: 64, MaxDelay: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Hold the loop hostage so submissions pile up in the queue.
	gate := make(chan struct{})
	entered := make(chan struct{})
	go s.Do(func(cac.Controller) { close(entered); <-gate })
	<-entered

	const n = 8
	var wg sync.WaitGroup
	responses := make([]Response, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			responses[i] = s.Submit(cac.Request{
				Call:    cell.Call{ID: 100 + i, Class: traffic.Text, BU: 1},
				Station: bs,
				Obs:     gps.Observation{SpeedKmh: 5, AngleDeg: 0, DistanceKm: 1},
			})
		}(i)
	}
	// Wait until all n sit in the intake queue, then release the loop:
	// the greedy drain must take them as one batch.
	for len(s.in) < n {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	st := s.Stats()
	if st.MaxBatch != n {
		t.Fatalf("queued singles should coalesce into one batch of %d, got max batch %d (stats %+v)", n, st.MaxBatch, st)
	}
	for i, r := range responses {
		if r.Err != nil {
			t.Fatalf("request %d: %v", i, r.Err)
		}
		if r.Batch != n {
			t.Fatalf("request %d reports batch %d, want %d", i, r.Batch, n)
		}
		if r.Latency <= 0 {
			t.Fatalf("request %d reports non-positive latency %v", i, r.Latency)
		}
	}
}

// errController fails every decision.
type errController struct{}

func (errController) Name() string { return "err" }
func (errController) Decide(cac.Request) (cac.Decision, error) {
	return cac.Reject, errors.New("boom")
}

func TestDecisionErrorFansOut(t *testing.T) {
	net := testNetwork(t, 4)
	bs := net.Stations()[0]
	s, err := New(Config{Controller: errController{}, MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	req := cac.Request{Call: cell.Call{ID: 1, Class: traffic.Text, BU: 1}, Station: bs}
	resp := s.Submit(req)
	if resp.Err == nil || resp.Decision != cac.Reject {
		t.Fatalf("expected failed reject, got %+v", resp)
	}
	waveResp, err := s.SubmitAll([]cac.Request{req, req})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range waveResp {
		if r.Err == nil || r.Decision != cac.Reject {
			t.Fatalf("wave response %d should carry the decision error, got %+v", i, r)
		}
	}
	if st := s.Stats(); st.Rejected != 3 || st.Decided != 3 {
		t.Fatalf("stats = %+v, want 3 failed rejects", st)
	}
}

func TestCommitOverflowWithinBatch(t *testing.T) {
	// One station with room for exactly one video call; a wave of three
	// video requests is decided against the same snapshot, so all three
	// are accepted by complete sharing but only one can commit.
	bs, err := cell.NewBaseStation(geo.Hex{}, geo.Point{}, 10)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Controller: cac.CompleteSharing{}, MaxBatch: 8, Commit: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	reqs := make([]cac.Request, 3)
	for i := range reqs {
		reqs[i] = cac.Request{Call: cell.Call{ID: i + 1, Class: traffic.Video, BU: 10}, Station: bs}
	}
	resp, err := s.SubmitAll(reqs)
	if err != nil {
		t.Fatal(err)
	}
	var committed, commitErrs int
	for _, r := range resp {
		if !r.Decision.Accepted() {
			t.Fatalf("complete sharing should accept against the empty snapshot, got %+v", r)
		}
		if r.Committed {
			committed++
		} else if r.Err != nil {
			commitErrs++
		}
	}
	if committed != 1 || commitErrs != 2 {
		t.Fatalf("want 1 committed + 2 commit errors, got %d + %d", committed, commitErrs)
	}
	if st := s.Stats(); st.CommitErrs != 2 || st.Committed != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if bs.Used() != 10 {
		t.Fatalf("station used %d BU, want 10", bs.Used())
	}
}

func TestCloseSemantics(t *testing.T) {
	net := testNetwork(t, 6)
	bs := net.Stations()[0]
	s, err := New(Config{Controller: cac.CompleteSharing{}, MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	req := cac.Request{Call: cell.Call{ID: 1, Class: traffic.Text, BU: 1}, Station: bs}
	if resp := s.Submit(req); resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if resp := s.Submit(req); !errors.Is(resp.Err, ErrClosed) {
		t.Fatalf("submit after close: %+v, want ErrClosed", resp)
	}
	if _, err := s.SubmitAll([]cac.Request{req}); !errors.Is(err, ErrClosed) {
		t.Fatalf("wave after close: %v, want ErrClosed", err)
	}
	if err := s.Flush(); !errors.Is(err, ErrClosed) {
		t.Fatalf("flush after close: %v, want ErrClosed", err)
	}
}

func TestConcurrentMixedTrafficUnderRace(t *testing.T) {
	// Hammer the service from many goroutines with singles, waves and
	// ops simultaneously; the -race build verifies the synchronization,
	// and the drained stats must balance.
	net := testNetwork(t, 8)
	ctrl, err := cac.NewGuardChannel(8)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Controller: ctrl, MaxBatch: 16, MaxDelay: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	reqs := genRequests(t, net, 99, 240)
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := w; i < len(reqs); i += 6 {
				switch rng.Intn(3) {
				case 0:
					if resp := s.Submit(reqs[i]); resp.Err != nil {
						t.Errorf("submit: %v", resp.Err)
					}
				case 1:
					if _, err := s.SubmitAll(reqs[i : i+1]); err != nil {
						t.Errorf("wave: %v", err)
					}
				default:
					if resp := s.Submit(reqs[i]); resp.Err != nil {
						t.Errorf("submit: %v", resp.Err)
					}
					if err := s.Tick(float64(i)); err != nil {
						t.Errorf("tick: %v", err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Decided != int64(len(reqs)) || st.Accepted+st.Rejected != st.Decided {
		t.Fatalf("unbalanced stats after drain: %+v", st)
	}
}

// TestLatencyQuantiles covers the power-of-two histogram: bucket
// assignment, interpolation and the service-side accounting.
func TestLatencyQuantiles(t *testing.T) {
	for _, tc := range []struct {
		lat  time.Duration
		want int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {1023, 10}, {1024, 11},
		{time.Duration(1) << 62, 63},
	} {
		if got := latencyBucket(tc.lat); got != tc.want {
			t.Errorf("latencyBucket(%d) = %d, want %d", tc.lat, got, tc.want)
		}
	}

	// A synthetic histogram: 90 requests in [256, 512) ns, 10 in
	// [64Ki, 128Ki) ns. The median must land in the low bucket, the
	// p99 in the high one, and quantiles must be monotone.
	var st Stats
	st.LatencyHist[9] = 90
	st.LatencyHist[17] = 10
	st.MaxLatency = 100 * time.Microsecond
	if p50 := st.P50Latency(); p50 < 256 || p50 >= 512 {
		t.Fatalf("p50 = %v, want within [256ns, 512ns)", p50)
	}
	if p99 := st.P99Latency(); p99 < 1<<16 || p99 >= 1<<17 {
		t.Fatalf("p99 = %v, want within [64Ki ns, 128Ki ns)", p99)
	}
	if st.P50Latency() > st.LatencyQuantile(0.9) || st.LatencyQuantile(0.9) > st.P99Latency() {
		t.Fatalf("quantiles not monotone: p50 %v p90 %v p99 %v",
			st.P50Latency(), st.LatencyQuantile(0.9), st.P99Latency())
	}
	if (Stats{}).P99Latency() != 0 {
		t.Fatalf("empty histogram should quantile to 0")
	}

	// End to end: a drained service's histogram accounts every decided
	// request, and its quantiles are bounded by the max.
	net := testNetwork(t, 5)
	ctrl, err := cac.NewGuardChannel(8)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Controller: ctrl, MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	reqs := genRequests(t, net, 31, 200)
	if _, err := s.SubmitAll(reqs[:120]); err != nil {
		t.Fatal(err)
	}
	for _, r := range reqs[120:] {
		if resp := s.Submit(r); resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	got := s.Stats()
	var total int64
	for _, n := range got.LatencyHist {
		total += n
	}
	if total != got.Decided {
		t.Fatalf("histogram holds %d samples, want %d decided", total, got.Decided)
	}
	if got.P50Latency() > got.P99Latency() || got.P99Latency() > 2*got.MaxLatency {
		t.Fatalf("implausible quantiles: p50 %v p99 %v max %v",
			got.P50Latency(), got.P99Latency(), got.MaxLatency)
	}
	if !strings.Contains(got.String(), "p50") || !strings.Contains(got.String(), "p99") {
		t.Fatalf("summary misses percentiles: %s", got)
	}
}

// TestSubmitAllIntoMatchesSubmitAll pins the buffer-reuse wave path:
// SubmitAllInto fills a caller-provided response buffer with exactly
// the responses SubmitAll would have allocated, rejects short buffers,
// and leaves slots beyond len(reqs) untouched.
func TestSubmitAllIntoMatchesSubmitAll(t *testing.T) {
	guard, err := cac.NewGuardChannel(4)
	if err != nil {
		t.Fatal(err)
	}
	netA := testNetwork(t, 5)
	netB := testNetwork(t, 5)
	a, err := New(Config{Controller: guard, MaxBatch: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := New(Config{Controller: guard, MaxBatch: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	reqsA := genRequests(t, netA, 77, 100)
	reqsB := genRequests(t, netB, 77, 100)
	want, err := a.SubmitAll(reqsA)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]Response, len(reqsB)+8)
	sentinel := Response{Batch: -99}
	buf[len(reqsB)] = sentinel
	if err := b.SubmitAllInto(reqsB, buf); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i].Decision != buf[i].Decision || want[i].Committed != buf[i].Committed ||
			want[i].Batch != buf[i].Batch {
			t.Fatalf("response %d: SubmitAll %+v, SubmitAllInto %+v", i, want[i], buf[i])
		}
	}
	if buf[len(reqsB)] != sentinel {
		t.Fatal("SubmitAllInto wrote past len(reqs)")
	}
	if err := b.SubmitAllInto(reqsB, make([]Response, len(reqsB)-1)); err == nil {
		t.Fatal("short response buffer should error")
	}
	if err := b.SubmitAllInto(nil, nil); err != nil {
		t.Fatalf("empty wave: %v", err)
	}
}
