package serve

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// histStats builds a Stats whose histogram and MaxLatency are
// consistent with the given latency samples, the way noteLatency would.
func histStats(samples []time.Duration) Stats {
	var s Stats
	for _, lat := range samples {
		s.LatencyHist[latencyBucket(lat)]++
		if lat > s.MaxLatency {
			s.MaxLatency = lat
		}
	}
	s.Decided = int64(len(samples))
	return s
}

// coveringBucket returns the [lo, hi] bounds of the histogram bucket
// that covers quantile q — the bucket LatencyQuantile interpolates in.
func coveringBucket(s Stats, q float64) (lo, hi int64) {
	var total int64
	for _, n := range s.LatencyHist {
		total += n
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, n := range s.LatencyHist {
		if n == 0 {
			continue
		}
		seen += n
		if seen < rank {
			continue
		}
		lo, hi = 0, 1
		if i > 0 {
			lo = int64(1) << (i - 1)
			if i == LatencyBuckets-1 {
				hi = math.MaxInt64
			} else {
				hi = lo * 2
			}
		}
		return lo, hi
	}
	return 0, 0
}

// randomLatencies draws n samples spread across the histogram's whole
// magnitude range, including the extremes the top and bottom buckets
// cover.
func randomLatencies(rng *rand.Rand, n int) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		switch rng.Intn(16) {
		case 0:
			out[i] = 0
		case 1:
			out[i] = time.Duration(math.MaxInt64) // bucket 63
		default:
			out[i] = time.Duration(rng.Int63() >> uint(rng.Intn(62)))
		}
	}
	return out
}

// TestLatencyQuantileTopBucketRegression pins the int64 overflow fix:
// with counts in bucket 63 the upper edge 2*2^62 used to wrap negative,
// dragging the interpolated estimate BELOW the bucket floor. Any
// quantile covered by bucket 63 must now land in [2^62, MaxLatency].
func TestLatencyQuantileTopBucketRegression(t *testing.T) {
	var s Stats
	s.LatencyHist[LatencyBuckets-1] = 5
	s.MaxLatency = time.Duration(math.MaxInt64)
	floor := time.Duration(1) << (LatencyBuckets - 2)
	for _, q := range []float64{0, 0.01, 0.5, 0.99, 1} {
		got := s.LatencyQuantile(q)
		if got <= 0 {
			t.Fatalf("q=%v: non-positive estimate %v from a bucket-63 histogram", q, got)
		}
		if got < floor || got > s.MaxLatency {
			t.Fatalf("q=%v: estimate %v outside [%v, %v]", q, got, floor, s.MaxLatency)
		}
	}
	// The exact-max clamp still applies on top of the overflow fix.
	s.MaxLatency = floor + 12345
	if got := s.LatencyQuantile(1); got != s.MaxLatency {
		t.Fatalf("estimate %v not clamped to the exact max %v", got, s.MaxLatency)
	}
}

// TestLatencyQuantileProperties is the estimator's property suite over
// randomized consistent histograms: monotone non-decreasing in q, never
// above the exact MaxLatency, never below the covering bucket's floor.
func TestLatencyQuantileProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	qs := []float64{0, 0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1}
	for trial := 0; trial < 200; trial++ {
		s := histStats(randomLatencies(rng, 1+rng.Intn(400)))
		prev := time.Duration(-1)
		for _, q := range qs {
			got := s.LatencyQuantile(q)
			if got < prev {
				t.Fatalf("trial %d: estimate not monotone: q=%v gives %v after %v", trial, q, got, prev)
			}
			prev = got
			if got > s.MaxLatency {
				t.Fatalf("trial %d: q=%v estimate %v exceeds max %v", trial, q, got, s.MaxLatency)
			}
			if lo, _ := coveringBucket(s, q); got < time.Duration(lo) {
				t.Fatalf("trial %d: q=%v estimate %v below covering bucket floor %v", trial, q, got, lo)
			}
		}
	}
}

// TestLatencyQuantileMergeBounded covers the sharded engine's
// aggregation path: summing two histograms field-wise (MaxLatency takes
// the maximum, as Engine.Stats does) must give estimates between the
// two inputs' extremes — at the histogram's bucket granularity, the
// merged covering bucket provably lies between the inputs' covering
// buckets, so every merged estimate stays within [min of the inputs'
// bucket floors, max of the inputs' bucket ceilings].
func TestLatencyQuantileMergeBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	qs := []float64{0, 0.01, 0.1, 0.5, 0.9, 0.99, 1}
	for trial := 0; trial < 200; trial++ {
		a := histStats(randomLatencies(rng, 1+rng.Intn(300)))
		b := histStats(randomLatencies(rng, 1+rng.Intn(300)))
		merged := a
		for i := range merged.LatencyHist {
			merged.LatencyHist[i] += b.LatencyHist[i]
		}
		if b.MaxLatency > merged.MaxLatency {
			merged.MaxLatency = b.MaxLatency
		}
		for _, q := range qs {
			loA, hiA := coveringBucket(a, q)
			loB, hiB := coveringBucket(b, q)
			lo, hi := min(loA, loB), max(hiA, hiB)
			got := merged.LatencyQuantile(q)
			if got < time.Duration(lo) || got > time.Duration(hi) {
				t.Fatalf("trial %d: q=%v merged estimate %v outside input bucket span [%v, %v] (A [%d,%d], B [%d,%d])",
					trial, q, got, lo, hi, loA, hiA, loB, hiB)
			}
		}
	}
}
