package serve_test

import (
	"fmt"

	"facs/internal/cac"
	"facs/internal/cell"
	"facs/internal/geo"
	"facs/internal/serve"
	"facs/internal/traffic"
)

// ExampleService streams a wave of admission requests through the
// micro-batcher. With Commit enabled the service owns station state:
// accepted calls are allocated before the next batch is decided, so
// the third video call no longer fits.
func ExampleService() {
	bs, err := cell.NewBaseStation(geo.Hex{}, geo.Point{}, 25)
	if err != nil {
		panic(err)
	}
	svc, err := serve.New(serve.Config{
		Controller: cac.CompleteSharing{},
		MaxBatch:   2, // two requests per micro-batch
		Commit:     true,
	})
	if err != nil {
		panic(err)
	}
	defer svc.Close()

	reqs := make([]cac.Request, 3)
	for i := range reqs {
		reqs[i] = cac.Request{
			Call:    cell.Call{ID: i + 1, Class: traffic.Video, BU: 10},
			Station: bs,
		}
	}
	responses, err := svc.SubmitAll(reqs)
	if err != nil {
		panic(err)
	}
	for i, r := range responses {
		fmt.Printf("call %d: %s (batch of %d)\n", i+1, r.Decision, r.Batch)
	}
	if err := svc.Close(); err != nil {
		panic(err)
	}
	stats := svc.Stats()
	fmt.Printf("decided %d in %d batches, committed %d\n", stats.Decided, stats.Batches, stats.Committed)
	// Output:
	// call 1: accept (batch of 2)
	// call 2: accept (batch of 2)
	// call 3: reject (batch of 1)
	// decided 3 in 2 batches, committed 2
}
