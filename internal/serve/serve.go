package serve

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"facs/internal/cac"
	"facs/internal/cell"
	"facs/internal/gps"
)

// Defaults applied by New when the corresponding Config field is zero.
const (
	// DefaultMaxBatch is the micro-batch size cap.
	DefaultMaxBatch = 64
	// DefaultMaxDelay is how long the batcher waits for more requests
	// after the first pending one before deciding a short batch.
	DefaultMaxDelay = 200 * time.Microsecond
)

// ErrClosed is returned by Submit/SubmitAll/ops after Close.
var ErrClosed = errors.New("serve: service is closed")

// Config parameterises a Service.
type Config struct {
	// Controller renders the admission decisions. Controllers with a
	// native batch path (cac.BatchController) are amortised through
	// cac.DecideAll; any other controller is decided sequentially
	// inside the loop with identical outcomes. Required.
	Controller cac.Controller

	// MaxBatch caps how many requests one DecideBatch call may carry
	// (default DefaultMaxBatch). Waves larger than MaxBatch are split
	// into deterministic MaxBatch-sized chunks.
	MaxBatch int

	// MaxDelay bounds how long the first pending request may wait for
	// the batch to fill (default DefaultMaxDelay). Zero after defaults
	// are applied is impossible; a negative value selects greedy mode:
	// never wait, batch only what is already queued.
	MaxDelay time.Duration

	// Queue is the intake channel capacity (default 4 x MaxBatch).
	// Submitters block once it is full, providing natural backpressure.
	Queue int

	// Commit makes the service the owner of station state: an accepted
	// request is immediately allocated on its station (cell.Admit) and
	// observers (cac.Observer) are notified, before any later request
	// or op is processed; Release deallocates. Without Commit the
	// service never mutates stations — decisions are rendered against
	// whatever state the caller maintains, and arbitrary micro-batch
	// boundaries provably cannot change any outcome.
	Commit bool
}

// Response is the outcome of one streamed admission request.
type Response struct {
	// Decision is the controller's verdict.
	Decision cac.Decision
	// Committed reports that the service allocated the call on its
	// station (Commit mode only). An accepted request can fail to
	// commit when earlier accepts in its own micro-batch — decided
	// against the same snapshot, per the DecideBatch contract — already
	// claimed the remaining bandwidth; Err then carries the cause.
	Committed bool
	// Err is the decision or commit error, if any. A decision error
	// forces Decision to Reject.
	Err error
	// Latency is the time from enqueue to decided (including commit).
	Latency time.Duration
	// Batch is the size of the micro-batch that carried the request.
	Batch int
}

// LatencyBuckets is the number of power-of-two histogram buckets in
// Stats.LatencyHist: bucket i counts latencies in [2^(i-1), 2^i)
// nanoseconds (bucket 0 holds sub-nanosecond measurements), which spans
// every representable time.Duration.
const LatencyBuckets = 64

// Stats is a point-in-time snapshot of the service counters.
type Stats struct {
	// Submitted counts requests accepted into the intake queue;
	// Decided counts requests answered (equal once drained).
	Submitted, Decided int64
	// Accepted / Rejected split Decided by outcome; Committed counts
	// accepted requests actually allocated (Commit mode).
	Accepted, Rejected, Committed int64
	// Batches counts DecideBatch calls; MaxBatch is the largest batch
	// realised; Waves counts SubmitAll calls.
	Batches, Waves int64
	MaxBatch       int
	// Ops counts serialized control operations (ticks, releases, state
	// updates, Do barriers); Ticks the OnTick deliveries among them.
	Ops, Ticks int64
	// CommitErrs counts accepted-but-uncommitted requests; OpErrs
	// counts failed releases.
	CommitErrs, OpErrs int64
	// AvgLatency / MaxLatency aggregate Response.Latency over every
	// decided request.
	AvgLatency, MaxLatency time.Duration
	// LatencyHist is the per-request latency histogram over
	// power-of-two buckets (see LatencyBuckets): the source for the
	// LatencyQuantile / P50Latency / P99Latency percentiles. A wave's
	// requests complete together, so its latency weighs once per
	// request, exactly like AvgLatency. Histograms from several
	// services add field-wise, which is how the sharded engine
	// aggregates engine-level percentiles.
	LatencyHist [LatencyBuckets]int64
}

// Merge returns the field-wise aggregation of two snapshots, the merge
// the sharded engine applies across its per-shard services: counters
// sum, MaxBatch/MaxLatency take the maximum, AvgLatency is weighted by
// decided requests, and the latency histograms add bucket-wise (so the
// merged LatencyQuantile estimates hold engine-wide).
func (s Stats) Merge(o Stats) Stats {
	latSum := int64(s.AvgLatency)*s.Decided + int64(o.AvgLatency)*o.Decided
	s.Submitted += o.Submitted
	s.Decided += o.Decided
	s.Accepted += o.Accepted
	s.Rejected += o.Rejected
	s.Committed += o.Committed
	s.Batches += o.Batches
	s.Waves += o.Waves
	s.Ops += o.Ops
	s.Ticks += o.Ticks
	s.CommitErrs += o.CommitErrs
	s.OpErrs += o.OpErrs
	if o.MaxBatch > s.MaxBatch {
		s.MaxBatch = o.MaxBatch
	}
	if o.MaxLatency > s.MaxLatency {
		s.MaxLatency = o.MaxLatency
	}
	if s.Decided > 0 {
		s.AvgLatency = time.Duration(latSum / s.Decided)
	}
	for b := range o.LatencyHist {
		s.LatencyHist[b] += o.LatencyHist[b]
	}
	return s
}

// LatencyQuantile returns the latency at quantile q in [0, 1],
// estimated from the power-of-two histogram by linear interpolation
// inside the covering bucket (so the estimate is within 2x of the true
// order statistic). It returns 0 when nothing has been decided.
func (s Stats) LatencyQuantile(q float64) time.Duration {
	var total int64
	for _, n := range s.LatencyHist {
		total += n
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, n := range s.LatencyHist {
		if n == 0 {
			continue
		}
		seen += n
		if seen < rank {
			continue
		}
		lo := int64(0)
		hi := int64(1) // bucket 0: [0, 1) ns
		if i > 0 {
			lo = int64(1) << (i - 1)
			if i == LatencyBuckets-1 {
				// The top bucket's upper edge 2^63 overflows int64;
				// interpolate towards the widest representable latency
				// instead of wrapping negative (which put the estimate
				// below the bucket floor).
				hi = math.MaxInt64
			} else {
				hi = lo * 2
			}
		}
		// Interpolate by the rank's position among this bucket's counts,
		// clamped to the exact maximum (sparse buckets can otherwise
		// interpolate past it). The float comparison guards the int64
		// conversion: in the top bucket the interpolant can round up to
		// 2^63, one past MaxInt64.
		est := time.Duration(hi)
		if f := float64(lo) + float64(rank-(seen-n))/float64(n)*float64(hi-lo); f < float64(hi) {
			est = time.Duration(f)
		}
		if s.MaxLatency > 0 && est > s.MaxLatency {
			est = s.MaxLatency
		}
		return est
	}
	return s.MaxLatency
}

// P50Latency returns the median per-request latency.
func (s Stats) P50Latency() time.Duration { return s.LatencyQuantile(0.50) }

// P99Latency returns the 99th-percentile per-request latency.
func (s Stats) P99Latency() time.Duration { return s.LatencyQuantile(0.99) }

// AcceptRate returns Accepted/Decided in [0, 1] (0 when idle).
func (s Stats) AcceptRate() float64 {
	if s.Decided == 0 {
		return 0
	}
	return float64(s.Accepted) / float64(s.Decided)
}

// AvgBatch returns the mean realised micro-batch size.
func (s Stats) AvgBatch() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.Decided) / float64(s.Batches)
}

// String renders a one-line operator summary.
func (s Stats) String() string {
	return fmt.Sprintf("decided %d (%.1f%% accept) in %d batches (avg %.1f, max %d), latency avg %s p50 %s p99 %s max %s, ops %d",
		s.Decided, 100*s.AcceptRate(), s.Batches, s.AvgBatch(), s.MaxBatch,
		s.AvgLatency, s.P50Latency(), s.P99Latency(), s.MaxLatency, s.Ops)
}

// pending is one in-flight single request.
type pending struct {
	req   cac.Request
	enq   time.Time
	reply chan Response
}

// wave is one SubmitAll / SubmitAllInto call: a caller-defined batch
// that is decided as a unit, split only at deterministic MaxBatch
// boundaries. out is the response buffer the loop fills (caller-owned
// for SubmitAllInto, allocated by SubmitAll).
type wave struct {
	reqs  []cac.Request
	out   []Response
	enq   time.Time
	reply chan []Response
}

// op is one serialized control operation.
type op struct {
	fn   func(ctrl cac.Controller)
	done chan struct{} // non-nil for synchronous ops
}

// item is one intake-queue entry; exactly one field is set.
type item struct {
	single *pending
	wave   *wave
	op     *op
}

// Service is a streaming admission front end over an admission
// controller: concurrent submitters enqueue requests, a single loop
// goroutine coalesces them into micro-batches (bounded by MaxBatch and
// MaxDelay), decides each batch through cac.DecideAll, and fans the
// responses back with per-request latency. Control operations — ticks,
// releases, kinematic updates — travel the same queue and execute in
// the same goroutine, strictly ordered against decisions, so stateful
// controllers (e.g. the SCC demand ledger) keep their invariants
// without any locking of their own.
type Service struct {
	cfg  Config
	in   chan item
	done chan struct{}

	mu     sync.RWMutex // guards closed against in-flight sends
	closed bool

	// Loop-local scratch, reused across micro-batches.
	reqScratch  []cac.Request
	pendScratch []*pending
	decScratch  []cac.Decision

	submitted  atomic.Int64
	decided    atomic.Int64
	accepted   atomic.Int64
	rejected   atomic.Int64
	committed  atomic.Int64
	batches    atomic.Int64
	waves      atomic.Int64
	ops        atomic.Int64
	ticks      atomic.Int64
	commitErrs atomic.Int64
	opErrs     atomic.Int64
	maxBatch   atomic.Int64
	latSumNs   atomic.Int64
	latMaxNs   atomic.Int64
	latHist    [LatencyBuckets]atomic.Int64
}

// New validates the configuration, applies defaults and starts the
// decision loop. The returned service is live until Close.
func New(cfg Config) (*Service, error) {
	if cfg.Controller == nil {
		return nil, fmt.Errorf("serve: config needs a controller")
	}
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.MaxBatch < 1 {
		return nil, fmt.Errorf("serve: MaxBatch must be >= 1, got %d", cfg.MaxBatch)
	}
	if cfg.MaxDelay == 0 {
		cfg.MaxDelay = DefaultMaxDelay
	}
	if cfg.Queue == 0 {
		cfg.Queue = 4 * cfg.MaxBatch
	}
	if cfg.Queue < 1 {
		return nil, fmt.Errorf("serve: Queue must be >= 1, got %d", cfg.Queue)
	}
	s := &Service{
		cfg:         cfg,
		in:          make(chan item, cfg.Queue),
		done:        make(chan struct{}),
		reqScratch:  make([]cac.Request, 0, cfg.MaxBatch),
		pendScratch: make([]*pending, 0, cfg.MaxBatch),
		decScratch:  make([]cac.Decision, cfg.MaxBatch),
	}
	go s.loop()
	return s, nil
}

// Controller returns the wrapped controller. Reading mutable controller
// state concurrently with the loop is racy; use Do for a serialized
// view.
func (s *Service) Controller() cac.Controller { return s.cfg.Controller }

// send enqueues an item unless the service is closed. The read lock is
// held across the channel send so Close cannot close the intake channel
// under an in-flight submitter.
func (s *Service) send(it item) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	s.in <- it
	return nil
}

// Submit enqueues one request and blocks until its decision. It is safe
// for any number of concurrent callers; requests from one goroutine are
// decided in submission order. The decision (or error) is carried in
// the Response.
func (s *Service) Submit(req cac.Request) Response {
	return <-s.SubmitAsync(req)
}

// SubmitAsync enqueues one request and returns immediately with a
// buffered channel that will carry exactly one Response. It lets a
// single producer keep the intake queue full (and the micro-batcher
// well fed) without one blocked round trip per request; the enqueue
// order — and therefore the decision order — is the call order. After
// Close the response carries ErrClosed.
func (s *Service) SubmitAsync(req cac.Request) <-chan Response {
	p := &pending{req: req, enq: time.Now(), reply: make(chan Response, 1)} //facs:wallclock latency stamp; feeds the latency gauges only
	s.submitted.Add(1)
	if err := s.send(item{single: p}); err != nil {
		s.submitted.Add(-1)
		p.reply <- Response{Decision: cac.Reject, Err: err}
	}
	return p.reply
}

// SubmitAll enqueues a caller-defined batch (a "wave") and blocks until
// every decision is rendered, returning responses in request order. A
// wave is decided as a unit: it never coalesces with other traffic, and
// it is split only at MaxBatch boundaries — deterministically, never by
// timing — so closed-loop drivers that need reproducible outcomes
// stream waves. In Commit mode, accepted calls of one chunk are
// allocated before the next chunk is decided.
func (s *Service) SubmitAll(reqs []cac.Request) ([]Response, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	out := make([]Response, len(reqs))
	if err := s.SubmitAllInto(reqs, out); err != nil {
		return nil, err
	}
	return out, nil
}

// SubmitAllInto is SubmitAll with a caller-owned response buffer: the
// wave's responses are written into out[:len(reqs)] instead of a fresh
// slice, so closed-loop drivers (the sharded engine's scatter path, the
// metropolis wave loop) reuse one buffer across millions of waves. out
// must hold at least len(reqs) entries; outcomes are identical to
// SubmitAll in every respect. The buffer must not be read until
// SubmitAllInto returns, and is safe to reuse immediately afterwards.
//
//facs:hotpath
func (s *Service) SubmitAllInto(reqs []cac.Request, out []Response) error {
	if len(reqs) == 0 {
		return nil
	}
	if len(out) < len(reqs) {
		return fmt.Errorf("serve: response buffer too short: %d requests, %d slots", len(reqs), len(out)) //facs:alloc reject/error path; formats nothing on the steady-state wave
	}
	enq := time.Now()                                                                       //facs:wallclock latency stamp; feeds the latency gauges only
	w := &wave{reqs: reqs, out: out[:len(reqs)], enq: enq, reply: make(chan []Response, 1)} //facs:alloc one wave header and reply channel per batch, not per request; the per-request path is alloc-free
	s.submitted.Add(int64(len(reqs)))
	if err := s.send(item{wave: w}); err != nil {
		s.submitted.Add(int64(-len(reqs)))
		return err
	}
	<-w.reply
	return nil
}

// Do runs fn inside the decision loop, after every previously enqueued
// request and op has completed, and blocks until fn returns. It is the
// barrier primitive: a serialized, race-free view of the controller and
// of any station state the service commits to.
func (s *Service) Do(fn func(ctrl cac.Controller)) error {
	o := &op{fn: fn, done: make(chan struct{})}
	if err := s.send(item{op: o}); err != nil {
		return err
	}
	<-o.done
	return nil
}

// Flush blocks until everything enqueued before it has been decided.
func (s *Service) Flush() error {
	return s.Do(func(cac.Controller) {})
}

// Tick delivers cac.Ticker.OnTick(now) to the controller, serialized
// after everything already enqueued. It is asynchronous; a controller
// without time-driven state makes it a cheap no-op.
func (s *Service) Tick(now float64) error {
	t, ok := s.cfg.Controller.(cac.Ticker)
	if !ok {
		return nil
	}
	return s.send(item{op: &op{fn: func(cac.Controller) {
		t.OnTick(now)
		s.ticks.Add(1)
	}}})
}

// Release retires a carried call: in Commit mode the bandwidth is
// released on the station (a failure counts into Stats.OpErrs), and
// observer controllers are notified either way. Asynchronous, ordered
// after everything already enqueued.
func (s *Service) Release(callID int, station *cell.BaseStation, now float64) error {
	return s.send(item{op: &op{fn: func(ctrl cac.Controller) {
		if s.cfg.Commit {
			if _, err := station.Release(callID); err != nil {
				s.opErrs.Add(1)
			}
		}
		if obs, ok := ctrl.(cac.Observer); ok {
			obs.OnRelease(callID, station, now)
		}
	}}})
}

// UpdateState delivers a fresh kinematic estimate for a carried call to
// mobility-tracking controllers (cac.StateUpdater). Asynchronous,
// ordered after everything already enqueued.
func (s *Service) UpdateState(callID int, est gps.Estimate, station *cell.BaseStation) error {
	u, ok := s.cfg.Controller.(cac.StateUpdater)
	if !ok {
		return nil
	}
	return s.send(item{op: &op{fn: func(cac.Controller) {
		u.OnStateUpdate(callID, est, station)
	}}})
}

// Close stops intake, waits for the queue to drain and the loop to
// exit, then returns. Submissions racing with Close either complete
// normally or return ErrClosed; Close is idempotent.
func (s *Service) Close() error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.in)
	}
	s.mu.Unlock()
	<-s.done
	return nil
}

// Stats returns a consistent-enough snapshot of the counters: each
// field is atomically read, and after Flush (or Close) the snapshot is
// exact.
func (s *Service) Stats() Stats {
	st := Stats{
		Submitted:  s.submitted.Load(),
		Decided:    s.decided.Load(),
		Accepted:   s.accepted.Load(),
		Rejected:   s.rejected.Load(),
		Committed:  s.committed.Load(),
		Batches:    s.batches.Load(),
		Waves:      s.waves.Load(),
		MaxBatch:   int(s.maxBatch.Load()),
		Ops:        s.ops.Load(),
		Ticks:      s.ticks.Load(),
		CommitErrs: s.commitErrs.Load(),
		OpErrs:     s.opErrs.Load(),
		AvgLatency: time.Duration(safeDiv(s.latSumNs.Load(), s.decided.Load())),
		MaxLatency: time.Duration(s.latMaxNs.Load()),
	}
	for i := range s.latHist {
		st.LatencyHist[i] = s.latHist[i].Load()
	}
	return st
}

func safeDiv(sum, n int64) int64 {
	if n == 0 {
		return 0
	}
	return sum / n
}

// loop is the decision goroutine: the only place the controller is
// invoked and (in Commit mode) stations are mutated.
func (s *Service) loop() {
	defer close(s.done)
	for it := range s.in {
		for {
			var next *item
			switch {
			case it.single != nil:
				next = s.coalesce(it.single)
			case it.wave != nil:
				s.decideWave(it.wave)
			case it.op != nil:
				s.runOp(it.op)
			}
			if next == nil {
				break
			}
			it = *next
		}
	}
}

// coalesce grows a micro-batch from the first pending request until
// MaxBatch, MaxDelay after enqueue of the first request, or a
// non-single item interrupts; the batch is then decided. The
// interrupting item, if any, is returned so the loop handles it next —
// strictly after the requests that preceded it.
func (s *Service) coalesce(first *pending) *item {
	batch := append(s.pendScratch[:0], first)
	var interrupt *item
	if s.cfg.MaxDelay > 0 && s.cfg.MaxBatch > 1 {
		wait := s.cfg.MaxDelay - time.Since(first.enq) //facs:wallclock shapes batch boundaries only; the outcome contracts pin decision equality across batchings
		if wait > 0 {
			timer := time.NewTimer(wait)
		fill:
			for len(batch) < s.cfg.MaxBatch {
				select {
				case it, ok := <-s.in:
					if !ok {
						break fill
					}
					if it.single != nil {
						batch = append(batch, it.single)
					} else {
						interrupt = &it
						break fill
					}
				case <-timer.C:
					break fill
				}
			}
			timer.Stop()
		}
	}
	// Greedy tail: take whatever is already queued without waiting.
	if interrupt == nil {
	drain:
		for len(batch) < s.cfg.MaxBatch {
			select {
			case it, ok := <-s.in:
				if !ok {
					break drain
				}
				if it.single != nil {
					batch = append(batch, it.single)
				} else {
					interrupt = &it
					break drain
				}
			default:
				break drain
			}
		}
	}
	reqs := s.reqScratch[:0]
	for _, p := range batch {
		reqs = append(reqs, p.req)
	}
	err := cac.DecideAllInto(s.cfg.Controller, reqs, s.decScratch)
	s.noteBatch(len(batch))
	for i, p := range batch {
		var resp Response
		if err != nil {
			resp = s.finishErr(err, len(batch))
		} else {
			resp = s.finish(p.req, s.decScratch[i], len(batch))
		}
		resp.Latency = s.noteLatency(p.enq, 1)
		p.reply <- resp
	}
	return interrupt
}

// decideWave decides one SubmitAll batch in deterministic MaxBatch
// chunks. A chunk's decision error fails the rest of the wave.
func (s *Service) decideWave(w *wave) {
	s.waves.Add(1)
	out := w.out
	var failed error
	for lo := 0; lo < len(w.reqs); lo += s.cfg.MaxBatch {
		hi := lo + s.cfg.MaxBatch
		if hi > len(w.reqs) {
			hi = len(w.reqs)
		}
		chunk := w.reqs[lo:hi]
		if failed == nil {
			err := cac.DecideAllInto(s.cfg.Controller, chunk, s.decScratch)
			s.noteBatch(len(chunk))
			if err != nil {
				failed = err
			} else {
				for i := range chunk {
					out[lo+i] = s.finish(chunk[i], s.decScratch[i], len(chunk))
				}
			}
		}
		if failed != nil {
			for i := range chunk {
				out[lo+i] = s.finishErr(failed, len(chunk))
			}
		}
	}
	lat := s.noteLatency(w.enq, len(w.reqs))
	for i := range out {
		out[i].Latency = lat
	}
	w.reply <- out
}

// finish applies the outcome of one decided request: commit in Commit
// mode, outcome counters, and the response skeleton.
func (s *Service) finish(req cac.Request, d cac.Decision, batchSize int) Response {
	s.decided.Add(1)
	resp := Response{Decision: d, Batch: batchSize}
	if !d.Accepted() {
		s.rejected.Add(1)
		return resp
	}
	s.accepted.Add(1)
	if !s.cfg.Commit {
		return resp
	}
	call := req.Call
	call.AdmittedAt = req.Now
	call.Handoff = req.Handoff
	if err := req.Station.Admit(call); err != nil {
		// Accepted against the batch-start snapshot, but earlier
		// accepts in the same chunk exhausted the bandwidth.
		s.commitErrs.Add(1)
		resp.Err = err
		return resp
	}
	resp.Committed = true
	s.committed.Add(1)
	if obs, ok := s.cfg.Controller.(cac.Observer); ok {
		obs.OnAdmit(req)
	}
	return resp
}

// finishErr records one request failed by a batch decision error.
func (s *Service) finishErr(err error, batchSize int) Response {
	s.decided.Add(1)
	s.rejected.Add(1)
	return Response{Decision: cac.Reject, Err: err, Batch: batchSize}
}

func (s *Service) runOp(o *op) {
	o.fn(s.cfg.Controller)
	s.ops.Add(1)
	if o.done != nil {
		close(o.done)
	}
}

func (s *Service) noteBatch(n int) {
	s.batches.Add(1)
	if int64(n) > s.maxBatch.Load() {
		s.maxBatch.Store(int64(n))
	}
}

// noteLatency records one completion covering n requests (a wave's
// requests all complete together, so its latency weighs n times into
// the average).
func (s *Service) noteLatency(enq time.Time, n int) time.Duration {
	lat := time.Since(enq) //facs:wallclock latency metric only
	s.latSumNs.Add(int64(lat) * int64(n))
	if int64(lat) > s.latMaxNs.Load() {
		s.latMaxNs.Store(int64(lat))
	}
	s.latHist[latencyBucket(lat)].Add(int64(n))
	return lat
}

// latencyBucket maps a latency to its power-of-two histogram bucket:
// the index of the highest set bit, i.e. bucket i covers [2^(i-1), 2^i)
// nanoseconds.
func latencyBucket(lat time.Duration) int {
	if lat <= 0 {
		return 0
	}
	b := bits.Len64(uint64(lat))
	if b >= LatencyBuckets {
		b = LatencyBuckets - 1
	}
	return b
}
