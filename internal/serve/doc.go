// Package serve is the streaming admission front end over the batch
// pipeline: a long-lived Service that ingests a concurrent stream of
// admission requests, coalesces them into micro-batches and answers
// them through a cac.Controller — amortised by cac.DecideAll whenever
// the controller has a native batch path.
//
// # Architecture
//
// All work funnels through one intake queue into a single decision
// goroutine. Submitters (any number, any goroutine) enqueue requests
// with Submit, caller-defined batches with SubmitAll, and control
// operations — Tick, Release, UpdateState, Do — as first-class queue
// items. The loop coalesces consecutive single requests until MaxBatch
// requests are pending or MaxDelay has passed since the first one, then
// decides the micro-batch in one DecideBatch call and fans the
// responses back with per-request latency. Because decisions, commits,
// ticks and state updates all execute in that one goroutine in queue
// order, stateful controllers such as the SCC demand ledger keep their
// invariants with no locking of their own.
//
// # Decision semantics
//
// Within one micro-batch every request is decided against the same
// station snapshot (the cac.BatchController contract). Without Commit
// the service never mutates stations, so micro-batch boundaries —
// which depend on arrival timing — provably cannot change any outcome:
// a streamed run is byte-identical to cac.DecideAll over the same
// requests. With Commit the service allocates accepted calls between
// batches; timing-dependent boundaries then matter, so closed-loop
// drivers that need reproducibility submit waves (SubmitAll), which
// are chunked at deterministic MaxBatch boundaries only. The
// experiments.RunStreaming load generator and the determinism suite in
// serve_test.go pin both contracts.
//
// # Entry points
//
// New starts a Service; Submit/SubmitAll stream requests; Tick,
// Release and UpdateState forward controller lifecycle events; Do and
// Flush are serialized barriers; Stats snapshots throughput, latency
// (avg/max plus p50/p99 from a mergeable power-of-two histogram),
// accept-rate and batching counters; Close drains and stops. The
// internal/shard engine scales the Service horizontally (one per cell
// shard), and the cmd/facs-serve binary wraps either behind a
// newline-delimited JSON listener on stdin or TCP.
package serve
