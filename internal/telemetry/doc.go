// Package telemetry renders operational metrics in the Prometheus text
// exposition format (version 0.0.4) with no dependency beyond the
// standard library.
//
// Writer emits counter, gauge and histogram families with # HELP and
// # TYPE headers deduplicated per family, label escaping per the
// format, and the histogram triple (_bucket/_sum/_count) spelled out
// with an explicit le="+Inf" bucket. LatencyBuckets adapts serve's
// power-of-two nanosecond latency histogram to fixed cumulative bucket
// bounds in seconds, so scrapes aggregate across shards, processes and
// restarts. Parse is the inverse smoke check: it validates that a
// payload is well-formed exposition text (every sample preceded by its
// # TYPE, every value a float), which tests and CI use to gate the
// /metrics endpoint.
//
// The package is deliberately write-only and stateless: the serving
// binaries already maintain their counters (serve.Stats, shard.Stats,
// scc.LedgerStats, snapshot age/size/duration), so the exporter just
// snapshots and renders them per scrape instead of mirroring them into
// a second registry.
package telemetry
