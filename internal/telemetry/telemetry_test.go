package telemetry

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestWriterFamilies(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Counter("facs_decisions_total", "Admission decisions rendered.", 1234)
	w.Counter("facs_shed_total", "Requests shed at intake.", 3, Label{"class", "text"})
	w.Counter("facs_shed_total", "Requests shed at intake.", 1, Label{"class", "voice"})
	w.Gauge("facs_accept_rate", "Accepted / decided.", 0.875)
	w.Histogram("facs_decision_latency_seconds", "Decision latency.",
		[]float64{0.001, 0.01}, []uint64{5, 9, 10}, 0.042)
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	if n := strings.Count(out, "# TYPE facs_shed_total counter"); n != 1 {
		t.Fatalf("shed family header appears %d times, want 1:\n%s", n, out)
	}
	for _, want := range []string{
		"facs_decisions_total 1234\n",
		`facs_shed_total{class="text"} 3` + "\n",
		`facs_shed_total{class="voice"} 1` + "\n",
		"facs_accept_rate 0.875\n",
		`facs_decision_latency_seconds_bucket{le="0.001"} 5` + "\n",
		`facs_decision_latency_seconds_bucket{le="+Inf"} 10` + "\n",
		"facs_decision_latency_seconds_sum 0.042\n",
		"facs_decision_latency_seconds_count 10\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if n, err := Parse(buf.Bytes()); err != nil || n != 9 {
		t.Fatalf("Parse = (%d, %v), want (9, nil)", n, err)
	}
}

func TestWriterEscaping(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Gauge("m_x", "line one\nline \\two", 1, Label{"path", `C:\a "b"` + "\n"})
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `# HELP m_x line one\nline \\two`) {
		t.Errorf("help not escaped:\n%s", out)
	}
	if !strings.Contains(out, `m_x{path="C:\\a \"b\"\n"} 1`) {
		t.Errorf("label value not escaped:\n%s", out)
	}
	if _, err := Parse(buf.Bytes()); err != nil {
		t.Fatalf("Parse of escaped output: %v", err)
	}
}

func TestWriterSpecialValues(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Gauge("m_nan", "h", math.NaN())
	w.Gauge("m_inf", "h", math.Inf(1))
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	if out := buf.String(); !strings.Contains(out, "m_nan NaN\n") || !strings.Contains(out, "m_inf +Inf\n") {
		t.Fatalf("special values misrendered:\n%s", out)
	}
	if _, err := Parse(buf.Bytes()); err != nil {
		t.Fatalf("Parse: %v", err)
	}
}

func TestHistogramShapeError(t *testing.T) {
	w := NewWriter(&bytes.Buffer{})
	w.Histogram("m", "h", []float64{1, 2}, []uint64{1, 2}, 0)
	if w.Err() == nil {
		t.Fatal("mismatched bucket shape not rejected")
	}
}

// TestLatencyBuckets pins the power-of-two conversion: bucket i of the
// source histogram counts [2^(i-1), 2^i) ns, so an observation in
// source bucket i lands in every exported bucket with bound >= 2^i ns.
func TestLatencyBuckets(t *testing.T) {
	hist := make([]int64, 64)
	hist[0] = 7   // sub-nanosecond: below the exported range
	hist[12] = 10 // [2^11, 2^12) ns
	hist[30] = 3  // [2^29, 2^30) ns
	hist[60] = 2  // way above the exported range: only in +Inf
	bounds, cumulative := LatencyBuckets(hist)
	if len(bounds) != latencyBucketMax-latencyBucketMin+1 || len(cumulative) != len(bounds)+1 {
		t.Fatalf("shape: %d bounds, %d cumulative", len(bounds), len(cumulative))
	}
	if bounds[0] != float64(1<<latencyBucketMin)/1e9 {
		t.Fatalf("first bound = %v", bounds[0])
	}
	// Ascending bounds, monotone cumulative counts.
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			t.Fatalf("bounds not ascending at %d", i)
		}
		if cumulative[i] < cumulative[i-1] {
			t.Fatalf("cumulative not monotone at %d", i)
		}
	}
	// The 2^12 ns bound (index 12-latencyBucketMin) sees the sub-range
	// spill plus bucket 12; the top bound sees all but bucket 60.
	if got := cumulative[12-latencyBucketMin]; got != 17 {
		t.Fatalf("cumulative at 2^12 ns = %d, want 17", got)
	}
	if got := cumulative[len(bounds)-1]; got != 20 {
		t.Fatalf("cumulative at top bound = %d, want 20", got)
	}
	if got := cumulative[len(cumulative)-1]; got != 22 {
		t.Fatalf("total = %d, want 22", got)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"no type":      "orphan_metric 1\n",
		"bad value":    "# TYPE m gauge\nm one\n",
		"bad name":     "# TYPE m gauge\n0m 1\n",
		"bad type":     "# TYPE m matrix\nm 1\n",
		"open labels":  "# TYPE m gauge\nm{a=\"b\" 1\n",
		"bare comment": "# bogus\n",
	}
	for name, payload := range cases {
		if _, err := Parse([]byte(payload)); err == nil {
			t.Errorf("%s: Parse accepted %q", name, payload)
		}
	}
}
