package telemetry

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Label is one name="value" pair attached to a sample.
type Label struct {
	Name  string
	Value string
}

// Writer renders metrics in the Prometheus text exposition format
// (version 0.0.4). Each metric family gets its # HELP and # TYPE
// header once, on first emission; errors latch and surface from Err.
type Writer struct {
	w    io.Writer
	err  error
	seen map[string]bool
}

// NewWriter returns a Writer emitting to w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w, seen: make(map[string]bool)}
}

// Err returns the first write error, if any.
func (w *Writer) Err() error { return w.err }

func (w *Writer) printf(format string, args ...any) {
	if w.err != nil {
		return
	}
	_, w.err = fmt.Fprintf(w.w, format, args...)
}

// escapeHelp escapes backslashes and newlines for # HELP lines.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes backslashes, newlines and quotes for label values.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// formatValue renders a sample value; NaN and infinities use the
// exposition format's spellings.
func formatValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func formatLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, l.Name, escapeLabel(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

func (w *Writer) header(name, help, typ string) {
	if w.seen[name] {
		return
	}
	w.seen[name] = true
	w.printf("# HELP %s %s\n", name, escapeHelp(help))
	w.printf("# TYPE %s %s\n", name, typ)
}

// Counter emits one sample of a counter family. Repeated calls with
// the same name (and different labels) share one header.
func (w *Writer) Counter(name, help string, value float64, labels ...Label) {
	w.header(name, help, "counter")
	w.printf("%s%s %s\n", name, formatLabels(labels), formatValue(value))
}

// Gauge emits one sample of a gauge family.
func (w *Writer) Gauge(name, help string, value float64, labels ...Label) {
	w.header(name, help, "gauge")
	w.printf("%s%s %s\n", name, formatLabels(labels), formatValue(value))
}

// Histogram emits a full histogram family: one cumulative _bucket line
// per bound, the implicit le="+Inf" bucket, then _sum and _count.
// cumulative must be one element longer than bounds; its last element
// is the total observation count (the +Inf bucket).
func (w *Writer) Histogram(name, help string, bounds []float64, cumulative []uint64, sum float64) {
	if w.err != nil {
		return
	}
	if len(cumulative) != len(bounds)+1 {
		w.err = fmt.Errorf("telemetry: histogram %s has %d cumulative counts for %d bounds (want bounds+1)",
			name, len(cumulative), len(bounds))
		return
	}
	w.header(name, help, "histogram")
	for i, le := range bounds {
		w.printf("%s_bucket{le=\"%s\"} %d\n", name, formatValue(le), cumulative[i])
	}
	w.printf("%s_bucket{le=\"+Inf\"} %d\n", name, cumulative[len(bounds)])
	w.printf("%s_sum %s\n", name, formatValue(sum))
	w.printf("%s_count %d\n", name, cumulative[len(bounds)])
}

// The exported slice of serve's 64 power-of-two latency buckets:
// 2^10 ns (~1 µs) through 2^34 ns (~17 s). Latencies below the range
// fold into the first bucket (cumulative buckets absorb them by
// construction); above it they only appear in +Inf. The bounds are
// fixed so scrapes stay aggregatable across processes and restarts.
const (
	latencyBucketMin = 10
	latencyBucketMax = 34
)

// LatencyBuckets converts a power-of-two nanosecond histogram — bucket
// i counting observations in [2^(i-1), 2^i) ns, as serve.Stats
// maintains — into cumulative Prometheus buckets with upper bounds in
// seconds. The returned cumulative slice is one longer than bounds;
// its last element is the total count.
func LatencyBuckets(hist []int64) (bounds []float64, cumulative []uint64) {
	bounds = make([]float64, 0, latencyBucketMax-latencyBucketMin+1)
	cumulative = make([]uint64, 0, latencyBucketMax-latencyBucketMin+2)
	var running uint64
	for i, n := range hist {
		if n > 0 {
			running += uint64(n)
		}
		if i >= latencyBucketMin && i <= latencyBucketMax {
			bounds = append(bounds, float64(uint64(1)<<uint(i))/1e9)
			cumulative = append(cumulative, running)
		}
	}
	cumulative = append(cumulative, running)
	return bounds, cumulative
}

// Parse validates a Prometheus text exposition payload: every
// non-comment line must be a well-formed sample whose metric family
// was declared by a preceding # TYPE line. It returns the number of
// samples, or an error naming the first offending line. This is the
// scrape-smoke half of the telemetry contract, used by tests and CI.
func Parse(data []byte) (samples int, err error) {
	typed := make(map[string]string)
	for ln, line := range strings.Split(string(data), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# ") {
			fields := strings.SplitN(line[2:], " ", 3)
			if len(fields) < 3 || (fields[0] != "HELP" && fields[0] != "TYPE") {
				return samples, fmt.Errorf("line %d: malformed comment %q", ln+1, line)
			}
			if fields[0] == "TYPE" {
				switch fields[2] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return samples, fmt.Errorf("line %d: unknown metric type %q", ln+1, fields[2])
				}
				typed[fields[1]] = fields[2]
			}
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		if !validMetricName(name) {
			return samples, fmt.Errorf("line %d: invalid metric name %q", ln+1, name)
		}
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name && typed[base] == "histogram" {
				family = base
				break
			}
		}
		if _, ok := typed[family]; !ok {
			return samples, fmt.Errorf("line %d: sample %q has no preceding # TYPE", ln+1, name)
		}
		rest := line[len(name):]
		if strings.HasPrefix(rest, "{") {
			end := strings.Index(rest, "}")
			if end < 0 {
				return samples, fmt.Errorf("line %d: unterminated label set", ln+1)
			}
			rest = rest[end+1:]
		}
		value := strings.TrimSpace(rest)
		if i := strings.IndexByte(value, ' '); i >= 0 {
			// An optional timestamp may follow the value.
			value = value[:i]
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			return samples, fmt.Errorf("line %d: unparseable sample value %q", ln+1, value)
		}
		samples++
	}
	return samples, nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_' || r == ':'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}
