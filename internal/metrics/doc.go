// Package metrics provides the small statistics toolkit used by the
// simulation and the experiment harness: streaming summaries (count,
// mean, min/max without storing samples), acceptance ratios, and
// labelled X/Y series — the unit every figure regenerator produces and
// every renderer in internal/plot consumes.
//
// Entry points: Summary (Add/Mean/StdDev/CI95), Ratio
// (Observe/Percent), Series.
package metrics
