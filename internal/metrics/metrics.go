package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates streaming moments (Welford's algorithm) plus range
// statistics. The zero value is ready to use.
type Summary struct {
	n    uint64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// Count returns the number of observations.
func (s *Summary) Count() uint64 { return s.n }

// Mean returns the sample mean (0 if empty).
func (s *Summary) Mean() float64 { return s.mean }

// Variance returns the unbiased sample variance (0 with fewer than two
// observations).
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation (0 if empty).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 if empty).
func (s *Summary) Max() float64 { return s.max }

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval of the mean (0 with fewer than two observations).
func (s *Summary) CI95() float64 {
	if s.n < 2 {
		return 0
	}
	return 1.96 * s.StdDev() / math.Sqrt(float64(s.n))
}

// String implements fmt.Stringer.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g", s.n, s.Mean(), s.StdDev(), s.min, s.max)
}

// Ratio tracks a hit count over a total count, e.g. accepted over
// requested calls. The zero value is ready to use.
type Ratio struct {
	hits  uint64
	total uint64
}

// Observe records one trial with the given outcome.
func (r *Ratio) Observe(hit bool) {
	r.total++
	if hit {
		r.hits++
	}
}

// Hits returns the number of positive outcomes.
func (r *Ratio) Hits() uint64 { return r.hits }

// Total returns the number of trials.
func (r *Ratio) Total() uint64 { return r.total }

// Value returns hits/total (0 if no trials).
func (r *Ratio) Value() float64 {
	if r.total == 0 {
		return 0
	}
	return float64(r.hits) / float64(r.total)
}

// Percent returns 100·Value().
func (r *Ratio) Percent() float64 { return 100 * r.Value() }

// String implements fmt.Stringer.
func (r *Ratio) String() string {
	return fmt.Sprintf("%d/%d (%.1f%%)", r.hits, r.total, r.Percent())
}

// Series is a labelled sequence of (x, y) points, the unit of figure
// regeneration: each curve in a paper figure is one Series.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Append adds one point to the series.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// YAt returns the y value for the given x, or false if x is absent.
func (s *Series) YAt(x float64) (float64, bool) {
	for i, xv := range s.X {
		if xv == x {
			return s.Y[i], true
		}
	}
	return 0, false
}

// MeanY returns the mean of the series' y values (0 if empty).
func (s *Series) MeanY() float64 {
	if len(s.Y) == 0 {
		return 0
	}
	var sum float64
	for _, y := range s.Y {
		sum += y
	}
	return sum / float64(len(s.Y))
}

// MinMaxY returns the y range (0, 0 if empty).
func (s *Series) MinMaxY() (min, max float64) {
	if len(s.Y) == 0 {
		return 0, 0
	}
	min, max = s.Y[0], s.Y[0]
	for _, y := range s.Y[1:] {
		if y < min {
			min = y
		}
		if y > max {
			max = y
		}
	}
	return min, max
}

// Percentile returns the p-th percentile (0 <= p <= 100) of data using
// linear interpolation between order statistics. It returns 0 for empty
// input and does not modify data.
func Percentile(data []float64, p float64) float64 {
	if len(data) == 0 {
		return 0
	}
	sorted := append([]float64(nil), data...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
