package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummaryMoments(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.Count() != 8 {
		t.Fatalf("Count = %d, want 8", s.Count())
	}
	if got := s.Mean(); got != 5 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	// Sample variance of this classic set is 32/7.
	if got := s.Variance(); math.Abs(got-32.0/7) > 1e-12 {
		t.Fatalf("Variance = %v, want %v", got, 32.0/7)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v, want 2/9", s.Min(), s.Max())
	}
	if s.CI95() <= 0 {
		t.Fatalf("CI95 = %v, want > 0", s.CI95())
	}
}

func TestSummaryEmptyAndSingle(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Variance() != 0 || s.CI95() != 0 {
		t.Fatal("empty summary should be all zeros")
	}
	s.Add(3)
	if s.Mean() != 3 || s.Variance() != 0 || s.CI95() != 0 {
		t.Fatal("single-observation summary: mean 3, variance 0")
	}
	s.Add(math.NaN()) // ignored
	if s.Count() != 1 {
		t.Fatalf("NaN should be ignored, count = %d", s.Count())
	}
}

func TestSummaryString(t *testing.T) {
	var s Summary
	s.Add(1)
	s.Add(2)
	if got := s.String(); got == "" {
		t.Fatal("String should not be empty")
	}
}

func TestRatio(t *testing.T) {
	var r Ratio
	if r.Value() != 0 || r.Percent() != 0 {
		t.Fatal("empty ratio should be 0")
	}
	for i := 0; i < 10; i++ {
		r.Observe(i < 7)
	}
	if r.Hits() != 7 || r.Total() != 10 {
		t.Fatalf("Hits/Total = %d/%d, want 7/10", r.Hits(), r.Total())
	}
	if r.Value() != 0.7 || r.Percent() != 70 {
		t.Fatalf("Value = %v, Percent = %v", r.Value(), r.Percent())
	}
	if got := r.String(); got != "7/10 (70.0%)" {
		t.Fatalf("String = %q", got)
	}
}

func TestSeries(t *testing.T) {
	s := Series{Label: "test"}
	s.Append(10, 95)
	s.Append(20, 90)
	s.Append(30, 85)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if y, ok := s.YAt(20); !ok || y != 90 {
		t.Fatalf("YAt(20) = %v,%v", y, ok)
	}
	if _, ok := s.YAt(25); ok {
		t.Fatal("YAt(25) should be absent")
	}
	if got := s.MeanY(); got != 90 {
		t.Fatalf("MeanY = %v, want 90", got)
	}
	if min, max := s.MinMaxY(); min != 85 || max != 95 {
		t.Fatalf("MinMaxY = %v,%v", min, max)
	}
	empty := Series{}
	if empty.MeanY() != 0 {
		t.Fatal("empty MeanY should be 0")
	}
	if min, max := empty.MinMaxY(); min != 0 || max != 0 {
		t.Fatal("empty MinMaxY should be 0,0")
	}
}

func TestPercentile(t *testing.T) {
	data := []float64{5, 1, 3, 2, 4}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {75, 4}, {-5, 1}, {200, 5},
	}
	for _, tc := range tests {
		if got := Percentile(data, tc.p); got != tc.want {
			t.Errorf("Percentile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	// Interpolation between order statistics.
	if got := Percentile([]float64{0, 10}, 50); got != 5 {
		t.Fatalf("interpolated median = %v, want 5", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Fatalf("empty percentile = %v, want 0", got)
	}
	// Input must not be mutated.
	if data[0] != 5 {
		t.Fatal("Percentile mutated its input")
	}
}

// Property: summary mean always lies within [min, max].
func TestSummaryMeanBoundsProperty(t *testing.T) {
	prop := func(raw []float64) bool {
		var s Summary
		any := false
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			s.Add(math.Mod(x, 1e9))
			any = true
		}
		if !any {
			return true
		}
		return s.Mean() >= s.Min()-1e-9 && s.Mean() <= s.Max()+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// Property: percentile is monotone in p.
func TestPercentileMonotoneProperty(t *testing.T) {
	prop := func(raw []float64, p1, p2 float64) bool {
		var data []float64
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			data = append(data, math.Mod(x, 1e6))
		}
		if len(data) == 0 {
			return true
		}
		a := math.Mod(math.Abs(p1), 100)
		b := math.Mod(math.Abs(p2), 100)
		if a > b {
			a, b = b, a
		}
		return Percentile(data, a) <= Percentile(data, b)+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
