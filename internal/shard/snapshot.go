package shard

import (
	"bytes"
	"io"
	"sync/atomic"

	"facs/internal/cac"
	"facs/internal/snap"
)

var _ cac.Snapshotter = (*Engine)(nil)

// snapshotHash fingerprints the engine's identity: shard count and the
// network's cell layout and capacities. Ownership, station and
// controller state all restore against it; the nested per-component
// envelopes re-validate their own configurations independently.
func (e *Engine) snapshotHash() uint64 {
	h := snap.NewHasher().
		Str("shard-engine").
		Int(len(e.services)).
		Int(len(e.stations))
	for _, bs := range e.stations {
		h.Int(bs.Hex().Q).Int(bs.Hex().R).Int(bs.Capacity())
	}
	return h.Sum()
}

// SnapshotTo implements cac.Snapshotter: it captures a consistent cut
// of the whole engine — epoch ownership, tick and load accounting,
// engine counters, every station's call set and every shard's
// controller state (each a nested self-describing envelope, captured
// inside that shard's decision loop via Do).
//
// The caller must quiesce submissions for the duration (no SubmitWave/
// SubmitAsync/Handoff in flight), exactly as the closed-loop drivers
// do between waves; Flush then guarantees the cut is wave-aligned.
// Requests still undecided at a crash are lost by design — a client
// that never saw a response retries, which is ordinary crash
// semantics.
func (e *Engine) SnapshotTo(w io.Writer) error {
	if err := e.Flush(); err != nil {
		return err
	}
	cur := e.own.Load()
	enc := snap.NewEncoder(w, "shard-engine", e.snapshotHash())

	enc.U64(cur.epoch)
	enc.U32(uint32(len(cur.owner)))
	for _, o := range cur.owner {
		enc.Int(int(o))
	}
	enc.I64(e.ticks.Load())
	enc.U32(uint32(len(e.cellLoad)))
	for i := range e.cellLoad {
		enc.I64(atomic.LoadInt64(&e.cellLoad[i]))
	}

	enc.I64(e.waves.Load())
	enc.I64(e.handoffCount.Load())
	enc.I64(e.crossShard.Load())
	enc.I64(e.drops.Load())
	enc.I64(e.handoffErrs.Load())
	enc.I64(e.exchanges.Load())
	enc.I64(e.ghostRows.Load())
	enc.I64(e.ghostRowsAll.Load())
	enc.I64(e.rebalances.Load())
	enc.I64(e.migrations.Load())
	enc.I64(e.migratedCalls.Load())

	var buf bytes.Buffer
	enc.U32(uint32(len(e.stations)))
	for _, bs := range e.stations {
		buf.Reset()
		if err := bs.SnapshotTo(&buf); err != nil {
			return err
		}
		enc.Blob(buf.Bytes())
	}

	enc.U32(uint32(len(e.services)))
	for s := range e.services {
		var snapErr error
		hasState := false
		buf.Reset()
		if err := e.services[s].Do(func(ctrl cac.Controller) {
			if sn, ok := ctrl.(cac.Snapshotter); ok {
				hasState = true
				snapErr = sn.SnapshotTo(&buf)
			}
		}); err != nil {
			return err
		}
		if snapErr != nil {
			return snapErr
		}
		enc.Bool(hasState)
		if hasState {
			enc.Blob(buf.Bytes())
		}
	}
	return enc.Close()
}

// RestoreFrom implements cac.Snapshotter: it installs a snapshot
// written by SnapshotTo on an identically-configured engine (same
// network, same shard count, same controller factory). The envelope is
// fully decoded and validated before any state changes; ownership is
// rebuilt deterministically from the restored owner array and epoch,
// then stations and per-shard controllers restore from their nested
// envelopes. The caller must quiesce submissions, as for SnapshotTo.
func (e *Engine) RestoreFrom(r io.Reader) error {
	if err := e.Flush(); err != nil {
		return err
	}
	d, err := snap.NewDecoder(r, "shard-engine", e.snapshotHash())
	if err != nil {
		return err
	}

	epoch := d.U64()
	nOwner := int(d.U32())
	if d.Err() == nil && nOwner != len(e.stations) {
		d.Fail("owner array has %d cells, want %d", nOwner, len(e.stations))
	}
	if d.Err() == nil && nOwner*8 > d.Len() {
		d.Fail("%d owners declared, %d payload bytes left", nOwner, d.Len())
	}
	if err := d.Err(); err != nil {
		return err
	}
	owner := make([]int32, nOwner)
	for i := range owner {
		o := d.Int()
		if d.Err() == nil && (o < 0 || o >= len(e.services)) {
			d.Fail("cell %d owned by shard %d of %d", i, o, len(e.services))
		}
		owner[i] = int32(o)
	}

	ticks := d.I64()
	nLoad := int(d.U32())
	if d.Err() == nil && nLoad != len(e.cellLoad) {
		d.Fail("cell-load array has %d cells, want %d", nLoad, len(e.cellLoad))
	}
	if d.Err() == nil && nLoad*8 > d.Len() {
		d.Fail("%d cell loads declared, %d payload bytes left", nLoad, d.Len())
	}
	if err := d.Err(); err != nil {
		return err
	}
	load := make([]int64, nLoad)
	for i := range load {
		load[i] = d.I64()
	}

	waves := d.I64()
	handoffCount := d.I64()
	crossShard := d.I64()
	drops := d.I64()
	handoffErrs := d.I64()
	exchanges := d.I64()
	ghostRows := d.I64()
	ghostRowsAll := d.I64()
	rebalances := d.I64()
	migrations := d.I64()
	migratedCalls := d.I64()

	nStations := int(d.U32())
	if d.Err() == nil && nStations != len(e.stations) {
		d.Fail("snapshot carries %d stations, want %d", nStations, len(e.stations))
	}
	if err := d.Err(); err != nil {
		return err
	}
	stationBlobs := make([][]byte, nStations)
	for i := range stationBlobs {
		stationBlobs[i] = d.Blob()
	}

	nShards := int(d.U32())
	if d.Err() == nil && nShards != len(e.services) {
		d.Fail("snapshot carries %d shards, want %d", nShards, len(e.services))
	}
	if err := d.Err(); err != nil {
		return err
	}
	ctrlBlobs := make([][]byte, nShards)
	for s := range ctrlBlobs {
		if d.Bool() {
			ctrlBlobs[s] = d.Blob()
		}
	}
	if err := d.Close(); err != nil {
		return err
	}

	// Envelope validated: install ownership, counters, stations and
	// controller state. Nested envelopes still validate themselves as
	// they restore.
	e.own.Store(e.buildOwnership(owner, epoch))
	e.ticks.Store(ticks)
	for i := range e.cellLoad {
		atomic.StoreInt64(&e.cellLoad[i], load[i])
	}
	e.waves.Store(waves)
	e.handoffCount.Store(handoffCount)
	e.crossShard.Store(crossShard)
	e.drops.Store(drops)
	e.handoffErrs.Store(handoffErrs)
	e.exchanges.Store(exchanges)
	e.ghostRows.Store(ghostRows)
	e.ghostRowsAll.Store(ghostRowsAll)
	e.rebalances.Store(rebalances)
	e.migrations.Store(migrations)
	e.migratedCalls.Store(migratedCalls)

	for i, bs := range e.stations {
		if err := bs.RestoreFrom(bytes.NewReader(stationBlobs[i])); err != nil {
			return err
		}
	}
	for s := range e.services {
		if ctrlBlobs[s] == nil {
			continue
		}
		blob := ctrlBlobs[s]
		var restoreErr error
		restored := false
		if err := e.services[s].Do(func(ctrl cac.Controller) {
			if sn, ok := ctrl.(cac.Snapshotter); ok {
				restored = true
				restoreErr = sn.RestoreFrom(bytes.NewReader(blob))
			}
		}); err != nil {
			return err
		}
		if restoreErr != nil {
			return restoreErr
		}
		if !restored {
			return snap.ErrSnapshotStale
		}
	}
	return nil
}
