package shard

// Migration is one planned ownership move: cell (a dense station index
// in the network's (Q, R) order) leaves shard From for shard To.
type Migration struct {
	Cell, From, To int
}

// PlannerConfig bounds the greedy rebalancing planner.
type PlannerConfig struct {
	// MaxMoves caps the migrations emitted per epoch (default
	// DefaultMaxMoves). Bounding the plan bounds the work done inside
	// the tick barrier; residual imbalance is picked up next epoch.
	MaxMoves int
	// Tolerance is the accepted relative overload: planning stops once
	// the hottest shard's load is within (1 + Tolerance) of the mean
	// (default DefaultTolerance). It damps oscillation — without slack
	// a single hot cell would bounce between shards every epoch.
	Tolerance float64
}

// Planner defaults.
const (
	DefaultMaxMoves  = 8
	DefaultTolerance = 0.05
)

func (c PlannerConfig) withDefaults() PlannerConfig {
	if c.MaxMoves == 0 {
		c.MaxMoves = DefaultMaxMoves
	}
	if c.Tolerance == 0 {
		c.Tolerance = DefaultTolerance
	}
	return c
}

// PlanRebalance is the deterministic greedy bin-packing planner behind
// elastic sharding: given the per-cell load counters accumulated since
// the last epoch and the current ownership map, it emits the migrations
// that move the hottest cells off the most loaded shard onto the least
// loaded one. It is a pure function of its arguments — no clocks, no
// randomness, ties broken by lowest index — so identical counter
// snapshots produce identical plans on every run and every replay.
//
// Invariants the plan preserves (the property suite pins them):
// ownership stays a partition (each cell moves whole, exactly once per
// plan), no shard is emptied, at most MaxMoves migrations are emitted,
// and every move strictly reduces the spread between the most and least
// loaded shard (so applying the plan never increases imbalance).
func PlanRebalance(load []float64, owner []int32, shards int, cfg PlannerConfig) []Migration {
	cfg = cfg.withDefaults()
	if shards < 2 || len(load) != len(owner) || len(load) == 0 {
		return nil
	}
	shardLoad := make([]float64, shards)
	count := make([]int, shards)
	cur := make([]int32, len(owner))
	copy(cur, owner)
	var total float64
	for c, s := range cur {
		if int(s) < 0 || int(s) >= shards {
			return nil // corrupt ownership: refuse to plan
		}
		shardLoad[s] += load[c]
		count[s]++
		total += load[c]
	}
	mean := total / float64(shards)

	var plan []Migration
	moved := make(map[int]bool, cfg.MaxMoves)
	for len(plan) < cfg.MaxMoves {
		hi, lo := 0, 0
		for s := 1; s < shards; s++ {
			if shardLoad[s] > shardLoad[hi] {
				hi = s
			}
			if shardLoad[s] < shardLoad[lo] {
				lo = s
			}
		}
		if hi == lo || shardLoad[hi] <= mean*(1+cfg.Tolerance) {
			break
		}
		// Hottest cell on hi that still fits: moving it must strictly
		// shrink the hi-lo spread (load[c] < spread), and hi must keep at
		// least one cell. Largest load first, lowest cell index on ties.
		spread := shardLoad[hi] - shardLoad[lo]
		best := -1
		for c, s := range cur {
			if int(s) != hi || moved[c] || load[c] >= spread {
				continue
			}
			if best < 0 || load[c] > load[best] {
				best = c
			}
		}
		if best < 0 || count[hi] <= 1 {
			break
		}
		plan = append(plan, Migration{Cell: best, From: hi, To: lo})
		moved[best] = true
		cur[best] = int32(lo)
		shardLoad[hi] -= load[best]
		shardLoad[lo] += load[best]
		count[hi]--
		count[lo]++
	}
	return plan
}
