package shard

import (
	"math"
	"testing"

	"facs/internal/cac"
	"facs/internal/cell"
	"facs/internal/geo"
	"facs/internal/gps"
	"facs/internal/scc"
	"facs/internal/sim"
	"facs/internal/traffic"
)

// opaqueController is a controller that is neither cac.CellLocal nor a
// cac.CellMigrator — rebalancing cannot move its state.
type opaqueController struct{}

func (opaqueController) Name() string { return "opaque" }
func (opaqueController) Decide(cac.Request) (cac.Decision, error) {
	return cac.Accept, nil
}

func opaqueFactory(View) (cac.Controller, error) { return opaqueController{}, nil }

// sccFactory builds a fresh demand ledger per shard; MaxSpeedKmh bounds
// the interest radius when nonzero.
func sccFactory(maxSpeedKmh float64) func(View) (cac.Controller, error) {
	return func(v View) (cac.Controller, error) {
		return scc.NewLedger(scc.Config{Network: v.Network(), MaxSpeedKmh: maxSpeedKmh})
	}
}

// genScopedRequests samples requests honouring the SCC interest
// contract: positions inside the home cell, speeds at most maxKmh.
// Station selection is biased toward the first cells of the (Q, R)
// order (a hotspot on the blocks partition's first shards).
func genScopedRequests(t testing.TB, net *cell.Network, seed int64, n int, maxKmh float64, firstID int) []cac.Request {
	t.Helper()
	rng := sim.NewStream(seed, "shard-scoped-reqs")
	stations := net.Stations()
	inradius := 0.85 * math.Sqrt(3) / 2 * net.Layout().CellRadius
	out := make([]cac.Request, n)
	for i := range out {
		idx := rng.Intn(len(stations))
		if rng.Intn(2) == 0 {
			idx = rng.Intn(1 + len(stations)/8) // hotspot bias
		}
		bs := stations[idx]
		ang := sim.Uniform(rng, 0, 2*math.Pi)
		r := inradius * math.Sqrt(rng.Float64())
		class := traffic.DefaultMix().Sample(rng)
		est := gps.Estimate{
			Pos:        geo.Point{X: bs.Pos().X + r*math.Cos(ang), Y: bs.Pos().Y + r*math.Sin(ang)},
			HeadingDeg: sim.Uniform(rng, -180, 180),
			SpeedKmh:   sim.Uniform(rng, 0, maxKmh),
		}
		out[i] = cac.Request{
			Call:    cell.Call{ID: firstID + i, Class: class, BU: class.BandwidthUnits()},
			Station: bs,
			Obs:     gps.Observe(est, bs.Pos()),
			Est:     est,
			Now:     float64(i),
		}
	}
	return out
}

func TestRebalanceConfigValidation(t *testing.T) {
	net := testNetwork(t, 1)
	if _, err := New(Config{Network: net, NewController: guardFactory, RebalanceEveryTicks: -1}); err == nil {
		t.Fatal("negative RebalanceEveryTicks should fail")
	}
	if _, err := New(Config{Network: net, NewController: guardFactory, Partition: Partition(9)}); err == nil {
		t.Fatal("unknown partition strategy should fail")
	}
	if _, err := New(Config{Network: net, Shards: 2, NewController: opaqueFactory, RebalanceEveryTicks: 1}); err == nil {
		t.Fatal("rebalancing an immovable controller should fail construction")
	}
	// Without the cadence the opaque controller is fine — but an
	// explicit ForceRebalance must refuse.
	e, err := New(Config{Network: net, Shards: 2, NewController: opaqueFactory})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.ForceRebalance(); err == nil {
		t.Fatal("ForceRebalance on an immovable controller should error")
	}
}

func TestPartitionBlocksIsContiguousAndComplete(t *testing.T) {
	net := testNetwork(t, 2) // 19 cells
	for _, shards := range []int{1, 2, 4, 8, 19} {
		e, err := New(Config{Network: net, Shards: shards, NewController: guardFactory, Partition: PartitionBlocks})
		if err != nil {
			t.Fatal(err)
		}
		prev := 0
		total := 0
		for i, bs := range net.Stations() {
			s, ok := e.ShardOf(bs.Hex())
			if !ok {
				t.Fatalf("station %v unrouted", bs.Hex())
			}
			if s != i*e.Shards()/net.NumCells() {
				t.Fatalf("shards=%d: station %d on shard %d, want block %d", shards, i, s, i*e.Shards()/net.NumCells())
			}
			if s < prev {
				t.Fatalf("shards=%d: blocks partition not monotone at station %d", shards, i)
			}
			prev = s
		}
		for s := 0; s < e.Shards(); s++ {
			n := e.View(s).NumCells()
			if n == 0 {
				t.Fatalf("shards=%d: shard %d owns no cells", shards, s)
			}
			total += n
		}
		if total != net.NumCells() {
			t.Fatalf("shards=%d: views cover %d cells, want %d", shards, total, net.NumCells())
		}
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// assertOwnershipPartition checks the current epoch is a partition:
// every station routed to exactly one shard, views disjoint and
// complete, view contents matching the router.
func assertOwnershipPartition(t *testing.T, e *Engine, net *cell.Network) {
	t.Helper()
	seen := make(map[geo.Hex]int)
	for s := 0; s < e.Shards(); s++ {
		for _, bs := range e.View(s).Stations() {
			if owner, dup := seen[bs.Hex()]; dup {
				t.Fatalf("cell %v in views of shards %d and %d", bs.Hex(), owner, s)
			}
			seen[bs.Hex()] = s
			if r, ok := e.ShardOf(bs.Hex()); !ok || r != s {
				t.Fatalf("cell %v in view %d but routes to %d (ok=%v)", bs.Hex(), s, r, ok)
			}
		}
	}
	if len(seen) != net.NumCells() {
		t.Fatalf("views cover %d cells, want %d", len(seen), net.NumCells())
	}
}

// TestForceRebalanceMigratesAndConserves drives a hotspot onto the
// blocks partition's first shard, forces an epoch, and pins the
// conservation laws: ownership stays a partition, per-station call
// slots and class occupancy are untouched by the move, every carried
// call survives and remains releasable through the (re-routed) engine.
func TestForceRebalanceMigratesAndConserves(t *testing.T) {
	net := testNetwork(t, 2) // 19 cells
	e, err := New(Config{
		Network: net, Shards: 4, Commit: true, NewController: guardFactory,
		Partition: PartitionBlocks,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	// Every request lands on shard 0's block: cells 0..4.
	reqs := genRequests(t, net, 31, 400)
	stations := net.Stations()
	for i := range reqs {
		reqs[i].Station = stations[i%5]
	}
	resps, err := e.SubmitWave(reqs)
	if err != nil {
		t.Fatal(err)
	}
	committed := make(map[int]*cell.BaseStation)
	for i, r := range resps {
		if r.Committed {
			committed[reqs[i].Call.ID] = reqs[i].Station
		}
	}
	if len(committed) == 0 {
		t.Fatal("hotspot committed nothing")
	}
	type cellState struct {
		used int
		bu   [4]int
	}
	before := make(map[geo.Hex]cellState)
	totalUsed := 0
	for _, bs := range stations {
		st := cellState{used: bs.Used()}
		for cl := traffic.Text; cl <= traffic.Video; cl++ {
			st.bu[cl] = bs.ClassBU(cl)
		}
		before[bs.Hex()] = st
		totalUsed += st.used
	}

	if err := e.ForceRebalance(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if e.Epoch() != 1 || st.Rebalances != 1 {
		t.Fatalf("expected one applied epoch, got epoch %d rebalances %d", e.Epoch(), st.Rebalances)
	}
	if st.Migrations == 0 || st.MigratedCalls == 0 {
		t.Fatalf("hotspot epoch moved nothing: %+v", st)
	}
	assertOwnershipPartition(t, e, net)

	// The hot shard must have shed at least one of its cells.
	movedOff := false
	for i := 0; i < 5; i++ {
		if s, _ := e.ShardOf(stations[i].Hex()); s != 0 {
			movedOff = true
		}
	}
	if !movedOff {
		t.Fatal("no hotspot cell left shard 0")
	}

	// Conservation: station state is bit-identical cell by cell.
	afterTotal := 0
	for _, bs := range stations {
		want := before[bs.Hex()]
		if bs.Used() != want.used {
			t.Fatalf("station %v used %d after rebalance, want %d", bs.Hex(), bs.Used(), want.used)
		}
		for cl := traffic.Text; cl <= traffic.Video; cl++ {
			if bs.ClassBU(cl) != want.bu[cl] {
				t.Fatalf("station %v class %v BU %d after rebalance, want %d", bs.Hex(), cl, bs.ClassBU(cl), want.bu[cl])
			}
		}
		afterTotal += bs.Used()
	}
	if afterTotal != totalUsed {
		t.Fatalf("total occupancy %d after rebalance, want %d", afterTotal, totalUsed)
	}
	// Every committed call is still carried and releasable via the
	// re-routed engine.
	for id, bs := range committed {
		if _, ok := bs.Call(id); !ok {
			t.Fatalf("call %d lost from %v by the rebalance", id, bs.Hex())
		}
	}
	for id, bs := range committed {
		if err := e.Release(id, bs, 1000); err != nil {
			t.Fatalf("releasing migrated call %d: %v", id, err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	for id, bs := range committed {
		if _, ok := bs.Call(id); ok {
			t.Fatalf("call %d still carried after release", id)
		}
	}
}

// soakResult is one run's complete observable stream.
type soakResult struct {
	outcomes []outcome
	handoffs []bool // per handoff: survived?
	used     []int  // final per-station occupancy
	epoch    uint64
}

// runRebalanceSoak drives one seeded randomized interleaving of waves,
// releases, neighbour handoffs, barrier ticks (with rebalancing every
// tick) and forced rebalances against a fresh engine.
func runRebalanceSoak(t *testing.T, seed int64, shards, rounds int, partition Partition) soakResult {
	t.Helper()
	const rings, waveLen, maxBatch = 2, 48, 16
	net := testNetwork(t, rings)
	e, err := New(Config{
		Network: net, Shards: shards, MaxBatch: maxBatch, Commit: true,
		NewController: guardFactory, Partition: partition,
		RebalanceEveryTicks: 1, Rebalance: PlannerConfig{MaxMoves: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
	}()

	stations := net.Stations()
	var res soakResult
	type liveCall struct {
		id      int
		station *cell.BaseStation
		est     gps.Estimate
		due     int
	}
	var live []liveCall
	nextID := 1
	for round := 0; round < rounds; round++ {
		now := float64(round)
		// Releases due this round, in admission order.
		keep := live[:0]
		for _, c := range live {
			if c.due <= round {
				if err := e.Release(c.id, c.station, now); err != nil {
					t.Fatalf("seed %d round %d: release %d: %v", seed, round, c.id, err)
				}
				continue
			}
			keep = append(keep, c)
		}
		live = keep

		// Barrier tick: flush + rebalance epoch + (no-op) exchange.
		if err := e.Tick(now); err != nil {
			t.Fatalf("seed %d round %d: tick: %v", seed, round, err)
		}
		if round%7 == 3 {
			if err := e.ForceRebalance(); err != nil {
				t.Fatalf("seed %d round %d: forced rebalance: %v", seed, round, err)
			}
		}

		// Handoff a deterministic slice of live calls to a neighbour.
		if round%2 == 1 {
			for i := 0; i < len(live); i += 5 {
				c := &live[i]
				nbrs := net.Neighbors(c.station.Hex())
				if len(nbrs) == 0 {
					continue
				}
				to := nbrs[(c.id+round)%len(nbrs)]
				r := e.HandoffCall(Handoff{CallID: c.id, From: c.station, To: to, Est: c.est, Now: now})
				if r.Err != nil {
					t.Fatalf("seed %d round %d: handoff %d: %v", seed, round, c.id, r.Err)
				}
				res.handoffs = append(res.handoffs, !r.Dropped())
				if r.Dropped() {
					// The source released regardless; drop it from the pool
					// by marking it due immediately (already released).
					live[i].due = -1
					live[i].id = -live[i].id // never released again (negative IDs skip)
				} else {
					live[i].station = to
				}
			}
			// Compact dropped entries.
			kept := live[:0]
			for _, c := range live {
				if c.id > 0 {
					kept = append(kept, c)
				}
			}
			live = kept
		}

		// One admission wave.
		reqs := genRequests(t, net, seed+int64(round)*1009, waveLen)
		for i := range reqs {
			reqs[i].Call.ID = nextID
			reqs[i].Now = now
			nextID++
		}
		resps, err := e.SubmitWave(reqs)
		if err != nil {
			t.Fatalf("seed %d round %d: wave: %v", seed, round, err)
		}
		for i, r := range resps {
			res.outcomes = append(res.outcomes, outcome{d: r.Decision, committed: r.Committed})
			if r.Committed {
				live = append(live, liveCall{
					id: reqs[i].Call.ID, station: reqs[i].Station, est: reqs[i].Est,
					due: round + 2 + (reqs[i].Call.ID % 5),
				})
			}
		}
		assertOwnershipPartition(t, e, net)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, bs := range stations {
		res.used = append(res.used, bs.Used())
	}
	res.epoch = e.Epoch()
	return res
}

// TestRebalanceRandomizedSoak is the migration protocol's soak suite:
// seeded interleavings of waves, releases, neighbour handoffs, barrier
// ticks (rebalancing on every tick) and mid-run forced rebalances must
// leave the decision, commit and handoff streams — and the final
// per-station occupancy — byte-identical across shard counts 1/2/4/8
// and both partition layouts, while ownership stays a partition at
// every wave boundary. Rebalancing must actually fire on the
// multi-shard runs for the identity to be non-vacuous.
func TestRebalanceRandomizedSoak(t *testing.T) {
	seeds := []int64{3, 41, 97}
	rounds := 24
	if testing.Short() {
		seeds = seeds[:1]
		rounds = 12
	}
	for _, seed := range seeds {
		for _, partition := range []Partition{PartitionRoundRobin, PartitionBlocks} {
			oracle := runRebalanceSoak(t, seed, 1, rounds, partition)
			if len(oracle.outcomes) == 0 || len(oracle.handoffs) == 0 {
				t.Fatalf("seed %d: degenerate soak (no outcomes or handoffs)", seed)
			}
			sawRebalance := false
			for _, shards := range []int{2, 4, 8} {
				got := runRebalanceSoak(t, seed, shards, rounds, partition)
				if got.epoch > 0 {
					sawRebalance = true
				}
				if len(got.outcomes) != len(oracle.outcomes) {
					t.Fatalf("seed %d shards %d: %d outcomes, oracle %d", seed, shards, len(got.outcomes), len(oracle.outcomes))
				}
				for i := range oracle.outcomes {
					if got.outcomes[i] != oracle.outcomes[i] {
						t.Fatalf("seed %d shards %d partition %d: outcome %d is %+v, oracle %+v",
							seed, shards, partition, i, got.outcomes[i], oracle.outcomes[i])
					}
				}
				if len(got.handoffs) != len(oracle.handoffs) {
					t.Fatalf("seed %d shards %d: %d handoffs, oracle %d", seed, shards, len(got.handoffs), len(oracle.handoffs))
				}
				for i := range oracle.handoffs {
					if got.handoffs[i] != oracle.handoffs[i] {
						t.Fatalf("seed %d shards %d: handoff %d survived=%v, oracle %v", seed, shards, i, got.handoffs[i], oracle.handoffs[i])
					}
				}
				for i := range oracle.used {
					if got.used[i] != oracle.used[i] {
						t.Fatalf("seed %d shards %d: station %d used %d, oracle %d", seed, shards, i, got.used[i], oracle.used[i])
					}
				}
			}
			if !sawRebalance {
				t.Fatalf("seed %d partition %d: no multi-shard run ever rebalanced — identity held vacuously", seed, partition)
			}
		}
	}
}

// runScopedSCC drives a tick-aligned hotspot workload through an SCC
// engine and returns the outcome stream plus final stats.
func runScopedSCC(t *testing.T, shards int, maxSpeedKmh float64, disableScope bool, rebalanceTicks int) ([]outcome, Stats) {
	t.Helper()
	const rings, waves, waveLen, maxBatch = 4, 12, 64, 64
	net := testNetwork(t, rings)
	e, err := New(Config{
		Network: net, Shards: shards, MaxBatch: maxBatch, Commit: true,
		NewController: sccFactory(maxSpeedKmh), Partition: PartitionBlocks,
		RebalanceEveryTicks: rebalanceTicks, DisableInterestScope: disableScope,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	var out []outcome
	id := 1
	for w := 0; w < waves; w++ {
		reqs := genScopedRequests(t, net, int64(1000+w), waveLen, maxSpeedKmh, id)
		id += waveLen
		resps, err := e.SubmitWave(reqs)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range resps {
			out = append(out, outcome{d: r.Decision, committed: r.Committed})
		}
		if err := e.Tick(float64(w)); err != nil {
			t.Fatal(err)
		}
	}
	return out, e.Stats()
}

// TestInterestScopedExchangeReducesFanOut is the fan-out acceptance
// test: on a blocks-partitioned SCC engine whose ledgers declare a
// bounded interest radius, the scoped exchange must fan strictly fewer
// ghost rows than the all-to-all baseline on a hotspot workload — while
// leaving every admission outcome byte-identical to both the unscoped
// run and the 1-shard sequential baseline, with rebalancing enabled.
func TestInterestScopedExchangeReducesFanOut(t *testing.T) {
	const maxKmh = 30.0
	oracle, _ := runScopedSCC(t, 1, maxKmh, false, 2)
	scoped, scopedStats := runScopedSCC(t, 4, maxKmh, false, 2)
	unscoped, unscopedStats := runScopedSCC(t, 4, maxKmh, true, 2)

	if !scopedStats.InterestScoped {
		t.Fatalf("bounded-radius ledgers should scope the exchange: %+v", scopedStats)
	}
	if unscopedStats.InterestScoped {
		t.Fatal("DisableInterestScope run still reports scoping")
	}
	if scopedStats.GhostRows == 0 || scopedStats.Exchanges == 0 {
		t.Fatalf("scoped exchange never fanned rows: %+v", scopedStats)
	}
	if scopedStats.GhostRows >= scopedStats.GhostRowsAllToAll {
		t.Fatalf("scoping saved nothing: %d fanned vs %d all-to-all", scopedStats.GhostRows, scopedStats.GhostRowsAllToAll)
	}
	if unscopedStats.GhostRows != unscopedStats.GhostRowsAllToAll {
		t.Fatalf("unscoped run should fan the full baseline: %d vs %d", unscopedStats.GhostRows, unscopedStats.GhostRowsAllToAll)
	}
	if scopedStats.Rebalances == 0 {
		t.Fatalf("rebalancing never fired: %+v", scopedStats)
	}
	for i := range oracle {
		if scoped[i] != oracle[i] {
			t.Fatalf("scoped outcome %d is %+v, sequential baseline %+v", i, scoped[i], oracle[i])
		}
		if unscoped[i] != oracle[i] {
			t.Fatalf("unscoped outcome %d is %+v, sequential baseline %+v", i, unscoped[i], oracle[i])
		}
	}
	t.Logf("ghost rows: %d scoped vs %d all-to-all (%.0f%% saved)",
		scopedStats.GhostRows, scopedStats.GhostRowsAllToAll,
		100*(1-float64(scopedStats.GhostRows)/float64(scopedStats.GhostRowsAllToAll)))
}

// TestRebalanceStatsAggregation pins the new Stats surface: migration
// counters flow through, the merged latency histogram stays
// bucket-bounded and consistent with the per-shard snapshots, and the
// one-line summary mentions the rebalance activity.
func TestRebalanceStatsAggregation(t *testing.T) {
	net := testNetwork(t, 2)
	e, err := New(Config{
		Network: net, Shards: 4, Commit: true, NewController: guardFactory,
		Partition: PartitionBlocks,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	reqs := genRequests(t, net, 77, 300)
	stations := net.Stations()
	for i := range reqs {
		reqs[i].Station = stations[i%5] // hotspot on shard 0's block
	}
	if _, err := e.SubmitWave(reqs); err != nil {
		t.Fatal(err)
	}
	if err := e.ForceRebalance(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Epoch != 1 || st.Rebalances != 1 || st.Migrations == 0 || st.MigratedCalls == 0 {
		t.Fatalf("rebalance counters missing: %+v", st)
	}
	var decided, histSum int64
	for _, ps := range st.PerShard {
		decided += ps.Decided
		var s int64
		for _, b := range ps.LatencyHist {
			if b < 0 {
				t.Fatalf("negative histogram bucket in %+v", ps.LatencyHist)
			}
			s += b
		}
		if s != ps.Decided {
			t.Fatalf("per-shard histogram sums to %d, decided %d", s, ps.Decided)
		}
	}
	for _, b := range st.Total.LatencyHist {
		if b < 0 {
			t.Fatal("negative merged histogram bucket")
		}
		histSum += b
	}
	if st.Total.Decided != decided || histSum != decided {
		t.Fatalf("merged totals decided=%d histSum=%d, per-shard sum %d", st.Total.Decided, histSum, decided)
	}
	if got := st.String(); !containsAll(got, "rebalances 1", "epoch 1") {
		t.Fatalf("summary misses rebalance info: %s", got)
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		if !contains(s, sub) {
			return false
		}
	}
	return true
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
