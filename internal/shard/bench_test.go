package shard

import (
	"fmt"
	"testing"

	"facs/internal/cac"
	"facs/internal/facs"
	"facs/internal/scc"
	"facs/internal/serve"
)

// BenchmarkShardedServe measures decision throughput of the sharded
// engine against the single-loop serve.Service it generalises, on a
// multi-cell workload (37 cells, exact FACS — the Mamdani inference is
// the realistic per-decision cost that parallelism amortises). The
// acceptance bar from the sharding issue: >= 1.5x over the single loop
// at >= 4 shards on multi-core hardware; on a single core the engine
// must merely not regress (CI runs this as a 1x smoke). Commit stays
// off so iteration count cannot saturate station state and skew the
// accept path.
func BenchmarkShardedServe(b *testing.B) {
	const wave, maxBatch = 512, 128
	net := testNetwork(b, 3) // 37 cells
	sys := facs.Must()
	reqs := genRequests(b, net, 42, 8192)

	runWaves := func(b *testing.B, submit func([]cac.Request) ([]serve.Response, error)) {
		b.Helper()
		b.ResetTimer()
		for done := 0; done < b.N; done += wave {
			off := done % (len(reqs) - wave)
			if _, err := submit(reqs[off : off+wave]); err != nil {
				b.Fatal(err)
			}
		}
	}

	b.Run("single-loop", func(b *testing.B) {
		svc, err := serve.New(serve.Config{Controller: sys, MaxBatch: maxBatch})
		if err != nil {
			b.Fatal(err)
		}
		defer svc.Close()
		runWaves(b, svc.SubmitAll)
	})

	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			e, err := New(Config{
				Network:       net,
				Shards:        shards,
				MaxBatch:      maxBatch,
				NewController: func(View) (cac.Controller, error) { return sys, nil },
			})
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			runWaves(b, e.SubmitWave)
		})
	}
}

// BenchmarkShardedSCC measures the ghost-exchanging sharded SCC engine
// against one sequential demand ledger on the same committed workload:
// waves of admissions with a barrier tick (and so an exchange round)
// after each wave — the tick-aligned cadence whose outcomes the golden
// suite pins byte-identical to the sequential ledger. It tracks both
// the scaling of the SCC decision path and the overhead of the
// exchange itself.
func BenchmarkShardedSCC(b *testing.B) {
	const wave, maxBatch = 256, 256
	net := testNetwork(b, 3) // 37 cells
	reqs := genRequests(b, net, 43, 8192)
	ledgerFactory := func(v View) (cac.Controller, error) {
		return scc.NewLedger(scc.Config{Network: net, Reservation: scc.ReservationFull})
	}

	b.Run("single-ledger", func(b *testing.B) {
		svc, err := serve.New(serve.Config{Controller: mustLedger(b, ledgerFactory), MaxBatch: maxBatch, Commit: true})
		if err != nil {
			b.Fatal(err)
		}
		defer svc.Close()
		b.ResetTimer()
		for done := 0; done < b.N; done += wave {
			off := done % (len(reqs) - wave)
			if _, err := svc.SubmitAll(reqs[off : off+wave]); err != nil {
				b.Fatal(err)
			}
			if err := svc.Tick(float64(done)); err != nil {
				b.Fatal(err)
			}
		}
	})

	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			e, err := New(Config{
				Network:       net,
				Shards:        shards,
				MaxBatch:      maxBatch,
				Commit:        true,
				NewController: ledgerFactory,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			if !e.Exchanging() {
				b.Fatal("sharded SCC bench must run the ghost exchange")
			}
			b.ResetTimer()
			for done := 0; done < b.N; done += wave {
				off := done % (len(reqs) - wave)
				if _, err := e.SubmitWave(reqs[off : off+wave]); err != nil {
					b.Fatal(err)
				}
				if err := e.Tick(float64(done)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func mustLedger(b *testing.B, factory func(View) (cac.Controller, error)) cac.Controller {
	b.Helper()
	ctrl, err := factory(View{})
	if err != nil {
		b.Fatal(err)
	}
	return ctrl
}
