package shard

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"facs/internal/cac"
	"facs/internal/cell"
	"facs/internal/geo"
	"facs/internal/gps"
	"facs/internal/serve"
)

// View is the slice of the network one shard owns: the stations whose
// admission, release and state-update traffic this shard's decision
// loop serializes. It is handed to Config.NewController so factories
// can build per-shard controller instances (or return one shared,
// concurrency-safe instance). Under elastic rebalancing the owned set
// changes at epoch boundaries; Engine.View always reports the current
// epoch's slice, while the view a factory received describes epoch 0
// (factories that need per-station state should size it off
// View.Network, which is epoch-invariant).
type View struct {
	index    int
	network  *cell.Network
	stations []*cell.BaseStation
}

// Index returns the shard number in [0, Engine.Shards()).
func (v View) Index() int { return v.index }

// Network returns the full deployment (shared by all shards); shard
// controllers may read its immutable geometry but must treat stations
// outside Stations() as foreign.
func (v View) Network() *cell.Network { return v.network }

// Stations returns the stations owned by this shard, in the network's
// deterministic (Q, R) order.
func (v View) Stations() []*cell.BaseStation { return v.stations }

// NumCells returns the number of owned stations.
func (v View) NumCells() int { return len(v.stations) }

// SingleView returns the view a 1-shard engine hands its controller
// factory: the whole network. Sequential replay oracles and front ends
// use it to build exactly the controller a 1-shard engine would.
func SingleView(net *cell.Network) View {
	return View{index: 0, network: net, stations: net.Stations()}
}

// Partition selects the deterministic initial station-to-shard
// assignment over the network's (Q, R) station order.
type Partition int

const (
	// PartitionRoundRobin assigns station i to shard i mod N — the
	// historical default. Interleaving neighbouring cells across shards
	// balances spatially concentrated load, at the price of every shard
	// being interested in most of the map (interest-scoped fan-out
	// degenerates toward all-to-all).
	PartitionRoundRobin Partition = iota
	// PartitionBlocks assigns contiguous ranges of the station order
	// (station i to shard i*N/cells): each shard owns a spatially
	// coherent band of the deployment, which is what makes
	// interest-scoped ghost fan-out sparse — a shard's cluster
	// neighbourhood stays mostly within its own band.
	PartitionBlocks
)

// Config parameterises an Engine.
type Config struct {
	// Network is the deployment whose cells are partitioned. Required.
	Network *cell.Network

	// Shards is the number of decision loops. Zero selects
	// min(GOMAXPROCS, cells); any value is capped at the cell count
	// (an empty shard could never receive traffic).
	Shards int

	// NewController builds the admission controller for one shard.
	// Stateful controllers (e.g. the SCC ledger) must return a fresh
	// instance per call — each instance is confined to its shard's
	// decision loop; concurrency-safe cell-local controllers (FACS
	// exact or compiled, the classical baselines) may return one shared
	// instance. Required.
	NewController func(v View) (cac.Controller, error)

	// MaxBatch is the engine's chunk size: SubmitWave splits a wave at
	// MaxBatch boundaries in global request order BEFORE routing, with
	// a cross-shard barrier between chunks, so chunk boundaries — and
	// therefore outcomes — are identical for every shard count
	// (default serve.DefaultMaxBatch). Per-shard services inherit it as
	// their micro-batch cap.
	MaxBatch int

	// MaxDelay bounds how long a per-shard batcher waits for singles to
	// coalesce (default serve.DefaultMaxDelay); it cannot change wave
	// outcomes, only single-submit latency.
	MaxDelay time.Duration

	// Queue is the per-shard intake capacity (default serve's 4 x
	// MaxBatch).
	Queue int

	// Commit makes each shard the owner of its stations' allocation
	// state, exactly like serve.Config.Commit. Handoffs require it.
	Commit bool

	// DisableExchange turns off the tick-barrier ghost-demand exchange
	// that otherwise runs automatically when every shard controller is a
	// distinct cac.DemandExchanger instance (the SCC ledger). With the
	// exchange off, each shard's instance sees only demand projected by
	// calls homed on its own cells — the pre-exchange partitioned-
	// visibility model, kept as an escape hatch and for divergence
	// measurements.
	DisableExchange bool

	// Partition selects the initial ownership layout (default
	// PartitionRoundRobin, the historical assignment).
	Partition Partition

	// RebalanceEveryTicks enables elastic shard rebalancing: every N
	// Tick barriers the engine snapshots its per-cell load counters
	// (decisions routed since the last epoch plus current occupancy),
	// runs the deterministic PlanRebalance planner, migrates the
	// planned cells — station call slots and controller state move
	// between shards through the serialized Do-op seam, inside the
	// barrier — and publishes a new ownership epoch. 0 (the default)
	// keeps the static partition. Rebalancing requires every controller
	// to be cac.CellLocal or a cac.CellMigrator; exchanging controllers
	// must additionally implement cac.ExchangeResetter so their ghost
	// state can be re-seeded under the new ownership.
	RebalanceEveryTicks int

	// Rebalance bounds the planner (moves per epoch, imbalance
	// tolerance); see PlannerConfig.
	Rebalance PlannerConfig

	// DisableInterestScope keeps the all-to-all ghost fan-out even when
	// every exchanger declares an interest radius (cac.InterestScoped).
	// Scoping never changes outcomes — it drops only rows the receiver
	// provably never reads — so this is a measurement escape hatch.
	DisableInterestScope bool
}

// Handoff describes one call transfer between cells: release the call
// at From, then ask the admission controller owning To whether the
// target cell accepts it (with handoff priority). From and To may live
// on the same shard or different ones; the engine serializes either
// case identically.
type Handoff struct {
	// CallID identifies the carried call at From.
	CallID int
	// From is the station currently carrying the call.
	From *cell.BaseStation
	// To is the station the call is moving into.
	To *cell.BaseStation
	// Est is the user's latest kinematic estimate, consumed by the
	// target-side admission decision.
	Est gps.Estimate
	// Now is the simulation time of the handoff.
	Now float64
}

// HandoffResult is the outcome of one handoff.
type HandoffResult struct {
	// Response is the target shard's admission outcome. The call
	// survives the handoff only when Response.Committed is set; an
	// accepted-but-uncommitted or rejected handoff is a drop (the
	// source side has already released — the mobile left that cell's
	// coverage regardless).
	Response serve.Response
	// CrossShard reports that source and target live on different
	// shards.
	CrossShard bool
	// Err carries a protocol failure: unknown call at the source,
	// unroutable station, or a closed engine. The target decision never
	// ran when Err is non-nil and the release did not happen unless
	// Err wraps the target shard's submission failure.
	Err error
}

// Dropped reports that the call did not survive the handoff.
func (r HandoffResult) Dropped() bool { return r.Err != nil || !r.Response.Committed }

// handoffItem is one queued handoff awaiting the protocol worker.
type handoffItem struct {
	h     Handoff
	reply chan HandoffResult
}

// waveRoute is one shard's persistent wave-scatter state: the chunk
// positions routed to the shard, the gathered requests, and the
// response buffer its service fills. One chunk holds at most MaxBatch
// requests, so the buffers are sized once at construction and never
// grow in steady state.
type waveRoute struct {
	idx  []int
	reqs []cac.Request
	out  []serve.Response
}

// bitset is a dense cell-index set (interest sets).
type bitset []uint64

func newBitset(n int) bitset    { return make(bitset, (n+63)/64) }
func (b bitset) set(i int)      { b[i>>6] |= 1 << (uint(i) & 63) }
func (b bitset) has(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }
func (b bitset) count() (n int) {
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// ownership is one immutable epoch of the cell-to-shard assignment.
// The engine swaps a fresh snapshot atomically at each rebalance, so
// routers (which may run concurrently with the barrier in free-running
// mode) always read a consistent map without locks.
type ownership struct {
	// epoch counts applied rebalances; 0 is the initial partition.
	epoch uint64
	// owner maps dense station index (network (Q, R) order) to shard.
	owner []int32
	// views are the per-shard owned-station slices for this epoch.
	views []View
	// interest[s] is the set of dense cell indices shard s's decisions
	// may read (its owned cells dilated by the exchangers' interest
	// radius); nil when the exchange is unscoped (all-to-all).
	interest []bitset
}

// Stats aggregates engine counters with the per-shard service
// snapshots.
type Stats struct {
	// Shards is the number of decision loops.
	Shards int
	// CellLocal reports that every shard controller declared
	// cac.CellLocal, i.e. outcomes are provably shard-count-invariant.
	CellLocal bool
	// Total is the field-wise aggregation of PerShard: counters sum,
	// MaxBatch/MaxLatency take the maximum, AvgLatency is weighted by
	// decided requests and the latency histogram (and so the
	// percentiles) merges (serve.Stats.Merge).
	Total serve.Stats
	// PerShard holds one service snapshot per shard.
	PerShard []serve.Stats
	// Waves counts engine-level SubmitWave calls.
	Waves int64
	// Handoffs counts completed release-and-readmit protocols;
	// CrossShard the subset spanning two shards; Drops the handoffs
	// whose target did not commit; Errs the protocol failures (unknown
	// call, unroutable station).
	Handoffs, CrossShard, Drops, Errs int64
	// Exchanges counts tick-barrier ghost-demand exchange rounds;
	// GhostRows the (cell, interval) demand rows actually applied on
	// sibling shards across them. GhostRowsAllToAll is what an
	// unscoped fan-out would have applied (every exported row on every
	// other shard): with interest scoping active GhostRows <=
	// GhostRowsAllToAll, without it they are equal. All stay zero for
	// cell-local controllers and when Config.DisableExchange is set.
	Exchanges, GhostRows, GhostRowsAllToAll int64
	// InterestScoped reports that exchange rows route by interest sets
	// instead of all-to-all.
	InterestScoped bool
	// Epoch is the current ownership version (applied rebalances since
	// construction); Rebalances counts epochs that actually migrated at
	// least one cell, Migrations the cells moved, MigratedCalls the
	// carried calls that moved with them.
	Epoch                                 uint64
	Rebalances, Migrations, MigratedCalls int64
}

// String renders a one-line operator summary.
func (s Stats) String() string {
	out := fmt.Sprintf("%d shards: %s; handoffs %d (%d cross-shard, %d dropped, %d errors)",
		s.Shards, s.Total, s.Handoffs, s.CrossShard, s.Drops, s.Errs)
	if s.Exchanges > 0 {
		out += fmt.Sprintf("; ghost exchanges %d (%d rows", s.Exchanges, s.GhostRows)
		if s.InterestScoped {
			out += fmt.Sprintf(" of %d all-to-all", s.GhostRowsAllToAll)
		}
		out += ")"
	}
	if s.Rebalances > 0 {
		out += fmt.Sprintf("; rebalances %d (epoch %d, %d cells, %d calls moved)",
			s.Rebalances, s.Epoch, s.Migrations, s.MigratedCalls)
	}
	return out
}

// Engine is the horizontally sharded admission engine: the network's
// cells are partitioned across N shards, each running its own
// controller behind its own serve.Service decision loop, with a
// deterministic router mapping every station to its owner shard.
//
// Determinism contract: a station's traffic is serialized by exactly
// one shard in submission order, and SubmitWave chunks waves at
// MaxBatch boundaries in global request order before routing, with a
// barrier between chunks. For controllers declaring cac.CellLocal
// (whose decisions read only the request's own station), every
// per-request outcome — decision, committed flag, commit error — is
// therefore byte-identical for every shard count, including the
// 1-shard engine and an inline sequential replay. Controllers that
// track cross-cell state (the SCC family) implement
// cac.DemandExchanger instead: the engine restores their global demand
// visibility through the ghost-demand exchange hosted by the Tick
// barrier, making tick-aligned runs byte-identical to a sequential
// single-ledger replay and bounding free-running divergence to
// intra-epoch admissions; see the package documentation.
//
// Elastic ownership: the cell-to-shard map is an immutable epoch
// snapshot behind an atomic pointer. With RebalanceEveryTicks set, the
// Tick barrier periodically plans (PlanRebalance, a pure function of
// the per-cell load counters) and applies cell migrations — station
// call slots detach on the old owner's loop and attach on the new
// owner's, controller state moves through cac.CellMigrator, ghost
// state re-seeds through cac.ExchangeResetter — then publishes the
// next epoch. Every step runs inside the barrier on serialized Do ops,
// so the replay contracts above survive rebalancing unchanged: for
// cell-local controllers a migration changes only which loop
// serializes a station's (unchanged) request stream.
//
// Handoffs travel a dedicated FIFO queue processed by one protocol
// worker: release on the source shard (a serialized barrier op), then
// admit on the target shard, so source-release-before-target-admit
// ordering holds for every shard count and interleaving.
type Engine struct {
	cfg       Config
	stations  []*cell.BaseStation
	hexes     []geo.Hex
	cellIdx   map[geo.Hex]int32
	services  []*serve.Service
	cellLocal bool
	// own is the current ownership epoch, swapped whole at rebalances.
	own atomic.Pointer[ownership]
	// exchangers holds each shard's controller as a cac.DemandExchanger
	// when every shard got a distinct exchanger instance (and the
	// exchange was not disabled); nil otherwise. Index-aligned with
	// services.
	exchangers []cac.DemandExchanger
	// interestRadius is the hex-ring dilation of a shard's owned cells
	// that covers every cell its decisions may read; -1 keeps the
	// all-to-all fan-out.
	interestRadius int
	// rebalanceErr is nil when the controller set supports rebalancing
	// (every controller CellLocal or CellMigrator, exchangers also
	// ExchangeResetter); otherwise it names the first offender.
	rebalanceErr error

	// cellLoad counts decisions routed per dense cell index since the
	// last epoch (accessed atomically: wave scatter, singles and the
	// handoff worker all count concurrently).
	cellLoad []int64
	loadBuf  []float64

	// waveMu serializes SubmitWave/SubmitWaveTo so the per-shard routing
	// and response-scatter buffers below are reused across waves instead
	// of rebuilt per call. Waves from concurrent callers queue on the
	// mutex — their relative order was already scheduling-dependent, so
	// serializing them changes no determinism contract.
	waveMu     sync.Mutex
	waveRoutes []waveRoute
	waveErrs   []error

	// Migration scratch, touched only inside rebalance (barrier-
	// serialized with everything else by the Tick caller's contract).
	migCalls []cell.Call
	migRows  []cac.MigratedCall
	// scoped[s] is shard s's receive buffer for interest-filtered
	// exchange rows (each shard's apply op writes only its own slot).
	scoped [][]cac.DemandRow

	mu     sync.RWMutex // guards closed against in-flight handoff sends
	closed bool

	handoffs    chan handoffItem
	handoffDone chan struct{}

	waves         atomic.Int64
	handoffCount  atomic.Int64
	crossShard    atomic.Int64
	drops         atomic.Int64
	handoffErrs   atomic.Int64
	exchanges     atomic.Int64
	ghostRows     atomic.Int64
	ghostRowsAll  atomic.Int64
	ticks         atomic.Int64
	rebalances    atomic.Int64
	migrations    atomic.Int64
	migratedCalls atomic.Int64
}

// New validates the configuration, partitions the network, starts one
// decision loop per shard plus the handoff worker, and returns the live
// engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Network == nil {
		return nil, fmt.Errorf("shard: config needs a network")
	}
	if cfg.NewController == nil {
		return nil, fmt.Errorf("shard: config needs a controller factory")
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("shard: Shards must be >= 0, got %d", cfg.Shards)
	}
	if cfg.Shards == 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if n := cfg.Network.NumCells(); cfg.Shards > n {
		cfg.Shards = n
	}
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = serve.DefaultMaxBatch
	}
	if cfg.MaxBatch < 1 {
		return nil, fmt.Errorf("shard: MaxBatch must be >= 1, got %d", cfg.MaxBatch)
	}
	if cfg.Partition != PartitionRoundRobin && cfg.Partition != PartitionBlocks {
		return nil, fmt.Errorf("shard: unknown partition strategy %d", cfg.Partition)
	}
	if cfg.RebalanceEveryTicks < 0 {
		return nil, fmt.Errorf("shard: RebalanceEveryTicks must be >= 0, got %d", cfg.RebalanceEveryTicks)
	}

	stations := cfg.Network.Stations()
	e := &Engine{
		cfg:            cfg,
		stations:       stations,
		hexes:          make([]geo.Hex, len(stations)),
		cellIdx:        make(map[geo.Hex]int32, len(stations)),
		services:       make([]*serve.Service, 0, cfg.Shards),
		interestRadius: -1,
		cellLoad:       make([]int64, len(stations)),
		loadBuf:        make([]float64, len(stations)),
		handoffs:       make(chan handoffItem, cfg.Shards),
		handoffDone:    make(chan struct{}),
		cellLocal:      true,
	}
	for i, bs := range stations {
		e.hexes[i] = bs.Hex()
		e.cellIdx[bs.Hex()] = int32(i)
	}
	// Epoch 0: the deterministic initial partition over the network's
	// (Q, R) station order.
	owner := make([]int32, len(stations))
	for i := range stations {
		switch cfg.Partition {
		case PartitionBlocks:
			owner[i] = int32(i * cfg.Shards / len(stations))
		default:
			owner[i] = int32(i % cfg.Shards)
		}
	}
	initial := e.buildOwnership(owner, 0)
	e.own.Store(initial)

	ctrls := make([]cac.Controller, 0, cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		ctrl, err := cfg.NewController(initial.views[i])
		if err != nil {
			e.closeServices()
			return nil, fmt.Errorf("shard: building controller for shard %d: %w", i, err)
		}
		if _, ok := ctrl.(cac.CellLocal); !ok {
			e.cellLocal = false
		}
		ctrls = append(ctrls, ctrl)
		svc, err := serve.New(serve.Config{
			Controller: ctrl,
			MaxBatch:   cfg.MaxBatch,
			MaxDelay:   cfg.MaxDelay,
			Queue:      cfg.Queue,
			Commit:     cfg.Commit,
		})
		if err != nil {
			e.closeServices()
			return nil, fmt.Errorf("shard: starting shard %d: %w", i, err)
		}
		e.services = append(e.services, svc)
	}
	if !cfg.DisableExchange {
		e.exchangers = demandExchangers(ctrls)
	}
	e.rebalanceErr = rebalanceSupport(ctrls, e.exchangers)
	if cfg.RebalanceEveryTicks > 0 && e.rebalanceErr != nil {
		e.closeServices()
		return nil, e.rebalanceErr
	}
	if e.exchangers != nil && !cfg.DisableInterestScope {
		e.interestRadius = interestRadius(e.exchangers)
	}
	if e.interestRadius >= 0 {
		// Rebuild epoch 0 with interest sets (the radius was unknown
		// before the controllers existed).
		e.own.Store(e.buildOwnership(owner, 0))
	}
	e.scoped = make([][]cac.DemandRow, len(e.services))
	e.waveRoutes = make([]waveRoute, len(e.services))
	for s := range e.waveRoutes {
		e.waveRoutes[s] = waveRoute{
			idx:  make([]int, 0, cfg.MaxBatch),
			reqs: make([]cac.Request, 0, cfg.MaxBatch),
			out:  make([]serve.Response, cfg.MaxBatch),
		}
	}
	e.waveErrs = make([]error, len(e.services))
	go e.handoffLoop()
	return e, nil
}

// demandExchangers returns the controllers as exchange participants if
// and only if every one is a cac.DemandExchanger and all are distinct
// instances — a shared instance would ingest its own exports as ghost
// demand, double-counting every call. Factories for exchanging
// controllers must therefore build one instance per shard (which the
// decision-loop confinement contract already requires for any stateful
// controller).
func demandExchangers(ctrls []cac.Controller) []cac.DemandExchanger {
	out := make([]cac.DemandExchanger, len(ctrls))
	seen := make(map[cac.Controller]bool, len(ctrls))
	for i, ctrl := range ctrls {
		ex, ok := ctrl.(cac.DemandExchanger)
		if !ok || seen[ctrl] {
			return nil
		}
		seen[ctrl] = true
		out[i] = ex
	}
	return out
}

// rebalanceSupport reports whether the controller set can be
// rebalanced: every controller must be cac.CellLocal (nothing to move)
// or a cac.CellMigrator (state moves through the seam), and active
// exchangers must be cac.ExchangeResetters (ghost state re-seeds after
// the epoch flips).
func rebalanceSupport(ctrls []cac.Controller, exchangers []cac.DemandExchanger) error {
	for i, ctrl := range ctrls {
		_, local := ctrl.(cac.CellLocal)
		_, mig := ctrl.(cac.CellMigrator)
		if !local && !mig {
			return fmt.Errorf("shard: rebalancing needs cell-local or migratable controllers; shard %d's %q is neither", i, ctrl.Name())
		}
	}
	for i, ex := range exchangers {
		if _, ok := ex.(cac.ExchangeResetter); !ok {
			return fmt.Errorf("shard: rebalancing an exchanging engine needs resettable exchangers; shard %d's %q is not", i, ex.Name())
		}
	}
	return nil
}

// interestRadius returns the exchange's read radius: the maximum over
// every exchanger's declared cac.InterestScoped radius, or -1
// (all-to-all) when any exchanger lacks the interface or declares no
// bound.
func interestRadius(exchangers []cac.DemandExchanger) int {
	radius := 0
	for _, ex := range exchangers {
		is, ok := ex.(cac.InterestScoped)
		if !ok {
			return -1
		}
		r := is.InterestRadiusCells()
		if r < 0 {
			return -1
		}
		if r > radius {
			radius = r
		}
	}
	return radius
}

// buildOwnership materializes one epoch: per-shard views in station
// order plus (when the exchange is interest-scoped) each shard's
// interest set — its owned cells dilated by interestRadius hex rings.
func (e *Engine) buildOwnership(owner []int32, epoch uint64) *ownership {
	n := e.cfg.Shards
	o := &ownership{epoch: epoch, owner: owner, views: make([]View, n)}
	for s := 0; s < n; s++ {
		o.views[s] = View{index: s, network: e.cfg.Network}
	}
	for i, s := range owner {
		o.views[s].stations = append(o.views[s].stations, e.stations[i])
	}
	if e.interestRadius >= 0 {
		o.interest = make([]bitset, n)
		for s := range o.interest {
			o.interest[s] = newBitset(len(e.stations))
		}
		for j, s := range owner {
			hj := e.hexes[j]
			set := o.interest[s]
			for i, hi := range e.hexes {
				if hj.DistanceTo(hi) <= e.interestRadius {
					set.set(i)
				}
			}
		}
	}
	return o
}

// closeServices tears down the services started so far (construction
// failure path).
func (e *Engine) closeServices() {
	for _, svc := range e.services {
		_ = svc.Close()
	}
}

// Shards returns the number of decision loops (after capping at the
// cell count).
func (e *Engine) Shards() int { return len(e.services) }

// CellLocal reports that every shard controller declared
// cac.CellLocal, making outcomes shard-count-invariant.
func (e *Engine) CellLocal() bool { return e.cellLocal }

// Epoch returns the current ownership version: 0 until the first
// applied rebalance, incremented once per applied migration plan.
func (e *Engine) Epoch() uint64 { return e.own.Load().epoch }

// InterestScoped reports that the ghost exchange routes rows by
// interest sets instead of all-to-all.
func (e *Engine) InterestScoped() bool { return e.interestRadius >= 0 }

// ShardOf returns the shard owning cell h at the current epoch, or
// false for a hex outside the deployment.
func (e *Engine) ShardOf(h geo.Hex) (int, bool) {
	ci, ok := e.cellIdx[h]
	if !ok {
		return 0, false
	}
	return int(e.own.Load().owner[ci]), true
}

// View returns shard s's slice of the network at the current epoch.
func (e *Engine) View(s int) View { return e.own.Load().views[s] }

// route resolves the owner shard of a request's station and counts the
// decision against the cell's load window.
func (e *Engine) route(req cac.Request) (int, error) {
	if req.Station == nil {
		return 0, fmt.Errorf("shard: request for call %d has no station", req.Call.ID)
	}
	ci, ok := e.cellIdx[req.Station.Hex()]
	if !ok {
		return 0, fmt.Errorf("shard: station %v is outside the engine's network", req.Station.Hex())
	}
	atomic.AddInt64(&e.cellLoad[ci], 1)
	return int(e.own.Load().owner[ci]), nil
}

// Submit routes one request to its station's shard and blocks until
// the decision. Safe for any number of concurrent callers.
func (e *Engine) Submit(req cac.Request) serve.Response {
	return <-e.SubmitAsync(req)
}

// SubmitAsync routes one request to its station's shard and returns a
// buffered channel carrying exactly one response. An unroutable
// request is answered immediately with a rejection carrying the error.
func (e *Engine) SubmitAsync(req cac.Request) <-chan serve.Response {
	s, err := e.route(req)
	if err != nil {
		ch := make(chan serve.Response, 1)
		ch <- serve.Response{Decision: cac.Reject, Err: err}
		return ch
	}
	return e.services[s].SubmitAsync(req)
}

// SubmitWave decides a caller-defined batch, returning responses in
// request order. The wave is split at MaxBatch boundaries in global
// request order first; each chunk's requests are then routed to their
// owner shards and decided concurrently, with a barrier before the
// next chunk. Chunk boundaries — and, for cell-local controllers, all
// outcomes — are therefore independent of the shard count: the 1-shard
// engine realises exactly serve.SubmitAll's deterministic wave
// semantics.
func (e *Engine) SubmitWave(reqs []cac.Request) ([]serve.Response, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	out := make([]serve.Response, len(reqs))
	if err := e.SubmitWaveTo(reqs, out); err != nil {
		return nil, err
	}
	return out, nil
}

// SubmitWaveTo is SubmitWave into a caller-provided response buffer:
// out[i] receives the response for reqs[i]. The routing and scatter
// state lives on the engine and is reused across waves, so a steady
// caller that also reuses out allocates nothing per wave. out must
// hold at least len(reqs) slots.
//
//facs:hotpath
func (e *Engine) SubmitWaveTo(reqs []cac.Request, out []serve.Response) error {
	if len(reqs) == 0 {
		return nil
	}
	if len(out) < len(reqs) {
		return fmt.Errorf("shard: response buffer too short: %d requests, %d slots", len(reqs), len(out)) //facs:alloc reject/error path; formats nothing on the steady-state wave
	}
	e.waveMu.Lock()
	defer e.waveMu.Unlock()
	routes, errs := e.waveRoutes, e.waveErrs
	for lo := 0; lo < len(reqs); lo += e.cfg.MaxBatch {
		hi := min(lo+e.cfg.MaxBatch, len(reqs))
		own := e.own.Load()
		for s := range routes {
			routes[s].idx = routes[s].idx[:0]
			routes[s].reqs = routes[s].reqs[:0]
			errs[s] = nil
		}
		for i := lo; i < hi; i++ {
			if reqs[i].Station == nil {
				return fmt.Errorf("shard: request for call %d has no station", reqs[i].Call.ID) //facs:alloc reject/error path; formats nothing on the steady-state wave
			}
			ci, ok := e.cellIdx[reqs[i].Station.Hex()]
			if !ok {
				return fmt.Errorf("shard: station %v is outside the engine's network", reqs[i].Station.Hex()) //facs:alloc reject/error path; formats nothing on the steady-state wave
			}
			atomic.AddInt64(&e.cellLoad[ci], 1)
			s := int(own.owner[ci])
			routes[s].idx = append(routes[s].idx, i)
			routes[s].reqs = append(routes[s].reqs, reqs[i])
		}
		var wg sync.WaitGroup
		for s := range routes {
			if len(routes[s].reqs) == 0 {
				continue
			}
			wg.Add(1)
			go func(s int) { //facs:alloc one fan-out goroutine per owning shard per batch, not per request
				defer wg.Done()
				n := len(routes[s].reqs)
				if err := e.services[s].SubmitAllInto(routes[s].reqs, routes[s].out[:n]); err != nil {
					errs[s] = err
					return
				}
				for j := 0; j < n; j++ {
					out[routes[s].idx[j]] = routes[s].out[j]
				}
			}(s)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
	}
	e.waves.Add(1)
	return nil
}

// Tick fans one cac.Ticker.OnTick delivery out to every shard and
// blocks until all have applied it — a cross-shard barrier: every
// request enqueued before Tick is decided before it fires, and no
// request submitted after Tick returns can overtake it on any shard.
//
// For demand-exchanging controllers (see Exchanging) the barrier also
// hosts the ghost-demand exchange: once every shard has applied the
// tick (and, for the SCC ledger, re-aggregated its matrix), each
// shard's demand delta is collected and fanned back out — to every
// sibling, or only to interested ones when the exchange is scoped —
// all before Tick returns. The exchange cadence is therefore exactly
// the tick cadence — deterministic and race-free by construction,
// since both phases run as serialized ops on each shard's own decision
// loop.
//
// With RebalanceEveryTicks set, every Nth barrier additionally runs
// one rebalance epoch between the flush and the exchange: plan,
// migrate, publish the next ownership snapshot, re-seed exchange
// state. The exchange that follows carries absolute demand matrices
// (see cac.ExchangeResetter), so every ghost is consistent under the
// new ownership before any post-barrier decision runs.
//
// Callers wanting a globally consistent exchange (and any caller using
// rebalancing) must quiesce submissions across Tick, exactly as the
// closed-loop drivers do.
func (e *Engine) Tick(now float64) error {
	for _, svc := range e.services {
		if err := svc.Tick(now); err != nil {
			return err
		}
	}
	if err := e.Flush(); err != nil {
		return err
	}
	if n := e.cfg.RebalanceEveryTicks; n > 0 {
		if t := e.ticks.Add(1); t%int64(n) == 0 {
			if err := e.rebalance(); err != nil {
				return err
			}
		}
	}
	return e.exchangeDemand()
}

// Exchanging reports that the engine runs the ghost-demand exchange at
// tick barriers: every shard controller is a distinct
// cac.DemandExchanger instance and Config.DisableExchange is unset.
func (e *Engine) Exchanging() bool { return e.exchangers != nil }

// ForceRebalance runs one rebalance epoch immediately: flush, plan,
// migrate, publish, then a full exchange round. Like Tick it assumes
// quiesced submissions. It returns an error when the controller set
// does not support rebalancing (see Config.RebalanceEveryTicks).
func (e *Engine) ForceRebalance() error {
	if err := e.Flush(); err != nil {
		return err
	}
	if err := e.rebalance(); err != nil {
		return err
	}
	return e.exchangeDemand()
}

// rebalance runs one epoch inside the barrier: snapshot the load
// counters, plan, migrate each planned cell through the Do-op seam
// (source loop first, then target loop), publish the next ownership
// snapshot, and re-seed exchanger state. The caller runs (or is) the
// tick barrier, so no wave is in flight and every Do op serializes
// cleanly behind drained queues.
func (e *Engine) rebalance() error {
	if e.rebalanceErr != nil {
		return e.rebalanceErr
	}
	cur := e.own.Load()
	load := e.loadBuf
	for i := range load {
		// Decisions routed this epoch plus present occupancy: the former
		// finds hot cells, the latter breaks ties toward cells whose
		// calls would actually move. Both inputs are identical across
		// shard counts, so plans replay identically too.
		load[i] = float64(atomic.LoadInt64(&e.cellLoad[i])) + float64(e.stations[i].Used())
	}
	plan := PlanRebalance(load, cur.owner, len(e.services), e.cfg.Rebalance)
	for i := range e.cellLoad {
		atomic.StoreInt64(&e.cellLoad[i], 0)
	}
	if len(plan) == 0 {
		return nil
	}
	for _, m := range plan {
		if err := e.migrate(m); err != nil {
			return err
		}
	}
	next := make([]int32, len(cur.owner))
	copy(next, cur.owner)
	for _, m := range plan {
		next[m.Cell] = int32(m.To)
	}
	e.own.Store(e.buildOwnership(next, cur.epoch+1))
	if e.exchangers != nil {
		if err := e.eachShard(func(s int) error {
			return e.services[s].Do(func(ctrl cac.Controller) {
				if r, ok := ctrl.(cac.ExchangeResetter); ok {
					r.ResetExchange()
				}
			})
		}); err != nil {
			return err
		}
	}
	e.rebalances.Add(1)
	e.migrations.Add(int64(len(plan)))
	return nil
}

// migrate moves one cell: detach its station's call slots and extract
// its controller state on the source shard's loop, then attach and
// insert both on the target shard's loop. Two serialized ops — at
// every instant the cell's state lives on exactly one loop.
func (e *Engine) migrate(m Migration) error {
	bs := e.stations[m.Cell]
	h := e.hexes[m.Cell]
	var attachErr error
	if err := e.services[m.From].Do(func(ctrl cac.Controller) {
		if e.cfg.Commit {
			e.migCalls = bs.DetachCalls(e.migCalls[:0])
		}
		if mig, ok := ctrl.(cac.CellMigrator); ok {
			e.migRows = mig.MigrateOut(h, e.migRows[:0])
		}
	}); err != nil {
		return err
	}
	if err := e.services[m.To].Do(func(ctrl cac.Controller) {
		if e.cfg.Commit {
			attachErr = bs.AttachCalls(e.migCalls)
		}
		if mig, ok := ctrl.(cac.CellMigrator); ok {
			mig.MigrateIn(e.migRows)
		}
	}); err != nil {
		return err
	}
	if attachErr != nil {
		return fmt.Errorf("shard: migrating cell %v from shard %d to %d: %w", h, m.From, m.To, attachErr)
	}
	e.migratedCalls.Add(int64(len(e.migCalls)))
	e.migCalls = e.migCalls[:0]
	e.migRows = e.migRows[:0]
	return nil
}

// exchangeDemand runs one exchange round inside the tick barrier:
// phase 1 collects every shard's demand delta (a serialized op on each
// shard's loop), phase 2 applies the union on every shard — every
// delta except a shard's own, in ascending source-shard order,
// filtered down to the receiver's interest set when the exchange is
// scoped. Both phases complete before the caller's Tick returns.
func (e *Engine) exchangeDemand() error {
	if e.exchangers == nil {
		return nil
	}
	own := e.own.Load()
	deltas := make([]cac.DemandDelta, len(e.services))
	collect := func(s int) error {
		return e.services[s].Do(func(cac.Controller) { deltas[s] = e.exchangers[s].ExportDemand() })
	}
	if err := e.eachShard(collect); err != nil {
		return err
	}
	var rows int64
	for _, d := range deltas {
		rows += int64(len(d.Rows))
	}
	apply := func(s int) error {
		return e.services[s].Do(func(cac.Controller) {
			var fanned int64
			for src := range deltas {
				if src == s || len(deltas[src].Rows) == 0 {
					continue
				}
				d := deltas[src]
				if own.interest != nil {
					// Keep only rows inside this shard's read set; the
					// generation still advances on empty filtered deltas so
					// replay guards stay aligned with the exporter.
					buf := e.scoped[s][:0]
					set := own.interest[s]
					for _, r := range d.Rows {
						if ci, ok := e.cellIdx[r.Cell]; ok && set.has(int(ci)) {
							buf = append(buf, r)
						}
					}
					e.scoped[s] = buf
					d = cac.DemandDelta{Gen: d.Gen, Rows: buf}
				}
				fanned += int64(len(d.Rows))
				e.exchangers[s].ApplyGhost(src, d)
			}
			e.ghostRows.Add(fanned)
		})
	}
	if err := e.eachShard(apply); err != nil {
		return err
	}
	e.exchanges.Add(1)
	e.ghostRowsAll.Add(rows * int64(len(e.services)-1))
	return nil
}

// eachShard runs fn(s) for every shard concurrently and returns the
// first error.
func (e *Engine) eachShard(fn func(s int) error) error {
	errs := make([]error, len(e.services))
	var wg sync.WaitGroup
	for s := range e.services {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			errs[s] = fn(s)
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Flush blocks until everything enqueued on every shard has been
// processed.
func (e *Engine) Flush() error {
	return e.eachShard(func(s int) error { return e.services[s].Flush() })
}

// Do runs fn inside shard s's decision loop, serialized after
// everything already enqueued there, and blocks until it returns. A
// globally consistent multi-shard view additionally requires the
// caller to quiesce submissions (as the closed-loop drivers do between
// waves).
func (e *Engine) Do(s int, fn func(ctrl cac.Controller)) error {
	return e.services[s].Do(fn)
}

// Release retires a carried call on its station's shard, ordered after
// everything already enqueued there (see serve.Service.Release).
func (e *Engine) Release(callID int, station *cell.BaseStation, now float64) error {
	ci, ok := e.cellIdx[station.Hex()]
	if !ok {
		return fmt.Errorf("shard: station %v is outside the engine's network", station.Hex())
	}
	return e.services[e.own.Load().owner[ci]].Release(callID, station, now)
}

// UpdateState delivers a fresh kinematic estimate for a carried call to
// its station's shard (see serve.Service.UpdateState).
func (e *Engine) UpdateState(callID int, est gps.Estimate, station *cell.BaseStation) error {
	ci, ok := e.cellIdx[station.Hex()]
	if !ok {
		return fmt.Errorf("shard: station %v is outside the engine's network", station.Hex())
	}
	return e.services[e.own.Load().owner[ci]].UpdateState(callID, est, station)
}

// HandoffAsync enqueues one handoff on the engine's FIFO protocol
// queue and returns a buffered channel carrying exactly one result.
// The single protocol worker processes handoffs strictly in queue
// order, each to completion: source release (barrier on the source
// shard), then target admission — so two handoffs never interleave and
// source-release-before-target-admit holds regardless of shard count.
func (e *Engine) HandoffAsync(h Handoff) <-chan HandoffResult {
	reply := make(chan HandoffResult, 1)
	if !e.cfg.Commit {
		e.handoffErrs.Add(1)
		reply <- HandoffResult{Err: fmt.Errorf("shard: handoffs require Commit mode (the engine must own station state)")}
		return reply
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		e.handoffErrs.Add(1)
		reply <- HandoffResult{Err: serve.ErrClosed}
		return reply
	}
	e.handoffs <- handoffItem{h: h, reply: reply}
	return reply
}

// HandoffCall runs one handoff to completion and returns its result.
func (e *Engine) HandoffCall(h Handoff) HandoffResult {
	return <-e.HandoffAsync(h)
}

// handoffLoop is the protocol worker: one handoff at a time, in FIFO
// order.
func (e *Engine) handoffLoop() {
	defer close(e.handoffDone)
	for it := range e.handoffs {
		it.reply <- e.processHandoff(it.h)
	}
}

// processHandoff executes the two-phase protocol for one handoff.
func (e *Engine) processHandoff(h Handoff) HandoffResult {
	var res HandoffResult
	if h.From == nil || h.To == nil {
		e.handoffErrs.Add(1)
		res.Err = fmt.Errorf("shard: handoff of call %d needs both stations", h.CallID)
		return res
	}
	srcCi, okSrc := e.cellIdx[h.From.Hex()]
	dstCi, okDst := e.cellIdx[h.To.Hex()]
	if !okSrc || !okDst {
		e.handoffErrs.Add(1)
		res.Err = fmt.Errorf("shard: handoff of call %d touches a station outside the engine's network", h.CallID)
		return res
	}
	own := e.own.Load()
	src, dst := int(own.owner[srcCi]), int(own.owner[dstCi])
	res.CrossShard = src != dst

	// Phase 1: release at the source, serialized inside the source
	// shard's loop after everything already enqueued there.
	var call cell.Call
	var relErr error
	if err := e.services[src].Do(func(ctrl cac.Controller) {
		call, relErr = h.From.Release(h.CallID)
		if relErr != nil {
			return
		}
		if obs, ok := ctrl.(cac.Observer); ok {
			obs.OnRelease(h.CallID, h.From, h.Now)
		}
	}); err != nil {
		e.handoffErrs.Add(1)
		res.Err = err
		return res
	}
	if relErr != nil {
		e.handoffErrs.Add(1)
		res.Err = relErr
		return res
	}

	// Phase 2: admission at the target, with handoff priority. The
	// single-request wave is its own chunk, so the decision sees every
	// previously committed call.
	req := cac.Request{
		Call:    cell.Call{ID: call.ID, Class: call.Class, BU: call.BU},
		Station: h.To,
		Obs:     gps.Observe(h.Est, h.To.Pos()),
		Est:     h.Est,
		Handoff: true,
		Now:     h.Now,
	}
	atomic.AddInt64(&e.cellLoad[dstCi], 1)
	resps, err := e.services[dst].SubmitAll([]cac.Request{req})
	if err != nil {
		e.handoffErrs.Add(1)
		res.Err = err
		return res
	}
	res.Response = resps[0]
	e.handoffCount.Add(1)
	if res.CrossShard {
		e.crossShard.Add(1)
	}
	if !res.Response.Committed {
		e.drops.Add(1)
	}
	return res
}

// Stats snapshots every shard's service counters and aggregates them
// into engine totals. After Flush (or Close) the snapshot is exact.
func (e *Engine) Stats() Stats {
	st := Stats{
		Shards:            len(e.services),
		CellLocal:         e.cellLocal,
		PerShard:          make([]serve.Stats, len(e.services)),
		Waves:             e.waves.Load(),
		Handoffs:          e.handoffCount.Load(),
		CrossShard:        e.crossShard.Load(),
		Drops:             e.drops.Load(),
		Errs:              e.handoffErrs.Load(),
		Exchanges:         e.exchanges.Load(),
		GhostRows:         e.ghostRows.Load(),
		GhostRowsAllToAll: e.ghostRowsAll.Load(),
		InterestScoped:    e.interestRadius >= 0,
		Epoch:             e.own.Load().epoch,
		Rebalances:        e.rebalances.Load(),
		Migrations:        e.migrations.Load(),
		MigratedCalls:     e.migratedCalls.Load(),
	}
	for i, svc := range e.services {
		s := svc.Stats()
		st.PerShard[i] = s
		st.Total = st.Total.Merge(s)
	}
	return st
}

// Close stops handoff intake, waits for the protocol worker, then
// drains and stops every shard. Idempotent; submissions racing with
// Close either complete normally or report serve.ErrClosed.
func (e *Engine) Close() error {
	e.mu.Lock()
	if !e.closed {
		e.closed = true
		close(e.handoffs)
	}
	e.mu.Unlock()
	<-e.handoffDone
	var firstErr error
	for _, svc := range e.services {
		if err := svc.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
