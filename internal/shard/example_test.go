package shard_test

import (
	"fmt"

	"facs/internal/cac"
	"facs/internal/cell"
	"facs/internal/shard"
	"facs/internal/traffic"
)

// ExampleEngine shards a seven-cell network across three decision
// loops, streams one wave, and hands a committed call off to a
// neighbouring cell through the serialized two-phase protocol.
func ExampleEngine() {
	net, err := cell.NewNetwork(cell.NetworkConfig{Rings: 1, CapacityBU: 20})
	if err != nil {
		panic(err)
	}
	eng, err := shard.New(shard.Config{
		Network: net,
		Shards:  3,
		Commit:  true,
		NewController: func(shard.View) (cac.Controller, error) {
			return cac.CompleteSharing{}, nil // cell-local: shard-count-invariant
		},
	})
	if err != nil {
		panic(err)
	}
	defer eng.Close()

	stations := net.Stations()
	reqs := make([]cac.Request, 3)
	for i := range reqs {
		reqs[i] = cac.Request{
			Call:    cell.Call{ID: i + 1, Class: traffic.Video, BU: 10},
			Station: stations[i], // three cells, three owner shards
		}
	}
	responses, err := eng.SubmitWave(reqs)
	if err != nil {
		panic(err)
	}
	for i, r := range responses {
		fmt.Printf("call %d: %s committed=%v\n", i+1, r.Decision, r.Committed)
	}

	res := eng.HandoffCall(shard.Handoff{CallID: 1, From: stations[0], To: stations[1], Now: 5})
	fmt.Printf("handoff: %s cross-shard=%v dropped=%v\n",
		res.Response.Decision, res.CrossShard, res.Dropped())

	st := eng.Stats()
	fmt.Printf("%d shards decided %d, handoffs %d\n", st.Shards, st.Total.Decided, st.Handoffs)
	// Output:
	// call 1: accept committed=true
	// call 2: accept committed=true
	// call 3: accept committed=true
	// handoff: accept cross-shard=true dropped=false
	// 3 shards decided 4, handoffs 1
}
