package shard

import (
	"strings"
	"testing"

	"facs/internal/cac"
	"facs/internal/cell"
	"facs/internal/facs"
	"facs/internal/geo"
	"facs/internal/gps"
	"facs/internal/serve"
	"facs/internal/sim"
	"facs/internal/traffic"
)

// testNetwork builds a fresh multi-ring network.
func testNetwork(t testing.TB, rings int) *cell.Network {
	t.Helper()
	net, err := cell.NewNetwork(cell.NetworkConfig{Rings: rings})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// genRequests samples n deterministic admission requests against net.
// Requests are pure functions of (seed, i) except for the station
// pointer, so two equal networks yield structurally identical streams.
func genRequests(t testing.TB, net *cell.Network, seed int64, n int) []cac.Request {
	t.Helper()
	rng := sim.NewStream(seed, "shard-reqs")
	stations := net.Stations()
	out := make([]cac.Request, n)
	for i := range out {
		bs := stations[rng.Intn(len(stations))]
		class := traffic.DefaultMix().Sample(rng)
		est := gps.Estimate{
			Pos: geo.Point{
				X: bs.Pos().X + sim.Uniform(rng, -1000, 1000),
				Y: bs.Pos().Y + sim.Uniform(rng, -1000, 1000),
			},
			HeadingDeg: sim.Uniform(rng, -180, 180),
			SpeedKmh:   sim.Uniform(rng, 0, 110),
		}
		out[i] = cac.Request{
			Call:    cell.Call{ID: i + 1, Class: class, BU: class.BandwidthUnits()},
			Station: bs,
			Obs:     gps.Observe(est, bs.Pos()),
			Est:     est,
			Handoff: i%9 == 0,
			Now:     float64(i),
		}
	}
	return out
}

// sharedFACS returns a factory handing every shard the same exact
// System (immutable, concurrency-safe, cell-local).
func sharedFACS(t testing.TB) func(View) (cac.Controller, error) {
	t.Helper()
	sys := facs.Must()
	return func(View) (cac.Controller, error) { return sys, nil }
}

func guardFactory(View) (cac.Controller, error) { return cac.NewGuardChannel(8) }

func TestPartitionDeterministicAndComplete(t *testing.T) {
	net := testNetwork(t, 2) // 19 cells
	for _, shards := range []int{1, 2, 4, 19, 64} {
		e, err := New(Config{Network: net, Shards: shards, NewController: guardFactory})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		want := shards
		if want > net.NumCells() {
			want = net.NumCells()
		}
		if e.Shards() != want {
			t.Fatalf("shards=%d: engine has %d loops, want %d", shards, e.Shards(), want)
		}
		// Every station owned exactly once, round-robin over (Q, R) order.
		counts := make([]int, e.Shards())
		for i, bs := range net.Stations() {
			s, ok := e.ShardOf(bs.Hex())
			if !ok {
				t.Fatalf("station %v unrouted", bs.Hex())
			}
			if s != i%e.Shards() {
				t.Fatalf("station %d routed to shard %d, want %d", i, s, i%e.Shards())
			}
			counts[s]++
		}
		total := 0
		for s, c := range counts {
			if c != e.View(s).NumCells() {
				t.Fatalf("shard %d view has %d cells, router says %d", s, e.View(s).NumCells(), c)
			}
			total += c
		}
		if total != net.NumCells() {
			t.Fatalf("partition covers %d cells, want %d", total, net.NumCells())
		}
		if _, ok := e.ShardOf(geo.Hex{Q: 99, R: 99}); ok {
			t.Fatal("foreign hex should not route")
		}
		if !e.CellLocal() {
			t.Fatal("guard-channel shards should report cell-local")
		}
	}
}

func TestConfigValidation(t *testing.T) {
	net := testNetwork(t, 1)
	if _, err := New(Config{NewController: guardFactory}); err == nil {
		t.Fatal("missing network should fail")
	}
	if _, err := New(Config{Network: net}); err == nil {
		t.Fatal("missing factory should fail")
	}
	if _, err := New(Config{Network: net, Shards: -1, NewController: guardFactory}); err == nil {
		t.Fatal("negative shards should fail")
	}
	if _, err := New(Config{Network: net, NewController: guardFactory, MaxBatch: -2}); err == nil {
		t.Fatal("negative MaxBatch should fail")
	}
	if _, err := New(Config{Network: net, NewController: func(View) (cac.Controller, error) {
		return nil, cell.ErrUnknownCall
	}}); err == nil {
		t.Fatal("factory failure should fail construction")
	}
}

// TestWaveMatchesDecideAll pins the commit-off contract: a sharded wave
// equals one sequential DecideAll for every shard count.
func TestWaveMatchesDecideAll(t *testing.T) {
	net := testNetwork(t, 2)
	sys := facs.Must()
	reqs := genRequests(t, net, 7, 300)
	want, err := cac.DecideAll(sys, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4, 8} {
		e, err := New(Config{
			Network: net, Shards: shards, MaxBatch: 32,
			NewController: func(View) (cac.Controller, error) { return sys, nil },
		})
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.SubmitWave(reqs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i].Err != nil {
				t.Fatalf("shards=%d: request %d failed: %v", shards, i, got[i].Err)
			}
			if got[i].Decision != want[i] {
				t.Fatalf("shards=%d: decision %d is %v, want %v", shards, i, got[i].Decision, want[i])
			}
		}
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// outcome is the committed-mode per-request result under comparison.
type outcome struct {
	d         cac.Decision
	committed bool
}

// replayWaves is the sequential oracle for committed waves: the same
// global MaxBatch chunking the engine performs, decided inline against
// one controller and committed in request order.
func replayWaves(t *testing.T, ctrl cac.Controller, waves [][]cac.Request, maxBatch int) []outcome {
	t.Helper()
	observer, _ := ctrl.(cac.Observer)
	var out []outcome
	for _, wave := range waves {
		for lo := 0; lo < len(wave); lo += maxBatch {
			hi := min(lo+maxBatch, len(wave))
			chunk := wave[lo:hi]
			decisions, err := cac.DecideAll(ctrl, chunk)
			if err != nil {
				t.Fatal(err)
			}
			for i, d := range decisions {
				o := outcome{d: d}
				if d.Accepted() {
					call := chunk[i].Call
					call.AdmittedAt = chunk[i].Now
					call.Handoff = chunk[i].Handoff
					if err := chunk[i].Station.Admit(call); err == nil {
						o.committed = true
						if observer != nil {
							observer.OnAdmit(chunk[i])
						}
					}
				}
				out = append(out, o)
			}
		}
	}
	return out
}

// TestCommittedWavesShardCountInvariant is the heart of the
// determinism contract: with Commit on, the full per-request outcome
// stream (decision AND committed flag) is byte-identical for shard
// counts 1/2/4/8 and equals the inline sequential replay.
func TestCommittedWavesShardCountInvariant(t *testing.T) {
	const rings, seed, total, waveLen, maxBatch = 2, 21, 600, 96, 32

	// The oracle runs on its own network instance (station state is
	// consumed by commits).
	oracleNet := testNetwork(t, rings)
	oracleReqs := genRequests(t, oracleNet, seed, total)
	var waves [][]cac.Request
	for lo := 0; lo < total; lo += waveLen {
		waves = append(waves, oracleReqs[lo:min(lo+waveLen, total)])
	}
	want := replayWaves(t, facs.Must(), waves, maxBatch)

	for _, shards := range []int{1, 2, 4, 8} {
		net := testNetwork(t, rings)
		reqs := genRequests(t, net, seed, total)
		e, err := New(Config{
			Network: net, Shards: shards, MaxBatch: maxBatch, Commit: true,
			NewController: sharedFACS(t),
		})
		if err != nil {
			t.Fatal(err)
		}
		var got []outcome
		for lo := 0; lo < total; lo += waveLen {
			resps, err := e.SubmitWave(reqs[lo:min(lo+waveLen, total)])
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range resps {
				got = append(got, outcome{d: r.Decision, committed: r.Committed})
			}
		}
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("shards=%d: %d outcomes, want %d", shards, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("shards=%d: outcome %d is %+v, want %+v", shards, i, got[i], want[i])
			}
		}
		// Station state must agree with the oracle network cell by cell.
		oracleStations := oracleNet.Stations()
		for i, bs := range net.Stations() {
			if bs.Used() != oracleStations[i].Used() {
				t.Fatalf("shards=%d: station %v used %d, oracle %d", shards, bs.Hex(), bs.Used(), oracleStations[i].Used())
			}
		}
	}
}

// TestHandoffProtocol covers the two-phase handoff on one engine:
// in-shard and cross-shard transfers, unknown calls, and drops into a
// full target cell.
func TestHandoffProtocol(t *testing.T) {
	net := testNetwork(t, 1) // 7 cells
	e, err := New(Config{Network: net, Shards: 4, Commit: true, NewController: guardFactory})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	stations := net.Stations()

	// Admit one voice call in cell 0 through the engine.
	reqs := genRequests(t, net, 5, 1)
	reqs[0].Station = stations[0]
	reqs[0].Call.Class = traffic.Voice
	reqs[0].Call.BU = traffic.Voice.BandwidthUnits()
	resps, err := e.SubmitWave(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if !resps[0].Committed {
		t.Fatalf("seed call not committed: %+v", resps[0])
	}
	id := reqs[0].Call.ID

	// Move it to a station owned by a different shard.
	var target *cell.BaseStation
	src, _ := e.ShardOf(stations[0].Hex())
	for _, bs := range stations[1:] {
		if s, _ := e.ShardOf(bs.Hex()); s != src {
			target = bs
			break
		}
	}
	if target == nil {
		t.Fatal("no cross-shard target in a 7-cell 4-shard engine")
	}
	res := e.HandoffCall(Handoff{
		CallID: id, From: stations[0], To: target,
		Est: reqs[0].Est, Now: 10,
	})
	if res.Err != nil || !res.Response.Committed || !res.CrossShard {
		t.Fatalf("cross-shard handoff failed: %+v", res)
	}
	if _, ok := stations[0].Call(id); ok {
		t.Fatal("source still carries the call after handoff")
	}
	c, ok := target.Call(id)
	if !ok || !c.Handoff || c.AdmittedAt != 10 {
		t.Fatalf("target does not carry the handed-off call: %+v ok=%v", c, ok)
	}

	// Unknown call: protocol error, no state change.
	if res := e.HandoffCall(Handoff{CallID: 999, From: stations[0], To: target, Now: 11}); res.Err == nil {
		t.Fatal("handoff of unknown call should error")
	}

	// A full target drops the handoff; the source has already released.
	full := stations[3]
	for i := 0; full.Free() >= traffic.Voice.BandwidthUnits(); i++ {
		if err := full.Admit(cell.Call{ID: 5000 + i, Class: traffic.Video, BU: traffic.Video.BandwidthUnits()}); err != nil {
			break
		}
	}
	res = e.HandoffCall(Handoff{CallID: id, From: target, To: full, Est: reqs[0].Est, Now: 12})
	if res.Err != nil {
		t.Fatalf("drop should not be a protocol error: %v", res.Err)
	}
	if !res.Dropped() {
		t.Fatalf("handoff into a full cell should drop: %+v", res)
	}
	if _, ok := target.Call(id); ok {
		t.Fatal("source must release even when the target drops")
	}

	st := e.Stats()
	if st.Handoffs != 2 || st.Drops != 1 || st.Errs != 1 || st.CrossShard < 1 {
		t.Fatalf("handoff counters: %+v", st)
	}
	if !strings.Contains(st.String(), "handoffs 2") {
		t.Fatalf("stats summary: %s", st)
	}
}

func TestHandoffRequiresCommit(t *testing.T) {
	net := testNetwork(t, 1)
	e, err := New(Config{Network: net, Shards: 2, NewController: guardFactory})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	stations := net.Stations()
	if res := e.HandoffCall(Handoff{CallID: 1, From: stations[0], To: stations[1]}); res.Err == nil {
		t.Fatal("handoff without Commit should error")
	}
}

// fakeExchanger records the exchange protocol: exports hand out one
// fresh row per call, applies log (source, generation) pairs.
type fakeExchanger struct {
	cac.GuardChannel
	index   int
	gen     uint64
	applied []appliedDelta
}

type appliedDelta struct {
	src  int
	gen  uint64
	rows int
}

func (f *fakeExchanger) ExportDemand() cac.DemandDelta {
	f.gen++
	return cac.DemandDelta{Gen: f.gen, Rows: []cac.DemandRow{{Cell: geo.Hex{Q: f.index}, K: 0, Amount: 1}}}
}

func (f *fakeExchanger) ApplyGhost(src int, d cac.DemandDelta) {
	f.applied = append(f.applied, appliedDelta{src: src, gen: d.Gen, rows: len(d.Rows)})
}

// TestTickBarrierGhostExchange pins the engine side of the exchange:
// every tick, each shard exports exactly once and receives every other
// shard's delta in ascending source order, with the engine counters
// tracking rounds and fanned-out rows.
func TestTickBarrierGhostExchange(t *testing.T) {
	net := testNetwork(t, 2)
	const shards = 4
	exchangers := map[int]*fakeExchanger{}
	e, err := New(Config{Network: net, Shards: shards, NewController: func(v View) (cac.Controller, error) {
		f := &fakeExchanger{index: v.Index()}
		exchangers[v.Index()] = f
		return f, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if !e.Exchanging() {
		t.Fatal("distinct exchanger instances should enable the exchange")
	}
	const ticks = 3
	for i := 0; i < ticks; i++ {
		if err := e.Tick(float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for s, f := range exchangers {
		var gen uint64
		var applied []appliedDelta
		if err := e.Do(s, func(cac.Controller) { gen = f.gen; applied = append(applied, f.applied...) }); err != nil {
			t.Fatal(err)
		}
		if gen != ticks {
			t.Fatalf("shard %d exported %d times, want %d", s, gen, ticks)
		}
		if len(applied) != ticks*(shards-1) {
			t.Fatalf("shard %d received %d deltas, want %d", s, len(applied), ticks*(shards-1))
		}
		for i, a := range applied {
			round, pos := i/(shards-1), i%(shards-1)
			wantSrc := pos
			if wantSrc >= s {
				wantSrc++ // own delta skipped
			}
			if a.src != wantSrc || a.gen != uint64(round+1) || a.rows != 1 {
				t.Fatalf("shard %d delivery %d is %+v, want src %d gen %d rows 1", s, i, a, wantSrc, round+1)
			}
		}
	}
	st := e.Stats()
	if st.Exchanges != ticks || st.GhostRows != int64(ticks*shards*(shards-1)) {
		t.Fatalf("exchange counters: %+v", st)
	}
	if !strings.Contains(st.String(), "ghost exchanges 3") {
		t.Fatalf("stats summary: %s", st)
	}
}

// TestExchangeRequiresDistinctInstances covers the two ways the
// exchange stays off: a shared controller instance (which would ingest
// its own exports) and the explicit DisableExchange escape hatch.
func TestExchangeRequiresDistinctInstances(t *testing.T) {
	net := testNetwork(t, 1)
	shared := &fakeExchanger{}
	e, err := New(Config{Network: net, Shards: 3, NewController: func(View) (cac.Controller, error) {
		return shared, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.Exchanging() {
		t.Fatal("a shared exchanger instance must not enable the exchange")
	}
	if err := e.Tick(1); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Exchanges != 0 || !strings.Contains(st.String(), "handoffs 0") || strings.Contains(st.String(), "ghost") {
		t.Fatalf("exchange ran on a shared instance: %+v (%s)", st, st)
	}

	disabled, err := New(Config{Network: net, Shards: 3, DisableExchange: true,
		NewController: func(v View) (cac.Controller, error) { return &fakeExchanger{index: v.Index()}, nil }})
	if err != nil {
		t.Fatal(err)
	}
	defer disabled.Close()
	if disabled.Exchanging() {
		t.Fatal("DisableExchange must keep the exchange off")
	}
	if err := disabled.Tick(1); err != nil {
		t.Fatal(err)
	}
	if st := disabled.Stats(); st.Exchanges != 0 {
		t.Fatalf("disabled engine exchanged: %+v", st)
	}
}

// tickRecorder counts tick deliveries (cell-local on purpose: it keeps
// no admission state).
type tickRecorder struct {
	cac.GuardChannel
	ticks []float64
}

func (r *tickRecorder) OnTick(now float64) { r.ticks = append(r.ticks, now) }

func TestTickBarrierReachesEveryShard(t *testing.T) {
	net := testNetwork(t, 1)
	recorders := map[int]*tickRecorder{}
	e, err := New(Config{Network: net, Shards: 3, NewController: func(v View) (cac.Controller, error) {
		r := &tickRecorder{}
		recorders[v.Index()] = r
		return r, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if len(recorders) != 3 {
		t.Fatalf("factory ran %d times, want 3", len(recorders))
	}
	if err := e.Tick(42); err != nil {
		t.Fatal(err)
	}
	// Tick is a barrier: by the time it returns, every shard applied it.
	for s, r := range recorders {
		var got []float64
		if err := e.Do(s, func(cac.Controller) { got = append(got, r.ticks...) }); err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || got[0] != 42 {
			t.Fatalf("shard %d saw ticks %v, want [42]", s, got)
		}
	}
	if st := e.Stats(); st.Total.Ticks != 3 {
		t.Fatalf("aggregated ticks = %d, want 3", st.Total.Ticks)
	}
}

func TestStatsAggregation(t *testing.T) {
	net := testNetwork(t, 2)
	e, err := New(Config{Network: net, Shards: 4, MaxBatch: 16, Commit: true, NewController: guardFactory})
	if err != nil {
		t.Fatal(err)
	}
	reqs := genRequests(t, net, 13, 200)
	if _, err := e.SubmitWave(reqs); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Shards != 4 || len(st.PerShard) != 4 || st.Waves != 1 {
		t.Fatalf("shape: %+v", st)
	}
	var decided, histTotal int64
	for _, s := range st.PerShard {
		decided += s.Decided
	}
	for _, n := range st.Total.LatencyHist {
		histTotal += n
	}
	if st.Total.Decided != int64(len(reqs)) || decided != st.Total.Decided {
		t.Fatalf("decided: total %d, per-shard sum %d, want %d", st.Total.Decided, decided, len(reqs))
	}
	if histTotal != st.Total.Decided {
		t.Fatalf("merged histogram holds %d samples, want %d", histTotal, st.Total.Decided)
	}
	if st.Total.P50Latency() > st.Total.P99Latency() {
		t.Fatalf("merged percentiles not monotone: %+v", st.Total)
	}
	if st.Total.Accepted+st.Total.Rejected != st.Total.Decided {
		t.Fatalf("unbalanced outcomes: %+v", st.Total)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCloseIsIdempotentAndRejectsLateTraffic(t *testing.T) {
	net := testNetwork(t, 1)
	e, err := New(Config{Network: net, Shards: 2, Commit: true, NewController: guardFactory})
	if err != nil {
		t.Fatal(err)
	}
	reqs := genRequests(t, net, 3, 4)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if resp := e.Submit(reqs[0]); resp.Err == nil {
		t.Fatal("submit after close should fail")
	}
	if _, err := e.SubmitWave(reqs); err == nil {
		t.Fatal("wave after close should fail")
	}
	stations := net.Stations()
	if res := e.HandoffCall(Handoff{CallID: 1, From: stations[0], To: stations[1]}); res.Err == nil {
		t.Fatal("handoff after close should fail")
	}
}

// TestUnroutableRequests covers the router error paths.
func TestUnroutableRequests(t *testing.T) {
	net := testNetwork(t, 1)
	foreignNet := testNetwork(t, 2)
	foreign := foreignNet.Stations()[len(foreignNet.Stations())-1] // outside the 1-ring deployment
	e, err := New(Config{Network: net, Shards: 2, NewController: guardFactory})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if resp := e.Submit(cac.Request{Call: cell.Call{ID: 1, Class: traffic.Voice, BU: 5}}); resp.Err == nil {
		t.Fatal("stationless request should fail")
	}
	req := cac.Request{Call: cell.Call{ID: 2, Class: traffic.Voice, BU: 5}, Station: foreign}
	if resp := e.Submit(req); resp.Err == nil {
		t.Fatal("foreign station should fail routing")
	}
	if _, err := e.SubmitWave([]cac.Request{req}); err == nil {
		t.Fatal("foreign station should fail wave routing")
	}
	if err := e.Release(1, foreign, 0); err == nil {
		t.Fatal("foreign release should fail")
	}
	if err := e.UpdateState(1, gps.Estimate{}, foreign); err == nil {
		t.Fatal("foreign update should fail")
	}
}

// TestSubmitWaveToMatchesSubmitWave pins the zero-churn scatter path:
// SubmitWaveTo fills a caller-provided buffer with exactly the
// responses SubmitWave returns, reusing the engine's routing buffers
// across waves, and rejects short buffers.
func TestSubmitWaveToMatchesSubmitWave(t *testing.T) {
	netA := testNetwork(t, 2)
	netB := testNetwork(t, 2)
	sys := facs.Must()
	factory := func(View) (cac.Controller, error) { return sys, nil }
	a, err := New(Config{Network: netA, Shards: 4, MaxBatch: 32, NewController: factory})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := New(Config{Network: netB, Shards: 4, MaxBatch: 32, NewController: factory})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	out := make([]serve.Response, 300)
	for wave := 0; wave < 3; wave++ {
		reqsA := genRequests(t, netA, int64(40+wave), 300)
		reqsB := genRequests(t, netB, int64(40+wave), 300)
		want, err := a.SubmitWave(reqsA)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.SubmitWaveTo(reqsB, out); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if want[i].Decision != out[i].Decision || want[i].Committed != out[i].Committed {
				t.Fatalf("wave %d response %d: SubmitWave %+v, SubmitWaveTo %+v",
					wave, i, want[i], out[i])
			}
		}
	}
	if err := b.SubmitWaveTo(genRequests(t, netB, 9, 10), make([]serve.Response, 9)); err == nil {
		t.Fatal("short response buffer should error")
	}
	if err := b.SubmitWaveTo(nil, nil); err != nil {
		t.Fatalf("empty wave: %v", err)
	}
}
