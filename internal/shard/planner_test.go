package shard

import (
	"math/rand"
	"reflect"
	"testing"
)

// randomPlannerInput samples a load vector and a valid ownership map.
func randomPlannerInput(rng *rand.Rand, cells, shards int) ([]float64, []int32) {
	load := make([]float64, cells)
	owner := make([]int32, cells)
	for i := range load {
		load[i] = float64(rng.Intn(200))
		if rng.Intn(4) == 0 {
			load[i] *= 10 // occasional hot cell
		}
		owner[i] = int32(rng.Intn(shards))
	}
	// Ensure no shard starts empty (New never builds one, and the
	// planner's no-emptying invariant presumes a real partition).
	for s := 0; s < shards; s++ {
		owner[s%cells] = int32(s)
	}
	return load, owner
}

// TestPlanRebalanceDeterministicAndPure pins the replay contract: the
// planner is a pure function — identical inputs give identical plans,
// and the inputs come back untouched.
func TestPlanRebalanceDeterministicAndPure(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		shards := 2 + rng.Intn(7)
		cells := shards + rng.Intn(60)
		load, owner := randomPlannerInput(rng, cells, shards)
		loadCopy := append([]float64(nil), load...)
		ownerCopy := append([]int32(nil), owner...)
		a := PlanRebalance(load, owner, shards, PlannerConfig{})
		b := PlanRebalance(load, owner, shards, PlannerConfig{})
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("trial %d: identical inputs planned differently:\n%v\n%v", trial, a, b)
		}
		if !reflect.DeepEqual(load, loadCopy) || !reflect.DeepEqual(owner, ownerCopy) {
			t.Fatalf("trial %d: planner mutated its inputs", trial)
		}
	}
}

// TestPlanRebalanceInvariants pins the plan's structural guarantees on
// randomized inputs: every migration names a cell currently on From
// with To distinct; no cell moves twice; no shard is emptied; the plan
// respects MaxMoves; and applying the whole plan never increases the
// max-min shard-load spread.
func TestPlanRebalanceInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		shards := 2 + rng.Intn(7)
		cells := shards + rng.Intn(80)
		load, owner := randomPlannerInput(rng, cells, shards)
		cfg := PlannerConfig{MaxMoves: 1 + rng.Intn(12)}
		plan := PlanRebalance(load, owner, shards, cfg)
		if len(plan) > cfg.MaxMoves {
			t.Fatalf("trial %d: %d moves exceed MaxMoves %d", trial, len(plan), cfg.MaxMoves)
		}

		spread := func(own []int32) float64 {
			sl := make([]float64, shards)
			for c, s := range own {
				sl[s] += load[c]
			}
			hi, lo := sl[0], sl[0]
			for _, v := range sl[1:] {
				hi, lo = max(hi, v), min(lo, v)
			}
			return hi - lo
		}

		cur := append([]int32(nil), owner...)
		count := make([]int, shards)
		for _, s := range cur {
			count[s]++
		}
		before := spread(cur)
		seen := make(map[int]bool)
		for i, m := range plan {
			if m.Cell < 0 || m.Cell >= cells || m.From == m.To {
				t.Fatalf("trial %d: malformed migration %+v", trial, m)
			}
			if seen[m.Cell] {
				t.Fatalf("trial %d: cell %d moves twice", trial, m.Cell)
			}
			seen[m.Cell] = true
			if int(cur[m.Cell]) != m.From {
				t.Fatalf("trial %d move %d: cell %d is on shard %d, plan says From %d", trial, i, m.Cell, cur[m.Cell], m.From)
			}
			cur[m.Cell] = int32(m.To)
			count[m.From]--
			count[m.To]++
			if count[m.From] < 1 {
				t.Fatalf("trial %d: move %d empties shard %d", trial, i, m.From)
			}
		}
		// Still a partition: every cell owned by a valid shard.
		for c, s := range cur {
			if int(s) < 0 || int(s) >= shards {
				t.Fatalf("trial %d: cell %d ends on invalid shard %d", trial, c, s)
			}
		}
		if after := spread(cur); after > before {
			t.Fatalf("trial %d: plan grew the load spread from %g to %g", trial, before, after)
		}
	}
}

// TestPlanRebalanceMovesHotCells pins the planner's purpose on a
// concrete hotspot: one shard carrying nearly all load sheds cells
// toward the idle one, and a balanced input plans nothing.
func TestPlanRebalanceMovesHotCells(t *testing.T) {
	load := []float64{100, 90, 80, 1, 1, 1}
	owner := []int32{0, 0, 0, 0, 1, 1}
	plan := PlanRebalance(load, owner, 2, PlannerConfig{})
	if len(plan) == 0 {
		t.Fatal("hotspot input planned no migrations")
	}
	for _, m := range plan {
		if m.From != 0 || m.To != 1 {
			t.Fatalf("migration %+v does not drain the hot shard", m)
		}
	}

	balanced := PlanRebalance([]float64{10, 10, 10, 10}, []int32{0, 1, 0, 1}, 2, PlannerConfig{})
	if len(balanced) != 0 {
		t.Fatalf("balanced input planned %v", balanced)
	}
}

// TestPlanRebalanceDegenerateInputs pins the refuse-to-plan cases:
// fewer than two shards, mismatched slices, and corrupt ownership all
// yield an empty plan instead of a panic or a bogus migration.
func TestPlanRebalanceDegenerateInputs(t *testing.T) {
	if p := PlanRebalance([]float64{5, 1}, []int32{0, 0}, 1, PlannerConfig{}); p != nil {
		t.Fatalf("single shard planned %v", p)
	}
	if p := PlanRebalance([]float64{5, 1, 2}, []int32{0, 1}, 2, PlannerConfig{}); p != nil {
		t.Fatalf("mismatched inputs planned %v", p)
	}
	if p := PlanRebalance(nil, nil, 2, PlannerConfig{}); p != nil {
		t.Fatalf("empty inputs planned %v", p)
	}
	if p := PlanRebalance([]float64{5, 1}, []int32{0, 7}, 2, PlannerConfig{}); p != nil {
		t.Fatalf("corrupt ownership planned %v", p)
	}
}
