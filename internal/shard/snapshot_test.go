package shard

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"facs/internal/cac"
	"facs/internal/cell"
	"facs/internal/scc"
	"facs/internal/snap"
)

// engineSnapshotBlob captures e into a byte blob.
func engineSnapshotBlob(t *testing.T, e *Engine) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := e.SnapshotTo(&buf); err != nil {
		t.Fatalf("SnapshotTo: %v", err)
	}
	return buf.Bytes()
}

// driveEngine pushes a request stream through e in waves of 64 with a
// tick barrier every second wave, returning a digest of every
// response's decision and commit flag.
func driveEngine(t *testing.T, e *Engine, reqs []cac.Request) string {
	t.Helper()
	var digest bytes.Buffer
	for off := 0; off < len(reqs); off += 64 {
		end := off + 64
		if end > len(reqs) {
			end = len(reqs)
		}
		resps, err := e.SubmitWave(reqs[off:end])
		if err != nil {
			t.Fatal(err)
		}
		for i, resp := range resps {
			// Commit failures (the cell filled between decide and
			// commit) are legitimate responses; fold them into the
			// digest rather than aborting.
			fmt.Fprintf(&digest, "%d:%v:%v:%v\n", off+i, resp.Decision, resp.Committed, resp.Err != nil)
		}
		if (off/64)%2 == 1 {
			if err := e.Tick(float64(off)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	return digest.String()
}

// TestEngineSnapshotRoundTrip pins the engine-level restore contract:
// a snapshot taken at a quiesced barrier restores into a fresh
// identically-configured engine that (a) re-snapshots to identical
// bytes and (b) serves an identical continuation stream with identical
// decisions, commits and stats — for stateless (guard), shared-
// immutable (FACS) and stateful (SCC ledger) controllers across shard
// counts 1/2/4.
func TestEngineSnapshotRoundTrip(t *testing.T) {
	factories := map[string]func(t testing.TB) func(View) (cac.Controller, error){
		"guard": func(testing.TB) func(View) (cac.Controller, error) { return guardFactory },
		"facs":  func(t testing.TB) func(View) (cac.Controller, error) { return sharedFACS(t) },
		"scc": func(testing.TB) func(View) (cac.Controller, error) {
			return func(v View) (cac.Controller, error) {
				return scc.NewLedger(scc.Config{Network: v.Network()})
			}
		},
	}
	for name, newFactory := range factories {
		for _, shards := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("%s/shards=%d", name, shards), func(t *testing.T) {
				build := func() (*Engine, *cell.Network) {
					net := testNetwork(t, 2)
					e, err := New(Config{
						Network:       net,
						Shards:        shards,
						Commit:        true,
						NewController: newFactory(t),
					})
					if err != nil {
						t.Fatal(err)
					}
					return e, net
				}

				a, netA := build()
				defer a.Close()
				preA := genRequests(t, netA, 77, 320)
				driveEngine(t, a, preA)
				blob := engineSnapshotBlob(t, a)

				b, netB := build()
				defer b.Close()
				if err := b.RestoreFrom(bytes.NewReader(blob)); err != nil {
					t.Fatalf("RestoreFrom: %v", err)
				}
				if got := engineSnapshotBlob(t, b); !bytes.Equal(got, blob) {
					t.Fatalf("restored engine re-snapshots to different bytes (%d vs %d)", len(got), len(blob))
				}

				contA := genRequests(t, netA, 177, 320)
				contB := genRequests(t, netB, 177, 320)
				for i := range contA {
					contA[i].Call.ID += 1000
					contB[i].Call.ID += 1000
				}
				digA := driveEngine(t, a, contA)
				digB := driveEngine(t, b, contB)
				if digA != digB {
					t.Fatal("continuation decisions diverge after restore")
				}
				// Engine counters are restored; per-shard serve.Stats
				// (latency, decided counts) are process-local
				// observability and deliberately are not.
				sa, sb := a.Stats(), b.Stats()
				if sa.Waves != sb.Waves || sa.Epoch != sb.Epoch ||
					sa.Handoffs != sb.Handoffs || sa.GhostRows != sb.GhostRows ||
					sa.Rebalances != sb.Rebalances || sa.Migrations != sb.Migrations {
					t.Fatalf("engine counters diverge: %+v vs %+v", sa, sb)
				}
				if fa, fb := engineSnapshotBlob(t, a), engineSnapshotBlob(t, b); !bytes.Equal(fa, fb) {
					t.Fatal("final snapshots diverge after continuation")
				}
			})
		}
	}
}

// TestEngineSnapshotAfterRebalance pins that epoch ownership survives
// the round trip: a snapshot taken after a forced rebalance restores
// with the rebalanced owner map and epoch, not the initial partition.
func TestEngineSnapshotAfterRebalance(t *testing.T) {
	build := func() (*Engine, *cell.Network) {
		net := testNetwork(t, 2)
		e, err := New(Config{
			Network:       net,
			Shards:        2,
			Commit:        true,
			NewController: func(v View) (cac.Controller, error) { return scc.NewLedger(scc.Config{Network: v.Network()}) },
		})
		if err != nil {
			t.Fatal(err)
		}
		return e, net
	}
	a, netA := build()
	defer a.Close()
	driveEngine(t, a, genRequests(t, netA, 7, 256))
	if err := a.ForceRebalance(); err != nil {
		t.Fatal(err)
	}
	if a.Epoch() == 0 {
		t.Fatal("forced rebalance did not bump the epoch")
	}
	blob := engineSnapshotBlob(t, a)

	b, _ := build()
	defer b.Close()
	if err := b.RestoreFrom(bytes.NewReader(blob)); err != nil {
		t.Fatalf("RestoreFrom: %v", err)
	}
	if b.Epoch() != a.Epoch() {
		t.Fatalf("restored epoch %d, want %d", b.Epoch(), a.Epoch())
	}
	if got := engineSnapshotBlob(t, b); !bytes.Equal(got, blob) {
		t.Fatal("restored engine re-snapshots to different bytes")
	}
}

// TestEngineSnapshotStale pins the configuration guards: shard count
// and network shape must match.
func TestEngineSnapshotStale(t *testing.T) {
	build := func(rings, shards int) *Engine {
		net := testNetwork(t, rings)
		e, err := New(Config{Network: net, Shards: shards, Commit: true, NewController: guardFactory})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { e.Close() })
		return e
	}
	a := build(2, 2)
	blob := engineSnapshotBlob(t, a)
	if err := build(2, 4).RestoreFrom(bytes.NewReader(blob)); !errors.Is(err, snap.ErrSnapshotStale) {
		t.Errorf("shard-count mismatch: err = %v, want ErrSnapshotStale", err)
	}
	if err := build(1, 2).RestoreFrom(bytes.NewReader(blob)); !errors.Is(err, snap.ErrSnapshotStale) {
		t.Errorf("network mismatch: err = %v, want ErrSnapshotStale", err)
	}
	// A guard-bandwidth change is caught by the nested controller
	// envelope even though the engine envelope matches.
	other := testNetwork(t, 2)
	diffGuard, err := New(Config{Network: other, Shards: 2, Commit: true,
		NewController: func(View) (cac.Controller, error) { return cac.NewGuardChannel(3) }})
	if err != nil {
		t.Fatal(err)
	}
	defer diffGuard.Close()
	if err := diffGuard.RestoreFrom(bytes.NewReader(blob)); !errors.Is(err, snap.ErrSnapshotStale) {
		t.Errorf("controller-config mismatch: err = %v, want ErrSnapshotStale", err)
	}
}

// TestEngineSnapshotCorrupt pins that damaged engine blobs surface the
// corrupt sentinel.
func TestEngineSnapshotCorrupt(t *testing.T) {
	net := testNetwork(t, 1)
	e, err := New(Config{Network: net, Shards: 2, Commit: true, NewController: guardFactory})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	driveEngine(t, e, genRequests(t, net, 3, 128))
	blob := engineSnapshotBlob(t, e)
	for _, i := range []int{0, 30, len(blob) / 2, len(blob) - 2} {
		mut := append([]byte(nil), blob...)
		mut[i] ^= 0x40
		if err := e.RestoreFrom(bytes.NewReader(mut)); err == nil ||
			(!errors.Is(err, snap.ErrSnapshotCorrupt) && !errors.Is(err, snap.ErrSnapshotStale)) {
			t.Errorf("flip at %d: err = %v, want snapshot sentinel", i, err)
		}
	}
	if err := e.RestoreFrom(bytes.NewReader(blob[:len(blob)-9])); !errors.Is(err, snap.ErrSnapshotCorrupt) {
		t.Errorf("truncation: err = %v, want ErrSnapshotCorrupt", err)
	}
	if err := e.RestoreFrom(bytes.NewReader(blob)); err != nil {
		t.Fatalf("restore of good blob after corrupt attempts: %v", err)
	}
}
