// Package shard is the horizontally sharded admission engine: the
// scale-out layer between the admission controllers and the network
// front end.
//
// A single serve.Service serializes every decision through one
// goroutine — correct, but a ceiling on multi-cell throughput. The
// engine removes the ceiling along the seam the CAC literature
// identifies: admission state is naturally cell-local, with explicit
// cross-cell transfer only at handoff. Cells are partitioned across N
// shards by a deterministic router (PartitionRoundRobin spreads
// station i of the network's (Q, R) order to shard i mod N;
// PartitionBlocks assigns contiguous runs), each shard runs its own
// controller behind its own serve.Service decision loop, and every
// station's traffic — decisions, releases, state updates — is
// serialized by exactly one shard. The cell-to-shard map is an
// immutable epoch value swapped whole at rebalances, so routing never
// observes a half-applied layout.
//
// # Determinism
//
// Three mechanisms make outcomes reproducible for every shard count:
//
//   - Ownership: one shard owns each station, so a station's requests
//     are decided in submission order no matter how many shards exist.
//   - Global chunking: SubmitWave splits waves at MaxBatch boundaries
//     in global request order BEFORE routing and barriers between
//     chunks, so every request is decided against the same chunk-start
//     station state regardless of how the chunk scattered across
//     shards.
//   - Serialized handoffs: a single protocol worker processes the
//     handoff queue in FIFO order, releasing on the source shard (a
//     barrier op) before admitting on the target shard.
//
// For controllers declaring cac.CellLocal — FACS exact and compiled,
// complete sharing, guard channel, multi-priority threshold — this
// makes every per-request outcome byte-identical to the 1-shard
// engine and to an inline sequential replay (the pinned oracle in
// internal/experiments). Engine.CellLocal reports whether a
// configuration is in that regime.
//
// # Ghost-demand exchange
//
// Controllers with cross-cell state — the SCC demand ledger — are not
// cell-local: partitioning them would confine each instance to the
// demand of calls homed on its own cells. When every shard controller
// is a distinct cac.DemandExchanger instance, the engine therefore
// runs a ghost-demand exchange inside the Tick barrier: once every
// shard has applied the tick, each shard's demand delta is collected
// (a serialized op on its own loop) and the union fanned back out to
// every other shard, all before Tick returns. Exchange cadence equals
// tick cadence — deterministic and race-free by construction. Global
// demand visibility is thus restored at tick granularity; what remains
// is bounded intra-epoch divergence (admissions on another shard since
// the last barrier), which vanishes entirely for tick-aligned waves:
// the ghost suites pin sharded SCC decisions byte-identical at shard
// counts 1/2/4/8 to a sequential single-ledger replay
// (internal/experiments/ghost_test.go) and quantify the free-running
// gap. Config.DisableExchange restores the old partitioned-visibility
// model; Engine.Exchanging reports the active regime, and Stats counts
// exchange rounds and fanned-out demand rows.
//
// # Elastic rebalancing
//
// A static partition wastes capacity under skew. With
// Config.RebalanceEveryTicks > 0 the engine counts per-cell routed
// work, and every Nth Tick barrier plans a new ownership epoch with
// PlanRebalance — a pure greedy bin-packing function (identical load
// snapshots give identical plans on every replay) — then migrates the
// planned cells inside the barrier: the source shard detaches the
// cell's call slots and, for cac.CellMigrator controllers, its
// per-cell controller rows; the destination attaches both; the epoch
// pointer swaps; and every exchanger is reset (cac.ExchangeResetter)
// so the next export republishes the absolute demand matrix under the
// new layout. Construction refuses the cadence unless every controller
// is cac.CellLocal or a CellMigrator. Cell-local byte-identity at
// shard counts 1/2/4/8 survives mid-run epochs (the randomized soak in
// rebalance_test.go pins decisions, commits, handoffs and final
// occupancy), and tick-aligned SCC keeps the exchange identity because
// the post-epoch absolute re-export restores exact global visibility.
//
// When every exchanger declares a bounded interest radius
// (cac.InterestScoped, e.g. scc.Ledger with MaxSpeedKmh configured),
// the exchange fans each demand row only to shards whose dilated
// ownership — owned cells plus the radius — contains the row's cell.
// A dropped row is one the receiver could never read, so outcomes are
// unchanged while Stats.GhostRows falls below Stats.GhostRowsAllToAll
// on skewed workloads; Config.DisableInterestScope restores the full
// fan-out.
//
// # Entry points
//
// New starts the engine; SubmitWave / Submit / SubmitAsync decide
// traffic; Tick is a cross-shard barrier (hosting the ghost exchange);
// Release / UpdateState route to the owner shard; HandoffCall /
// HandoffAsync run the two-phase cross-shard handoff; ForceRebalance
// applies an epoch on demand; Epoch, ShardOf and View read the current
// ownership; Stats aggregates per-shard serve.Stats (including merged
// latency percentiles) with handoff, exchange and rebalance counters.
// experiments.RunSharded drives the closed loop; cmd/facs-serve wires
// the engine behind -shards / -partition / -rebalance-ticks.
package shard
