package facs

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"facs/internal/cac"
	"facs/internal/cell"
	"facs/internal/fuzzy"
	"facs/internal/gps"
)

// DefaultSurfaceGridSize is the per-axis lookup-table resolution used by
// NewCompiled when none is given. See fuzzy.DefaultSurfaceGridSize for
// the accuracy rationale; the golden-equivalence tests pin the realised
// error at this size.
const DefaultSurfaceGridSize = fuzzy.DefaultSurfaceGridSize

// surfaceErrorSafety scales the sampled per-cell interpolation error
// bounds (fuzzy.WithSurfaceErrorMap). A single centre probe can
// under-read the peak error of a cell crossed asymmetrically by a
// t-norm crease; doubling it gives the guard band its margin. The
// golden-equivalence suite verifies empirically that the resulting
// guards are sound (zero decision or grade flips).
const surfaceErrorSafety = 2

// CompiledController is the lookup-table fast path of the FACS: both
// controllers compiled into dense interpolation surfaces
// (FLC1: speed x angle x distance -> Cv; FLC2: Cv x R x Cs -> A/R) at
// construction time, so that a full admission decision costs two
// trilinear interpolations instead of two complete Mamdani inferences.
//
// Accept/reject outcomes and decision grades are protected by a guard
// band: each surface carries per-cell interpolation error bounds, and
// when the interpolated A/R value lands within the propagated bound of
// the accept threshold or a grade boundary, the controller re-runs the
// exact engines for that one request. Everywhere else the fast answer
// is provably on the same side of every boundary as the exact one, so
// decisions and grades match the exact System; the crisp Cv and A/R
// values themselves carry the small interpolation tolerance documented
// in the golden-equivalence test suite (internal/facs/compiled_test.go).
//
// A CompiledController is immutable after construction (the fallback
// counters aside) and safe for concurrent use.
type CompiledController struct {
	sys        *System
	surf1      *fuzzy.Surface
	surf2      *fuzzy.Surface
	boundaries []float64 // accept threshold + grade switch points, on the A/R axis

	fast  atomic.Int64
	exact atomic.Int64
}

var (
	_ cac.Controller      = (*CompiledController)(nil)
	_ cac.BatchController = (*CompiledController)(nil)
	_ cac.CellLocal       = (*CompiledController)(nil)
)

// CellLocal implements cac.CellLocal: like the exact System, a decision
// reads only the request and its station's occupancy against immutable
// surfaces, and the controller is safe for concurrent use — one
// instance may be shared across the shards of a sharded engine.
func (c *CompiledController) CellLocal() {}

// NewCompiled constructs the exact System for the given options, then
// compiles both controllers into surfaces with gridSize uniform nodes
// per axis (gridSize <= 0 selects DefaultSurfaceGridSize). Compilation
// evaluates the exact engines over the whole grid and is sharded
// across CPUs; it is a one-time cost paid to make every subsequent
// decision cheap.
func NewCompiled(gridSize int, opts ...Option) (*CompiledController, error) {
	sys, err := New(opts...)
	if err != nil {
		return nil, err
	}
	return CompileSystem(sys, gridSize)
}

// compileCount counts completed surface compilations process-wide (one
// per compiled System, i.e. per FLC1+FLC2 surface pair). Cached loads
// (CompileSystemCached) do not increment it, which is exactly what the
// cache tests assert: a warm start leaves the counter unchanged.
var compileCount atomic.Int64

// CompileCount returns the number of surface compilations performed by
// this process so far. It is a diagnostic for the load-or-compile
// cache: a service that starts from a warm cache reports zero.
func CompileCount() int64 { return compileCount.Load() }

// CompileSystem compiles an already constructed System into a
// CompiledController without rebuilding it.
func CompileSystem(sys *System, gridSize int) (*CompiledController, error) {
	if sys == nil {
		return nil, fmt.Errorf("facs: compile needs a system")
	}
	if gridSize <= 0 {
		gridSize = DefaultSurfaceGridSize
	}
	surf1, err := fuzzy.NewSurface(sys.FLC1(),
		fuzzy.WithSurfaceGrid(gridSize),
		fuzzy.WithSurfaceErrorMap(surfaceErrorSafety),
	)
	if err != nil {
		return nil, fmt.Errorf("facs: compiling FLC1 surface: %w", err)
	}
	// Request and counter-state inputs are integral bandwidth units in
	// every admission query, so instead of a dense uniform subdivision
	// those two axes carry exactly one node per integer (plus membership
	// corners): every realistic query hits their nodes and reproduces
	// the exact engine with zero error on those axes, confining
	// interpolation to the genuinely continuous Cv axis — and shrinking
	// the table and its compile time by an order of magnitude.
	surf2, err := fuzzy.NewSurface(sys.FLC2(),
		fuzzy.WithSurfaceGrid(gridSize, 2, 2),
		fuzzy.WithSurfaceNodes(VarRequest, integerNodes(sys.params.RequestMax)...),
		fuzzy.WithSurfaceNodes(VarCounter, integerNodes(sys.params.CapacityBU)...),
		fuzzy.WithSurfaceErrorMap(surfaceErrorSafety),
	)
	if err != nil {
		return nil, fmt.Errorf("facs: compiling FLC2 surface: %w", err)
	}
	compileCount.Add(1)
	return newCompiledFromSurfaces(sys, surf1, surf2), nil
}

// newCompiledFromSurfaces assembles a controller from already compiled
// (or cache-decoded) surfaces. The grade/threshold boundaries are
// re-derived from the exact system, which is cheap; only the surface
// sampling itself is worth persisting.
func newCompiledFromSurfaces(sys *System, surf1, surf2 *fuzzy.Surface) *CompiledController {
	return &CompiledController{
		sys:        sys,
		surf1:      surf1,
		surf2:      surf2,
		boundaries: append(gradeBoundaries(sys.flc2.Output()), sys.acceptThreshold),
	}
}

// integerNodes lists 1, 2, ..., ceil(max)-1 (interior integers; the
// universe endpoints are always grid nodes already).
func integerNodes(max float64) []float64 {
	var out []float64
	for x := 1.0; x < max; x++ {
		out = append(out, x)
	}
	return out
}

// gradeBoundaries locates the points of the A/R universe at which the
// highest-membership output term — the decision grade — switches, by
// scanning the variable at fine resolution and bisecting each switch
// interval down to floating-point noise.
func gradeBoundaries(ar *fuzzy.Variable) []float64 {
	const scan = 4096
	min, max := ar.Universe()
	step := (max - min) / scan
	var out []float64
	prev := ar.HighestTerm(min)
	for i := 1; i <= scan; i++ {
		x := min + float64(i)*step
		cur := ar.HighestTerm(x)
		if cur == prev {
			continue
		}
		lo, hi := x-step, x
		for hi-lo > 1e-12 {
			mid := (lo + hi) / 2
			if ar.HighestTerm(mid) == prev {
				lo = mid
			} else {
				hi = mid
			}
		}
		out = append(out, hi)
		prev = cur
	}
	return out
}

var defaultCompiled struct {
	once sync.Once
	ctrl *CompiledController
	err  error
}

// DefaultCompiled returns a process-wide shared CompiledController for
// the default configuration, compiling it on first use. Surface
// compilation costs seconds, so callers that repeatedly need the
// default compiled FACS (experiment replications, benchmarks, tests)
// should share this instance; it is safe for concurrent use.
func DefaultCompiled() (*CompiledController, error) {
	defaultCompiled.once.Do(func() {
		defaultCompiled.ctrl, defaultCompiled.err = NewCompiled(0)
	})
	return defaultCompiled.ctrl, defaultCompiled.err
}

// MustCompiled is like NewCompiled but panics on error; intended for
// the default configuration, which is statically known to be valid.
func MustCompiled(gridSize int, opts ...Option) *CompiledController {
	c, err := NewCompiled(gridSize, opts...)
	if err != nil {
		panic(err)
	}
	return c
}

// Name implements cac.Controller.
func (c *CompiledController) Name() string { return "facs-compiled" }

// System returns the exact system the surfaces were compiled from.
func (c *CompiledController) System() *System { return c.sys }

// FLC1Surface returns the compiled prediction surface.
func (c *CompiledController) FLC1Surface() *fuzzy.Surface { return c.surf1 }

// FLC2Surface returns the compiled admission surface.
func (c *CompiledController) FLC2Surface() *fuzzy.Surface { return c.surf2 }

// AcceptThreshold returns the crisp decision boundary.
func (c *CompiledController) AcceptThreshold() float64 { return c.sys.AcceptThreshold() }

// Stats reports how many evaluations took the interpolation fast path
// versus the exact guard-band fallback since construction.
func (c *CompiledController) Stats() (fast, exact int64) {
	return c.fast.Load(), c.exact.Load()
}

// Predict runs the compiled FLC1 surface, returning the correction
// value for an observation. The result carries the documented
// interpolation tolerance; use System().Predict for the exact value.
func (c *CompiledController) Predict(obs gps.Observation) (float64, error) {
	return c.surf1.EvaluateVec(obs.SpeedKmh, obs.AngleDeg, obs.DistanceKm)
}

// Evaluate runs the full two-stage inference on the compiled surfaces,
// mirroring System.Evaluate. If the interpolated A/R value lands
// within the propagated error bound of the accept threshold or of a
// grade boundary, the exact engines decide instead, so the returned
// Grade and Accepted always match the exact System.
func (c *CompiledController) Evaluate(obs gps.Observation, requestBU, usedBU int, handoff bool) (Evaluation, error) {
	cv, b1, err := c.surf1.EvaluateVecWithBound(obs.SpeedKmh, obs.AngleDeg, obs.DistanceKm)
	if err != nil {
		return Evaluation{}, err
	}
	ar, _, err := c.surf2.EvaluateVecWithBound(cv, float64(requestBU), float64(usedBU))
	if err != nil {
		return Evaluation{}, err
	}
	// The exact Cv may lie anywhere in [cv-b1, cv+b1], possibly in a
	// neighbouring cell of the admission surface, so bound the slope
	// and the interpolation error over every Cv-axis cell that
	// interval touches before propagating the upstream error.
	cvSpan := [2]float64{cv - b1, cv + b1}
	slope, b2, err := c.surf2.AxisRangeBounds(0, cvSpan[:], cv, float64(requestBU), float64(usedBU))
	if err != nil {
		return Evaluation{}, err
	}
	guard := slope*b1 + b2
	if handoff {
		ar += c.sys.handoffBias
		if ar > 1 {
			ar = 1
		}
	}
	for _, b := range c.boundaries {
		if math.Abs(ar-b) <= guard {
			c.exact.Add(1)
			return c.sys.Evaluate(obs, requestBU, usedBU, handoff)
		}
	}
	c.fast.Add(1)
	return Evaluation{
		Cv:       cv,
		AR:       ar,
		Grade:    gradeFromTerm(c.sys.flc2.Output().HighestTerm(ar)),
		Accepted: ar >= c.sys.acceptThreshold,
	}, nil
}

// DecideBatch implements cac.BatchController with the same semantics as
// per-request Decide calls against unchanged station state. The batch
// path amortises the station-occupancy read across runs of requests
// aimed at the same station (the common shape: many candidates
// evaluated against one cell), on top of the per-query surface lookups
// that already dominate the cost.
func (c *CompiledController) DecideBatch(reqs []cac.Request) ([]cac.Decision, error) {
	out := make([]cac.Decision, len(reqs))
	if err := c.DecideBatchInto(reqs, out); err != nil {
		return nil, err
	}
	return out, nil
}

// DecideBatchInto implements cac.BatchIntoController: DecideBatch
// semantics into a caller-provided buffer. Surface lookups allocate
// nothing, so the fast path (no guard-band fallback) is allocation-free.
//
//facs:hotpath
func (c *CompiledController) DecideBatchInto(reqs []cac.Request, out []cac.Decision) error {
	var station *cell.BaseStation
	used, free := 0, 0
	for i := range reqs {
		req := &reqs[i]
		if err := req.Validate(); err != nil {
			return err
		}
		// Decide must not mutate stations, so occupancy is stable for
		// the whole batch and one read serves every consecutive request
		// on the same station.
		if req.Station != station {
			station = req.Station
			used = station.Used()
			free = station.Free()
		}
		if req.Call.BU > free {
			out[i] = cac.Reject
			continue
		}
		ev, err := c.Evaluate(req.Obs, req.Call.BU, used, req.Handoff)
		if err != nil {
			return err
		}
		if ev.Accepted {
			out[i] = cac.Accept
		} else {
			out[i] = cac.Reject
		}
	}
	return nil
}

// Decide implements cac.Controller with the same semantics as
// System.Decide, on the compiled surfaces.
func (c *CompiledController) Decide(req cac.Request) (cac.Decision, error) {
	if err := req.Validate(); err != nil {
		return cac.Reject, err
	}
	if !req.Station.Fits(req.Call.BU) {
		return cac.Reject, nil
	}
	ev, err := c.Evaluate(req.Obs, req.Call.BU, req.Station.Used(), req.Handoff)
	if err != nil {
		return cac.Reject, err
	}
	if ev.Accepted {
		return cac.Accept, nil
	}
	return cac.Reject, nil
}
