// Package facs implements the paper's contribution: the Fuzzy
// Admission Control System. It wires two Mamdani controllers in
// series —
//
//	FLC1 (prediction): Speed, Angle, Distance      -> Correction value Cv
//	FLC2 (admission):  Cv, Request, Counter state  -> Accept/Reject  A/R
//
// with the exact term sets, membership-function shapes (paper Figs. 5,
// 6) and rule bases FRB1/FRB2 (paper Tables 1, 2).
//
// # Exact and compiled paths
//
// System is the exact two-stage inference; CompiledController answers
// the same queries from dense interpolation surfaces
// (fuzzy.Surface) at ~40-50x the throughput. The contract between
// them is asymmetric on purpose: crisp Cv and A/R values carry a small
// documented interpolation tolerance, but accept/reject outcomes and
// decision grades NEVER differ — each surface carries per-cell error
// bounds, and any query whose interpolated A/R value lands within the
// propagated bound of the accept threshold or a grade boundary is
// re-run on the exact engines. The golden-equivalence suite in
// compiled_test.go pins both halves of the contract.
//
// # Surface persistence
//
// Compiling the default surfaces costs seconds, so
// CompileSystemCached/NewCompiledCached put a load-or-compile cache in
// front: entries are versioned binary blobs (fuzzy.EncodeSurface)
// validated by a config+grid hash and a checksum, making a warm
// service restart milliseconds instead of seconds. CompileCount
// exposes the process-wide compilation counter the cache tests assert
// against.
//
// # Entry points
//
// New/Must build the exact System (Params, WithAcceptThreshold,
// WithHandoffBias...); NewCompiled/CompileSystem build the fast path;
// DefaultCompiled shares one compiled default instance process-wide;
// NewFLC1/NewFLC2 expose the raw engines. Both System and
// CompiledController implement cac.Controller and cac.BatchController.
package facs
