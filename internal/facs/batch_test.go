package facs

import (
	"math/rand"
	"testing"

	"facs/internal/cac"
	"facs/internal/cell"
	"facs/internal/geo"
	"facs/internal/gps"
	"facs/internal/traffic"
)

// batchWorkload builds a randomized admission workload over a few
// stations at different occupancy levels, with same-station runs so the
// batch paths' occupancy caching is exercised across cache hits and
// switches.
func batchWorkload(t *testing.T, rng *rand.Rand, n int) []cac.Request {
	t.Helper()
	var stations []*cell.BaseStation
	for i, used := range []int{0, 12, 33, 40} {
		bs, err := cell.NewBaseStation(geo.Hex{Q: i}, geo.Point{}, cell.DefaultCapacityBU)
		if err != nil {
			t.Fatal(err)
		}
		id := 10000 * (i + 1)
		for filled := 0; filled < used; id++ {
			bu := used - filled
			class := traffic.Video
			switch {
			case bu >= 10:
				bu = 10
			case bu >= 5:
				bu, class = 5, traffic.Voice
			default:
				bu, class = 1, traffic.Text
			}
			if err := bs.Admit(cell.Call{ID: id, Class: class, BU: bu}); err != nil {
				t.Fatal(err)
			}
			filled += bu
		}
		stations = append(stations, bs)
	}
	classes := []traffic.Class{traffic.Text, traffic.Voice, traffic.Video}
	reqs := make([]cac.Request, n)
	si := 0
	for i := range reqs {
		// Runs of 1-8 consecutive requests per station.
		if i == 0 || rng.Intn(8) == 0 {
			si = rng.Intn(len(stations))
		}
		class := classes[rng.Intn(len(classes))]
		reqs[i] = cac.Request{
			Call:    cell.Call{ID: i + 1, Class: class, BU: class.BandwidthUnits()},
			Station: stations[si],
			Obs: gps.Observation{
				SpeedKmh:   rng.Float64() * 120,
				AngleDeg:   rng.Float64()*360 - 180,
				DistanceKm: rng.Float64() * 10,
			},
			Handoff: rng.Intn(4) == 0,
		}
	}
	return reqs
}

// TestSystemDecideBatchMatchesSequential pins the exact engine's native
// batch path to its per-request decisions.
func TestSystemDecideBatchMatchesSequential(t *testing.T) {
	sys := Must()
	reqs := batchWorkload(t, rand.New(rand.NewSource(3)), 256)
	batch, err := cac.DecideAll(sys, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, req := range reqs {
		want, err := sys.Decide(req)
		if err != nil {
			t.Fatal(err)
		}
		if batch[i] != want {
			t.Fatalf("request %d: batch %v, sequential %v", i, batch[i], want)
		}
	}
}

// TestCompiledDecideBatchMatchesSequential pins the compiled fast
// path's batch decisions to both its own sequential decisions and the
// exact System's — the golden contract extended to the batch pipeline.
func TestCompiledDecideBatchMatchesSequential(t *testing.T) {
	cc := goldenCompiled(t)
	reqs := batchWorkload(t, rand.New(rand.NewSource(5)), 512)
	batch, err := cc.DecideBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, req := range reqs {
		want, err := cc.Decide(req)
		if err != nil {
			t.Fatal(err)
		}
		if batch[i] != want {
			t.Fatalf("request %d: batch %v, compiled sequential %v", i, batch[i], want)
		}
		exact, err := cc.System().Decide(req)
		if err != nil {
			t.Fatal(err)
		}
		if batch[i] != exact {
			t.Fatalf("request %d: batch %v, exact system %v", i, batch[i], exact)
		}
	}
}

// TestDecideBatchValidation asserts both native paths abort on the
// first invalid request.
func TestDecideBatchValidation(t *testing.T) {
	sys := Must()
	if _, err := sys.DecideBatch([]cac.Request{{}}); err == nil {
		t.Fatal("System.DecideBatch should reject invalid requests")
	}
	cc := goldenCompiled(t)
	if _, err := cc.DecideBatch([]cac.Request{{}}); err == nil {
		t.Fatal("CompiledController.DecideBatch should reject invalid requests")
	}
}
