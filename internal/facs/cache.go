package facs

import (
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"io/fs"
	"os"
	"path/filepath"

	"facs/internal/fuzzy"
)

// CacheInfo reports how a cached compile was satisfied.
type CacheInfo struct {
	// Path is the cache file that was read or (re)written.
	Path string
	// Hit reports that both surfaces were loaded from the cache and no
	// compilation happened.
	Hit bool
	// Stale reports that a cache entry existed but failed validation
	// (config-hash mismatch, older format version, or corruption) and
	// was recompiled and overwritten.
	Stale bool
}

func (i CacheInfo) String() string {
	switch {
	case i.Hit:
		return "hit " + i.Path
	case i.Stale:
		return "stale, recompiled " + i.Path
	default:
		return "miss, compiled " + i.Path
	}
}

// surfaceConfigHash fingerprints everything the compiled surfaces'
// content depends on: the persistence format version, the compilation
// constants of this package (grid layout, pinned integer nodes,
// error-map safety factor — all functions of gridSize and the params),
// and the System configuration (membership break-points, accept
// threshold, handoff bias, inference operators, defuzzifier type and
// resolution). Two systems with equal hashes compile byte-identical
// surfaces; a parameterised custom Defuzzifier whose type name does not
// change with its parameters is the one case the hash cannot see, so
// such systems must not share a cache directory.
func surfaceConfigHash(sys *System, gridSize int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "fmt=%d|grid=%d|safety=%v|", fuzzy.SurfaceFormatVersion, gridSize, float64(surfaceErrorSafety))
	fmt.Fprintf(h, "params=%+v|", sys.params)
	fmt.Fprintf(h, "thr=%v|bias=%v|tnorm=%d|impl=%d|res=%d|defuzz=%T",
		sys.acceptThreshold, sys.handoffBias, sys.tnorm, sys.implication, sys.resolution, sys.mkDefuzz())
	return h.Sum64()
}

// cachePath names the cache entry for one grid size inside dir. The
// full configuration is validated via the embedded hash, not the file
// name, so a changed configuration at the same grid size is detected as
// stale and overwritten rather than accumulating files.
func cachePath(dir string, gridSize int) string {
	return filepath.Join(dir, fmt.Sprintf("facs-g%d.surfaces", gridSize))
}

// loadSurfaces reads and validates both compiled surfaces from path.
func loadSurfaces(path string, wantHash uint64) (surf1, surf2 *fuzzy.Surface, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	// The file holds two length-framed surface blobs: FLC1 then FLC2.
	for i, dst := range []**fuzzy.Surface{&surf1, &surf2} {
		var n int64
		if _, err := fmt.Fscanf(f, "%016x\n", &n); err != nil {
			return nil, nil, fmt.Errorf("%w: reading frame %d header: %v", fuzzy.ErrSurfaceCorrupt, i, err)
		}
		s, err := fuzzy.DecodeSurface(io.LimitReader(f, n), wantHash)
		if err != nil {
			return nil, nil, err
		}
		if !s.HasErrorMap() {
			return nil, nil, fmt.Errorf("%w: cached surface %s has no error map", fuzzy.ErrSurfaceCorrupt, s)
		}
		*dst = s
	}
	return surf1, surf2, nil
}

// writeSurfaces persists both compiled surfaces atomically: encode into
// a temp file in the same directory, then rename over the final path,
// so concurrent readers never observe a partial entry.
func writeSurfaces(path string, c *CompiledController, hash uint64) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	for _, s := range []*fuzzy.Surface{c.surf1, c.surf2} {
		var buf bytes.Buffer
		if err := fuzzy.EncodeSurface(&buf, s, hash); err != nil {
			tmp.Close()
			return err
		}
		if _, err := fmt.Fprintf(tmp, "%016x\n", int64(buf.Len())); err != nil {
			tmp.Close()
			return err
		}
		if _, err := tmp.Write(buf.Bytes()); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// CompileSystemCached is CompileSystem behind a load-or-compile surface
// cache: if dir holds a valid entry for this configuration (validated
// by format version, config+grid hash and checksum), both surfaces are
// decoded in milliseconds and no compilation happens; otherwise the
// surfaces are compiled exactly as CompileSystem does (seconds) and the
// entry is written for the next start. A stale or corrupt entry is
// recompiled and overwritten, never trusted. Cache write failures are
// not fatal: the freshly compiled controller is returned alongside the
// write error so a read-only cache directory degrades to plain
// compilation.
func CompileSystemCached(sys *System, gridSize int, dir string) (*CompiledController, CacheInfo, error) {
	if sys == nil {
		return nil, CacheInfo{}, fmt.Errorf("facs: compile needs a system")
	}
	if dir == "" {
		c, err := CompileSystem(sys, gridSize)
		return c, CacheInfo{}, err
	}
	if gridSize <= 0 {
		gridSize = DefaultSurfaceGridSize
	}
	hash := surfaceConfigHash(sys, gridSize)
	info := CacheInfo{Path: cachePath(dir, gridSize)}
	surf1, surf2, err := loadSurfaces(info.Path, hash)
	if err == nil {
		info.Hit = true
		return newCompiledFromSurfaces(sys, surf1, surf2), info, nil
	}
	// Anything but "no entry yet" means an entry existed and failed
	// validation; report it as stale so operators notice churn.
	if !errors.Is(err, fs.ErrNotExist) {
		info.Stale = true
	}
	c, err := CompileSystem(sys, gridSize)
	if err != nil {
		return nil, info, err
	}
	if err := writeSurfaces(info.Path, c, hash); err != nil {
		return c, info, fmt.Errorf("facs: compiled but could not write surface cache: %w", err)
	}
	return c, info, nil
}

// NewCompiledCached builds the exact System for the options and obtains
// its compiled controller through the surface cache in dir (see
// CompileSystemCached). An empty dir disables caching and always
// compiles.
func NewCompiledCached(gridSize int, dir string, opts ...Option) (*CompiledController, CacheInfo, error) {
	sys, err := New(opts...)
	if err != nil {
		return nil, CacheInfo{}, err
	}
	return CompileSystemCached(sys, gridSize, dir)
}
