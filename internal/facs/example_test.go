package facs_test

import (
	"fmt"

	"facs/internal/facs"
	"facs/internal/gps"
)

// ExampleCompiledController evaluates one admission question on the
// lookup-table fast path. The crisp Cv and A/R values carry a small
// interpolation tolerance, but the guard band makes the grade and the
// accept/reject outcome always identical to the exact System.
func ExampleCompiledController() {
	cc, err := facs.DefaultCompiled() // compiled once, shared process-wide
	if err != nil {
		panic(err)
	}
	obs := gps.Observation{SpeedKmh: 60, AngleDeg: 0, DistanceKm: 2}
	ev, err := cc.Evaluate(obs, 5 /* requested BU */, 12 /* occupied BU */, false)
	if err != nil {
		panic(err)
	}
	exact, err := cc.System().Evaluate(obs, 5, 12, false)
	if err != nil {
		panic(err)
	}
	fmt.Println("accepted:", ev.Accepted)
	fmt.Println("grade:", ev.Grade)
	fmt.Println("matches exact system:", ev.Accepted == exact.Accepted && ev.Grade == exact.Grade)
	// Output:
	// accepted: true
	// grade: weak-accept
	// matches exact system: true
}
