package facs

import (
	"fmt"

	"facs/internal/cac"
	"facs/internal/fuzzy"
	"facs/internal/gps"
)

// DefaultAcceptThreshold is the crisp decision boundary on the A/R axis:
// the midpoint between the NotRejectNotAccept centre (0) and the
// WeakAccept centre (+0.5). Requests defuzzifying at or above it are
// admitted.
const DefaultAcceptThreshold = 0.25

// Grade is the soft admission decision of FLC2, the five output terms of
// the paper's A/R variable.
type Grade int

// The five decision grades.
const (
	GradeReject Grade = iota + 1
	GradeWeakReject
	GradeNRNA
	GradeWeakAccept
	GradeAccept
)

// String implements fmt.Stringer.
func (g Grade) String() string {
	switch g {
	case GradeReject:
		return "reject"
	case GradeWeakReject:
		return "weak-reject"
	case GradeNRNA:
		return "not-reject-not-accept"
	case GradeWeakAccept:
		return "weak-accept"
	case GradeAccept:
		return "accept"
	default:
		return fmt.Sprintf("Grade(%d)", int(g))
	}
}

func gradeFromTerm(term string) Grade {
	switch term {
	case TermReject:
		return GradeReject
	case TermWeakReject:
		return GradeWeakReject
	case TermNRNA:
		return GradeNRNA
	case TermWeakAccept:
		return GradeWeakAccept
	case TermAccept:
		return GradeAccept
	default:
		return 0
	}
}

// Option configures a System.
type Option func(*System)

// WithParams overrides the membership break-points (default
// DefaultParams).
func WithParams(p Params) Option { return func(s *System) { s.params = p } }

// WithAcceptThreshold overrides the crisp decision boundary (default
// DefaultAcceptThreshold).
func WithAcceptThreshold(t float64) Option { return func(s *System) { s.acceptThreshold = t } }

// WithDefuzzifier selects the defuzzifier used by both controllers
// (default fuzzy.Centroid).
func WithDefuzzifier(mk func() fuzzy.Defuzzifier) Option {
	return func(s *System) { s.mkDefuzz = mk }
}

// WithTNorm selects the antecedent combination operator (default min).
func WithTNorm(t fuzzy.TNorm) Option { return func(s *System) { s.tnorm = t } }

// WithImplication selects the implication operator (default clip).
func WithImplication(im fuzzy.Implication) Option { return func(s *System) { s.implication = im } }

// WithResolution sets the defuzzification sample count (default 201).
func WithResolution(n int) Option { return func(s *System) { s.resolution = n } }

// WithHandoffBias adds a fixed bonus to the crisp A/R value of handoff
// requests, prioritising them over new calls. The paper leaves call
// priority to future work; the default is 0 (no priority).
func WithHandoffBias(b float64) Option { return func(s *System) { s.handoffBias = b } }

// System is the Fuzzy Admission Control System: FLC1 and FLC2 in series
// plus the crisp decision boundary. It implements cac.Controller.
//
// A System is immutable after construction and safe for concurrent use.
type System struct {
	params          Params
	acceptThreshold float64
	mkDefuzz        func() fuzzy.Defuzzifier
	tnorm           fuzzy.TNorm
	implication     fuzzy.Implication
	resolution      int
	handoffBias     float64

	flc1 *fuzzy.Engine
	flc2 *fuzzy.Engine
}

var (
	_ cac.Controller      = (*System)(nil)
	_ cac.BatchController = (*System)(nil)
	_ cac.CellLocal       = (*System)(nil)
)

// New constructs a FACS with the paper's defaults, applying any options.
func New(opts ...Option) (*System, error) {
	s := &System{
		params:          DefaultParams(),
		acceptThreshold: DefaultAcceptThreshold,
		mkDefuzz:        func() fuzzy.Defuzzifier { return fuzzy.Centroid{} },
		tnorm:           fuzzy.TNormMin,
		implication:     fuzzy.ImplicationClip,
		resolution:      201,
	}
	for _, opt := range opts {
		opt(s)
	}
	engineOpts := func() []fuzzy.Option {
		return []fuzzy.Option{
			fuzzy.WithTNorm(s.tnorm),
			fuzzy.WithImplication(s.implication),
			fuzzy.WithDefuzzifier(s.mkDefuzz()),
			fuzzy.WithResolution(s.resolution),
		}
	}
	var err error
	s.flc1, err = NewFLC1(s.params, engineOpts()...)
	if err != nil {
		return nil, err
	}
	s.flc2, err = NewFLC2(s.params, engineOpts()...)
	if err != nil {
		return nil, err
	}
	if s.acceptThreshold < -1 || s.acceptThreshold > 1 {
		return nil, fmt.Errorf("facs: accept threshold %v outside [-1, 1]", s.acceptThreshold)
	}
	return s, nil
}

// Must constructs a FACS and panics on error; intended for the default
// configuration, which is statically known to be valid.
func Must(opts ...Option) *System {
	s, err := New(opts...)
	if err != nil {
		panic(err)
	}
	return s
}

// Name implements cac.Controller.
func (s *System) Name() string { return "facs" }

// CellLocal implements cac.CellLocal: a decision reads the request plus
// the occupancy of the request's own station; the engines are immutable
// and the System is safe for concurrent use, so one instance may be
// shared across the shards of a sharded admission engine.
func (s *System) CellLocal() {}

// FLC1 returns the compiled prediction controller.
func (s *System) FLC1() *fuzzy.Engine { return s.flc1 }

// FLC2 returns the compiled admission controller.
func (s *System) FLC2() *fuzzy.Engine { return s.flc2 }

// AcceptThreshold returns the crisp decision boundary.
func (s *System) AcceptThreshold() float64 { return s.acceptThreshold }

// Evaluation is the full trace of one FACS decision.
type Evaluation struct {
	// Cv is FLC1's correction value in [0, 1].
	Cv float64
	// AR is FLC2's crisp accept/reject value in [-1, 1], including any
	// handoff bias.
	AR float64
	// Grade is the output term with the highest membership at AR.
	Grade Grade
	// Accepted reports AR >= the accept threshold.
	Accepted bool
}

// Predict runs only FLC1, returning the correction value for an
// observation.
func (s *System) Predict(obs gps.Observation) (float64, error) {
	cv, err := s.flc1.EvaluateVec(obs.SpeedKmh, obs.AngleDeg, obs.DistanceKm)
	if err != nil {
		return 0, fmt.Errorf("facs: FLC1: %w", err) //facs:alloc reject/error path; formats nothing on the steady-state wave
	}
	return cv, nil
}

// Evaluate runs the full two-stage inference for a request of requestBU
// bandwidth units against a station currently occupying usedBU.
func (s *System) Evaluate(obs gps.Observation, requestBU, usedBU int, handoff bool) (Evaluation, error) {
	cv, err := s.Predict(obs)
	if err != nil {
		return Evaluation{}, err
	}
	ar, err := s.flc2.EvaluateVec(cv, float64(requestBU), float64(usedBU))
	if err != nil {
		return Evaluation{}, fmt.Errorf("facs: FLC2: %w", err) //facs:alloc reject/error path; formats nothing on the steady-state wave
	}
	if handoff {
		ar += s.handoffBias
		if ar > 1 {
			ar = 1
		}
	}
	ev := Evaluation{
		Cv:       cv,
		AR:       ar,
		Grade:    gradeFromTerm(s.flc2.Output().HighestTerm(ar)),
		Accepted: ar >= s.acceptThreshold,
	}
	return ev, nil
}

// DecideBatch implements cac.BatchController. The exact engines have
// no per-request state to amortise (each Mamdani inference allocates
// internally), so this is a plain sequential pass; the method declares
// batch capability so the pipeline treats every FACS variant uniformly.
func (s *System) DecideBatch(reqs []cac.Request) ([]cac.Decision, error) {
	out := make([]cac.Decision, len(reqs))
	if err := s.DecideBatchInto(reqs, out); err != nil {
		return nil, err
	}
	return out, nil
}

// DecideBatchInto implements cac.BatchIntoController: DecideBatch
// semantics into a caller-provided buffer (the Mamdani inference still
// allocates internally; the buffer only removes the per-batch slice).
//
//facs:hotpath
func (s *System) DecideBatchInto(reqs []cac.Request, out []cac.Decision) error {
	for i := range reqs {
		d, err := s.Decide(reqs[i])
		if err != nil {
			return err
		}
		out[i] = d
	}
	return nil
}

// Decide implements cac.Controller: the request is admitted when the
// defuzzified A/R value clears the accept threshold and the station can
// physically carry the call.
func (s *System) Decide(req cac.Request) (cac.Decision, error) {
	if err := req.Validate(); err != nil {
		return cac.Reject, err
	}
	if !req.Station.Fits(req.Call.BU) {
		return cac.Reject, nil
	}
	ev, err := s.Evaluate(req.Obs, req.Call.BU, req.Station.Used(), req.Handoff)
	if err != nil {
		return cac.Reject, err
	}
	if ev.Accepted {
		return cac.Accept, nil
	}
	return cac.Reject, nil
}
