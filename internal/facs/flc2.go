package facs

import (
	"fmt"

	"facs/internal/fuzzy"
)

// FLC2 variable names (paper Section 3.2).
const (
	// VarCvIn is the FLC2 input carrying FLC1's output.
	VarCvIn = "Cv"
	// VarRequest is the requested bandwidth input (BU).
	VarRequest = "R"
	// VarCounter is the counter-state input (occupied BU).
	VarCounter = "Cs"
	// VarAR is the accept/reject output.
	VarAR = "AR"
)

// Cv (as FLC2 input) terms T(Cv) = {Bad, Normal, Good}.
const (
	TermBad    = "B"
	TermNormal = "N"
	TermGood   = "G"
)

// Request terms T(R) = {Text, Voice, Video}.
const (
	TermText  = "T"
	TermVoice = "Vo"
	TermVideo = "Vi"
)

// Counter-state terms T(Cs) = {Small, Middle, Full}.
const (
	TermSmall = "S"
	TermMid   = "M"
	TermFull  = "F"
)

// Accept/Reject terms T(A/R) = {R, WR, NRNA, WA, A}.
const (
	TermReject     = "R"
	TermWeakReject = "WR"
	TermNRNA       = "NRNA"
	TermWeakAccept = "WA"
	TermAccept     = "A"
)

// frb2Row is one row of the paper's Table 2.
type frb2Row struct {
	Cv, R, Cs string
	AR        string
}

// FRB2 is the paper's Table 2, all 27 rules in row order.
var frb2 = [27]frb2Row{
	{TermBad, TermText, TermSmall, TermAccept},
	{TermBad, TermText, TermMid, TermNRNA},
	{TermBad, TermText, TermFull, TermNRNA},
	{TermBad, TermVoice, TermSmall, TermAccept},
	{TermBad, TermVoice, TermMid, TermNRNA},
	{TermBad, TermVoice, TermFull, TermWeakReject},
	{TermBad, TermVideo, TermSmall, TermWeakAccept},
	{TermBad, TermVideo, TermMid, TermNRNA},
	{TermBad, TermVideo, TermFull, TermWeakReject},
	{TermNormal, TermText, TermSmall, TermAccept},
	{TermNormal, TermText, TermMid, TermNRNA},
	{TermNormal, TermText, TermFull, TermNRNA},
	{TermNormal, TermVoice, TermSmall, TermAccept},
	{TermNormal, TermVoice, TermMid, TermNRNA},
	{TermNormal, TermVoice, TermFull, TermNRNA},
	{TermNormal, TermVideo, TermSmall, TermWeakAccept},
	{TermNormal, TermVideo, TermMid, TermNRNA},
	{TermNormal, TermVideo, TermFull, TermNRNA},
	{TermGood, TermText, TermSmall, TermAccept},
	{TermGood, TermText, TermMid, TermAccept},
	{TermGood, TermText, TermFull, TermNRNA},
	{TermGood, TermVoice, TermSmall, TermAccept},
	{TermGood, TermVoice, TermMid, TermAccept},
	{TermGood, TermVoice, TermFull, TermWeakReject},
	{TermGood, TermVideo, TermSmall, TermAccept},
	{TermGood, TermVideo, TermMid, TermAccept},
	{TermGood, TermVideo, TermFull, TermReject},
}

// FRB2Rules returns the paper's Table 2 as engine rules, in row order.
func FRB2Rules() []fuzzy.Rule {
	rules := make([]fuzzy.Rule, 0, len(frb2))
	for _, row := range frb2 {
		rules = append(rules, fuzzy.Rule{
			If: []fuzzy.Clause{
				{Var: VarCvIn, Term: row.Cv},
				{Var: VarRequest, Term: row.R},
				{Var: VarCounter, Term: row.Cs},
			},
			Then:   fuzzy.Clause{Var: VarAR, Term: row.AR},
			Weight: 1,
		})
	}
	return rules
}

// NewCvInputVariable builds the FLC2 input Cv per paper Fig. 6(a):
// Bad/Normal/Good triangles over [0, 1].
func NewCvInputVariable(p Params) (*fuzzy.Variable, error) {
	bad, err := fuzzy.NewTriangular(0, 0, p.CvNormalCenter)
	if err != nil {
		return nil, fmt.Errorf("facs: cv %s: %w", TermBad, err)
	}
	normal, err := fuzzy.NewTriangular(p.CvNormalCenter, p.CvNormalCenter, 1-p.CvNormalCenter)
	if err != nil {
		return nil, fmt.Errorf("facs: cv %s: %w", TermNormal, err)
	}
	good, err := fuzzy.NewTriangular(1, 1-p.CvNormalCenter, 0)
	if err != nil {
		return nil, fmt.Errorf("facs: cv %s: %w", TermGood, err)
	}
	return fuzzy.NewVariable(VarCvIn, 0, 1,
		fuzzy.Term{Name: TermBad, MF: bad},
		fuzzy.Term{Name: TermNormal, MF: normal},
		fuzzy.Term{Name: TermGood, MF: good},
	)
}

// NewRequestVariable builds the FLC2 input R per paper Fig. 6(b):
// Text/Voice/Video triangles over [0, RequestMax] BU.
func NewRequestVariable(p Params) (*fuzzy.Variable, error) {
	text, err := fuzzy.NewTriangular(0, 0, p.VoiceCenter)
	if err != nil {
		return nil, fmt.Errorf("facs: request %s: %w", TermText, err)
	}
	voice, err := fuzzy.NewTriangular(p.VoiceCenter, p.VoiceCenter, p.RequestMax-p.VoiceCenter)
	if err != nil {
		return nil, fmt.Errorf("facs: request %s: %w", TermVoice, err)
	}
	video, err := fuzzy.NewTriangular(p.RequestMax, p.RequestMax-p.VoiceCenter, 0)
	if err != nil {
		return nil, fmt.Errorf("facs: request %s: %w", TermVideo, err)
	}
	return fuzzy.NewVariable(VarRequest, 0, p.RequestMax,
		fuzzy.Term{Name: TermText, MF: text},
		fuzzy.Term{Name: TermVoice, MF: voice},
		fuzzy.Term{Name: TermVideo, MF: video},
	)
}

// NewCounterVariable builds the FLC2 input Cs per paper Fig. 6(c):
// Small/Middle/Full triangles over [0, CapacityBU].
func NewCounterVariable(p Params) (*fuzzy.Variable, error) {
	mid := p.CapacityBU / 2
	small, err := fuzzy.NewTriangular(0, 0, mid)
	if err != nil {
		return nil, fmt.Errorf("facs: counter %s: %w", TermSmall, err)
	}
	middle, err := fuzzy.NewTriangular(mid, mid, mid)
	if err != nil {
		return nil, fmt.Errorf("facs: counter %s: %w", TermMid, err)
	}
	full, err := fuzzy.NewTriangular(p.CapacityBU, mid, 0)
	if err != nil {
		return nil, fmt.Errorf("facs: counter %s: %w", TermFull, err)
	}
	return fuzzy.NewVariable(VarCounter, 0, p.CapacityBU,
		fuzzy.Term{Name: TermSmall, MF: small},
		fuzzy.Term{Name: TermMid, MF: middle},
		fuzzy.Term{Name: TermFull, MF: full},
	)
}

// NewARVariable builds the FLC2 output per paper Fig. 6(d): five terms
// over [-1, 1] with shoulder trapezoids for Reject and Accept.
func NewARVariable(p Params) (*fuzzy.Variable, error) {
	reject, err := fuzzy.NewTrapezoidal(-1, -1+p.ARShoulderPlateau, 0, p.ARSpacing)
	if err != nil {
		return nil, fmt.Errorf("facs: a/r %s: %w", TermReject, err)
	}
	accept, err := fuzzy.NewTrapezoidal(1-p.ARShoulderPlateau, 1, p.ARSpacing, 0)
	if err != nil {
		return nil, fmt.Errorf("facs: a/r %s: %w", TermAccept, err)
	}
	tri := func(name string, center float64) (fuzzy.Term, error) {
		mf, err := fuzzy.NewTriangular(center, p.ARSpacing, p.ARSpacing)
		if err != nil {
			return fuzzy.Term{}, fmt.Errorf("facs: a/r %s: %w", name, err)
		}
		return fuzzy.Term{Name: name, MF: mf}, nil
	}
	wr, err := tri(TermWeakReject, -p.ARSpacing)
	if err != nil {
		return nil, err
	}
	nrna, err := tri(TermNRNA, 0)
	if err != nil {
		return nil, err
	}
	wa, err := tri(TermWeakAccept, p.ARSpacing)
	if err != nil {
		return nil, err
	}
	return fuzzy.NewVariable(VarAR, -1, 1,
		fuzzy.Term{Name: TermReject, MF: reject},
		wr, nrna, wa,
		fuzzy.Term{Name: TermAccept, MF: accept},
	)
}

// NewFLC2 compiles the admission controller with the paper's variables
// and FRB2.
func NewFLC2(p Params, opts ...fuzzy.Option) (*fuzzy.Engine, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	cv, err := NewCvInputVariable(p)
	if err != nil {
		return nil, err
	}
	r, err := NewRequestVariable(p)
	if err != nil {
		return nil, err
	}
	cs, err := NewCounterVariable(p)
	if err != nil {
		return nil, err
	}
	ar, err := NewARVariable(p)
	if err != nil {
		return nil, err
	}
	eng, err := fuzzy.NewEngine([]*fuzzy.Variable{cv, r, cs}, ar, FRB2Rules(), opts...)
	if err != nil {
		return nil, fmt.Errorf("facs: compiling FLC2: %w", err)
	}
	return eng, nil
}
