package facs

import (
	"strings"
	"testing"
)

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("defaults must validate: %v", err)
	}
}

// TestParamsValidateEveryBranch invalidates each break-point in turn and
// checks that Validate catches it with a field-specific message.
func TestParamsValidateEveryBranch(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Params)
		wantSub string
	}{
		{"zero speed max", func(p *Params) { p.SpeedMax = 0 }, "SpeedMax"},
		{"slow plateau beyond middle", func(p *Params) { p.SlowPlateauEnd = 35 }, "SlowPlateauEnd"},
		{"zero slow plateau", func(p *Params) { p.SlowPlateauEnd = 0 }, "SlowPlateauEnd"},
		{"middle beyond fast", func(p *Params) { p.MiddleCenter = 70 }, "MiddleCenter"},
		{"fast beyond max", func(p *Params) { p.FastPlateauStart = 130 }, "FastPlateauStart"},
		{"angle max not 180", func(p *Params) { p.AngleMax = 90 }, "AngleMax"},
		{"angle half width zero", func(p *Params) { p.AngleHalfWidth = 0 }, "AngleHalfWidth"},
		{"angle half width too wide", func(p *Params) { p.AngleHalfWidth = 91 }, "AngleHalfWidth"},
		{"back plateau too early", func(p *Params) { p.BackPlateauStart = 80 }, "BackPlateauStart"},
		{"back plateau at max", func(p *Params) { p.BackPlateauStart = 180 }, "BackPlateauStart"},
		{"zero distance", func(p *Params) { p.DistanceMax = 0 }, "DistanceMax"},
		{"zero cv spacing", func(p *Params) { p.CvSpacing = 0 }, "CvSpacing"},
		{"cv spacing too wide", func(p *Params) { p.CvSpacing = 0.2 }, "CvSpacing"},
		{"cv shoulder negative", func(p *Params) { p.CvShoulderPlateau = -0.1 }, "CvShoulderPlateau"},
		{"cv shoulder too wide", func(p *Params) { p.CvShoulderPlateau = 1.5 }, "CvShoulderPlateau"},
		{"cv normal centre at 0", func(p *Params) { p.CvNormalCenter = 0 }, "CvNormalCenter"},
		{"cv normal centre at 1", func(p *Params) { p.CvNormalCenter = 1 }, "CvNormalCenter"},
		{"zero request max", func(p *Params) { p.RequestMax = 0 }, "RequestMax"},
		{"voice centre at zero", func(p *Params) { p.VoiceCenter = 0 }, "VoiceCenter"},
		{"voice centre beyond max", func(p *Params) { p.VoiceCenter = 10 }, "VoiceCenter"},
		{"zero capacity", func(p *Params) { p.CapacityBU = 0 }, "CapacityBU"},
		{"zero ar spacing", func(p *Params) { p.ARSpacing = 0 }, "ARSpacing"},
		{"ar spacing too wide", func(p *Params) { p.ARSpacing = 0.6 }, "ARSpacing"},
		{"ar shoulder negative", func(p *Params) { p.ARShoulderPlateau = -0.5 }, "ARShoulderPlateau"},
		{"ar shoulder too wide", func(p *Params) { p.ARShoulderPlateau = 1 }, "ARShoulderPlateau"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			p := DefaultParams()
			tc.mutate(&p)
			err := p.Validate()
			if err == nil {
				t.Fatal("expected a validation error")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestScaledParamsStillCompile checks that a uniformly rescaled layout
// (double capacity, compressed speed range) builds working controllers:
// the break-points are genuinely parametric, not hard-coded.
func TestScaledParamsStillCompile(t *testing.T) {
	p := DefaultParams()
	p.SpeedMax = 200
	p.SlowPlateauEnd = 25
	p.MiddleCenter = 50
	p.FastPlateauStart = 100
	p.CapacityBU = 80
	p.RequestMax = 20
	p.VoiceCenter = 10
	flc1, err := NewFLC1(p)
	if err != nil {
		t.Fatal(err)
	}
	flc2, err := NewFLC2(p)
	if err != nil {
		t.Fatal(err)
	}
	cv, err := flc1.EvaluateVec(100, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if cv < 0.8 {
		t.Fatalf("fast inbound user should predict well under scaled params, Cv=%v", cv)
	}
	ar, err := flc2.EvaluateVec(cv, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ar < DefaultAcceptThreshold {
		t.Fatalf("empty scaled cell should accept, AR=%v", ar)
	}
}

// TestVariableBuildersRejectDegenerateParams drives the error branches of
// every variable builder with params that pass Validate-independent
// checks but produce impossible shapes.
func TestVariableBuildersRejectDegenerateParams(t *testing.T) {
	bad := DefaultParams()
	bad.SlowPlateauEnd = -15 // negative plateau end: trapezoid edges invert
	if _, err := NewSpeedVariable(bad); err == nil {
		t.Fatal("degenerate speed params should fail")
	}
	badAngle := DefaultParams()
	badAngle.BackPlateauStart = 200 // plateau beyond the universe edge
	if _, err := NewAngleVariable(badAngle); err == nil {
		t.Fatal("degenerate angle params should fail")
	}
	badDist := DefaultParams()
	badDist.DistanceMax = -1
	if _, err := NewDistanceVariable(badDist); err == nil {
		t.Fatal("degenerate distance params should fail")
	}
	badCv := DefaultParams()
	badCv.CvSpacing = -0.125
	if _, err := NewCvVariable(badCv); err == nil {
		t.Fatal("degenerate Cv params should fail")
	}
	badCvIn := DefaultParams()
	badCvIn.CvNormalCenter = -0.5
	if _, err := NewCvInputVariable(badCvIn); err == nil {
		t.Fatal("degenerate Cv-input params should fail")
	}
	badReq := DefaultParams()
	badReq.VoiceCenter = -5
	if _, err := NewRequestVariable(badReq); err == nil {
		t.Fatal("degenerate request params should fail")
	}
	badCs := DefaultParams()
	badCs.CapacityBU = -40
	if _, err := NewCounterVariable(badCs); err == nil {
		t.Fatal("degenerate counter params should fail")
	}
	badAR := DefaultParams()
	badAR.ARSpacing = -0.5
	if _, err := NewARVariable(badAR); err == nil {
		t.Fatal("degenerate A/R params should fail")
	}
}
