package facs

import (
	"fmt"

	"facs/internal/fuzzy"
)

// FLC1 term names (paper Section 3.1).
const (
	// Input variable names.
	VarSpeed    = "S"
	VarAngle    = "A"
	VarDistance = "D"
	// Output variable name.
	VarCv = "Cv"
)

// Speed terms T(S) = {Slow, Middle, Fast}.
const (
	TermSlow   = "Sl"
	TermMiddle = "M"
	TermFast   = "Fa"
)

// Angle terms T(A) = {Back1, Left1, Left2, Straight, Right1, Right2, Back2}.
const (
	TermBack1    = "B1"
	TermLeft1    = "L1"
	TermLeft2    = "L2"
	TermStraight = "St"
	TermRight1   = "R1"
	TermRight2   = "R2"
	TermBack2    = "B2"
)

// Distance terms T(D) = {Near, Far}.
const (
	TermNear = "N"
	TermFar  = "F"
)

// CvTerm returns the i-th correction-value term name, "Cv1".."Cv9".
func CvTerm(i int) string { return fmt.Sprintf("Cv%d", i) }

// frb1Row is one row of the paper's Table 1.
type frb1Row struct {
	S, A, D string
	Cv      int // consequent term index 1..9
}

// FRB1 is the paper's Table 1, all 42 rules in row order.
var frb1 = [42]frb1Row{
	{TermSlow, TermBack1, TermNear, 3},
	{TermSlow, TermBack1, TermFar, 1},
	{TermSlow, TermLeft1, TermNear, 4},
	{TermSlow, TermLeft1, TermFar, 2},
	{TermSlow, TermLeft2, TermNear, 5},
	{TermSlow, TermLeft2, TermFar, 3},
	{TermSlow, TermStraight, TermNear, 9},
	{TermSlow, TermStraight, TermFar, 3},
	{TermSlow, TermRight1, TermNear, 5},
	{TermSlow, TermRight1, TermFar, 2},
	{TermSlow, TermRight2, TermNear, 4},
	{TermSlow, TermRight2, TermFar, 2},
	{TermSlow, TermBack2, TermNear, 3},
	{TermSlow, TermBack2, TermFar, 1},
	{TermMiddle, TermBack1, TermNear, 2},
	{TermMiddle, TermBack1, TermFar, 1},
	{TermMiddle, TermLeft1, TermNear, 4},
	{TermMiddle, TermLeft1, TermFar, 1},
	{TermMiddle, TermLeft2, TermNear, 8},
	{TermMiddle, TermLeft2, TermFar, 5},
	{TermMiddle, TermStraight, TermNear, 9},
	{TermMiddle, TermStraight, TermFar, 7},
	{TermMiddle, TermRight1, TermNear, 8},
	{TermMiddle, TermRight1, TermFar, 5},
	{TermMiddle, TermRight2, TermNear, 4},
	{TermMiddle, TermRight2, TermFar, 1},
	{TermMiddle, TermBack2, TermNear, 2},
	{TermMiddle, TermBack2, TermFar, 1},
	{TermFast, TermBack1, TermNear, 1},
	{TermFast, TermBack1, TermFar, 1},
	{TermFast, TermLeft1, TermNear, 1},
	{TermFast, TermLeft1, TermFar, 2},
	{TermFast, TermLeft2, TermNear, 6},
	{TermFast, TermLeft2, TermFar, 8},
	{TermFast, TermStraight, TermNear, 9},
	{TermFast, TermStraight, TermFar, 9},
	{TermFast, TermRight1, TermNear, 6},
	{TermFast, TermRight1, TermFar, 8},
	{TermFast, TermRight2, TermNear, 1},
	{TermFast, TermRight2, TermFar, 2},
	{TermFast, TermBack2, TermNear, 1},
	{TermFast, TermBack2, TermFar, 1},
}

// FRB1Rules returns the paper's Table 1 as engine rules, in row order.
func FRB1Rules() []fuzzy.Rule {
	rules := make([]fuzzy.Rule, 0, len(frb1))
	for _, row := range frb1 {
		rules = append(rules, fuzzy.Rule{
			If: []fuzzy.Clause{
				{Var: VarSpeed, Term: row.S},
				{Var: VarAngle, Term: row.A},
				{Var: VarDistance, Term: row.D},
			},
			Then:   fuzzy.Clause{Var: VarCv, Term: CvTerm(row.Cv)},
			Weight: 1,
		})
	}
	return rules
}

// NewSpeedVariable builds the FLC1 input S per paper Fig. 5(a).
func NewSpeedVariable(p Params) (*fuzzy.Variable, error) {
	slow, err := fuzzy.NewTrapezoidal(0, p.SlowPlateauEnd, 0, p.MiddleCenter-p.SlowPlateauEnd)
	if err != nil {
		return nil, fmt.Errorf("facs: speed %s: %w", TermSlow, err)
	}
	middle, err := fuzzy.NewTriangular(p.MiddleCenter, p.MiddleCenter-p.SlowPlateauEnd, p.FastPlateauStart-p.MiddleCenter)
	if err != nil {
		return nil, fmt.Errorf("facs: speed %s: %w", TermMiddle, err)
	}
	fast, err := fuzzy.NewTrapezoidal(p.FastPlateauStart, p.SpeedMax, p.FastPlateauStart-p.MiddleCenter, 0)
	if err != nil {
		return nil, fmt.Errorf("facs: speed %s: %w", TermFast, err)
	}
	return fuzzy.NewVariable(VarSpeed, 0, p.SpeedMax,
		fuzzy.Term{Name: TermSlow, MF: slow},
		fuzzy.Term{Name: TermMiddle, MF: middle},
		fuzzy.Term{Name: TermFast, MF: fast},
	)
}

// NewAngleVariable builds the FLC1 input A per paper Fig. 5(b).
func NewAngleVariable(p Params) (*fuzzy.Variable, error) {
	hw := p.AngleHalfWidth
	// The Back shoulders fall to zero exactly at the Left1/Right1 centres
	// (±2·hw), keeping the partition hole-free.
	backFall := p.BackPlateauStart - 2*hw
	b1, err := fuzzy.NewTrapezoidal(-p.AngleMax, -p.BackPlateauStart, 0, backFall)
	if err != nil {
		return nil, fmt.Errorf("facs: angle %s: %w", TermBack1, err)
	}
	b2, err := fuzzy.NewTrapezoidal(p.BackPlateauStart, p.AngleMax, backFall, 0)
	if err != nil {
		return nil, fmt.Errorf("facs: angle %s: %w", TermBack2, err)
	}
	tri := func(name string, center float64) (fuzzy.Term, error) {
		mf, err := fuzzy.NewTriangular(center, hw, hw)
		if err != nil {
			return fuzzy.Term{}, fmt.Errorf("facs: angle %s: %w", name, err)
		}
		return fuzzy.Term{Name: name, MF: mf}, nil
	}
	l1, err := tri(TermLeft1, -2*hw)
	if err != nil {
		return nil, err
	}
	l2, err := tri(TermLeft2, -hw)
	if err != nil {
		return nil, err
	}
	st, err := tri(TermStraight, 0)
	if err != nil {
		return nil, err
	}
	r1, err := tri(TermRight1, hw)
	if err != nil {
		return nil, err
	}
	r2, err := tri(TermRight2, 2*hw)
	if err != nil {
		return nil, err
	}
	return fuzzy.NewVariable(VarAngle, -p.AngleMax, p.AngleMax,
		fuzzy.Term{Name: TermBack1, MF: b1},
		l1, l2, st, r1, r2,
		fuzzy.Term{Name: TermBack2, MF: b2},
	)
}

// NewDistanceVariable builds the FLC1 input D per paper Fig. 5(c).
func NewDistanceVariable(p Params) (*fuzzy.Variable, error) {
	near, err := fuzzy.NewTriangular(0, 0, p.DistanceMax)
	if err != nil {
		return nil, fmt.Errorf("facs: distance %s: %w", TermNear, err)
	}
	far, err := fuzzy.NewTriangular(p.DistanceMax, p.DistanceMax, 0)
	if err != nil {
		return nil, fmt.Errorf("facs: distance %s: %w", TermFar, err)
	}
	return fuzzy.NewVariable(VarDistance, 0, p.DistanceMax,
		fuzzy.Term{Name: TermNear, MF: near},
		fuzzy.Term{Name: TermFar, MF: far},
	)
}

// NewCvVariable builds the correction-value variable (FLC1 output) per
// paper Fig. 5(d): nine terms with shoulder trapezoids at both ends.
func NewCvVariable(p Params) (*fuzzy.Variable, error) {
	terms := make([]fuzzy.Term, 0, 9)
	top := 8 * p.CvSpacing
	first, err := fuzzy.NewTrapezoidal(0, p.CvShoulderPlateau, 0, p.CvSpacing)
	if err != nil {
		return nil, fmt.Errorf("facs: %s: %w", CvTerm(1), err)
	}
	terms = append(terms, fuzzy.Term{Name: CvTerm(1), MF: first})
	for i := 2; i <= 8; i++ {
		mf, err := fuzzy.NewTriangular(float64(i-1)*p.CvSpacing, p.CvSpacing, p.CvSpacing)
		if err != nil {
			return nil, fmt.Errorf("facs: %s: %w", CvTerm(i), err)
		}
		terms = append(terms, fuzzy.Term{Name: CvTerm(i), MF: mf})
	}
	last, err := fuzzy.NewTrapezoidal(top-p.CvShoulderPlateau, top, p.CvSpacing, 0)
	if err != nil {
		return nil, fmt.Errorf("facs: %s: %w", CvTerm(9), err)
	}
	terms = append(terms, fuzzy.Term{Name: CvTerm(9), MF: last})
	return fuzzy.NewVariable(VarCv, 0, top, terms...)
}

// NewFLC1 compiles the prediction controller with the paper's variables
// and FRB1. Engine options (t-norm, defuzzifier, resolution) may be
// overridden.
func NewFLC1(p Params, opts ...fuzzy.Option) (*fuzzy.Engine, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	s, err := NewSpeedVariable(p)
	if err != nil {
		return nil, err
	}
	a, err := NewAngleVariable(p)
	if err != nil {
		return nil, err
	}
	d, err := NewDistanceVariable(p)
	if err != nil {
		return nil, err
	}
	cv, err := NewCvVariable(p)
	if err != nil {
		return nil, err
	}
	eng, err := fuzzy.NewEngine([]*fuzzy.Variable{s, a, d}, cv, FRB1Rules(), opts...)
	if err != nil {
		return nil, fmt.Errorf("facs: compiling FLC1: %w", err)
	}
	return eng, nil
}
