package facs

import (
	"os"
	"path/filepath"
	"testing"

	"facs/internal/gps"
)

// cacheTestGrid keeps cache-test compiles fast; correctness of the
// surfaces themselves is pinned by the golden-equivalence suite at the
// default grid.
const cacheTestGrid = 8

// cacheProbes are query points spread over the golden lattice and off
// it, used to compare a cached controller against a freshly compiled
// one.
var cacheProbes = []struct {
	obs     gps.Observation
	request int
	used    int
	handoff bool
}{
	{gps.Observation{SpeedKmh: 4, AngleDeg: 0, DistanceKm: 2}, 5, 0, false},
	{gps.Observation{SpeedKmh: 30, AngleDeg: 45, DistanceKm: 5}, 10, 20, false},
	{gps.Observation{SpeedKmh: 60, AngleDeg: -90, DistanceKm: 8}, 1, 35, false},
	{gps.Observation{SpeedKmh: 95, AngleDeg: 170, DistanceKm: 9.5}, 5, 30, true},
	{gps.Observation{SpeedKmh: 12.3, AngleDeg: 33.3, DistanceKm: 4.44}, 10, 7, false},
	{gps.Observation{SpeedKmh: 77.7, AngleDeg: -135, DistanceKm: 0.5}, 1, 39, true},
}

func assertSameAnswers(t *testing.T, want, got *CompiledController) {
	t.Helper()
	for _, p := range cacheProbes {
		a, err := want.Evaluate(p.obs, p.request, p.used, p.handoff)
		if err != nil {
			t.Fatal(err)
		}
		b, err := got.Evaluate(p.obs, p.request, p.used, p.handoff)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("cached controller answers %+v at %+v, want %+v", b, p, a)
		}
	}
	// The whole golden lattice must agree, not just the probes: FLC1's
	// table is compared node by node through the public query path.
	axes := want.surf1.Axes()
	for _, s := range axes[0].Nodes() {
		for _, a := range axes[1].Nodes() {
			for _, d := range axes[2].Nodes() {
				wv, err := want.surf1.EvaluateVec(s, a, d)
				if err != nil {
					t.Fatal(err)
				}
				gv, err := got.surf1.EvaluateVec(s, a, d)
				if err != nil {
					t.Fatal(err)
				}
				if wv != gv {
					t.Fatalf("FLC1 lattice answer at (%v,%v,%v): %v, want %v", s, a, d, gv, wv)
				}
			}
		}
	}
}

func TestSurfaceCacheMissThenHit(t *testing.T) {
	dir := t.TempDir()
	sys := Must()

	before := CompileCount()
	c1, info, err := CompileSystemCached(sys, cacheTestGrid, dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.Hit || info.Stale {
		t.Fatalf("first build should be a clean miss, got %+v", info)
	}
	if got := CompileCount() - before; got != 1 {
		t.Fatalf("first build should compile exactly once, compiled %d times", got)
	}
	if _, err := os.Stat(info.Path); err != nil {
		t.Fatalf("cache entry not written: %v", err)
	}

	// Second start: loaded, not compiled — asserted via the counter.
	before = CompileCount()
	c2, info2, err := CompileSystemCached(Must(), cacheTestGrid, dir)
	if err != nil {
		t.Fatal(err)
	}
	if !info2.Hit {
		t.Fatalf("second build should hit the cache, got %+v", info2)
	}
	if got := CompileCount() - before; got != 0 {
		t.Fatalf("cached startup must skip compilation, compiled %d times", got)
	}
	assertSameAnswers(t, c1, c2)
	if f, e := c2.Stats(); f+e < int64(len(cacheProbes)) {
		t.Fatalf("cached controller did not serve the probes: fast=%d exact=%d", f, e)
	}
}

func TestSurfaceCacheStaleEntryRecompiled(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := CompileSystemCached(Must(), cacheTestGrid, dir); err != nil {
		t.Fatal(err)
	}

	// A different configuration at the same grid size maps to the same
	// file but a different config hash: the entry must be rejected and
	// recompiled, never served.
	changed := Must(WithAcceptThreshold(0.4))
	before := CompileCount()
	c, info, err := CompileSystemCached(changed, cacheTestGrid, dir)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Stale || info.Hit {
		t.Fatalf("changed config should report a stale entry, got %+v", info)
	}
	if got := CompileCount() - before; got != 1 {
		t.Fatalf("stale entry must recompile once, compiled %d times", got)
	}
	if c.AcceptThreshold() != 0.4 {
		t.Fatalf("recompiled controller has threshold %v, want 0.4", c.AcceptThreshold())
	}

	// The overwritten entry now serves the changed config...
	before = CompileCount()
	if _, info, err = CompileSystemCached(Must(WithAcceptThreshold(0.4)), cacheTestGrid, dir); err != nil {
		t.Fatal(err)
	}
	if !info.Hit || CompileCount() != before {
		t.Fatalf("overwritten entry should now hit, got %+v", info)
	}
	// ...and the original config sees it as stale in turn.
	if _, info, err = CompileSystemCached(Must(), cacheTestGrid, dir); err != nil {
		t.Fatal(err)
	}
	if !info.Stale {
		t.Fatalf("original config should find the overwritten entry stale, got %+v", info)
	}
}

func TestSurfaceCacheCorruptEntryRecompiled(t *testing.T) {
	dir := t.TempDir()
	_, info, err := CompileSystemCached(Must(), cacheTestGrid, dir)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(info.Path)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/3] ^= 0x10
	if err := os.WriteFile(info.Path, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	before := CompileCount()
	fresh, info2, err := CompileSystemCached(Must(), cacheTestGrid, dir)
	if err != nil {
		t.Fatal(err)
	}
	if !info2.Stale {
		t.Fatalf("corrupt entry should be reported stale, got %+v", info2)
	}
	if got := CompileCount() - before; got != 1 {
		t.Fatalf("corrupt entry must recompile once, compiled %d times", got)
	}
	ref, err := CompileSystem(Must(), cacheTestGrid)
	if err != nil {
		t.Fatal(err)
	}
	assertSameAnswers(t, ref, fresh)
}

func TestSurfaceCacheGridSizeIsPartOfKey(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := CompileSystemCached(Must(), cacheTestGrid, dir); err != nil {
		t.Fatal(err)
	}
	_, info, err := CompileSystemCached(Must(), cacheTestGrid+1, dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.Hit || info.Stale {
		t.Fatalf("different grid size should be a distinct clean miss, got %+v", info)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "facs-g*.surfaces"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("expected one entry per grid size, found %v", entries)
	}
}

func TestSurfaceCacheUnwritableDirDegradesToCompilation(t *testing.T) {
	// The cache "directory" is actually a file, so both the read and
	// the write fail. The compiled controller must still be returned
	// alongside the write error (the documented non-fatal contract a
	// read-only cache directory relies on).
	parent := t.TempDir()
	dir := filepath.Join(parent, "not-a-dir")
	if err := os.WriteFile(dir, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	c, info, err := CompileSystemCached(Must(), cacheTestGrid, dir)
	if err == nil {
		t.Fatal("expected a cache-write error")
	}
	if c == nil {
		t.Fatalf("compiled controller must survive the cache-write failure: %v", err)
	}
	if info.Hit {
		t.Fatalf("unreadable entry cannot be a hit: %+v", info)
	}
	if _, err := c.Evaluate(cacheProbes[0].obs, cacheProbes[0].request, cacheProbes[0].used, cacheProbes[0].handoff); err != nil {
		t.Fatalf("returned controller is not usable: %v", err)
	}
}

func TestSurfaceCacheEmptyDirCompiles(t *testing.T) {
	before := CompileCount()
	c, info, err := CompileSystemCached(Must(), cacheTestGrid, "")
	if err != nil {
		t.Fatal(err)
	}
	if c == nil || info.Hit || info.Path != "" {
		t.Fatalf("empty dir should compile without caching, got %+v", info)
	}
	if got := CompileCount() - before; got != 1 {
		t.Fatalf("compiled %d times, want 1", got)
	}
}
