package facs

import (
	"fmt"
)

// Params holds every membership-function break-point of both controllers.
// The defaults encode the layouts read off the paper's Figs. 5 and 6; the
// paper publishes the figures rather than numeric tables, so the axis tick
// marks pin the values (documented per field below).
type Params struct {
	// Speed (FLC1 input S, km/h, universe [0, SpeedMax]). Fig. 5(a) ticks
	// at 0, 15, 30, 60, 120: Slow plateaus on [0, SlowPlateauEnd] and
	// falls to zero at MiddleCenter; Middle is a triangle with feet at
	// SlowPlateauEnd and FastPlateauStart; Fast rises from MiddleCenter
	// and plateaus on [FastPlateauStart, SpeedMax].
	SpeedMax         float64
	SlowPlateauEnd   float64
	MiddleCenter     float64
	FastPlateauStart float64

	// Angle (FLC1 input A, degrees, universe [-AngleMax, AngleMax]).
	// Fig. 5(b) ticks at -180, -135, -90, -45, 0, 45, 90, 135, 180:
	// Back1 plateaus on [-180, -BackPlateauStart] and falls to zero at
	// -SideCenter2... the seven terms are symmetric triangles of
	// half-width AngleHalfWidth centred every AngleHalfWidth degrees,
	// with trapezoidal shoulders for Back1/Back2.
	AngleMax         float64
	BackPlateauStart float64 // |angle| at which the Back plateau begins (135)
	AngleHalfWidth   float64 // triangle half-width and centre spacing (45)

	// Distance (FLC1 input D, km, universe [0, DistanceMax]). Fig. 5(c)
	// ticks at 0 and 10: Near falls linearly from 1 at 0 to 0 at
	// DistanceMax; Far rises linearly from 0 at 0 to 1 at DistanceMax.
	DistanceMax float64

	// Correction value (FLC1 output / FLC2 input, universe [0, 1]).
	// Fig. 5(d): nine terms Cv1..Cv9 spaced CvSpacing apart with
	// trapezoidal shoulders of plateau CvShoulderPlateau at both ends.
	CvSpacing         float64
	CvShoulderPlateau float64

	// FLC2 input Cv partition (Fig. 6(a) ticks 0, 0.5, 1): Bad/Normal/
	// Good triangles centred at 0, CvNormalCenter and 1.
	CvNormalCenter float64

	// Request (FLC2 input R, BU, universe [0, RequestMax]). Fig. 6(b)
	// ticks 0, 5, 10: Text/Voice/Video triangles centred at 0,
	// VoiceCenter and RequestMax.
	RequestMax  float64
	VoiceCenter float64

	// Counter state (FLC2 input Cs, BU, universe [0, CapacityBU]).
	// Fig. 6(c) ticks 0, 20, 40: Small/Middle/Full triangles centred at
	// 0, CapacityBU/2 and CapacityBU.
	CapacityBU float64

	// Accept/Reject (FLC2 output, universe [-1, 1]). Fig. 6(d): five
	// terms Reject, WeakReject, NotRejectNotAccept, WeakAccept, Accept
	// centred every ARSpacing with trapezoidal shoulders of plateau
	// ARShoulderPlateau at both ends.
	ARSpacing         float64
	ARShoulderPlateau float64
}

// DefaultParams returns the paper's layout.
func DefaultParams() Params {
	return Params{
		SpeedMax:         120,
		SlowPlateauEnd:   15,
		MiddleCenter:     30,
		FastPlateauStart: 60,

		AngleMax:         180,
		BackPlateauStart: 135,
		AngleHalfWidth:   45,

		DistanceMax: 10,

		CvSpacing:         0.125,
		CvShoulderPlateau: 0.0625,

		CvNormalCenter: 0.5,

		RequestMax:  10,
		VoiceCenter: 5,

		CapacityBU: 40,

		ARSpacing:         0.5,
		ARShoulderPlateau: 0.25,
	}
}

// Validate checks internal consistency of the break-points.
func (p Params) Validate() error {
	switch {
	case !(p.SpeedMax > 0):
		return fmt.Errorf("facs: SpeedMax must be > 0, got %v", p.SpeedMax)
	case !(p.SlowPlateauEnd > 0) || p.SlowPlateauEnd >= p.MiddleCenter:
		return fmt.Errorf("facs: need 0 < SlowPlateauEnd (%v) < MiddleCenter (%v)", p.SlowPlateauEnd, p.MiddleCenter)
	case p.MiddleCenter >= p.FastPlateauStart:
		return fmt.Errorf("facs: need MiddleCenter (%v) < FastPlateauStart (%v)", p.MiddleCenter, p.FastPlateauStart)
	case p.FastPlateauStart >= p.SpeedMax:
		return fmt.Errorf("facs: need FastPlateauStart (%v) < SpeedMax (%v)", p.FastPlateauStart, p.SpeedMax)
	case p.AngleMax != 180:
		return fmt.Errorf("facs: AngleMax must be 180, got %v", p.AngleMax)
	case !(p.AngleHalfWidth > 0) || p.AngleHalfWidth > 90:
		return fmt.Errorf("facs: AngleHalfWidth must be in (0, 90], got %v", p.AngleHalfWidth)
	case p.BackPlateauStart <= 2*p.AngleHalfWidth || p.BackPlateauStart >= p.AngleMax:
		return fmt.Errorf("facs: BackPlateauStart (%v) must lie between 2*AngleHalfWidth and AngleMax", p.BackPlateauStart)
	case !(p.DistanceMax > 0):
		return fmt.Errorf("facs: DistanceMax must be > 0, got %v", p.DistanceMax)
	case !(p.CvSpacing > 0) || p.CvSpacing*8 > 1:
		return fmt.Errorf("facs: CvSpacing must be in (0, 0.125], got %v", p.CvSpacing)
	case p.CvShoulderPlateau < 0 || p.CvShoulderPlateau >= p.CvSpacing*8:
		return fmt.Errorf("facs: CvShoulderPlateau out of range: %v", p.CvShoulderPlateau)
	case !(p.CvNormalCenter > 0) || p.CvNormalCenter >= 1:
		return fmt.Errorf("facs: CvNormalCenter must be in (0, 1), got %v", p.CvNormalCenter)
	case !(p.RequestMax > 0):
		return fmt.Errorf("facs: RequestMax must be > 0, got %v", p.RequestMax)
	case !(p.VoiceCenter > 0) || p.VoiceCenter >= p.RequestMax:
		return fmt.Errorf("facs: VoiceCenter must be in (0, RequestMax), got %v", p.VoiceCenter)
	case !(p.CapacityBU > 0):
		return fmt.Errorf("facs: CapacityBU must be > 0, got %v", p.CapacityBU)
	case !(p.ARSpacing > 0) || p.ARSpacing*4 > 2:
		return fmt.Errorf("facs: ARSpacing must be in (0, 0.5], got %v", p.ARSpacing)
	case p.ARShoulderPlateau < 0 || p.ARShoulderPlateau >= 1:
		return fmt.Errorf("facs: ARShoulderPlateau out of range: %v", p.ARShoulderPlateau)
	}
	return nil
}
