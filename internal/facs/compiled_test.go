package facs

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"facs/internal/cac"
	"facs/internal/cell"
	"facs/internal/geo"
	"facs/internal/gps"
	"facs/internal/traffic"
)

// Golden-equivalence suite: the compiled lookup-table fast path against
// the exact Mamdani engines.
//
// Two guarantees are pinned here, with the tolerances the package
// documents:
//
//   - Admission decisions (Accepted) and soft grades (Grade) NEVER
//     differ from the exact System — the guard band re-runs the exact
//     engines whenever the interpolated A/R value is too close to a
//     decision boundary to be certain, so the suite asserts zero flips
//     across the paper's operating lattice and across randomized
//     inputs.
//   - The crisp Cv and A/R values carry a bounded interpolation error:
//     at the default grid the paper operating lattice stays within
//     latticeTol, and arbitrary in-universe inputs within globalTol
//     (the worst case sits on the diagonal creases of the min t-norm,
//     between grid nodes).
const (
	latticeTol = 0.012
	globalTol  = 0.07
)

// goldenCompiled returns the shared compiled default system, so the
// multi-second surface compilation is paid once per test binary.
func goldenCompiled(t *testing.T) *CompiledController {
	t.Helper()
	cc, err := DefaultCompiled()
	if err != nil {
		t.Fatal(err)
	}
	return cc
}

// paperLattice enumerates the operating points of the paper's
// evaluation section: the Fig. 7 speeds, Fig. 8 angles (both signs),
// Fig. 9 distances, the three service-class bandwidths and the
// occupancy sweep of a 40 BU cell.
func paperLattice(visit func(obs gps.Observation, requestBU, usedBU int)) {
	speeds := []float64{4, 10, 30, 60}
	angles := []float64{0, 30, 50, 60, 90, -30, -50, -60, -90, 180}
	dists := []float64{1, 3, 7, 10}
	for _, s := range speeds {
		for _, a := range angles {
			for _, d := range dists {
				for _, r := range []int{1, 5, 10} {
					for used := 0; used <= 40; used += 2 {
						visit(gps.Observation{SpeedKmh: s, AngleDeg: a, DistanceKm: d}, r, used)
					}
				}
			}
		}
	}
}

func TestCompiledGoldenLattice(t *testing.T) {
	sys := Must()
	cc := goldenCompiled(t)
	var n, flips, gradeFlips int
	var maxCv, maxAR float64
	paperLattice(func(obs gps.Observation, r, used int) {
		exact, err := sys.Evaluate(obs, r, used, false)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := cc.Evaluate(obs, r, used, false)
		if err != nil {
			t.Fatal(err)
		}
		n++
		if exact.Accepted != fast.Accepted {
			flips++
		}
		if exact.Grade != fast.Grade {
			gradeFlips++
		}
		maxCv = math.Max(maxCv, math.Abs(exact.Cv-fast.Cv))
		maxAR = math.Max(maxAR, math.Abs(exact.AR-fast.AR))
	})
	if flips != 0 || gradeFlips != 0 {
		t.Fatalf("paper lattice (%d points): %d accept flips, %d grade flips; want zero",
			n, flips, gradeFlips)
	}
	if maxCv > latticeTol || maxAR > latticeTol {
		t.Fatalf("paper lattice: max |dCv| = %v, max |dAR| = %v exceed documented %v",
			maxCv, maxAR, latticeTol)
	}
	t.Logf("lattice: %d points, zero flips, max |dCv| = %.5f, max |dAR| = %.5f", n, maxCv, maxAR)
}

func TestCompiledGoldenRandom(t *testing.T) {
	sys := Must()
	cc := goldenCompiled(t)
	rng := rand.New(rand.NewSource(1907))
	const samples = 30000
	var maxCv, maxAR float64
	for i := 0; i < samples; i++ {
		obs := gps.Observation{
			SpeedKmh:   rng.Float64() * 120,
			AngleDeg:   rng.Float64()*360 - 180,
			DistanceKm: rng.Float64() * 10,
		}
		r := []int{1, 5, 10}[rng.Intn(3)]
		used := rng.Intn(41)
		handoff := rng.Intn(8) == 0
		exact, err := sys.Evaluate(obs, r, used, handoff)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := cc.Evaluate(obs, r, used, handoff)
		if err != nil {
			t.Fatal(err)
		}
		if exact.Accepted != fast.Accepted {
			t.Fatalf("decision flip at %+v r=%d used=%d: exact AR %v, fast AR %v",
				obs, r, used, exact.AR, fast.AR)
		}
		if exact.Grade != fast.Grade {
			t.Fatalf("grade flip at %+v r=%d used=%d: exact %v, fast %v",
				obs, r, used, exact.Grade, fast.Grade)
		}
		maxCv = math.Max(maxCv, math.Abs(exact.Cv-fast.Cv))
		maxAR = math.Max(maxAR, math.Abs(exact.AR-fast.AR))
	}
	if maxCv > globalTol || maxAR > globalTol {
		t.Fatalf("random sweep: max |dCv| = %v, max |dAR| = %v exceed documented %v",
			maxCv, maxAR, globalTol)
	}
	t.Logf("random: %d samples, zero flips, max |dCv| = %.5f, max |dAR| = %.5f", samples, maxCv, maxAR)
}

// TestCompiledExactAtNodes: on the grid nodes of the prediction
// surface the fast path reproduces the exact engine bit-for-bit (up to
// float summation noise).
func TestCompiledExactAtNodes(t *testing.T) {
	sys := Must()
	cc := goldenCompiled(t)
	axes := cc.FLC1Surface().Axes()
	sNodes, aNodes, dNodes := axes[0].Nodes(), axes[1].Nodes(), axes[2].Nodes()
	for i := 0; i < len(sNodes); i += 8 {
		for j := 0; j < len(aNodes); j += 8 {
			for k := 0; k < len(dNodes); k += 8 {
				obs := gps.Observation{SpeedKmh: sNodes[i], AngleDeg: aNodes[j], DistanceKm: dNodes[k]}
				want, err := sys.Predict(obs)
				if err != nil {
					t.Fatal(err)
				}
				got, err := cc.Predict(obs)
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(got-want) > 1e-12 {
					t.Fatalf("node (%v, %v, %v): compiled %v, exact %v",
						obs.SpeedKmh, obs.AngleDeg, obs.DistanceKm, got, want)
				}
			}
		}
	}
}

// TestCompiledDecideMatchesSystem drives both controllers through the
// cac.Controller interface against a real base station, covering the
// capacity short-circuit and the handoff flag.
func TestCompiledDecideMatchesSystem(t *testing.T) {
	sys := Must()
	cc := goldenCompiled(t)
	bs, err := cell.NewBaseStation(geo.Hex{}, geo.Point{}, cell.DefaultCapacityBU)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	id := 0
	for trial := 0; trial < 2000; trial++ {
		// Random occupancy between trials.
		if bs.Used() > 30 || (bs.Used() > 0 && rng.Intn(3) == 0) {
			for _, c := range bs.Calls() {
				if _, err := bs.Release(c.ID); err != nil {
					t.Fatal(err)
				}
			}
		}
		class := []traffic.Class{traffic.Text, traffic.Voice, traffic.Video}[rng.Intn(3)]
		req := cac.Request{
			Call: cell.Call{
				ID:    1000 + id,
				Class: class,
				BU:    class.BandwidthUnits(),
			},
			Station: bs,
			Obs: gps.Observation{
				SpeedKmh:   rng.Float64() * 120,
				AngleDeg:   rng.Float64()*360 - 180,
				DistanceKm: rng.Float64() * 10,
			},
			Handoff: rng.Intn(4) == 0,
		}
		id++
		want, err := sys.Decide(req)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cc.Decide(req)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("Decide mismatch at %+v used=%d: exact %v, compiled %v",
				req.Obs, bs.Used(), want, got)
		}
		if want.Accepted() {
			if err := bs.Admit(req.Call); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestCompiledHandoffBias: a coarse 17-node grid with a handoff bias
// still never flips a decision or grade — the guard band absorbs the
// larger interpolation error by falling back more often.
func TestCompiledHandoffBias(t *testing.T) {
	sys, err := New(WithHandoffBias(0.5))
	if err != nil {
		t.Fatal(err)
	}
	cc, err := CompileSystem(sys, 17)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 4000; i++ {
		obs := gps.Observation{
			SpeedKmh:   rng.Float64() * 120,
			AngleDeg:   rng.Float64()*360 - 180,
			DistanceKm: rng.Float64() * 10,
		}
		r := []int{1, 5, 10}[rng.Intn(3)]
		used := rng.Intn(41)
		handoff := i%2 == 0
		exact, err := sys.Evaluate(obs, r, used, handoff)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := cc.Evaluate(obs, r, used, handoff)
		if err != nil {
			t.Fatal(err)
		}
		if exact.Accepted != fast.Accepted || exact.Grade != fast.Grade {
			t.Fatalf("flip with bias at %+v r=%d used=%d handoff=%v: exact (%v, %v), fast (%v, %v)",
				obs, r, used, handoff, exact.Grade, exact.Accepted, fast.Grade, fast.Accepted)
		}
	}
	fast, exact := cc.Stats()
	if fast == 0 || exact == 0 {
		t.Fatalf("coarse grid should exercise both paths, got fast=%d exact=%d", fast, exact)
	}
}

// TestCompiledStats: the knife-edge plateau of the admission surface
// (exact A/R within 1e-3 of the accept threshold) must route through
// the exact fallback, and ordinary points through the fast path.
func TestCompiledStats(t *testing.T) {
	cc, err := NewCompiled(0)
	if err != nil {
		t.Fatal(err)
	}
	f0, e0 := cc.Stats()
	if f0 != 0 || e0 != 0 {
		t.Fatalf("fresh controller stats = (%d, %d)", f0, e0)
	}
	// Knife edge: exact AR = 0.24999... (measured), guard must trigger.
	knife := gps.Observation{SpeedKmh: 60, AngleDeg: 50, DistanceKm: 7}
	if _, err := cc.Evaluate(knife, 1, 15, false); err != nil {
		t.Fatal(err)
	}
	if _, e := cc.Stats(); e != 1 {
		t.Fatalf("knife-edge evaluation did not take the exact fallback: stats %v", e)
	}
	// Comfortable margin: deep reject.
	easy := gps.Observation{SpeedKmh: 110, AngleDeg: 180, DistanceKm: 9.5}
	if _, err := cc.Evaluate(easy, 10, 38, false); err != nil {
		t.Fatal(err)
	}
	if f, _ := cc.Stats(); f != 1 {
		t.Fatalf("easy evaluation did not take the fast path: stats %v", f)
	}
}

func TestCompiledConstructionErrors(t *testing.T) {
	if _, err := CompileSystem(nil, 0); err == nil {
		t.Fatal("nil system should error")
	}
	if _, err := NewCompiled(0, WithAcceptThreshold(5)); err == nil {
		t.Fatal("invalid option should propagate")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustCompiled should panic on error")
		}
	}()
	MustCompiled(0, WithAcceptThreshold(5))
}

func TestCompiledAccessors(t *testing.T) {
	cc := goldenCompiled(t)
	if cc.Name() != "facs-compiled" {
		t.Fatalf("Name = %q", cc.Name())
	}
	if cc.System() == nil || cc.FLC1Surface() == nil || cc.FLC2Surface() == nil {
		t.Fatal("nil accessors")
	}
	if cc.AcceptThreshold() != DefaultAcceptThreshold {
		t.Fatalf("AcceptThreshold = %v", cc.AcceptThreshold())
	}
	if got := cc.FLC1Surface().String(); !strings.HasPrefix(got, "Cv[") {
		t.Fatalf("FLC1 surface = %q", got)
	}
	// The admission surface pins every integral bandwidth unit.
	csAxis := cc.FLC2Surface().Axes()[2]
	nodes := csAxis.Nodes()
	for want := 0.0; want <= 40; want++ {
		found := false
		for _, n := range nodes {
			if n == want {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("counter axis misses integer node %v", want)
		}
	}
}

func TestDefaultCompiledShared(t *testing.T) {
	a, err := DefaultCompiled()
	if err != nil {
		t.Fatal(err)
	}
	b, err := DefaultCompiled()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("DefaultCompiled should return the shared instance")
	}
}

// TestGradeBoundaries: the scanned grade switch points of the default
// A/R variable sit at the membership crossings: shoulder/triangle
// pairs cross at +-0.625, the symmetric inner triangles at +-0.25.
func TestGradeBoundaries(t *testing.T) {
	sys := Must()
	got := gradeBoundaries(sys.FLC2().Output())
	want := []float64{-0.625, -0.25, 0.25, 0.625}
	if len(got) != len(want) {
		t.Fatalf("boundaries = %v, want %v", got, want)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("boundary %d = %v, want %v", i, got[i], want[i])
		}
	}
}
