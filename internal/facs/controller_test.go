package facs

import (
	"strings"
	"testing"

	"facs/internal/cac"
	"facs/internal/cell"
	"facs/internal/fuzzy"
	"facs/internal/geo"
	"facs/internal/gps"
	"facs/internal/traffic"
)

func newStation(t *testing.T) *cell.BaseStation {
	t.Helper()
	bs, err := cell.NewBaseStation(geo.Hex{}, geo.Point{}, cell.DefaultCapacityBU)
	if err != nil {
		t.Fatal(err)
	}
	return bs
}

func fillBU(t *testing.T, bs *cell.BaseStation, bu int) {
	t.Helper()
	id := 10000
	for bu >= 10 {
		if err := bs.Admit(cell.Call{ID: id, Class: traffic.Video, BU: 10}); err != nil {
			t.Fatal(err)
		}
		id++
		bu -= 10
	}
	for bu >= 5 {
		if err := bs.Admit(cell.Call{ID: id, Class: traffic.Voice, BU: 5}); err != nil {
			t.Fatal(err)
		}
		id++
		bu -= 5
	}
	for bu > 0 {
		if err := bs.Admit(cell.Call{ID: id, Class: traffic.Text, BU: 1}); err != nil {
			t.Fatal(err)
		}
		id++
		bu--
	}
}

func goodObs() gps.Observation {
	return gps.Observation{SpeedKmh: 60, AngleDeg: 0, DistanceKm: 2}
}

func badObs() gps.Observation {
	return gps.Observation{SpeedKmh: 60, AngleDeg: 170, DistanceKm: 9}
}

func request(bs *cell.BaseStation, class traffic.Class, obs gps.Observation) cac.Request {
	return cac.Request{
		Call:    cell.Call{ID: 1, Class: class, BU: class.BandwidthUnits()},
		Station: bs,
		Obs:     obs,
	}
}

func TestSystemImplementsController(t *testing.T) {
	s := Must()
	if s.Name() != "facs" {
		t.Fatalf("Name = %q", s.Name())
	}
	if s.FLC1().NumRules() != 42 || s.FLC2().NumRules() != 27 {
		t.Fatal("engines not wired")
	}
	if s.AcceptThreshold() != DefaultAcceptThreshold {
		t.Fatalf("threshold = %v", s.AcceptThreshold())
	}
}

func TestDecideEmptyCellAcceptsEveryone(t *testing.T) {
	s := Must()
	for _, class := range traffic.Classes() {
		for _, obs := range []gps.Observation{goodObs(), badObs()} {
			bs := newStation(t)
			d, err := s.Decide(request(bs, class, obs))
			if err != nil {
				t.Fatal(err)
			}
			if d != cac.Accept {
				t.Fatalf("empty cell should accept %v (obs %+v)", class, obs)
			}
		}
	}
}

func TestDecideMidLoadDiscriminatesByPrediction(t *testing.T) {
	s := Must()
	bs := newStation(t)
	fillBU(t, bs, 20) // Cs exactly at the Middle kernel
	dGood, err := s.Decide(request(bs, traffic.Voice, goodObs()))
	if err != nil {
		t.Fatal(err)
	}
	dBad, err := s.Decide(request(bs, traffic.Voice, badObs()))
	if err != nil {
		t.Fatal(err)
	}
	if dGood != cac.Accept {
		t.Fatal("good prediction at mid load should accept")
	}
	if dBad != cac.Reject {
		t.Fatal("bad prediction at mid load should reject")
	}
}

func TestDecideFullCellRejectsEveryone(t *testing.T) {
	s := Must()
	bs := newStation(t)
	fillBU(t, bs, 40)
	for _, class := range traffic.Classes() {
		d, err := s.Decide(request(bs, class, goodObs()))
		if err != nil {
			t.Fatal(err)
		}
		if d != cac.Reject {
			t.Fatalf("full cell should reject %v", class)
		}
	}
}

func TestDecideRespectsPhysicalFit(t *testing.T) {
	s := Must()
	bs := newStation(t)
	fillBU(t, bs, 35) // 5 BU free: video cannot fit regardless of fuzzy outcome
	d, err := s.Decide(request(bs, traffic.Video, goodObs()))
	if err != nil {
		t.Fatal(err)
	}
	if d != cac.Reject {
		t.Fatal("call that cannot fit must be rejected")
	}
}

func TestDecideValidatesRequest(t *testing.T) {
	s := Must()
	if _, err := s.Decide(cac.Request{}); err == nil {
		t.Fatal("invalid request should error")
	}
}

func TestEvaluateTrace(t *testing.T) {
	s := Must()
	ev, err := s.Evaluate(goodObs(), 5, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Cv < 0.8 {
		t.Fatalf("good observation should predict well, Cv = %v", ev.Cv)
	}
	if !ev.Accepted || ev.AR < DefaultAcceptThreshold {
		t.Fatalf("empty cell should accept: %+v", ev)
	}
	if ev.Grade != GradeAccept && ev.Grade != GradeWeakAccept {
		t.Fatalf("grade = %v, want an accepting grade", ev.Grade)
	}
}

func TestPredictMatchesEvaluate(t *testing.T) {
	s := Must()
	cv, err := s.Predict(goodObs())
	if err != nil {
		t.Fatal(err)
	}
	ev, err := s.Evaluate(goodObs(), 1, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if cv != ev.Cv {
		t.Fatalf("Predict (%v) != Evaluate.Cv (%v)", cv, ev.Cv)
	}
}

func TestGradeStringer(t *testing.T) {
	tests := []struct {
		g    Grade
		want string
	}{
		{GradeReject, "reject"},
		{GradeWeakReject, "weak-reject"},
		{GradeNRNA, "not-reject-not-accept"},
		{GradeWeakAccept, "weak-accept"},
		{GradeAccept, "accept"},
	}
	for _, tc := range tests {
		if got := tc.g.String(); got != tc.want {
			t.Errorf("Grade %d = %q, want %q", tc.g, got, tc.want)
		}
	}
	if !strings.Contains(Grade(99).String(), "99") {
		t.Error("unknown grade should include its value")
	}
}

func TestGradeFromTermMapping(t *testing.T) {
	tests := []struct {
		term string
		want Grade
	}{
		{TermReject, GradeReject},
		{TermWeakReject, GradeWeakReject},
		{TermNRNA, GradeNRNA},
		{TermWeakAccept, GradeWeakAccept},
		{TermAccept, GradeAccept},
		{"bogus", 0},
	}
	for _, tc := range tests {
		if got := gradeFromTerm(tc.term); got != tc.want {
			t.Errorf("gradeFromTerm(%q) = %v, want %v", tc.term, got, tc.want)
		}
	}
}

func TestWithAcceptThreshold(t *testing.T) {
	strict, err := New(WithAcceptThreshold(0.9))
	if err != nil {
		t.Fatal(err)
	}
	lax, err := New(WithAcceptThreshold(-1))
	if err != nil {
		t.Fatal(err)
	}
	bs := newStation(t)
	fillBU(t, bs, 20)
	dStrict, err := strict.Decide(request(bs, traffic.Voice, goodObs()))
	if err != nil {
		t.Fatal(err)
	}
	dLax, err := lax.Decide(request(bs, traffic.Voice, badObs()))
	if err != nil {
		t.Fatal(err)
	}
	if dStrict != cac.Reject {
		t.Fatal("0.9 threshold should reject mid-load voice")
	}
	if dLax != cac.Accept {
		t.Fatal("-1 threshold should accept anything that fits")
	}
	if _, err := New(WithAcceptThreshold(2)); err == nil {
		t.Fatal("threshold outside [-1,1] should error")
	}
}

func TestWithHandoffBias(t *testing.T) {
	s, err := New(WithHandoffBias(0.5))
	if err != nil {
		t.Fatal(err)
	}
	evNew, err := s.Evaluate(badObs(), 5, 20, false)
	if err != nil {
		t.Fatal(err)
	}
	evHO, err := s.Evaluate(badObs(), 5, 20, true)
	if err != nil {
		t.Fatal(err)
	}
	if evHO.AR <= evNew.AR {
		t.Fatalf("handoff bias should raise AR: %v vs %v", evHO.AR, evNew.AR)
	}
	if evHO.AR > 1 {
		t.Fatalf("biased AR must stay within [-1, 1], got %v", evHO.AR)
	}
}

func TestWithDefuzzifierAndTNormOptions(t *testing.T) {
	wa, err := New(
		WithDefuzzifier(func() fuzzy.Defuzzifier { return fuzzy.NewWeightedAverage() }),
		WithTNorm(fuzzy.TNormProduct),
		WithImplication(fuzzy.ImplicationScale),
		WithResolution(501),
	)
	if err != nil {
		t.Fatal(err)
	}
	centroid := Must()
	// Both configurations must agree on the easy calls.
	for _, tc := range []struct {
		obs  gps.Observation
		used int
		want bool
	}{
		{goodObs(), 0, true},
		{badObs(), 38, false},
	} {
		evWA, err := wa.Evaluate(tc.obs, 5, tc.used, false)
		if err != nil {
			t.Fatal(err)
		}
		evC, err := centroid.Evaluate(tc.obs, 5, tc.used, false)
		if err != nil {
			t.Fatal(err)
		}
		if evWA.Accepted != tc.want || evC.Accepted != tc.want {
			t.Fatalf("configs disagree on easy case %+v: wa=%v centroid=%v want=%v",
				tc.obs, evWA.Accepted, evC.Accepted, tc.want)
		}
	}
}

func TestWithParamsOption(t *testing.T) {
	p := DefaultParams()
	p.CapacityBU = 80
	s, err := New(WithParams(p))
	if err != nil {
		t.Fatal(err)
	}
	// With an 80 BU universe, Cs=40 is only "Middle", so a good user is
	// still accepted where the default config would refuse.
	ev, err := s.Evaluate(goodObs(), 5, 40, false)
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Accepted {
		t.Fatal("Cs=40 of 80 should be mid-load for the scaled controller")
	}
	evDefault, err := Must().Evaluate(goodObs(), 5, 40, false)
	if err != nil {
		t.Fatal(err)
	}
	if evDefault.Accepted {
		t.Fatal("Cs=40 of 40 should reject for the default controller")
	}
}

func TestMustPanicsOnBadOptions(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Must should panic on invalid options")
		}
	}()
	Must(WithAcceptThreshold(5))
}

func TestSystemConcurrentDecide(t *testing.T) {
	s := Must()
	bs := newStation(t)
	fillBU(t, bs, 20)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 100; i++ {
				if _, err := s.Decide(request(bs, traffic.Voice, goodObs())); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// fuzzyParse adapts the fuzzy package's parser for the FRB round-trip
// tests.
func fuzzyParse(text string) (fuzzy.Rule, error) { return fuzzy.ParseRule(text) }
