package facs

import (
	"math"
	"testing"
	"testing/quick"
)

// TestFRB2MatchesPaperTable2 pins all 27 rules against an independently
// transcribed copy of the paper's Table 2.
func TestFRB2MatchesPaperTable2(t *testing.T) {
	want := map[int][4]string{
		0:  {"B", "T", "S", "A"},
		1:  {"B", "T", "M", "NRNA"},
		2:  {"B", "T", "F", "NRNA"},
		3:  {"B", "Vo", "S", "A"},
		4:  {"B", "Vo", "M", "NRNA"},
		5:  {"B", "Vo", "F", "WR"},
		6:  {"B", "Vi", "S", "WA"},
		7:  {"B", "Vi", "M", "NRNA"},
		8:  {"B", "Vi", "F", "WR"},
		9:  {"N", "T", "S", "A"},
		10: {"N", "T", "M", "NRNA"},
		11: {"N", "T", "F", "NRNA"},
		12: {"N", "Vo", "S", "A"},
		13: {"N", "Vo", "M", "NRNA"},
		14: {"N", "Vo", "F", "NRNA"},
		15: {"N", "Vi", "S", "WA"},
		16: {"N", "Vi", "M", "NRNA"},
		17: {"N", "Vi", "F", "NRNA"},
		18: {"G", "T", "S", "A"},
		19: {"G", "T", "M", "A"},
		20: {"G", "T", "F", "NRNA"},
		21: {"G", "Vo", "S", "A"},
		22: {"G", "Vo", "M", "A"},
		23: {"G", "Vo", "F", "WR"},
		24: {"G", "Vi", "S", "A"},
		25: {"G", "Vi", "M", "A"},
		26: {"G", "Vi", "F", "R"},
	}
	rules := FRB2Rules()
	if len(rules) != 27 {
		t.Fatalf("FRB2 has %d rules, want 27", len(rules))
	}
	for i, r := range rules {
		w := want[i]
		got := [4]string{r.If[0].Term, r.If[1].Term, r.If[2].Term, r.Then.Term}
		if got != w {
			t.Errorf("rule %d = %v, want %v", i, got, w)
		}
		if r.If[0].Var != VarCvIn || r.If[1].Var != VarRequest || r.If[2].Var != VarCounter || r.Then.Var != VarAR {
			t.Errorf("rule %d has wrong variable names", i)
		}
	}
}

func TestFRB2CoversFullCross(t *testing.T) {
	seen := map[[3]string]bool{}
	for _, r := range FRB2Rules() {
		key := [3]string{r.If[0].Term, r.If[1].Term, r.If[2].Term}
		if seen[key] {
			t.Fatalf("duplicate antecedent combination %v", key)
		}
		seen[key] = true
	}
	if len(seen) != 3*3*3 {
		t.Fatalf("FRB2 covers %d combinations, want 27", len(seen))
	}
}

func TestFLC2VariableLayouts(t *testing.T) {
	p := DefaultParams()
	cv, err := NewCvInputVariable(p)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRequestVariable(p)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := NewCounterVariable(p)
	if err != nil {
		t.Fatal(err)
	}
	ar, err := NewARVariable(p)
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		name string
		got  float64
		err  error
		want float64
	}{
		// Fig. 6(a): B/N/G at ticks 0, 0.5, 1.
		{"B(0)", mustMu(t, cv, TermBad, 0), nil, 1},
		{"N(0.5)", mustMu(t, cv, TermNormal, 0.5), nil, 1},
		{"G(1)", mustMu(t, cv, TermGood, 1), nil, 1},
		{"B(0.25)", mustMu(t, cv, TermBad, 0.25), nil, 0.5},
		{"G(0.5)", mustMu(t, cv, TermGood, 0.5), nil, 0},
		// Fig. 6(b): T/Vo/Vi at ticks 0, 5, 10.
		{"T(0)", mustMu(t, r, TermText, 0), nil, 1},
		{"Vo(5)", mustMu(t, r, TermVoice, 5), nil, 1},
		{"Vi(10)", mustMu(t, r, TermVideo, 10), nil, 1},
		{"T(1)", mustMu(t, r, TermText, 1), nil, 0.8}, // the paper's 1 BU text request
		{"Vo(1)", mustMu(t, r, TermVoice, 1), nil, 0.2},
		// Fig. 6(c): S/M/F at ticks 0, 20, 40.
		{"S(0)", mustMu(t, cs, TermSmall, 0), nil, 1},
		{"M(20)", mustMu(t, cs, TermMid, 20), nil, 1},
		{"F(40)", mustMu(t, cs, TermFull, 40), nil, 1},
		{"S(10)", mustMu(t, cs, TermSmall, 10), nil, 0.5},
		// Fig. 6(d): R/WR/NRNA/WA/A over [-1, 1].
		{"R(-1)", mustMu(t, ar, TermReject, -1), nil, 1},
		{"WR(-0.5)", mustMu(t, ar, TermWeakReject, -0.5), nil, 1},
		{"NRNA(0)", mustMu(t, ar, TermNRNA, 0), nil, 1},
		{"WA(0.5)", mustMu(t, ar, TermWeakAccept, 0.5), nil, 1},
		{"A(1)", mustMu(t, ar, TermAccept, 1), nil, 1},
	}
	for _, tc := range checks {
		if !approx(tc.got, tc.want, 1e-12) {
			t.Errorf("%s = %v, want %v", tc.name, tc.got, tc.want)
		}
	}
	for _, v := range []interface{ CheckCoverage(int) error }{cv, r, cs, ar} {
		if err := v.CheckCoverage(1001); err != nil {
			t.Fatal(err)
		}
	}
}

func TestNewFLC2KnownDecisions(t *testing.T) {
	eng, err := NewFLC2(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if eng.NumRules() != 27 {
		t.Fatalf("compiled FLC2 has %d rules", eng.NumRules())
	}
	tests := []struct {
		name      string
		cv, r, cs float64
		lo, hi    float64
	}{
		// Pure rule activations at term kernels.
		{"G T S -> Accept", 1, 0, 0, 0.6, 1},
		{"G Vi F -> Reject", 1, 10, 40, -1, -0.6},
		{"B Vi S -> WeakAccept", 0, 10, 0, 0.35, 0.65},
		{"N Vo M -> NRNA", 0.5, 5, 20, -0.15, 0.15},
		{"B Vo F -> WeakReject", 0, 5, 40, -0.65, -0.35},
		// Blends reported in the probe calibration.
		{"good user, empty cell", 0.9, 1, 0, 0.5, 1},
		{"good user, full cell", 0.9, 1, 40, -0.4, 0.1},
		{"bad user, empty cell still accepts", 0.1, 1, 0, 0.5, 1},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, err := eng.EvaluateVec(tc.cv, tc.r, tc.cs)
			if err != nil {
				t.Fatal(err)
			}
			if got < tc.lo || got > tc.hi {
				t.Fatalf("AR(%v,%v,%v) = %v, want in [%v,%v]", tc.cv, tc.r, tc.cs, got, tc.lo, tc.hi)
			}
		})
	}
}

// TestFLC2OccupancyMonotone: at fixed Cv and request, the three occupancy
// regimes (empty, mid, full — the kernels of Small/Middle/Full) are never
// ordered in favour of a fuller station. A strict point-wise scan is
// deliberately not asserted: for Good predictions the rule base maps both
// the Small and Middle rows to Accept, so the accept strength legitimately
// rises towards the Middle kernel.
func TestFLC2OccupancyMonotone(t *testing.T) {
	eng, err := NewFLC2(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	const eps = 1e-9
	for _, cv := range []float64{0.1, 0.5, 0.9} {
		for _, r := range []float64{1, 5, 10} {
			empty, err := eng.EvaluateVec(cv, r, 0)
			if err != nil {
				t.Fatal(err)
			}
			mid, err := eng.EvaluateVec(cv, r, 20)
			if err != nil {
				t.Fatal(err)
			}
			full, err := eng.EvaluateVec(cv, r, 40)
			if err != nil {
				t.Fatal(err)
			}
			if mid > empty+eps || full > mid+eps {
				t.Fatalf("occupancy regimes out of order at cv=%v r=%v: empty=%v mid=%v full=%v",
					cv, r, empty, mid, full)
			}
		}
	}
}

// TestFLC2CvImprovesAdmission: with the station half full, improving the
// prediction (Cv) never hurts admission.
func TestFLC2CvImprovesAdmission(t *testing.T) {
	eng, err := NewFLC2(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	const ripple = 0.04
	for _, r := range []float64{1, 5, 10} {
		prev := math.Inf(-1)
		for cv := 0.0; cv <= 1; cv += 0.02 {
			ar, err := eng.EvaluateVec(cv, r, 20)
			if err != nil {
				t.Fatal(err)
			}
			if ar < prev-ripple {
				t.Fatalf("AR decreased with better Cv: r=%v cv=%v (%v -> %v)", r, cv, prev, ar)
			}
			if ar > prev {
				prev = ar
			}
		}
	}
}

// Property: FLC2 output always stays within [-1, 1] and never errors.
func TestFLC2TotalityProperty(t *testing.T) {
	eng, err := NewFLC2(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	prop := func(cvRaw, rRaw, csRaw float64) bool {
		cv := clampFinite(cvRaw, 0, 1)
		r := clampFinite(rRaw, 0, 10)
		cs := clampFinite(csRaw, 0, 40)
		ar, err := eng.EvaluateVec(cv, r, cs)
		return err == nil && ar >= -1 && ar <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestNewFLC2RejectsBadParams(t *testing.T) {
	p := DefaultParams()
	p.CapacityBU = -40
	if _, err := NewFLC2(p); err == nil {
		t.Fatal("invalid params should error")
	}
}

func mustMu(t *testing.T, v interface {
	Membership(string, float64) (float64, error)
}, term string, x float64) float64 {
	t.Helper()
	m, err := v.Membership(term, x)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestFRB2ParserRoundTrip feeds every FRB2 rule through the textual rule
// parser and back.
func TestFRB2ParserRoundTrip(t *testing.T) {
	for i, r := range FRB2Rules() {
		parsed, err := fuzzyParse(r.String())
		if err != nil {
			t.Fatalf("rule %d: %v", i, err)
		}
		if parsed.String() != r.String() {
			t.Fatalf("rule %d round trip: %q vs %q", i, parsed.String(), r.String())
		}
	}
}
