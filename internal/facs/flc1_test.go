package facs

import (
	"math"
	"testing"
	"testing/quick"
)

// TestFRB1MatchesPaperTable1 pins the full 42-rule base against an
// independently transcribed copy of the paper's Table 1 (keyed by rule
// number rather than by struct order, so a transposition in either copy
// fails the test).
func TestFRB1MatchesPaperTable1(t *testing.T) {
	// rule -> "S A D Cv" transcription of Table 1.
	want := map[int][4]string{
		0:  {"Sl", "B1", "N", "Cv3"},
		1:  {"Sl", "B1", "F", "Cv1"},
		2:  {"Sl", "L1", "N", "Cv4"},
		3:  {"Sl", "L1", "F", "Cv2"},
		4:  {"Sl", "L2", "N", "Cv5"},
		5:  {"Sl", "L2", "F", "Cv3"},
		6:  {"Sl", "St", "N", "Cv9"},
		7:  {"Sl", "St", "F", "Cv3"},
		8:  {"Sl", "R1", "N", "Cv5"},
		9:  {"Sl", "R1", "F", "Cv2"},
		10: {"Sl", "R2", "N", "Cv4"},
		11: {"Sl", "R2", "F", "Cv2"},
		12: {"Sl", "B2", "N", "Cv3"},
		13: {"Sl", "B2", "F", "Cv1"},
		14: {"M", "B1", "N", "Cv2"},
		15: {"M", "B1", "F", "Cv1"},
		16: {"M", "L1", "N", "Cv4"},
		17: {"M", "L1", "F", "Cv1"},
		18: {"M", "L2", "N", "Cv8"},
		19: {"M", "L2", "F", "Cv5"},
		20: {"M", "St", "N", "Cv9"},
		21: {"M", "St", "F", "Cv7"},
		22: {"M", "R1", "N", "Cv8"},
		23: {"M", "R1", "F", "Cv5"},
		24: {"M", "R2", "N", "Cv4"},
		25: {"M", "R2", "F", "Cv1"},
		26: {"M", "B2", "N", "Cv2"},
		27: {"M", "B2", "F", "Cv1"},
		28: {"Fa", "B1", "N", "Cv1"},
		29: {"Fa", "B1", "F", "Cv1"},
		30: {"Fa", "L1", "N", "Cv1"},
		31: {"Fa", "L1", "F", "Cv2"},
		32: {"Fa", "L2", "N", "Cv6"},
		33: {"Fa", "L2", "F", "Cv8"},
		34: {"Fa", "St", "N", "Cv9"},
		35: {"Fa", "St", "F", "Cv9"},
		36: {"Fa", "R1", "N", "Cv6"},
		37: {"Fa", "R1", "F", "Cv8"},
		38: {"Fa", "R2", "N", "Cv1"},
		39: {"Fa", "R2", "F", "Cv2"},
		40: {"Fa", "B2", "N", "Cv1"},
		41: {"Fa", "B2", "F", "Cv1"},
	}
	rules := FRB1Rules()
	if len(rules) != 42 {
		t.Fatalf("FRB1 has %d rules, want 42", len(rules))
	}
	for i, r := range rules {
		w := want[i]
		if len(r.If) != 3 {
			t.Fatalf("rule %d has %d antecedents, want 3", i, len(r.If))
		}
		got := [4]string{r.If[0].Term, r.If[1].Term, r.If[2].Term, r.Then.Term}
		if got != w {
			t.Errorf("rule %d = %v, want %v", i, got, w)
		}
		if r.If[0].Var != VarSpeed || r.If[1].Var != VarAngle || r.If[2].Var != VarDistance || r.Then.Var != VarCv {
			t.Errorf("rule %d has wrong variable names", i)
		}
	}
}

// TestFRB1CoversFullCross checks that the rule base is exactly the cross
// product |T(S)|x|T(A)|x|T(D)| = 3*7*2 with no duplicates, as the paper
// states ("The FRB forms a fuzzy set of dimensions ...").
func TestFRB1CoversFullCross(t *testing.T) {
	seen := map[[3]string]bool{}
	for _, r := range FRB1Rules() {
		key := [3]string{r.If[0].Term, r.If[1].Term, r.If[2].Term}
		if seen[key] {
			t.Fatalf("duplicate antecedent combination %v", key)
		}
		seen[key] = true
	}
	if len(seen) != 3*7*2 {
		t.Fatalf("FRB1 covers %d combinations, want 42", len(seen))
	}
}

func TestSpeedVariableLayout(t *testing.T) {
	v, err := NewSpeedVariable(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		x    float64
		term string
		want float64
	}{
		{0, TermSlow, 1},
		{15, TermSlow, 1}, // plateau end (Fig. 5a tick)
		{22.5, TermSlow, 0.5},
		{30, TermSlow, 0},
		{30, TermMiddle, 1}, // middle centre (tick at 30)
		{15, TermMiddle, 0},
		{60, TermMiddle, 0},
		{45, TermMiddle, 0.5},
		{60, TermFast, 1}, // fast plateau start (tick at 60)
		{120, TermFast, 1},
		{30, TermFast, 0},
		{45, TermFast, 0.5},
	}
	for _, tc := range tests {
		got, err := v.Membership(tc.term, tc.x)
		if err != nil {
			t.Fatal(err)
		}
		if !approx(got, tc.want, 1e-12) {
			t.Errorf("mu_%s(%v) = %v, want %v", tc.term, tc.x, got, tc.want)
		}
	}
	if err := v.CheckCoverage(1001); err != nil {
		t.Fatal(err)
	}
}

func TestAngleVariableLayout(t *testing.T) {
	v, err := NewAngleVariable(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		x    float64
		term string
		want float64
	}{
		{-180, TermBack1, 1},
		{-135, TermBack1, 1}, // plateau edge (Fig. 5b tick)
		{-90, TermBack1, 0},
		{-90, TermLeft1, 1},
		{-45, TermLeft2, 1},
		{0, TermStraight, 1},
		{-22.5, TermStraight, 0.5},
		{22.5, TermStraight, 0.5},
		{45, TermRight1, 1},
		{90, TermRight2, 1},
		{135, TermBack2, 1},
		{180, TermBack2, 1},
		{90, TermBack2, 0},
		{0, TermLeft2, 0},
		{0, TermRight1, 0},
	}
	for _, tc := range tests {
		got, err := v.Membership(tc.term, tc.x)
		if err != nil {
			t.Fatal(err)
		}
		if !approx(got, tc.want, 1e-12) {
			t.Errorf("mu_%s(%v) = %v, want %v", tc.term, tc.x, got, tc.want)
		}
	}
	if err := v.CheckCoverage(1001); err != nil {
		t.Fatal(err)
	}
	// The layout must be mirror-symmetric. Note the pairing: L1 (-90°)
	// mirrors R2 (+90°) and L2 (-45°) mirrors R1 (+45°), matching FRB1,
	// which maps mirrored antecedents to identical consequents.
	for x := 0.0; x <= 180; x += 1.5 {
		for _, pair := range [][2]string{{TermLeft1, TermRight2}, {TermLeft2, TermRight1}, {TermBack1, TermBack2}} {
			l, _ := v.Membership(pair[0], -x)
			r, _ := v.Membership(pair[1], x)
			if !approx(l, r, 1e-12) {
				t.Fatalf("asymmetry at %v: mu_%s(-x)=%v mu_%s(x)=%v", x, pair[0], l, pair[1], r)
			}
		}
	}
}

func TestDistanceVariableLayout(t *testing.T) {
	v, err := NewDistanceVariable(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	near0, _ := v.Membership(TermNear, 0)
	far10, _ := v.Membership(TermFar, 10)
	near10, _ := v.Membership(TermNear, 10)
	far0, _ := v.Membership(TermFar, 0)
	cross5n, _ := v.Membership(TermNear, 5)
	cross5f, _ := v.Membership(TermFar, 5)
	if near0 != 1 || far10 != 1 || near10 != 0 || far0 != 0 {
		t.Fatalf("distance layout wrong: N(0)=%v F(10)=%v N(10)=%v F(0)=%v", near0, far10, near10, far0)
	}
	if !approx(cross5n, 0.5, 1e-12) || !approx(cross5f, 0.5, 1e-12) {
		t.Fatalf("Near/Far must cross at the universe midpoint: %v/%v", cross5n, cross5f)
	}
}

func TestCvVariableLayout(t *testing.T) {
	v, err := NewCvVariable(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if v.NumTerms() != 9 {
		t.Fatalf("Cv has %d terms, want 9", v.NumTerms())
	}
	// Interior terms peak at k*0.125.
	for k := 2; k <= 8; k++ {
		center := float64(k-1) * 0.125
		got, err := v.Membership(CvTerm(k), center)
		if err != nil {
			t.Fatal(err)
		}
		if got != 1 {
			t.Errorf("mu_Cv%d(%v) = %v, want 1", k, center, got)
		}
	}
	// Shoulders plateau at the edges.
	if got, _ := v.Membership(CvTerm(1), 0); got != 1 {
		t.Errorf("Cv1 at 0 = %v, want 1", got)
	}
	if got, _ := v.Membership(CvTerm(9), 1); got != 1 {
		t.Errorf("Cv9 at 1 = %v, want 1", got)
	}
	if err := v.CheckCoverage(1001); err != nil {
		t.Fatal(err)
	}
}

func TestNewFLC1KnownPoints(t *testing.T) {
	eng, err := NewFLC1(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if eng.NumRules() != 42 {
		t.Fatalf("compiled FLC1 has %d rules", eng.NumRules())
	}
	tests := []struct {
		name    string
		s, a, d float64
		lo, hi  float64
	}{
		// Pure rule firings: inputs at term kernels activate one rule.
		{"Sl St N -> Cv9", 4, 0, 0, 0.85, 1},
		{"Fa St F -> Cv9", 100, 0, 10, 0.85, 1},
		{"M St F -> Cv7", 30, 0, 10, 0.70, 0.80},
		{"Sl B1 F -> Cv1", 4, -180, 10, 0, 0.15},
		{"Fa B2 N -> Cv1", 100, 180, 0, 0, 0.15},
		{"M L2 N -> Cv8", 30, -45, 0, 0.82, 0.93},
		{"Fa R1 F -> Cv8", 100, 45, 10, 0.82, 0.93},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			cv, err := eng.EvaluateVec(tc.s, tc.a, tc.d)
			if err != nil {
				t.Fatal(err)
			}
			if cv < tc.lo || cv > tc.hi {
				t.Fatalf("Cv(%v,%v,%v) = %v, want in [%v,%v]", tc.s, tc.a, tc.d, cv, tc.lo, tc.hi)
			}
		})
	}
}

// TestFLC1AngleMonotoneTowardsBS: at fixed speed and distance, turning
// away from the base station does not increase the correction value
// beyond a small defuzzification ripple (paper Fig. 8 mechanism), and the
// overall drop from straight-ahead to backwards is substantial. Checked
// for vehicle speeds, where FRB1 is monotone in |angle|.
func TestFLC1AngleMonotoneTowardsBS(t *testing.T) {
	eng, err := NewFLC1(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	const ripple = 0.04 // centroid defuzzification is only piecewise smooth
	for _, speed := range []float64{30, 60, 100} {
		for _, dist := range []float64{1, 5, 9} {
			prev := math.Inf(1)
			for a := 0.0; a <= 180; a += 2.5 {
				cv, err := eng.EvaluateVec(speed, a, dist)
				if err != nil {
					t.Fatal(err)
				}
				if cv > prev+ripple {
					t.Fatalf("Cv increased when turning away: speed=%v dist=%v angle=%v (%v -> %v)",
						speed, dist, a, prev, cv)
				}
				if cv < prev {
					prev = cv
				}
			}
			straight, err := eng.EvaluateVec(speed, 0, dist)
			if err != nil {
				t.Fatal(err)
			}
			back, err := eng.EvaluateVec(speed, 180, dist)
			if err != nil {
				t.Fatal(err)
			}
			if straight-back < 0.5 {
				t.Fatalf("straight-vs-back gap too small at speed=%v dist=%v: %v - %v", speed, dist, straight, back)
			}
		}
	}
}

// TestFLC1SpeedOrdering: heading straight at the BS, faster users get
// predictions at least as good as walkers (paper Fig. 7 mechanism).
func TestFLC1SpeedOrdering(t *testing.T) {
	eng, err := NewFLC1(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, dist := range []float64{2, 5, 8} {
		cv4, err := eng.EvaluateVec(4, 0, dist)
		if err != nil {
			t.Fatal(err)
		}
		cv30, err := eng.EvaluateVec(30, 0, dist)
		if err != nil {
			t.Fatal(err)
		}
		cv60, err := eng.EvaluateVec(60, 0, dist)
		if err != nil {
			t.Fatal(err)
		}
		if cv30 < cv4-1e-9 || cv60 < cv30-1e-9 {
			t.Fatalf("dist %v: Cv not ordered by speed: 4km/h=%v 30km/h=%v 60km/h=%v", dist, cv4, cv30, cv60)
		}
	}
}

// Property: FLC1 output always stays within [0, 1] and never errors for
// in-universe inputs (full rule coverage).
func TestFLC1TotalityProperty(t *testing.T) {
	eng, err := NewFLC1(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	prop := func(sRaw, aRaw, dRaw float64) bool {
		s := clampFinite(sRaw, 0, 120)
		a := clampFinite(aRaw, -180, 180)
		d := clampFinite(dRaw, 0, 10)
		cv, err := eng.EvaluateVec(s, a, d)
		return err == nil && cv >= 0 && cv <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: FLC1 is symmetric in the sign of the angle (FRB1 maps L and R
// terms to identical consequents everywhere).
func TestFLC1AngleSymmetryProperty(t *testing.T) {
	eng, err := NewFLC1(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	prop := func(sRaw, aRaw, dRaw float64) bool {
		s := clampFinite(sRaw, 0, 120)
		a := clampFinite(aRaw, 0, 180)
		d := clampFinite(dRaw, 0, 10)
		plus, err1 := eng.EvaluateVec(s, a, d)
		minus, err2 := eng.EvaluateVec(s, -a, d)
		return err1 == nil && err2 == nil && math.Abs(plus-minus) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestNewFLC1RejectsBadParams(t *testing.T) {
	p := DefaultParams()
	p.SlowPlateauEnd = 50 // > MiddleCenter
	if _, err := NewFLC1(p); err == nil {
		t.Fatal("invalid params should error")
	}
}

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func clampFinite(x, lo, hi float64) float64 {
	if math.IsNaN(x) {
		return lo
	}
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// TestFRB1ParserRoundTrip feeds every FRB1 rule through the textual rule
// parser and back, proving that the parser and the static tables agree.
func TestFRB1ParserRoundTrip(t *testing.T) {
	for i, r := range FRB1Rules() {
		parsed, err := fuzzyParse(r.String())
		if err != nil {
			t.Fatalf("rule %d: %v", i, err)
		}
		if parsed.String() != r.String() {
			t.Fatalf("rule %d round trip: %q vs %q", i, parsed.String(), r.String())
		}
	}
}
