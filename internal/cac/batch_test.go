package cac

import (
	"fmt"
	"testing"

	"facs/internal/cell"
	"facs/internal/geo"
	"facs/internal/traffic"
)

// batchStation builds a station pre-loaded with a deterministic call mix.
func batchStation(t *testing.T, id int, usedVideo, usedVoice, usedText int) *cell.BaseStation {
	t.Helper()
	bs, err := cell.NewBaseStation(geo.Hex{Q: id}, geo.Point{}, cell.DefaultCapacityBU)
	if err != nil {
		t.Fatal(err)
	}
	next := 1000 * id
	admit := func(class traffic.Class, n int) {
		for i := 0; i < n; i++ {
			if err := bs.Admit(cell.Call{ID: next, Class: class, BU: class.BandwidthUnits()}); err != nil {
				t.Fatal(err)
			}
			next++
		}
	}
	admit(traffic.Video, usedVideo)
	admit(traffic.Voice, usedVoice)
	admit(traffic.Text, usedText)
	return bs
}

// batchRequests builds a request workload spanning several stations with
// runs of consecutive same-station requests (the shape the native batch
// paths amortise), mixing classes and handoff flags.
func batchRequests(t *testing.T) []Request {
	t.Helper()
	stations := []*cell.BaseStation{
		batchStation(t, 0, 0, 0, 0),
		batchStation(t, 1, 2, 2, 3), // 33 BU used
		batchStation(t, 2, 3, 1, 5), // full
	}
	classes := []traffic.Class{traffic.Text, traffic.Voice, traffic.Video}
	var reqs []Request
	id := 1
	for _, bs := range stations {
		for run := 0; run < 6; run++ {
			class := classes[run%len(classes)]
			reqs = append(reqs, Request{
				Call:    cell.Call{ID: id, Class: class, BU: class.BandwidthUnits()},
				Station: bs,
				Handoff: run%2 == 1,
			})
			id++
		}
	}
	return reqs
}

// TestDecideAllMatchesSequential asserts that for every baseline scheme
// the batch pipeline — native or adapted — returns exactly the
// per-request Decide outcomes.
func TestDecideAllMatchesSequential(t *testing.T) {
	guard, err := NewGuardChannel(8)
	if err != nil {
		t.Fatal(err)
	}
	threshold, err := NewThresholdPolicy(map[traffic.Class]int{traffic.Video: 10, traffic.Text: 4})
	if err != nil {
		t.Fatal(err)
	}
	controllers := []Controller{CompleteSharing{}, guard, threshold}
	for _, ctrl := range controllers {
		t.Run(ctrl.Name(), func(t *testing.T) {
			reqs := batchRequests(t)
			got, err := DecideAll(ctrl, reqs)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(reqs) {
				t.Fatalf("got %d decisions for %d requests", len(got), len(reqs))
			}
			for i, req := range reqs {
				want, err := ctrl.Decide(req)
				if err != nil {
					t.Fatal(err)
				}
				if got[i] != want {
					t.Fatalf("%s request %d (%v, handoff=%v): batch %v, sequential %v",
						ctrl.Name(), i, req.Call.Class, req.Handoff, got[i], want)
				}
			}
		})
	}
}

// TestDecideAllUsesNativeBatchPath asserts the adapter dispatches to a
// BatchController implementation instead of looping Decide.
func TestDecideAllUsesNativeBatchPath(t *testing.T) {
	spy := &batchSpy{}
	reqs := batchRequests(t)[:4]
	decisions, err := DecideAll(spy, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if !spy.batched {
		t.Fatal("DecideAll should route through DecideBatch")
	}
	if spy.decides != 0 {
		t.Fatalf("native path still made %d Decide calls", spy.decides)
	}
	if len(decisions) != len(reqs) {
		t.Fatalf("got %d decisions, want %d", len(decisions), len(reqs))
	}
}

// TestDecideAllPropagatesErrors asserts invalid requests abort both the
// adapted and the native pipeline.
func TestDecideAllPropagatesErrors(t *testing.T) {
	reqs := []Request{{}}
	if _, err := DecideAll(CompleteSharing{}, reqs); err == nil {
		t.Fatal("adapter should propagate validation errors")
	}
	guard, err := NewGuardChannel(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecideAll(guard, reqs); err == nil {
		t.Fatal("native batch should propagate validation errors")
	}
}

type batchSpy struct {
	batched bool
	decides int
}

func (s *batchSpy) Name() string { return "batch-spy" }

func (s *batchSpy) Decide(Request) (Decision, error) {
	s.decides++
	return Accept, nil
}

func (s *batchSpy) DecideBatch(reqs []Request) ([]Decision, error) {
	s.batched = true
	out := make([]Decision, len(reqs))
	for i := range out {
		out[i] = Accept
	}
	return out, nil
}

var _ fmt.Stringer = Decision(0)

// TestDecideOne asserts the single-request adapter routes through the
// batch pipeline and propagates errors.
func TestDecideOne(t *testing.T) {
	spy := &batchSpy{}
	var scratch [1]Request
	d, err := DecideOne(spy, &scratch, batchRequests(t)[0])
	if err != nil {
		t.Fatal(err)
	}
	if d != Accept || !spy.batched {
		t.Fatalf("DecideOne = %v (batched=%v), want accept via batch path", d, spy.batched)
	}
	if _, err := DecideOne(CompleteSharing{}, &scratch, Request{}); err == nil {
		t.Fatal("invalid request should error")
	}
}

// TestDecideAllIntoDispatch pins the Into pipeline: short buffers are
// rejected, the native Into path is preferred over DecideBatch, and the
// allocation-free implementations (guard, threshold) render identical
// outcomes into a reused buffer with zero allocations.
func TestDecideAllIntoDispatch(t *testing.T) {
	reqs := batchRequests(t)[:4]
	if err := DecideAllInto(CompleteSharing{}, reqs, make([]Decision, 3)); err == nil {
		t.Fatal("short decision buffer should error")
	}
	spy := &batchIntoSpy{}
	out := make([]Decision, len(reqs))
	if err := DecideAllInto(spy, reqs, out); err != nil {
		t.Fatal(err)
	}
	if !spy.into || spy.batchSpy.batched || spy.decides != 0 {
		t.Fatalf("dispatch order wrong: into=%v batched=%v decides=%d",
			spy.into, spy.batchSpy.batched, spy.decides)
	}

	guard, err := NewGuardChannel(8)
	if err != nil {
		t.Fatal(err)
	}
	all := batchRequests(t)
	want, err := DecideAll(guard, all)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]Decision, len(all))
	avg := testing.AllocsPerRun(20, func() {
		if err := DecideAllInto(guard, all, buf); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("guard DecideAllInto allocates: %.2f allocs/batch", avg)
	}
	for i := range want {
		if buf[i] != want[i] {
			t.Fatalf("request %d: Into %v, DecideAll %v", i, buf[i], want[i])
		}
	}
}

type batchIntoSpy struct {
	batchSpy
	into bool
}

func (s *batchIntoSpy) DecideBatchInto(reqs []Request, out []Decision) error {
	s.into = true
	for i := range reqs {
		out[i] = Accept
	}
	return nil
}
