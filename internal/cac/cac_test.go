package cac

import (
	"strings"
	"testing"

	"facs/internal/cell"
	"facs/internal/geo"
	"facs/internal/traffic"
)

func station(t *testing.T, capacity int) *cell.BaseStation {
	t.Helper()
	bs, err := cell.NewBaseStation(geo.Hex{}, geo.Point{}, capacity)
	if err != nil {
		t.Fatal(err)
	}
	return bs
}

func fill(t *testing.T, bs *cell.BaseStation, class traffic.Class, count int) {
	t.Helper()
	for i := 0; i < count; i++ {
		c := cell.Call{ID: 1000 + bs.NumCalls() + i*7919, Class: class, BU: class.BandwidthUnits()}
		if err := bs.Admit(c); err != nil {
			t.Fatal(err)
		}
	}
}

func req(bs *cell.BaseStation, class traffic.Class, handoff bool) Request {
	return Request{
		Call:    cell.Call{ID: 1, Class: class, BU: class.BandwidthUnits()},
		Station: bs,
		Handoff: handoff,
	}
}

func TestDecisionStringAndAccepted(t *testing.T) {
	if Accept.String() != "accept" || Reject.String() != "reject" {
		t.Fatal("Decision stringer mismatch")
	}
	if !strings.Contains(Decision(9).String(), "9") {
		t.Fatal("unknown decision should include value")
	}
	if !Accept.Accepted() || Reject.Accepted() {
		t.Fatal("Accepted() mismatch")
	}
}

func TestRequestValidate(t *testing.T) {
	bs := station(t, 40)
	good := req(bs, traffic.Voice, false)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Request{
		{Call: cell.Call{ID: 1, Class: traffic.Voice, BU: 5}},                 // no station
		{Call: cell.Call{ID: 1, Class: traffic.Voice, BU: 0}, Station: bs},    // zero BU
		{Call: cell.Call{ID: 1, Class: traffic.Class(9), BU: 5}, Station: bs}, // bad class
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Fatalf("request %d should be invalid", i)
		}
	}
}

func TestCompleteSharing(t *testing.T) {
	cs := CompleteSharing{}
	if cs.Name() != "complete-sharing" {
		t.Fatal("name mismatch")
	}
	bs := station(t, 40)
	d, err := cs.Decide(req(bs, traffic.Video, false))
	if err != nil || d != Accept {
		t.Fatalf("empty station should accept video: %v %v", d, err)
	}
	fill(t, bs, traffic.Video, 3) // 30 BU used, 10 free
	if d, _ := cs.Decide(req(bs, traffic.Video, false)); d != Accept {
		t.Fatal("10 free should fit exactly 10")
	}
	fill(t, bs, traffic.Voice, 2) // 40 used
	if d, _ := cs.Decide(req(bs, traffic.Text, false)); d != Reject {
		t.Fatal("full station should reject")
	}
	if _, err := cs.Decide(Request{}); err == nil {
		t.Fatal("invalid request should error")
	}
}

func TestGuardChannel(t *testing.T) {
	if _, err := NewGuardChannel(-1); err == nil {
		t.Fatal("negative guard should error")
	}
	g, err := NewGuardChannel(10)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "guard-channel" {
		t.Fatal("name mismatch")
	}
	bs := station(t, 40)
	fill(t, bs, traffic.Video, 3) // 30 used, 10 free = exactly the guard
	// New call: only free - guard = 0 available.
	if d, _ := g.Decide(req(bs, traffic.Text, false)); d != Reject {
		t.Fatal("new call must not consume the guard band")
	}
	// Handoff may use the guard band.
	if d, _ := g.Decide(req(bs, traffic.Voice, true)); d != Accept {
		t.Fatal("handoff should use the guard band")
	}
	// Handoff still bounded by physical capacity.
	fill(t, bs, traffic.Voice, 2) // full
	if d, _ := g.Decide(req(bs, traffic.Text, true)); d != Reject {
		t.Fatal("handoff into full station should reject")
	}
	if _, err := g.Decide(Request{}); err == nil {
		t.Fatal("invalid request should error")
	}
}

func TestThresholdPolicy(t *testing.T) {
	if _, err := NewThresholdPolicy(map[traffic.Class]int{traffic.Class(5): 1}); err == nil {
		t.Fatal("invalid class should error")
	}
	if _, err := NewThresholdPolicy(map[traffic.Class]int{traffic.Voice: -1}); err == nil {
		t.Fatal("negative threshold should error")
	}
	p, err := NewThresholdPolicy(map[traffic.Class]int{traffic.Video: 10})
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "multi-priority-threshold" {
		t.Fatal("name mismatch")
	}
	bs := station(t, 40)
	if d, _ := p.Decide(req(bs, traffic.Video, false)); d != Accept {
		t.Fatal("first video fits its 10 BU budget")
	}
	fill(t, bs, traffic.Video, 1) // video now at its 10 BU cap
	if d, _ := p.Decide(req(bs, traffic.Video, false)); d != Reject {
		t.Fatal("video beyond class budget should reject")
	}
	// Uncapped classes limited only by capacity.
	if d, _ := p.Decide(req(bs, traffic.Voice, false)); d != Accept {
		t.Fatal("voice is uncapped and fits")
	}
	fill(t, bs, traffic.Voice, 6) // 10 + 30 = full
	if d, _ := p.Decide(req(bs, traffic.Text, false)); d != Reject {
		t.Fatal("full station should reject regardless of budgets")
	}
	if _, err := p.Decide(Request{}); err == nil {
		t.Fatal("invalid request should error")
	}
}

func TestThresholdPolicyCopiesMap(t *testing.T) {
	src := map[traffic.Class]int{traffic.Video: 10}
	p, err := NewThresholdPolicy(src)
	if err != nil {
		t.Fatal(err)
	}
	src[traffic.Video] = 40
	if p.MaxBU[traffic.Video] != 10 {
		t.Fatal("policy must copy the threshold map")
	}
}
