package cac

import (
	"fmt"
	"io"
	"sort"

	"facs/internal/cell"
	"facs/internal/snap"
	"facs/internal/traffic"
)

// CompleteSharing is the simplest CAC scheme discussed in the paper's
// introduction: admit whenever enough free channels exist. It is fast but
// unfair to wide calls and blind to mobility.
type CompleteSharing struct{}

var _ CellLocal = CompleteSharing{}

// Name implements Controller.
func (CompleteSharing) Name() string { return "complete-sharing" }

// CellLocal implements CellLocal: the decision reads only the request's
// station.
func (CompleteSharing) CellLocal() {}

// Decide implements Controller.
func (CompleteSharing) Decide(req Request) (Decision, error) {
	if err := req.Validate(); err != nil {
		return Reject, err
	}
	if req.Station.Fits(req.Call.BU) {
		return Accept, nil
	}
	return Reject, nil
}

// GuardChannel reserves a fixed number of bandwidth units for handoff
// calls: new calls are admitted only into Free - GuardBU, handoffs into
// the full free pool. This is the classical way to prioritise handoffs
// over new calls ("users are much more sensitive to call dropping than to
// call blocking").
type GuardChannel struct {
	// GuardBU is the bandwidth reserved for handoffs.
	GuardBU int
}

var (
	_ Controller          = GuardChannel{}
	_ BatchController     = GuardChannel{}
	_ BatchIntoController = GuardChannel{}
	_ CellLocal           = GuardChannel{}
	_ Snapshotter         = GuardChannel{}
)

// NewGuardChannel validates and constructs the scheme.
func NewGuardChannel(guardBU int) (GuardChannel, error) {
	if guardBU < 0 {
		return GuardChannel{}, fmt.Errorf("cac: guard bandwidth must be >= 0, got %d", guardBU)
	}
	return GuardChannel{GuardBU: guardBU}, nil
}

// Name implements Controller.
func (g GuardChannel) Name() string { return "guard-channel" }

// CellLocal implements CellLocal: the decision reads only the request's
// station free pool.
func (GuardChannel) CellLocal() {}

// Decide implements Controller.
func (g GuardChannel) Decide(req Request) (Decision, error) {
	if err := req.Validate(); err != nil {
		return Reject, err
	}
	free := req.Station.Free()
	if req.Handoff {
		if req.Call.BU <= free {
			return Accept, nil
		}
		return Reject, nil
	}
	if req.Call.BU <= free-g.GuardBU {
		return Accept, nil
	}
	return Reject, nil
}

// DecideBatch implements BatchController: the free-pool read is
// amortised across consecutive requests on the same station (Decide
// must not mutate stations, so occupancy is stable for the batch).
func (g GuardChannel) DecideBatch(reqs []Request) ([]Decision, error) {
	out := make([]Decision, len(reqs))
	if err := g.DecideBatchInto(reqs, out); err != nil {
		return nil, err
	}
	return out, nil
}

// DecideBatchInto implements BatchIntoController: DecideBatch semantics
// into a caller-provided buffer, with zero allocations.
//
//facs:hotpath
func (g GuardChannel) DecideBatchInto(reqs []Request, out []Decision) error {
	var station *cell.BaseStation
	free := 0
	for i := range reqs {
		req := &reqs[i]
		if err := req.Validate(); err != nil {
			return err
		}
		if req.Station != station {
			station = req.Station
			free = station.Free()
		}
		budget := free
		if !req.Handoff {
			budget = free - g.GuardBU
		}
		if req.Call.BU <= budget {
			out[i] = Accept
		} else {
			out[i] = Reject
		}
	}
	return nil
}

// guardSnapshotHash fingerprints everything a guard-channel decision
// depends on beyond station state: the reserved bandwidth.
func (g GuardChannel) guardSnapshotHash() uint64 {
	return snap.NewHasher().Str("guard-channel").Int(g.GuardBU).Sum()
}

// SnapshotTo implements cac.Snapshotter. The guard channel is
// stateless (stations carry all occupancy), so the payload is empty;
// the envelope still pins the configuration, so restoring a snapshot
// taken under a different guard bandwidth fails stale.
func (g GuardChannel) SnapshotTo(w io.Writer) error {
	return snap.NewEncoder(w, "guard-channel", g.guardSnapshotHash()).Close()
}

// RestoreFrom implements cac.Snapshotter: validation only (there is no
// state to install).
func (g GuardChannel) RestoreFrom(r io.Reader) error {
	d, err := snap.NewDecoder(r, "guard-channel", g.guardSnapshotHash())
	if err != nil {
		return err
	}
	return d.Close()
}

// ThresholdPolicy is the Multi-Priority Threshold policy shape referenced
// by the paper ([4], Bartolini & Chlamtac): each class may only occupy
// bandwidth up to its own threshold. Admission requires both the global
// fit and the class budget.
type ThresholdPolicy struct {
	// MaxBU maps each class to its occupancy ceiling in BU. Classes
	// absent from the map are uncapped (bounded only by capacity).
	MaxBU map[traffic.Class]int
}

var (
	_ Controller          = ThresholdPolicy{}
	_ BatchController     = ThresholdPolicy{}
	_ BatchIntoController = ThresholdPolicy{}
	_ CellLocal           = ThresholdPolicy{}
	_ Snapshotter         = ThresholdPolicy{}
)

// NewThresholdPolicy validates and constructs the policy.
func NewThresholdPolicy(maxBU map[traffic.Class]int) (ThresholdPolicy, error) {
	// Validate in sorted class order so a table with several bad
	// entries reports the same error on every run, not whichever
	// entry map iteration happened to visit first.
	classes := make([]traffic.Class, 0, len(maxBU))
	for class := range maxBU { //facs:orderless key collection; sorted before any order-sensitive use
		classes = append(classes, class)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	for _, class := range classes {
		limit := maxBU[class]
		if !class.Valid() {
			return ThresholdPolicy{}, fmt.Errorf("cac: threshold for invalid class %v", class)
		}
		if limit < 0 {
			return ThresholdPolicy{}, fmt.Errorf("cac: threshold for %v must be >= 0, got %d", class, limit)
		}
	}
	copied := make(map[traffic.Class]int, len(maxBU))
	for k, v := range maxBU { //facs:orderless map-to-map copy; insertion order is unobservable
		copied[k] = v
	}
	return ThresholdPolicy{MaxBU: copied}, nil
}

// Name implements Controller.
func (ThresholdPolicy) Name() string { return "multi-priority-threshold" }

// CellLocal implements CellLocal: per-class occupancy is derived from
// the request's station alone.
func (ThresholdPolicy) CellLocal() {}

// Decide implements Controller.
func (p ThresholdPolicy) Decide(req Request) (Decision, error) {
	if err := req.Validate(); err != nil {
		return Reject, err
	}
	if !req.Station.Fits(req.Call.BU) {
		return Reject, nil
	}
	limit, capped := p.MaxBU[req.Call.Class]
	if !capped {
		return Accept, nil
	}
	if req.Station.ClassBU(req.Call.Class)+req.Call.BU <= limit {
		return Accept, nil
	}
	return Reject, nil
}

// DecideBatch implements BatchController: the station's free pool is read
// once per station run (Decide must not mutate stations, so occupancy is
// stable for the batch); per-class occupancy comes from the station's
// O(1) class counters.
func (p ThresholdPolicy) DecideBatch(reqs []Request) ([]Decision, error) {
	out := make([]Decision, len(reqs))
	if err := p.DecideBatchInto(reqs, out); err != nil {
		return nil, err
	}
	return out, nil
}

// thresholdSnapshotHash fingerprints the per-class ceilings in sorted
// class order, so map iteration order never perturbs the hash.
func (p ThresholdPolicy) thresholdSnapshotHash() uint64 {
	classes := make([]traffic.Class, 0, len(p.MaxBU))
	for class := range p.MaxBU { //facs:orderless key collection; hashed in sorted class order below
		classes = append(classes, class)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	h := snap.NewHasher().Str("multi-priority-threshold")
	for _, class := range classes {
		h.Int(int(class)).Int(p.MaxBU[class])
	}
	return h.Sum()
}

// SnapshotTo implements cac.Snapshotter. The policy is stateless
// (per-class occupancy lives on the stations), so the payload is
// empty; the envelope pins the threshold table.
func (p ThresholdPolicy) SnapshotTo(w io.Writer) error {
	return snap.NewEncoder(w, "multi-priority-threshold", p.thresholdSnapshotHash()).Close()
}

// RestoreFrom implements cac.Snapshotter: validation only.
func (p ThresholdPolicy) RestoreFrom(r io.Reader) error {
	d, err := snap.NewDecoder(r, "multi-priority-threshold", p.thresholdSnapshotHash())
	if err != nil {
		return err
	}
	return d.Close()
}

// DecideBatchInto implements BatchIntoController: DecideBatch semantics
// into a caller-provided buffer, with zero allocations.
//
//facs:hotpath
func (p ThresholdPolicy) DecideBatchInto(reqs []Request, out []Decision) error {
	var station *cell.BaseStation
	free := 0
	for i := range reqs {
		req := &reqs[i]
		if err := req.Validate(); err != nil {
			return err
		}
		if req.Station != station {
			station = req.Station
			free = station.Free()
		}
		if req.Call.BU > free {
			out[i] = Reject
			continue
		}
		limit, capped := p.MaxBU[req.Call.Class]
		if !capped || req.Station.ClassBU(req.Call.Class)+req.Call.BU <= limit {
			out[i] = Accept
		} else {
			out[i] = Reject
		}
	}
	return nil
}
