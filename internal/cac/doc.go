// Package cac defines the call-admission-control framework shared by
// the paper's FACS system, the SCC baseline and the classical schemes
// the paper's introduction surveys (Complete Sharing, Guard Channel and
// the Multi-Priority Threshold policy).
//
// # Role and invariants
//
// A Controller only renders decisions; the simulation (or caller)
// performs the actual bandwidth allocation on the base station, then
// notifies controllers that track state through the optional Observer
// interface. Two invariants follow:
//
//   - Decide never mutates a station. Admission state changes flow
//     exclusively through Observer/StateUpdater/Ticker callbacks after
//     the caller has allocated.
//   - DecideBatch(reqs)[i] must equal Decide(reqs[i]) against the same
//     station state: batching changes the cost of a decision, never its
//     outcome. Every request in one batch is therefore decided against
//     the same station snapshot.
//
// # Entry points
//
// Controller is the single-request interface; BatchController marks
// controllers with a native amortised batch path. DecideAll is the
// dispatch every multi-request caller should use (native batch when
// available, sequential otherwise), and DecideOne routes event loops
// through the same dispatch without a per-decision allocation. The
// classical baselines (CompleteSharing, GuardChannel, ThresholdPolicy)
// live in baselines.go. The streaming front end over this framework is
// internal/serve.
//
// Two marker interfaces describe how a controller behaves under the
// sharded engine (internal/shard): CellLocal promises decisions that
// read only the request's own station, making sharded outcomes
// shard-count-invariant; DemandExchanger is its complement for
// controllers with cross-cell projected demand (the SCC family), whose
// instances exchange demand deltas at tick barriers to restore the
// global view sharding would otherwise partition.
package cac
