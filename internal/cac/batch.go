package cac

import "fmt"

// BatchController is implemented by controllers with a native batch
// decision path: DecideBatch answers many admission questions in one
// call, amortising per-request work (surface lookups, scratch buffers,
// station state reads) that Decide pays on every invocation.
//
// Contract: DecideBatch(reqs)[i] must equal Decide(reqs[i]) evaluated
// against the same controller and station state — batching changes the
// cost of a decision, never its outcome. Controllers must not mutate
// any station; like Decide, the caller allocates on Accept. A request
// that fails validation aborts the batch with its error.
type BatchController interface {
	Controller
	// DecideBatch returns one decision per request, in request order.
	DecideBatch(reqs []Request) ([]Decision, error)
}

// BatchIntoController is the allocation-free refinement of
// BatchController: DecideBatchInto writes decisions into a
// caller-provided buffer instead of allocating a fresh slice per batch.
// Long-lived decision loops (serve.Service, the sharded engine, the
// metropolis wave loop) reuse one buffer across millions of batches, so
// the steady-state decision path performs zero allocations.
//
// Contract: identical outcome semantics to DecideBatch — out[i] must
// equal Decide(reqs[i]) — and len(out) must be >= len(reqs) (only the
// first len(reqs) entries are written). Every BatchIntoController in
// this repository also implements BatchController by delegating to the
// Into path with a fresh buffer.
type BatchIntoController interface {
	Controller
	// DecideBatchInto writes one decision per request, in request
	// order, into out[:len(reqs)].
	DecideBatchInto(reqs []Request, out []Decision) error
}

// DecideOne renders a single decision through the batch pipeline using
// caller-provided scratch, so event-driven loops route through the same
// DecideAllInto dispatch as real batches without a per-decision
// allocation.
func DecideOne(c Controller, scratch *[1]Request, req Request) (Decision, error) {
	scratch[0] = req
	var out [1]Decision
	if err := DecideAllInto(c, scratch[:], out[:]); err != nil {
		return Reject, err
	}
	return out[0], nil
}

// DecideAll renders decisions for a batch of requests through c's
// native batch path when it implements BatchController (or
// BatchIntoController), and falls back to sequential Decide calls
// otherwise. It is the single entry point callers should use for
// multi-request admission when they do not manage an output buffer;
// hot loops should prefer DecideAllInto with reused scratch.
func DecideAll(c Controller, reqs []Request) ([]Decision, error) {
	out := make([]Decision, len(reqs))
	if err := DecideAllInto(c, reqs, out); err != nil {
		return nil, err
	}
	return out, nil
}

// DecideAllInto renders decisions for a batch of requests into the
// caller-provided buffer out, which must hold at least len(reqs)
// entries. Dispatch prefers the allocation-free BatchIntoController
// path, then BatchController (copying its result), then sequential
// Decide calls — outcomes are identical on every path; only the
// allocation behaviour differs. Controllers with native Into support
// make the whole call allocation-free, which is what the steady-state
// zero-alloc gates on the metropolis wave loop pin.
//
//facs:hotpath
func DecideAllInto(c Controller, reqs []Request, out []Decision) error {
	if len(out) < len(reqs) {
		return errShortDecisionBuffer(len(reqs), len(out))
	}
	out = out[:len(reqs)]
	if bi, ok := c.(BatchIntoController); ok {
		return bi.DecideBatchInto(reqs, out)
	}
	if bc, ok := c.(BatchController); ok {
		decisions, err := bc.DecideBatch(reqs)
		if err != nil {
			return err
		}
		copy(out, decisions)
		return nil
	}
	for i := range reqs {
		d, err := c.Decide(reqs[i])
		if err != nil {
			return err
		}
		out[i] = d
	}
	return nil
}

// errShortDecisionBuffer formats the buffer-misuse error.
//
//facs:coldpath error constructor; called only on caller misuse
func errShortDecisionBuffer(reqs, slots int) error {
	return fmt.Errorf("cac: decision buffer too short: %d requests, %d slots", reqs, slots)
}
