package cac

// BatchController is implemented by controllers with a native batch
// decision path: DecideBatch answers many admission questions in one
// call, amortising per-request work (surface lookups, scratch buffers,
// station state reads) that Decide pays on every invocation.
//
// Contract: DecideBatch(reqs)[i] must equal Decide(reqs[i]) evaluated
// against the same controller and station state — batching changes the
// cost of a decision, never its outcome. Controllers must not mutate
// any station; like Decide, the caller allocates on Accept. A request
// that fails validation aborts the batch with its error.
type BatchController interface {
	Controller
	// DecideBatch returns one decision per request, in request order.
	DecideBatch(reqs []Request) ([]Decision, error)
}

// DecideAll renders decisions for a batch of requests through c's
// native batch path when it implements BatchController, and falls back
// to sequential Decide calls otherwise. It is the single entry point
// callers should use for multi-request admission, so that batch-capable
// controllers are amortised automatically.
// DecideOne renders a single decision through the batch pipeline using
// caller-provided scratch, so event-driven loops route through the same
// DecideAll dispatch as real batches without a per-decision allocation.
func DecideOne(c Controller, scratch *[1]Request, req Request) (Decision, error) {
	scratch[0] = req
	out, err := DecideAll(c, scratch[:])
	if err != nil {
		return Reject, err
	}
	return out[0], nil
}

func DecideAll(c Controller, reqs []Request) ([]Decision, error) {
	if bc, ok := c.(BatchController); ok {
		return bc.DecideBatch(reqs)
	}
	out := make([]Decision, len(reqs))
	for i := range reqs {
		d, err := c.Decide(reqs[i])
		if err != nil {
			return nil, err
		}
		out[i] = d
	}
	return out, nil
}
