package cac

import (
	"fmt"
	"io"

	"facs/internal/cell"
	"facs/internal/geo"
	"facs/internal/gps"
)

// Decision is an admission outcome.
type Decision int

// Admission outcomes.
const (
	// Accept grants the requested bandwidth.
	Accept Decision = iota + 1
	// Reject denies the request.
	Reject
)

// String implements fmt.Stringer.
func (d Decision) String() string {
	switch d {
	case Accept:
		return "accept"
	case Reject:
		return "reject"
	default:
		return fmt.Sprintf("Decision(%d)", int(d))
	}
}

// Accepted reports whether the decision admits the call.
func (d Decision) Accepted() bool { return d == Accept }

// Request is one admission question posed to a controller.
type Request struct {
	// Call is the proposed call (ID, class and bandwidth).
	Call cell.Call
	// Station is the base station that would carry the call.
	Station *cell.BaseStation
	// Obs is the user's estimated kinematics relative to Station
	// (speed, angle, distance) as produced by the GPS substrate.
	Obs gps.Observation
	// Est is the absolute kinematic estimate (position, heading, speed)
	// behind Obs. Mobility-predictive controllers such as SCC consume
	// this; FACS consumes only the relative Obs.
	Est gps.Estimate
	// Handoff marks requests arriving via handoff rather than new calls.
	Handoff bool
	// Now is the simulation time in seconds.
	Now float64
}

// Validate checks structural preconditions shared by all controllers.
func (r Request) Validate() error {
	if r.Station == nil {
		return fmt.Errorf("cac: request for call %d has no station", r.Call.ID) //facs:alloc reject/error path; formats nothing on the steady-state wave
	}
	if r.Call.BU <= 0 {
		return fmt.Errorf("cac: request for call %d has non-positive bandwidth %d", r.Call.ID, r.Call.BU) //facs:alloc reject/error path; formats nothing on the steady-state wave
	}
	if !r.Call.Class.Valid() {
		return fmt.Errorf("cac: request for call %d has invalid class %v", r.Call.ID, r.Call.Class) //facs:alloc reject/error path; formats nothing on the steady-state wave
	}
	return nil
}

// Controller renders admission decisions.
type Controller interface {
	// Name identifies the scheme, e.g. "facs" or "scc".
	Name() string
	// Decide returns the admission outcome for one request. Controllers
	// must not mutate the station; the caller allocates on Accept.
	Decide(req Request) (Decision, error)
}

// CellLocal is implemented by controllers whose decisions are a pure
// function of the request and the mutable state of the request's own
// station (everything else they read — parameters, surfaces, network
// geometry — is immutable after construction), and that must also be
// safe for concurrent use. Cell-locality is the sharding seam: a
// sharded engine that partitions stations across decision loops changes
// neither the inputs nor the order of any station's decisions, so
// outcomes of a CellLocal controller are byte-identical for every shard
// count. Controllers tracking cross-cell state (e.g. SCC's shadow
// clusters, which project demand into neighbouring cells) must not
// declare cell-locality: sharding partitions their demand visibility.
// Such controllers should implement DemandExchanger instead, which lets
// the sharded engine restore global visibility at tick barriers.
type CellLocal interface {
	Controller
	// CellLocal is a marker; implementations assert the contract above.
	CellLocal()
}

// DemandRow is one (cell, projection-interval) slice of projected
// bandwidth demand, in BU. A positive Amount adds demand, a negative
// one retracts demand a previous row added (e.g. after a release).
type DemandRow struct {
	// Cell identifies the deployment cell the demand is projected into.
	Cell geo.Hex
	// K is the projection interval the demand applies to (0 = now).
	K int
	// Amount is the demand change in bandwidth units since the exporter's
	// previous export.
	Amount float64
}

// DemandDelta is one controller's projected-demand change since its
// previous export: the set of (cell, interval) rows whose aggregate
// moved, plus a strictly increasing generation counter so receivers can
// discard replays and out-of-order deliveries.
type DemandDelta struct {
	// Gen is the exporter's generation: incremented on every export.
	Gen uint64
	// Rows holds the changed (cell, interval) aggregates in a
	// deterministic (cell, interval) order. Rows may alias a buffer the
	// exporter reuses: it is valid until the exporter's next
	// ExportDemand call, so receivers must apply (or copy) a delta
	// before the next exchange round.
	Rows []DemandRow
}

// DemandExchanger is implemented by controllers that track cross-cell
// projected demand (the SCC family) and can exchange it with sibling
// instances — the seam that lets a sharded engine restore global demand
// visibility at tick barriers. ExportDemand returns the instance's own
// demand change since its previous export; ApplyGhost ingests another
// instance's delta into a separate ghost aggregate that decisions read
// alongside local demand. Both methods follow the Controller threading
// contract: the caller serializes them with decisions (the sharded
// engine runs the whole exchange inside the Tick barrier, on each
// instance's own decision loop).
//
// A DemandExchanger is the complement of CellLocal: cell-local
// controllers have no cross-cell state to exchange, exchangers restore
// the global view that sharding would otherwise partition. No
// controller should declare both.
type DemandExchanger interface {
	Controller
	// ExportDemand snapshots the demand change since the previous export
	// and advances the generation counter.
	ExportDemand() DemandDelta
	// ApplyGhost ingests a sibling instance's delta. shardID identifies
	// the source; deltas with a generation not beyond the last applied
	// one from that source are ignored.
	ApplyGhost(shardID int, delta DemandDelta)
}

// MigratedCall is one tracked call's projection source as it moves
// between sibling controller instances during an elastic-sharding cell
// migration: everything the receiving instance needs to recreate the
// call's cross-cell state bit-identically. Speed travels in m/s (the
// unit trackers store internally) so a migrated track re-derives the
// exact same footprint the source instance held — no unit round-trip.
type MigratedCall struct {
	// ID identifies the call.
	ID int
	// BU is the call's occupied bandwidth.
	BU int
	// Pos / HeadingDeg / SpeedMps are the last observed kinematics the
	// projection is anchored to.
	Pos        geo.Point
	HeadingDeg float64
	SpeedMps   float64
	// Home is the cell the call is carried in (the migrating cell).
	Home geo.Hex
}

// CellMigrator is implemented by stateful controllers that can hand a
// cell's per-call state to a sibling instance — the seam the sharded
// engine's elastic rebalancer uses to move scc.Ledger rows between
// shards inside a tick barrier. MigrateOut removes every tracked call
// homed in cell h (in ascending call-ID order, appended to dst) and
// retracts its projected demand; MigrateIn recreates the tracks and
// re-applies their demand. Both follow the Controller threading
// contract: the engine serializes them with decisions via the Do-op
// seam, source first, then target, so at every instant each call is
// tracked by exactly one instance. A controller that is CellLocal has
// no cross-cell state and needs no migrator: re-routing its cell is
// already outcome-preserving.
type CellMigrator interface {
	Controller
	// MigrateOut extracts and removes every tracked call homed in h,
	// appending to dst in ascending call-ID order.
	MigrateOut(h geo.Hex, dst []MigratedCall) []MigratedCall
	// MigrateIn recreates the given tracks and applies their demand.
	MigrateIn(rows []MigratedCall)
}

// InterestScoped is implemented by demand exchangers that can bound how
// far (in hex rings) their decisions read demand from a request's home
// cell — the seam behind interest-scoped ghost fan-out. A shard engine
// whose exchangers all declare a non-negative radius routes each
// exported demand row only to shards owning a cell within that radius
// of the row's cell, instead of all-to-all; decisions are unchanged
// because rows outside the radius are provably never read by any
// decision the receiver renders. A negative radius declares "unbounded"
// (the exchanger cannot bound its read set) and keeps the all-to-all
// fan-out.
type InterestScoped interface {
	DemandExchanger
	// InterestRadiusCells returns the maximum hex distance from a cell
	// this instance owns to any cell one of its decisions may read, or
	// a negative value when no bound can be declared.
	InterestRadiusCells() int
}

// ExchangeResetter is implemented by demand exchangers whose exchange
// state can be re-seeded: ResetExchange clears the accumulated ghost
// demand and arranges for the next ExportDemand to carry the full
// absolute demand matrix instead of a delta. The sharded engine calls
// it on every exchanger after a rebalance epoch — ownership and
// interest sets just changed, so differential deltas no longer
// telescope against what each receiver has accumulated — and then runs
// a full exchange round before any further decision.
type ExchangeResetter interface {
	// ResetExchange clears ghost demand and forces the next export to be
	// absolute. Generation counters keep rising monotonically.
	ResetExchange()
}

// Snapshotter is implemented by components whose state can be captured
// into (and restored from) the versioned snapshot envelope of
// internal/snap — the seam behind durable serving. Stateful
// controllers (the SCC demand ledger), stations and the sharded engine
// implement it; stateless controllers implement it with an empty
// payload whose envelope still validates the configuration, so a
// restore into a differently-configured deployment fails stale instead
// of silently diverging.
//
// Consistency is the caller's job: SnapshotTo and RestoreFrom must run
// with no decision in flight — inside a serve.Service.Do op, inside
// the shard engine's tick barrier, or before the serving loops start.
// Restore contracts are exact: a component restored from a snapshot
// continues byte-identically to the instance that was captured
// (replaying the same inputs yields the same decisions, exports and
// counters), which is what makes warm failover indistinguishable from
// an uninterrupted run.
type Snapshotter interface {
	// SnapshotTo writes the component's state as one self-describing
	// snapshot blob.
	SnapshotTo(w io.Writer) error
	// RestoreFrom replaces the component's state from a blob written by
	// SnapshotTo on an identically-configured instance. Decode failures
	// wrap snap.ErrSnapshotStale or snap.ErrSnapshotCorrupt and leave
	// the component unchanged or empty-but-valid, never half-restored
	// in a way that could corrupt later decisions.
	RestoreFrom(r io.Reader) error
}

// Observer is implemented by controllers that maintain per-call state
// (e.g. SCC's shadow clusters). The simulation invokes these callbacks
// after the corresponding ledger operation succeeded.
type Observer interface {
	// OnAdmit notifies that req was accepted and allocated.
	OnAdmit(req Request)
	// OnRelease notifies that a call ended or left the station.
	OnRelease(callID int, station *cell.BaseStation, now float64)
}

// Ticker is implemented by controllers with time-driven state (e.g. SCC's
// demand projections). The simulation calls OnTick periodically.
type Ticker interface {
	OnTick(now float64)
}

// StateUpdater is implemented by controllers that refresh per-call
// kinematics while a call is active (e.g. SCC after a handoff delivers a
// new position estimate).
type StateUpdater interface {
	// OnStateUpdate reports the latest kinematic estimate for a carried
	// call and the station now carrying it.
	OnStateUpdate(callID int, est gps.Estimate, station *cell.BaseStation)
}
