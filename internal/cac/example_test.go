package cac_test

import (
	"fmt"

	"facs/internal/cac"
	"facs/internal/cell"
	"facs/internal/geo"
	"facs/internal/traffic"
)

// ExampleDecideAll routes a request batch through a controller's native
// batch path. Every request in one DecideAll call is decided against
// the same station snapshot (Decide never mutates); here the station
// already carries 5 BU, so a new voice call would dip into the guard
// band and is rejected while a handoff may consume it.
func ExampleDecideAll() {
	bs, err := cell.NewBaseStation(geo.Hex{}, geo.Point{}, 12)
	if err != nil {
		panic(err)
	}
	if err := bs.Admit(cell.Call{ID: 99, Class: traffic.Voice, BU: 5}); err != nil {
		panic(err)
	}
	ctrl, err := cac.NewGuardChannel(4) // reserve 4 BU for handoffs
	if err != nil {
		panic(err)
	}
	reqs := []cac.Request{
		{Call: cell.Call{ID: 1, Class: traffic.Voice, BU: 5}, Station: bs},
		{Call: cell.Call{ID: 2, Class: traffic.Text, BU: 1}, Station: bs},
		{Call: cell.Call{ID: 3, Class: traffic.Voice, BU: 5}, Station: bs, Handoff: true},
	}
	decisions, err := cac.DecideAll(ctrl, reqs)
	if err != nil {
		panic(err)
	}
	for i, d := range decisions {
		fmt.Printf("call %d: %s\n", reqs[i].Call.ID, d)
	}
	// Output:
	// call 1: reject
	// call 2: accept
	// call 3: accept
}
